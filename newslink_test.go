package newslink

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"newslink/internal/corpus"
)

func sampleEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	g, arts := corpus.Sample()
	e := New(g, cfg)
	for _, a := range arts {
		if err := e.Add(Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEndToEndSearch(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	// The paper's Example 1: querying with the Pakistan/Taliban conflict
	// story should surface the Taliban bombing story.
	res, err := e.Search("Military conflicts between Pakistan and Taliban in Upper Dir and Swat Valley.", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	top2 := []int{res[0].ID}
	if len(res) > 1 {
		top2 = append(top2, res[1].ID)
	}
	found := false
	for _, id := range top2 {
		if id == 0 || id == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("military stories not in top 2: %+v", res)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Score > res[i-1].Score {
			t.Fatal("results not sorted")
		}
	}
}

func TestOversizedPoolDepthClamped(t *testing.T) {
	// Library callers can pass any PoolDepth; the engine clamps it to the
	// corpus size so an attacker-sized value cannot drive pool-sized
	// allocations. Beyond-corpus pools are all equivalent, so the results
	// must match a default search exactly.
	e := sampleEngine(t, DefaultConfig())
	const q = "Military conflicts between Pakistan and Taliban in Upper Dir"
	want, err := e.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.SearchContext(context.Background(), Query{Text: q, K: 5, PoolDepth: 1 << 40})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("oversized pool changed results:\n%v\nvs\n%v", got, want)
	}
}

func TestPureEmbeddingSearchBridgesVocabularyMismatch(t *testing.T) {
	// β=1: only subgraph embeddings, as in the paper's case study. The
	// query shares almost no keywords with doc 1 (no "bombing", no
	// "Lahore") but their embeddings overlap in Khyber.
	e := sampleEngine(t, Config{Beta: 1, Model: LCAG, MaxDepth: 6})
	res, err := e.Search("Clashes between Taliban and Pakistan forces in Upper Dir and Swat Valley.", 4)
	if err != nil {
		t.Fatal(err)
	}
	ranked := map[int]bool{}
	for _, r := range res {
		ranked[r.ID] = true
	}
	if !ranked[1] {
		t.Fatalf("β=1 failed to retrieve the related bombing story: %+v", res)
	}
	// The sports and business stories have disjoint embeddings.
	if ranked[7] {
		t.Fatalf("business story leaked into embedding-only results: %+v", res)
	}
}

func TestExplainProducesPaths(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	query := "Fighting between Taliban and Pakistan reached Upper Dir and the Swat Valley."
	exp, err := e.Explain(query, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.SharedEntities) == 0 {
		t.Fatal("no shared entities in the overlap")
	}
	joined := strings.Join(exp.SharedEntities, " ")
	if !strings.Contains(joined, "Khyber") {
		t.Fatalf("induced entity Khyber missing from overlap: %v", exp.SharedEntities)
	}
	if len(exp.Paths) == 0 {
		t.Fatal("no relationship paths")
	}
	for _, p := range exp.Paths {
		if !strings.Contains(p.Rendered, "-[") {
			t.Fatalf("path without relation rendering: %s", p.Rendered)
		}
		if len(p.Nodes) != len(p.Relations)+1 {
			t.Fatalf("path structure inconsistent: %+v", p)
		}
	}
}

func TestCaseStudyElection(t *testing.T) {
	// Figure 6: β=1 retrieval connects the Sanders/Clinton/FBI story with
	// the Trump/Sanders story through the US presidential election node.
	e := sampleEngine(t, Config{Beta: 1, Model: LCAG, MaxDepth: 6})
	query := "Sanders said voters were tired of hearing about Clinton and the FBI emails."
	res, err := e.Search(query, 3)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[int]bool{}
	for _, r := range res {
		ids[r.ID] = true
	}
	if !ids[4] && !ids[5] {
		t.Fatalf("election stories not retrieved: %+v", res)
	}
	exp, err := e.Explain(query, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	var rendered []string
	for _, p := range exp.Paths {
		rendered = append(rendered, p.Rendered)
	}
	all := strings.Join(rendered, "\n")
	if !strings.Contains(all, "US presidential election 2016") {
		t.Fatalf("paths do not pass through the election node:\n%s", all)
	}
}

func TestEngineErrors(t *testing.T) {
	g, arts := corpus.Sample()
	e := New(g, DefaultConfig())
	if _, err := e.Search("x", 1); !errors.Is(err, ErrNotBuilt) {
		t.Fatalf("Search before Build: %v, want ErrNotBuilt", err)
	}
	if _, err := e.Explain("x", 0, 1); !errors.Is(err, ErrNotBuilt) {
		t.Fatalf("Explain before Build: %v, want ErrNotBuilt", err)
	}
	if _, err := e.ExplainDOT("x", 0, "t"); !errors.Is(err, ErrNotBuilt) {
		t.Fatalf("ExplainDOT before Build: %v, want ErrNotBuilt", err)
	}
	if err := e.Build(); !errors.Is(err, ErrNoDocuments) {
		t.Fatalf("Build with no documents: %v, want ErrNoDocuments", err)
	}
	for _, a := range arts[:2] {
		if err := e.Add(Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Add(Document{ID: arts[0].ID, Text: "again"}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate Add: %v, want ErrDuplicateID", err)
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	if err := e.Build(); !errors.Is(err, ErrAlreadyBuilt) {
		t.Fatalf("double Build: %v, want ErrAlreadyBuilt", err)
	}
	if _, err := e.Search("x", 0); !errors.Is(err, ErrInvalidK) {
		t.Fatalf("k=0: %v, want ErrInvalidK", err)
	}
	if _, err := e.Explain("x", 999, 1); !errors.Is(err, ErrUnknownDoc) {
		t.Fatalf("unknown doc: %v, want ErrUnknownDoc", err)
	}
	if _, err := e.ExplainDOT("x", 999, "t"); !errors.Is(err, ErrUnknownDoc) {
		t.Fatalf("unknown doc DOT: %v, want ErrUnknownDoc", err)
	}
	bad := 1.5
	if _, err := e.SearchContext(context.Background(), Query{Text: "x", K: 1, Beta: &bad}); !errors.Is(err, ErrInvalidBeta) {
		t.Fatalf("beta=1.5: %v, want ErrInvalidBeta", err)
	}
}

func TestQueriesWithoutEntitiesStillWork(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	res, err := e.Search("quarterly earnings beat expectations", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].ID != 7 {
		t.Fatalf("text-only query failed: %+v", res)
	}
	// β=1 with an entity-free query returns nothing rather than erroring.
	e1 := sampleEngine(t, Config{Beta: 1})
	res, err = e1.Search("quarterly earnings beat expectations", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 0 {
		t.Fatalf("β=1 entity-free query returned %+v", res)
	}
}

func TestBetaZeroEqualsTextOnly(t *testing.T) {
	// β=0 must produce exactly the BM25 text ranking (Table VII's "β=0
	// reduces to Lucene").
	e0 := sampleEngine(t, Config{Beta: 0})
	eHalf := sampleEngine(t, Config{Beta: 0.5, MaxDepth: 6})
	q := "Taliban bombing in Lahore and Peshawar"
	r0, err := e0.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	rh, err := eHalf.Search(q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r0) == 0 || len(rh) == 0 {
		t.Fatal("no results")
	}
	if r0[0].ID != 1 {
		t.Fatalf("BM25 top hit = %+v, want the bombing story", r0[0])
	}
}

func TestSnippets(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	res, err := e.Search("bombing attack in Lahore", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 {
		t.Fatal("no results")
	}
	top := res[0]
	if top.Snippet == "" {
		t.Fatal("no snippet on top result")
	}
	if !strings.Contains(strings.ToLower(top.Snippet), "lahore") &&
		!strings.Contains(strings.ToLower(top.Snippet), "bombing") {
		t.Fatalf("snippet not query-relevant: %q", top.Snippet)
	}
	// The snippet is a real sentence of the document, not fabricated text.
	found := false
	g, arts := corpus.Sample()
	_ = g
	for _, a := range arts {
		if a.ID == top.ID && strings.Contains(a.Text, top.Snippet) {
			found = true
		}
	}
	if !found {
		t.Fatalf("snippet %q not found in source document", top.Snippet)
	}
}

func TestExplainDOT(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	query := "Fighting between Taliban and Pakistan in Upper Dir"
	dot, err := e.ExplainDOT(query, 1, "test")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(dot, `digraph "test"`) {
		t.Fatalf("dot = %q", dot[:40])
	}
	if !strings.Contains(dot, "Khyber") || !strings.Contains(dot, "orange") {
		t.Fatal("overlap rendering missing")
	}
	// Entity-free document: empty rendering, no error.
	dot, err = e.ExplainDOT(query, 7, "test")
	if err != nil || dot != "" {
		t.Fatalf("entity-free doc: %q err=%v", dot, err)
	}
	if _, err := e.ExplainDOT(query, 999, "t"); err == nil {
		t.Fatal("unknown doc must fail")
	}
	unbuilt := New(e.Graph(), DefaultConfig())
	if _, err := unbuilt.ExplainDOT("x", 0, "t"); err == nil {
		t.Fatal("ExplainDOT before Build must fail")
	}
}

func TestQueryCache(t *testing.T) {
	c := newQueryCache(2, nil, nil)
	c.put("a", nil, []string{"a"})
	c.put("b", nil, []string{"b"})
	if _, terms, ok := c.get("a"); !ok || terms[0] != "a" {
		t.Fatal("miss on cached entry")
	}
	c.put("c", nil, []string{"c"}) // evicts b (a was just touched)
	if _, _, ok := c.get("b"); ok {
		t.Fatal("LRU eviction failed")
	}
	if _, _, ok := c.get("a"); !ok {
		t.Fatal("recently used entry evicted")
	}
	c.put("a", nil, []string{"a2"})
	if _, terms, _ := c.get("a"); terms[0] != "a2" {
		t.Fatal("update in place failed")
	}
	if c.len() != 2 {
		t.Fatalf("len = %d", c.len())
	}
	if c.hits.Value() == 0 || c.misses.Value() == 0 {
		t.Fatalf("hit/miss counters not recorded: hits=%d misses=%d", c.hits.Value(), c.misses.Value())
	}
}

func TestQueryCacheSharedAcrossSearchAndExplain(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	q := "Taliban fighting near Upper Dir in Pakistan"
	if _, err := e.Search(q, 3); err != nil {
		t.Fatal(err)
	}
	if e.queries.len() != 1 {
		t.Fatalf("cache len = %d after Search", e.queries.len())
	}
	if _, err := e.Explain(q, 0, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ExplainDOT(q, 0, "t"); err != nil {
		t.Fatal(err)
	}
	if e.queries.len() != 1 {
		t.Fatalf("cache len = %d, query re-analyzed", e.queries.len())
	}
}

// TestIncrementalAddMatchesBatchBuild: documents added after Build become
// searchable on the next query, and the segmented engine ranks exactly like
// one built from the full corpus in a single pass.
func TestIncrementalAddMatchesBatchBuild(t *testing.T) {
	g, arts := corpus.Sample()
	batch := sampleEngine(t, DefaultConfig())

	inc := New(g, DefaultConfig())
	for _, a := range arts[:3] {
		if err := inc.Add(Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := inc.Build(); err != nil {
		t.Fatal(err)
	}
	// Interleave searches with incremental adds across several segments.
	if _, err := inc.Search("Taliban", 2); err != nil {
		t.Fatal(err)
	}
	for _, a := range arts[3:6] {
		if err := inc.Add(Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := inc.Search("Clinton", 2); err != nil {
		t.Fatal(err)
	}
	for _, a := range arts[6:] {
		if err := inc.Add(Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []string{
		"Taliban bombing in Lahore and Peshawar",
		"Sanders said voters were tired of hearing about Clinton and the FBI emails.",
		"quarterly earnings beat expectations",
	} {
		a, err := batch.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := inc.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("segmented engine disagrees for %q:\n%v\nvs\n%v", q, a, b)
		}
	}
	// Explanations for late documents work too.
	exp, err := inc.Explain("Taliban fighting in Upper Dir Pakistan", 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.SharedEntities) == 0 {
		t.Fatal("no explanation for late-added document")
	}
}
