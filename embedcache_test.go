package newslink

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"newslink/internal/corpus"
	"newslink/internal/kg"
)

// Regression for the query-cache key bug: "Trump  Putin" and "trump putin"
// used to occupy two cache entries and run the NE component twice. The key
// is now the folded text (lowercased, whitespace collapsed), so casing and
// spacing variants of one query share a single analysis.
func TestQueryCacheKeyCanonicalization(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	variants := []string{
		"Military conflicts between Pakistan and Taliban",
		"military conflicts between pakistan and taliban",
		"  Military   conflicts  between Pakistan and Taliban ",
		"MILITARY CONFLICTS BETWEEN PAKISTAN AND TALIBAN",
	}
	for _, q := range variants {
		if _, err := e.Search(q, 3); err != nil {
			t.Fatalf("Search(%q): %v", q, err)
		}
	}
	if n := e.queries.len(); n != 1 {
		t.Fatalf("query cache holds %d entries for one canonical query, want 1", n)
	}
	if hits := e.met.cacheHits.Value(); hits != int64(len(variants)-1) {
		t.Fatalf("query cache hits = %d, want %d (every variant after the first)", hits, len(variants)-1)
	}
	if misses := e.met.cacheMisses.Value(); misses != 1 {
		t.Fatalf("query cache misses = %d, want 1", misses)
	}
}

// TestEntitySetCacheSharesEmbeddings proves cache tier two: queries whose
// TEXT differs (so the text-keyed tier misses) but whose resolved entity
// set is the same share one G* embedding.
func TestEntitySetCacheSharesEmbeddings(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	if _, err := e.Search("Taliban fighters attacked Pakistan", 3); err != nil {
		t.Fatal(err)
	}
	if got := e.met.embedCacheHits.Value(); got != 0 {
		t.Fatalf("embed cache hits after first query = %d, want 0", got)
	}
	// Different phrasing and entity order, same entity set.
	if _, err := e.Search("Pakistan was attacked by the Taliban", 3); err != nil {
		t.Fatal(err)
	}
	if got := e.met.embedCacheHits.Value(); got != 1 {
		t.Fatalf("embed cache hits after rephrased query = %d, want 1", got)
	}
	if n := e.queries.len(); n != 2 {
		t.Fatalf("query cache holds %d entries, want 2 (texts differ)", n)
	}
	if n := e.embeds.len(); n != 1 {
		t.Fatalf("embed cache holds %d entries, want 1 (entity sets equal)", n)
	}
}

// TestEntitySetKeyCanonical pins the canonicalization rules the cache key
// relies on: per-group fold + dedup + resolvability filter + sort, then a
// sort over group keys with duplicates kept.
func TestEntitySetKeyCanonical(t *testing.T) {
	g, _ := corpus.Sample()
	base := entitySetKey(g, [][]string{{"Pakistan", "Taliban"}})
	if base == "" {
		t.Fatal("sample graph did not resolve Pakistan/Taliban")
	}
	same := [][][]string{
		{{"Taliban", "Pakistan"}},                         // order
		{{"  pakistan ", "TALIBAN", "taliban"}},           // fold + dup
		{{"Pakistan", "no such entity xyzzy", "Taliban"}}, // unresolvable dropped
		{{"nope at all"}, {"Taliban", "Pakistan"}},        // unembeddable group dropped
	}
	for i, groups := range same {
		if got := entitySetKey(g, groups); got != base {
			t.Fatalf("variant %d: key %q != base %q", i, got, base)
		}
	}
	if k := entitySetKey(g, [][]string{{"Pakistan"}}); k == base {
		t.Fatal("different entity sets share a key")
	}
	// Duplicate groups are kept: they contribute twice to node counts.
	if k := entitySetKey(g, [][]string{{"Pakistan", "Taliban"}, {"Taliban", "Pakistan"}}); k == base {
		t.Fatal("duplicated group collapsed into the single-group key")
	}
	if k := entitySetKey(g, [][]string{{"zzz unresolvable"}}); k != "" {
		t.Fatalf("fully unresolvable groups produced key %q, want \"\"", k)
	}
}

// TestSwapGraphPurgesEmbedCaches is the invalidation test: entries of both
// query-cache tiers die on graph swap, so no request can be served a
// subgraph of an unpublished graph.
func TestSwapGraphPurgesEmbedCaches(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	if _, err := e.Search("Military conflicts between Pakistan and Taliban", 3); err != nil {
		t.Fatal(err)
	}
	if e.queries.len() == 0 || e.embeds.len() == 0 {
		t.Fatalf("expected warm caches before swap (queries=%d embeds=%d)", e.queries.len(), e.embeds.len())
	}
	oldState := e.gs.Load()
	g2, _ := corpus.Sample() // a fresh snapshot of the same entity universe
	e.SwapGraph(g2)
	if e.queries.len() != 0 {
		t.Fatalf("query cache survived SwapGraph with %d entries", e.queries.len())
	}
	if e.embeds.len() != 0 {
		t.Fatalf("embed cache survived SwapGraph with %d entries", e.embeds.len())
	}
	if e.gs.Load() == oldState {
		t.Fatal("graph state not republished")
	}
	if e.Graph() != g2 {
		t.Fatal("Graph() does not return the swapped graph")
	}
	// The engine keeps serving — and re-embeds against the new graph.
	if _, err := e.Search("Military conflicts between Pakistan and Taliban", 3); err != nil {
		t.Fatalf("search after SwapGraph: %v", err)
	}
	if e.embeds.len() != 1 {
		t.Fatalf("embed cache not repopulated after swap (len=%d)", e.embeds.len())
	}
}

// TestSwapGraphConcurrentWithSearches exercises the atomic graph-state
// publication under the race detector: readers always see a consistent
// (graph, pipeline, embedder) bundle while swaps happen mid-flight.
func TestSwapGraphConcurrentWithSearches(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	queries := []string{
		"Military conflicts between Pakistan and Taliban",
		"US presidential election",
		"earthquake relief",
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := e.Search(queries[rng.Intn(len(queries))], 3); err != nil {
					t.Errorf("search during swaps: %v", err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 20; i++ {
		g2, _ := corpus.Sample()
		e.SwapGraph(g2)
	}
	close(stop)
	wg.Wait()
}

// TestEngineOptions covers the functional-options constructor: Config
// stays a valid option, and the cache/fan-out knobs take effect.
func TestEngineOptions(t *testing.T) {
	g, arts := corpus.Sample()
	e := New(g, DefaultConfig(), WithQueryCache(0), WithEmbedCache(0), WithParallelEmbed(1))
	for _, a := range arts {
		if err := e.Add(Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := e.Search("Military conflicts between Pakistan and Taliban", 3); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.queries.len(); n != 0 {
		t.Fatalf("disabled query cache stored %d entries", n)
	}
	if n := e.embeds.len(); n != 0 {
		t.Fatalf("disabled embed cache stored %d entries", n)
	}
	// Hot labels still tracked (embedding ran twice, once per uncached query).
	if len(e.HotLabels(0)) == 0 {
		t.Fatal("hot-label tracker empty after embedded queries")
	}
	// New(g) alone must behave like DefaultConfig.
	if e2 := New(g); e2.cfg != DefaultConfig() {
		t.Fatalf("New(g) config = %+v, want DefaultConfig", e2.cfg)
	}
}

// FuzzQueryCacheKey fuzzes the canonicalized cache keys of both tiers:
// kg.Fold must be idempotent and insensitive to case/whitespace noise, and
// entitySetKey must be invariant under label permutation, duplication and
// folding noise — the properties the caches rely on for correctness (two
// texts sharing a key MUST mean the same analysis).
func FuzzQueryCacheKey(f *testing.F) {
	f.Add("Trump  Putin")
	f.Add("military conflicts between pakistan and taliban")
	f.Add("  Swat\tValley ")
	f.Add("a b") // non-breaking space
	g, _ := corpus.Sample()
	f.Fuzz(func(t *testing.T, text string) {
		folded := kg.Fold(text)
		if again := kg.Fold(folded); again != folded {
			t.Fatalf("Fold not idempotent: %q -> %q", folded, again)
		}
		if kg.Fold(" "+text+"\t") != folded {
			t.Fatal("Fold sensitive to surrounding whitespace")
		}
		// Case property: folding is stable under simple lowercasing (full
		// upper/lower round trips are NOT identity in Unicode — ϰ→Κ→κ — and
		// the cache key never claims that).
		if kg.Fold(strings.ToLower(text)) != folded {
			t.Fatalf("Fold not stable under ToLower for %q", text)
		}

		// Build an entity group from the text's words plus known labels, and
		// require key invariance under shuffle + duplication + fold noise.
		words := strings.Fields(text)
		if len(words) > 6 {
			words = words[:6]
		}
		group := append([]string{"Pakistan", "Taliban"}, words...)
		base := entitySetKey(g, [][]string{group})
		noisy := make([]string, len(group))
		for i, l := range group {
			noisy[i] = " " + strings.ToLower(l) + "  "
		}
		rng := rand.New(rand.NewSource(int64(len(text))))
		rng.Shuffle(len(noisy), func(i, j int) { noisy[i], noisy[j] = noisy[j], noisy[i] })
		noisy = append(noisy, group[0]) // duplicate
		if got := entitySetKey(g, [][]string{noisy}); got != base {
			t.Fatalf("entitySetKey not canonical: %q vs %q", got, base)
		}
	})
}
