module newslink

go 1.22
