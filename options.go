package newslink

import "time"

// Option configures an Engine at construction. Config itself is an Option
// (it replaces the whole base configuration), so both styles compose:
//
//	e := newslink.New(g, newslink.DefaultConfig())
//	e := newslink.New(g, cfg, newslink.WithEmbedCache(256), newslink.WithParallelEmbed(4))
//
// Knobs that must stay adjustable at runtime (the BON stage deadline) keep
// their atomic setters; the corresponding options only set the initial
// value.
type Option interface {
	apply(*engineOptions)
}

// engineOptions is the resolved construction-time configuration.
type engineOptions struct {
	cfg Config
	// queryCacheSize bounds the text-keyed query-analysis LRU.
	queryCacheSize int
	// embedCacheSize bounds the entity-set-keyed embedding LRU (tier two of
	// the query cache: different texts naming the same entities share one
	// embedding). <= 0 disables it.
	embedCacheSize int
	// groupCacheSize bounds the embedder's per-entity-group subgraph LRU —
	// the memoized label-set → subgraph (and thereby label → distance
	// vector) store for the hottest entity combinations. <= 0 disables it.
	groupCacheSize int
	// embedWorkers bounds the per-document entity-group embedding fan-out;
	// 0 selects GOMAXPROCS.
	embedWorkers int
	// hotLabelCap bounds the Space-Saving hot-label tracker.
	hotLabelCap int
	// bonTimeout is the initial BON stage deadline (0 = none).
	bonTimeout time.Duration
	// walDir, when non-empty, arms the write-ahead log there: every
	// post-Build write is logged and fsynced (group commit) before it is
	// acknowledged, and Build/Load replay the log so acknowledged writes
	// survive a crash between snapshots.
	walDir string
	// ingestQueue bounds the async ingest queue (Ingest); 0 disables the
	// pipeline and Ingest degrades to a synchronous upsert.
	ingestQueue int
	// ingestBatch bounds how many queued writes one applier pass analyzes,
	// indexes and seals as a single segment.
	ingestBatch int
	// quantizedEmb switches the BON stage to int8-quantized dense
	// signatures (quant.go): each document's subgraph embedding is
	// projected to a fixed-dimension signature, scalar-quantized to int8
	// with a per-vector scale, and scored by integer dot product on ¼ the
	// bytes of the float path.
	quantizedEmb bool
}

func defaultEngineOptions() engineOptions {
	return engineOptions{
		cfg:            DefaultConfig(),
		queryCacheSize: 64,
		embedCacheSize: 128,
		groupCacheSize: 256,
		embedWorkers:   0, // GOMAXPROCS
		hotLabelCap:    256,
		ingestBatch:    256,
	}
}

// apply makes Config an Option: it replaces the engine's base
// configuration, so every pre-options call site — New(g, cfg) — keeps
// compiling and behaving as before.
func (c Config) apply(o *engineOptions) { o.cfg = c }

// optionFunc adapts a closure to the Option interface.
type optionFunc func(*engineOptions)

func (f optionFunc) apply(o *engineOptions) { f(o) }

// WithConfig replaces the base Config (equivalent to passing the Config
// directly; provided for call sites that prefer uniform option style).
func WithConfig(cfg Config) Option {
	return optionFunc(func(o *engineOptions) { o.cfg = cfg })
}

// WithQueryCache sets the capacity of the text-keyed query-analysis LRU
// (default 64). n <= 0 disables query memoization. Cached analyses are
// safely shared across requests with different After/Before/Entities
// clauses: filters apply at retrieval, after analysis and embedding.
func WithQueryCache(n int) Option {
	return optionFunc(func(o *engineOptions) { o.queryCacheSize = n })
}

// WithEmbedCache sets the capacity of the entity-set embedding cache
// (default 128): query embeddings are additionally memoized under their
// canonicalized resolved entity set, so differently-phrased queries naming
// the same entities share one G* computation. n <= 0 disables the tier.
func WithEmbedCache(n int) Option {
	return optionFunc(func(o *engineOptions) { o.embedCacheSize = n })
}

// WithGroupCache sets the capacity of the embedder's per-entity-group
// subgraph cache (default 256), which memoizes the label → distance-vector
// work of the hottest entity groups across both indexing and queries.
// n <= 0 disables it.
func WithGroupCache(n int) Option {
	return optionFunc(func(o *engineOptions) { o.groupCacheSize = n })
}

// WithParallelEmbed bounds how many entity groups of one document are
// embedded concurrently (default 0 = GOMAXPROCS; 1 forces sequential
// embedding). Results are deterministic at any setting.
func WithParallelEmbed(workers int) Option {
	return optionFunc(func(o *engineOptions) { o.embedWorkers = workers })
}

// WithHotLabels sets the capacity of the Space-Saving tracker behind
// HotLabels (default 256). n <= 0 keeps the default.
func WithHotLabels(n int) Option {
	return optionFunc(func(o *engineOptions) { o.hotLabelCap = n })
}

// WithBONTimeout sets the initial BON stage deadline, exactly as if
// SetBONTimeout(d) were called on the new engine; SetBONTimeout remains
// the runtime-safe way to adjust it afterwards.
func WithBONTimeout(d time.Duration) Option {
	return optionFunc(func(o *engineOptions) { o.bonTimeout = d })
}

// WithWAL arms the write-ahead log at dir. Build (and Load) open the log,
// replay any records a crash left behind, and from then on append every
// post-Build write — Add, Update, Delete, Ingest — before acknowledging
// it, with fsyncs batched across concurrent writers (group commit). Save
// rotates the log inside its capture critical section and prunes the old
// generation once the snapshot is durably installed, so dir never grows
// past one snapshot interval of writes. An empty dir disables the log.
func WithWAL(dir string) Option {
	return optionFunc(func(o *engineOptions) { o.walDir = dir })
}

// WithIngestQueue arms the async ingest pipeline with a queue of n
// pending writes. Ingest acknowledges a document once it is durably
// logged (when WithWAL is set) and queued; a single applier goroutine
// then batch-analyzes and indexes queued writes outside callers' critical
// paths. When the queue is full, writes are shed with ErrIngestOverload —
// the HTTP layer turns that into 429 + Retry-After. While the pipeline is
// armed, the synchronous write APIs route through the same queue (waiting
// for their result), so the log order and apply order stay identical.
// n <= 0 disables the pipeline.
func WithIngestQueue(n int) Option {
	return optionFunc(func(o *engineOptions) { o.ingestQueue = n })
}

// WithQuantizedEmbeddings switches BON retrieval to int8-quantized dense
// signatures: each document's subgraph embedding is feature-hashed into a
// fixed 256-dimension signature, scalar-quantized (one float32 scale + one
// int8 per dimension, the Lucene scheme), and the BON stage ranks by
// integer dot product over the signatures instead of traversing the node
// postings. Signatures are built at seal/merge time, persisted in version-2
// emb.bin snapshots (version-1 snapshots still load and are re-encoded),
// and cost ~260 bytes per document. The ranking is approximate — the recall
// floor (≥0.99 overlap@k against the exact float scoring) is
// property-tested — so the option is opt-in; without it the engine's
// behaviour and snapshot bytes are unchanged.
func WithQuantizedEmbeddings() Option {
	return optionFunc(func(o *engineOptions) { o.quantizedEmb = true })
}

// WithIngestBatch bounds how many queued writes the ingest applier folds
// into one micro-batch (default 256): each batch is analyzed in parallel,
// indexed under one lock acquisition and sealed as one segment, sized so
// the tiered merge policy (mergeFactor 8) keeps segment counts — and
// search fan-out — bounded under sustained ingest. n <= 0 keeps the
// default.
func WithIngestBatch(n int) Option {
	return optionFunc(func(o *engineOptions) {
		if n > 0 {
			o.ingestBatch = n
		}
	})
}
