package newslink

import (
	"fmt"
	"reflect"
	"testing"

	"newslink/internal/corpus"
	"newslink/internal/kg"
)

func TestAddAllMatchesSequentialAdd(t *testing.T) {
	w := kg.Generate(kg.DefaultConfig(19))
	arts := corpus.Generate(w, corpus.CNNLike(), 60, 19)
	var docs []Document
	for _, a := range arts {
		docs = append(docs, Document{ID: a.ID, Title: a.Title, Text: a.Text})
	}
	seq := New(w.Graph, DefaultConfig())
	for _, d := range docs {
		if err := seq.Add(d); err != nil {
			t.Fatal(err)
		}
	}
	if err := seq.Build(); err != nil {
		t.Fatal(err)
	}
	par := New(w.Graph, DefaultConfig())
	if err := par.AddAll(docs, 4); err != nil {
		t.Fatal(err)
	}
	if err := par.Build(); err != nil {
		t.Fatal(err)
	}
	queries := []string{
		arts[3].Text[:80],
		arts[40].Title,
		"clashes near the border",
	}
	for _, q := range queries {
		a, err := seq.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		b, err := par.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("parallel and sequential indexing disagree for %q:\n%v\nvs\n%v", q, a, b)
		}
	}
}

func TestAddAllWorkerEdgeCases(t *testing.T) {
	g, arts := corpus.Sample()
	var docs []Document
	for _, a := range arts {
		docs = append(docs, Document{ID: a.ID, Title: a.Title, Text: a.Text})
	}
	// workers <= 0 defaults to GOMAXPROCS; workers > len(docs) is clamped.
	for _, workers := range []int{0, 1, 100} {
		e := New(g, DefaultConfig())
		if err := e.AddAll(docs, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if e.NumDocs() != len(docs) {
			t.Fatalf("workers=%d: NumDocs=%d", workers, e.NumDocs())
		}
		if err := e.Build(); err != nil {
			t.Fatal(err)
		}
	}
	// AddAll after Build opens a late segment; the new docs become
	// searchable on the next Search.
	e := New(g, DefaultConfig())
	if err := e.AddAll(docs[:1], 1); err != nil {
		t.Fatal(err)
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	if err := e.AddAll(docs[1:], 2); err != nil {
		t.Fatal(err)
	}
	if e.NumDocs() != len(docs) {
		t.Fatalf("NumDocs = %d", e.NumDocs())
	}
}

func ExampleEngine_Search() {
	g, arts := corpus.Sample()
	e := New(g, DefaultConfig())
	for _, a := range arts {
		if err := e.Add(Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
			panic(err)
		}
	}
	if err := e.Build(); err != nil {
		panic(err)
	}
	res, err := e.Search("Taliban bombing in Lahore and Peshawar", 1)
	if err != nil {
		panic(err)
	}
	fmt.Println(res[0].Title)
	// Output: Bombing attack by Taliban in Pakistan
}
