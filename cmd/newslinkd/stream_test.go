package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"newslink"
)

// TestDaemonStreamingIngestAcrossRestarts: the -wal/-ingest-queue flags
// wire up POST /v1/docs:stream end to end — documents streamed into one
// daemon are acknowledged with 202, survive its drain, and are served by
// the next daemon started over the same WAL directory.
func TestDaemonStreamingIngestAcrossRestarts(t *testing.T) {
	walDir := t.TempDir()
	saved := engineOpts
	engineOpts = []newslink.Option{
		newslink.WithWAL(walDir),
		newslink.WithIngestQueue(32),
	}
	defer func() { engineOpts = saved }()

	run := func(fn func(base string)) {
		d := testDaemon(t, daemonConfig{drainTimeout: 5 * time.Second})
		ctx, cancel := context.WithCancel(context.Background())
		runErr := make(chan error, 1)
		go func() { runErr <- d.run(ctx) }()
		fn("http://" + d.Addr())
		cancel()
		if err := <-runErr; err != nil {
			t.Fatalf("run returned %v", err)
		}
	}

	const n = 5
	run(func(base string) {
		for i := 0; i < n; i++ {
			body := fmt.Sprintf(`{"id": %d, "title": "wire %d", "text": "A streamed bulletin about floods in Karachi."}`, 8000+i, i)
			resp, err := http.Post(base+"/v1/docs:stream", "application/json", strings.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("stream %d: status %d, want 202", i, resp.StatusCode)
			}
		}
	})

	// Second daemon, same WAL: replay restores every acknowledged write.
	run(func(base string) {
		resp, err := http.Get(base + "/v1/search?q=streamed+bulletin+floods+Karachi&k=10")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sr struct {
			Results []struct {
				ID int `json:"id"`
			} `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
			t.Fatal(err)
		}
		got := map[int]bool{}
		for _, r := range sr.Results {
			got[r.ID] = true
		}
		for i := 0; i < n; i++ {
			if !got[8000+i] {
				t.Fatalf("streamed doc %d lost across restart; served %v", 8000+i, got)
			}
		}
	})
}
