// Command newslinkd serves NewsLink search over HTTP.
//
//	newslinkd [-addr :8080] [-kg kg.tsv -corpus corpus.jsonl]
//	          [-beta 0.2] [-snapshot dir] [-workers 0] [-querytimeout 20s]
//	          [-debug-addr :6060] [-log-level info]
//
// Without -kg/-corpus the built-in sample corpus is served. With -snapshot,
// a previously saved engine snapshot is loaded (or written after indexing
// if the directory does not exist yet), so restarts skip the corpus
// embedding cost.
//
// The API is served under /v1/ (unversioned paths remain as aliases).
// -querytimeout bounds each query server-side; an exceeded deadline is
// reported as 504 in the JSON error envelope, a client disconnect as 499.
//
// Observability: every request gets an X-Request-Id and one structured
// access-log line on stderr (-log-level debug additionally logs per-stage
// trace spans of trace=1 requests); /v1/metrics and /v1/metrics/prom expose
// the metric registry. -debug-addr starts a second, private listener with
// net/http/pprof under /debug/pprof/ plus the same metrics endpoints —
// keep it off public interfaces.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"newslink"
	"newslink/internal/corpus"
	"newslink/internal/kg"
	"newslink/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	kgPath := flag.String("kg", "", "knowledge graph TSV (default: built-in sample)")
	corpusPath := flag.String("corpus", "", "corpus JSONL (default: built-in sample)")
	beta := flag.Float64("beta", 0.2, "Equation 3 fusion weight")
	snapshot := flag.String("snapshot", "", "engine snapshot directory (load if present, save after indexing otherwise)")
	onDisk := flag.Bool("ondisk", false, "serve snapshot postings from disk instead of loading them into memory")
	workers := flag.Int("workers", 0, "indexing workers (0 = GOMAXPROCS)")
	queryTimeout := flag.Duration("querytimeout", 20*time.Second, "per-request search deadline (0 = unbounded); expired requests return 504")
	debugAddr := flag.String("debug-addr", "", "optional private listen address for net/http/pprof and metrics (empty = disabled)")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn or error")
	flag.Parse()

	level, err := parseLogLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	engine, err := buildEngineMode(*kgPath, *corpusPath, *beta, *snapshot, *workers, *onDisk)
	if err != nil {
		log.Fatal(err)
	}
	if *debugAddr != "" {
		go func() {
			logger.Info("debug server listening", "addr", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, debugHandler(engine)); err != nil {
				logger.Error("debug server failed", "err", err)
			}
		}()
	}
	log.Printf("serving %d documents on %s (API under /v1/)", engine.NumDocs(), *addr)
	srv := &http.Server{
		Addr: *addr,
		Handler: server.New(engine,
			server.WithQueryTimeout(*queryTimeout),
			server.WithLogger(logger)).Handler(),
		ReadTimeout:  10 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}

func parseLogLevel(s string) (slog.Level, error) {
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("invalid -log-level %q (want debug, info, warn or error)", s)
	}
	return l, nil
}

// debugHandler is the private -debug-addr surface: the standard pprof
// endpoints (registered explicitly rather than via the package's
// DefaultServeMux side effect) plus the metric registry in both formats.
func debugHandler(engine *newslink.Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = engine.Metrics().WriteJSON(w)
	})
	mux.HandleFunc("GET /v1/metrics/prom", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = engine.Metrics().WritePrometheus(w)
	})
	return mux
}

func buildEngine(kgPath, corpusPath string, beta float64, snapshot string, workers int) (*newslink.Engine, error) {
	return buildEngineMode(kgPath, corpusPath, beta, snapshot, workers, false)
}

func buildEngineMode(kgPath, corpusPath string, beta float64, snapshot string, workers int, onDisk bool) (*newslink.Engine, error) {
	var g *kg.Graph
	var arts []corpus.Article
	if kgPath == "" && corpusPath == "" {
		g, arts = corpus.Sample()
	} else {
		if kgPath == "" || corpusPath == "" {
			return nil, fmt.Errorf("-kg and -corpus must be given together")
		}
		f, err := os.Open(kgPath)
		if err != nil {
			return nil, err
		}
		g, err = kg.Read(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		cf, err := os.Open(corpusPath)
		if err != nil {
			return nil, err
		}
		arts, err = corpus.ReadJSONL(cf)
		cf.Close()
		if err != nil {
			return nil, err
		}
	}
	if snapshot != "" {
		if _, err := os.Stat(snapshot); err == nil {
			log.Printf("loading snapshot from %s (ondisk=%v)", snapshot, onDisk)
			if onDisk {
				return newslink.LoadOnDisk(snapshot, g)
			}
			return newslink.Load(snapshot, g)
		}
	}
	cfg := newslink.DefaultConfig()
	cfg.Beta = beta
	engine := newslink.New(g, cfg)
	docs := make([]newslink.Document, len(arts))
	for i, a := range arts {
		docs[i] = newslink.Document{ID: a.ID, Title: a.Title, Text: a.Text}
	}
	t0 := time.Now()
	if err := engine.AddAll(docs, workers); err != nil {
		return nil, err
	}
	if err := engine.Build(); err != nil {
		return nil, err
	}
	log.Printf("indexed %d documents in %v", len(docs), time.Since(t0).Round(time.Millisecond))
	if snapshot != "" {
		if err := engine.Save(snapshot); err != nil {
			return nil, fmt.Errorf("saving snapshot: %w", err)
		}
		log.Printf("saved snapshot to %s", snapshot)
	}
	return engine, nil
}
