// Command newslinkd serves NewsLink search over HTTP.
//
//	newslinkd [-addr :8080] [-kg kg.tsv -corpus corpus.jsonl]
//	          [-beta 0.2] [-snapshot dir] [-workers 0] [-querytimeout 20s]
//	          [-max-inflight 256] [-admission-wait 100ms] [-bon-timeout 0]
//	          [-wal dir] [-ingest-queue 0] [-ingest-batch 0]
//	          [-drain-timeout 15s] [-drain-grace 0]
//	          [-debug-addr :6060] [-log-level info]
//
// Without -kg/-corpus the built-in sample corpus is served. With -snapshot,
// a previously saved engine snapshot is loaded (or written after indexing
// if the directory does not exist yet), so restarts skip the corpus
// embedding cost.
//
// The API is served under /v1/ (unversioned paths remain as aliases).
// -querytimeout bounds each query server-side; an exceeded deadline is
// reported as 504 in the JSON error envelope, a client disconnect as 499.
//
// Resilience: -max-inflight caps concurrent query work (excess requests
// wait up to -admission-wait, then are shed with 429); -bon-timeout puts
// a stage deadline on the graph side of fused search, past which results
// degrade to BOW-only ranking instead of blocking. On SIGINT/SIGTERM the
// process drains: /v1/readyz flips to 503 (liveness /v1/healthz stays
// 200), -drain-grace lets load balancers observe the flip, in-flight
// requests run to completion within -drain-timeout, the ingest queue is
// applied and the write-ahead log closed, and the process exits 0.
//
// Streaming ingestion: -ingest-queue arms the async write pipeline behind
// POST /v1/docs:stream (a full queue sheds with 429 + Retry-After), and
// -wal makes every acknowledged post-startup write durable — after a
// crash the next start with the same -wal directory replays the log.
//
// Observability: every request gets an X-Request-Id and one structured
// access-log line on stderr (-log-level debug additionally logs per-stage
// trace spans of trace=1 requests); /v1/metrics and /v1/metrics/prom expose
// the metric registry. -debug-addr starts a second, private listener with
// net/http/pprof under /debug/pprof/ plus the same metrics endpoints —
// keep it off public interfaces.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"newslink"
	"newslink/internal/corpus"
	"newslink/internal/kg"
	"newslink/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	kgPath := flag.String("kg", "", "knowledge graph TSV (default: built-in sample)")
	corpusPath := flag.String("corpus", "", "corpus JSONL (default: built-in sample)")
	beta := flag.Float64("beta", 0.2, "Equation 3 fusion weight")
	snapshot := flag.String("snapshot", "", "engine snapshot directory (load if present, save after indexing otherwise)")
	onDisk := flag.Bool("ondisk", false, "serve snapshot postings from disk instead of loading them into memory")
	workers := flag.Int("workers", 0, "indexing workers (0 = GOMAXPROCS)")
	queryTimeout := flag.Duration("querytimeout", 20*time.Second, "per-request search deadline (0 = unbounded); expired requests return 504")
	maxInFlight := flag.Int("max-inflight", 256, "admission-control capacity for the query routes (0 = unlimited)")
	admissionWait := flag.Duration("admission-wait", 100*time.Millisecond, "how long an over-capacity request may wait before it is shed with 429")
	bonTimeout := flag.Duration("bon-timeout", 0, "BON stage deadline for fused search; past it results degrade to BOW-only (0 = unbounded)")
	embedWorkers := flag.Int("embed-workers", 0, "per-document entity-group embedding fan-out (0 = GOMAXPROCS, 1 = sequential)")
	embedCache := flag.Int("embed-cache", 128, "entity-set embedding cache capacity (0 disables the tier)")
	walDir := flag.String("wal", "", "write-ahead log directory: post-startup writes are durably logged and replayed after a crash (empty = disabled)")
	ingestQueue := flag.Int("ingest-queue", 0, "bounded async ingest queue for POST /v1/docs:stream; a full queue sheds with 429 (0 = synchronous ingestion)")
	ingestBatch := flag.Int("ingest-batch", 0, "documents per ingest micro-batch (0 = default)")
	drainTimeout := flag.Duration("drain-timeout", 15*time.Second, "shutdown deadline for in-flight requests after SIGINT/SIGTERM")
	drainGrace := flag.Duration("drain-grace", 0, "pause between flipping /v1/readyz to 503 and closing listeners, for load balancers to observe the flip")
	debugAddr := flag.String("debug-addr", "", "optional private listen address for net/http/pprof and metrics (empty = disabled)")
	logLevel := flag.String("log-level", "info", "structured log level: debug, info, warn or error")
	shardMode := flag.Bool("shard", false, "run as a cluster shard worker: serve the /v1/shard/ RPC surface and wait for a router assignment")
	shardID := flag.String("shard-id", "", "shard worker identity (default: the bound listen address)")
	shardDir := flag.String("shard-dir", "", "shard worker artifact directory (default: a fresh temp directory)")
	routerMode := flag.Bool("router", false, "run as a cluster router: partition the -snapshot across -shard-addrs workers and serve search/explain by scatter-gather")
	shardAddrs := flag.String("shard-addrs", "", "router: comma-separated shard endpoint groups, replicas within a group separated by '|' (e.g. http://a,http://b1|http://b2)")
	selfURL := flag.String("self-url", "", "router: externally reachable base URL of this router; workers fetch missing segment artifacts from it (default: the bound listen address)")
	hedge := flag.Bool("hedge", false, "router: hedge slow shard requests to a second replica after the shard's p99 latency")
	probeInterval := flag.Duration("probe-interval", 2*time.Second, "router: health-probe interval for ejected shard endpoints")
	flag.Parse()

	level, err := parseLogLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))

	if *shardMode && *routerMode {
		log.Fatal("-shard and -router are mutually exclusive")
	}
	if *shardMode {
		if err := runShard(*addr, *shardID, *shardDir, *kgPath, logger); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *routerMode {
		if err := runRouter(routerConfig{
			addr:          *addr,
			snapshot:      *snapshot,
			kgPath:        *kgPath,
			shardAddrs:    *shardAddrs,
			selfURL:       *selfURL,
			hedge:         *hedge,
			probeInterval: *probeInterval,
			queryTimeout:  *queryTimeout,
			logger:        logger,
		}); err != nil {
			log.Fatal(err)
		}
		return
	}

	engineOpts = []newslink.Option{
		newslink.WithParallelEmbed(*embedWorkers),
		newslink.WithEmbedCache(*embedCache),
	}
	if *walDir != "" {
		engineOpts = append(engineOpts, newslink.WithWAL(*walDir))
	}
	if *ingestQueue > 0 {
		engineOpts = append(engineOpts, newslink.WithIngestQueue(*ingestQueue))
	}
	if *ingestBatch > 0 {
		engineOpts = append(engineOpts, newslink.WithIngestBatch(*ingestBatch))
	}
	engine, err := buildEngineMode(*kgPath, *corpusPath, *beta, *snapshot, *workers, *onDisk)
	if err != nil {
		log.Fatal(err)
	}
	engine.SetBONTimeout(*bonTimeout)

	d, err := newDaemon(engine, daemonConfig{
		addr:          *addr,
		debugAddr:     *debugAddr,
		queryTimeout:  *queryTimeout,
		maxInFlight:   *maxInFlight,
		admissionWait: *admissionWait,
		drainTimeout:  *drainTimeout,
		drainGrace:    *drainGrace,
		logger:        logger,
	})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving %d documents on %s (API under /v1/)", engine.NumDocs(), d.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := d.run(ctx); err != nil {
		log.Fatal(err)
	}
}

// daemonConfig collects everything newDaemon needs beyond the engine.
type daemonConfig struct {
	addr          string
	debugAddr     string // empty = no debug listener
	queryTimeout  time.Duration
	maxInFlight   int
	admissionWait time.Duration
	drainTimeout  time.Duration
	drainGrace    time.Duration
	logger        *slog.Logger
}

// daemon owns the process's listeners and drives the serve/drain
// lifecycle. Listeners are bound in newDaemon — synchronously, so a port
// clash is a startup error instead of a log line from a goroutine racing
// main.
type daemon struct {
	api     *server.Server
	engine  *newslink.Engine
	main    *http.Server
	mainLn  net.Listener
	debug   *http.Server // nil when the debug listener is disabled
	debugLn net.Listener
	cfg     daemonConfig
}

func newDaemon(engine *newslink.Engine, cfg daemonConfig) (*daemon, error) {
	if cfg.logger == nil {
		cfg.logger = slog.Default()
	}
	api := server.New(engine,
		server.WithQueryTimeout(cfg.queryTimeout),
		server.WithMaxInFlight(cfg.maxInFlight),
		server.WithAdmissionWait(cfg.admissionWait),
		server.WithLogger(cfg.logger))
	d := &daemon{
		api:    api,
		engine: engine,
		main:   hardenServer(&http.Server{Handler: api.Handler()}),
		cfg:    cfg,
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return nil, fmt.Errorf("binding %s: %w", cfg.addr, err)
	}
	d.mainLn = ln
	if cfg.debugAddr != "" {
		dln, err := net.Listen("tcp", cfg.debugAddr)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("binding debug address %s: %w", cfg.debugAddr, err)
		}
		d.debugLn = dln
		// The debug server gets its own http.Server (so shutdown reaches
		// it too) and no WriteTimeout: pprof profile captures legitimately
		// stream for longer than any sane response deadline.
		d.debug = hardenServer(&http.Server{Handler: debugHandler(engine)})
		d.debug.WriteTimeout = 0
	}
	return d, nil
}

// hardenServer applies the shared protections against slow or abusive
// clients to a listener-facing http.Server.
func hardenServer(s *http.Server) *http.Server {
	s.ReadHeaderTimeout = 5 * time.Second
	s.ReadTimeout = 15 * time.Second
	s.WriteTimeout = 30 * time.Second
	s.IdleTimeout = 60 * time.Second
	s.MaxHeaderBytes = 1 << 20
	return s
}

// Addr returns the main listener's bound address (useful with ":0").
func (d *daemon) Addr() string { return d.mainLn.Addr().String() }

// DebugAddr returns the debug listener's bound address, or "".
func (d *daemon) DebugAddr() string {
	if d.debugLn == nil {
		return ""
	}
	return d.debugLn.Addr().String()
}

// run serves until ctx is cancelled (SIGINT/SIGTERM in main) or a
// listener fails, then drains: readiness flips to 503, the optional
// grace period lets load balancers take the instance out of rotation,
// and both servers shut down gracefully — admitted requests complete,
// bounded by the drain timeout. Returns nil on a clean drain.
func (d *daemon) run(ctx context.Context) error {
	errc := make(chan error, 2)
	go func() {
		if err := d.main.Serve(d.mainLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- fmt.Errorf("api server: %w", err)
		}
	}()
	if d.debug != nil {
		d.cfg.logger.Info("debug server listening", "addr", d.DebugAddr())
		go func() {
			if err := d.debug.Serve(d.debugLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errc <- fmt.Errorf("debug server: %w", err)
			}
		}()
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	d.cfg.logger.Info("drain started",
		"grace", d.cfg.drainGrace, "timeout", d.cfg.drainTimeout)
	d.api.SetReady(false)
	if d.cfg.drainGrace > 0 {
		time.Sleep(d.cfg.drainGrace)
	}
	sctx, cancel := context.WithTimeout(context.Background(), d.cfg.drainTimeout)
	defer cancel()
	err := d.main.Shutdown(sctx)
	if d.debug != nil {
		err = errors.Join(err, d.debug.Shutdown(sctx))
	}
	if err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	// HTTP is quiet; now drain the engine itself — apply everything the
	// ingest queue accepted and fsync/close the write-ahead log, so a
	// clean shutdown leaves nothing for the next start to replay-repair.
	if err := d.engine.Close(); err != nil {
		return fmt.Errorf("closing engine: %w", err)
	}
	d.cfg.logger.Info("drain complete")
	return nil
}

func parseLogLevel(s string) (slog.Level, error) {
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("invalid -log-level %q (want debug, info, warn or error)", s)
	}
	return l, nil
}

// debugHandler is the private -debug-addr surface: the standard pprof
// endpoints (registered explicitly rather than via the package's
// DefaultServeMux side effect) plus the metric registry in both formats.
func debugHandler(engine *newslink.Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = engine.Metrics().WriteJSON(w)
	})
	mux.HandleFunc("GET /v1/metrics/prom", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = engine.Metrics().WritePrometheus(w)
	})
	return mux
}

// engineOpts carries the flag-derived construction options into
// buildEngineMode. Snapshot loads use the persisted Config as the base and
// layer these on top — runtime choices like the WAL directory and the
// ingest queue are per-deployment, not part of the snapshot.
var engineOpts []newslink.Option

func buildEngine(kgPath, corpusPath string, beta float64, snapshot string, workers int) (*newslink.Engine, error) {
	return buildEngineMode(kgPath, corpusPath, beta, snapshot, workers, false)
}

func buildEngineMode(kgPath, corpusPath string, beta float64, snapshot string, workers int, onDisk bool) (*newslink.Engine, error) {
	var g *kg.Graph
	var arts []corpus.Article
	if kgPath == "" && corpusPath == "" {
		g, arts = corpus.Sample()
	} else {
		if kgPath == "" || corpusPath == "" {
			return nil, fmt.Errorf("-kg and -corpus must be given together")
		}
		f, err := os.Open(kgPath)
		if err != nil {
			return nil, err
		}
		g, err = kg.Read(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		cf, err := os.Open(corpusPath)
		if err != nil {
			return nil, err
		}
		arts, err = corpus.ReadJSONL(cf)
		cf.Close()
		if err != nil {
			return nil, err
		}
	}
	if snapshot != "" {
		if _, err := os.Stat(snapshot); err == nil {
			log.Printf("loading snapshot from %s (ondisk=%v)", snapshot, onDisk)
			if onDisk {
				return newslink.LoadOnDisk(snapshot, g, engineOpts...)
			}
			return newslink.Load(snapshot, g, engineOpts...)
		}
	}
	cfg := newslink.DefaultConfig()
	cfg.Beta = beta
	engine := newslink.New(g, append([]newslink.Option{cfg}, engineOpts...)...)
	docs := make([]newslink.Document, len(arts))
	for i, a := range arts {
		docs[i] = newslink.Document{ID: a.ID, Title: a.Title, Text: a.Text, Time: a.Time}
	}
	t0 := time.Now()
	if err := engine.AddAll(docs, workers); err != nil {
		return nil, err
	}
	if err := engine.Build(); err != nil {
		return nil, err
	}
	log.Printf("indexed %d documents in %v", len(docs), time.Since(t0).Round(time.Millisecond))
	if snapshot != "" {
		if err := engine.Save(snapshot); err != nil {
			return nil, fmt.Errorf("saving snapshot: %w", err)
		}
		log.Printf("saved snapshot to %s", snapshot)
	}
	return engine, nil
}
