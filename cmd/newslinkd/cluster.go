// Cluster modes of newslinkd: -shard runs the process as a scatter-gather
// shard worker, -router as the router that partitions a snapshot across
// workers and serves the public API over them. See DESIGN.md §14 and the
// README's Operations section for the full topology.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"newslink/internal/cluster"
	"newslink/internal/corpus"
	"newslink/internal/kg"
)

// loadGraph reads the knowledge graph the cluster roles share; without
// -kg the built-in sample graph is used (matching the single-process
// default).
func loadGraph(kgPath string) (*kg.Graph, error) {
	if kgPath == "" {
		g, _ := corpus.Sample()
		return g, nil
	}
	f, err := os.Open(kgPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return kg.Read(f)
}

// runShard serves one shard worker until SIGINT/SIGTERM. The worker
// starts empty (readyz answers 503) and becomes ready when a router
// assigns it a segment slice.
func runShard(addr, id, dir, kgPath string, logger *slog.Logger) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return shardMain(ctx, addr, id, dir, kgPath, logger, nil)
}

// shardMain is runShard's context-driven body; bound, when non-nil,
// receives the listener's address once serving (tests use it to learn
// the ephemeral port).
func shardMain(ctx context.Context, addr, id, dir, kgPath string, logger *slog.Logger, bound chan<- string) error {
	g, err := loadGraph(kgPath)
	if err != nil {
		return err
	}
	if dir == "" {
		if dir, err = os.MkdirTemp("", "newslink-shard-*"); err != nil {
			return err
		}
		defer os.RemoveAll(dir)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("binding %s: %w", addr, err)
	}
	if id == "" {
		id = ln.Addr().String()
	}
	w := cluster.NewWorker(id, dir, g, logger)
	srv := hardenServer(&http.Server{Handler: w.Handler()})
	// Assignments stream segment artifacts from a peer before answering;
	// give them more room than an interactive query response.
	srv.WriteTimeout = 2 * time.Minute
	log.Printf("shard worker %s serving on %s (artifacts in %s)", id, ln.Addr(), dir)
	if bound != nil {
		bound <- ln.Addr().String()
	}
	return serveUntilDone(ctx, srv, ln, logger, nil)
}

// routerConfig carries the router-mode flags.
type routerConfig struct {
	addr          string
	snapshot      string
	kgPath        string
	shardAddrs    string
	selfURL       string
	hedge         bool
	probeInterval time.Duration
	queryTimeout  time.Duration
	logger        *slog.Logger
}

// runRouter serves the cluster router until SIGINT/SIGTERM. The HTTP
// listener (which includes the blob endpoint workers fetch segments
// from) comes up before the initial shard assignment, so workers with
// empty directories can be seeded immediately.
func runRouter(cfg routerConfig) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return routerMain(ctx, cfg, nil)
}

// routerMain is runRouter's context-driven body; bound, when non-nil,
// receives the listener's address once serving.
func routerMain(ctx context.Context, cfg routerConfig, bound chan<- string) error {
	if cfg.snapshot == "" {
		return fmt.Errorf("-router requires -snapshot (the partitioned corpus)")
	}
	endpoints := parseShardAddrs(cfg.shardAddrs)
	if len(endpoints) == 0 {
		return fmt.Errorf("-router requires -shard-addrs")
	}
	g, err := loadGraph(cfg.kgPath)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return fmt.Errorf("binding %s: %w", cfg.addr, err)
	}
	selfURL := cfg.selfURL
	if selfURL == "" {
		selfURL = "http://" + ln.Addr().String()
	}
	rt, err := cluster.NewRouter(cfg.snapshot, g, cluster.Config{
		Endpoints:      endpoints,
		SelfURL:        selfURL,
		Hedge:          cfg.hedge,
		ProbeInterval:  cfg.probeInterval,
		RequestTimeout: cfg.queryTimeout,
		Logger:         cfg.logger,
	})
	if err != nil {
		ln.Close()
		return err
	}
	defer rt.Close()
	srv := hardenServer(&http.Server{Handler: rt.Handler()})
	log.Printf("cluster router serving %d shards on %s (plan %s)",
		len(rt.Plan().Shards), ln.Addr(), rt.Plan().ID)
	if bound != nil {
		bound <- ln.Addr().String()
	}
	return serveUntilDone(ctx, srv, ln, cfg.logger, func(ctx context.Context) {
		// Assignment needs the blob endpoint above to be live, so it runs
		// after Serve starts. A failed initial assignment is not fatal —
		// the probe loop keeps admitting workers as they appear.
		if err := rt.Start(ctx); err != nil {
			cfg.logger.Warn("initial cluster assignment incomplete", "err", err)
		}
	})
}

// parseShardAddrs splits the -shard-addrs grammar: groups by comma, one
// slot each; replicas within a group by '|'.
func parseShardAddrs(s string) [][]string {
	var out [][]string
	for _, group := range strings.Split(s, ",") {
		var eps []string
		for _, ep := range strings.Split(group, "|") {
			if ep = strings.TrimSpace(ep); ep != "" {
				eps = append(eps, strings.TrimRight(ep, "/"))
			}
		}
		if len(eps) > 0 {
			out = append(out, eps)
		}
	}
	return out
}

// serveUntilDone runs srv on ln until ctx ends (SIGINT/SIGTERM in
// production), then shuts down gracefully. after, when non-nil, runs in
// a goroutine once serving has begun (used for the router's initial
// assignment).
func serveUntilDone(ctx context.Context, srv *http.Server, ln net.Listener, logger *slog.Logger, after func(ctx context.Context)) error {
	errc := make(chan error, 1)
	go func() {
		if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	if after != nil {
		go after(ctx)
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	return srv.Shutdown(sctx)
}
