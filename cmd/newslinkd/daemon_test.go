package main

import (
	"context"
	"io"
	"log/slog"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"newslink/internal/faults"
)

func testDaemon(t *testing.T, cfg daemonConfig) *daemon {
	t.Helper()
	e, err := buildEngine("", "", 0.2, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr == "" {
		cfg.addr = "127.0.0.1:0"
	}
	if cfg.logger == nil {
		cfg.logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	d, err := newDaemon(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestDrainCompletesInFlightRequests is the shutdown e2e: concurrent
// slow searches are in flight when the stop signal arrives; readiness
// flips to 503 while they finish, every admitted request completes with
// 200, run returns nil, and afterwards the listeners are closed.
func TestDrainCompletesInFlightRequests(t *testing.T) {
	d := testDaemon(t, daemonConfig{
		debugAddr:    "127.0.0.1:0",
		queryTimeout: 10 * time.Second,
		drainTimeout: 10 * time.Second,
		drainGrace:   300 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- d.run(ctx) }()

	// Slow every search down in the BON stage so requests are reliably
	// still in flight when the drain starts.
	faults.Arm(faults.New().Delay(faults.BONStage, 400*time.Millisecond))
	defer faults.Disarm()

	base := "http://" + d.Addr()
	const n = 6
	statuses := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(base + "/v1/search?q=Taliban+Pakistan&k=3")
			if err != nil {
				statuses[i] = -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			statuses[i] = resp.StatusCode
		}()
	}
	time.Sleep(100 * time.Millisecond) // let the requests get admitted
	cancel()                           // "SIGTERM"

	// During the drain grace the listener still answers and readiness
	// reports draining.
	readyStatus := 0
	for deadline := time.Now().Add(250 * time.Millisecond); time.Now().Before(deadline); {
		resp, err := http.Get(base + "/v1/readyz")
		if err != nil {
			break // grace elapsed and the listener closed; rely on readyStatus
		}
		readyStatus = resp.StatusCode
		resp.Body.Close()
		if readyStatus == http.StatusServiceUnavailable {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if readyStatus != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", readyStatus)
	}

	wg.Wait()
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Fatalf("in-flight request %d finished with %d, want 200", i, st)
		}
	}
	select {
	case err := <-runErr:
		if err != nil {
			t.Fatalf("run returned %v, want nil after clean drain", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("run did not return after drain")
	}

	// Both listeners are down.
	for _, addr := range []string{d.Addr(), d.DebugAddr()} {
		if conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond); err == nil {
			conn.Close()
			t.Fatalf("listener %s still accepting after drain", addr)
		}
	}
}

// TestDebugListenerServes: the debug server binds synchronously and
// serves pprof and metrics from its own http.Server.
func TestDebugListenerServes(t *testing.T) {
	d := testDaemon(t, daemonConfig{
		debugAddr:    "127.0.0.1:0",
		drainTimeout: 2 * time.Second,
	})
	ctx, cancel := context.WithCancel(context.Background())
	runErr := make(chan error, 1)
	go func() { runErr <- d.run(ctx) }()

	for _, path := range []string{"/debug/pprof/cmdline", "/v1/metrics", "/v1/metrics/prom"} {
		resp, err := http.Get("http://" + d.DebugAddr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
	}
	cancel()
	if err := <-runErr; err != nil {
		t.Fatalf("run returned %v", err)
	}
}

// TestDaemonBindFailureIsSynchronous: a port clash surfaces as a
// newDaemon error, not a background log line after startup.
func TestDaemonBindFailureIsSynchronous(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	taken := ln.Addr().String()

	e, err := buildEngine("", "", 0.2, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := newDaemon(e, daemonConfig{addr: taken}); err == nil {
		t.Fatal("newDaemon bound an already-taken address")
	}
	// A debug-address clash must also fail and release the main listener.
	free, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	mainAddr := free.Addr().String()
	free.Close()
	if _, err := newDaemon(e, daemonConfig{addr: mainAddr, debugAddr: taken}); err == nil {
		t.Fatal("newDaemon bound a taken debug address")
	}
	if ln2, err := net.Listen("tcp", mainAddr); err != nil {
		t.Fatalf("main listener leaked after debug bind failure: %v", err)
	} else {
		ln2.Close()
	}
}

// TestHardenedTimeouts: both servers carry the slow-client protections.
func TestHardenedTimeouts(t *testing.T) {
	d := testDaemon(t, daemonConfig{debugAddr: "127.0.0.1:0"})
	for name, s := range map[string]*http.Server{"api": d.main, "debug": d.debug} {
		if s.ReadHeaderTimeout <= 0 || s.ReadTimeout <= 0 || s.IdleTimeout <= 0 || s.MaxHeaderBytes <= 0 {
			t.Fatalf("%s server missing hardening: %+v", name, s)
		}
	}
	if d.debug.WriteTimeout != 0 {
		t.Fatal("debug server must not bound writes (pprof profiles stream)")
	}
	if d.main.WriteTimeout <= 0 {
		t.Fatal("api server missing write timeout")
	}
	d.mainLn.Close()
	d.debugLn.Close()
}
