package main

import (
	"io"
	"log/slog"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"newslink/internal/corpus"
	"newslink/internal/kg"
	"newslink/internal/server"
)

func TestBuildEngineSample(t *testing.T) {
	e, err := buildEngine("", "", 0.2, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumDocs() == 0 {
		t.Fatal("no documents")
	}
	ts := httptest.NewServer(server.New(e).Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("health status %d", resp.StatusCode)
	}
}

func TestBuildEngineSnapshotRoundTrip(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "snap")
	// First run: indexes and saves.
	e1, err := buildEngine("", "", 0.2, snap, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(snap, "meta.json")); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}
	// Second run: loads the snapshot.
	e2, err := buildEngine("", "", 0.2, snap, 2)
	if err != nil {
		t.Fatal(err)
	}
	if e1.NumDocs() != e2.NumDocs() {
		t.Fatalf("docs %d vs %d", e1.NumDocs(), e2.NumDocs())
	}
	q := "Taliban bombing in Lahore"
	a, err := e1.Search(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e2.Search(q, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || a[0] != b[0] {
		t.Fatalf("snapshot engine disagrees: %v vs %v", a, b)
	}
}

func TestBuildEngineFileInputs(t *testing.T) {
	dir := t.TempDir()
	w := kg.Generate(kg.Config{Seed: 1, Countries: 3, ProvincesPerCountry: 2,
		CitiesPerProvince: 2, PersonsPerCountry: 4, OrgsPerCountry: 5, EventsPerCountry: 5})
	arts := corpus.Generate(w, corpus.CNNLike(), 20, 1)
	kgPath := filepath.Join(dir, "kg.tsv")
	f, err := os.Create(kgPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := kg.Write(f, w.Graph); err != nil {
		t.Fatal(err)
	}
	f.Close()
	corpusPath := filepath.Join(dir, "corpus.jsonl")
	cf, err := os.Create(corpusPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := corpus.WriteJSONL(cf, arts); err != nil {
		t.Fatal(err)
	}
	cf.Close()
	e, err := buildEngine(kgPath, corpusPath, 0.5, "", 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.NumDocs() != 20 {
		t.Fatalf("docs = %d", e.NumDocs())
	}
	// Unpaired flags fail.
	if _, err := buildEngine(kgPath, "", 0.2, "", 0); err == nil {
		t.Fatal("unpaired -kg must fail")
	}
	if _, err := buildEngine("/nonexistent", corpusPath, 0.2, "", 0); err == nil {
		t.Fatal("missing kg must fail")
	}
}

func TestBuildEngineOnDisk(t *testing.T) {
	snap := filepath.Join(t.TempDir(), "snap")
	if _, err := buildEngine("", "", 0.2, snap, 2); err != nil {
		t.Fatal(err)
	}
	e, err := buildEngineMode("", "", 0.2, snap, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	res, err := e.Search("Taliban bombing in Lahore", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) == 0 || res[0].ID != 1 {
		t.Fatalf("on-disk search: %+v", res)
	}
}

// TestDebugHandler exercises the -debug-addr surface: pprof endpoints and
// both metric expositions, served off the engine's registry.
func TestDebugHandler(t *testing.T) {
	e, err := buildEngine("", "", 0.2, "", 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search("Taliban bombing in Lahore", 2); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(debugHandler(e))
	defer ts.Close()

	for path, wantBody := range map[string]string{
		"/debug/pprof/":        "profiles",
		"/debug/pprof/cmdline": "",
		"/v1/metrics":          "newslink_searches_total",
		"/v1/metrics/prom":     "# TYPE newslink_search_seconds histogram",
	} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		if wantBody != "" && !strings.Contains(string(body), wantBody) {
			t.Fatalf("GET %s: body missing %q:\n%s", path, wantBody, body)
		}
	}
}

func TestParseLogLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug,
		"info":  slog.LevelInfo,
		"WARN":  slog.LevelWarn,
		"error": slog.LevelError,
	} {
		got, err := parseLogLevel(in)
		if err != nil || got != want {
			t.Fatalf("parseLogLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseLogLevel("loud"); err == nil {
		t.Fatal("invalid level must error")
	}
}
