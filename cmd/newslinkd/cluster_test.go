package main

import (
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"newslink"
	"newslink/internal/corpus"
	"newslink/internal/kg"
)

func TestParseShardAddrs(t *testing.T) {
	cases := []struct {
		in   string
		want [][]string
	}{
		{"", nil},
		{" , ,", nil},
		{"http://a:1", [][]string{{"http://a:1"}}},
		{"http://a:1,http://b:2", [][]string{{"http://a:1"}, {"http://b:2"}}},
		{"http://a:1|http://a2:1,http://b:2", [][]string{{"http://a:1", "http://a2:1"}, {"http://b:2"}}},
		{" http://a:1/ | http://a2:1 ", [][]string{{"http://a:1", "http://a2:1"}}},
	}
	for _, tc := range cases {
		if got := parseShardAddrs(tc.in); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("parseShardAddrs(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestLoadGraph(t *testing.T) {
	g, err := loadGraph("")
	if err != nil || g == nil {
		t.Fatalf("loadGraph(\"\") = %v, %v; want the sample graph", g, err)
	}
	path := filepath.Join(t.TempDir(), "graph.tsv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := kg.Write(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g2, err := loadGraph(path)
	if err != nil {
		t.Fatalf("loadGraph(%q): %v", path, err)
	}
	if g2.NumNodes() != g.NumNodes() {
		t.Fatalf("round-tripped graph has %d nodes, want %d", g2.NumNodes(), g.NumNodes())
	}
	if _, err := loadGraph(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("loadGraph on a missing file succeeded")
	}
}

// TestClusterDaemonEndToEnd drives the real -shard/-router mains: two
// empty shard workers come up, the router seeds them from its snapshot
// over the blob endpoint, and a public search answers with full (non-
// degraded) results. Shutdown is the production path (context end →
// graceful drain).
func TestClusterDaemonEndToEnd(t *testing.T) {
	// Snapshot of the sample corpus.
	g, arts := corpus.Sample()
	e := newslink.New(g, newslink.DefaultConfig())
	for _, a := range arts {
		if err := e.Add(newslink.Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	snap := t.TempDir()
	if err := e.Save(snap); err != nil {
		t.Fatal(err)
	}
	want, err := e.Search("Taliban bombing in Lahore", 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))

	// Two shard workers on ephemeral ports, empty artifact dirs.
	shardErrs := make(chan error, 2)
	var addrs []string
	for i := 0; i < 2; i++ {
		bound := make(chan string, 1)
		id := "shard" + string(rune('0'+i))
		dir := t.TempDir()
		go func() {
			shardErrs <- shardMain(ctx, "127.0.0.1:0", id, dir, "", logger, bound)
		}()
		select {
		case a := <-bound:
			addrs = append(addrs, "http://"+a)
		case err := <-shardErrs:
			t.Fatalf("shard %d exited before binding: %v", i, err)
		}
	}

	routerBound := make(chan string, 1)
	routerErr := make(chan error, 1)
	go func() {
		routerErr <- routerMain(ctx, routerConfig{
			addr:          "127.0.0.1:0",
			snapshot:      snap,
			shardAddrs:    strings.Join(addrs, ","),
			probeInterval: 50 * time.Millisecond,
			queryTimeout:  5 * time.Second,
			logger:        logger,
		}, routerBound)
	}()
	var base string
	select {
	case a := <-routerBound:
		base = "http://" + a
	case err := <-routerErr:
		t.Fatalf("router exited before binding: %v", err)
	}

	// The sample corpus is a single segment, so both workers serve slot 0
	// as replicas; poll until assignment completes and results match the
	// single-process engine.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/search?q=Taliban+bombing+in+Lahore&k=3")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			var sr struct {
				Degraded bool              `json:"degraded"`
				Results  []newslink.Result `json:"results"`
			}
			if err := json.Unmarshal(body, &sr); err != nil {
				t.Fatalf("decoding search reply: %v\n%s", err, body)
			}
			if !sr.Degraded && reflect.DeepEqual(sr.Results, want) {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never served full results; last status %d body %s", resp.StatusCode, body)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Production shutdown path: context end drains both roles cleanly.
	cancel()
	for i := 0; i < 2; i++ {
		select {
		case err := <-shardErrs:
			if err != nil {
				t.Fatalf("shard exited with %v", err)
			}
		case <-time.After(20 * time.Second):
			t.Fatal("shard did not shut down")
		}
	}
	select {
	case err := <-routerErr:
		if err != nil {
			t.Fatalf("router exited with %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("router did not shut down")
	}
}

// TestRouterMainValidatesFlags pins the required-flag errors.
func TestRouterMainValidatesFlags(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	if err := routerMain(context.Background(), routerConfig{shardAddrs: "http://x"}, nil); err == nil {
		t.Fatal("router without -snapshot started")
	}
	if err := routerMain(context.Background(), routerConfig{snapshot: t.TempDir(), logger: logger}, nil); err == nil {
		t.Fatal("router without -shard-addrs started")
	}
}

// TestClusterMainErrorPaths pins the startup failures: a bad graph
// path, an unbindable address, and a snapshot the router cannot load
// all surface as errors rather than hung processes.
func TestClusterMainErrorPaths(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	ctx := context.Background()

	if err := shardMain(ctx, "127.0.0.1:0", "w", t.TempDir(), filepath.Join(t.TempDir(), "no-such-kg"), logger, nil); err == nil {
		t.Fatal("shardMain with a missing -kg started")
	}
	if err := shardMain(ctx, "256.256.256.256:1", "w", t.TempDir(), "", logger, nil); err == nil {
		t.Fatal("shardMain bound an impossible address")
	}
	if err := routerMain(ctx, routerConfig{
		addr: "127.0.0.1:0", snapshot: t.TempDir(), shardAddrs: "http://x", logger: logger,
	}, nil); err == nil {
		t.Fatal("routerMain loaded an empty snapshot directory")
	}
	if err := routerMain(ctx, routerConfig{
		addr: "127.0.0.1:0", snapshot: t.TempDir(), shardAddrs: "http://x",
		kgPath: filepath.Join(t.TempDir(), "no-such-kg"), logger: logger,
	}, nil); err == nil {
		t.Fatal("routerMain with a missing -kg started")
	}
	if err := routerMain(ctx, routerConfig{
		addr: "256.256.256.256:1", snapshot: t.TempDir(), shardAddrs: "http://x", logger: logger,
	}, nil); err == nil {
		t.Fatal("routerMain bound an impossible address")
	}
}

// TestRunShardSignalShutdown drives the production wrapper end to end:
// runShard installs its own SIGTERM context, so a signal to the test
// process must bring the worker down cleanly.
func TestRunShardSignalShutdown(t *testing.T) {
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	done := make(chan error, 1)
	go func() {
		done <- runShard("127.0.0.1:0", "sig-test", t.TempDir(), "", logger)
	}()
	// Give the worker a moment to install its signal handler and bind.
	time.Sleep(200 * time.Millisecond)
	p, err := os.FindProcess(os.Getpid())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("runShard exited with %v", err)
		}
	case <-time.After(20 * time.Second):
		t.Fatal("runShard did not shut down on SIGTERM")
	}
}
