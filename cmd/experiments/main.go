// Command experiments regenerates every table and figure of the paper's
// evaluation section (Section VII) on the synthetic substrates:
//
//	experiments -all                 # everything, default scale
//	experiments -table 4             # one table (4, 5, 7, 8)
//	experiments -figure 6            # one figure (5, 6, 7)
//	experiments -scale test|small|full
//
// Absolute numbers differ from the paper (different hardware and synthetic
// data); the comparisons the paper draws — who wins, by how much, where the
// crossovers are — are what these runs reproduce. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"newslink"
	"newslink/internal/eval"
)

func main() {
	table := flag.Int("table", 0, "run one table: 4, 5, 7 or 8")
	figure := flag.Int("figure", 0, "run one figure: 5, 6 or 7")
	all := flag.Bool("all", false, "run the complete suite")
	significance := flag.Bool("significance", false, "paired bootstrap: NewsLink vs competitors")
	ablations := flag.Bool("ablations", false, "quantify the design-choice ablations")
	coverage := flag.Bool("coverage", false, "corpus coverage statistics (Section VII-A2)")
	trecDir := flag.String("trec", "", "export TREC qrels and run files to this directory")
	tune := flag.Bool("tune", false, "β sweep on the validation split")
	scaleName := flag.String("scale", "small", "dataset scale: test, small or full")
	flag.Parse()

	var scale eval.Scale
	switch *scaleName {
	case "test":
		scale = eval.ScaleTest
	case "small":
		scale = eval.ScaleSmall
	case "full":
		scale = eval.ScaleFull
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q\n", *scaleName)
		os.Exit(2)
	}
	if !*all && *table == 0 && *figure == 0 && !*significance && !*ablations && !*coverage && !*tune && *trecDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	run := func(name string, fn func()) {
		t0 := time.Now()
		fn()
		fmt.Printf("[%s done in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
	}
	if *all || *table == 4 {
		run("table 4", func() {
			for _, t := range eval.RunTable4(scale) {
				fmt.Println(t.Render())
			}
		})
	}
	if *all || *table == 5 {
		run("table 5", func() { fmt.Println(eval.RunTable5(scale).Render()) })
	}
	if *all || *figure == 5 {
		run("figure 5", func() { fmt.Println(eval.RunFigure5(scale).Render()) })
	}
	if *all || *figure == 6 {
		run("figure 6", func() { fmt.Println(eval.RunFigure6()) })
	}
	if *all || *table == 7 {
		run("table 7", func() {
			for _, t := range eval.RunTable7(scale) {
				fmt.Println(t.Render())
			}
		})
	}
	if *all || *figure == 7 {
		run("figure 7", func() { fmt.Println(eval.RunFigure7(scale).Render()) })
	}
	if *all || *table == 8 {
		run("table 8", func() { fmt.Println(eval.RunTable8(scale).Render()) })
	}
	if *all || *coverage {
		run("coverage", func() { fmt.Println(eval.RunCoverage(scale).Render()) })
	}
	if *all || *ablations {
		run("ablations", func() { fmt.Println(eval.RunAblations(scale).Render()) })
	}
	if *all || *tune {
		run("beta tuning", func() { fmt.Println(eval.RunBetaTuning(scale).Render()) })
	}
	if *all || *significance {
		run("significance", func() { fmt.Println(eval.RunSignificance(scale, 2000)) })
	}
	if *trecDir != "" {
		run("trec export", func() {
			if err := exportTREC(*trecDir, scale); err != nil {
				fmt.Fprintln(os.Stderr, "trec export:", err)
				os.Exit(1)
			}
		})
	}
}

// exportTREC writes qrels plus one run file per system for both datasets.
func exportTREC(dir string, scale eval.Scale) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, spec := range []eval.DatasetSpec{eval.CNNSpec(scale), eval.KaggleSpec(scale)} {
		d := eval.BuildDataset(spec)
		queries := d.Queries(eval.Densest, d.Spec.Seed+41)
		qf, err := os.Create(filepath.Join(dir, spec.Name+".qrels"))
		if err != nil {
			return err
		}
		if err := eval.WriteQrels(qf, queries); err != nil {
			qf.Close()
			return err
		}
		if err := qf.Close(); err != nil {
			return err
		}
		systems := []eval.System{
			eval.NewLucene(d),
			eval.NewQEPRF(d),
			eval.NewNewsLink(d, 0.2, newslink.LCAG),
		}
		for _, sys := range systems {
			rf, err := os.Create(filepath.Join(dir, spec.Name+"."+sys.Name()+".run"))
			if err != nil {
				return err
			}
			if err := eval.WriteRun(rf, sys, queries, 20); err != nil {
				rf.Close()
				return err
			}
			if err := rf.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n", rf.Name())
		}
	}
	return nil
}
