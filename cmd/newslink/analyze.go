package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"newslink/internal/core"
	"newslink/internal/corpus"
	"newslink/internal/kg"
	"newslink/internal/nlp"
)

// runAnalyze prints the NLP and NE view of a news text, mirroring the
// paper's Figure 3 (news segments with recognized entities) and Figure 4
// (the subgraph embedding of each group in the maximal co-occurrence set).
func runAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	text := fs.String("text", "", "news text to analyze (or -file)")
	file := fs.String("file", "", "file containing the news text")
	kgPath := fs.String("kg", "", "knowledge graph TSV (default: built-in sample)")
	maxDepth := fs.Float64("maxdepth", 6, "embedding depth bound")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *text == "" && *file == "" {
		return fmt.Errorf("one of -text or -file is required")
	}
	if *text != "" && *file != "" {
		return fmt.Errorf("-text and -file are mutually exclusive")
	}
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		*text = string(data)
	}
	g, err := loadGraph(*kgPath)
	if err != nil {
		return err
	}
	pipe := nlp.NewPipeline(g.Index())
	doc := pipe.Process(*text)

	fmt.Println("== NLP component (Figure 3) ==")
	for i, s := range doc.Sentences {
		fmt.Printf("segment %d: %s\n", i+1, s.Text)
		for _, m := range s.Mentions {
			status := "linked"
			if !m.Linked {
				status = "NOT IN KG"
			}
			fmt.Printf("    entity %-28q %s\n", m.Text, status)
		}
		if len(s.Mentions) > 0 {
			fmt.Printf("    entity density %.2f\n", s.EntityDensity())
		}
	}

	groups := doc.EntityGroups()
	maximal := nlp.MaximalSets(groups)
	fmt.Printf("\n== Maximal entity co-occurrence set (Definition 1): %d of %d groups kept ==\n",
		len(maximal), len(groups))
	for i, grp := range maximal {
		fmt.Printf("  L%d = {%s}\n", i+1, strings.Join(grp, ", "))
	}

	fmt.Println("\n== NE component (Figure 4): subgraph embeddings ==")
	searcher := core.NewSearcher(g, core.Options{MaxDepth: *maxDepth})
	for i, grp := range maximal {
		sg := searcher.Find(grp)
		if sg == nil {
			fmt.Printf("  L%d: no common ancestor within depth %g\n", i+1, *maxDepth)
			continue
		}
		fmt.Printf("  L%d: root %q, depth %g, %d nodes, %d arcs\n",
			i+1, g.Label(sg.Root), sg.Depth(), len(sg.Nodes), len(sg.Arcs))
		if induced := sg.InducedNodes(g); len(induced) > 0 {
			var labels []string
			for _, n := range induced {
				labels = append(labels, g.Label(n))
			}
			fmt.Printf("      induced entities: %s\n", strings.Join(labels, ", "))
		}
		for j, a := range grp {
			for _, b := range grp[j+1:] {
				for _, p := range sg.PathsBetween(a, b, 1) {
					fmt.Printf("      %s\n", p.Render(g))
				}
			}
		}
	}
	return nil
}

// loadGraph reads a KG dump, or returns the built-in sample graph.
func loadGraph(path string) (*kg.Graph, error) {
	if path == "" {
		g, _ := corpus.Sample()
		return g, nil
	}
	return readGraphFile(path)
}
