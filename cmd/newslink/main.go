// Command newslink is the NewsLink command-line interface. It can generate
// a synthetic knowledge graph and news corpus, build a search engine over
// them (or over the built-in sample corpus), and answer queries with
// relationship-path explanations.
//
// Usage:
//
//	newslink gen -dir out [-seed 7] [-countries 20] [-docs 500] [-profile cnn]
//	newslink search -query "text" [-k 5] [-beta 0.2] [-model lcag]
//	                [-kg out/kg.tsv -corpus out/corpus.jsonl] [-explain]
//	newslink analyze -text "..." | -file story.txt [-kg out/kg.tsv]
//	newslink stats [-kg out/kg.tsv]
//
// Without -kg/-corpus the built-in sample corpus (the paper's Figure 1 and
// Figure 6 stories) is used.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"newslink"
	"newslink/internal/corpus"
	"newslink/internal/kg"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "newslink:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: newslink <gen|search|analyze|stats> [flags]")
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:])
	case "search":
		return runSearch(args[1:])
	case "stats":
		return runStats(args[1:])
	case "analyze":
		return runAnalyze(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want gen, search, analyze or stats)", args[0])
	}
}

func runGen(args []string) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	dir := fs.String("dir", "out", "output directory")
	seed := fs.Int64("seed", 7, "generation seed")
	countries := fs.Int("countries", 20, "synthetic world size")
	docs := fs.Int("docs", 500, "number of news documents")
	profile := fs.String("profile", "cnn", "corpus profile: cnn or kaggle")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := kg.DefaultConfig(*seed)
	cfg.Countries = *countries
	world := kg.Generate(cfg)
	var p corpus.Profile
	switch *profile {
	case "cnn":
		p = corpus.CNNLike()
	case "kaggle":
		p = corpus.KaggleLike()
	default:
		return fmt.Errorf("unknown profile %q", *profile)
	}
	arts := corpus.Generate(world, p, *docs, *seed)
	if err := os.MkdirAll(*dir, 0o755); err != nil {
		return err
	}
	kgPath := filepath.Join(*dir, "kg.tsv")
	f, err := os.Create(kgPath)
	if err != nil {
		return err
	}
	if err := kg.Write(f, world.Graph); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	corpusPath := filepath.Join(*dir, "corpus.jsonl")
	f, err = os.Create(corpusPath)
	if err != nil {
		return err
	}
	if err := corpus.WriteJSONL(f, arts); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d nodes, %d edges) and %s (%d docs)\n",
		kgPath, world.Graph.NumNodes(), world.Graph.NumEdges(), corpusPath, len(arts))
	return nil
}

// loadWorld reads the KG and corpus named by flags, or falls back to the
// built-in sample.
func loadWorld(kgPath, corpusPath string) (*kg.Graph, []corpus.Article, error) {
	if kgPath == "" && corpusPath == "" {
		g, arts := corpus.Sample()
		return g, arts, nil
	}
	if kgPath == "" || corpusPath == "" {
		return nil, nil, fmt.Errorf("-kg and -corpus must be given together")
	}
	g, err := readGraphFile(kgPath)
	if err != nil {
		return nil, nil, err
	}
	cf, err := os.Open(corpusPath)
	if err != nil {
		return nil, nil, err
	}
	defer cf.Close()
	arts, err := corpus.ReadJSONL(cf)
	if err != nil {
		return nil, nil, err
	}
	return g, arts, nil
}

func runSearch(args []string) error {
	fs := flag.NewFlagSet("search", flag.ContinueOnError)
	query := fs.String("query", "", "query text (required)")
	k := fs.Int("k", 5, "number of results")
	beta := fs.Float64("beta", 0.2, "Equation 3 fusion weight in [0,1]")
	model := fs.String("model", "lcag", "embedding model: lcag or tree")
	kgPath := fs.String("kg", "", "knowledge graph TSV (default: built-in sample)")
	corpusPath := fs.String("corpus", "", "corpus JSONL (default: built-in sample)")
	explain := fs.Bool("explain", true, "print relationship-path explanations")
	dotPath := fs.String("dot", "", "write a Graphviz rendering of query vs top result to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *query == "" {
		return fmt.Errorf("-query is required")
	}
	g, arts, err := loadWorld(*kgPath, *corpusPath)
	if err != nil {
		return err
	}
	cfg := newslink.DefaultConfig()
	cfg.Beta = *beta
	switch strings.ToLower(*model) {
	case "lcag":
		cfg.Model = newslink.LCAG
	case "tree":
		cfg.Model = newslink.TreeEmb
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	e := newslink.New(g, cfg)
	for _, a := range arts {
		if err := e.Add(newslink.Document{ID: a.ID, Title: a.Title, Text: a.Text, Time: a.Time}); err != nil {
			return err
		}
	}
	if err := e.Build(); err != nil {
		return err
	}
	res, err := e.Search(*query, *k)
	if err != nil {
		return err
	}
	if len(res) == 0 {
		fmt.Println("no results")
		return nil
	}
	if *dotPath != "" {
		dot, err := e.ExplainDOT(*query, res[0].ID, "newslink")
		if err != nil {
			return err
		}
		if dot == "" {
			fmt.Fprintln(os.Stderr, "newslink: no embeddings to render")
		} else if err := os.WriteFile(*dotPath, []byte(dot), 0o644); err != nil {
			return err
		} else {
			fmt.Printf("wrote %s (render with: dot -Tsvg %s)\n", *dotPath, *dotPath)
		}
	}
	for i, r := range res {
		fmt.Printf("%2d. [%d] %s (score %.3f)\n", i+1, r.ID, r.Title, r.Score)
		if r.Snippet != "" {
			fmt.Printf("    %s\n", r.Snippet)
		}
		if !*explain {
			continue
		}
		exp, err := e.Explain(*query, r.ID, 3)
		if err != nil {
			return err
		}
		if len(exp.SharedEntities) > 0 {
			fmt.Printf("    overlap: %s\n", strings.Join(exp.SharedEntities, ", "))
		}
		for _, p := range exp.Paths {
			fmt.Printf("    path: %s\n", p.Rendered)
		}
	}
	return nil
}

// readGraphFile loads a graph dump; ".nt" files are parsed as RDF
// N-Triples (Wikidata truthy dumps), everything else as the TSV format.
func readGraphFile(path string) (*kg.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".nt") {
		return kg.ParseNTriples(f, "en", false)
	}
	return kg.Read(f)
}

func runStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ContinueOnError)
	kgPath := fs.String("kg", "", "knowledge graph TSV (default: built-in sample)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var g *kg.Graph
	if *kgPath == "" {
		g, _ = corpus.Sample()
	} else {
		var err error
		if g, err = readGraphFile(*kgPath); err != nil {
			return err
		}
	}
	fmt.Print(kg.ComputeStats(g).String())
	return nil
}
