package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture redirects stdout around fn and returns what was printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		var sb strings.Builder
		if _, err := io.Copy(&sb, r); err != nil {
			sb.WriteString("\n[pipe error: " + err.Error() + "]")
		}
		done <- sb.String()
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

func TestCLIGenSearchStatsAnalyze(t *testing.T) {
	dir := t.TempDir()
	out, err := capture(t, func() error {
		return run([]string{"gen", "-dir", dir, "-seed", "3", "-countries", "5", "-docs", "30"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote") {
		t.Fatalf("gen output: %q", out)
	}
	kgPath := filepath.Join(dir, "kg.tsv")
	corpusPath := filepath.Join(dir, "corpus.jsonl")
	if _, err := os.Stat(kgPath); err != nil {
		t.Fatal(err)
	}

	out, err = capture(t, func() error {
		return run([]string{"search", "-query", "Taliban bombing in Lahore", "-k", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Bombing attack by Taliban") {
		t.Fatalf("search output: %q", out)
	}

	out, err = capture(t, func() error {
		return run([]string{"search", "-query", "clashes in the region", "-k", "2",
			"-kg", kgPath, "-corpus", corpusPath, "-explain=false", "-model", "tree", "-beta", "0.5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Fatal("no search output on generated corpus")
	}

	out, err = capture(t, func() error { return run([]string{"stats", "-kg", kgPath}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "nodes=") {
		t.Fatalf("stats output: %q", out)
	}

	out, err = capture(t, func() error {
		return run([]string{"analyze", "-text", "Taliban attacked Upper Dir in Pakistan."})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NLP component") || !strings.Contains(out, "root") {
		t.Fatalf("analyze output: %q", out)
	}
}

func TestCLIErrors(t *testing.T) {
	cases := [][]string{
		nil,
		{"bogus"},
		{"search"}, // missing query
		{"search", "-query", "x", "-kg", "only-one"}, // unpaired kg/corpus
		{"search", "-query", "x", "-model", "wat"},
		{"gen", "-profile", "wat"},
		{"analyze"},
		{"analyze", "-text", "x", "-file", "y"},
		{"stats", "-kg", "/nonexistent/kg.tsv"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("args %v: expected error", args)
		}
	}
}
