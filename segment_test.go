package newslink

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"newslink/internal/corpus"
)

var lifecycleQueries = []string{
	"Military conflicts between Pakistan and Taliban in Upper Dir",
	"Sanders said voters were tired of hearing about Clinton and the FBI emails.",
	"Taliban bombing in Lahore and Peshawar",
	"quarterly earnings beat expectations",
}

func TestDeleteBasics(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	before := e.NumDocs()
	res, err := e.Search(lifecycleQueries[0], 3)
	if err != nil || len(res) == 0 {
		t.Fatalf("seed search: %v %v", res, err)
	}
	victim := res[0].ID
	if err := e.Delete(victim); err != nil {
		t.Fatal(err)
	}
	if e.NumDocs() != before-1 {
		t.Fatalf("NumDocs = %d, want %d", e.NumDocs(), before-1)
	}
	if e.NumDeletedDocs() != 1 {
		t.Fatalf("NumDeletedDocs = %d, want 1", e.NumDeletedDocs())
	}
	after, err := e.Search(lifecycleQueries[0], e.NumDocs())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range after {
		if r.ID == victim {
			t.Fatal("deleted document still returned by Search")
		}
	}
	if _, err := e.Explain(lifecycleQueries[0], victim, 3); !errors.Is(err, ErrUnknownDoc) {
		t.Fatalf("Explain of deleted doc = %v, want ErrUnknownDoc", err)
	}
	// Deleting again, or deleting a never-added ID, is unknown.
	if err := e.Delete(victim); !errors.Is(err, ErrUnknownDoc) {
		t.Fatalf("double Delete = %v, want ErrUnknownDoc", err)
	}
	if err := e.Delete(987654); !errors.Is(err, ErrUnknownDoc) {
		t.Fatalf("Delete of unknown id = %v, want ErrUnknownDoc", err)
	}
	// A tombstoned ID is re-addable (that is what Update builds on).
	if err := e.Add(Document{ID: victim, Title: "reborn", Text: "A reborn bulletin about Lahore."}); err != nil {
		t.Fatalf("re-Add of tombstoned id: %v", err)
	}
	if e.NumDocs() != before {
		t.Fatalf("NumDocs after re-add = %d, want %d", e.NumDocs(), before)
	}
}

func TestDeletePendingDocument(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	if err := e.Add(Document{ID: 7001, Title: "late", Text: "A late bulletin about Lahore."}); err != nil {
		t.Fatal(err)
	}
	// The document is still in the open segment; Delete must seal it first
	// and then tombstone it.
	if err := e.Delete(7001); err != nil {
		t.Fatal(err)
	}
	res, err := e.Search("late bulletin about Lahore", e.NumDocs())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res {
		if r.ID == 7001 {
			t.Fatal("deleted pending document surfaced")
		}
	}
}

func TestWritesBeforeBuildFail(t *testing.T) {
	g, _ := corpus.Sample()
	e := New(g, DefaultConfig())
	if err := e.Delete(1); !errors.Is(err, ErrNotBuilt) {
		t.Fatalf("Delete before Build = %v", err)
	}
	if err := e.Update(Document{ID: 1, Text: "x"}); !errors.Is(err, ErrNotBuilt) {
		t.Fatalf("Update before Build = %v", err)
	}
	if err := e.Compact(); !errors.Is(err, ErrNotBuilt) {
		t.Fatalf("Compact before Build = %v", err)
	}
}

func TestUpdateReplacesDocument(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	before := e.NumDocs()
	res, err := e.Search(lifecycleQueries[1], 1)
	if err != nil || len(res) == 0 {
		t.Fatalf("seed search: %v %v", res, err)
	}
	id := res[0].ID
	if err := e.Update(Document{ID: id, Title: "corrected", Text: "A corrected wire story about volcanic eruptions in Iceland."}); err != nil {
		t.Fatal(err)
	}
	if e.NumDocs() != before {
		t.Fatalf("Update changed NumDocs: %d, want %d", e.NumDocs(), before)
	}
	got, err := e.Search("volcanic eruptions in Iceland", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0].ID != id || got[0].Title != "corrected" {
		t.Fatalf("updated doc not found under new text: %+v", got)
	}
	// The old version must be gone: searching its distinctive old text at
	// full depth never returns the ID with the old title.
	old, err := e.Search(lifecycleQueries[1], e.NumDocs())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range old {
		if r.ID == id && r.Title != "corrected" {
			t.Fatal("stale version of updated doc still served")
		}
	}
	// Upsert semantics: a fresh ID is simply added.
	if err := e.Update(Document{ID: 8123, Title: "new", Text: "A brand new bulletin about Reykjavik."}); err != nil {
		t.Fatal(err)
	}
	if e.NumDocs() != before+1 {
		t.Fatalf("upsert of new id: NumDocs = %d, want %d", e.NumDocs(), before+1)
	}
}

func TestCompactMergesToSingleSegment(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	for i := 0; i < 3; i++ {
		if err := e.Add(Document{ID: 9100 + i, Title: "late", Text: fmt.Sprintf("Late bulletin %d about Lahore and Peshawar.", i)}); err != nil {
			t.Fatal(err)
		}
		e.Refresh()
	}
	if e.NumSegments() < 2 {
		t.Fatalf("expected multiple segments, got %d", e.NumSegments())
	}
	// Tombstone a document inside the (multi-document) initial segment, so
	// the tombstone stays resident until Compact reclaims it. (Deleting a
	// single-doc segment's only document would instead drop the whole
	// segment at publish time.)
	seed, err := e.Search(lifecycleQueries[1], 1)
	if err != nil || len(seed) == 0 {
		t.Fatalf("seed search: %v %v", seed, err)
	}
	if err := e.Delete(seed[0].ID); err != nil {
		t.Fatal(err)
	}
	if e.NumDeletedDocs() != 1 {
		t.Fatalf("NumDeletedDocs = %d", e.NumDeletedDocs())
	}
	want, err := e.Search(lifecycleQueries[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if e.NumSegments() != 1 {
		t.Fatalf("NumSegments after Compact = %d, want 1", e.NumSegments())
	}
	if e.NumDeletedDocs() != 0 {
		t.Fatalf("NumDeletedDocs after Compact = %d, want 0 (tombstones reclaimed)", e.NumDeletedDocs())
	}
	got, err := e.Search(lifecycleQueries[0], 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].ID != want[i].ID {
			t.Fatalf("Compact changed ranking:\n%v\nvs\n%v", got, want)
		}
	}
	// Compacting an already-compacted engine is a no-op.
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	if e.NumSegments() != 1 {
		t.Fatalf("NumSegments = %d after idempotent Compact", e.NumSegments())
	}
}

// TestSegmentScheduleIdentity is the merge-identity property test of
// DESIGN.md §11: for random add/refresh/compact schedules WITHOUT deletes,
// search results must be identical — scores included — to an engine built
// in a single batch. Per-segment indexes serialize to the same bytes as a
// monolithic build (TestMergeIdentityNoDeletes), Multi statistics are
// exact per-doc folds, and block-max traversal visits terms in a
// deterministic order, so this holds bitwise.
func TestSegmentScheduleIdentity(t *testing.T) {
	g, arts := corpus.Sample()
	batch := New(g, DefaultConfig())
	for _, a := range arts {
		if err := batch.Add(Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := batch.Build(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 3; trial++ {
		e := New(g, DefaultConfig())
		cut := 1 + rng.Intn(len(arts)-1)
		for _, a := range arts[:cut] {
			if err := e.Add(Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Build(); err != nil {
			t.Fatal(err)
		}
		for _, a := range arts[cut:] {
			if err := e.Add(Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
				t.Fatal(err)
			}
			if rng.Intn(3) == 0 {
				e.Refresh()
			}
		}
		check := func(stage string) {
			for _, q := range lifecycleQueries {
				want, err := batch.Search(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				got, err := e.Search(q, 5)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d %s (segments=%d): %q diverged\n%v\nvs\n%v",
						trial, stage, e.NumSegments(), q, got, want)
				}
			}
		}
		check("segmented")
		if err := e.Compact(); err != nil {
			t.Fatal(err)
		}
		if e.NumSegments() != 1 {
			t.Fatalf("NumSegments after Compact = %d", e.NumSegments())
		}
		check("compacted")
	}
}

// TestDeletedNeverReturned: under random delete schedules, a tombstoned
// document must never surface from Search or Explain — before or after
// compaction, and across a snapshot round trip.
func TestDeletedNeverReturned(t *testing.T) {
	g, arts := corpus.Sample()
	e := sampleEngine(t, DefaultConfig())
	rng := rand.New(rand.NewSource(17))
	deleted := map[int]bool{}
	for _, a := range arts {
		if rng.Intn(3) == 0 && len(deleted) < len(arts)-2 {
			if err := e.Delete(a.ID); err != nil {
				t.Fatal(err)
			}
			deleted[a.ID] = true
		}
	}
	if e.NumDeletedDocs() != len(deleted) {
		t.Fatalf("NumDeletedDocs = %d, want %d", e.NumDeletedDocs(), len(deleted))
	}
	assertHidden := func(stage string, eng *Engine) {
		t.Helper()
		for _, q := range lifecycleQueries {
			res, err := eng.Search(q, eng.NumDocs())
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range res {
				if deleted[r.ID] {
					t.Fatalf("%s: deleted doc %d surfaced for %q", stage, r.ID, q)
				}
			}
		}
		for id := range deleted {
			if _, err := eng.Explain(lifecycleQueries[0], id, 2); !errors.Is(err, ErrUnknownDoc) {
				t.Fatalf("%s: Explain(deleted %d) = %v, want ErrUnknownDoc", stage, id, err)
			}
		}
	}
	assertHidden("tombstoned", e)
	dir := filepath.Join(t.TempDir(), "snap")
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(dir, g)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDocs() != e.NumDocs() || loaded.NumDeletedDocs() != e.NumDeletedDocs() {
		t.Fatalf("round trip changed counts: %d/%d vs %d/%d",
			loaded.NumDocs(), loaded.NumDeletedDocs(), e.NumDocs(), e.NumDeletedDocs())
	}
	assertHidden("loaded", loaded)
	disk, err := LoadOnDisk(dir, g)
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	assertHidden("loaded-on-disk", disk)
	// Tombstoned search results must agree across memory and disk engines.
	for _, q := range lifecycleQueries {
		a, err := e.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Search(q, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("loaded engine diverged for %q:\n%v\nvs\n%v", q, a, b)
		}
	}
	if err := e.Compact(); err != nil {
		t.Fatal(err)
	}
	assertHidden("compacted", e)
}

// TestIncrementalSaveReusesSegments: re-saving over an existing snapshot
// must hard-link unchanged segment artifacts instead of rewriting them
// (content-addressed reuse), including for segments whose only change is a
// new tombstone — those live in meta.json.
func TestIncrementalSaveReusesSegments(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	dir := filepath.Join(t.TempDir(), "snap")
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*.text.idx"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("expected one segment, found %v", matches)
	}
	segFile := matches[0]
	before, err := os.Stat(segFile)
	if err != nil {
		t.Fatal(err)
	}
	// A new open segment plus a tombstone in the old one: the old
	// segment's artifacts must survive as hard links of the same inodes.
	if err := e.Add(Document{ID: 9301, Title: "late", Text: "A late bulletin about Lahore."}); err != nil {
		t.Fatal(err)
	}
	e.Refresh()
	if err := e.Delete(1); err != nil {
		t.Fatal(err)
	}
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(segFile)
	if err != nil {
		t.Fatalf("original segment artifact gone after incremental save: %v", err)
	}
	if !os.SameFile(before, after) {
		t.Fatal("unchanged segment was rewritten, not hard-linked")
	}
	all, err := filepath.Glob(filepath.Join(dir, "seg-*.text.idx"))
	if err != nil || len(all) != 2 {
		t.Fatalf("expected two segments after incremental save, found %v", all)
	}
	// And the incremental snapshot is fully valid.
	g, _ := corpus.Sample()
	loaded, err := Load(dir, g)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumDocs() != e.NumDocs() || loaded.NumDeletedDocs() != 1 {
		t.Fatalf("incremental snapshot counts: %d/%d", loaded.NumDocs(), loaded.NumDeletedDocs())
	}
}

// TestChurnSegmentLifecycle drives the full segment lifecycle under
// concurrency: interleaved Add/Update/Delete/Refresh from a writer while
// searchers and a snapshotter run. Run under -race in CI (resilience job).
// Invariants: a delete is immediately invisible to the deleting goroutine,
// the tiered policy keeps the segment count bounded, bookkeeping matches
// the surviving corpus, and every snapshot written mid-churn loads.
func TestChurnSegmentLifecycle(t *testing.T) {
	g, arts := corpus.Sample()
	e := sampleEngine(t, DefaultConfig())
	live := map[int]bool{}
	for _, a := range arts {
		live[a.ID] = true
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				q := lifecycleQueries[(seed+n)%len(lifecycleQueries)]
				if _, err := e.Search(q, 5); err != nil {
					t.Errorf("concurrent search: %v", err)
					return
				}
				if _, err := e.Explain(q, arts[0].ID, 2); err != nil && !errors.Is(err, ErrUnknownDoc) {
					t.Errorf("concurrent explain: %v", err)
					return
				}
			}
		}(i)
	}
	snapDirs := []string{filepath.Join(t.TempDir(), "a"), filepath.Join(t.TempDir(), "b")}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.Save(snapDirs[n%2]); err != nil {
				t.Errorf("concurrent save: %v", err)
				return
			}
		}
	}()
	rng := rand.New(rand.NewSource(23))
	randLive := func() int {
		for id := range live {
			return id
		}
		return -1
	}
	nextID := 20000
	for op := 0; op < 200; op++ {
		switch rng.Intn(5) {
		case 0, 1:
			if err := e.Add(Document{ID: nextID, Title: "churn", Text: fmt.Sprintf("Churn bulletin %d about Lahore and Peshawar.", nextID)}); err != nil {
				t.Fatal(err)
			}
			live[nextID] = true
			nextID++
		case 2:
			if id := randLive(); id >= 0 && len(live) > 2 {
				if err := e.Delete(id); err != nil {
					t.Fatal(err)
				}
				delete(live, id)
				// Sequential consistency for the deleting goroutine: the
				// tombstone is published before Delete returns.
				res, err := e.Search("Lahore Peshawar bulletin", e.NumDocs())
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range res {
					if r.ID == id {
						t.Fatalf("op %d: doc %d surfaced after its Delete returned", op, id)
					}
				}
			}
		case 3:
			if id := randLive(); id >= 0 {
				if err := e.Update(Document{ID: id, Title: "churn-upd", Text: fmt.Sprintf("Updated churn bulletin %d about Swat Valley.", id)}); err != nil {
					t.Fatal(err)
				}
			}
		case 4:
			e.Refresh()
		}
	}
	close(stop)
	wg.Wait()
	e.Refresh()
	if got := e.NumDocs(); got != len(live) {
		t.Fatalf("NumDocs = %d, tracker says %d", got, len(live))
	}
	// All churn segments stay in tier 0, so the tiered policy bounds the
	// count by one unmerged run.
	if got := e.NumSegments(); got > mergeFactor {
		t.Fatalf("NumSegments = %d, want <= %d (tiered policy bound)", got, mergeFactor)
	}
	for id := range live {
		if _, err := e.ExplainDOT(lifecycleQueries[0], id, "x"); err != nil {
			t.Fatalf("live doc %d unknown after churn: %v", id, err)
		}
	}
	// Both mid-churn snapshot targets hold loadable snapshots.
	for _, dir := range snapDirs {
		if _, err := os.Stat(filepath.Join(dir, "meta.json")); err != nil {
			continue // saver may not have reached this dir
		}
		if _, err := Load(dir, g); err != nil {
			t.Fatalf("mid-churn snapshot %s does not load: %v", dir, err)
		}
	}
}
