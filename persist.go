package newslink

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"newslink/internal/core"
	"newslink/internal/faults"
	"newslink/internal/index"
	"newslink/internal/kg"
)

// Snapshot layout (version 5): a directory with
//
//	meta.json             engine config, graph fingerprint, the ordered
//	                      segment list (documents + tombstone bitmap per
//	                      segment) and a CRC32-C checksum per artifact
//	seg-<id>.text.idx     BOW inverted index of one segment (binary)
//	seg-<id>.node.idx     BON inverted index of one segment (binary)
//	seg-<id>.emb.bin      per-document subgraph embeddings of one segment
//
// <id> is derived from the artifact contents (truncated SHA-256), which
// makes saves incremental: a segment that already exists under the target
// directory with matching checksums is hard-linked into the staged
// snapshot instead of re-serialized, so saving after an incremental batch
// rewrites only the new and merged segments plus meta.json. Tombstones
// live in meta.json — not in the binary artifacts — so deletes never force
// a segment rewrite either.
//
// A snapshot is only valid together with the knowledge graph it was built
// on; Load verifies a structural fingerprint and rejects mismatches.
//
// Crash safety is unchanged from version 3: Save never touches the target
// directory until the whole snapshot is durable. It stages everything in a
// temporary sibling directory, fsyncs each file and the directory itself,
// records a CRC32-C checksum per artifact in meta.json (written last), and
// only then renames the directory into place (parking any previous
// snapshot and rolling it back if the install fails). A crash at any point
// leaves either the old snapshot or the new one — never a torn mix — and
// Load verifies version and checksums so silent corruption surfaces as
// ErrSnapshotCorrupt instead of a half-built engine.

// snapshotVersion 5 added the per-segment time column (Document.Time in
// each segment's meta.json document list; the binary artifacts are
// byte-identical to version 4, so content-addressed ids — and therefore
// hard-link reuse across saves — carry over). Version 4 switched to
// per-segment artifacts with tombstone bitmaps in meta.json
// (content-addressed, enabling incremental saves); version 3 was the
// block-compressed single-index layout, version 2 added per-artifact
// checksums. Snapshots older than minSnapshotVersion are rejected with
// ErrSnapshotVersion (re-save to upgrade); version-4 snapshots load
// directly, their documents carrying Time 0.
const (
	snapshotVersion    = 5
	minSnapshotVersion = 4
)

// snapshotCompatible reports whether a snapshot format version is loadable
// by this build.
func snapshotCompatible(v int) bool {
	return v >= minSnapshotVersion && v <= snapshotVersion
}

// segmentSuffixes are the binary artifacts every segment owns.
var segmentSuffixes = [...]string{"text.idx", "node.idx", "emb.bin"}

// segFileName names one segment artifact file inside the snapshot.
func segFileName(id, suffix string) string { return "seg-" + id + "." + suffix }

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64), shared by Save and Load.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// segmentMeta describes one segment in meta.json: which artifact files it
// reads (via ID), its documents in segment order, and the tombstone bitmap
// (index.Bitmap codec, base64; absent when nothing is deleted).
type segmentMeta struct {
	ID   string     `json:"id"`
	Docs []Document `json:"docs"`
	Dead string     `json:"dead,omitempty"`
}

type snapshotMeta struct {
	Version  int           `json:"version"`
	Config   Config        `json:"config"`
	Graph    graphPrint    `json:"graph"`
	Segments []segmentMeta `json:"segments"`
	// Checksums maps each artifact file to the CRC32-C of its contents,
	// rendered as 8 hex digits.
	Checksums map[string]string `json:"checksums"`
}

type graphPrint struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	Rels  int `json:"rels"`
}

func fingerprint(g *kg.Graph) graphPrint {
	return graphPrint{Nodes: g.NumNodes(), Edges: g.NumEdges(), Rels: g.NumRels()}
}

// asMemoryIndex obtains a serializable in-memory index from any Source:
// in-memory indexes pass through; segmented and disk-backed sources are
// compacted via Flatten.
func asMemoryIndex(src index.Source) (*index.Index, error) {
	switch s := src.(type) {
	case *index.Index:
		return s, nil
	case *index.Multi:
		return s.Flatten(), nil
	case *index.DiskIndex:
		return index.NewMulti(s).Flatten(), nil
	default:
		return nil, fmt.Errorf("newslink: cannot serialize index source %T", src)
	}
}

// checksumString renders a CRC32-C value the way meta.json stores it.
func checksumString(sum uint32) string { return fmt.Sprintf("%08x", sum) }

// fileChecksum streams one file through CRC32-C.
func fileChecksum(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := crc32.New(castagnoli)
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return checksumString(h.Sum32()), nil
}

// syncDir fsyncs a directory, making the entries inside it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return err
	}
	return cerr
}

// oldSnapshot is what Save learns about an existing snapshot at the target
// directory, for content-addressed artifact reuse. nil when the target has
// no readable same-version snapshot (then everything is re-serialized).
type oldSnapshot struct {
	dir  string
	ids  map[string]bool
	sums map[string]string
}

func readOldSnapshot(dir string) *oldSnapshot {
	data, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil
	}
	var m snapshotMeta
	// Any compatible version may donate artifacts: the binary files are
	// format-identical across versions 4 and 5, and reuse matches on
	// content-derived ids plus checksums, so hard links from a v4 snapshot
	// into a v5 save are exact.
	if json.Unmarshal(data, &m) != nil || !snapshotCompatible(m.Version) {
		return nil
	}
	old := &oldSnapshot{dir: dir, ids: make(map[string]bool, len(m.Segments)), sums: m.Checksums}
	for _, sm := range m.Segments {
		old.ids[sm.ID] = true
	}
	return old
}

// Save writes a snapshot of the built engine to dir (created if needed).
// Adding documents to the corpus requires rebuilding; snapshots make the
// expensive part — embedding the corpus (Figure 7) — a one-time cost.
// Save is safe to call concurrently with searches and writers; it seals
// any pending segment first and serializes a consistent capture of the
// published segment set.
//
// Saves are incremental: segment artifacts are content-addressed, so a
// segment already present in the snapshot being replaced is hard-linked
// into the new one instead of rewritten — only new and merged segments
// (and meta.json, which carries the tombstones) cost IO.
//
// The write is atomic with respect to crashes and failures: the snapshot
// is staged in a temporary directory, fsynced, checksummed, and renamed
// into place only when complete. On any failure the previous snapshot at
// dir (if one exists) stays intact and loadable, and the staging
// directory is removed.
func (e *Engine) Save(dir string) error {
	// Seal and capture in one critical section: an Add landing between a
	// separate Refresh and the capture would leave documents behind that
	// are absent from the serialized segments, silently losing them on
	// Load.
	//
	// With the WAL armed the critical section also rotates the log, under
	// walMu so no write can slip between capture and rotation: everything
	// logged before it is in the capture (the ingest queue is drained
	// first — admitted writes were logged to the old generation, so they
	// must be captured before that generation becomes prunable), and
	// everything after lands in the new generation, which a crash replays
	// over this snapshot. Pruning happens only after the snapshot is
	// durably installed; a crash before that replays both generations over
	// the previous snapshot, which the old generation's records belong to.
	e.walMu.Lock()
	if p := e.ingest.Load(); p != nil && !p.closed {
		p.drainLocked()
	}
	e.mu.Lock()
	e.refreshLocked()
	set := e.set.Load()
	var rotErr error
	if e.wal != nil && set != nil {
		rotErr = e.wal.Rotate()
	}
	e.mu.Unlock()
	e.walMu.Unlock()
	if set == nil {
		return ErrNotBuilt
	}
	if rotErr != nil {
		return rotErr
	}
	old := readOldSnapshot(dir)
	parent := filepath.Dir(filepath.Clean(dir))
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return err
	}
	tmp, err := os.MkdirTemp(parent, ".newslink-tmp-")
	if err != nil {
		return err
	}
	committed := false
	defer func() {
		if !committed {
			os.RemoveAll(tmp)
		}
	}()
	sums := make(map[string]string)
	writeArtifact := func(name string, extra io.Writer, write func(io.Writer) error) error {
		if err := faults.Fire(faults.SaveWrite); err != nil {
			return fmt.Errorf("newslink: writing %s: %w", name, err)
		}
		f, err := os.Create(filepath.Join(tmp, name))
		if err != nil {
			return err
		}
		h := crc32.New(castagnoli)
		w := io.MultiWriter(f, h)
		if extra != nil {
			w = io.MultiWriter(f, h, extra)
		}
		if err := write(w); err != nil {
			f.Close()
			return fmt.Errorf("newslink: writing %s: %w", name, err)
		}
		// fsync before the final rename: a snapshot must be durable
		// before it becomes reachable under its public name.
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		sums[name] = checksumString(h.Sum32())
		return nil
	}
	segMetas := make([]segmentMeta, 0, len(set.segs))
	for si, seg := range set.segs {
		art := seg.art.Load()
		if art == nil || !reuseSegment(old, art, tmp, sums) {
			if art, err = writeSegment(tmp, si, seg, writeArtifact, sums); err != nil {
				return err
			}
			seg.art.Store(art)
		}
		sm := segmentMeta{ID: art.id, Docs: seg.docs}
		if seg.dead.Any() {
			sm.Dead = base64.StdEncoding.EncodeToString(seg.dead.Encode())
		}
		segMetas = append(segMetas, sm)
	}
	meta := snapshotMeta{
		Version:   snapshotVersion,
		Config:    e.cfg,
		Graph:     fingerprint(e.Graph()),
		Segments:  segMetas,
		Checksums: sums,
	}
	metaBytes, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return err
	}
	// meta.json goes last: it references the checksums of everything else,
	// so its presence marks the artifact set complete.
	if err := writeArtifact("meta.json", nil, func(w io.Writer) error {
		_, err := w.Write(metaBytes)
		return err
	}); err != nil {
		return err
	}
	delete(sums, "meta.json") // not self-referenced
	if err := syncDir(tmp); err != nil {
		return err
	}
	if err := installSnapshot(tmp, dir); err != nil {
		return err
	}
	committed = true
	// The snapshot is durable and reachable; the pre-rotation WAL
	// generation is now redundant and can go. (A failure here leaves the
	// old segments behind — replaying them over this snapshot re-applies
	// writes the snapshot already holds, which is idempotent: adds skip as
	// duplicates, upserts re-install identical content, deletes of absent
	// docs skip. Correctness never depends on Prune succeeding.)
	e.walMu.Lock()
	l := e.wal
	e.walMu.Unlock()
	if l != nil {
		return l.Prune()
	}
	return nil
}

// reuseSegment hard-links a segment's artifacts from the existing snapshot
// into the staging directory when the old snapshot provably holds the same
// content (same content-derived id, same recorded checksums). Returns
// false — and leaves any partial links to be overwritten by a fresh
// serialization — when reuse is not possible.
func reuseSegment(old *oldSnapshot, art *segmentArtifact, tmp string, sums map[string]string) bool {
	if old == nil || !old.ids[art.id] {
		return false
	}
	for _, suffix := range segmentSuffixes {
		name := segFileName(art.id, suffix)
		if old.sums[name] != art.sums[name] || art.sums[name] == "" {
			return false
		}
	}
	for _, suffix := range segmentSuffixes {
		name := segFileName(art.id, suffix)
		if _, done := sums[name]; done {
			continue // an identical segment already staged this file
		}
		if err := os.Link(filepath.Join(old.dir, name), filepath.Join(tmp, name)); err != nil {
			return false
		}
		sums[name] = art.sums[name]
	}
	return true
}

// writeSegment serializes one segment's three artifacts into the staging
// directory. Files are first written under staging names while a running
// SHA-256 over their concatenation derives the content id, then renamed to
// their final seg-<id>.* names. The returned artifact identity is memoized
// on the segment so the next Save can reuse the files via hard links.
func writeSegment(tmp string, si int, seg *segment, writeArtifact func(string, io.Writer, func(io.Writer) error) error, sums map[string]string) (*segmentArtifact, error) {
	textMem, err := asMemoryIndex(seg.text)
	if err != nil {
		return nil, err
	}
	nodeMem, err := asMemoryIndex(seg.node)
	if err != nil {
		return nil, err
	}
	digest := sha256.New()
	writers := []struct {
		suffix string
		write  func(io.Writer) error
	}{
		{"text.idx", func(w io.Writer) error { _, err := textMem.WriteTo(w); return err }},
		{"node.idx", func(w io.Writer) error { _, err := nodeMem.WriteTo(w); return err }},
		{"emb.bin", func(w io.Writer) error { return core.WriteEmbeddingsSigs(w, seg.embs, seg.sigs) }},
	}
	staged := make([]string, len(writers))
	for i, a := range writers {
		staged[i] = fmt.Sprintf("stage-%d.%s", si, a.suffix)
		if err := writeArtifact(staged[i], digest, a.write); err != nil {
			return nil, err
		}
	}
	id := hex.EncodeToString(digest.Sum(nil))[:16]
	art := &segmentArtifact{id: id, sums: make(map[string]string, len(writers))}
	for i, a := range writers {
		name := segFileName(id, a.suffix)
		if err := os.Rename(filepath.Join(tmp, staged[i]), filepath.Join(tmp, name)); err != nil {
			return nil, err
		}
		art.sums[name] = sums[staged[i]]
		delete(sums, staged[i])
		sums[name] = art.sums[name]
	}
	return art, nil
}

// installSnapshot atomically replaces dir with the staged snapshot in
// tmp: any existing snapshot is parked next to the target, the staging
// directory is renamed into place, and the parked copy is removed only
// after the rename succeeded (and restored if it failed). The parent
// directory is fsynced so the swap itself is durable.
func installSnapshot(tmp, dir string) error {
	if err := faults.Fire(faults.SaveRename); err != nil {
		return fmt.Errorf("newslink: installing snapshot: %w", err)
	}
	old := dir + ".old"
	// A leftover parked copy from a crashed earlier install is dead weight.
	if err := os.RemoveAll(old); err != nil {
		return err
	}
	moved := false
	if _, err := os.Stat(dir); err == nil {
		if err := os.Rename(dir, old); err != nil {
			return err
		}
		moved = true
	}
	if err := os.Rename(tmp, dir); err != nil {
		if moved {
			// Roll the previous snapshot back into place.
			if rerr := os.Rename(old, dir); rerr != nil {
				return errors.Join(err, rerr)
			}
		}
		return err
	}
	if moved {
		if err := os.RemoveAll(old); err != nil {
			return err
		}
	}
	return syncDir(filepath.Dir(filepath.Clean(dir)))
}

// Load restores an engine snapshot written by Save, reading all segment
// indexes fully into memory. g must be the same knowledge graph the
// snapshot was built on (verified by fingerprint).
//
// Load verifies the snapshot before building any state: a format-version
// mismatch returns ErrSnapshotVersion, and an unparsable meta.json, a
// missing or truncated artifact, a checksum mismatch, a corrupt tombstone
// bitmap, or inconsistent document counts return ErrSnapshotCorrupt
// (match both with errors.Is). On any error no engine is returned — never
// a partially loaded one.
//
// Runtime options (cache sizes, WithWAL, WithIngestQueue, ...) apply on
// top of the snapshot's persisted Config. With WithWAL set, Load replays
// the write-ahead log over the restored state — recovering every write
// acknowledged after the snapshot was taken — before arming the ingest
// pipeline; a corrupt log fails with ErrWALCorrupt.
func Load(dir string, g *kg.Graph, opts ...Option) (*Engine, error) {
	return load(dir, g, false, opts)
}

// LoadOnDisk restores a snapshot but serves the inverted indexes directly
// from the snapshot files (postings are read on demand), so startup cost
// and resident memory stay flat as the corpus grows. The engine holds the
// files open until Close. Integrity verification streams each artifact
// once at open time (sequential IO, no resident memory); the same typed
// errors and option semantics as Load apply.
func LoadOnDisk(dir string, g *kg.Graph, opts ...Option) (*Engine, error) {
	return load(dir, g, true, opts)
}

// Close shuts the engine's owned resources down: the ingest pipeline is
// drained and stopped, the write-ahead log is fsynced and closed, and any
// snapshot files held open by LoadOnDisk are released. After Close,
// writes on a WAL-armed engine fail with ErrClosed; searches keep working
// against the in-memory state (in-memory engines) or fail on file access
// (on-disk ones).
func (e *Engine) Close() error {
	werr := e.stopIngest()
	s := e.set.Load()
	if s == nil {
		return werr
	}
	for _, seg := range s.segs {
		for _, src := range []index.Source{seg.text, seg.node} {
			if c, ok := src.(*index.DiskIndex); ok {
				if err := c.Close(); err != nil {
					return errors.Join(werr, err)
				}
			}
		}
	}
	return werr
}

func load(dir string, g *kg.Graph, onDisk bool, opts []Option) (*Engine, error) {
	metaBytes, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, err
	}
	var meta snapshotMeta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, fmt.Errorf("%w: parsing meta.json: %v", ErrSnapshotCorrupt, err)
	}
	if !snapshotCompatible(meta.Version) {
		return nil, fmt.Errorf("%w: snapshot version %d, want %d..%d", ErrSnapshotVersion, meta.Version, minSnapshotVersion, snapshotVersion)
	}
	if got := fingerprint(g); got != meta.Graph {
		return nil, fmt.Errorf("newslink: knowledge graph mismatch: snapshot %+v, graph %+v", meta.Graph, got)
	}
	// Verify every artifact against its recorded checksum before building
	// any engine state: a torn write or bit flip must surface as a typed
	// error, never as a half-built engine. Content-addressed ids may share
	// files between identical segments; verify each file once.
	verified := make(map[string]bool)
	for _, sm := range meta.Segments {
		for _, suffix := range segmentSuffixes {
			name := segFileName(sm.ID, suffix)
			if verified[name] {
				continue
			}
			want, ok := meta.Checksums[name]
			if !ok {
				return nil, fmt.Errorf("%w: meta.json has no checksum for %s", ErrSnapshotCorrupt, name)
			}
			got, err := fileChecksum(filepath.Join(dir, name))
			if err != nil {
				return nil, fmt.Errorf("%w: %s: %v", ErrSnapshotCorrupt, name, err)
			}
			if got != want {
				return nil, fmt.Errorf("%w: %s checksum %s, want %s", ErrSnapshotCorrupt, name, got, want)
			}
			verified[name] = true
		}
	}
	// The snapshot's Config is the base; caller options layer on top, so
	// runtime knobs (caches, WAL, ingest queue) configure the restored
	// engine exactly as they would a fresh one.
	e := New(g, append([]Option{meta.Config}, opts...)...)
	segs := make([]*segment, 0, len(meta.Segments))
	fail := func(err error) (*Engine, error) {
		closeSegments(segs)
		return nil, err
	}
	for _, sm := range meta.Segments {
		seg, err := loadSegment(dir, sm, meta.Checksums, g, onDisk)
		if err != nil {
			return fail(err)
		}
		// Reconcile signatures with the engine's quantization setting: a
		// version-1 snapshot loaded into a quantized engine re-encodes the
		// signatures from the embeddings (deterministic, so a later Save
		// emits the same bytes as a natively quantized engine); a version-2
		// snapshot loaded without the option drops them, keeping the engine
		// indistinguishable from one that never quantized.
		if e.opts.quantizedEmb {
			if seg.sigs == nil {
				seg.sigs = e.buildSigs(seg.embs)
			}
		} else {
			seg.sigs = nil
		}
		segs = append(segs, seg)
	}
	e.mu.Lock()
	e.publishLocked(segs)
	e.mu.Unlock()
	// With the segment set published, recover post-snapshot writes from
	// the WAL and arm the ingest pipeline (per the caller's options).
	e.walMu.Lock()
	err = e.startDurabilityLocked()
	e.walMu.Unlock()
	if err != nil {
		return fail(err)
	}
	return e, nil
}

// loadSegment restores one segment from its artifacts (already checksum-
// verified). The artifact identity from meta.json is memoized on the
// segment so a later Save can reuse the files without rewriting them.
func loadSegment(dir string, sm segmentMeta, checksums map[string]string, g *kg.Graph, onDisk bool) (*segment, error) {
	seg := &segment{docs: sm.Docs, times: timesOf(sm.Docs)}
	corrupt := func(name string, err error) (*segment, error) {
		closeSegments([]*segment{seg})
		return nil, fmt.Errorf("%w: %s: %v", ErrSnapshotCorrupt, name, err)
	}
	for _, suffix := range []string{"text.idx", "node.idx"} {
		name := segFileName(sm.ID, suffix)
		var src index.Source
		if onDisk {
			d, err := index.OpenDiskIndex(filepath.Join(dir, name))
			if err != nil {
				return corrupt(name, err)
			}
			src = d
		} else {
			f, err := os.Open(filepath.Join(dir, name))
			if err != nil {
				return corrupt(name, err)
			}
			idx, err := index.ReadIndex(f)
			f.Close()
			if err != nil {
				return corrupt(name, err)
			}
			src = idx
		}
		if suffix == "text.idx" {
			seg.text = src
		} else {
			seg.node = src
		}
	}
	embName := segFileName(sm.ID, "emb.bin")
	f, err := os.Open(filepath.Join(dir, embName))
	if err != nil {
		return corrupt(embName, err)
	}
	seg.embs, seg.sigs, err = core.ReadEmbeddingsSigs(f, g)
	f.Close()
	if err != nil {
		return corrupt(embName, err)
	}
	if seg.sigs != nil && len(seg.sigs) != len(seg.embs) {
		return corrupt(embName, fmt.Errorf("%d signatures for %d embeddings", len(seg.sigs), len(seg.embs)))
	}
	if sm.Dead != "" {
		raw, err := base64.StdEncoding.DecodeString(sm.Dead)
		if err != nil {
			return corrupt("meta.json", fmt.Errorf("tombstones of segment %s: %v", sm.ID, err))
		}
		dead, err := index.DecodeBitmap(raw)
		if err != nil {
			return corrupt("meta.json", fmt.Errorf("tombstones of segment %s: %v", sm.ID, err))
		}
		if dead.Len() != len(sm.Docs) {
			return corrupt("meta.json", fmt.Errorf("tombstone bitmap covers %d docs, segment has %d", dead.Len(), len(sm.Docs)))
		}
		seg.dead = dead
	}
	if seg.text.NumDocs() != len(sm.Docs) || seg.node.NumDocs() != len(sm.Docs) || len(seg.embs) != len(sm.Docs) {
		return corrupt("meta.json", fmt.Errorf("segment %s: %d docs, %d text-indexed, %d node-indexed, %d embeddings",
			sm.ID, len(sm.Docs), seg.text.NumDocs(), seg.node.NumDocs(), len(seg.embs)))
	}
	art := &segmentArtifact{id: sm.ID, sums: make(map[string]string, len(segmentSuffixes))}
	for _, suffix := range segmentSuffixes {
		name := segFileName(sm.ID, suffix)
		art.sums[name] = checksums[name]
	}
	seg.art.Store(art)
	return seg, nil
}

// closeSegments releases any disk-backed indexes of partially loaded
// segments on the load error path.
func closeSegments(segs []*segment) {
	for _, seg := range segs {
		for _, src := range []index.Source{seg.text, seg.node} {
			if c, ok := src.(*index.DiskIndex); ok {
				c.Close()
			}
		}
	}
}
