package newslink

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"newslink/internal/core"
	"newslink/internal/index"
	"newslink/internal/kg"
)

// Snapshot layout: a directory with
//
//	meta.json   engine config, document metadata, graph fingerprint
//	text.idx    BOW inverted index (binary)
//	node.idx    BON inverted index (binary)
//	emb.bin     per-document subgraph embeddings (binary)
//
// A snapshot is only valid together with the knowledge graph it was built
// on; Load verifies a structural fingerprint and rejects mismatches.

const snapshotVersion = 1

type snapshotMeta struct {
	Version int        `json:"version"`
	Config  Config     `json:"config"`
	Graph   graphPrint `json:"graph"`
	Docs    []Document `json:"docs"`
}

type graphPrint struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	Rels  int `json:"rels"`
}

func fingerprint(g *kg.Graph) graphPrint {
	return graphPrint{Nodes: g.NumNodes(), Edges: g.NumEdges(), Rels: g.NumRels()}
}

// asMemoryIndex obtains a serializable in-memory index from any Source:
// in-memory indexes pass through; segmented and disk-backed sources are
// compacted via Flatten.
func asMemoryIndex(src index.Source) (*index.Index, error) {
	switch s := src.(type) {
	case *index.Index:
		return s, nil
	case *index.Multi:
		return s.Flatten(), nil
	case *index.DiskIndex:
		return index.NewMulti(s).Flatten(), nil
	default:
		return nil, fmt.Errorf("newslink: cannot serialize index source %T", src)
	}
}

// Save writes a snapshot of the built engine to dir (created if needed).
// Adding documents to the corpus requires rebuilding; snapshots make the
// expensive part — embedding the corpus (Figure 7) — a one-time cost.
// Save is safe to call concurrently with searches; it seals any pending
// segment first and serializes a consistent snapshot of that state.
func (e *Engine) Save(dir string) error {
	// Seal and capture in one critical section: an Add landing between a
	// separate Refresh and the capture would put documents into docs that
	// are absent from the serialized indexes, silently losing them on Load.
	e.mu.Lock()
	e.refreshLocked()
	built := e.built
	docs := e.docs
	embeddings := e.embeddings
	textIdx, nodeIdx := e.textIdx, e.nodeIdx
	e.mu.Unlock()
	if !built {
		return ErrNotBuilt
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	meta := snapshotMeta{
		Version: snapshotVersion,
		Config:  e.cfg,
		Graph:   fingerprint(e.g),
		Docs:    docs,
	}
	metaBytes, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "meta.json"), metaBytes, 0o644); err != nil {
		return err
	}
	writeFile := func(name string, fn func(*os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := fn(f); err != nil {
			f.Close()
			return fmt.Errorf("newslink: writing %s: %w", name, err)
		}
		return f.Close()
	}
	textMem, err := asMemoryIndex(textIdx)
	if err != nil {
		return err
	}
	nodeMem, err := asMemoryIndex(nodeIdx)
	if err != nil {
		return err
	}
	if err := writeFile("text.idx", func(f *os.File) error {
		_, err := textMem.WriteTo(f)
		return err
	}); err != nil {
		return err
	}
	if err := writeFile("node.idx", func(f *os.File) error {
		_, err := nodeMem.WriteTo(f)
		return err
	}); err != nil {
		return err
	}
	return writeFile("emb.bin", func(f *os.File) error {
		return core.WriteEmbeddings(f, embeddings)
	})
}

// Load restores an engine snapshot written by Save, reading both inverted
// indexes fully into memory. g must be the same knowledge graph the
// snapshot was built on (verified by fingerprint).
func Load(dir string, g *kg.Graph) (*Engine, error) {
	return load(dir, g, false)
}

// LoadOnDisk restores a snapshot but serves the inverted indexes directly
// from the snapshot files (postings are read on demand), so startup cost
// and resident memory stay flat as the corpus grows. The engine holds the
// files open until Close; it cannot be re-saved.
func LoadOnDisk(dir string, g *kg.Graph) (*Engine, error) {
	return load(dir, g, true)
}

// Close releases the snapshot files of an engine opened with LoadOnDisk
// (a no-op for in-memory engines).
func (e *Engine) Close() error {
	for _, src := range []index.Source{e.textIdx, e.nodeIdx} {
		if c, ok := src.(*index.DiskIndex); ok {
			if err := c.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

func load(dir string, g *kg.Graph, onDisk bool) (*Engine, error) {
	metaBytes, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, err
	}
	var meta snapshotMeta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, fmt.Errorf("newslink: parsing meta.json: %w", err)
	}
	if meta.Version != snapshotVersion {
		return nil, fmt.Errorf("newslink: snapshot version %d, want %d", meta.Version, snapshotVersion)
	}
	if got := fingerprint(g); got != meta.Graph {
		return nil, fmt.Errorf("newslink: knowledge graph mismatch: snapshot %+v, graph %+v", meta.Graph, got)
	}
	e := New(g, meta.Config)
	e.docs = meta.Docs
	for i, d := range e.docs {
		e.docPos[d.ID] = i
	}
	e.met.docs.Set(int64(len(e.docs)))
	readFile := func(name string, fn func(*os.File) error) error {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fn(f); err != nil {
			return fmt.Errorf("newslink: reading %s: %w", name, err)
		}
		return nil
	}
	if onDisk {
		if e.textIdx, err = index.OpenDiskIndex(filepath.Join(dir, "text.idx")); err != nil {
			return nil, err
		}
		if e.nodeIdx, err = index.OpenDiskIndex(filepath.Join(dir, "node.idx")); err != nil {
			e.Close()
			return nil, err
		}
	} else {
		if err := readFile("text.idx", func(f *os.File) error {
			e.textIdx, err = index.ReadIndex(f)
			return err
		}); err != nil {
			return nil, err
		}
		if err := readFile("node.idx", func(f *os.File) error {
			e.nodeIdx, err = index.ReadIndex(f)
			return err
		}); err != nil {
			return nil, err
		}
	}
	if err := readFile("emb.bin", func(f *os.File) error {
		e.embeddings, err = core.ReadEmbeddings(f, g)
		return err
	}); err != nil {
		e.Close()
		return nil, err
	}
	if e.textIdx.NumDocs() != len(e.docs) || len(e.embeddings) != len(e.docs) {
		return nil, fmt.Errorf("newslink: snapshot inconsistent: %d docs, %d indexed, %d embeddings",
			len(e.docs), e.textIdx.NumDocs(), len(e.embeddings))
	}
	e.textB, e.nodeB = nil, nil
	e.built = true
	return e, nil
}
