package newslink

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"newslink/internal/core"
	"newslink/internal/faults"
	"newslink/internal/index"
	"newslink/internal/kg"
)

// Snapshot layout: a directory with
//
//	meta.json   engine config, document metadata, graph fingerprint,
//	            and a CRC32-C checksum per artifact
//	text.idx    BOW inverted index (binary)
//	node.idx    BON inverted index (binary)
//	emb.bin     per-document subgraph embeddings (binary)
//
// A snapshot is only valid together with the knowledge graph it was built
// on; Load verifies a structural fingerprint and rejects mismatches.
//
// Crash safety: Save never touches the target directory until the whole
// snapshot is durable. It writes every artifact into a temporary sibling
// directory, fsyncs each file and the directory itself, records a CRC32-C
// checksum per artifact in meta.json, and only then renames the directory
// into place (parking any previous snapshot and rolling it back if the
// install fails). A crash at any point leaves either the old snapshot or
// the new one — never a torn mix — and Load verifies version and
// checksums so silent corruption surfaces as ErrSnapshotCorrupt instead
// of a half-built engine.

// snapshotVersion 3 switched the index artifacts to the block-compressed
// postings format (NLIDX3: per-block summaries enabling block-max pruning
// and block-granular disk reads); version 2 added per-artifact checksums to
// meta.json. Older snapshots are rejected with ErrSnapshotVersion (re-save
// to upgrade).
const snapshotVersion = 3

// artifactNames are the binary artifacts covered by meta.json checksums.
var artifactNames = [...]string{"text.idx", "node.idx", "emb.bin"}

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64), shared by Save and Load.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

type snapshotMeta struct {
	Version int        `json:"version"`
	Config  Config     `json:"config"`
	Graph   graphPrint `json:"graph"`
	Docs    []Document `json:"docs"`
	// Checksums maps each artifact file to the CRC32-C of its contents,
	// rendered as 8 hex digits.
	Checksums map[string]string `json:"checksums"`
}

type graphPrint struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	Rels  int `json:"rels"`
}

func fingerprint(g *kg.Graph) graphPrint {
	return graphPrint{Nodes: g.NumNodes(), Edges: g.NumEdges(), Rels: g.NumRels()}
}

// asMemoryIndex obtains a serializable in-memory index from any Source:
// in-memory indexes pass through; segmented and disk-backed sources are
// compacted via Flatten.
func asMemoryIndex(src index.Source) (*index.Index, error) {
	switch s := src.(type) {
	case *index.Index:
		return s, nil
	case *index.Multi:
		return s.Flatten(), nil
	case *index.DiskIndex:
		return index.NewMulti(s).Flatten(), nil
	default:
		return nil, fmt.Errorf("newslink: cannot serialize index source %T", src)
	}
}

// checksumString renders a CRC32-C value the way meta.json stores it.
func checksumString(sum uint32) string { return fmt.Sprintf("%08x", sum) }

// fileChecksum streams one file through CRC32-C.
func fileChecksum(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := crc32.New(castagnoli)
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return checksumString(h.Sum32()), nil
}

// syncDir fsyncs a directory, making the entries inside it durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return err
	}
	return cerr
}

// Save writes a snapshot of the built engine to dir (created if needed).
// Adding documents to the corpus requires rebuilding; snapshots make the
// expensive part — embedding the corpus (Figure 7) — a one-time cost.
// Save is safe to call concurrently with searches; it seals any pending
// segment first and serializes a consistent snapshot of that state.
//
// The write is atomic with respect to crashes and failures: the snapshot
// is staged in a temporary directory, fsynced, checksummed, and renamed
// into place only when complete. On any failure the previous snapshot at
// dir (if one exists) stays intact and loadable, and the staging
// directory is removed.
func (e *Engine) Save(dir string) error {
	// Seal and capture in one critical section: an Add landing between a
	// separate Refresh and the capture would put documents into docs that
	// are absent from the serialized indexes, silently losing them on Load.
	e.mu.Lock()
	e.refreshLocked()
	built := e.built
	docs := e.docs
	embeddings := e.embeddings
	textIdx, nodeIdx := e.textIdx, e.nodeIdx
	e.mu.Unlock()
	if !built {
		return ErrNotBuilt
	}
	textMem, err := asMemoryIndex(textIdx)
	if err != nil {
		return err
	}
	nodeMem, err := asMemoryIndex(nodeIdx)
	if err != nil {
		return err
	}
	parent := filepath.Dir(filepath.Clean(dir))
	if err := os.MkdirAll(parent, 0o755); err != nil {
		return err
	}
	tmp, err := os.MkdirTemp(parent, ".newslink-tmp-")
	if err != nil {
		return err
	}
	committed := false
	defer func() {
		if !committed {
			os.RemoveAll(tmp)
		}
	}()
	sums := make(map[string]string, len(artifactNames))
	writeArtifact := func(name string, write func(io.Writer) error) error {
		if err := faults.Fire(faults.SaveWrite); err != nil {
			return fmt.Errorf("newslink: writing %s: %w", name, err)
		}
		f, err := os.Create(filepath.Join(tmp, name))
		if err != nil {
			return err
		}
		h := crc32.New(castagnoli)
		if err := write(io.MultiWriter(f, h)); err != nil {
			f.Close()
			return fmt.Errorf("newslink: writing %s: %w", name, err)
		}
		// fsync before the final rename: a snapshot must be durable
		// before it becomes reachable under its public name.
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		sums[name] = checksumString(h.Sum32())
		return nil
	}
	if err := writeArtifact("text.idx", func(w io.Writer) error {
		_, err := textMem.WriteTo(w)
		return err
	}); err != nil {
		return err
	}
	if err := writeArtifact("node.idx", func(w io.Writer) error {
		_, err := nodeMem.WriteTo(w)
		return err
	}); err != nil {
		return err
	}
	if err := writeArtifact("emb.bin", func(w io.Writer) error {
		return core.WriteEmbeddings(w, embeddings)
	}); err != nil {
		return err
	}
	meta := snapshotMeta{
		Version:   snapshotVersion,
		Config:    e.cfg,
		Graph:     fingerprint(e.g),
		Docs:      docs,
		Checksums: sums,
	}
	metaBytes, err := json.MarshalIndent(&meta, "", "  ")
	if err != nil {
		return err
	}
	// meta.json goes last: it references the checksums of everything else,
	// so its presence marks the artifact set complete.
	if err := writeArtifact("meta.json", func(w io.Writer) error {
		_, err := w.Write(metaBytes)
		return err
	}); err != nil {
		return err
	}
	if err := syncDir(tmp); err != nil {
		return err
	}
	if err := installSnapshot(tmp, dir); err != nil {
		return err
	}
	committed = true
	return nil
}

// installSnapshot atomically replaces dir with the staged snapshot in
// tmp: any existing snapshot is parked next to the target, the staging
// directory is renamed into place, and the parked copy is removed only
// after the rename succeeded (and restored if it failed). The parent
// directory is fsynced so the swap itself is durable.
func installSnapshot(tmp, dir string) error {
	if err := faults.Fire(faults.SaveRename); err != nil {
		return fmt.Errorf("newslink: installing snapshot: %w", err)
	}
	old := dir + ".old"
	// A leftover parked copy from a crashed earlier install is dead weight.
	if err := os.RemoveAll(old); err != nil {
		return err
	}
	moved := false
	if _, err := os.Stat(dir); err == nil {
		if err := os.Rename(dir, old); err != nil {
			return err
		}
		moved = true
	}
	if err := os.Rename(tmp, dir); err != nil {
		if moved {
			// Roll the previous snapshot back into place.
			if rerr := os.Rename(old, dir); rerr != nil {
				return errors.Join(err, rerr)
			}
		}
		return err
	}
	if moved {
		if err := os.RemoveAll(old); err != nil {
			return err
		}
	}
	return syncDir(filepath.Dir(filepath.Clean(dir)))
}

// Load restores an engine snapshot written by Save, reading both inverted
// indexes fully into memory. g must be the same knowledge graph the
// snapshot was built on (verified by fingerprint).
//
// Load verifies the snapshot before building any state: a format-version
// mismatch returns ErrSnapshotVersion, and an unparsable meta.json, a
// missing or truncated artifact, a checksum mismatch, or inconsistent
// document counts return ErrSnapshotCorrupt (match both with errors.Is).
// On any error no engine is returned — never a partially loaded one.
func Load(dir string, g *kg.Graph) (*Engine, error) {
	return load(dir, g, false)
}

// LoadOnDisk restores a snapshot but serves the inverted indexes directly
// from the snapshot files (postings are read on demand), so startup cost
// and resident memory stay flat as the corpus grows. The engine holds the
// files open until Close; it cannot be re-saved. Integrity verification
// streams each artifact once at open time (sequential IO, no resident
// memory); the same typed errors as Load apply.
func LoadOnDisk(dir string, g *kg.Graph) (*Engine, error) {
	return load(dir, g, true)
}

// Close releases the snapshot files of an engine opened with LoadOnDisk
// (a no-op for in-memory engines).
func (e *Engine) Close() error {
	for _, src := range []index.Source{e.textIdx, e.nodeIdx} {
		if c, ok := src.(*index.DiskIndex); ok {
			if err := c.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}

func load(dir string, g *kg.Graph, onDisk bool) (*Engine, error) {
	metaBytes, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return nil, err
	}
	var meta snapshotMeta
	if err := json.Unmarshal(metaBytes, &meta); err != nil {
		return nil, fmt.Errorf("%w: parsing meta.json: %v", ErrSnapshotCorrupt, err)
	}
	if meta.Version != snapshotVersion {
		return nil, fmt.Errorf("%w: snapshot version %d, want %d", ErrSnapshotVersion, meta.Version, snapshotVersion)
	}
	if got := fingerprint(g); got != meta.Graph {
		return nil, fmt.Errorf("newslink: knowledge graph mismatch: snapshot %+v, graph %+v", meta.Graph, got)
	}
	// Verify every artifact against its recorded checksum before building
	// any engine state: a torn write or bit flip must surface as a typed
	// error, never as a half-built engine.
	for _, name := range artifactNames {
		want, ok := meta.Checksums[name]
		if !ok {
			return nil, fmt.Errorf("%w: meta.json has no checksum for %s", ErrSnapshotCorrupt, name)
		}
		got, err := fileChecksum(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrSnapshotCorrupt, name, err)
		}
		if got != want {
			return nil, fmt.Errorf("%w: %s checksum %s, want %s", ErrSnapshotCorrupt, name, got, want)
		}
	}
	e := New(g, meta.Config)
	e.docs = meta.Docs
	for i, d := range e.docs {
		e.docPos[d.ID] = i
	}
	e.met.docs.Set(int64(len(e.docs)))
	readFile := func(name string, fn func(*os.File) error) error {
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("%w: %s: %v", ErrSnapshotCorrupt, name, err)
		}
		defer f.Close()
		if err := fn(f); err != nil {
			return fmt.Errorf("%w: reading %s: %v", ErrSnapshotCorrupt, name, err)
		}
		return nil
	}
	if onDisk {
		if e.textIdx, err = index.OpenDiskIndex(filepath.Join(dir, "text.idx")); err != nil {
			return nil, fmt.Errorf("%w: text.idx: %v", ErrSnapshotCorrupt, err)
		}
		if e.nodeIdx, err = index.OpenDiskIndex(filepath.Join(dir, "node.idx")); err != nil {
			e.Close()
			return nil, fmt.Errorf("%w: node.idx: %v", ErrSnapshotCorrupt, err)
		}
	} else {
		if err := readFile("text.idx", func(f *os.File) error {
			e.textIdx, err = index.ReadIndex(f)
			return err
		}); err != nil {
			return nil, err
		}
		if err := readFile("node.idx", func(f *os.File) error {
			e.nodeIdx, err = index.ReadIndex(f)
			return err
		}); err != nil {
			return nil, err
		}
	}
	if err := readFile("emb.bin", func(f *os.File) error {
		e.embeddings, err = core.ReadEmbeddings(f, g)
		return err
	}); err != nil {
		e.Close()
		return nil, err
	}
	if e.textIdx.NumDocs() != len(e.docs) || len(e.embeddings) != len(e.docs) {
		e.Close()
		return nil, fmt.Errorf("%w: %d docs, %d indexed, %d embeddings",
			ErrSnapshotCorrupt, len(e.docs), e.textIdx.NumDocs(), len(e.embeddings))
	}
	e.textB, e.nodeB = nil, nil
	e.built = true
	return e, nil
}
