package newslink

import (
	"context"
	"fmt"
	"strconv"

	"newslink/internal/index"
)

// Engine surface for the cluster tier (internal/cluster).
//
// A scatter-gather router reproduces searchContext's pipeline across
// shard-worker processes: it analyzes the query once (the router holds
// the knowledge graph, exactly like a single-process engine), aggregates
// global term statistics over the shards, ships globally ordered terms
// back for local block-max evaluation, and merges. Workers evaluate
// against their engine's published index sources and materialize result
// documents by local position. These exports expose just those seams —
// analysis, index sources, positional document access and the snippet —
// without opening the engine's internals.

// AnalyzeQuery runs the engine's cache-backed query analysis and returns
// the analyzed text terms plus the node-term weights of the query's
// subgraph embedding — the same inputs searchContext feeds BOW and BON
// retrieval. A nil node map means the query embedded to nothing and BON
// retrieval does not apply. Analysis needs only the knowledge graph, so
// it works on an engine that indexed no documents (a router).
func (e *Engine) AnalyzeQuery(ctx context.Context, text string) (terms []string, nodeWeights map[string]float64, err error) {
	emb, terms, err := e.analyzeQuery(ctx, text)
	if err != nil {
		return nil, nil, err
	}
	if emb != nil {
		nodeWeights = make(map[string]float64, len(emb.Counts))
		for n, c := range emb.Counts {
			nodeWeights[NodeTerm(uint64(n))] = float64(c)
		}
	}
	return terms, nodeWeights, nil
}

// NodeTerm converts a knowledge-graph node ID to the synthetic term under
// which the node index posts it (base-36, as nodeTerm). Router and
// workers must agree on this encoding, so it is part of the public
// surface.
func NodeTerm(id uint64) string { return strconv.FormatUint(id, 36) }

// Sources returns the engine's published text and node index sources for
// one read operation. The sources are immutable snapshots — refreshes
// and merges publish new sets rather than mutating these — so a caller
// may traverse them lock-free for the duration of a request.
func (e *Engine) Sources() (text, node index.Source, err error) {
	snap, err := e.acquire()
	if err != nil {
		return nil, nil, err
	}
	return snap.text, snap.node, nil
}

// EntityTerms resolves entity-facet labels against the knowledge graph:
// labels[i] becomes the node-index terms of every node the folded label
// maps to (empty when the label resolves to nothing — it then matches no
// document). The router resolves once per request and ships the term sets
// to workers, so every shard filters by exactly the terms the router's
// graph resolved, and the composed facet equals a single process's.
func (e *Engine) EntityTerms(labels []string) [][]string {
	return entityTerms(e.Graph(), labels)
}

// FilteredSources is Sources with the request's filter clauses compiled
// into the returned sources: documents outside the inclusive [after,
// before] time range (0 = unbounded) or failing the entity must-match
// facet (term sets from EntityTerms, conjunctive across sets) are masked
// from retrieval through the same live seam as tombstones. Statistics
// stay those of the full local corpus — matching the unfiltered global
// statistics the router aggregates — so filtered shard rankings compose
// exactly. With no clauses set it returns the raw sources.
func (e *Engine) FilteredSources(after, before int64, entities [][]string) (text, node index.Source, err error) {
	snap, err := e.acquire()
	if err != nil {
		return nil, nil, err
	}
	if after == 0 && before == 0 && len(entities) == 0 {
		return snap.text, snap.node, nil
	}
	f := &queryFilter{times: snap.times, after: after, before: before, exclude: -1}
	if len(entities) > 0 {
		f.allow = allowBitmap(snap.node, snap.numDocs, entities)
	}
	return index.NewFiltered(snap.text, f), index.NewFiltered(snap.node, f), nil
}

// DocVisible reports whether the live document with public ID docID
// survives the given filter clauses — the check a shard worker runs
// before explaining a document under a filtered request, so a filtered
// Explain can never produce evidence for a document the same filtered
// Search would not return. Unknown and tombstoned IDs are not visible.
func (e *Engine) DocVisible(docID int, after, before int64, entities [][]string) (bool, error) {
	snap, err := e.acquire()
	if err != nil {
		return false, err
	}
	pos, err := e.lookup(snap, docID)
	if err != nil {
		return false, nil
	}
	if after == 0 && before == 0 && len(entities) == 0 {
		return true, nil
	}
	f := &queryFilter{times: snap.times, after: after, before: before, exclude: -1}
	if len(entities) > 0 {
		f.allow = allowBitmap(snap.node, snap.numDocs, entities)
	}
	return f.Keep(index.DocID(pos)), nil
}

// DocAt returns the document at a global position within the engine's
// published set, tombstoned or not. Position is the coordinate the index
// sources use (search.Hit.Doc), which is what a worker reports to the
// router and the router echoes back to fetch result documents.
func (e *Engine) DocAt(pos int) (Document, error) {
	snap, err := e.acquire()
	if err != nil {
		return Document{}, err
	}
	if pos < 0 || pos >= snap.numDocs {
		return Document{}, fmt.Errorf("%w: position %d of %d", ErrUnknownDoc, pos, snap.numDocs)
	}
	return snap.doc(pos), nil
}

// Snippet picks the sentence of text with the highest query-term overlap,
// exactly as the engine's own result materialization does.
func Snippet(text string, qTerms []string) string { return snippet(text, qTerms) }
