package newslink

import (
	"context"
	"fmt"
	"strconv"

	"newslink/internal/index"
)

// Engine surface for the cluster tier (internal/cluster).
//
// A scatter-gather router reproduces searchContext's pipeline across
// shard-worker processes: it analyzes the query once (the router holds
// the knowledge graph, exactly like a single-process engine), aggregates
// global term statistics over the shards, ships globally ordered terms
// back for local block-max evaluation, and merges. Workers evaluate
// against their engine's published index sources and materialize result
// documents by local position. These exports expose just those seams —
// analysis, index sources, positional document access and the snippet —
// without opening the engine's internals.

// AnalyzeQuery runs the engine's cache-backed query analysis and returns
// the analyzed text terms plus the node-term weights of the query's
// subgraph embedding — the same inputs searchContext feeds BOW and BON
// retrieval. A nil node map means the query embedded to nothing and BON
// retrieval does not apply. Analysis needs only the knowledge graph, so
// it works on an engine that indexed no documents (a router).
func (e *Engine) AnalyzeQuery(ctx context.Context, text string) (terms []string, nodeWeights map[string]float64, err error) {
	emb, terms, err := e.analyzeQuery(ctx, text)
	if err != nil {
		return nil, nil, err
	}
	if emb != nil {
		nodeWeights = make(map[string]float64, len(emb.Counts))
		for n, c := range emb.Counts {
			nodeWeights[NodeTerm(uint64(n))] = float64(c)
		}
	}
	return terms, nodeWeights, nil
}

// NodeTerm converts a knowledge-graph node ID to the synthetic term under
// which the node index posts it (base-36, as nodeTerm). Router and
// workers must agree on this encoding, so it is part of the public
// surface.
func NodeTerm(id uint64) string { return strconv.FormatUint(id, 36) }

// Sources returns the engine's published text and node index sources for
// one read operation. The sources are immutable snapshots — refreshes
// and merges publish new sets rather than mutating these — so a caller
// may traverse them lock-free for the duration of a request.
func (e *Engine) Sources() (text, node index.Source, err error) {
	snap, err := e.acquire()
	if err != nil {
		return nil, nil, err
	}
	return snap.text, snap.node, nil
}

// DocAt returns the document at a global position within the engine's
// published set, tombstoned or not. Position is the coordinate the index
// sources use (search.Hit.Doc), which is what a worker reports to the
// router and the router echoes back to fetch result documents.
func (e *Engine) DocAt(pos int) (Document, error) {
	snap, err := e.acquire()
	if err != nil {
		return Document{}, err
	}
	if pos < 0 || pos >= snap.numDocs {
		return Document{}, fmt.Errorf("%w: position %d of %d", ErrUnknownDoc, pos, snap.numDocs)
	}
	return snap.doc(pos), nil
}

// Snippet picks the sentence of text with the highest query-term overlap,
// exactly as the engine's own result materialization does.
func Snippet(text string, qTerms []string) string { return snippet(text, qTerms) }
