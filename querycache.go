package newslink

import (
	"container/list"
	"sync"

	"newslink/internal/core"
	"newslink/internal/obs"
)

// queryCache memoizes query analysis (NLP + subgraph embedding). A search
// UI calls Search and then Explain/ExplainDOT for several results of the
// same query; without the cache each call would re-run the NE component,
// which dominates query latency (Table VIII). Small LRU, safe for
// concurrent use. Hit/miss counters feed the engine's metric registry, so
// cache effectiveness is visible at /v1/metrics.
type queryCache struct {
	hits, misses *obs.Counter // incremented outside mu; never nil

	mu    sync.Mutex
	max   int
	order *list.List // front = most recent; values are *cacheEntry
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key   string
	emb   *core.DocEmbedding
	terms []string
}

// newQueryCache builds an LRU of at most max analyses reporting hits and
// misses into the given counters (both may be shared with a registry; nil
// counters are replaced with unregistered ones so callers never check).
func newQueryCache(max int, hits, misses *obs.Counter) *queryCache {
	if hits == nil {
		hits = &obs.Counter{}
	}
	if misses == nil {
		misses = &obs.Counter{}
	}
	return &queryCache{hits: hits, misses: misses, max: max, order: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the cached analysis and whether it was present.
func (c *queryCache) get(key string) (*core.DocEmbedding, []string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses.Inc()
		return nil, nil, false
	}
	c.hits.Inc()
	c.order.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.emb, e.terms, true
}

// put stores an analysis, evicting the least recently used entry if full. A
// cache built with max <= 0 stores nothing (and in particular never tries
// to evict from an empty list).
func (c *queryCache) put(key string, emb *core.DocEmbedding, terms []string) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.emb, e.terms = emb, terms
		return
	}
	if c.order.Len() >= c.max {
		if last := c.order.Back(); last != nil {
			c.order.Remove(last)
			delete(c.byKey, last.Value.(*cacheEntry).key)
		}
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, emb: emb, terms: terms})
}

// len returns the number of cached queries.
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
