package newslink

import (
	"container/list"
	"sync"

	"newslink/internal/core"
	"newslink/internal/obs"
)

// queryCache memoizes query analysis (NLP + subgraph embedding). A search
// UI calls Search and then Explain/ExplainDOT for several results of the
// same query; without the cache each call would re-run the NE component,
// which dominates query latency (Table VIII). Small LRU, safe for
// concurrent use. Hit/miss counters feed the engine's metric registry, so
// cache effectiveness is visible at /v1/metrics.
type queryCache struct {
	hits, misses *obs.Counter // incremented outside mu; never nil

	mu    sync.Mutex
	max   int
	order *list.List // front = most recent; values are *cacheEntry
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key   string
	emb   *core.DocEmbedding
	terms []string
}

// newQueryCache builds an LRU of at most max analyses reporting hits and
// misses into the given counters (both may be shared with a registry; nil
// counters are replaced with unregistered ones so callers never check).
func newQueryCache(max int, hits, misses *obs.Counter) *queryCache {
	if hits == nil {
		hits = &obs.Counter{}
	}
	if misses == nil {
		misses = &obs.Counter{}
	}
	return &queryCache{hits: hits, misses: misses, max: max, order: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the cached analysis and whether it was present.
func (c *queryCache) get(key string) (*core.DocEmbedding, []string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses.Inc()
		return nil, nil, false
	}
	c.hits.Inc()
	c.order.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.emb, e.terms, true
}

// put stores an analysis, evicting the least recently used entry if full. A
// cache built with max <= 0 stores nothing (and in particular never tries
// to evict from an empty list).
func (c *queryCache) put(key string, emb *core.DocEmbedding, terms []string) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.emb, e.terms = emb, terms
		return
	}
	if c.order.Len() >= c.max {
		if last := c.order.Back(); last != nil {
			c.order.Remove(last)
			delete(c.byKey, last.Value.(*cacheEntry).key)
		}
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, emb: emb, terms: terms})
}

// len returns the number of cached queries.
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// purge drops every cached analysis (graph swap invalidation).
func (c *queryCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.byKey = make(map[string]*list.Element)
}

// embedCache is tier two of the query cache: document embeddings keyed by
// the canonicalized resolved entity set (entitySetKey). The text-keyed
// queryCache above it memoizes exact repeats of one query string; this
// tier makes differently-phrased queries that name the same entities —
// "Trump  Putin summit", "putin, trump" — share one G* computation, which
// is the expensive part of analysis (Table VIII). A nil embedding is a
// valid entry (the entity set resolved but nothing was embeddable). Safe
// for concurrent use; hit/miss counters feed the metric registry.
type embedCache struct {
	hits, misses *obs.Counter // incremented outside mu; never nil

	mu    sync.Mutex
	max   int
	order *list.List // front = most recent; values are *embedEntry
	byKey map[string]*list.Element
}

type embedEntry struct {
	key string
	emb *core.DocEmbedding
}

// newEmbedCache builds an entity-set embedding LRU of at most max entries
// (max <= 0 stores nothing). Nil counters are replaced with unregistered
// ones so callers never check.
func newEmbedCache(max int, hits, misses *obs.Counter) *embedCache {
	if hits == nil {
		hits = &obs.Counter{}
	}
	if misses == nil {
		misses = &obs.Counter{}
	}
	return &embedCache{hits: hits, misses: misses, max: max, order: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the cached embedding and whether the key was present.
func (c *embedCache) get(key string) (*core.DocEmbedding, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses.Inc()
		return nil, false
	}
	c.hits.Inc()
	c.order.MoveToFront(el)
	return el.Value.(*embedEntry).emb, true
}

// put stores an embedding, evicting the least recently used entry if full.
func (c *embedCache) put(key string, emb *core.DocEmbedding) {
	if c.max <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		el.Value.(*embedEntry).emb = emb
		return
	}
	if c.order.Len() >= c.max {
		if last := c.order.Back(); last != nil {
			c.order.Remove(last)
			delete(c.byKey, last.Value.(*embedEntry).key)
		}
	}
	c.byKey[key] = c.order.PushFront(&embedEntry{key: key, emb: emb})
}

// len returns the number of cached embeddings.
func (c *embedCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// purge drops every cached embedding (graph swap invalidation).
func (c *embedCache) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.byKey = make(map[string]*list.Element)
}
