package newslink

import (
	"container/list"
	"sync"

	"newslink/internal/core"
)

// queryCache memoizes query analysis (NLP + subgraph embedding). A search
// UI calls Search and then Explain/ExplainDOT for several results of the
// same query; without the cache each call would re-run the NE component,
// which dominates query latency (Table VIII). Small LRU, safe for
// concurrent use.
type queryCache struct {
	mu    sync.Mutex
	max   int
	order *list.List // front = most recent; values are *cacheEntry
	byKey map[string]*list.Element
}

type cacheEntry struct {
	key   string
	emb   *core.DocEmbedding
	terms []string
}

func newQueryCache(max int) *queryCache {
	return &queryCache{max: max, order: list.New(), byKey: make(map[string]*list.Element)}
}

// get returns the cached analysis and whether it was present.
func (c *queryCache) get(key string) (*core.DocEmbedding, []string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, nil, false
	}
	c.order.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.emb, e.terms, true
}

// put stores an analysis, evicting the least recently used entry if full.
func (c *queryCache) put(key string, emb *core.DocEmbedding, terms []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		c.order.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		e.emb, e.terms = emb, terms
		return
	}
	if c.order.Len() >= c.max {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.byKey, last.Value.(*cacheEntry).key)
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, emb: emb, terms: terms})
}

// len returns the number of cached queries.
func (c *queryCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
