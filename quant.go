package newslink

import (
	"context"
	"sort"

	"newslink/internal/core"
	"newslink/internal/index"
	"newslink/internal/kg"
	"newslink/internal/search"
	"newslink/internal/textembed"
)

// Int8-quantized BON retrieval (DESIGN.md §15). The exact BON stage scores
// Equation 3's node overlap by traversing node postings with BM25 weights.
// With WithQuantizedEmbeddings the engine instead keeps, per document, a
// dense fixed-dimension signature of its subgraph embedding — a
// feature-hashed random-indexing projection of the node-count vector —
// scalar-quantized to int8 with a per-vector scale (textembed.Quantize).
// The BON stage is then two-phase, the classic quantized-ANN shape:
//
//	scan:    integer dot product over every live signature (sigDim+4 bytes
//	         per document, ¼ of a float32 signature) keeps the top
//	         quantOversample·k candidates;
//	rescore: only those candidates are re-scored exactly, float query
//	         signature against the float signature recomputed from the
//	         document's embedding, and the top k of the exact scores win.
//
// Quantization error can therefore only lose a true top-k document by
// pushing it below rank quantOversample·k in the scan — a ~4× score-error
// margin — which is what holds the recall floor (≥0.99 overlap@k against
// all-float scoring, property-tested in quant_test.go and
// internal/textembed/quant_test.go) with int8 memory economics.

// sigDim is the dense signature dimensionality. 256 keeps a signature at
// 260 bytes (scale + data) while leaving random-indexing collision noise
// well below the score gaps the recall-floor tests demand.
const sigDim = 256

// docSignature projects a subgraph embedding's node-count vector into the
// dense signature space and normalizes it. Nodes are folded in ascending
// NodeID order so the float accumulation — and therefore the persisted
// signature bytes — are deterministic regardless of map iteration order.
// Returns nil for unembeddable documents.
func docSignature(emb *core.DocEmbedding) textembed.Vector {
	if emb == nil || len(emb.Counts) == 0 {
		return nil
	}
	nodes := make([]kg.NodeID, 0, len(emb.Counts))
	for n := range emb.Counts {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	v := make(textembed.Vector, sigDim)
	for _, n := range nodes {
		textembed.AddFeature(v, nodeTerm(n), float32(emb.Counts[n]))
	}
	return textembed.Normalize(v)
}

// quantSignature is the stored form: docSignature scalar-quantized to int8.
func quantSignature(emb *core.DocEmbedding) textembed.Int8Vector {
	v := docSignature(emb)
	if v == nil {
		return textembed.Int8Vector{}
	}
	return textembed.Quantize(v)
}

// buildSigs computes the signatures for a segment's embeddings, or nil when
// quantization is off (so non-quantized engines carry no extra state and
// keep byte-identical snapshots).
func (e *Engine) buildSigs(embs []*core.DocEmbedding) []textembed.Int8Vector {
	if !e.opts.quantizedEmb {
		return nil
	}
	sigs := make([]textembed.Int8Vector, len(embs))
	for i, emb := range embs {
		sigs[i] = quantSignature(emb)
	}
	return sigs
}

// quantOversample is the scan-phase candidate multiplier: the int8 scan
// keeps quantOversample·k candidates for exact rescoring, so a true top-k
// document survives unless quantization error demotes it past that rank.
const quantOversample = 4

// quantTopK is the two-phase quantized BON ranking against the float query
// signature q: int8 scan for quantOversample·k candidates, exact float
// rescore of the candidates, top k positive-scoring hits under the search
// comparator (score descending, ties by ascending Doc — the same order
// every other retrieval path uses, so fusion downstream is oblivious to
// which BON stage ran). A non-nil flt masks documents out of the scan,
// exactly as the tombstone bitmap does — the quantized leg honours the
// same composed filter as the postings traversals. Stats report every
// live scanned document; the scan honours ctx between segments.
func quantTopK(ctx context.Context, snap *segmentSet, q textembed.Vector, k int, flt *queryFilter) ([]search.Hit, search.RetrievalStats, error) {
	var st search.RetrievalStats
	if k <= 0 || len(q) == 0 {
		return nil, st, ctx.Err()
	}
	qq := textembed.Quantize(q)
	if qq.Scale == 0 {
		return nil, st, ctx.Err()
	}
	st.Terms = 1
	r := quantOversample * k
	cands := make([]search.Hit, 0, min(2*r, snap.numLive()))
	for si, sg := range snap.segs {
		if err := ctx.Err(); err != nil {
			return nil, st, err
		}
		base := index.DocID(snap.bases[si])
		for j, sig := range sg.sigs {
			if sg.dead.Get(j) {
				continue
			}
			if flt != nil && !flt.Keep(base+index.DocID(j)) {
				continue
			}
			st.Scored++
			// Candidates are kept by quantized score regardless of sign;
			// only the exact rescore decides relevance.
			cands = append(cands, search.Hit{Doc: base + index.DocID(j), Score: textembed.DotInt8(qq, sig)})
			if len(cands) >= 2*r {
				cands = search.MergeTopK(r, cands)
			}
		}
	}
	cands = search.MergeTopK(r, cands)
	hits := cands[:0]
	for _, c := range cands {
		s := textembed.Dot(q, docSignature(snap.embedding(int(c.Doc))))
		if s > 0 {
			hits = append(hits, search.Hit{Doc: c.Doc, Score: s})
		}
	}
	return search.MergeTopK(k, hits), st, nil
}
