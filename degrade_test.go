package newslink

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"newslink/internal/faults"
	"newslink/internal/obs"
)

// degradedCount reads the engine's degradation counter for one reason.
func degradedCount(e *Engine, reason string) int64 {
	return e.Metrics().Counter("newslink_search_degraded_total", "", obs.L("reason", reason)).Value()
}

// TestDegradeBONError: an injected BON-stage failure in a fused request
// must not fail the request — the response degrades to BOW-only ranking
// that is identical (IDs, order, scores) to a pure-BOW (β = 0) query, the
// reason is reported, and the incident is counted.
func TestDegradeBONError(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	q := "Military conflicts between Pakistan and Taliban"

	inj := faults.New().Fail(faults.BONStage, errors.New("injected BON failure"))
	faults.Arm(inj)
	defer faults.Disarm()

	resp, err := e.SearchContextFull(context.Background(), Query{Text: q, K: 5})
	if err != nil {
		t.Fatalf("degradable search failed: %v", err)
	}
	if !resp.Degraded || resp.DegradedReason != DegradedBONError {
		t.Fatalf("degraded = %v reason = %q, want true/%q", resp.Degraded, resp.DegradedReason, DegradedBONError)
	}
	if len(resp.Results) == 0 {
		t.Fatal("degraded search returned no results")
	}
	if inj.Hits(faults.BONStage) == 0 {
		t.Fatal("BON injection point never fired")
	}

	// Rank- and score-equal to the same query with β = 0 (pure BOW).
	faults.Disarm()
	pure, err := e.SearchContextFull(context.Background(), Query{Text: q, K: 5, Beta: BetaOverride(0)})
	if err != nil {
		t.Fatal(err)
	}
	if pure.Degraded {
		t.Fatal("pure-BOW query must not be degraded")
	}
	if !reflect.DeepEqual(resp.Results, pure.Results) {
		t.Fatalf("degraded ranking differs from pure BOW:\n%+v\nvs\n%+v", resp.Results, pure.Results)
	}

	if got := degradedCount(e, DegradedBONError); got < 1 {
		t.Fatalf("newslink_search_degraded_total{reason=bon_error} = %d", got)
	}
}

// TestDegradeBONTimeout: a BON stage slower than the configured stage
// deadline degrades with reason bon_timeout instead of blocking the
// request behind the slow graph side.
func TestDegradeBONTimeout(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	e.SetBONTimeout(10 * time.Millisecond)
	faults.Arm(faults.New().Delay(faults.BONStage, 2*time.Second))
	defer faults.Disarm()

	start := time.Now()
	resp, err := e.SearchContextFull(context.Background(), Query{Text: "Taliban attack in Pakistan", K: 3})
	if err != nil {
		t.Fatalf("search failed: %v", err)
	}
	if !resp.Degraded || resp.DegradedReason != DegradedBONTimeout {
		t.Fatalf("degraded = %v reason = %q, want true/%q", resp.Degraded, resp.DegradedReason, DegradedBONTimeout)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("stage deadline did not bound the request: %v", elapsed)
	}
	if got := degradedCount(e, DegradedBONTimeout); got < 1 {
		t.Fatalf("newslink_search_degraded_total{reason=bon_timeout} = %d", got)
	}
	// Clearing the bound restores undegraded fused search once the delay
	// rule is gone.
	faults.Disarm()
	e.SetBONTimeout(0)
	resp, err = e.SearchContextFull(context.Background(), Query{Text: "Taliban attack in Pakistan", K: 3})
	if err != nil || resp.Degraded {
		t.Fatalf("recovered search = %+v, %v", resp, err)
	}
}

// TestDegradePureBONFailsHard: with β = 1 there is no text ranking to
// fall back to, so a BON failure keeps strict error semantics.
func TestDegradePureBONFailsHard(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	errInjected := errors.New("injected BON failure")
	faults.Arm(faults.New().Fail(faults.BONStage, errInjected))
	defer faults.Disarm()

	_, err := e.SearchContextFull(context.Background(),
		Query{Text: "Taliban attack in Pakistan", K: 3, Beta: BetaOverride(1)})
	if !errors.Is(err, errInjected) {
		t.Fatalf("pure-BON search = %v, want the injected error", err)
	}
}

// TestDegradeNotOnRequestCancel: when the request's own context ends
// while the BON stage is stuck, the request fails with the context error
// — degradation must not mask a dead request as a 200.
func TestDegradeNotOnRequestCancel(t *testing.T) {
	e := sampleEngine(t, DefaultConfig())
	faults.Arm(faults.New().Delay(faults.BONStage, 5*time.Second))
	defer faults.Disarm()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	resp, err := e.SearchContextFull(ctx, Query{Text: "Taliban attack in Pakistan", K: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled search = %+v, %v, want context.Canceled", resp, err)
	}
	if resp.Degraded {
		t.Fatal("cancelled request must not be reported degraded")
	}
}
