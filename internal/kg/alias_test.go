package kg

import (
	"bytes"
	"testing"
)

func buildAliased(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3)
	election := b.AddNode("US presidential election 2016", KindEvent, "an election")
	clinton := b.AddNode("Clinton", KindPerson, "a politician")
	other := b.AddNode("Clinton Township", KindGPE, "a place")
	b.AddEdgeByName(clinton, election, "candidate in", 1)
	b.AddEdgeByName(other, election, "near", 1)
	b.AddAlias(election, "US election")
	b.AddAlias(election, "2016 election")
	b.AddAlias(clinton, "Hillary Clinton")
	b.AddAlias(other, "Hillary Clinton") // deliberately ambiguous alias
	return b.Build()
}

func TestAliasLookup(t *testing.T) {
	g := buildAliased(t)
	if got := g.Lookup("US election"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Lookup(US election) = %v", got)
	}
	if got := g.Lookup("2016 ELECTION"); len(got) != 1 {
		t.Fatalf("alias lookup not folded: %v", got)
	}
	if got := g.Lookup("hillary clinton"); len(got) != 2 {
		t.Fatalf("ambiguous alias = %v, want 2 nodes", got)
	}
	// Canonical labels keep working.
	if got := g.Lookup("Clinton"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Lookup(Clinton) = %v", got)
	}
}

func TestAliasDedup(t *testing.T) {
	b := NewBuilder(1)
	n := b.AddNode("X", KindGPE, "")
	b.AddAlias(n, "Ex")
	b.AddAlias(n, "ex") // same after folding
	b.AddAlias(n, "")   // ignored
	g := b.Build()
	if got := g.Lookup("ex"); len(got) != 1 {
		t.Fatalf("duplicate alias entries: %v", got)
	}
}

func TestAliasPanicsOnBadNode(t *testing.T) {
	b := NewBuilder(1)
	b.AddNode("X", KindGPE, "")
	mustPanic(t, "alias out of range", func() { b.AddAlias(99, "Y") })
}

func TestAliasTSVRoundTrip(t *testing.T) {
	g := buildAliased(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got := g2.Lookup("US election"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("alias lost in round trip: %v", got)
	}
	if got := g2.Lookup("hillary clinton"); len(got) != 2 {
		t.Fatalf("ambiguous alias lost: %v", got)
	}
	var b1, b2 bytes.Buffer
	if err := Write(&b1, g); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b2, g2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("aliased TSV not byte-stable")
	}
}

func TestAliasTSVErrors(t *testing.T) {
	cases := []string{
		"N\t0\tgpe\tA\td\nA\t0\n",    // wrong field count
		"N\t0\tgpe\tA\td\nA\tx\tY\n", // bad node id
		"N\t0\tgpe\tA\td\nA\t5\tY\n", // out of range
	}
	for i, c := range cases {
		if _, err := Read(bytes.NewBufferString(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
