package kg

import (
	"fmt"
	"math/rand"
	"strings"
)

// The synthetic world generator is the stand-in for the Wikidata dump used
// by the paper (30M nodes / 135M edges are not available offline; see
// DESIGN.md §1). It produces a deterministic world with the structural
// regime that matters to the G* algorithm: shallow geographic containment
// hierarchies (city → province → country → continent), dense event
// neighbourhoods (elections, conflicts, matches, summits, scandals), and a
// controlled rate of ambiguous labels (several nodes sharing one label).

// Config parameterizes the synthetic world.
type Config struct {
	Seed                int64
	Countries           int
	ProvincesPerCountry int
	CitiesPerProvince   int
	PersonsPerCountry   int
	OrgsPerCountry      int
	EventsPerCountry    int
	// AmbiguityRate is the probability that a newly generated city or person
	// reuses an existing label, creating label ambiguity as in real KGs.
	AmbiguityRate float64
}

// DefaultConfig returns a medium-sized world (~2k nodes) suitable for tests
// and examples. Experiments scale Countries up.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:                seed,
		Countries:           20,
		ProvincesPerCountry: 5,
		CitiesPerProvince:   4,
		PersonsPerCountry:   24,
		OrgsPerCountry:      10,
		EventsPerCountry:    12,
		AmbiguityRate:       0.02,
	}
}

// Topic is the news topic an event belongs to; the corpus generator writes
// one article per event, so the topic mix of a corpus profile is controlled
// by the event mix here.
type Topic string

// Topics covered by the synthetic world, mirroring the paper's datasets
// ("many types such as sports, politics and entertainment").
const (
	TopicPolitics      Topic = "politics"
	TopicMilitary      Topic = "military"
	TopicSports        Topic = "sports"
	TopicEntertainment Topic = "entertainment"
	TopicBusiness      Topic = "business"
)

// AllTopics lists every topic the generator can produce.
var AllTopics = []Topic{TopicPolitics, TopicMilitary, TopicSports, TopicEntertainment, TopicBusiness}

// Event describes one generated event node together with the entities a news
// article about it would mention.
type Event struct {
	Node         NodeID
	Topic        Topic
	Country      NodeID
	Location     NodeID   // city or province where it happens
	Participants []NodeID // persons/orgs directly involved
}

// World is the output of Generate: the graph plus the event catalogue and
// per-country entity rosters used by the corpus generator.
type World struct {
	Graph  *Graph
	Events []Event
	// CountryNodes holds the country node IDs in generation order.
	CountryNodes []NodeID
}

// Generate builds a synthetic world from the config. The same config always
// yields a byte-identical world.
func Generate(cfg Config) *World {
	if cfg.Countries <= 0 {
		cfg = DefaultConfig(cfg.Seed)
	}
	g := &gen{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		b:    NewBuilder(cfg.Countries * 80),
		used: make(map[string]bool),
	}
	return g.run()
}

type gen struct {
	cfg  Config
	rng  *rand.Rand
	b    *Builder
	used map[string]bool

	// per-country rosters, rebuilt for each country
	continent NodeID
	labels    []string // pool of labels already emitted, for ambiguity reuse
}

type country struct {
	node      NodeID
	capital   NodeID
	provinces []NodeID
	cities    []NodeID
	people    []NodeID
	parties   []NodeID
	groups    []NodeID // militant groups
	teams     []NodeID
	companies []NodeID
	agencies  []NodeID
	artists   []NodeID
	works     []NodeID
	nation    NodeID // NORP node ("Fooish")
}

func (g *gen) run() *World {
	w := &World{}
	nContinents := g.cfg.Countries/8 + 1
	continents := make([]NodeID, nContinents)
	for i := range continents {
		continents[i] = g.b.AddNode(g.placeName()+" Continent", KindLocation, "a continent")
	}
	countries := make([]country, g.cfg.Countries)
	for i := range countries {
		g.continent = continents[i%nContinents]
		countries[i] = g.country()
		w.CountryNodes = append(w.CountryNodes, countries[i].node)
	}
	// Cross-country structure: borders between consecutive countries on the
	// same continent, plus occasional alliances.
	for i := 1; i < len(countries); i++ {
		if i%nContinents == 0 {
			g.b.AddEdgeByName(countries[i].node, countries[i-1].node, "shares border with", 1)
		}
		if g.rng.Float64() < 0.3 {
			j := g.rng.Intn(i)
			g.b.AddEdgeByName(countries[i].node, countries[j].node, "diplomatic relation", 1)
		}
	}
	for i := range countries {
		w.Events = append(w.Events, g.events(&countries[i], countries)...)
	}
	w.Graph = g.b.Build()
	return w
}

func (g *gen) country() country {
	var c country
	cname := g.freshName(2, 3) + "stan"
	c.node = g.b.AddNode(cname, KindGPE, "a sovereign country")
	c.nation = g.b.AddNode(strings.TrimSuffix(cname, "stan")+"i", KindNORP, "people of "+cname)
	g.b.AddEdgeByName(c.nation, c.node, "nationality of", 1)
	g.b.AddEdgeByName(c.node, g.continent, "located in", 1)

	for p := 0; p < g.cfg.ProvincesPerCountry; p++ {
		prov := g.b.AddNode(g.placeName(), KindGPE, "a province of "+cname)
		g.b.AddEdgeByName(prov, c.node, "located in", 1)
		c.provinces = append(c.provinces, prov)
		if p > 0 && g.rng.Float64() < 0.6 {
			g.b.AddEdgeByName(prov, c.provinces[g.rng.Intn(p)], "shares border with", 1)
		}
		for q := 0; q < g.cfg.CitiesPerProvince; q++ {
			city := g.b.AddNode(g.placeName(), KindGPE, "a city in "+cname)
			g.b.AddEdgeByName(city, prov, "located in", 1)
			c.cities = append(c.cities, city)
			if c.capital == 0 && p == 0 && q == 0 {
				c.capital = city
				g.b.AddEdgeByName(city, c.node, "capital of", 1)
			}
		}
	}

	// Organizations.
	nOrgs := g.cfg.OrgsPerCountry
	for o := 0; o < nOrgs; o++ {
		switch o % 5 {
		case 0:
			p := g.b.AddNode(g.freshName(2, 3)+" Party", KindOrg, "a political party in "+cname)
			g.b.AddEdgeByName(p, c.node, "operates in", 1)
			c.parties = append(c.parties, p)
		case 1:
			m := g.b.AddNode(g.freshName(2, 3)+" Front", KindOrg, "a militant group active in "+cname)
			g.b.AddEdgeByName(m, c.provinces[g.rng.Intn(len(c.provinces))], "active in", 1)
			c.groups = append(c.groups, m)
		case 2:
			t := g.b.AddNode(g.placeName()+" United", KindOrg, "a sports club of "+cname)
			g.b.AddEdgeByName(t, c.cities[g.rng.Intn(len(c.cities))], "based in", 1)
			c.teams = append(c.teams, t)
		case 3:
			co := g.b.AddNode(g.freshName(2, 3)+" Corp", KindOrg, "a company headquartered in "+cname)
			g.b.AddEdgeByName(co, c.capital, "headquartered in", 1)
			c.companies = append(c.companies, co)
		case 4:
			a := g.b.AddNode(g.freshName(1, 2)+" Bureau", KindOrg, "a state agency of "+cname)
			g.b.AddEdgeByName(a, c.node, "agency of", 1)
			c.agencies = append(c.agencies, a)
		}
	}

	// People: politicians, athletes, artists.
	for p := 0; p < g.cfg.PersonsPerCountry; p++ {
		name := g.personName()
		person := g.b.AddNode(name, KindPerson, "a public figure from "+cname)
		g.b.AddEdgeByName(person, c.node, "citizen of", 1)
		c.people = append(c.people, person)
		switch p % 3 {
		case 0:
			if len(c.parties) > 0 {
				g.b.AddEdgeByName(person, c.parties[p%len(c.parties)], "member of", 1)
			}
		case 1:
			if len(c.teams) > 0 {
				g.b.AddEdgeByName(person, c.teams[p%len(c.teams)], "plays for", 1)
			}
		case 2:
			c.artists = append(c.artists, person)
			work := g.b.AddNode("The "+g.freshName(2, 3), KindWorkOfArt, "a work by "+name)
			g.b.AddEdgeByName(work, person, "created by", 1)
			c.works = append(c.works, work)
		}
	}
	return c
}

// events creates event nodes for one country, wiring them into the graph and
// returning the event catalogue entries.
func (g *gen) events(c *country, all []country) []Event {
	var out []Event
	year := 2010 + g.rng.Intn(10)
	for e := 0; e < g.cfg.EventsPerCountry; e++ {
		cname := g.b.nodes[c.node].Label
		switch e % 5 {
		case 0: // election (politics)
			ev := g.b.AddNode(fmt.Sprintf("%s general election %d", cname, year+e),
				KindEvent, "a national election in "+cname)
			g.b.AddEdgeByName(ev, c.node, "held in", 1)
			parts := g.pick(c.people, 2+g.rng.Intn(2))
			for _, p := range parts {
				g.b.AddEdgeByName(p, ev, "candidate in", 1)
			}
			out = append(out, Event{ev, TopicPolitics, c.node, c.capital, parts})
		case 1: // armed conflict (military)
			if len(c.groups) == 0 {
				continue
			}
			prov := c.provinces[g.rng.Intn(len(c.provinces))]
			grp := c.groups[g.rng.Intn(len(c.groups))]
			ev := g.b.AddNode(fmt.Sprintf("%s insurgency", g.b.nodes[prov].Label),
				KindEvent, "an armed conflict in "+cname)
			g.b.AddEdgeByName(ev, prov, "held in", 1)
			g.b.AddEdgeByName(grp, ev, "participant in", 1)
			g.b.AddEdgeByName(c.node, ev, "participant in", 1)
			parts := []NodeID{grp, c.node}
			out = append(out, Event{ev, TopicMilitary, c.node, prov, parts})
		case 2: // match (sports)
			if len(c.teams) == 0 {
				continue
			}
			home := c.teams[g.rng.Intn(len(c.teams))]
			other := &all[g.rng.Intn(len(all))]
			if len(other.teams) == 0 {
				other = c
			}
			away := other.teams[g.rng.Intn(len(other.teams))]
			city := c.cities[g.rng.Intn(len(c.cities))]
			ev := g.b.AddNode(fmt.Sprintf("%s Cup %d", g.b.nodes[city].Label, year+e),
				KindEvent, "a sports tournament")
			g.b.AddEdgeByName(ev, city, "held in", 1)
			g.b.AddEdgeByName(home, ev, "participant in", 1)
			g.b.AddEdgeByName(away, ev, "participant in", 1)
			out = append(out, Event{ev, TopicSports, c.node, city, []NodeID{home, away}})
		case 3: // award ceremony (entertainment)
			if len(c.artists) == 0 || len(c.works) == 0 {
				continue
			}
			artist := c.artists[g.rng.Intn(len(c.artists))]
			work := c.works[g.rng.Intn(len(c.works))]
			ev := g.b.AddNode(fmt.Sprintf("%s Film Awards %d", g.b.nodes[c.capital].Label, year+e),
				KindEvent, "an award ceremony")
			g.b.AddEdgeByName(ev, c.capital, "held in", 1)
			g.b.AddEdgeByName(artist, ev, "nominated in", 1)
			g.b.AddEdgeByName(work, ev, "nominated in", 1)
			out = append(out, Event{ev, TopicEntertainment, c.node, c.capital, []NodeID{artist, work}})
		case 4: // merger or scandal (business)
			if len(c.companies) < 1 || len(c.agencies) < 1 {
				continue
			}
			co := c.companies[g.rng.Intn(len(c.companies))]
			ag := c.agencies[g.rng.Intn(len(c.agencies))]
			ev := g.b.AddNode(fmt.Sprintf("%s probe %d", g.b.nodes[co].Label, year+e),
				KindEvent, "a regulatory investigation")
			g.b.AddEdgeByName(co, ev, "subject of", 1)
			g.b.AddEdgeByName(ag, ev, "investigator of", 1)
			g.b.AddEdgeByName(ev, c.capital, "held in", 1)
			out = append(out, Event{ev, TopicBusiness, c.node, c.capital, []NodeID{co, ag}})
		}
	}
	return out
}

// pick samples n distinct elements from ids (or all of them if n >= len).
func (g *gen) pick(ids []NodeID, n int) []NodeID {
	if n >= len(ids) {
		out := make([]NodeID, len(ids))
		copy(out, ids)
		return out
	}
	idx := g.rng.Perm(len(ids))[:n]
	out := make([]NodeID, n)
	for i, j := range idx {
		out[i] = ids[j]
	}
	return out
}

// --- name generation ---

var (
	onsets  = []string{"b", "br", "ch", "d", "dr", "f", "g", "gr", "h", "j", "k", "kh", "l", "m", "n", "p", "q", "r", "s", "sh", "t", "tr", "v", "w", "y", "z"}
	vowels  = []string{"a", "e", "i", "o", "u", "ai", "ar", "or", "an", "en", "un", "ur"}
	suffixs = []string{"", "a", "ia", "or", "ar", "on", "in", "ur"}
)

func (g *gen) syllables(lo, hi int) string {
	n := lo
	if hi > lo {
		n += g.rng.Intn(hi - lo + 1)
	}
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteString(onsets[g.rng.Intn(len(onsets))])
		sb.WriteString(vowels[g.rng.Intn(len(vowels))])
	}
	sb.WriteString(suffixs[g.rng.Intn(len(suffixs))])
	s := sb.String()
	return strings.ToUpper(s[:1]) + s[1:]
}

// freshName returns a name not used before (best effort).
func (g *gen) freshName(lo, hi int) string {
	for tries := 0; tries < 50; tries++ {
		s := g.syllables(lo, hi)
		if !g.used[s] {
			g.used[s] = true
			g.labels = append(g.labels, s)
			return s
		}
	}
	s := g.syllables(lo, hi) + fmt.Sprint(g.rng.Intn(1000))
	g.used[s] = true
	return s
}

// placeName returns a place name; with probability AmbiguityRate it reuses
// an existing label so the label index maps it to several nodes.
func (g *gen) placeName() string {
	if len(g.labels) > 10 && g.rng.Float64() < g.cfg.AmbiguityRate {
		return g.labels[g.rng.Intn(len(g.labels))]
	}
	return g.freshName(2, 3)
}

func (g *gen) personName() string {
	return g.freshName(1, 2) + " " + g.freshName(2, 3)
}
