package kg

import (
	"bytes"
	"testing"
	"testing/quick"
)

func buildTiny(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(4)
	a := b.AddNode("Alpha", KindGPE, "a place")
	c := b.AddNode("Beta", KindGPE, "another place")
	d := b.AddNode("Gamma", KindPerson, "a person")
	e := b.AddNode("Beta", KindOrg, "an org sharing the Beta label")
	b.AddEdgeByName(a, c, "located in", 1)
	b.AddEdgeByName(d, c, "citizen of", 2)
	b.AddEdgeByName(d, e, "member of", 1)
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	g := buildTiny(t)
	if got, want := g.NumNodes(), 4; got != want {
		t.Fatalf("NumNodes = %d, want %d", got, want)
	}
	if got, want := g.NumEdges(), 3; got != want {
		t.Fatalf("NumEdges = %d, want %d", got, want)
	}
	if got := g.Node(0).Label; got != "Alpha" {
		t.Fatalf("Node(0).Label = %q, want Alpha", got)
	}
	if g.NumRels() != 3 {
		t.Fatalf("NumRels = %d, want 3", g.NumRels())
	}
}

func TestBidirectedArcs(t *testing.T) {
	g := buildTiny(t)
	// Node 1 (Beta GPE) should see the reversed arc from Alpha and from Gamma.
	var fwd, rev int
	for _, a := range g.Neighbors(1) {
		if a.Reverse {
			rev++
		} else {
			fwd++
		}
	}
	if fwd != 0 || rev != 2 {
		t.Fatalf("Beta arcs fwd=%d rev=%d, want 0 fwd 2 rev", fwd, rev)
	}
	// Total arc count must be exactly twice the edge count.
	total := 0
	for i := 0; i < g.NumNodes(); i++ {
		total += g.Degree(NodeID(i))
	}
	if total != 2*g.NumEdges() {
		t.Fatalf("total arcs = %d, want %d", total, 2*g.NumEdges())
	}
}

func TestLabelIndexExactAndAmbiguous(t *testing.T) {
	g := buildTiny(t)
	if got := g.Lookup("Alpha"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("Lookup(Alpha) = %v", got)
	}
	if got := g.Lookup("beta"); len(got) != 2 {
		t.Fatalf("Lookup(beta) = %v, want 2 nodes (ambiguous label)", got)
	}
	if got := g.Lookup("  BETA  "); len(got) != 2 {
		t.Fatalf("Lookup with whitespace/case = %v, want 2 nodes", got)
	}
	if g.Lookup("Nope") != nil {
		t.Fatal("Lookup(Nope) should be nil")
	}
	if !g.Index().Contains("gamma") {
		t.Fatal("Contains(gamma) = false")
	}
	if g.Index().Size() != 3 {
		t.Fatalf("index Size = %d, want 3 distinct labels", g.Index().Size())
	}
}

func TestFold(t *testing.T) {
	cases := []struct{ in, want string }{
		{"Upper  Dir", "upper dir"},
		{" Swat Valley ", "swat valley"},
		{"TALIBAN", "taliban"},
		{"", ""},
	}
	for _, c := range cases {
		if got := Fold(c.in); got != c.want {
			t.Errorf("Fold(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestAddEdgePanics(t *testing.T) {
	b := NewBuilder(1)
	n := b.AddNode("X", KindGPE, "")
	mustPanic(t, "zero weight", func() { b.AddEdge(n, n, 0, 0) })
	mustPanic(t, "bad endpoint", func() { b.AddEdge(n, 99, 0, 1) })
}

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

func TestKindRoundTrip(t *testing.T) {
	for k := KindUnknown; k <= KindLanguage; k++ {
		if got := KindFromString(k.String()); got != k {
			t.Errorf("KindFromString(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if KindFromString("bogus") != KindUnknown {
		t.Error("unknown kind name should map to KindUnknown")
	}
}

func TestTSVRoundTrip(t *testing.T) {
	g := buildTiny(t)
	var buf bytes.Buffer
	if err := Write(&buf, g); err != nil {
		t.Fatalf("Write: %v", err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip size mismatch: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for i := 0; i < g.NumNodes(); i++ {
		if g.Node(NodeID(i)) != g2.Node(NodeID(i)) {
			t.Fatalf("node %d mismatch: %+v vs %+v", i, g.Node(NodeID(i)), g2.Node(NodeID(i)))
		}
	}
	var b1, b2 bytes.Buffer
	if err := Write(&b1, g); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b2, g2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("TSV round trip is not byte-stable")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"X\t0\n",
		"N\t0\tgpe\tA\n",
		"N\t5\tgpe\tA\tdesc\n",
		"N\t0\tgpe\tA\td\nE\t0\tr\t7\t1\n",
		"N\t0\tgpe\tA\td\nE\t0\tr\t0\tNaNopes\n",
	}
	for i, c := range cases {
		if _, err := Read(bytes.NewBufferString(c)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w1 := Generate(DefaultConfig(7))
	w2 := Generate(DefaultConfig(7))
	var b1, b2 bytes.Buffer
	if err := Write(&b1, w1.Graph); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b2, w2.Graph); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1.Bytes(), b2.Bytes()) {
		t.Fatal("Generate is not deterministic for identical configs")
	}
	if len(w1.Events) != len(w2.Events) {
		t.Fatal("event catalogues differ")
	}
	w3 := Generate(DefaultConfig(8))
	var b3 bytes.Buffer
	if err := Write(&b3, w3.Graph); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1.Bytes(), b3.Bytes()) {
		t.Fatal("different seeds should produce different worlds")
	}
}

func TestGenerateStructure(t *testing.T) {
	w := Generate(DefaultConfig(42))
	s := ComputeStats(w.Graph)
	if s.Nodes < 500 {
		t.Fatalf("world too small: %d nodes", s.Nodes)
	}
	if s.Components != 1 {
		t.Fatalf("world must be connected, got %d components (largest %d of %d)",
			s.Components, s.LargestComp, s.Nodes)
	}
	if s.AmbiguousLabel == 0 {
		t.Fatal("expected some ambiguous labels")
	}
	if len(w.Events) == 0 {
		t.Fatal("no events generated")
	}
	topics := map[Topic]int{}
	for _, e := range w.Events {
		topics[e.Topic]++
		if len(e.Participants) == 0 {
			t.Fatalf("event %d has no participants", e.Node)
		}
		if e.Location == 0 || e.Country == 0 {
			t.Fatalf("event %d missing location/country", e.Node)
		}
	}
	for _, tp := range AllTopics {
		if topics[tp] == 0 {
			t.Errorf("no events for topic %s", tp)
		}
	}
	if s.KindCounts[KindPerson] == 0 || s.KindCounts[KindEvent] == 0 || s.KindCounts[KindGPE] == 0 {
		t.Fatalf("missing kinds: %v", s.KindCounts)
	}
}

func TestStatsString(t *testing.T) {
	s := ComputeStats(buildTiny(t))
	if s.Nodes != 4 || s.Edges != 3 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Components != 1 {
		t.Fatalf("tiny graph should be connected, got %d components", s.Components)
	}
	if out := s.String(); out == "" {
		t.Fatal("empty stats string")
	}
}

// Property: for any folded label returned by the index, every node it maps
// to folds back to the same key.
func TestLabelIndexProperty(t *testing.T) {
	w := Generate(DefaultConfig(3))
	g := w.Graph
	ok := true
	g.Index().Labels(func(label string, nodes []NodeID) bool {
		for _, n := range nodes {
			if Fold(g.Label(n)) != label {
				t.Errorf("node %d label %q folds to %q, indexed under %q",
					n, g.Label(n), Fold(g.Label(n)), label)
				ok = false
			}
		}
		return ok
	})
}

// Property: Fold is idempotent.
func TestFoldIdempotent(t *testing.T) {
	f := func(s string) bool { return Fold(Fold(s)) == Fold(s) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
