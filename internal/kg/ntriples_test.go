package kg

import (
	"strings"
	"testing"
)

const sampleNT = `
# A Wikidata-style fragment.
<http://wd/Q1> <http://www.w3.org/2000/01/rdf-schema#label> "Khyber"@en .
<http://wd/Q1> <http://schema.org/description> "a province of Pakistan"@en .
<http://wd/Q1> <http://www.w3.org/2000/01/rdf-schema#label> "Chaibar"@de .
<http://wd/Q2> <http://www.w3.org/2000/01/rdf-schema#label> "Peshawar"@en .
<http://wd/Q2> <http://www.w3.org/2004/02/skos/core#altLabel> "Pekhawar"@en .
<http://wd/Q2> <http://wd/prop/P131> <http://wd/Q1> .
<http://wd/Q3> <http://www.w3.org/2000/01/rdf-schema#label> "Pakistan"@en .
<http://wd/Q1> <http://wd/prop/P131> <http://wd/Q3> .
<http://wd/Q3> <http://wd/prop/P1082> "231000000" .
`

func TestParseNTriples(t *testing.T) {
	g, err := ParseNTriples(strings.NewReader(sampleNT), "en", true)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d, want 3", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2 (the population literal is not an edge)", g.NumEdges())
	}
	khyber := g.Lookup("Khyber")
	if len(khyber) != 1 {
		t.Fatalf("Khyber lookup = %v", khyber)
	}
	if got := g.Node(khyber[0]).Desc; got != "a province of Pakistan" {
		t.Fatalf("desc = %q", got)
	}
	// The German label must not override the English one.
	if got := g.Label(khyber[0]); got != "Khyber" {
		t.Fatalf("label = %q (language filter failed)", got)
	}
	// Alias resolves.
	if got := g.Lookup("pekhawar"); len(got) != 1 || g.Label(got[0]) != "Peshawar" {
		t.Fatalf("alias lookup = %v", got)
	}
	// Edge relation name is the predicate's local name.
	peshawar := g.Lookup("Peshawar")[0]
	found := false
	for _, a := range g.Neighbors(peshawar) {
		if !a.Reverse && g.RelName(a.Rel) == "P131" && g.Label(a.To) == "Khyber" {
			found = true
		}
	}
	if !found {
		t.Fatal("P131 edge missing")
	}
}

func TestParseNTriplesEscapes(t *testing.T) {
	nt := `<http://x/a> <http://x/label> "He said \"hi\"\nbye" .` + "\n"
	g, err := ParseNTriples(strings.NewReader(nt), "en", true)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Label(0); !strings.Contains(got, `"hi"`) {
		t.Fatalf("escape handling: %q", got)
	}
}

func TestParseNTriplesStrict(t *testing.T) {
	bad := []string{
		`<http://x/a> <http://x/p> <http://x/b>`,        // missing dot
		`"literal subject" <http://x/p> <http://x/b> .`, // non-IRI subject
		`<http://x/a> "pred" <http://x/b> .`,            // non-IRI predicate
		`<http://x/a> <http://x/p> .`,                   // missing object
		`<http://x/a> <http://x/p> "unterminated .`,     // bad literal
	}
	for i, line := range bad {
		if _, err := ParseNTriples(strings.NewReader(line+"\n"), "en", true); err == nil {
			t.Errorf("case %d: strict mode should fail: %s", i, line)
		}
		// Lenient mode skips and succeeds.
		if _, err := ParseNTriples(strings.NewReader(line+"\n"), "en", false); err != nil {
			t.Errorf("case %d: lenient mode should skip: %v", i, err)
		}
	}
}

func TestParseNTriplesEndToEnd(t *testing.T) {
	// The parsed graph is a first-class KG: G*-style lookups work on it.
	g, err := ParseNTriples(strings.NewReader(sampleNT), "en", true)
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(g)
	if s.Components != 1 {
		t.Fatalf("parsed graph disconnected: %+v", s)
	}
}

func TestLocalName(t *testing.T) {
	cases := map[string]string{
		"http://www.w3.org/2000/01/rdf-schema#label": "label",
		"http://www.wikidata.org/prop/direct/P131":   "P131",
		"plain": "plain",
	}
	for in, want := range cases {
		if got := localName(in); got != want {
			t.Errorf("localName(%q) = %q, want %q", in, got, want)
		}
	}
}
