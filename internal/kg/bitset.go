package kg

// Bitset is a flat-word bit set over a fixed universe of node IDs with
// sparse O(touched) reset: Set records which 64-bit words it dirtied, and
// Reset zeroes only those, so a graph-sized bitset can be recycled across
// queries at a cost proportional to the visited set rather than the graph.
// It is the visited/candidate tracking structure of core's flat G* search
// state (the words-of-uint64 layout index.Bitmap uses for tombstones,
// without the serialization or immutability contract). Not safe for
// concurrent use; each traversal owns its own Bitset.
type Bitset struct {
	words []uint64
	dirty []int32 // indices of words with at least one bit ever set since Reset
}

// NewBitset returns an all-zero bitset over n bits.
func NewBitset(n int) *Bitset {
	if n < 0 {
		n = 0
	}
	return &Bitset{words: make([]uint64, (n+63)/64)}
}

// Len returns the number of addressable bits.
func (b *Bitset) Len() int { return len(b.words) * 64 }

// Grow extends the universe to at least n bits, preserving set bits.
func (b *Bitset) Grow(n int) {
	need := (n + 63) / 64
	if need <= len(b.words) {
		return
	}
	words := make([]uint64, need)
	copy(words, b.words)
	b.words = words
}

// Test reports bit i. Out-of-range positions read as unset.
func (b *Bitset) Test(i int) bool {
	w := i >> 6
	if i < 0 || w >= len(b.words) {
		return false
	}
	return b.words[w]&(1<<(i&63)) != 0
}

// TestSet sets bit i and reports whether it was already set. The position
// must be within the universe.
func (b *Bitset) TestSet(i int) bool {
	w, m := i>>6, uint64(1)<<(i&63)
	old := b.words[w]
	if old&m != 0 {
		return true
	}
	if old == 0 {
		b.dirty = append(b.dirty, int32(w))
	}
	b.words[w] = old | m
	return false
}

// Set sets bit i.
func (b *Bitset) Set(i int) { b.TestSet(i) }

// Reset clears every set bit in time proportional to the number of words
// touched since the previous Reset, keeping a pooled graph-sized bitset
// cheap to recycle between traversals.
func (b *Bitset) Reset() {
	for _, w := range b.dirty {
		b.words[w] = 0
	}
	b.dirty = b.dirty[:0]
}
