package kg

import (
	"fmt"
	"strings"
)

// Stats summarizes the structure of a graph; useful for validating that the
// synthetic generator produces the structural regime the paper's Wikidata
// slice exhibits (shallow containment hierarchies, skewed degrees).
type Stats struct {
	Nodes          int
	Edges          int
	Relations      int
	DistinctLabels int
	AmbiguousLabel int // labels mapping to >1 node
	MaxDegree      int
	AvgDegree      float64
	KindCounts     map[Kind]int
	Components     int
	LargestComp    int
}

// ComputeStats walks the graph once and returns its Stats.
func ComputeStats(g *Graph) Stats {
	s := Stats{
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		Relations:  g.NumRels(),
		KindCounts: make(map[Kind]int),
	}
	totalDeg := 0
	for i := 0; i < g.NumNodes(); i++ {
		id := NodeID(i)
		d := g.Degree(id)
		totalDeg += d
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
		s.KindCounts[g.Node(id).Kind]++
	}
	if s.Nodes > 0 {
		s.AvgDegree = float64(totalDeg) / float64(s.Nodes)
	}
	g.Index().Labels(func(_ string, nodes []NodeID) bool {
		s.DistinctLabels++
		if len(nodes) > 1 {
			s.AmbiguousLabel++
		}
		return true
	})
	s.Components, s.LargestComp = components(g)
	return s
}

// components counts connected components under bidirected reachability.
func components(g *Graph) (count, largest int) {
	n := g.NumNodes()
	seen := make([]bool, n)
	stack := make([]NodeID, 0, 64)
	for i := 0; i < n; i++ {
		if seen[i] {
			continue
		}
		count++
		size := 0
		stack = append(stack[:0], NodeID(i))
		seen[i] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			size++
			for _, a := range g.Neighbors(v) {
				if !seen[a.To] {
					seen[a.To] = true
					stack = append(stack, a.To)
				}
			}
		}
		if size > largest {
			largest = size
		}
	}
	return count, largest
}

// String renders the stats as a small human-readable report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "nodes=%d edges=%d relations=%d\n", s.Nodes, s.Edges, s.Relations)
	fmt.Fprintf(&b, "labels=%d (ambiguous=%d) avg_degree=%.2f max_degree=%d\n",
		s.DistinctLabels, s.AmbiguousLabel, s.AvgDegree, s.MaxDegree)
	fmt.Fprintf(&b, "components=%d largest=%d\n", s.Components, s.LargestComp)
	for k := KindUnknown; k <= KindLanguage; k++ {
		if c := s.KindCounts[k]; c > 0 {
			fmt.Fprintf(&b, "  %-12s %d\n", k, c)
		}
	}
	return b.String()
}
