// Package kg implements the knowledge-graph substrate used by NewsLink.
//
// The paper embeds news documents into Wikidata; here the graph is an
// in-memory, labeled, weighted property graph. Following Section V-A of the
// paper the graph is treated as bidirected: for every relationship edge a
// reversed arc is materialized so that shortest-path distances are symmetric.
// Arcs remember whether they are the original or the reversed direction so
// relationship paths can be rendered faithfully (e.g. "Lahore -located in->
// Pakistan" rather than the reverse).
package kg

import (
	"fmt"
	"sort"
)

// NodeID identifies an entity node. IDs are dense, starting at 0, so they
// index directly into the graph's internal slices.
type NodeID uint32

// RelID identifies a relationship type in the graph's relation vocabulary.
type RelID uint16

// Kind is the coarse entity type attached to a node. It mirrors the entity
// types the paper's NLP component keeps after NER (Section IV): everything
// except numbers and quantities.
type Kind uint8

// Entity kinds considered during entity recognition (Section IV).
const (
	KindUnknown Kind = iota
	KindPerson
	KindNORP // nationality, religious or political group
	KindFacility
	KindOrg
	KindGPE // geo-political entity
	KindLocation
	KindProduct
	KindEvent
	KindWorkOfArt
	KindLaw
	KindLanguage
)

var kindNames = [...]string{
	"unknown", "person", "norp", "facility", "org", "gpe",
	"location", "product", "event", "work_of_art", "law", "language",
}

// String returns the lowercase name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// KindFromString parses the name produced by Kind.String. It returns
// KindUnknown for unrecognized names.
func KindFromString(s string) Kind {
	for i, n := range kindNames {
		if n == s {
			return Kind(i)
		}
	}
	return KindUnknown
}

// Node is an entity node of the knowledge graph.
type Node struct {
	Label string // surface label used for exact-match entity linking
	Kind  Kind
	Desc  string // short description, used by the QEPRF baseline
}

// Arc is one direction of a (bidirected) relationship edge.
type Arc struct {
	To      NodeID
	Rel     RelID
	Weight  float64
	Reverse bool // true if this arc is the materialized reverse direction
}

// Graph is an immutable, bidirected, labeled, weighted knowledge graph.
// Build one with a Builder. The zero value is an empty graph.
// Adjacency is stored in CSR form — one flat arc slice plus per-node
// offsets — so a multi-million-node graph costs two allocations instead of
// one slice header per node and scans with perfect locality.
type Graph struct {
	nodes   []Node
	rels    []string
	arcOff  []uint64 // len NumNodes+1; arcs of v are arcs[arcOff[v]:arcOff[v+1]]
	arcs    []Arc
	index   *LabelIndex
	aliases map[string][]NodeID // folded alias -> nodes, kept for serialization
	edges   int                 // number of original (pre-reversal) edges
}

// NumNodes returns the number of entity nodes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of original relationship edges (each is stored
// as two arcs internally).
func (g *Graph) NumEdges() int { return g.edges }

// Node returns the node with the given ID. It panics if id is out of range.
func (g *Graph) Node(id NodeID) Node { return g.nodes[id] }

// Label returns the label of the node with the given ID.
func (g *Graph) Label(id NodeID) string { return g.nodes[id].Label }

// RelName returns the name of a relationship type.
func (g *Graph) RelName(r RelID) string { return g.rels[r] }

// NumRels returns the size of the relation vocabulary.
func (g *Graph) NumRels() int { return len(g.rels) }

// Neighbors returns the arcs leaving id (both original and reversed
// directions, so traversal is bidirected). The returned slice is shared with
// the graph and must not be modified.
func (g *Graph) Neighbors(id NodeID) []Arc {
	return g.arcs[g.arcOff[id]:g.arcOff[id+1]]
}

// Index returns the label index for exact-match entity linking.
func (g *Graph) Index() *LabelIndex { return g.index }

// Lookup returns S(l): the set of nodes whose label exactly matches l after
// case folding (Section V-A, Example 3).
func (g *Graph) Lookup(label string) []NodeID { return g.index.Lookup(label) }

// Degree returns the bidirected degree of id.
func (g *Graph) Degree(id NodeID) int {
	return int(g.arcOff[id+1] - g.arcOff[id])
}

// Aliases calls fn for every (folded alias, nodes) pair until fn returns
// false. Iteration order is NOT deterministic (it follows Go's map order);
// callers needing a stable order should collect and sort.
func (g *Graph) Aliases(fn func(alias string, nodes []NodeID) bool) {
	for a, ns := range g.aliases {
		if !fn(a, ns) {
			return
		}
	}
}

// Builder accumulates nodes and edges and produces an immutable Graph.
// The zero value is ready to use.
type Builder struct {
	nodes   []Node
	rels    []string
	relByID map[string]RelID
	arcs    [][]Arc
	aliases map[string][]NodeID
	edges   int
}

// NewBuilder returns a Builder with capacity hints for n nodes.
func NewBuilder(n int) *Builder {
	return &Builder{
		nodes:   make([]Node, 0, n),
		arcs:    make([][]Arc, 0, n),
		relByID: make(map[string]RelID),
	}
}

// AddNode appends a node and returns its ID.
func (b *Builder) AddNode(label string, kind Kind, desc string) NodeID {
	if b.relByID == nil {
		b.relByID = make(map[string]RelID)
	}
	id := NodeID(len(b.nodes))
	b.nodes = append(b.nodes, Node{Label: label, Kind: kind, Desc: desc})
	b.arcs = append(b.arcs, nil)
	return id
}

// AddAlias registers an additional surface form for a node; entity linking
// resolves the alias to the node exactly like its canonical label (real KGs
// such as Wikidata carry many aliases per entity). Adding the same alias
// for several nodes makes it ambiguous, like any shared label.
func (b *Builder) AddAlias(node NodeID, alias string) {
	if int(node) >= len(b.nodes) {
		panic("kg: alias node out of range")
	}
	if b.aliases == nil {
		b.aliases = make(map[string][]NodeID)
	}
	key := Fold(alias)
	if key == "" {
		return
	}
	b.aliases[key] = append(b.aliases[key], node)
}

// Rel interns a relation name and returns its ID.
func (b *Builder) Rel(name string) RelID {
	if b.relByID == nil {
		b.relByID = make(map[string]RelID)
	}
	if id, ok := b.relByID[name]; ok {
		return id
	}
	id := RelID(len(b.rels))
	b.rels = append(b.rels, name)
	b.relByID[name] = id
	return id
}

// AddEdge adds a weighted relationship edge from→to and its reversed arc.
// Weights must be positive. It panics on out-of-range node IDs.
func (b *Builder) AddEdge(from, to NodeID, rel RelID, weight float64) {
	if weight <= 0 {
		panic(fmt.Sprintf("kg: non-positive edge weight %v", weight))
	}
	if int(from) >= len(b.nodes) || int(to) >= len(b.nodes) {
		panic("kg: edge endpoint out of range")
	}
	b.arcs[from] = append(b.arcs[from], Arc{To: to, Rel: rel, Weight: weight})
	b.arcs[to] = append(b.arcs[to], Arc{To: from, Rel: rel, Weight: weight, Reverse: true})
	b.edges++
}

// AddEdgeByName is AddEdge with a relation name instead of a RelID.
func (b *Builder) AddEdgeByName(from, to NodeID, rel string, weight float64) {
	b.AddEdge(from, to, b.Rel(rel), weight)
}

// NumNodes returns the number of nodes added so far.
func (b *Builder) NumNodes() int { return len(b.nodes) }

// Build finalizes the graph: adjacency lists are sorted for determinism and
// packed into CSR form, and the label index is constructed. The Builder
// must not be used afterwards.
func (b *Builder) Build() *Graph {
	total := 0
	for _, arcs := range b.arcs {
		sort.Slice(arcs, func(i, j int) bool {
			if arcs[i].To != arcs[j].To {
				return arcs[i].To < arcs[j].To
			}
			return arcs[i].Rel < arcs[j].Rel
		})
		total += len(arcs)
	}
	g := &Graph{
		nodes:   b.nodes,
		rels:    b.rels,
		arcOff:  make([]uint64, len(b.nodes)+1),
		arcs:    make([]Arc, 0, total),
		aliases: b.aliases,
		edges:   b.edges,
	}
	for i, arcs := range b.arcs {
		g.arcs = append(g.arcs, arcs...)
		g.arcOff[i+1] = uint64(len(g.arcs))
	}
	g.index = NewLabelIndex(g.nodes, b.aliases)
	b.nodes, b.arcs, b.rels, b.aliases = nil, nil, nil, nil
	return g
}
