package kg

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead exercises the TSV parser: arbitrary input must either parse into
// a consistent graph or fail cleanly, never panic.
func FuzzRead(f *testing.F) {
	f.Add("N\t0\tgpe\tA\td\nE\t0\tr\t0\t1\n")
	f.Add("N\t0\tgpe\tA\td\nA\t0\talias\n")
	f.Add("#comment\n\nN\t0\tperson\tB\t\n")
	f.Add("E\t0\tr\t1\t1\n")
	f.Add("N\tx\ty\tz\n")
	f.Fuzz(func(t *testing.T, s string) {
		g, err := Read(strings.NewReader(s))
		if err != nil {
			return
		}
		// A successfully parsed graph round-trips.
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatalf("Write after successful Read: %v", err)
		}
		if _, err := Read(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatalf("re-Read of own output: %v", err)
		}
	})
}

// FuzzParseNTriples: the lenient N-Triples parser must accept anything
// without panicking and produce in-range graphs.
func FuzzParseNTriples(f *testing.F) {
	f.Add(`<http://a> <http://p> <http://b> .`)
	f.Add(`<http://a> <http://x#label> "text"@en .`)
	f.Add(`garbage`)
	f.Add(`<http://a> <http://p> "unterminated`)
	f.Fuzz(func(t *testing.T, s string) {
		g, err := ParseNTriples(strings.NewReader(s), "en", false)
		if err != nil {
			return
		}
		for i := 0; i < g.NumNodes(); i++ {
			for _, a := range g.Neighbors(NodeID(i)) {
				if int(a.To) >= g.NumNodes() {
					t.Fatalf("arc target %d out of range", a.To)
				}
			}
		}
	})
}
