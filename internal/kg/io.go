package kg

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// The TSV interchange format is a line-oriented dump similar in spirit to
// the Wikidata truthy dumps the paper consumes:
//
//	N <tab> id <tab> kind <tab> label <tab> desc
//	E <tab> from <tab> rel-name <tab> to <tab> weight
//	A <tab> node <tab> alias
//
// Node lines must precede the edge and alias lines that reference them.
// Lines starting with '#' and blank lines are ignored.

// Write serializes the graph in TSV form.
func Write(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < g.NumNodes(); i++ {
		n := g.Node(NodeID(i))
		if _, err := fmt.Fprintf(bw, "N\t%d\t%s\t%s\t%s\n",
			i, n.Kind, sanitize(n.Label), sanitize(n.Desc)); err != nil {
			return err
		}
	}
	for i := 0; i < g.NumNodes(); i++ {
		for _, a := range g.Neighbors(NodeID(i)) {
			if a.Reverse {
				continue // only original edges are serialized
			}
			if _, err := fmt.Fprintf(bw, "E\t%d\t%s\t%d\t%g\n",
				i, g.RelName(a.Rel), a.To, a.Weight); err != nil {
				return err
			}
		}
	}
	// Aliases, sorted for byte-stable output.
	var aliasNames []string
	g.Aliases(func(alias string, _ []NodeID) bool {
		aliasNames = append(aliasNames, alias)
		return true
	})
	sort.Strings(aliasNames)
	for _, alias := range aliasNames {
		nodes := append([]NodeID(nil), g.aliases[alias]...)
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		for _, n := range nodes {
			if _, err := fmt.Fprintf(bw, "A\t%d\t%s\n", n, sanitize(alias)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func sanitize(s string) string {
	s = strings.ReplaceAll(s, "\t", " ")
	return strings.ReplaceAll(s, "\n", " ")
}

// Read parses a TSV graph dump produced by Write.
func Read(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	b := NewBuilder(0)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		f := strings.Split(line, "\t")
		switch f[0] {
		case "N":
			if len(f) != 5 {
				return nil, fmt.Errorf("kg: line %d: node line needs 5 fields, got %d", lineno, len(f))
			}
			id, err := strconv.Atoi(f[1])
			if err != nil {
				return nil, fmt.Errorf("kg: line %d: bad node id: %v", lineno, err)
			}
			if id != b.NumNodes() {
				return nil, fmt.Errorf("kg: line %d: node ids must be dense and ordered; want %d got %d", lineno, b.NumNodes(), id)
			}
			b.AddNode(f[3], KindFromString(f[2]), f[4])
		case "A":
			if len(f) != 3 {
				return nil, fmt.Errorf("kg: line %d: alias line needs 3 fields, got %d", lineno, len(f))
			}
			node, err := strconv.Atoi(f[1])
			if err != nil {
				return nil, fmt.Errorf("kg: line %d: bad alias node: %v", lineno, err)
			}
			if node < 0 || node >= b.NumNodes() {
				return nil, fmt.Errorf("kg: line %d: alias node out of range", lineno)
			}
			b.AddAlias(NodeID(node), f[2])
		case "E":
			if len(f) != 5 {
				return nil, fmt.Errorf("kg: line %d: edge line needs 5 fields, got %d", lineno, len(f))
			}
			from, err := strconv.Atoi(f[1])
			if err != nil {
				return nil, fmt.Errorf("kg: line %d: bad edge source: %v", lineno, err)
			}
			to, err := strconv.Atoi(f[3])
			if err != nil {
				return nil, fmt.Errorf("kg: line %d: bad edge target: %v", lineno, err)
			}
			w, err := strconv.ParseFloat(f[4], 64)
			if err != nil {
				return nil, fmt.Errorf("kg: line %d: bad edge weight: %v", lineno, err)
			}
			if from < 0 || from >= b.NumNodes() || to < 0 || to >= b.NumNodes() {
				return nil, fmt.Errorf("kg: line %d: edge endpoint out of range", lineno)
			}
			b.AddEdgeByName(NodeID(from), NodeID(to), f[2], w)
		default:
			return nil, fmt.Errorf("kg: line %d: unknown record type %q", lineno, f[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}
