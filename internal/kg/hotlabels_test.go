package kg

import (
	"fmt"
	"sync"
	"testing"
)

func TestHotLabelsTopOrdering(t *testing.T) {
	h := NewHotLabels(10)
	for i := 0; i < 5; i++ {
		h.Touch("pakistan")
	}
	for i := 0; i < 3; i++ {
		h.Touch("taliban")
	}
	h.Touch("zurich")
	h.Touch("ankara") // same count as zurich: lexicographic tie-break
	h.Touch("")       // ignored

	top := h.Top(0)
	wantOrder := []string{"pakistan", "taliban", "ankara", "zurich"}
	if len(top) != len(wantOrder) {
		t.Fatalf("Top returned %d entries, want %d", len(top), len(wantOrder))
	}
	for i, want := range wantOrder {
		if top[i].Label != want {
			t.Fatalf("Top[%d] = %q, want %q", i, top[i].Label, want)
		}
	}
	if top[0].Count != 5 || top[0].Err != 0 {
		t.Fatalf("pakistan count/err = %d/%d, want 5/0", top[0].Count, top[0].Err)
	}
	if got := h.Top(2); len(got) != 2 || got[0].Label != "pakistan" || got[1].Label != "taliban" {
		t.Fatalf("Top(2) = %v", got)
	}
}

// TestHotLabelsEviction pins the Space-Saving guarantees: the table never
// exceeds capacity, a newcomer inherits the evicted minimum's count, and a
// label with frequency far above everything else is never evicted.
func TestHotLabelsEviction(t *testing.T) {
	h := NewHotLabels(4)
	for i := 0; i < 100; i++ {
		h.Touch("heavy")
	}
	for i := 0; i < 40; i++ {
		h.Touch(fmt.Sprintf("noise-%d", i))
	}
	if h.Len() != 4 {
		t.Fatalf("Len = %d, want capacity 4", h.Len())
	}
	top := h.Top(1)
	if top[0].Label != "heavy" {
		t.Fatalf("heavy hitter evicted; top = %v", top)
	}
	if got := top[0].Count - top[0].Err; got < 100 {
		t.Fatalf("heavy's guaranteed lower bound = %d, want >= 100", got)
	}
	// Every surviving noise entry must report its overestimation: count was
	// inherited, so err > 0.
	for _, lc := range h.Top(0)[1:] {
		if lc.Err == 0 {
			t.Fatalf("entry %q admitted by eviction has err = 0", lc.Label)
		}
	}
}

func TestHotLabelsConcurrent(t *testing.T) {
	h := NewHotLabels(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.Touch(fmt.Sprintf("label-%d", (w+i)%20))
				if i%50 == 0 {
					h.Top(5)
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Len() == 0 || h.Len() > 16 {
		t.Fatalf("Len = %d, want within (0, 16]", h.Len())
	}
}
