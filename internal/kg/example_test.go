package kg_test

import (
	"fmt"

	"newslink/internal/kg"
)

func Example() {
	b := kg.NewBuilder(4)
	pakistan := b.AddNode("Pakistan", kg.KindGPE, "a country")
	khyber := b.AddNode("Khyber", kg.KindGPE, "a province")
	peshawar := b.AddNode("Peshawar", kg.KindGPE, "a city")
	b.AddEdgeByName(khyber, pakistan, "located in", 1)
	b.AddEdgeByName(peshawar, khyber, "capital of", 1)
	b.AddAlias(peshawar, "Pekhawar")
	g := b.Build()

	fmt.Println(g.NumNodes(), "nodes,", g.NumEdges(), "edges")
	for _, a := range g.Neighbors(khyber) {
		dir := "->"
		if a.Reverse {
			dir = "<-"
		}
		fmt.Printf("Khyber %s %s (%s)\n", dir, g.Label(a.To), g.RelName(a.Rel))
	}
	fmt.Println("alias lookup:", g.Label(g.Lookup("pekhawar")[0]))
	// Output:
	// 3 nodes, 2 edges
	// Khyber -> Pakistan (located in)
	// Khyber <- Peshawar (capital of)
	// alias lookup: Peshawar
}

func ExampleGenerate() {
	w := kg.Generate(kg.Config{
		Seed: 1, Countries: 2, ProvincesPerCountry: 2, CitiesPerProvince: 2,
		PersonsPerCountry: 3, OrgsPerCountry: 5, EventsPerCountry: 5,
	})
	s := kg.ComputeStats(w.Graph)
	fmt.Println("connected:", s.Components == 1)
	fmt.Println("has events:", len(w.Events) > 0)
	// Output:
	// connected: true
	// has events: true
}
