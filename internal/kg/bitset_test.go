package kg

import (
	"math/rand"
	"testing"
)

func TestBitsetSetTestReset(t *testing.T) {
	b := NewBitset(300)
	if b.Len() < 300 {
		t.Fatalf("Len = %d, want >= 300", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 299} {
		if b.Test(i) {
			t.Fatalf("bit %d set on a fresh bitset", i)
		}
		if b.TestSet(i) {
			t.Fatalf("TestSet(%d) reported already-set on first set", i)
		}
		if !b.Test(i) || !b.TestSet(i) {
			t.Fatalf("bit %d not set after TestSet", i)
		}
	}
	b.Reset()
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 299} {
		if b.Test(i) {
			t.Fatalf("bit %d survived Reset", i)
		}
	}
	// Sparse reset must not leave stale dirty-word bookkeeping: setting the
	// same bits again after Reset behaves like a fresh bitset.
	b.Set(64)
	if b.TestSet(64) != true || b.Test(65) {
		t.Fatal("re-set after Reset misbehaved")
	}
}

func TestBitsetOutOfRangeReadsUnset(t *testing.T) {
	b := NewBitset(64)
	if b.Test(-1) || b.Test(64) || b.Test(1<<20) {
		t.Fatal("out-of-range Test returned set")
	}
}

func TestBitsetGrow(t *testing.T) {
	b := NewBitset(10)
	b.Set(3)
	b.Grow(1000)
	if !b.Test(3) {
		t.Fatal("Grow dropped an existing bit")
	}
	b.Set(999)
	if !b.Test(999) {
		t.Fatal("bit in grown region not set")
	}
	b.Reset()
	if b.Test(3) || b.Test(999) {
		t.Fatal("Reset after Grow left bits set")
	}
	b.Grow(5) // shrinking request is a no-op
	if b.Len() < 1000 {
		t.Fatalf("Grow shrank the universe to %d bits", b.Len())
	}
}

// TestBitsetMatchesMap cross-checks the dirty-word machinery against a
// plain map over random set/reset cycles.
func TestBitsetMatchesMap(t *testing.T) {
	const n = 4096
	rng := rand.New(rand.NewSource(1))
	b := NewBitset(n)
	ref := map[int]bool{}
	for cycle := 0; cycle < 20; cycle++ {
		for op := 0; op < 500; op++ {
			i := rng.Intn(n)
			if b.TestSet(i) != ref[i] {
				t.Fatalf("cycle %d: TestSet(%d) disagreed with reference", cycle, i)
			}
			ref[i] = true
		}
		for i := 0; i < n; i++ {
			if b.Test(i) != ref[i] {
				t.Fatalf("cycle %d: Test(%d) = %v, want %v", cycle, i, b.Test(i), ref[i])
			}
		}
		b.Reset()
		ref = map[int]bool{}
	}
}
