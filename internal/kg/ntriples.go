package kg

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseNTriples builds a knowledge graph from an RDF N-Triples stream, the
// format of Wikidata "truthy" dumps the paper's KG comes from. The mapping:
//
//   - rdfs:label / skos:prefLabel literals become node labels,
//   - skos:altLabel literals become aliases,
//   - schema:description literals become node descriptions,
//   - every triple whose object is an IRI becomes an edge (weight 1) whose
//     relation name is the predicate's local name,
//   - other literal triples are ignored.
//
// Language-tagged literals are filtered by lang (empty matches untagged
// literals and "en"). Malformed lines fail with their line number; use
// strict=false to skip them instead (real dumps contain oddities).
func ParseNTriples(r io.Reader, lang string, strict bool) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	b := NewBuilder(1024)
	nodeOf := make(map[string]NodeID)
	intern := func(iri string) NodeID {
		if id, ok := nodeOf[iri]; ok {
			return id
		}
		// Until a label triple arrives, the local name serves as the label.
		id := b.AddNode(localName(iri), KindUnknown, "")
		nodeOf[iri] = id
		return id
	}
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		subj, pred, obj, err := splitTriple(line)
		if err != nil {
			if strict {
				return nil, fmt.Errorf("kg: line %d: %w", lineno, err)
			}
			continue
		}
		s := intern(subj)
		switch {
		case strings.HasPrefix(obj, "<"): // IRI object: an edge
			o := intern(strings.Trim(obj, "<>"))
			b.AddEdgeByName(s, o, localName(pred), 1)
		default: // literal object
			text, tag, err := parseLiteral(obj)
			if err != nil {
				if strict {
					return nil, fmt.Errorf("kg: line %d: %w", lineno, err)
				}
				continue
			}
			if !langMatches(tag, lang) {
				continue
			}
			switch localName(pred) {
			case "label", "prefLabel", "name":
				b.nodes[s].Label = text
			case "altLabel", "alias":
				b.AddAlias(s, text)
			case "description":
				b.nodes[s].Desc = text
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// splitTriple separates "<s> <p> <o|literal> ." respecting quoted literals.
func splitTriple(line string) (subj, pred, obj string, err error) {
	if !strings.HasSuffix(line, ".") {
		return "", "", "", fmt.Errorf("triple does not end with '.'")
	}
	line = strings.TrimSpace(strings.TrimSuffix(line, "."))
	// Subject.
	if !strings.HasPrefix(line, "<") {
		return "", "", "", fmt.Errorf("subject is not an IRI")
	}
	end := strings.IndexByte(line, '>')
	if end < 0 {
		return "", "", "", fmt.Errorf("unterminated subject IRI")
	}
	subj = line[1:end]
	line = strings.TrimSpace(line[end+1:])
	// Predicate.
	if !strings.HasPrefix(line, "<") {
		return "", "", "", fmt.Errorf("predicate is not an IRI")
	}
	end = strings.IndexByte(line, '>')
	if end < 0 {
		return "", "", "", fmt.Errorf("unterminated predicate IRI")
	}
	pred = line[1:end]
	obj = strings.TrimSpace(line[end+1:])
	if obj == "" {
		return "", "", "", fmt.Errorf("missing object")
	}
	return subj, pred, obj, nil
}

// parseLiteral decodes "text"@tag or "text"^^<type> or plain "text".
func parseLiteral(lit string) (text, lang string, err error) {
	if !strings.HasPrefix(lit, `"`) {
		return "", "", fmt.Errorf("object is neither IRI nor literal: %q", lit)
	}
	// Find the closing quote, honoring backslash escapes.
	end := -1
	for i := 1; i < len(lit); i++ {
		if lit[i] == '\\' {
			i++
			continue
		}
		if lit[i] == '"' {
			end = i
			break
		}
	}
	if end < 0 {
		return "", "", fmt.Errorf("unterminated literal")
	}
	raw := lit[:end+1]
	unquoted, err := strconv.Unquote(raw)
	if err != nil {
		// N-Triples escapes are a subset of Go's; fall back to a manual pass.
		unquoted = strings.NewReplacer(`\"`, `"`, `\\`, `\`, `\n`, "\n", `\t`, "\t").
			Replace(raw[1 : len(raw)-1])
	}
	rest := lit[end+1:]
	if strings.HasPrefix(rest, "@") {
		lang = rest[1:]
		if i := strings.IndexAny(lang, " \t"); i >= 0 {
			lang = lang[:i]
		}
	}
	return unquoted, lang, nil
}

func langMatches(tag, want string) bool {
	if tag == "" {
		return true
	}
	if want == "" {
		want = "en"
	}
	return tag == want || strings.HasPrefix(tag, want+"-")
}

// localName extracts the fragment or last path segment of an IRI
// ("http://www.wikidata.org/prop/direct/P131" -> "P131",
// "http://www.w3.org/2000/01/rdf-schema#label" -> "label").
func localName(iri string) string {
	if i := strings.LastIndexByte(iri, '#'); i >= 0 {
		return iri[i+1:]
	}
	if i := strings.LastIndexByte(iri, '/'); i >= 0 {
		return iri[i+1:]
	}
	return iri
}
