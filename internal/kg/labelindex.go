package kg

import "strings"

// LabelIndex maps entity labels to node sets for exact-match entity linking
// (Section V-A: "an entity l ... is mapped to a set of nodes S(l) from K
// whose labels contain l through exact string matching"). Matching is
// performed on the case-folded label; the paper's experiments report a >96%
// match ratio per news segment with this scheme (Table V).
type LabelIndex struct {
	exact map[string][]NodeID
}

// Fold normalizes a label for index lookup: lowercase with collapsed
// interior whitespace.
func Fold(label string) string {
	return strings.Join(strings.Fields(strings.ToLower(label)), " ")
}

// NewLabelIndex builds an index over the given nodes. Node IDs are the
// positions in the slice. aliases maps additional surface forms to nodes
// (real KGs like Wikidata attach many aliases per entity); alias entries
// are merged with the canonical labels, deduplicated per key.
func NewLabelIndex(nodes []Node, aliases map[string][]NodeID) *LabelIndex {
	idx := &LabelIndex{exact: make(map[string][]NodeID, len(nodes)+len(aliases))}
	for i, n := range nodes {
		key := Fold(n.Label)
		if key == "" {
			continue
		}
		idx.exact[key] = append(idx.exact[key], NodeID(i))
	}
	for alias, ids := range aliases {
		key := Fold(alias)
		if key == "" {
			continue
		}
		for _, id := range ids {
			if !containsID(idx.exact[key], id) {
				idx.exact[key] = append(idx.exact[key], id)
			}
		}
	}
	return idx
}

func containsID(ids []NodeID, id NodeID) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// Lookup returns S(l): all nodes whose folded label equals the folded query.
// The returned slice is shared and must not be modified. A nil result means
// the label is not in the knowledge graph.
func (idx *LabelIndex) Lookup(label string) []NodeID {
	return idx.exact[Fold(label)]
}

// Contains reports whether the label resolves to at least one node.
func (idx *LabelIndex) Contains(label string) bool {
	return len(idx.exact[Fold(label)]) > 0
}

// Size returns the number of distinct folded labels in the index.
func (idx *LabelIndex) Size() int { return len(idx.exact) }

// Labels calls fn for every folded label in the index until fn returns
// false. Iteration order is unspecified.
func (idx *LabelIndex) Labels(fn func(label string, nodes []NodeID) bool) {
	for l, ns := range idx.exact {
		if !fn(l, ns) {
			return
		}
	}
}
