package kg

import (
	"sort"
	"sync"
)

// HotLabels tracks the most frequently resolved entity labels with the
// Space-Saving algorithm: a bounded counter table where, once full, the
// minimum-count entry is evicted to admit a new label at count min+1. The
// classic guarantee holds — any label whose true frequency exceeds total/k
// is present — which is exactly what the engine needs to know which
// entities dominate the query stream (and therefore which label→distance
// work the embedder's memoization is amortizing). Safe for concurrent use;
// Touch is a short critical section over a small fixed-capacity table.
type HotLabels struct {
	mu  sync.Mutex
	cap int
	m   map[string]*labelCounter
}

type labelCounter struct {
	label string
	count int64
	// err is the Space-Saving overestimation bound: the count the entry
	// inherited from the evicted minimum when it was admitted.
	err int64
}

// LabelCount is one entry of a HotLabels report.
type LabelCount struct {
	Label string
	// Count is the estimated frequency (an overestimate by at most Err).
	Count int64
	// Err bounds the overestimation; Count-Err is a guaranteed lower bound
	// on the true frequency.
	Err int64
}

// NewHotLabels returns a tracker keeping at most capacity labels
// (capacity <= 0 selects 256).
func NewHotLabels(capacity int) *HotLabels {
	if capacity <= 0 {
		capacity = 256
	}
	return &HotLabels{cap: capacity, m: make(map[string]*labelCounter, capacity)}
}

// Touch records one occurrence of a (folded) label.
func (h *HotLabels) Touch(label string) {
	if label == "" {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if c, ok := h.m[label]; ok {
		c.count++
		return
	}
	if len(h.m) < h.cap {
		h.m[label] = &labelCounter{label: label, count: 1}
		return
	}
	// Evict the minimum-count entry; the newcomer inherits its count so the
	// table's counts stay monotone (Space-Saving).
	var min *labelCounter
	for _, c := range h.m {
		if min == nil || c.count < min.count || (c.count == min.count && c.label < min.label) {
			min = c
		}
	}
	delete(h.m, min.label)
	h.m[label] = &labelCounter{label: label, count: min.count + 1, err: min.count}
}

// Top returns the k highest-count labels, count-descending with
// lexicographic ties, so the report is deterministic for a quiesced
// tracker. k <= 0 or k beyond the table size returns everything tracked.
func (h *HotLabels) Top(k int) []LabelCount {
	h.mu.Lock()
	out := make([]LabelCount, 0, len(h.m))
	for _, c := range h.m {
		out = append(out, LabelCount{Label: c.label, Count: c.count, Err: c.err})
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Label < out[j].Label
	})
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// Len returns the number of labels currently tracked.
func (h *HotLabels) Len() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.m)
}
