package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"newslink"
	"newslink/internal/corpus"
	"newslink/internal/faults"
)

// streamServer builds an engine with the async ingest pipeline (and a WAL)
// armed and serves it, returning both so tests can flush and inspect.
func streamServer(t *testing.T, extra ...newslink.Option) (*httptest.Server, *newslink.Engine) {
	t.Helper()
	g, arts := corpus.Sample()
	opts := append([]newslink.Option{
		newslink.Option(newslink.DefaultConfig()),
		newslink.WithWAL(t.TempDir()),
		newslink.WithIngestQueue(64),
	}, extra...)
	e := newslink.New(g, opts...)
	for _, a := range arts {
		if err := e.Add(newslink.Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	ts := httptest.NewServer(New(e).Handler())
	t.Cleanup(ts.Close)
	return ts, e
}

// TestDocStreamEndpoint: POST /v1/docs:stream acknowledges with 202 before
// the document is searchable, and after a flush the document is served.
func TestDocStreamEndpoint(t *testing.T) {
	ts, e := streamServer(t)
	var ack DocResponse
	do(t, ts, "POST", "/v1/docs:stream", `{"id": 6001, "title": "wire", "text": "A streamed bulletin about floods in Karachi."}`, http.StatusAccepted, &ack)
	if ack.ID != 6001 || ack.Op != "ingest" {
		t.Fatalf("ingest ack: %+v", ack)
	}
	e.FlushIngest()
	var sr SearchResponse
	get(t, ts, "/v1/search?q=streamed+bulletin+floods+Karachi&k=1", http.StatusOK, &sr)
	if len(sr.Results) == 0 || sr.Results[0].ID != 6001 {
		t.Fatalf("streamed doc not served: %+v", sr.Results)
	}

	// Streaming an existing ID is an upsert: same count, new content.
	before := e.NumDocs()
	do(t, ts, "POST", "/v1/docs:stream", `{"id": 6001, "title": "wire2", "text": "A corrected bulletin about receding floods."}`, http.StatusAccepted, &ack)
	e.FlushIngest()
	if got := e.NumDocs(); got != before {
		t.Fatalf("stream upsert changed doc count: %d -> %d", before, got)
	}

	// Malformed bodies answer 400 with the uniform envelope, like /v1/docs.
	for name, body := range map[string]string{
		"no-id":    `{"title": "x", "text": "y"}`,
		"no-text":  `{"id": 5}`,
		"bad-json": `{"id": `,
	} {
		var e ErrorResponse
		do(t, ts, "POST", "/v1/docs:stream", body, http.StatusBadRequest, &e)
		if e.Error.Code != "bad_request" {
			t.Fatalf("%s: error %+v", name, e)
		}
	}
}

// TestDocStreamBackpressure: a full ingest queue sheds the request with
// 429, the ingest_overload code and a Retry-After hint — never a hang and
// never an unbounded backlog.
func TestDocStreamBackpressure(t *testing.T) {
	faults.Arm(faults.New().Delay(faults.IngestApply, 50*time.Millisecond))
	defer faults.Disarm()
	ts, e := streamServer(t, newslink.WithIngestQueue(1), newslink.WithIngestBatch(1))

	shed := 0
	for i := 0; i < 30; i++ {
		req, err := http.NewRequest("POST", ts.URL+"/v1/docs:stream",
			strings.NewReader(`{"id": `+itoa(7000+i)+`, "text": "A rapid-fire bulletin."}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		switch resp.StatusCode {
		case http.StatusAccepted:
		case http.StatusTooManyRequests:
			shed++
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		resp.Body.Close()
	}
	if shed == 0 {
		t.Fatal("queue of 1 never shed under a 30-request burst")
	}
	e.FlushIngest()
}
