package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestMetricsEndpointJSON(t *testing.T) {
	ts := testServer(t)
	// Serve one search so the pipeline metrics are non-zero.
	var sr SearchResponse
	get(t, ts, "/v1/search?q=Taliban+Pakistan&k=3", http.StatusOK, &sr)

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("metrics JSON does not parse: %v", err)
	}
	if got := doc["newslink_searches_total"].(float64); got < 1 {
		t.Fatalf("newslink_searches_total = %v, want >= 1", got)
	}
	stage, ok := doc[`newslink_query_stage_seconds{stage="analyze"}`].(map[string]any)
	if !ok {
		t.Fatalf("missing analyze stage histogram; keys: %v", keys(doc))
	}
	if stage["count"].(float64) < 1 {
		t.Fatalf("analyze stage count = %v", stage["count"])
	}
	if _, ok := stage["p95"]; !ok {
		t.Fatal("stage histogram missing p95")
	}
	if _, ok := doc[`newslink_http_requests_total{route="search"}`]; !ok {
		t.Fatalf("missing HTTP route counter; keys: %v", keys(doc))
	}
}

func keys(m map[string]any) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestMetricsEndpointPrometheus(t *testing.T) {
	// Admission control enabled so its gauge/counter register too.
	ts := testServer(t, WithMaxInFlight(8))
	var sr SearchResponse
	get(t, ts, "/v1/search?q=Taliban+Pakistan&k=3", http.StatusOK, &sr)

	resp, err := http.Get(ts.URL + "/v1/metrics/prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE newslink_searches_total counter",
		"# TYPE newslink_query_stage_seconds histogram",
		`newslink_query_stage_seconds_bucket{stage="bow-retrieve",le="+Inf"}`,
		"newslink_search_seconds_count 1",
		`newslink_http_request_seconds_count{route="search"} 1`,
		// Resilience metrics are pre-registered, so dashboards see them
		// at zero before the first incident.
		"# TYPE newslink_search_degraded_total counter",
		`newslink_search_degraded_total{reason="bon_error"} 0`,
		`newslink_search_degraded_total{reason="bon_timeout"} 0`,
		"newslink_http_panics_total 0",
		"newslink_http_shed_total 0",
		"newslink_http_in_flight 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Prometheus exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSearchTraceParam(t *testing.T) {
	ts := testServer(t)
	var sr SearchResponse
	get(t, ts, "/v1/search?q=Taliban+Pakistan&k=3&trace=1", http.StatusOK, &sr)
	if len(sr.Trace) == 0 {
		t.Fatal("trace=1 returned no spans")
	}
	stages := map[string]bool{}
	for _, sp := range sr.Trace {
		stages[sp.Stage] = true
		if sp.Dur < 0 {
			t.Fatalf("negative span duration: %+v", sp)
		}
	}
	for _, stage := range []string{"analyze", "bow-retrieve", "fuse", "topk"} {
		if !stages[stage] {
			t.Fatalf("trace missing stage %q: %v", stage, stages)
		}
	}

	// Untraced requests must not carry the field.
	var plain SearchResponse
	get(t, ts, "/v1/search?q=Taliban+Pakistan&k=3", http.StatusOK, &plain)
	if plain.Trace != nil {
		t.Fatalf("untraced response has trace: %v", plain.Trace)
	}

	// Explain supports the same parameter and records path enumeration.
	if len(sr.Results) > 0 {
		var er ExplainResponse
		get(t, ts, "/v1/explain?q=Taliban+Pakistan&id=0&paths=2&trace=1", http.StatusOK, &er)
		found := false
		for _, sp := range er.Trace {
			if sp.Stage == "path-enumeration" {
				found = true
			}
		}
		if !found {
			t.Fatalf("explain trace missing path-enumeration: %+v", er.Trace)
		}
	}
}

func TestRequestIDAndAccessLog(t *testing.T) {
	var buf syncBuffer
	logger := slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug}))
	ts := testServer(t, WithLogger(logger))

	var sr SearchResponse
	resp, err := http.Get(ts.URL + "/v1/search?q=Taliban&k=2&trace=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	id := resp.Header.Get("X-Request-Id")
	if id == "" {
		t.Fatal("missing X-Request-Id header")
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	if !strings.Contains(out, "request_id="+id) {
		t.Fatalf("access log missing request id %q:\n%s", id, out)
	}
	if !strings.Contains(out, "path=/v1/search") || !strings.Contains(out, "status=200") {
		t.Fatalf("access log missing request fields:\n%s", out)
	}
	// Debug level + trace=1: the stage breakdown is logged too.
	if !strings.Contains(out, "stage=bow-retrieve") {
		t.Fatalf("debug log missing trace spans:\n%s", out)
	}

	// IDs are unique per request.
	resp2, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if id2 := resp2.Header.Get("X-Request-Id"); id2 == "" || id2 == id {
		t.Fatalf("second request id %q not unique vs %q", id2, id)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing slog output
// from concurrent handlers.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
