package server

import (
	"strconv"
	"testing"
)

// TestRetryAfterHintFallback pins the shed-response hint contract: while
// the engine has no observed queue-drain rate (no armed pipeline, or no
// batch applied yet), the hint is the fixed "1"; whatever it renders
// must always parse as a positive whole number of seconds, the only
// Retry-After form clients are promised.
func TestRetryAfterHintFallback(t *testing.T) {
	e := testEngine(t)
	hint := retryAfterHint(e)
	if hint != "1" {
		t.Fatalf("engine without drain estimate: retryAfterHint = %q, want \"1\"", hint)
	}
	secs, err := strconv.Atoi(hint)
	if err != nil || secs < 1 {
		t.Fatalf("retryAfterHint %q is not a positive whole-second value", hint)
	}
}
