package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
)

// do issues a request with a method/body and decodes the JSON reply.
func do(t *testing.T, ts *httptest.Server, method, path, body string, want int, out any) {
	t.Helper()
	req, err := http.NewRequest(method, ts.URL+path, bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		t.Fatalf("%s %s: status %d, want %d", method, path, resp.StatusCode, want)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s %s: %v", method, path, err)
		}
	}
}

func TestDocUpsertEndpoint(t *testing.T) {
	ts := testServer(t)
	var stats StatsResponse
	get(t, ts, "/v1/stats", http.StatusOK, &stats)
	before := stats.Docs

	// Insert a new document, then find it.
	var ack DocResponse
	do(t, ts, "POST", "/v1/docs", `{"id": 4711, "title": "late", "text": "A late bulletin about Lahore."}`, http.StatusOK, &ack)
	if ack.ID != 4711 || ack.Op != "upsert" || ack.Docs != before+1 {
		t.Fatalf("upsert ack: %+v", ack)
	}
	var sr SearchResponse
	get(t, ts, "/v1/search?q=late+bulletin+about+Lahore&k=1", http.StatusOK, &sr)
	if len(sr.Results) == 0 || sr.Results[0].ID != 4711 {
		t.Fatalf("posted doc not searchable: %+v", sr.Results)
	}

	// Replace it; the doc count must not change and the new text wins.
	do(t, ts, "POST", "/v1/docs", `{"id": 4711, "title": "fixed", "text": "A corrected bulletin about volcanic eruptions in Iceland."}`, http.StatusOK, &ack)
	if ack.Docs != before+1 {
		t.Fatalf("update changed doc count: %+v", ack)
	}
	get(t, ts, "/v1/search?q=volcanic+eruptions+in+Iceland&k=1", http.StatusOK, &sr)
	if len(sr.Results) == 0 || sr.Results[0].ID != 4711 || sr.Results[0].Title != "fixed" {
		t.Fatalf("updated doc not served: %+v", sr.Results)
	}

	// Malformed bodies answer 400 with the uniform envelope.
	for name, body := range map[string]string{
		"no-id":    `{"title": "x", "text": "y"}`,
		"neg-id":   `{"id": -1, "text": "y"}`,
		"no-text":  `{"id": 5}`,
		"bad-json": `{"id": `,
		"unknown":  `{"id": 5, "text": "y", "bogus": 1}`,
	} {
		var e ErrorResponse
		do(t, ts, "POST", "/v1/docs", body, http.StatusBadRequest, &e)
		if e.Error.Code != "bad_request" {
			t.Fatalf("%s: error %+v", name, e)
		}
	}

	// Method misuse: GET on the docs collection is not routed.
	resp, err := http.Get(ts.URL + "/v1/docs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("GET /v1/docs unexpectedly succeeded")
	}
}

func TestDocDeleteEndpoint(t *testing.T) {
	ts := testServer(t)
	// Find a real document to delete.
	var sr SearchResponse
	get(t, ts, "/v1/search?q=Taliban+bombing+in+Lahore&k=1", http.StatusOK, &sr)
	if len(sr.Results) == 0 {
		t.Fatal("no seed result")
	}
	id := sr.Results[0].ID
	var stats StatsResponse
	get(t, ts, "/v1/stats", http.StatusOK, &stats)
	before := stats.Docs

	var ack DocResponse
	do(t, ts, "DELETE", "/v1/docs/"+itoa(id), "", http.StatusOK, &ack)
	if ack.ID != id || ack.Op != "delete" || ack.Docs != before-1 {
		t.Fatalf("delete ack: %+v", ack)
	}
	get(t, ts, "/v1/search?q=Taliban+bombing+in+Lahore&k=50", http.StatusOK, &sr)
	for _, r := range sr.Results {
		if r.ID == id {
			t.Fatal("deleted doc still served")
		}
	}
	// Stats reflect the tombstone.
	get(t, ts, "/v1/stats", http.StatusOK, &stats)
	if stats.Docs != before-1 || stats.DeletedDocs != 1 || stats.Segments < 1 {
		t.Fatalf("stats after delete: %+v", stats)
	}

	// Double delete and unknown ids answer 404; junk ids answer 400.
	var e ErrorResponse
	do(t, ts, "DELETE", "/v1/docs/"+itoa(id), "", http.StatusNotFound, &e)
	if e.Error.Code != "unknown_document" {
		t.Fatalf("double delete error: %+v", e)
	}
	do(t, ts, "DELETE", "/v1/docs/999999", "", http.StatusNotFound, &e)
	if e.Error.Code != "unknown_document" {
		t.Fatalf("unknown id error: %+v", e)
	}
	do(t, ts, "DELETE", "/v1/docs/notanumber", "", http.StatusBadRequest, &e)
	if e.Error.Code != "bad_request" {
		t.Fatalf("junk id error: %+v", e)
	}
	// The legacy unversioned alias works for writes too.
	do(t, ts, "POST", "/docs", `{"id": 5150, "text": "An unversioned bulletin about Peshawar."}`, http.StatusOK, &ack)
	do(t, ts, "DELETE", "/docs/5150", "", http.StatusOK, &ack)
}

func itoa(v int) string { return strconv.Itoa(v) }
