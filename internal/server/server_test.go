package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"newslink"
	"newslink/internal/corpus"
)

func testEngine(t *testing.T) *newslink.Engine {
	t.Helper()
	g, arts := corpus.Sample()
	e := newslink.New(g, newslink.DefaultConfig())
	for _, a := range arts {
		if err := e.Add(newslink.Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	return e
}

func testServer(t *testing.T, opts ...Option) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(testEngine(t), opts...).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, ts *httptest.Server, path string, want int, out any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, want)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", path, err)
		}
	}
}

// getErr asserts the uniform error envelope and returns its code/message.
func getErr(t *testing.T, ts *httptest.Server, path string, want int) ErrorBody {
	t.Helper()
	var e ErrorResponse
	get(t, ts, path, want, &e)
	if e.Error.Code == "" || e.Error.Message == "" {
		t.Fatalf("GET %s: incomplete error envelope %+v", path, e)
	}
	return e.Error
}

func TestSearchEndpoint(t *testing.T) {
	ts := testServer(t)
	// The versioned route and its legacy alias serve the same payload.
	for _, path := range []string{"/v1/search", "/search"} {
		var got SearchResponse
		get(t, ts, path+"?q=Taliban+bombing+in+Lahore&k=3", http.StatusOK, &got)
		if len(got.Results) == 0 {
			t.Fatalf("%s: no results", path)
		}
		if got.Results[0].ID != 1 {
			t.Fatalf("%s: top result = %+v, want the bombing story", path, got.Results[0])
		}
		if got.K != 3 || got.Query == "" {
			t.Fatalf("%s: echo fields wrong: %+v", path, got)
		}
	}
}

func TestSearchPerRequestOverrides(t *testing.T) {
	ts := testServer(t)
	// beta=1 drops the pure-text business story that beta=0 ranks first.
	var text SearchResponse
	get(t, ts, "/v1/search?q=quarterly+earnings+beat+expectations&k=2&beta=0", http.StatusOK, &text)
	if len(text.Results) == 0 || text.Results[0].ID != 7 {
		t.Fatalf("beta=0: %+v", text.Results)
	}
	var graph SearchResponse
	get(t, ts, "/v1/search?q=quarterly+earnings+beat+expectations&k=2&beta=1", http.StatusOK, &graph)
	if len(graph.Results) != 0 {
		t.Fatalf("beta=1 entity-free query returned %+v", graph.Results)
	}
	// A tiny explicit pool still returns results.
	var pooled SearchResponse
	get(t, ts, "/v1/search?q=Taliban+bombing&k=1&pool=2", http.StatusOK, &pooled)
	if len(pooled.Results) == 0 {
		t.Fatal("pool=2 returned nothing")
	}
	getErr(t, ts, "/v1/search?q=x&beta=7", http.StatusBadRequest)
	getErr(t, ts, "/v1/search?q=x&beta=abc", http.StatusBadRequest)
	getErr(t, ts, "/v1/search?q=x&pool=-1", http.StatusBadRequest)
	// An oversized pool is rejected at the edge like an oversized k: it must
	// never reach the engine and size allocations there.
	getErr(t, ts, "/v1/search?q=x&k=1&pool=500000000", http.StatusBadRequest)
}

func TestSearchValidation(t *testing.T) {
	ts := testServer(t)
	e := getErr(t, ts, "/v1/search", http.StatusBadRequest)
	if e.Code != "bad_request" || !strings.Contains(e.Message, "q") {
		t.Fatalf("error = %+v", e)
	}
	getErr(t, ts, "/v1/search?q=x&k=abc", http.StatusBadRequest)
	getErr(t, ts, "/v1/search?q=x&k=0", http.StatusBadRequest)
	getErr(t, ts, "/v1/search?q=x&k=99999", http.StatusBadRequest)
	// Legacy alias uses the same envelope.
	getErr(t, ts, "/search?q=x&k=0", http.StatusBadRequest)
	// A query matching nothing returns an empty array, not null.
	resp, err := http.Get(ts.URL + "/v1/search?q=zzzzqqqq&k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if string(raw["results"]) == "null" {
		t.Fatal("results must be [] not null")
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts := testServer(t)
	var got ExplainResponse
	get(t, ts, "/v1/explain?q=Fighting+between+Taliban+and+Pakistan+in+Upper+Dir&id=1&paths=4",
		http.StatusOK, &got)
	if len(got.Explanation.SharedEntities) == 0 {
		t.Fatal("no shared entities")
	}
	if len(got.Explanation.Paths) == 0 {
		t.Fatal("no paths")
	}
	for _, p := range got.Explanation.Paths {
		if p.Rendered == "" || len(p.Nodes) != len(p.Relations)+1 {
			t.Fatalf("bad path %+v", p)
		}
	}
	getErr(t, ts, "/v1/explain?q=x", http.StatusBadRequest)
	getErr(t, ts, "/v1/explain?id=1", http.StatusBadRequest)
	if e := getErr(t, ts, "/v1/explain?q=x&id=9999", http.StatusNotFound); e.Code != "unknown_document" {
		t.Fatalf("error code = %+v", e)
	}
	getErr(t, ts, "/explain?q=x&id=9999", http.StatusNotFound)
}

func TestRelatedEndpoint(t *testing.T) {
	ts := testServer(t)
	var got RelatedResponse
	get(t, ts, "/v1/related/1?k=3", http.StatusOK, &got)
	if got.DocID != 1 || got.K != 3 {
		t.Fatalf("echo fields wrong: %+v", got)
	}
	if len(got.Results) == 0 {
		t.Fatal("no related results for an embedded document")
	}
	for _, r := range got.Results {
		if r.ID == 1 {
			t.Fatalf("related results include the source document: %+v", got.Results)
		}
	}
	// The sample corpus carries no timestamps (Time 0), so any after>0
	// window filters every candidate out — still a 200 with empty results.
	var filtered RelatedResponse
	get(t, ts, "/v1/related/1?k=3&after=1", http.StatusOK, &filtered)
	if len(filtered.Results) != 0 {
		t.Fatalf("after=1 over a Time-0 corpus returned %+v", filtered.Results)
	}
	if e := getErr(t, ts, "/v1/related/9999", http.StatusNotFound); e.Code != "unknown_document" {
		t.Fatalf("error code = %+v", e)
	}
	getErr(t, ts, "/v1/related/abc", http.StatusBadRequest)
	getErr(t, ts, "/v1/related/1?k=0", http.StatusBadRequest)
	getErr(t, ts, "/v1/related/1?k=5000", http.StatusBadRequest)
	getErr(t, ts, "/v1/related/1?pool=-1", http.StatusBadRequest)
}

func TestFilterParamValidation(t *testing.T) {
	ts := testServer(t)
	getErr(t, ts, "/v1/search?q=x&after=abc", http.StatusBadRequest)
	getErr(t, ts, "/v1/search?q=x&before=1.5", http.StatusBadRequest)
	getErr(t, ts, "/v1/related/1?after=abc", http.StatusBadRequest)
	getErr(t, ts, "/v1/explain?q=x&id=1&before=abc", http.StatusBadRequest)
	over := strings.Repeat("&entity=x", maxEntityFilters+1)
	getErr(t, ts, "/v1/search?q=x"+over, http.StatusBadRequest)
	// At the cap the request is accepted.
	var ok SearchResponse
	get(t, ts, "/v1/search?q=Taliban+bombing&k=3"+strings.Repeat("&entity=Taliban", maxEntityFilters),
		http.StatusOK, &ok)
	// An entity facet restricts results to documents whose embedding
	// contains the entity; an unresolvable label matches nothing.
	var faceted SearchResponse
	get(t, ts, "/v1/search?q=Taliban+bombing&k=5&entity=Taliban", http.StatusOK, &faceted)
	if len(faceted.Results) == 0 {
		t.Fatal("entity=Taliban returned nothing for a Taliban query")
	}
	var none SearchResponse
	get(t, ts, "/v1/search?q=Taliban+bombing&k=5&entity=no+such+entity+zzz", http.StatusOK, &none)
	if len(none.Results) != 0 {
		t.Fatalf("unresolvable entity facet returned %+v", none.Results)
	}
}

func TestHealthAndStats(t *testing.T) {
	ts := testServer(t)
	for _, path := range []string{"/v1/healthz", "/healthz"} {
		var h map[string]string
		get(t, ts, path, http.StatusOK, &h)
		if h["status"] != "ok" {
			t.Fatalf("health = %v", h)
		}
	}
	var s StatsResponse
	get(t, ts, "/v1/stats", http.StatusOK, &s)
	if s.Docs == 0 || s.KGNodes == 0 || s.KGEdges == 0 || s.KGLabels == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestConcurrentRequests(t *testing.T) {
	ts := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := "Taliban+attack"
			if i%2 == 1 {
				q = "Clinton+and+Sanders+election"
			}
			resp, err := http.Get(ts.URL + "/v1/search?q=" + q + "&k=5")
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestDOTEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/v1/dot?q=Taliban+fighting+in+Upper+Dir+Pakistan&id=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/vnd.graphviz" {
		t.Fatalf("content type %q", ct)
	}
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	if !strings.Contains(string(body[:n]), "digraph") {
		t.Fatalf("body: %s", body[:n])
	}
	getErr(t, ts, "/v1/dot?q=x", http.StatusBadRequest)
	getErr(t, ts, "/v1/dot?q=Taliban&id=9999", http.StatusNotFound)
	// Entity-free document has no embedding to draw.
	if e := getErr(t, ts, "/v1/dot?q=Taliban+Pakistan&id=7", http.StatusNotFound); e.Code != "no_embeddings" {
		t.Fatalf("error code = %+v", e)
	}
}

// TestQueryTimeoutMapsTo504: a server-side query deadline in the past must
// surface as 504 with the deadline_exceeded code, not 500.
func TestQueryTimeoutMapsTo504(t *testing.T) {
	ts := testServer(t, WithQueryTimeout(time.Nanosecond))
	if e := getErr(t, ts, "/v1/search?q=Taliban+attack&k=3", http.StatusGatewayTimeout); e.Code != "deadline_exceeded" {
		t.Fatalf("error = %+v", e)
	}
	if e := getErr(t, ts, "/v1/explain?q=Taliban&id=1", http.StatusGatewayTimeout); e.Code != "deadline_exceeded" {
		t.Fatalf("error = %+v", e)
	}
}

// TestEngineErrorMapping drives writeEngineError through the statuses the
// handler contract promises.
func TestEngineErrorMapping(t *testing.T) {
	s := New(testEngine(t))
	rec := func(err error) (int, ErrorBody) {
		w := httptest.NewRecorder()
		s.writeEngineError(w, err)
		var e ErrorResponse
		if derr := json.NewDecoder(w.Body).Decode(&e); derr != nil {
			t.Fatal(derr)
		}
		return w.Code, e.Error
	}
	if code, e := rec(context.Canceled); code != StatusClientClosedRequest || e.Code != "client_closed_request" {
		t.Fatalf("canceled -> %d %+v", code, e)
	}
	if code, e := rec(context.DeadlineExceeded); code != http.StatusGatewayTimeout || e.Code != "deadline_exceeded" {
		t.Fatalf("deadline -> %d %+v", code, e)
	}
	if code, _ := rec(newslink.ErrNotBuilt); code != http.StatusServiceUnavailable {
		t.Fatalf("not built -> %d", code)
	}
	if code, _ := rec(newslink.ErrInvalidK); code != http.StatusBadRequest {
		t.Fatalf("invalid k -> %d", code)
	}
}
