package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"newslink"
	"newslink/internal/corpus"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	g, arts := corpus.Sample()
	e := newslink.New(g, newslink.DefaultConfig())
	for _, a := range arts {
		if err := e.Add(newslink.Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.Build(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(e).Handler())
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, ts *httptest.Server, path string, want int, out any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != want {
		t.Fatalf("GET %s: status %d, want %d", path, resp.StatusCode, want)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", path, err)
		}
	}
}

func TestSearchEndpoint(t *testing.T) {
	ts := testServer(t)
	var got SearchResponse
	get(t, ts, "/search?q=Taliban+bombing+in+Lahore&k=3", http.StatusOK, &got)
	if len(got.Results) == 0 {
		t.Fatal("no results")
	}
	if got.Results[0].ID != 1 {
		t.Fatalf("top result = %+v, want the bombing story", got.Results[0])
	}
	if got.K != 3 || got.Query == "" {
		t.Fatalf("echo fields wrong: %+v", got)
	}
}

func TestSearchValidation(t *testing.T) {
	ts := testServer(t)
	var e struct{ Error string }
	get(t, ts, "/search", http.StatusBadRequest, &e)
	if !strings.Contains(e.Error, "q") {
		t.Fatalf("error = %q", e.Error)
	}
	get(t, ts, "/search?q=x&k=abc", http.StatusBadRequest, &e)
	get(t, ts, "/search?q=x&k=0", http.StatusBadRequest, &e)
	get(t, ts, "/search?q=x&k=99999", http.StatusBadRequest, &e)
	// A query matching nothing returns an empty array, not null.
	resp, err := http.Get(ts.URL + "/search?q=zzzzqqqq&k=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if string(raw["results"]) == "null" {
		t.Fatal("results must be [] not null")
	}
}

func TestExplainEndpoint(t *testing.T) {
	ts := testServer(t)
	var got ExplainResponse
	get(t, ts, "/explain?q=Fighting+between+Taliban+and+Pakistan+in+Upper+Dir&id=1&paths=4",
		http.StatusOK, &got)
	if len(got.Explanation.SharedEntities) == 0 {
		t.Fatal("no shared entities")
	}
	if len(got.Explanation.Paths) == 0 {
		t.Fatal("no paths")
	}
	for _, p := range got.Explanation.Paths {
		if p.Rendered == "" || len(p.Nodes) != len(p.Relations)+1 {
			t.Fatalf("bad path %+v", p)
		}
	}
	var e struct{ Error string }
	get(t, ts, "/explain?q=x", http.StatusBadRequest, &e)
	get(t, ts, "/explain?id=1", http.StatusBadRequest, &e)
	get(t, ts, "/explain?q=x&id=9999", http.StatusNotFound, &e)
}

func TestHealthAndStats(t *testing.T) {
	ts := testServer(t)
	var h map[string]string
	get(t, ts, "/healthz", http.StatusOK, &h)
	if h["status"] != "ok" {
		t.Fatalf("health = %v", h)
	}
	var s StatsResponse
	get(t, ts, "/stats", http.StatusOK, &s)
	if s.Docs == 0 || s.KGNodes == 0 || s.KGEdges == 0 || s.KGLabels == 0 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestConcurrentRequests(t *testing.T) {
	ts := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			q := "Taliban+attack"
			if i%2 == 1 {
				q = "Clinton+and+Sanders+election"
			}
			resp, err := http.Get(ts.URL + "/search?q=" + q + "&k=5")
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestDOTEndpoint(t *testing.T) {
	ts := testServer(t)
	resp, err := http.Get(ts.URL + "/dot?q=Taliban+fighting+in+Upper+Dir+Pakistan&id=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/vnd.graphviz" {
		t.Fatalf("content type %q", ct)
	}
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	if !strings.Contains(string(body[:n]), "digraph") {
		t.Fatalf("body: %s", body[:n])
	}
	var e struct{ Error string }
	get(t, ts, "/dot?q=x", http.StatusBadRequest, &e)
	get(t, ts, "/dot?q=Taliban&id=9999", http.StatusNotFound, &e)
	// Entity-free document has no embedding to draw.
	get(t, ts, "/dot?q=Taliban+Pakistan&id=7", http.StatusNotFound, &e)
}
