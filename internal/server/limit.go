package server

import (
	"context"
	"net/http"
	"sync"
	"time"

	"newslink/internal/obs"
)

// semaphore is a weighted counting semaphore with FIFO admission: waiters
// are granted strictly in arrival order, so one heavy request cannot be
// starved by a stream of light ones. It is a small, stdlib-only stand-in
// for golang.org/x/sync/semaphore (this module takes no dependencies).
type semaphore struct {
	size int64

	mu      sync.Mutex
	cur     int64
	waiters []*waiter
}

type waiter struct {
	n     int64
	ready chan struct{}
}

func newSemaphore(size int64) *semaphore { return &semaphore{size: size} }

// Acquire blocks until n units are available or ctx ends. A request
// heavier than the whole semaphore is still admitted (alone) rather than
// deadlocking forever.
func (s *semaphore) Acquire(ctx context.Context, n int64) error {
	s.mu.Lock()
	if s.cur+n <= s.size && len(s.waiters) == 0 {
		s.cur += n
		s.mu.Unlock()
		return nil
	}
	w := &waiter{n: n, ready: make(chan struct{})}
	s.waiters = append(s.waiters, w)
	s.mu.Unlock()

	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		s.mu.Lock()
		select {
		case <-w.ready:
			// Granted between ctx firing and taking the lock: keep the
			// grant consistent by releasing it.
			s.mu.Unlock()
			s.Release(n)
			return ctx.Err()
		default:
		}
		for i, q := range s.waiters {
			if q == w {
				s.waiters = append(s.waiters[:i], s.waiters[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		return ctx.Err()
	}
}

// Release returns n units and wakes the longest-waiting requests that now
// fit.
func (s *semaphore) Release(n int64) {
	s.mu.Lock()
	s.cur -= n
	if s.cur < 0 {
		s.mu.Unlock()
		panic("server: semaphore released more than held")
	}
	for len(s.waiters) > 0 {
		w := s.waiters[0]
		if s.cur+w.n > s.size && s.cur > 0 {
			// Head does not fit yet; FIFO means nobody behind it may jump
			// the queue. (If the semaphore is idle, admit even an
			// oversized head so it cannot wedge the queue.)
			break
		}
		s.cur += w.n
		s.waiters = s.waiters[1:]
		close(w.ready)
	}
	s.mu.Unlock()
}

// TryAcquire acquires n units without waiting; it reports whether the
// acquisition succeeded. Fairness holds: it fails while earlier arrivals
// are still queued.
func (s *semaphore) TryAcquire(n int64) bool {
	s.mu.Lock()
	ok := s.cur+n <= s.size && len(s.waiters) == 0
	if ok {
		s.cur += n
	}
	s.mu.Unlock()
	return ok
}

// limiter applies admission control to the query routes: at most
// maxInFlight weight units execute concurrently, an arriving request
// waits at most maxWait for capacity (not at all when maxWait is zero),
// and past that it is shed with 429 and a Retry-After hint. Sheds are
// deliberate back-pressure, not queueing: a saturated server answers
// cheaply and immediately instead of stacking goroutines until the
// latency SLO is gone anyway.
type limiter struct {
	sem      *semaphore
	maxWait  time.Duration
	inFlight *obs.Gauge
	shed     *obs.Counter
}

func newLimiter(maxInFlight int, maxWait time.Duration, reg *obs.Registry) *limiter {
	return &limiter{
		sem:     newSemaphore(int64(maxInFlight)),
		maxWait: maxWait,
		inFlight: reg.Gauge("newslink_http_in_flight",
			"Weight units currently admitted to the query routes."),
		shed: reg.Counter("newslink_http_shed_total",
			"Requests shed with 429 because the server was at capacity."),
	}
}

// admit wraps a query handler with weighted admission. A nil limiter
// (admission control disabled) returns h unchanged.
func (l *limiter) admit(weight int64, h http.HandlerFunc) http.HandlerFunc {
	if l == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		if !l.acquire(r.Context(), weight) {
			l.shed.Inc()
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusTooManyRequests, "overloaded",
				"server at capacity, retry later")
			return
		}
		l.inFlight.Add(weight)
		defer func() {
			l.inFlight.Add(-weight)
			l.sem.Release(weight)
		}()
		h(w, r)
	}
}

func (l *limiter) acquire(ctx context.Context, weight int64) bool {
	if l.maxWait <= 0 {
		return l.sem.TryAcquire(weight)
	}
	ctx, cancel := context.WithTimeout(ctx, l.maxWait)
	defer cancel()
	return l.sem.Acquire(ctx, weight) == nil
}
