// Package server exposes a NewsLink engine over HTTP with a small JSON API
// (the paper's NE component "runs as a backend server"; this serves the
// whole search pipeline). Routes are versioned under /v1/; the unversioned
// spellings are kept as aliases for old clients:
//
//	GET    /v1/search?q=<text>&k=<n>[&beta=<b>][&pool=<d>][&after=<t>][&before=<t>][&entity=<label>...][&trace=1]  ranked results (Equation 3)
//	GET    /v1/related/{id}?k=<n>[&pool=<d>][&after=<t>][&before=<t>][&entity=<label>...][&trace=1]                related news by stored BON embedding
//	GET    /v1/explain?q=<text>&id=<doc>&paths=<n>[&after=<t>][&before=<t>][&entity=<label>...][&trace=1]          overlap + relationship paths
//	GET    /v1/dot?q=<text>&id=<doc>                                  Graphviz rendering of the pair
//	POST   /v1/docs                                                   add or replace one document (upsert)
//	POST   /v1/docs:stream                                            enqueue one document for async ingestion (202)
//	DELETE /v1/docs/{id}                                              tombstone one document
//	GET    /v1/healthz                                                liveness: 200 while the process serves at all
//	GET    /v1/readyz                                                 readiness: 200, or 503 while draining
//	GET    /v1/stats                                                  engine and graph statistics
//	GET    /v1/metrics                                                metric registry as JSON
//	GET    /v1/metrics/prom                                           Prometheus text exposition
//
// The filter parameters compose conjunctively: after= and before= bound
// Document.Time inclusively (0/absent = unbounded), and entity= may repeat
// — every named entity must match the document's subgraph embedding.
// /v1/related ranks the corpus against the stored subgraph embedding of
// document {id} (pure BON, the doc-as-query scenario) and never returns
// the source document itself.
//
// Errors use a uniform JSON envelope {"error": {"code", "message"}}. A
// request whose context is cancelled by the client maps to 499, one that
// exceeds the server's query deadline to 504.
//
// The query routes (search, explain, dot) sit behind optional weighted
// admission control (WithMaxInFlight): past capacity a request waits a
// short bounded time and is then shed with 429 and a Retry-After hint.
// Handler panics are recovered, counted, and answered with a 500
// envelope. A BON-stage failure inside the engine degrades a fused
// search to BOW-only ranking — HTTP 200 with "degraded": true — instead
// of failing the request.
//
// Every request is assigned a request ID (returned as X-Request-Id) and
// logged as one structured log/slog line; search and explain accept
// trace=1, which runs the query with a per-request trace and includes the
// stage-by-stage breakdown (durations, candidate counts, cache hit/miss,
// shard fan-out) in the response.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"newslink"
	"newslink/internal/kg"
	"newslink/internal/obs"
)

// StatusClientClosedRequest is the non-standard (nginx-originated) status
// for requests abandoned by the client before a response was produced.
const StatusClientClosedRequest = 499

// maxPoolDepth caps the per-request candidate pool. Like the cap on k, it
// keeps an unauthenticated query parameter from sizing server allocations
// (the engine additionally clamps the pool to the corpus size).
const maxPoolDepth = 10000

// Option configures a Server.
type Option func(*Server)

// WithQueryTimeout bounds every search/explain/dot request: past d the
// request context is cancelled, traversal stops cooperatively, and the
// client receives 504 with code "deadline_exceeded". Zero disables the
// bound.
func WithQueryTimeout(d time.Duration) Option {
	return func(s *Server) { s.queryTimeout = d }
}

// WithLogger sets the structured logger for access logs and trace output.
// The default logger discards everything, keeping embedded and test servers
// quiet; newslinkd installs a text handler on stderr.
func WithLogger(l *slog.Logger) Option {
	return func(s *Server) {
		if l != nil {
			s.log = l
		}
	}
}

// WithMaxInFlight enables admission control on the query routes: at most
// n weight units execute concurrently (search weighs 1; explain and dot,
// which walk the graph, weigh 2). Requests beyond capacity wait briefly
// (see WithAdmissionWait) and are then shed with 429. Zero disables
// admission control (the default).
func WithMaxInFlight(n int) Option {
	return func(s *Server) { s.maxInFlight = n }
}

// WithAdmissionWait bounds how long an over-capacity request may wait for
// admission before it is shed. Zero (the default) sheds immediately. The
// wait is deliberately short — queueing is bounded back-pressure, not a
// second queue in front of the engine.
func WithAdmissionWait(d time.Duration) Option {
	return func(s *Server) { s.admissionWait = d }
}

// Server wraps a built engine. All handlers are read-only and safe for
// concurrent use; the engine's own locking makes them safe against
// concurrent Add/Refresh as well.
type Server struct {
	engine        *newslink.Engine
	queryTimeout  time.Duration
	maxInFlight   int
	admissionWait time.Duration
	log           *slog.Logger
	registry      *obs.Registry
	requestID     func() string
	limiter       *limiter // nil when admission control is disabled
	panics        *obs.Counter
	ready         atomic.Bool
}

// New returns a Server over a built engine. HTTP-level metrics register
// into the engine's own registry, so /v1/metrics exposes the engine and
// the HTTP layer in one document. The server starts ready; SetReady
// flips /v1/readyz for drain orchestration.
func New(e *newslink.Engine, opts ...Option) *Server {
	s := &Server{
		engine:    e,
		log:       slog.New(slog.NewTextHandler(io.Discard, nil)),
		registry:  e.Metrics(),
		requestID: newRequestID(),
	}
	for _, o := range opts {
		o(s)
	}
	s.panics = s.registry.Counter("newslink_http_panics_total",
		"Handler panics recovered by the HTTP layer.")
	if s.maxInFlight > 0 {
		s.limiter = newLimiter(s.maxInFlight, s.admissionWait, s.registry)
	}
	s.ready.Store(true)
	return s
}

// SetReady flips the readiness state served by /v1/readyz. newslinkd
// sets it to false at the start of a drain so load balancers stop
// sending new work while in-flight requests complete.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// Handler returns the HTTP handler with all routes registered, each under
// /v1/ and as a legacy unversioned alias. Every route is wrapped with
// request-ID assignment, panic recovery, access logging and HTTP metrics;
// the query routes additionally pass weighted admission control when it
// is enabled. Health, readiness and metrics are never subject to
// admission — an overloaded server must still answer its probes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	routes := []struct {
		method  string
		pattern string // path pattern under the version prefix
		name    string // metric/log label
		h       http.HandlerFunc
		weight  int64 // 0 = exempt from admission control
	}{
		{"GET", "search", "search", s.handleSearch, 1},
		{"GET", "related/{id}", "related", s.handleRelated, 1},
		{"GET", "explain", "explain", s.handleExplain, 2},
		{"GET", "dot", "dot", s.handleDOT, 2},
		{"POST", "docs", "docs_upsert", s.handleDocUpsert, 1},
		{"POST", "docs:stream", "docs_ingest", s.handleDocIngest, 1},
		{"DELETE", "docs/{id}", "docs_delete", s.handleDocDelete, 1},
		{"GET", "healthz", "healthz", s.handleHealth, 0},
		{"GET", "readyz", "readyz", s.handleReady, 0},
		{"GET", "stats", "stats", s.handleStats, 0},
		{"GET", "metrics", "metrics", s.handleMetrics, 0},
		{"GET", "metrics/prom", "metrics/prom", s.handleMetricsProm, 0},
	}
	for _, rt := range routes {
		h := rt.h
		if rt.weight > 0 {
			h = s.limiter.admit(rt.weight, h)
		}
		h = s.instrument(rt.name, h)
		for _, prefix := range []string{"/v1", ""} {
			mux.HandleFunc(rt.method+" "+prefix+"/"+rt.pattern, h)
		}
	}
	return mux
}

// queryContext derives the per-request context handlers pass to the engine.
func (s *Server) queryContext(r *http.Request) (context.Context, context.CancelFunc) {
	if s.queryTimeout > 0 {
		return context.WithTimeout(r.Context(), s.queryTimeout)
	}
	return r.Context(), func() {}
}

// SearchResponse is the /search reply. Trace is present only for trace=1
// requests: one entry per pipeline stage, ordered by start offset.
// Degraded is true when the BON stage failed or timed out and the ranking
// fell back to BOW-only scoring ("bon_error" or "bon_timeout"), or — on a
// cluster router — when a shard worker was unavailable and the ranking
// covers only the live shards ("shard_unavailable"); DegradedReason then
// carries the cause. ShardsTotal/ShardsOK report the scatter fan-out on
// router responses and are absent on single-process servers.
type SearchResponse struct {
	Query          string            `json:"query"`
	K              int               `json:"k"`
	Results        []newslink.Result `json:"results"`
	Degraded       bool              `json:"degraded,omitempty"`
	DegradedReason string            `json:"degraded_reason,omitempty"`
	ShardsTotal    int               `json:"shards_total,omitempty"`
	ShardsOK       int               `json:"shards_ok,omitempty"`
	Trace          []obs.Span        `json:"trace,omitempty"`
}

// RelatedResponse is the /related/{id} reply: the SearchResponse envelope
// with the source document id in place of the query text. Related runs a
// single pure-BON leg with nothing to degrade to, so the degradation
// fields never apply.
type RelatedResponse struct {
	DocID   int               `json:"doc_id"`
	K       int               `json:"k"`
	Results []newslink.Result `json:"results"`
	Trace   []obs.Span        `json:"trace,omitempty"`
}

// ExplainResponse is the /explain reply. Trace is present only for trace=1
// requests.
type ExplainResponse struct {
	Query       string               `json:"query"`
	DocID       int                  `json:"doc_id"`
	Explanation newslink.Explanation `json:"explanation"`
	Trace       []obs.Span           `json:"trace,omitempty"`
}

// StatsResponse is the /stats reply.
type StatsResponse struct {
	Docs        int `json:"docs"`
	Segments    int `json:"segments"`
	DeletedDocs int `json:"deleted_docs"`
	KGNodes     int `json:"kg_nodes"`
	KGEdges     int `json:"kg_edges"`
	KGLabels    int `json:"kg_labels"`
}

// DocPayload is the POST /docs request body. ID is a pointer so a missing
// id is distinguishable from document 0. Time is the optional event
// timestamp (Document.Time) the temporal filters compare against.
type DocPayload struct {
	ID    *int   `json:"id"`
	Title string `json:"title"`
	Text  string `json:"text"`
	Time  int64  `json:"time,omitempty"`
}

// DocResponse acknowledges a document write.
type DocResponse struct {
	ID   int    `json:"id"`
	Docs int    `json:"docs"`
	Op   string `json:"op"`
}

// ErrorBody is the inner object of the error envelope.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorResponse is the uniform error envelope of every non-2xx reply.
type ErrorResponse struct {
	Error ErrorBody `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late to change the status; nothing more we can do.
		return
	}
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: ErrorBody{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// WriteJSON writes v as a JSON response with the given status. It is the
// same encoder every route here uses, exported so the cluster tier
// (internal/cluster) serves the identical envelope.
func WriteJSON(w http.ResponseWriter, status int, v any) { writeJSON(w, status, v) }

// WriteError writes the uniform error envelope {"error":{"code","message"}}.
func WriteError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeError(w, status, code, format, args...)
}

func badRequest(w http.ResponseWriter, format string, args ...any) {
	writeError(w, http.StatusBadRequest, "bad_request", format, args...)
}

// writeEngineError maps an engine error onto a status and stable error
// code: sentinel errors map to client-side statuses, context termination to
// 499/504, anything else to 500.
func (s *Server) writeEngineError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.Canceled):
		writeError(w, StatusClientClosedRequest, "client_closed_request", "request cancelled")
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "deadline_exceeded", "query deadline exceeded")
	case errors.Is(err, newslink.ErrUnknownDoc):
		writeError(w, http.StatusNotFound, "unknown_document", "%v", err)
	case errors.Is(err, newslink.ErrInvalidK), errors.Is(err, newslink.ErrInvalidBeta):
		badRequest(w, "%v", err)
	case errors.Is(err, newslink.ErrNotBuilt):
		writeError(w, http.StatusServiceUnavailable, "not_built", "%v", err)
	case errors.Is(err, newslink.ErrIngestOverload):
		// The bounded ingest queue is full: back-pressure, not failure.
		// The hint is the observed queue-drain interval (depth over the
		// applier's EWMA drain rate), or a fixed second before the rate
		// is known — an interval to back off, not a precise ETA.
		w.Header().Set("Retry-After", retryAfterHint(s.engine))
		writeError(w, http.StatusTooManyRequests, "ingest_overload", "%v", err)
	case errors.Is(err, newslink.ErrClosed):
		writeError(w, http.StatusServiceUnavailable, "shutting_down", "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "internal", "%v", err)
	}
}

// retryAfterHint renders the engine's queue-drain estimate as a
// Retry-After value, falling back to "1" while no estimate exists.
func retryAfterHint(e *newslink.Engine) string {
	if secs := e.IngestRetryAfter(); secs > 0 {
		return strconv.Itoa(secs)
	}
	return "1"
}

func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q must be an integer, got %q", name, raw)
	}
	return v, nil
}

func int64Param(r *http.Request, name string) (int64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %q must be an integer timestamp, got %q", name, raw)
	}
	return v, nil
}

// maxEntityFilters caps the repeatable entity= parameter, like the other
// caps on unauthenticated request sizing.
const maxEntityFilters = 16

// FilterParams parses the shared document-filter query parameters:
// after=/before= (inclusive Document.Time bounds) and entity= (repeatable
// must-match entity labels). The cluster router parses the same grammar,
// so single-process and clustered deployments accept identical requests.
func FilterParams(r *http.Request) (after, before int64, entities []string, err error) {
	if after, err = int64Param(r, "after"); err != nil {
		return 0, 0, nil, err
	}
	if before, err = int64Param(r, "before"); err != nil {
		return 0, 0, nil, err
	}
	entities = r.URL.Query()["entity"]
	if len(entities) > maxEntityFilters {
		return 0, 0, nil, fmt.Errorf("at most %d entity filters per request, got %d", maxEntityFilters, len(entities))
	}
	for _, e := range entities {
		if e == "" {
			return 0, 0, nil, fmt.Errorf("parameter \"entity\" must not be empty")
		}
	}
	return after, before, entities, nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		badRequest(w, "missing query parameter q")
		return
	}
	k, err := intParam(r, "k", 10)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	if k <= 0 || k > 1000 {
		badRequest(w, "k must be in [1,1000], got %d", k)
		return
	}
	pool, err := intParam(r, "pool", 0)
	if err != nil || pool < 0 || pool > maxPoolDepth {
		badRequest(w, "parameter \"pool\" must be an integer in [0,%d]", maxPoolDepth)
		return
	}
	after, before, entities, err := FilterParams(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	req := newslink.Query{Text: q, K: k, PoolDepth: pool, After: after, Before: before, Entities: entities}
	if raw := r.URL.Query().Get("beta"); raw != "" {
		beta, err := strconv.ParseFloat(raw, 64)
		if err != nil || beta < 0 || beta > 1 {
			badRequest(w, "parameter \"beta\" must be a number in [0,1], got %q", raw)
			return
		}
		req.Beta = newslink.BetaOverride(beta)
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	ctx, tr := maybeTrace(ctx, r)
	resp, err := s.engine.SearchContextFull(ctx, req)
	if err != nil {
		s.writeEngineError(w, err)
		return
	}
	results := resp.Results
	if results == nil {
		results = []newslink.Result{}
	}
	s.logTrace(r, tr)
	writeJSON(w, http.StatusOK, SearchResponse{
		Query:          q,
		K:              k,
		Results:        results,
		Degraded:       resp.Degraded,
		DegradedReason: resp.DegradedReason,
		Trace:          tr.Spans(),
	})
}

// handleRelated serves related-news search: the corpus ranked against the
// stored subgraph embedding of the path document, optionally filtered by
// the shared after/before/entity parameters. Unknown or tombstoned ids
// answer 404; a document that embedded to nothing answers 200 with empty
// results (it has no graph neighbourhood).
func (s *Server) handleRelated(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 {
		badRequest(w, "path parameter id must be a non-negative integer")
		return
	}
	k, err := intParam(r, "k", 10)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	if k <= 0 || k > 1000 {
		badRequest(w, "k must be in [1,1000], got %d", k)
		return
	}
	pool, err := intParam(r, "pool", 0)
	if err != nil || pool < 0 || pool > maxPoolDepth {
		badRequest(w, "parameter \"pool\" must be an integer in [0,%d]", maxPoolDepth)
		return
	}
	after, before, entities, err := FilterParams(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	ctx, tr := maybeTrace(ctx, r)
	results, err := s.engine.RelatedContext(ctx, newslink.RelatedQuery{
		DocID: id, K: k, PoolDepth: pool,
		After: after, Before: before, Entities: entities,
	})
	if err != nil {
		s.writeEngineError(w, err)
		return
	}
	if results == nil {
		results = []newslink.Result{}
	}
	s.logTrace(r, tr)
	writeJSON(w, http.StatusOK, RelatedResponse{DocID: id, K: k, Results: results, Trace: tr.Spans()})
}

// maybeTrace attaches a per-request trace to ctx when the request asked for
// one with trace=1. A nil *obs.Trace is a valid no-op, so callers use the
// result unconditionally.
func maybeTrace(ctx context.Context, r *http.Request) (context.Context, *obs.Trace) {
	if r.URL.Query().Get("trace") != "1" {
		return ctx, nil
	}
	return obs.WithTrace(ctx)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		badRequest(w, "missing query parameter q")
		return
	}
	id, err := intParam(r, "id", -1)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	if id < 0 {
		badRequest(w, "missing or negative parameter id")
		return
	}
	paths, err := intParam(r, "paths", 5)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	after, before, entities, err := FilterParams(r)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	ctx, tr := maybeTrace(ctx, r)
	exp, err := s.engine.ExplainQueryContext(ctx, newslink.Query{Text: q, After: after, Before: before, Entities: entities}, id, paths)
	if err != nil {
		s.writeEngineError(w, err)
		return
	}
	s.logTrace(r, tr)
	writeJSON(w, http.StatusOK, ExplainResponse{Query: q, DocID: id, Explanation: exp, Trace: tr.Spans()})
}

// handleDOT returns a Graphviz rendering of the query and document
// embeddings (Content-Type text/vnd.graphviz), the Figure 1 visual.
func (s *Server) handleDOT(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		badRequest(w, "missing query parameter q")
		return
	}
	id, err := intParam(r, "id", -1)
	if err != nil || id < 0 {
		badRequest(w, "missing or invalid parameter id")
		return
	}
	ctx, cancel := s.queryContext(r)
	defer cancel()
	dot, err := s.engine.ExplainDOTContext(ctx, q, id, "newslink")
	if err != nil {
		s.writeEngineError(w, err)
		return
	}
	if dot == "" {
		writeError(w, http.StatusNotFound, "no_embeddings", "no subgraph embeddings for this pair")
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write([]byte(dot)); err != nil {
		return
	}
}

// maxDocBody bounds the POST /docs request body; like the query-parameter
// caps it keeps one unauthenticated request from sizing server allocations.
const maxDocBody = 1 << 20

// handleDocUpsert adds or replaces one document (engine Update semantics:
// a new ID is added, an existing one is atomically replaced). The engine
// embeds the text before indexing, so this is the expensive write path;
// it carries admission weight like a query.
func (s *Server) handleDocUpsert(w http.ResponseWriter, r *http.Request) {
	var p DocPayload
	dec := json.NewDecoder(io.LimitReader(r.Body, maxDocBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		badRequest(w, "invalid JSON body: %v", err)
		return
	}
	if p.ID == nil || *p.ID < 0 {
		badRequest(w, "missing or negative field id")
		return
	}
	if p.Text == "" {
		badRequest(w, "missing field text")
		return
	}
	if err := s.engine.Update(newslink.Document{ID: *p.ID, Title: p.Title, Text: p.Text, Time: p.Time}); err != nil {
		s.writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DocResponse{ID: *p.ID, Docs: s.engine.NumDocs(), Op: "upsert"})
}

// handleDocIngest is the streaming write path: the document is durably
// logged (when the engine runs with a WAL) and enqueued for asynchronous
// indexing, and the request is acknowledged with 202 before the document
// is searchable. A full ingest queue sheds the request with 429 and a
// Retry-After hint — the bounded queue is the back-pressure mechanism
// that keeps a sustained firehose from growing an unbounded backlog.
// Engines without WithIngestQueue fall back to a synchronous upsert, so
// the route works (with synchronous latency) at either setting.
func (s *Server) handleDocIngest(w http.ResponseWriter, r *http.Request) {
	var p DocPayload
	dec := json.NewDecoder(io.LimitReader(r.Body, maxDocBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		badRequest(w, "invalid JSON body: %v", err)
		return
	}
	if p.ID == nil || *p.ID < 0 {
		badRequest(w, "missing or negative field id")
		return
	}
	if p.Text == "" {
		badRequest(w, "missing field text")
		return
	}
	if err := s.engine.Ingest(newslink.Document{ID: *p.ID, Title: p.Title, Text: p.Text, Time: p.Time}); err != nil {
		s.writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, DocResponse{ID: *p.ID, Docs: s.engine.NumDocs(), Op: "ingest"})
}

// handleDocDelete tombstones one document by ID; it disappears from
// search results immediately and its index space is reclaimed by the next
// segment merge. Unknown (or already deleted) IDs answer 404.
func (s *Server) handleDocDelete(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 {
		badRequest(w, "path parameter id must be a non-negative integer")
		return
	}
	if err := s.engine.Delete(id); err != nil {
		s.writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DocResponse{ID: id, Docs: s.engine.NumDocs(), Op: "delete"})
}

// handleHealth is the liveness probe: 200 as long as the process can
// serve HTTP at all. It stays 200 during a drain — restarting a process
// because it is shutting down would be counterproductive.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is the readiness probe: 200 while the server accepts new
// work, 503 once a drain began. Load balancers route on this one.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleMetrics serves the metric registry (engine + HTTP layer) as one
// JSON object keyed by metric identity; histograms include count, sum and
// p50/p95/p99 estimates.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if err := s.registry.WriteJSON(w); err != nil {
		return
	}
}

// handleMetricsProm serves the same registry in the Prometheus text
// exposition format, for scraping.
func (s *Server) handleMetricsProm(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	if err := s.registry.WritePrometheus(w); err != nil {
		return
	}
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	g := s.engine.Graph()
	writeJSON(w, http.StatusOK, StatsResponse{
		Docs:        s.engine.NumDocs(),
		Segments:    s.engine.NumSegments(),
		DeletedDocs: s.engine.NumDeletedDocs(),
		KGNodes:     g.NumNodes(),
		KGEdges:     g.NumEdges(),
		KGLabels:    labelCount(g),
	})
}

func labelCount(g *kg.Graph) int { return g.Index().Size() }
