// Package server exposes a NewsLink engine over HTTP with a small JSON API
// (the paper's NE component "runs as a backend server"; this serves the
// whole search pipeline):
//
//	GET /search?q=<text>&k=<n>            ranked results (Equation 3)
//	GET /explain?q=<text>&id=<doc>&paths=<n>   overlap + relationship paths
//	GET /dot?q=<text>&id=<doc>            Graphviz rendering of the pair
//	GET /healthz                          liveness
//	GET /stats                            engine and graph statistics
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"newslink"
	"newslink/internal/kg"
)

// Server wraps a built engine. All handlers are read-only and safe for
// concurrent use.
type Server struct {
	engine *newslink.Engine
}

// New returns a Server over a built engine.
func New(e *newslink.Engine) *Server { return &Server{engine: e} }

// Handler returns the HTTP handler with all routes registered.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /search", s.handleSearch)
	mux.HandleFunc("GET /explain", s.handleExplain)
	mux.HandleFunc("GET /dot", s.handleDOT)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /stats", s.handleStats)
	return mux
}

// SearchResponse is the /search reply.
type SearchResponse struct {
	Query   string            `json:"query"`
	K       int               `json:"k"`
	Results []newslink.Result `json:"results"`
}

// ExplainResponse is the /explain reply.
type ExplainResponse struct {
	Query       string               `json:"query"`
	DocID       int                  `json:"doc_id"`
	Explanation newslink.Explanation `json:"explanation"`
}

// StatsResponse is the /stats reply.
type StatsResponse struct {
	Docs     int `json:"docs"`
	KGNodes  int `json:"kg_nodes"`
	KGEdges  int `json:"kg_edges"`
	KGLabels int `json:"kg_labels"`
}

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late to change the status; nothing more we can do.
		return
	}
}

func badRequest(w http.ResponseWriter, format string, args ...any) {
	writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf(format, args...)})
}

func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q must be an integer, got %q", name, raw)
	}
	return v, nil
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		badRequest(w, "missing query parameter q")
		return
	}
	k, err := intParam(r, "k", 10)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	if k <= 0 || k > 1000 {
		badRequest(w, "k must be in [1,1000], got %d", k)
		return
	}
	results, err := s.engine.Search(q, k)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	if results == nil {
		results = []newslink.Result{}
	}
	writeJSON(w, http.StatusOK, SearchResponse{Query: q, K: k, Results: results})
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		badRequest(w, "missing query parameter q")
		return
	}
	id, err := intParam(r, "id", -1)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	if id < 0 {
		badRequest(w, "missing or negative parameter id")
		return
	}
	paths, err := intParam(r, "paths", 5)
	if err != nil {
		badRequest(w, "%v", err)
		return
	}
	exp, err := s.engine.Explain(q, id, paths)
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, ExplainResponse{Query: q, DocID: id, Explanation: exp})
}

// handleDOT returns a Graphviz rendering of the query and document
// embeddings (Content-Type text/vnd.graphviz), the Figure 1 visual.
func (s *Server) handleDOT(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		badRequest(w, "missing query parameter q")
		return
	}
	id, err := intParam(r, "id", -1)
	if err != nil || id < 0 {
		badRequest(w, "missing or invalid parameter id")
		return
	}
	dot, err := s.engine.ExplainDOT(q, id, "newslink")
	if err != nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: err.Error()})
		return
	}
	if dot == "" {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no subgraph embeddings for this pair"})
		return
	}
	w.Header().Set("Content-Type", "text/vnd.graphviz")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write([]byte(dot)); err != nil {
		return
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	g := s.engine.Graph()
	writeJSON(w, http.StatusOK, StatsResponse{
		Docs:     s.engine.NumDocs(),
		KGNodes:  g.NumNodes(),
		KGEdges:  g.NumEdges(),
		KGLabels: labelCount(g),
	})
}

func labelCount(g *kg.Graph) int { return g.Index().Size() }
