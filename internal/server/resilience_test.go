package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"newslink"
	"newslink/internal/faults"
)

// newslinkServer builds a server over a fresh sample engine and returns
// both, so tests can read the engine's metric registry directly.
func newslinkServer(t *testing.T, opts ...Option) (*newslink.Engine, *Server, *httptest.Server) {
	t.Helper()
	e := testEngine(t)
	s := New(e, opts...)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return e, s, ts
}

func TestReadyzFlipsDuringDrain(t *testing.T) {
	_, s, ts := newslinkServer(t)
	var body map[string]string
	get(t, ts, "/v1/readyz", http.StatusOK, &body)
	if body["status"] != "ready" {
		t.Fatalf("readyz body = %v", body)
	}
	s.SetReady(false)
	get(t, ts, "/v1/readyz", http.StatusServiceUnavailable, &body)
	if body["status"] != "draining" {
		t.Fatalf("draining readyz body = %v", body)
	}
	// Liveness is independent of readiness: still 200 while draining.
	get(t, ts, "/v1/healthz", http.StatusOK, nil)
	s.SetReady(true)
	get(t, ts, "/v1/readyz", http.StatusOK, nil)
}

// TestSearchDegradedEnvelope: an injected BON failure surfaces as HTTP
// 200 with degraded:true and a reason — never as a 5xx.
func TestSearchDegradedEnvelope(t *testing.T) {
	_, _, ts := newslinkServer(t)
	faults.Arm(faults.New().Fail(faults.BONStage, errors.New("injected BON failure")))
	defer faults.Disarm()

	var got SearchResponse
	get(t, ts, "/v1/search?q=Taliban+bombing+in+Lahore&k=3", http.StatusOK, &got)
	if !got.Degraded || got.DegradedReason != "bon_error" {
		t.Fatalf("degraded = %v reason = %q, want true/bon_error", got.Degraded, got.DegradedReason)
	}
	if len(got.Results) == 0 {
		t.Fatal("degraded search returned no results")
	}

	// After the fault clears, responses drop the degraded marker.
	faults.Disarm()
	var clean SearchResponse
	get(t, ts, "/v1/search?q=Taliban+bombing+in+Lahore&k=3", http.StatusOK, &clean)
	if clean.Degraded || clean.DegradedReason != "" {
		t.Fatalf("recovered response still degraded: %+v", clean)
	}
}

// TestPanicRecovery: a panicking handler yields the uniform 500 envelope
// (not a dropped connection), is counted, and the server keeps serving.
func TestPanicRecovery(t *testing.T) {
	e, _, ts := newslinkServer(t)
	faults.Arm(faults.New().Panic(faults.Handler, "injected handler panic"))
	body := getErr(t, ts, "/v1/search?q=Taliban&k=2", http.StatusInternalServerError)
	faults.Disarm()
	if body.Code != "internal_panic" {
		t.Fatalf("panic error code = %q", body.Code)
	}
	if got := e.Metrics().Counter("newslink_http_panics_total", "").Value(); got < 1 {
		t.Fatalf("newslink_http_panics_total = %d", got)
	}
	// The server survives: the same route works once the fault is gone.
	var sr SearchResponse
	get(t, ts, "/v1/search?q=Taliban&k=2", http.StatusOK, &sr)
	if len(sr.Results) == 0 {
		t.Fatal("no results after recovery")
	}
}

// TestAdmissionControlSheds: with capacity 1 and no admission wait, a
// request arriving while another is in flight is shed with 429 and a
// Retry-After hint; capacity freed readmits immediately.
func TestAdmissionControlSheds(t *testing.T) {
	e, _, ts := newslinkServer(t, WithMaxInFlight(1))
	// Hold the only slot: a search slowed down via the BON stage.
	faults.Arm(faults.New().Delay(faults.BONStage, 400*time.Millisecond))
	defer faults.Disarm()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/v1/search?q=Taliban&k=2")
		if err == nil {
			resp.Body.Close()
		}
	}()

	// Wait until the slow request is admitted.
	inFlight := e.Metrics().Gauge("newslink_http_in_flight", "")
	deadline := time.Now().Add(2 * time.Second)
	for inFlight.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Get(ts.URL + "/v1/search?q=Taliban&k=2")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	if got := e.Metrics().Counter("newslink_http_shed_total", "").Value(); got < 1 {
		t.Fatalf("newslink_http_shed_total = %d", got)
	}
	wg.Wait()

	// Capacity is back: the next request is served.
	faults.Disarm()
	var sr SearchResponse
	get(t, ts, "/v1/search?q=Taliban&k=2", http.StatusOK, &sr)
	if inFlight.Value() != 0 {
		t.Fatalf("in-flight gauge = %d after idle", inFlight.Value())
	}
}

// TestAdmissionWaitAdmits: a bounded admission wait turns a would-be
// shed into a short queue — the second request waits for the slot and
// succeeds.
func TestAdmissionWaitAdmits(t *testing.T) {
	e, _, ts := newslinkServer(t, WithMaxInFlight(1), WithAdmissionWait(5*time.Second))
	faults.Arm(faults.New().Delay(faults.BONStage, 200*time.Millisecond))
	defer faults.Disarm()

	var wg sync.WaitGroup
	statuses := make([]int, 2)
	for i := range statuses {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/search?q=Taliban&k=2")
			if err != nil {
				return
			}
			statuses[i] = resp.StatusCode
			resp.Body.Close()
		}()
	}
	wg.Wait()
	for i, st := range statuses {
		if st != http.StatusOK {
			t.Fatalf("request %d: status %d, want 200 (no shed under admission wait)", i, st)
		}
	}
	if got := e.Metrics().Counter("newslink_http_shed_total", "").Value(); got != 0 {
		t.Fatalf("newslink_http_shed_total = %d, want 0", got)
	}
}

// TestProbesBypassAdmission: health, readiness and metrics answer even
// when the query routes are saturated.
func TestProbesBypassAdmission(t *testing.T) {
	e, _, ts := newslinkServer(t, WithMaxInFlight(1))
	faults.Arm(faults.New().Delay(faults.BONStage, 400*time.Millisecond))
	defer faults.Disarm()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(ts.URL + "/v1/search?q=Taliban&k=2")
		if err == nil {
			resp.Body.Close()
		}
	}()
	inFlight := e.Metrics().Gauge("newslink_http_in_flight", "")
	deadline := time.Now().Add(2 * time.Second)
	for inFlight.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	for _, path := range []string{"/v1/healthz", "/v1/readyz", "/v1/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d while saturated", path, resp.StatusCode)
		}
	}
	wg.Wait()
}

// TestSemaphoreFIFO exercises the weighted semaphore directly: grants
// come strictly in arrival order and a cancelled waiter leaves the queue
// intact.
func TestSemaphoreFIFO(t *testing.T) {
	s := newSemaphore(2)
	if !s.TryAcquire(2) {
		t.Fatal("TryAcquire on an idle semaphore failed")
	}
	if s.TryAcquire(1) {
		t.Fatal("TryAcquire succeeded past capacity")
	}

	order := make(chan int, 2)
	var wg sync.WaitGroup
	for i, n := range []int64{2, 1} {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Acquire(context.Background(), n); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			order <- i
		}()
		// Serialize arrival so FIFO order is deterministic.
		time.Sleep(20 * time.Millisecond)
	}

	// A cancelled waiter behind the queue disappears without a grant.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := s.Acquire(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Acquire = %v", err)
	}

	s.Release(2)
	if got := <-order; got != 0 {
		t.Fatalf("first grant went to waiter %d, want 0 (FIFO)", got)
	}
	// The weight-1 waiter needs the heavy one to release.
	select {
	case got := <-order:
		t.Fatalf("waiter %d admitted past capacity", got)
	case <-time.After(50 * time.Millisecond):
	}
	s.Release(2)
	if got := <-order; got != 1 {
		t.Fatalf("second grant went to waiter %d", got)
	}
	wg.Wait()
	s.Release(1)
}
