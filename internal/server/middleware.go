package server

import (
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"net/http"
	"runtime/debug"
	"sync/atomic"
	"time"

	"newslink/internal/faults"
	"newslink/internal/obs"
)

// statusWriter captures the status code and body size a handler produced,
// for the access log and the HTTP metrics. wrote records whether anything
// reached the wire, which decides if a panic can still be turned into a
// clean 500 envelope.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
	wrote  bool
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.wrote = true
	w.ResponseWriter.WriteHeader(status)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// newRequestID returns the server's request-ID generator: a per-process
// random prefix plus an atomic sequence number, so IDs are unique across
// restarts without per-request entropy. The ID is attached to the response
// as X-Request-Id and to every access-log line.
func newRequestID() func() string {
	var buf [4]byte
	if _, err := rand.Read(buf[:]); err != nil {
		// Fall back to the zero prefix; IDs stay unique within the process.
		buf = [4]byte{}
	}
	prefix := hex.EncodeToString(buf[:])
	var seq atomic.Int64
	return func() string {
		n := seq.Add(1)
		b := make([]byte, 0, len(prefix)+12)
		b = append(b, prefix...)
		b = append(b, '-')
		b = appendInt(b, n)
		return string(b)
	}
}

func appendInt(b []byte, n int64) []byte {
	if n >= 10 {
		b = appendInt(b, n/10)
	}
	return append(b, byte('0'+n%10))
}

// instrument wraps one route handler with request-ID assignment, panic
// recovery, HTTP metrics (per-route request counter and latency
// histogram) and one structured access-log line per request. The metric
// handles are created once per route at Handler-construction time, so
// nothing in the request path touches the registry.
//
// Panic recovery is the outermost layer: a panicking handler is counted
// (newslink_http_panics_total), logged with its stack, and — when nothing
// has reached the wire yet — answered with the uniform 500 envelope
// instead of a dropped connection. http.ErrAbortHandler is re-raised, as
// it is the sanctioned way to abort a response. Metrics and the access
// log run in the same deferred block, so panicked requests are observed
// like any other.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	reqs := s.registry.Counter("newslink_http_requests_total",
		"HTTP requests served, by route.", obs.L("route", route))
	errs := s.registry.Counter("newslink_http_request_errors_total",
		"HTTP requests answered with status >= 400, by route.", obs.L("route", route))
	latency := s.registry.Histogram("newslink_http_request_seconds",
		"HTTP request latency, by route.", nil, obs.L("route", route))
	return func(w http.ResponseWriter, r *http.Request) {
		id := s.requestID()
		w.Header().Set("X-Request-Id", id)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		defer func() {
			if v := recover(); v != nil {
				if v == http.ErrAbortHandler {
					panic(v)
				}
				s.panics.Inc()
				s.log.LogAttrs(r.Context(), slog.LevelError, "panic",
					slog.String("request_id", id),
					slog.Any("value", v),
					slog.String("stack", string(debug.Stack())),
				)
				if !sw.wrote {
					sw.status = http.StatusInternalServerError
					writeError(sw, http.StatusInternalServerError,
						"internal_panic", "internal server error")
				}
			}
			d := time.Since(start)
			reqs.Inc()
			if sw.status >= 400 {
				errs.Inc()
			}
			latency.Observe(d.Seconds())
			s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("request_id", id),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.String("query", r.URL.RawQuery),
				slog.Int("status", sw.status),
				slog.Int64("bytes", sw.bytes),
				slog.Duration("duration", d),
			)
		}()
		if err := faults.Fire(faults.Handler); err != nil {
			panic(err)
		}
		h(sw, r)
	}
}

// logTrace emits the stage breakdown of a traced request at debug level,
// one attr group per span, so `-v` style debugging does not require the
// client to read the response body.
func (s *Server) logTrace(r *http.Request, tr *obs.Trace) {
	if tr == nil || !s.log.Enabled(r.Context(), slog.LevelDebug) {
		return
	}
	for _, sp := range tr.Spans() {
		attrs := []slog.Attr{
			slog.String("stage", sp.Stage),
			slog.Duration("start", sp.Start),
			slog.Duration("dur", sp.Dur),
		}
		for _, a := range sp.Attrs {
			attrs = append(attrs, slog.Int64(a.Key, a.Val))
		}
		s.log.LogAttrs(r.Context(), slog.LevelDebug, "trace", attrs...)
	}
}
