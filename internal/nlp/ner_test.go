package nlp

import (
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// mapGaz is a simple map-backed gazetteer for tests.
type mapGaz map[string]bool

func (m mapGaz) Contains(label string) bool { return m[Fold(label)] }

func paperGaz() mapGaz {
	return mapGaz{
		"pakistan": true, "taliban": true, "afghan": true, "afghanistan": true,
		"upper dir": true, "swat valley": true, "lahore": true, "peshawar": true,
		"khyber": true, "kunar": true, "waziristan": true,
	}
}

func TestRecognizeMultiWord(t *testing.T) {
	p := NewPipeline(paperGaz())
	doc := p.Process("Taliban militants attacked Upper Dir and the Swat Valley in Pakistan.")
	if len(doc.Sentences) != 1 {
		t.Fatalf("sentences = %d", len(doc.Sentences))
	}
	got := doc.Sentences[0].Labels()
	want := []string{"taliban", "upper dir", "swat valley", "pakistan"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Labels = %v, want %v", got, want)
	}
	for _, m := range doc.Sentences[0].Mentions {
		if !m.Linked {
			t.Errorf("mention %q should be linked", m.Text)
		}
	}
}

func TestRecognizeUnmatched(t *testing.T) {
	p := NewPipeline(paperGaz())
	doc := p.Process("The Taliban met Hakimullah Mehsud near Peshawar.")
	var linked, unlinked []string
	for _, m := range doc.Sentences[0].Mentions {
		if m.Linked {
			linked = append(linked, m.Label)
		} else {
			unlinked = append(unlinked, m.Label)
		}
	}
	sort.Strings(linked)
	if !reflect.DeepEqual(linked, []string{"peshawar", "taliban"}) {
		t.Errorf("linked = %v", linked)
	}
	if !reflect.DeepEqual(unlinked, []string{"hakimullah mehsud"}) {
		t.Errorf("unlinked = %v, want the out-of-KG person", unlinked)
	}
}

func TestRecognizeLongestMatchWins(t *testing.T) {
	gaz := mapGaz{"upper dir": true, "upper": true, "dir": true}
	p := NewPipeline(gaz)
	doc := p.Process("Fighting reached Upper Dir today.")
	got := doc.Sentences[0].Labels()
	if !reflect.DeepEqual(got, []string{"upper dir"}) {
		t.Errorf("Labels = %v, want the longest match only", got)
	}
}

func TestRecognizeSkipsSentenceInitialNoise(t *testing.T) {
	p := NewPipeline(mapGaz{})
	doc := p.Process("However the army advanced.")
	if n := len(doc.Sentences[0].Mentions); n != 0 {
		t.Errorf("got %d mentions from sentence-initial capital, want 0", n)
	}
}

func TestRecognizePunctuationBreaksSpan(t *testing.T) {
	gaz := mapGaz{"lahore": true, "peshawar": true, "lahore peshawar": true}
	p := NewPipeline(gaz)
	doc := p.Process("Blasts hit Lahore, Peshawar yesterday.")
	got := doc.Sentences[0].Labels()
	want := []string{"lahore", "peshawar"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Labels = %v, want %v (comma must break the span)", got, want)
	}
}

func TestEntityDensity(t *testing.T) {
	p := NewPipeline(paperGaz())
	doc := p.Process("Taliban attacked Lahore. The long peaceful afternoon passed without any incident at all.")
	d0 := doc.Sentences[0].EntityDensity()
	d1 := doc.Sentences[1].EntityDensity()
	if d0 <= d1 {
		t.Errorf("density ordering wrong: %v <= %v", d0, d1)
	}
	if d0 != 2.0/3.0 {
		t.Errorf("density = %v, want 2/3", d0)
	}
}

func TestEntityGroupsAndMaximalSets(t *testing.T) {
	// Example 2 from the paper: L4 ⊂ L2 must be ruled out.
	groups := [][]string{
		{"afghan", "pakistan", "taliban"},                   // L1
		{"afghanistan", "taliban", "upper dir"},             // L2
		{"pakistan", "swat valley", "taliban", "upper dir"}, // L3
		{"taliban", "upper dir"},                            // L4 ⊂ L2
	}
	got := MaximalSets(groups)
	if len(got) != 3 {
		t.Fatalf("MaximalSets kept %d sets, want 3: %v", len(got), got)
	}
	for _, g := range got {
		if equal(g, groups[3]) {
			t.Fatal("L4 should have been ruled out")
		}
	}
}

func TestMaximalSetsDuplicates(t *testing.T) {
	groups := [][]string{{"a", "b"}, {"a", "b"}, {"a"}}
	got := MaximalSets(groups)
	if len(got) != 1 || !equal(got[0], []string{"a", "b"}) {
		t.Fatalf("MaximalSets = %v, want just one {a,b}", got)
	}
}

func TestMaximalSetsEmptyAndSingle(t *testing.T) {
	if got := MaximalSets(nil); len(got) != 0 {
		t.Errorf("nil input: %v", got)
	}
	one := [][]string{{"x"}}
	if got := MaximalSets(one); !reflect.DeepEqual(got, one) {
		t.Errorf("single input: %v", got)
	}
}

// Property: every input set is a subset of some surviving set, and no
// survivor is a proper subset of another survivor.
func TestMaximalSetsProperty(t *testing.T) {
	f := func(raw [][]byte) bool {
		var groups [][]string
		for _, bs := range raw {
			set := map[string]bool{}
			for _, b := range bs {
				set[string(rune('a'+int(b)%6))] = true
			}
			if len(set) == 0 {
				continue
			}
			var g []string
			for s := range set {
				g = append(g, s)
			}
			sort.Strings(g)
			groups = append(groups, g)
		}
		out := MaximalSets(groups)
		for _, g := range groups {
			covered := false
			for _, m := range out {
				if subset(g, m) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		for i := range out {
			for j := range out {
				if i != j && len(out[i]) < len(out[j]) && subset(out[i], out[j]) {
					return false
				}
				if i < j && equal(out[i], out[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSubset(t *testing.T) {
	cases := []struct {
		a, b []string
		want bool
	}{
		{[]string{"a"}, []string{"a", "b"}, true},
		{[]string{"a", "c"}, []string{"a", "b"}, false},
		{nil, []string{"a"}, true},
		{[]string{"a"}, nil, false},
		{[]string{"a", "b"}, []string{"a", "b"}, true},
	}
	for _, c := range cases {
		if got := subset(c.a, c.b); got != c.want {
			t.Errorf("subset(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
