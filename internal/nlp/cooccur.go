package nlp

import "sort"

// EntityGroups returns one entity-label set per news segment (sentence),
// skipping segments with no linked entities. Each group is sorted for
// determinism.
func (d *Document) EntityGroups() [][]string {
	var out [][]string
	for i := range d.Sentences {
		labels := d.Sentences[i].Labels()
		if len(labels) == 0 {
			continue
		}
		sort.Strings(labels)
		out = append(out, labels)
	}
	return out
}

// MaximalSets implements Definition 1 (maximal entity co-occurrence set):
// given all identified entity sets U, keep only those that are not proper
// subsets of any other set; among equal sets keep one. Input groups must be
// sorted; output preserves the relative order of the survivors.
func MaximalSets(groups [][]string) [][]string {
	if len(groups) <= 1 {
		return groups
	}
	keep := make([]bool, len(groups))
	for i := range keep {
		keep[i] = true
	}
	for i := range groups {
		for j := range groups {
			if i == j {
				continue
			}
			// L_i is dropped if it is a proper subset of some L_j, or a
			// duplicate of an earlier L_j (ties keep the first occurrence).
			if len(groups[i]) < len(groups[j]) && subset(groups[i], groups[j]) ||
				i > j && equal(groups[i], groups[j]) {
				keep[i] = false
				break
			}
		}
	}
	out := groups[:0:0]
	for i, g := range groups {
		if keep[i] {
			out = append(out, g)
		}
	}
	return out
}

// subset reports whether sorted slice a ⊆ sorted slice b.
func subset(a, b []string) bool {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] > b[j]:
			j++
		default:
			return false
		}
	}
	return i == len(a)
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
