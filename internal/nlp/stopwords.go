package nlp

import "strings"

// stopwords is a compact English stopword list used for BOW term extraction
// and for rejecting single-stopword entity candidates during NER.
var stopwords = map[string]bool{}

func init() {
	for _, w := range strings.Fields(`
a about above after again against all am an and any are as at be because
been before being below between both but by can did do does doing down
during each few for from further had has have having he her here hers
herself him himself his how i if in into is it its itself just me more
most my myself no nor not now of off on once only or other our ours
ourselves out over own same she should so some such than that the their
theirs them themselves then there these they this those through to too
under until up very was we were what when where which while who whom why
will with you your yours yourself yourselves said says say according
would could also may might must shall new news reported report told
`) {
		stopwords[w] = true
	}
}

// IsStopword reports whether the lowercase word is a stopword.
func IsStopword(w string) bool { return stopwords[strings.ToLower(w)] }

// Terms extracts normalized BOW terms from text: lowercased word tokens,
// stopwords removed, light suffix stemming applied. This is the analyzer
// used for the text inverted index (the paper's NS component uses Lucene's
// default analyzer; this plays the same role).
func Terms(text string) []string {
	toks := Tokenize(text)
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if !t.Word {
			continue
		}
		w := strings.ToLower(t.Text)
		if stopwords[w] || len(w) < 2 {
			continue
		}
		out = append(out, Stem(w))
	}
	return out
}

// Stem applies a light suffix-stripping stemmer (a small subset of Porter's
// rules: plural -s/-es/-ies, -ed, -ing, -ly). It never shortens a word below
// three characters.
func Stem(w string) string {
	n := len(w)
	switch {
	case n > 4 && strings.HasSuffix(w, "ies"):
		return w[:n-3] + "y"
	case n > 4 && strings.HasSuffix(w, "sses"):
		return w[:n-2]
	case n > 3 && strings.HasSuffix(w, "es") && !strings.HasSuffix(w, "ses"):
		return w[:n-1] // "bombes"→"bombe" is fine for matching purposes
	case n > 3 && strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && !strings.HasSuffix(w, "us"):
		return w[:n-1]
	case n > 5 && strings.HasSuffix(w, "ing"):
		return undouble(w[:n-3])
	case n > 4 && strings.HasSuffix(w, "ed"):
		return undouble(w[:n-2])
	case n > 4 && strings.HasSuffix(w, "ly"):
		return w[:n-2]
	}
	return w
}

// undouble collapses a doubled final consonant ("stopp" → "stop").
func undouble(w string) string {
	n := len(w)
	if n >= 2 && w[n-1] == w[n-2] && !isVowel(w[n-1]) && w[n-1] != 'l' && w[n-1] != 's' {
		return w[:n-1]
	}
	return w
}

func isVowel(c byte) bool {
	switch c {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}
