package nlp_test

import (
	"fmt"

	"newslink/internal/nlp"
)

type gaz map[string]bool

func (g gaz) Contains(label string) bool { return g[nlp.Fold(label)] }

// Example runs the NLP component on a two-sentence story: NER against a
// gazetteer, then the maximal entity co-occurrence set of Definition 1.
func Example() {
	pipe := nlp.NewPipeline(gaz{
		"pakistan": true, "taliban": true, "upper dir": true, "swat valley": true,
	})
	doc := pipe.Process(
		"Taliban militants attacked Upper Dir and the Swat Valley in Pakistan. " +
			"The Taliban later withdrew from Upper Dir.")
	for i, s := range doc.Sentences {
		fmt.Printf("segment %d: %v\n", i+1, s.Labels())
	}
	groups := nlp.MaximalSets(doc.EntityGroups())
	fmt.Println("maximal sets:", groups)
	// Output:
	// segment 1: [taliban upper dir swat valley pakistan]
	// segment 2: [taliban upper dir]
	// maximal sets: [[pakistan swat valley taliban upper dir]]
}
