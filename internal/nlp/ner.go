package nlp

import "strings"

// Gazetteer is the entity-linking oracle: the knowledge graph's label index
// satisfies it. Matching is exact on the folded label (Section IV: "The
// matching from entity label to entity nodes in the KG follows an exact
// matching manner").
type Gazetteer interface {
	Contains(label string) bool
}

// Mention is one recognized entity mention in a sentence.
type Mention struct {
	Text   string // surface form as it appears in the text
	Label  string // folded label used for linking and grouping
	Linked bool   // true if the gazetteer resolved the label
}

// Sentence is a news segment (the paper uses one sentence per segment,
// Section VII-A4) together with its recognized mentions.
type Sentence struct {
	Text     string
	Terms    []string // normalized BOW terms
	Mentions []Mention
	tokens   int // word token count, for entity density
}

// EntityDensity is the number of recognized entities divided by the number
// of word tokens (Section VII-B, query selection).
func (s *Sentence) EntityDensity() float64 {
	if s.tokens == 0 {
		return 0
	}
	return float64(len(s.Mentions)) / float64(s.tokens)
}

// Labels returns the distinct folded labels of the sentence's linked
// mentions, in first-appearance order.
func (s *Sentence) Labels() []string {
	seen := make(map[string]bool, len(s.Mentions))
	var out []string
	for _, m := range s.Mentions {
		if !m.Linked || seen[m.Label] {
			continue
		}
		seen[m.Label] = true
		out = append(out, m.Label)
	}
	return out
}

// Document is the NLP component's output for one news text.
type Document struct {
	Sentences []Sentence
}

// Pipeline runs tokenization, sentence splitting and gazetteer NER.
// The zero value with a Gazetteer set is ready to use.
type Pipeline struct {
	Gaz Gazetteer
	// MaxSpan is the longest entity mention in words (default 4).
	MaxSpan int
}

// NewPipeline returns a Pipeline over the given gazetteer.
func NewPipeline(gaz Gazetteer) *Pipeline { return &Pipeline{Gaz: gaz, MaxSpan: 4} }

// Process runs the full NLP pipeline on a news text.
func (p *Pipeline) Process(text string) *Document {
	maxSpan := p.MaxSpan
	if maxSpan <= 0 {
		maxSpan = 4
	}
	doc := &Document{}
	for _, st := range SplitSentences(text) {
		toks := Tokenize(st)
		words := 0
		for _, t := range toks {
			if t.Word {
				words++
			}
		}
		s := Sentence{
			Text:     st,
			Terms:    Terms(st),
			Mentions: p.recognize(toks, maxSpan),
			tokens:   words,
		}
		doc.Sentences = append(doc.Sentences, s)
	}
	return doc
}

// recognize finds entity mentions by longest match over spans of capitalized
// word tokens (connectors "of"/"the"/"al" allowed inside a span). A span is
// a mention if the gazetteer contains it; otherwise a maximal capitalized
// span of >=1 words that is not a stopword and not sentence-initial-only is
// reported as an identified-but-unmatched entity (needed for the entity
// matching ratio of Table V).
func (p *Pipeline) recognize(toks []Token, maxSpan int) []Mention {
	// Collect indexes of word tokens.
	var words []int
	for i, t := range toks {
		if t.Word {
			words = append(words, i)
		}
	}
	var out []Mention
	used := make([]bool, len(words))
	for wi := 0; wi < len(words); wi++ {
		if used[wi] {
			continue
		}
		t := toks[words[wi]]
		if !t.Cap || IsStopword(t.Text) {
			continue
		}
		// Try the longest gazetteer match starting here.
		matched := 0
		var matchedText string
		for span := min(maxSpan, len(words)-wi); span >= 1; span-- {
			if !spanOK(toks, words, wi, span) {
				continue
			}
			text := spanText(toks, words, wi, span)
			if p.Gaz != nil && p.Gaz.Contains(text) {
				matched, matchedText = span, text
				break
			}
		}
		if matched > 0 {
			for k := wi; k < wi+matched; k++ {
				used[k] = true
			}
			out = append(out, Mention{Text: matchedText, Label: Fold(matchedText), Linked: true})
			wi += matched - 1
			continue
		}
		// Unmatched: take the maximal run of capitalized words.
		span := 1
		for wi+span < len(words) && span < maxSpan {
			nt := toks[words[wi+span]]
			if !nt.Cap || IsStopword(nt.Text) || !adjacent(toks, words, wi+span) {
				break
			}
			span++
		}
		// Sentence-initial single lowercase-common words are noise; skip a
		// single sentence-initial capitalized word that is a common word.
		if wi == 0 && span == 1 {
			continue
		}
		text := spanText(toks, words, wi, span)
		for k := wi; k < wi+span; k++ {
			used[k] = true
		}
		out = append(out, Mention{Text: text, Label: Fold(text), Linked: false})
		wi += span - 1
	}
	return out
}

// spanOK reports whether words wi..wi+span-1 form a plausible mention: the
// first and last are capitalized, interior words are capitalized or
// connectors, and consecutive words are adjacent (no intervening
// punctuation).
func spanOK(toks []Token, words []int, wi, span int) bool {
	for k := 0; k < span; k++ {
		t := toks[words[wi+k]]
		if k == 0 && !t.Cap {
			return false // mentions start with a capitalized word
		}
		// Numbers are legal inside and at the end of names ("US
		// presidential election 2016", "Swatara Cup 2019").
		if !t.Cap && !connector(t.Text) && !allDigits(t.Text) {
			return false
		}
		if k == span-1 && !t.Cap && !allDigits(t.Text) {
			return false
		}
		if k > 0 && !adjacent(toks, words, wi+k) {
			return false
		}
	}
	return true
}

// allDigits reports whether the token is a number.
func allDigits(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// adjacent reports whether word index w directly follows word w-1 with no
// punctuation token between them.
func adjacent(toks []Token, words []int, w int) bool {
	return words[w] == words[w-1]+1
}

func connector(w string) bool {
	switch strings.ToLower(w) {
	case "of", "the", "al", "and", "de", "la":
		return true
	}
	return false
}

func spanText(toks []Token, words []int, wi, span int) string {
	var sb strings.Builder
	for k := 0; k < span; k++ {
		if k > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(toks[words[wi+k]].Text)
	}
	return sb.String()
}

// Fold normalizes an entity label the same way the KG label index does:
// lowercase with collapsed whitespace. Duplicated here (one line) to keep
// nlp free of a kg dependency.
func Fold(label string) string {
	return strings.Join(strings.Fields(strings.ToLower(label)), " ")
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
