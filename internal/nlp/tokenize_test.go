package nlp

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func wordsOf(toks []Token) []string {
	var out []string
	for _, t := range toks {
		if t.Word {
			out = append(out, t.Text)
		}
	}
	return out
}

func TestTokenizeWords(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"Pakistan and Taliban.", []string{"Pakistan", "and", "Taliban"}},
		{"the Swat Valley, near Upper Dir", []string{"the", "Swat", "Valley", "near", "Upper", "Dir"}},
		{"a co-op isn't odd", []string{"a", "co-op", "isn't", "odd"}},
		{"trailing- dash", []string{"trailing", "dash"}},
		{"2016 election", []string{"2016", "election"}},
		{"", nil},
		{"   ", nil},
	}
	for _, c := range cases {
		if got := wordsOf(Tokenize(c.in)); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) words = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeOffsets(t *testing.T) {
	text := "Hello, Swat Valley!"
	for _, tok := range Tokenize(text) {
		if text[tok.Start:tok.End] != tok.Text {
			t.Errorf("token %q offsets [%d,%d) give %q", tok.Text, tok.Start, tok.End, text[tok.Start:tok.End])
		}
	}
}

func TestTokenizeCapFlag(t *testing.T) {
	toks := Tokenize("Taliban attacked lahore")
	if !toks[0].Cap || toks[1].Cap || toks[2].Cap {
		t.Errorf("cap flags wrong: %+v", toks)
	}
}

func TestTokenizeNeverStalls(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		// Offsets must be monotonically non-decreasing and in range.
		prev := 0
		for _, tok := range toks {
			if tok.Start < prev || tok.End > len(s) || tok.End < tok.Start {
				return false
			}
			prev = tok.Start
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitSentences(t *testing.T) {
	text := "Taliban militants attacked Upper Dir. Pakistani forces responded in Swat Valley! Did Mr. Khan visit the U.S. embassy? He did."
	got := SplitSentences(text)
	want := []string{
		"Taliban militants attacked Upper Dir.",
		"Pakistani forces responded in Swat Valley!",
		"Did Mr. Khan visit the U.S. embassy?",
		"He did.",
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("SplitSentences =\n%q\nwant\n%q", got, want)
	}
}

func TestSplitSentencesParagraphs(t *testing.T) {
	got := SplitSentences("First paragraph without period\n\nSecond one.")
	if len(got) != 2 {
		t.Fatalf("got %q, want 2 sentences", got)
	}
}

func TestSplitSentencesAbbrev(t *testing.T) {
	got := SplitSentences("Gen. Bajwa met Dr. Khan. They talked.")
	if len(got) != 2 {
		t.Fatalf("abbreviations split wrongly: %q", got)
	}
}

func TestSplitSentencesCoversAllText(t *testing.T) {
	f := func(s string) bool {
		joined := strings.Join(SplitSentences(s), " ")
		// Every word token of the input must survive sentence splitting.
		return len(wordsOf(Tokenize(joined))) == len(wordsOf(Tokenize(s)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestStem(t *testing.T) {
	cases := []struct{ in, want string }{
		{"attacks", "attack"},
		{"armies", "army"},
		{"bombing", "bomb"},
		{"stopped", "stop"},
		{"quickly", "quick"},
		{"glasses", "glass"},
		{"news", "new"},
		{"is", "is"},
		{"us", "us"},
	}
	for _, c := range cases {
		if got := Stem(c.in); got != c.want {
			t.Errorf("Stem(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestTerms(t *testing.T) {
	got := Terms("The Taliban attacked the city of Lahore, killing dozens.")
	want := []string{"taliban", "attack", "city", "lahore", "kill", "dozen"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Terms = %v, want %v", got, want)
	}
}

func TestIsStopword(t *testing.T) {
	if !IsStopword("The") || !IsStopword("of") {
		t.Error("expected stopwords")
	}
	if IsStopword("Taliban") {
		t.Error("Taliban is not a stopword")
	}
}
