package nlp

import (
	"testing"
	"unicode/utf8"
)

// FuzzProcess drives the whole NLP pipeline with arbitrary input: it must
// never panic, never loop, and always produce tokens whose offsets map back
// into the input.
func FuzzProcess(f *testing.F) {
	seeds := []string{
		"",
		"Taliban militants attacked Upper Dir and the Swat Valley in Pakistan.",
		"Mr. Smith went to Washington. He returned on Jan. 5.",
		"a.b.c...d!!?!",
		"ALLCAPS TEXT WITH 123 NUMBERS",
		"unicode: 日本語 naïve café — em—dash",
		"\x00\xff\xfe broken bytes",
		"Tabs\tand\nnewlines\r\nand  spaces",
		"trailing- -leading 'quoted' \"double\"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	gaz := mapGaz{"pakistan": true, "upper dir": true}
	pipe := NewPipeline(gaz)
	f.Fuzz(func(t *testing.T, s string) {
		doc := pipe.Process(s)
		for _, sent := range doc.Sentences {
			if sent.Text == "" {
				t.Fatal("empty sentence emitted")
			}
			for _, tok := range Tokenize(sent.Text) {
				if tok.Start < 0 || tok.End > len(sent.Text) || tok.Start >= tok.End {
					t.Fatalf("bad offsets %d..%d in %q", tok.Start, tok.End, sent.Text)
				}
			}
			for _, m := range sent.Mentions {
				if m.Text == "" || m.Label == "" {
					t.Fatalf("empty mention in %q", sent.Text)
				}
				if !utf8.ValidString(m.Label) && utf8.ValidString(s) {
					t.Fatalf("invalid mention label %q from valid input", m.Label)
				}
			}
		}
	})
}
