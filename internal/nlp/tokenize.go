// Package nlp implements the NLP component of NewsLink (Section IV of the
// paper): tokenization, sentence segmentation, named entity recognition and
// the maximal entity co-occurrence set.
//
// The paper uses spaCy's pretrained pipeline; offline we substitute a
// gazetteer NER over the same knowledge-graph label index used for entity
// linking (DESIGN.md §1). Downstream components only consume groups of
// entity labels per news segment, which this package produces identically.
package nlp

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Token is a single lexical token with its byte offsets in the source text.
type Token struct {
	Text  string
	Start int // byte offset of the first byte
	End   int // byte offset one past the last byte
	Word  bool
	Cap   bool // first rune is uppercase
}

// Tokenize splits text into word and punctuation tokens. Words are maximal
// runs of letters, digits, apostrophes and interior hyphens; every other
// non-space rune is its own token.
func Tokenize(text string) []Token {
	var out []Token
	i := 0
	for i < len(text) {
		r, size := rune(text[i]), 1
		if r >= 0x80 {
			r, size = decodeRune(text[i:])
		}
		switch {
		case unicode.IsSpace(r):
			i += size
		case isWordRune(r):
			start := i
			for i < len(text) {
				r2, s2 := rune(text[i]), 1
				if r2 >= 0x80 {
					r2, s2 = decodeRune(text[i:])
				}
				if !isWordRune(r2) && !(r2 == '-' || r2 == '\'') {
					break
				}
				i += s2
			}
			// Trim trailing hyphen/apostrophe.
			end := i
			for end > start && (text[end-1] == '-' || text[end-1] == '\'') {
				end--
			}
			w := text[start:end]
			out = append(out, Token{Text: w, Start: start, End: end, Word: true, Cap: startsUpper(w)})
			// Resume at end so trimmed trailing '-'/'\” re-scan as punctuation.
			i = end
			if i == start { // defensive: never stall
				i++
			}
		default:
			out = append(out, Token{Text: text[i : i+size], Start: i, End: i + size})
			i += size
		}
	}
	return out
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

func startsUpper(s string) bool {
	for _, r := range s {
		return unicode.IsUpper(r)
	}
	return false
}

// decodeRune decodes the first rune of s. Invalid UTF-8 consumes exactly
// one byte (utf8.DecodeRuneInString's contract), so tokenization always
// makes progress on arbitrary byte sequences.
func decodeRune(s string) (rune, int) {
	return utf8.DecodeRuneInString(s)
}

// SplitSentences segments text into sentences. A sentence boundary is a
// '.', '!' or '?' followed by whitespace and an uppercase letter or end of
// text, except after common abbreviations and single initials.
func SplitSentences(text string) []string {
	var out []string
	start := 0
	for i := 0; i < len(text); i++ {
		c := text[i]
		if c != '.' && c != '!' && c != '?' {
			if c == '\n' && i+1 < len(text) && text[i+1] == '\n' {
				// Paragraph break is always a boundary.
				if s := strings.TrimSpace(text[start : i+1]); s != "" {
					out = append(out, s)
				}
				start = i + 1
			}
			continue
		}
		if c == '.' && isAbbrevBefore(text, i) {
			continue
		}
		// Look ahead: whitespace then uppercase (or end).
		j := i + 1
		for j < len(text) && (text[j] == ' ' || text[j] == '\n' || text[j] == '\t' || text[j] == '"' || text[j] == '\'') {
			j++
		}
		if j < len(text) && !startsUpper(text[j:]) && !unicode.IsDigit(rune(text[j])) {
			continue
		}
		if j == i+1 && j < len(text) {
			continue // no whitespace after the period: "3.5", "U.S."
		}
		if s := strings.TrimSpace(text[start : i+1]); s != "" {
			out = append(out, s)
		}
		start = i + 1
	}
	if s := strings.TrimSpace(text[start:]); s != "" {
		out = append(out, s)
	}
	return out
}

var abbrevs = map[string]bool{
	"mr": true, "mrs": true, "ms": true, "dr": true, "prof": true,
	"gen": true, "col": true, "sen": true, "gov": true, "rep": true,
	"st": true, "mt": true, "jr": true, "sr": true, "vs": true,
	"etc": true, "inc": true, "ltd": true, "co": true, "corp": true,
	"jan": true, "feb": true, "mar": true, "apr": true, "jun": true,
	"jul": true, "aug": true, "sep": true, "sept": true, "oct": true,
	"nov": true, "dec": true, "u.s": true, "u.k": true, "a.m": true, "p.m": true,
}

func isAbbrevBefore(text string, dot int) bool {
	start := dot
	for start > 0 {
		c := text[start-1]
		if c == ' ' || c == '\n' || c == '\t' {
			break
		}
		start--
	}
	w := strings.ToLower(strings.TrimLeft(text[start:dot], "(\"'"))
	if abbrevs[w] {
		return true
	}
	// Single initial like "K." in "Anthony K. H. Tung".
	if len(w) == 1 && w[0] >= 'a' && w[0] <= 'z' {
		return true
	}
	// Inner-period abbreviation ("u.s", "p.m") already handled via map.
	return false
}
