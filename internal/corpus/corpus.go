// Package corpus provides the news-document substrate: a deterministic
// template-based news generator driven by the synthetic knowledge graph's
// event catalogue (the stand-in for the paper's CNN and Kaggle corpora, see
// DESIGN.md §1), train/validation/test splitting, and the hand-written
// sample corpus mirroring the paper's running example (Figure 1) and case
// study (Figure 6).
package corpus

import "newslink/internal/kg"

// Article is one news document.
type Article struct {
	ID    int
	Title string
	Text  string
	Topic kg.Topic
	// Event is the KG event node the article narrates (0 for hand-written
	// sample articles that narrate no generated event).
	Event kg.NodeID
}

// Split holds the 80/10/10 partition of Section VII-A3.
type Split struct {
	Train, Validation, Test []Article
}

// MakeSplit partitions articles deterministically: a seeded shuffle followed
// by an 80/10/10 cut (training data trains DOC2VEC and LDA; evaluation runs
// on the test slice).
func MakeSplit(arts []Article, seed int64) Split {
	shuffled := append([]Article(nil), arts...)
	rng := newRand(seed)
	for i := len(shuffled) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	n := len(shuffled)
	nTrain := n * 8 / 10
	nVal := n / 10
	return Split{
		Train:      shuffled[:nTrain],
		Validation: shuffled[nTrain : nTrain+nVal],
		Test:       shuffled[nTrain+nVal:],
	}
}
