// Package corpus provides the news-document substrate: a deterministic
// template-based news generator driven by the synthetic knowledge graph's
// event catalogue (the stand-in for the paper's CNN and Kaggle corpora, see
// DESIGN.md §1), train/validation/test splitting, and the hand-written
// sample corpus mirroring the paper's running example (Figure 1) and case
// study (Figure 6).
package corpus

import "newslink/internal/kg"

// Article is one news document.
type Article struct {
	ID    int
	Title string
	Text  string
	Topic kg.Topic
	// Event is the KG event node the article narrates (0 for hand-written
	// sample articles that narrate no generated event).
	Event kg.NodeID
	// Time is the article's event timestamp (Unix seconds). Generate and
	// Stream stamp strictly monotone times in arrival order, so a time
	// window over a generated corpus selects a contiguous, predictable
	// fraction of it — which is what makes temporal filters testable and
	// benchmarkable. Hand-written sample articles carry no timestamp (0).
	Time int64
}

// Generated article timestamps: the wire starts at 2020-01-01T00:00:00Z
// and delivers one article every five minutes. Fixed spacing (rather than
// jitter from the content RNG) keeps article text byte-identical to
// earlier corpus versions and makes a window's selectivity proportional
// to its width.
const (
	StreamEpoch     int64 = 1577836800
	ArticleInterval int64 = 300
)

// stampTimes assigns strictly monotone arrival timestamps in place.
func stampTimes(arts []Article) []Article {
	for i := range arts {
		arts[i].Time = StreamEpoch + int64(i)*ArticleInterval
	}
	return arts
}

// Split holds the 80/10/10 partition of Section VII-A3.
type Split struct {
	Train, Validation, Test []Article
}

// MakeSplit partitions articles deterministically: a seeded shuffle followed
// by an 80/10/10 cut (training data trains DOC2VEC and LDA; evaluation runs
// on the test slice).
func MakeSplit(arts []Article, seed int64) Split {
	shuffled := append([]Article(nil), arts...)
	rng := newRand(seed)
	for i := len(shuffled) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	}
	n := len(shuffled)
	nTrain := n * 8 / 10
	nVal := n / 10
	return Split{
		Train:      shuffled[:nTrain],
		Validation: shuffled[nTrain : nTrain+nVal],
		Test:       shuffled[nTrain+nVal:],
	}
}
