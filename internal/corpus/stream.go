package corpus

import (
	"math/rand"

	"newslink/internal/kg"
)

// Stream produces n articles ordered as a live news wire would deliver
// them: stories arrive one at a time, and instead of the round-robin
// event schedule of Generate, coverage follows how real news develops —
// a small set of stories is "hot" at any moment, each hot story keeps
// producing follow-up articles that mention the same participants and
// places, and new stories break while old ones fade. The same entities
// therefore recur across articles that are far apart in arrival order,
// which is exactly the workload that exercises a streaming indexer's
// document-frequency and merge behaviour (fresh segments keep re-citing
// terms and KG nodes the older segments already posted).
//
// The same (world, profile, n, seed) always yields identical articles;
// IDs are assigned in arrival order starting at 0, and every article is
// stamped with a strictly monotone event timestamp (StreamEpoch plus
// ArticleInterval per arrival).
func Stream(w *kg.World, p Profile, n int, seed int64) []Article {
	rng := newRand(seed)
	g := w.Graph
	out := make([]Article, 0, n)
	if len(w.Events) == 0 || n <= 0 {
		return out
	}
	// hot holds the currently developing stories, oldest first. One story
	// is hot at the start; a new one breaks roughly every DocsPerEvent
	// articles, retiring the oldest once the window is full — so each
	// event's coverage is spread over a stretch of the stream instead of
	// being contiguous.
	const hotWindow = 4
	breakRate := 1 / float64(maxInt(p.DocsPerEvent, 1)*hotWindow)
	hot := []int{0}
	next := 1
	for len(out) < n {
		if rng.Float64() < p.NoEntityDocRate {
			out = append(out, briefArticle(len(out), rng))
			continue
		}
		if rng.Float64() < breakRate {
			hot = append(hot, next%len(w.Events))
			next++
			if len(hot) > hotWindow {
				hot = hot[1:]
			}
		}
		ev := w.Events[pickHot(hot, rng)]
		out = append(out, genArticle(g, ev, p, len(out), rng))
	}
	return stampTimes(out)
}

// pickHot favours the most recently broken stories: fresh news gets the
// densest coverage, older stories taper off.
func pickHot(hot []int, rng *rand.Rand) int {
	// Geometric-ish bias toward the end of the window.
	i := len(hot) - 1
	for i > 0 && rng.Float64() < 0.4 {
		i--
	}
	return hot[i]
}
