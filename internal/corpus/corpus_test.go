package corpus

import (
	"reflect"
	"strings"
	"testing"

	"newslink/internal/kg"
	"newslink/internal/nlp"
)

func world(t *testing.T) *kg.World {
	t.Helper()
	return kg.Generate(kg.DefaultConfig(3))
}

func TestGenerateDeterministic(t *testing.T) {
	w := world(t)
	a := Generate(w, CNNLike(), 40, 9)
	b := Generate(w, CNNLike(), 40, 9)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Generate not deterministic")
	}
	c := Generate(w, CNNLike(), 40, 10)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds gave identical corpora")
	}
}

func TestGenerateShape(t *testing.T) {
	w := world(t)
	for _, p := range []Profile{CNNLike(), KaggleLike()} {
		arts := Generate(w, p, 60, 5)
		if len(arts) != 60 {
			t.Fatalf("%s: %d articles", p.Name, len(arts))
		}
		topics := map[kg.Topic]int{}
		briefs := 0
		for i, a := range arts {
			if a.ID != i {
				t.Fatalf("%s: article %d has ID %d", p.Name, i, a.ID)
			}
			if a.Topic == "brief" {
				// Wire briefs intentionally mention no KG entity.
				briefs++
				if a.Event != 0 {
					t.Fatalf("%s: brief with event: %+v", p.Name, a)
				}
				continue
			}
			if a.Title == "" || a.Text == "" || a.Event == 0 {
				t.Fatalf("%s: incomplete article %+v", p.Name, a)
			}
			topics[a.Topic]++
			n := len(nlp.SplitSentences(a.Text))
			if n < p.MinSentences {
				t.Fatalf("%s: article %d has %d sentences, min %d", p.Name, i, n, p.MinSentences)
			}
		}
		if p.NoEntityDocRate > 0 && briefs == 0 {
			t.Fatalf("%s: no wire briefs generated", p.Name)
		}
		if len(topics) < 4 {
			t.Fatalf("%s: poor topic mix %v", p.Name, topics)
		}
	}
}

func TestGeneratedEntitiesResolveInKG(t *testing.T) {
	w := world(t)
	arts := Generate(w, CNNLike(), 30, 7)
	pipe := nlp.NewPipeline(w.Graph.Index())
	linked, total := 0, 0
	for _, a := range arts {
		doc := pipe.Process(a.Text)
		for _, s := range doc.Sentences {
			for _, m := range s.Mentions {
				total++
				if m.Linked {
					linked++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no entities recognized at all")
	}
	ratio := float64(linked) / float64(total)
	// Table V reports ~96-97%; the generator injects a few percent noise.
	if ratio < 0.85 || ratio > 0.999 {
		t.Fatalf("entity matching ratio = %.3f, want within (0.85, 0.999)", ratio)
	}
}

func TestGenerateRedundancy(t *testing.T) {
	w := world(t)
	p := CNNLike()
	p.NoEntityDocRate = 0 // no briefs, so event alignment is exact
	arts := Generate(w, p, 12, 1)
	// Consecutive DocsPerEvent articles narrate the same event.
	for i := 0; i+1 < p.DocsPerEvent; i++ {
		if arts[i].Event != arts[i+1].Event {
			t.Fatalf("articles %d and %d narrate different events", i, i+1)
		}
	}
	if arts[0].Event == arts[p.DocsPerEvent].Event {
		t.Fatal("event did not advance after DocsPerEvent articles")
	}
	if arts[0].Text == arts[1].Text {
		t.Fatal("same-event articles are identical")
	}
}

func TestMakeSplit(t *testing.T) {
	var arts []Article
	for i := 0; i < 100; i++ {
		arts = append(arts, Article{ID: i})
	}
	s := MakeSplit(arts, 4)
	if len(s.Train) != 80 || len(s.Validation) != 10 || len(s.Test) != 10 {
		t.Fatalf("split sizes %d/%d/%d", len(s.Train), len(s.Validation), len(s.Test))
	}
	seen := map[int]int{}
	for _, a := range s.Train {
		seen[a.ID]++
	}
	for _, a := range s.Validation {
		seen[a.ID]++
	}
	for _, a := range s.Test {
		seen[a.ID]++
	}
	if len(seen) != 100 {
		t.Fatalf("split lost documents: %d distinct", len(seen))
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("doc %d appears %d times", id, c)
		}
	}
	s2 := MakeSplit(arts, 4)
	if !reflect.DeepEqual(s.Test, s2.Test) {
		t.Fatal("split not deterministic")
	}
}

func TestSampleCorpus(t *testing.T) {
	g, arts := Sample()
	if g.NumNodes() < 15 || len(arts) < 8 {
		t.Fatalf("sample too small: %d nodes, %d articles", g.NumNodes(), len(arts))
	}
	// The Figure 1 entities must resolve.
	for _, l := range []string{"Khyber", "Taliban", "Upper Dir", "Swat Valley", "Pakistan",
		"Clinton", "Trump", "Sanders", "FBI", "US presidential election 2016"} {
		if len(g.Lookup(l)) == 0 {
			t.Errorf("sample KG missing %s", l)
		}
	}
	// The sample articles' entities resolve through the NLP pipeline.
	pipe := nlp.NewPipeline(g.Index())
	doc := pipe.Process(arts[0].Text)
	groups := nlp.MaximalSets(doc.EntityGroups())
	if len(groups) == 0 {
		t.Fatal("no entity groups in the Figure 1 article")
	}
	joined := strings.Join(groups[0], " ")
	if !strings.Contains(joined, "taliban") && !strings.Contains(joined, "pakistan") {
		t.Fatalf("unexpected first group: %v", groups)
	}
}

func TestFillTemplate(t *testing.T) {
	rng := newRand(1)
	got := fillTemplate("%E met %E for a %W %N. 100%% sure %Z",
		func() string { return "X" }, []string{"w"}, rng)
	if !strings.HasPrefix(got, "X met X for a w ") {
		t.Fatalf("fillTemplate = %q", got)
	}
	if !strings.Contains(got, "100%%") && !strings.Contains(got, "100%") {
		t.Fatalf("literal %% lost: %q", got)
	}
	if !strings.Contains(got, "%Z") {
		t.Fatalf("unknown verb should pass through: %q", got)
	}
}

func TestGenerateEmptyInputs(t *testing.T) {
	w := world(t)
	if got := Generate(w, CNNLike(), 0, 1); len(got) != 0 {
		t.Fatal("n=0 should generate nothing")
	}
	empty := &kg.World{Graph: w.Graph}
	if got := Generate(empty, CNNLike(), 5, 1); len(got) != 0 {
		t.Fatal("no events should generate nothing")
	}
}
