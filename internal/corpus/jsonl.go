package corpus

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// WriteJSONL serializes articles as JSON lines, the interchange format of
// cmd/newslink (one {"id","title","text","topic"} object per line).
func WriteJSONL(w io.Writer, arts []Article) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range arts {
		if err := enc.Encode(&arts[i]); err != nil {
			return fmt.Errorf("corpus: encoding article %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL parses a JSON-lines corpus written by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Article, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var out []Article
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var a Article
		if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
			return nil, fmt.Errorf("corpus: line %d: %w", line, err)
		}
		out = append(out, a)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
