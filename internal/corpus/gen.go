package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"newslink/internal/kg"
)

// Profile describes a corpus flavour. The two presets differ in document
// length, entity density, noise and redundancy, mirroring how the paper's
// CNN and Kaggle corpora differ in character.
type Profile struct {
	Name string
	// MinSentences..MaxSentences bounds the document length.
	MinSentences, MaxSentences int
	// NoiseEntityRate is the probability that an entity slot is filled with
	// an out-of-KG name; it drives the entity matching ratio of Table V
	// below 100%.
	NoiseEntityRate float64
	// FillerRate is the probability of inserting an entity-free filler
	// sentence after each generated sentence.
	FillerRate float64
	// DocsPerEvent controls redundancy: how many distinct articles narrate
	// the same event.
	DocsPerEvent int
	// NoEntityDocRate is the fraction of wire-brief articles that mention no
	// KG entity at all; such documents receive no subgraph embedding, which
	// is what drives the paper's corpus coverage below 100% (Section
	// VII-A2: 96.3% of CNN and 91.2% of Kaggle documents kept).
	NoEntityDocRate float64
}

// CNNLike mirrors the paper's CNN corpus: longer stories, lower noise.
func CNNLike() Profile {
	return Profile{Name: "cnn", MinSentences: 7, MaxSentences: 11,
		NoiseEntityRate: 0.03, FillerRate: 0.25, DocsPerEvent: 3, NoEntityDocRate: 0.037}
}

// KaggleLike mirrors the paper's Kaggle all-the-news corpus: shorter,
// noisier documents.
func KaggleLike() Profile {
	return Profile{Name: "kaggle", MinSentences: 5, MaxSentences: 9,
		NoiseEntityRate: 0.045, FillerRate: 0.35, DocsPerEvent: 3, NoEntityDocRate: 0.075}
}

// Generate produces n articles from the world's event catalogue. The same
// (world, profile, n, seed) always yields identical articles, each
// stamped with a strictly monotone event timestamp (see Article.Time).
func Generate(w *kg.World, p Profile, n int, seed int64) []Article {
	rng := newRand(seed)
	g := w.Graph
	out := make([]Article, 0, n)
	if len(w.Events) == 0 || n <= 0 {
		return out
	}
	for i := 0; len(out) < n; i++ {
		if rng.Float64() < p.NoEntityDocRate {
			out = append(out, briefArticle(len(out), rng))
			continue
		}
		ev := w.Events[(i/maxInt(p.DocsPerEvent, 1))%len(w.Events)]
		out = append(out, genArticle(g, ev, p, len(out), rng))
	}
	return stampTimes(out)
}

// briefArticle writes a short wire brief that names no KG entity: filler
// prose plus at most an unlinkable minor figure. Its entity groups are
// empty or unlinkable, so the NE component produces no embedding.
func briefArticle(id int, rng *rand.Rand) Article {
	var sb strings.Builder
	n := 3 + rng.Intn(3)
	for s := 0; s < n; s++ {
		sb.WriteString(fillerSentences[rng.Intn(len(fillerSentences))])
		sb.WriteByte('\n')
	}
	if rng.Float64() < 0.5 {
		fmt.Fprintf(&sb, "%s declined to comment on the matter.\n", fakeName(rng))
	}
	return Article{ID: id, Title: "In brief", Text: sb.String(), Topic: "brief"}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// entityPool gathers the labels an article about ev may mention: the
// participants and location first (core), then KG context within one hop.
func entityPool(g *kg.Graph, ev kg.Event) (core, context []string) {
	seen := map[string]bool{}
	add := func(list *[]string, id kg.NodeID) {
		l := g.Label(id)
		if !seen[l] {
			seen[l] = true
			*list = append(*list, l)
		}
	}
	for _, p := range ev.Participants {
		add(&core, p)
	}
	add(&core, ev.Location)
	add(&context, ev.Country)
	for _, p := range append([]kg.NodeID{ev.Location}, ev.Participants...) {
		for i, a := range g.Neighbors(p) {
			if i >= 4 {
				break
			}
			if g.Node(a.To).Kind == kg.KindEvent {
				continue // event nodes have unwieldy generated labels
			}
			add(&context, a.To)
		}
	}
	return core, context
}

// genArticle writes one article about an event.
func genArticle(g *kg.Graph, ev kg.Event, p Profile, id int, rng *rand.Rand) Article {
	core, context := entityPool(g, ev)
	words := topicWords[ev.Topic]
	nSent := p.MinSentences
	if p.MaxSentences > p.MinSentences {
		nSent += rng.Intn(p.MaxSentences - p.MinSentences + 1)
	}
	pickEntity := func() string {
		if rng.Float64() < p.NoiseEntityRate {
			return fakeName(rng)
		}
		// Core entities twice as likely as one-hop context.
		if len(context) == 0 || rng.Float64() < 0.66 {
			return core[rng.Intn(len(core))]
		}
		return context[rng.Intn(len(context))]
	}
	var sb strings.Builder
	title := fmt.Sprintf("%s %s in %s", core[0], words[rng.Intn(len(words))], g.Label(ev.Location))
	// The opening sentence anchors the article to its event by name, so the
	// partial-query task has an exact handle on the document. A minority of
	// leads carry an attribution to a minor figure the KG does not know —
	// these unlinkable mentions are what keeps the entity matching ratio of
	// Table V below 100%, as with real NER.
	attribution := ""
	if rng.Float64() < 0.12 {
		attribution = ", " + fakeName(rng) + " reported"
	}
	fmt.Fprintf(&sb, "The %s drew attention to %s as %s %s%s.\n",
		g.Label(ev.Node), g.Label(ev.Location), core[0], words[rng.Intn(len(words))], attribution)
	for s := 1; s < nSent; s++ {
		sent := fillTemplate(templates[rng.Intn(len(templates))], pickEntity, words, rng)
		// Sentence-initial capitalization keeps the sentence splitter honest.
		sb.WriteString(strings.ToUpper(sent[:1]) + sent[1:])
		sb.WriteByte('\n')
		if rng.Float64() < p.FillerRate {
			sb.WriteString(fillerSentences[rng.Intn(len(fillerSentences))])
			sb.WriteByte('\n')
		}
	}
	return Article{ID: id, Title: title, Text: sb.String(), Topic: ev.Topic, Event: ev.Node}
}

// fillTemplate substitutes %E/%W/%N slots.
func fillTemplate(tpl string, entity func() string, words []string, rng *rand.Rand) string {
	var sb strings.Builder
	for i := 0; i < len(tpl); i++ {
		if tpl[i] != '%' || i+1 >= len(tpl) {
			sb.WriteByte(tpl[i])
			continue
		}
		switch tpl[i+1] {
		case 'E':
			sb.WriteString(entity())
		case 'W':
			sb.WriteString(words[rng.Intn(len(words))])
		case 'N':
			sb.WriteString(neutralWords[rng.Intn(len(neutralWords))])
		default:
			sb.WriteByte(tpl[i])
			sb.WriteByte(tpl[i+1])
		}
		i++
	}
	return sb.String()
}

// fakeName fabricates an out-of-KG entity name (a person or place the NER
// will identify but fail to link, as real NER does ~3-4% of the time).
// Names are drawn from a small recurring pool — in real news the same minor
// figures appear across many stories, so an unlinkable name must not act as
// a unique document fingerprint.
var fakeOnsets = []string{"Hak", "Mur", "Zel", "Tar", "Bol", "Qui", "Ner", "Vash", "Gol", "Rim"}
var fakeCodas = []string{"imov", "adze", "ston", "berg", "quist", "ario", "enko", "ulla", "ette", "ovic"}

const fakeNamePool = 24

func fakeName(rng *rand.Rand) string {
	i := rng.Intn(fakeNamePool)
	j := (i*7 + 3) % fakeNamePool
	return fakeOnsets[i%len(fakeOnsets)] + fakeCodas[i/len(fakeOnsets)%len(fakeCodas)] +
		" " + fakeOnsets[j%len(fakeOnsets)] + fakeCodas[j/len(fakeOnsets)%len(fakeCodas)]
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
