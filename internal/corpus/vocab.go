package corpus

import "newslink/internal/kg"

// Topical filler vocabulary: each generated sentence draws a few of these so
// that documents carry bag-of-words signal beyond entity names, as real news
// text does. Words are grouped by topic so BOW models can separate themes.
var topicWords = map[kg.Topic][]string{
	kg.TopicMilitary: {
		"militants", "attacked", "convoy", "bombing", "blast", "offensive",
		"soldiers", "insurgents", "clashes", "wounded", "airstrike", "troops",
		"checkpoint", "ceasefire", "ambush", "shelling", "casualties", "raid",
	},
	kg.TopicPolitics: {
		"election", "ballot", "campaign", "candidate", "coalition", "votes",
		"parliament", "polls", "debate", "manifesto", "turnout", "runoff",
		"opposition", "incumbent", "landslide", "referendum", "cabinet",
	},
	kg.TopicSports: {
		"tournament", "final", "stadium", "championship", "goal", "trophy",
		"fixture", "squad", "coach", "supporters", "penalty", "semifinal",
		"undefeated", "comeback", "scoreline", "kickoff", "title",
	},
	kg.TopicEntertainment: {
		"premiere", "ceremony", "nomination", "audience", "director",
		"festival", "spotlight", "soundtrack", "ovation", "critics",
		"blockbuster", "gala", "screenplay", "ensemble", "applause",
	},
	kg.TopicBusiness: {
		"regulators", "merger", "shares", "earnings", "investigation",
		"compliance", "investors", "quarterly", "acquisition", "filings",
		"antitrust", "penalty", "disclosure", "shareholders", "audit",
	},
}

// neutralWords pad sentences of any topic.
var neutralWords = []string{
	"officials", "reported", "yesterday", "sources", "confirmed", "region",
	"residents", "statement", "witnesses", "authorities", "spokesman",
	"announced", "meanwhile", "reportedly", "response", "situation",
}

// templates are sentence skeletons; %E slots are filled with entity labels,
// %W with topical words, %N with neutral words. Entity density is kept
// close to real news prose (roughly one entity per 6-9 words), so BOW
// matching faces the same generic-word confusability the paper's corpora
// exhibit.
var templates = []string{
	"%E %W near %E in %E as %N %N the %W through the %W and the %N %N.",
	"%N in %E %N that %E %W the %W after the %W, and the %N %N no further %W.",
	"The %W in %E %N %E and %E, %N said, while %N %N the %W for another %W.",
	"%E %N a %W against %E in %E, %N %N, amid a %W that %N %N for weeks.",
	"%N %N the %W as %E and %E %N in %E despite the %N %W and the %W.",
	"According to %N, %E %W during the %W in %E, though %N %N the %W was a %W.",
	"%E's %W %N the %N across %E, where the %W and the %W %N the %N.",
	"A %W %N %E as %N %N the %W in %E, and %N %N a wider %W in the %N.",
	"The %W and the %W %N %N across the region as %E %N the %W.",
	"%N %N that the %W would %N the %W, a %N %N for %E this season.",
}

// fillerSentences carry no entities at all; they dilute entity density so
// the largest-entity-density query selection (Section VII-B) is meaningful.
var fillerSentences = []string{
	"Dozens were affected and the situation remained tense through the night.",
	"Observers said the development had been expected for several weeks.",
	"The announcement drew mixed reactions from commentators and analysts.",
	"Further details are expected to emerge in the coming days.",
	"Local media carried extensive coverage throughout the afternoon.",
	"It was the third such development this year, according to records.",
}
