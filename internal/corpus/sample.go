package corpus

import "newslink/internal/kg"

// Sample returns the hand-written knowledge graph and news corpus that
// mirror the paper's running example (Figure 1 / Tables I-II: Pakistan and
// Taliban stories around the Khyber region) and its case study (Figure 6 /
// Table VI: the 2016 US presidential election). Examples and the case-study
// experiment run on this corpus so their output can be compared with the
// paper's figures directly.
func Sample() (*kg.Graph, []Article) {
	b := kg.NewBuilder(32)
	// --- Figure 1 neighbourhood ---
	khyber := b.AddNode("Khyber", kg.KindGPE, "a province of Pakistan bordering Afghanistan")
	waziristan := b.AddNode("Waziristan", kg.KindGPE, "a mountainous region in Khyber")
	taliban := b.AddNode("Taliban", kg.KindOrg, "a militant movement active near Khyber")
	kunar := b.AddNode("Kunar", kg.KindGPE, "a province adjacent to Khyber")
	lahore := b.AddNode("Lahore", kg.KindGPE, "a major city of Pakistan near Khyber routes")
	peshawar := b.AddNode("Peshawar", kg.KindGPE, "the capital of Khyber")
	pakistan := b.AddNode("Pakistan", kg.KindGPE, "a country in South Asia")
	upperDir := b.AddNode("Upper Dir", kg.KindGPE, "a district of Khyber")
	swat := b.AddNode("Swat Valley", kg.KindGPE, "a river valley in Khyber")
	afghanistan := b.AddNode("Afghanistan", kg.KindGPE, "a country bordering Pakistan")
	army := b.AddNode("Pakistani Army", kg.KindOrg, "the land forces of Pakistan")

	b.AddEdgeByName(taliban, kunar, "active in", 1)
	b.AddEdgeByName(taliban, waziristan, "active in", 1)
	b.AddEdgeByName(kunar, khyber, "adjacent to", 1)
	b.AddEdgeByName(waziristan, khyber, "located in", 1)
	b.AddEdgeByName(upperDir, khyber, "located in", 1)
	b.AddEdgeByName(swat, khyber, "located in", 1)
	b.AddEdgeByName(peshawar, khyber, "capital of", 1)
	b.AddEdgeByName(lahore, khyber, "connected to", 1)
	b.AddEdgeByName(khyber, pakistan, "located in", 1)
	b.AddEdgeByName(kunar, afghanistan, "located in", 1)
	b.AddEdgeByName(afghanistan, pakistan, "shares border with", 1)
	b.AddEdgeByName(army, pakistan, "armed forces of", 1)

	// --- Figure 6 neighbourhood ---
	election := b.AddNode("US presidential election 2016", kg.KindEvent, "the 58th US presidential election")
	clinton := b.AddNode("Clinton", kg.KindPerson, "US politician and 2016 presidential candidate")
	trump := b.AddNode("Trump", kg.KindPerson, "US businessman and 2016 presidential candidate")
	sanders := b.AddNode("Sanders", kg.KindPerson, "US senator and 2016 presidential candidate")
	fbi := b.AddNode("FBI", kg.KindOrg, "the US federal investigative agency")
	emails := b.AddNode("Email controversy", kg.KindEvent, "the investigation of a private email server")
	blm := b.AddNode("Black Lives Matter", kg.KindOrg, "a social justice movement")
	usa := b.AddNode("United States", kg.KindGPE, "a country in North America")
	democrats := b.AddNode("Democratic Party", kg.KindOrg, "a major US political party")

	// Surface-form aliases: the NER links these exactly like canonical
	// labels (Wikidata-style alias lists).
	b.AddAlias(clinton, "Hillary Clinton")
	b.AddAlias(trump, "Donald Trump")
	b.AddAlias(sanders, "Bernie Sanders")
	b.AddAlias(election, "US election")
	b.AddAlias(blm, "BLM")
	b.AddAlias(taliban, "Taliban movement")

	b.AddEdgeByName(clinton, election, "candidate in", 1)
	b.AddEdgeByName(trump, election, "candidate in", 1)
	b.AddEdgeByName(sanders, election, "candidate in", 1)
	b.AddEdgeByName(fbi, emails, "investigator of", 1)
	b.AddEdgeByName(clinton, emails, "subject of", 1)
	b.AddEdgeByName(fbi, clinton, "investigated", 1)
	b.AddEdgeByName(sanders, blm, "embraced", 1)
	b.AddEdgeByName(blm, election, "influenced", 1)
	b.AddEdgeByName(election, usa, "held in", 1)
	b.AddEdgeByName(clinton, democrats, "member of", 1)
	b.AddEdgeByName(sanders, democrats, "caucuses with", 1)
	b.AddEdgeByName(fbi, usa, "agency of", 1)

	g := b.Build()

	arts := []Article{
		{ID: 0, Topic: kg.TopicMilitary, Title: "Military conflicts between Pakistan and Taliban",
			Text: "Military conflicts intensified between Pakistan and Taliban fighters this week.\n" +
				"Taliban militants clashed with security forces in Upper Dir and the Swat Valley.\n" +
				"Residents of Upper Dir reported heavy shelling as the Taliban withdrew northward.\n" +
				"Officials in Pakistan said reinforcements from the Pakistani Army were deployed to Swat Valley.\n" +
				"The fighting has displaced thousands of families across the region.\n"},
		{ID: 1, Topic: kg.TopicMilitary, Title: "Bombing attack by Taliban in Pakistan",
			Text: "A bombing attack struck Lahore on Friday, and Taliban spokesmen claimed responsibility.\n" +
				"Hours later a second blast hit a market in Peshawar, police in Pakistan confirmed.\n" +
				"Taliban statements warned of further attacks against cities across Pakistan.\n" +
				"Authorities in Lahore tightened security around government buildings.\n"},
		{ID: 2, Topic: kg.TopicMilitary, Title: "Border clashes near Afghanistan",
			Text: "Skirmishes broke out along the border with Afghanistan, officials said.\n" +
				"The Pakistani Army shelled positions in Kunar after rockets landed near checkpoints.\n" +
				"Commanders in Afghanistan denied that Taliban units had crossed the frontier.\n"},
		{ID: 3, Topic: kg.TopicPolitics, Title: "Sanders comments on Clinton email inquiry",
			Text: "Sanders said voters were tired of hearing about Clinton and the emails.\n" +
				"The FBI continued interviewing aides about the private server, officials confirmed.\n" +
				"Clinton dismissed the controversy as a distraction from the campaign.\n"},
		{ID: 4, Topic: kg.TopicPolitics, Title: "Trump rallies as Sanders embraces movement",
			Text: "Trump held a rally while Sanders embraced the Black Lives Matter movement on stage.\n" +
				"Sanders announced presidential ambitions to cheering supporters.\n" +
				"Aides to Trump said the campaign welcomed the contrast.\n"},
		{ID: 5, Topic: kg.TopicPolitics, Title: "Democratic Party debates strategy",
			Text: "The Democratic Party gathered to debate strategy for the autumn.\n" +
				"Clinton and Sanders supporters argued over the platform late into the night.\n" +
				"Party officials in the United States urged unity ahead of the vote.\n"},
		{ID: 6, Topic: kg.TopicSports, Title: "Cricket final thrills Lahore",
			Text: "A dramatic cricket final thrilled spectators in Lahore on Sunday.\n" +
				"The winning captain praised the crowd and the groundskeepers.\n" +
				"Celebrations continued across the city into the early hours.\n"},
		{ID: 7, Topic: kg.TopicBusiness, Title: "Markets rally on earnings",
			Text: "Stock markets rallied after quarterly earnings beat expectations.\n" +
				"Analysts said investors had priced in a weaker season.\n" +
				"Trading volumes reached their highest level this year.\n"},
	}
	return g, arts
}
