package corpus

import (
	"reflect"
	"testing"

	"newslink/internal/kg"
)

func TestStreamDeterministic(t *testing.T) {
	w := world(t)
	a := Stream(w, CNNLike(), 80, 9)
	b := Stream(w, CNNLike(), 80, 9)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Stream not deterministic")
	}
	c := Stream(w, CNNLike(), 80, 10)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds gave identical streams")
	}
}

func TestStreamShape(t *testing.T) {
	w := world(t)
	arts := Stream(w, CNNLike(), 120, 5)
	if len(arts) != 120 {
		t.Fatalf("%d articles", len(arts))
	}
	for i, a := range arts {
		if a.ID != i {
			t.Fatalf("article %d has ID %d (want arrival order)", i, a.ID)
		}
		if a.Text == "" {
			t.Fatalf("article %d empty", i)
		}
	}
}

// TestStreamEntitiesRecurOverTime: the property that distinguishes a
// stream from a shuffled corpus — the same event (and so the same
// entities) is covered by articles spread across a stretch of the
// stream, and coverage moves on: late articles cover events early ones
// did not.
func TestStreamEntitiesRecurOverTime(t *testing.T) {
	w := world(t)
	arts := Stream(w, CNNLike(), 200, 7)
	first := map[kg.NodeID]int{}
	last := map[kg.NodeID]int{}
	for i, a := range arts {
		if a.Topic == "brief" {
			continue
		}
		if _, ok := first[a.Event]; !ok {
			first[a.Event] = i
		}
		last[a.Event] = i
	}
	if len(first) < 3 {
		t.Fatalf("only %d events covered in 200 articles", len(first))
	}
	spread := 0
	for ev, f := range first {
		if last[ev]-f >= 10 {
			spread++
		}
	}
	if spread == 0 {
		t.Fatal("no event's coverage spans the stream; follow-ups are not recurring")
	}
	// Coverage moves on: some event breaks only in the second half.
	lateBreak := false
	for _, f := range first {
		if f > len(arts)/2 {
			lateBreak = true
		}
	}
	if !lateBreak {
		t.Fatal("every event broke in the first half; the stream does not develop")
	}
}
