package lda

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func corpus() [][]string {
	lines := []string{
		"taliban attack bomb army conflict war soldier",
		"taliban bomb blast army strike militant war",
		"army soldier war conflict strike militant taliban",
		"bomb blast militant soldier strike conflict",
		"election vote ballot candidate campaign poll party",
		"election candidate debate vote poll victory party",
		"vote ballot campaign election winner poll debate",
		"candidate party campaign victory ballot election",
		"cricket match stadium team batsman score innings",
		"team match score cricket innings trophy batsman",
		"stadium trophy team batsman cricket match score",
		"innings score match team cricket trophy stadium",
	}
	var out [][]string
	for _, l := range lines {
		out = append(out, strings.Fields(l))
	}
	return out
}

func trainToy(t *testing.T) *Model {
	t.Helper()
	m, err := Train(corpus(), Config{K: 3, Alpha: 0.5, Beta: 0.01, Iterations: 150, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, Config{K: 0, Iterations: 5}); err == nil {
		t.Fatal("K=0 must error")
	}
	if _, err := Train(nil, Config{K: 2, Iterations: 0}); err == nil {
		t.Fatal("Iterations=0 must error")
	}
}

func TestMixturesAreDistributions(t *testing.T) {
	m := trainToy(t)
	for i := 0; i < len(corpus()); i++ {
		sum := 0.0
		for _, p := range m.DocTopics(i) {
			if p < 0 {
				t.Fatalf("doc %d negative probability", i)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("doc %d mixture sums to %v", i, sum)
		}
	}
}

func TestTopicsSeparateThemes(t *testing.T) {
	m := trainToy(t)
	// Docs 0-3 military, 4-7 politics, 8-11 sports. Same-theme documents
	// must be more topically similar than cross-theme ones on average.
	avg := func(pairs [][2]int) float64 {
		s := 0.0
		for _, p := range pairs {
			s += CosineTopics(m.DocTopics(p[0]), m.DocTopics(p[1]))
		}
		return s / float64(len(pairs))
	}
	same := avg([][2]int{{0, 1}, {1, 2}, {4, 5}, {5, 6}, {8, 9}, {9, 10}})
	cross := avg([][2]int{{0, 4}, {1, 8}, {5, 9}, {2, 6}, {3, 11}})
	if same <= cross {
		t.Fatalf("topics do not separate themes: same=%v cross=%v", same, cross)
	}
}

func TestInfer(t *testing.T) {
	m := trainToy(t)
	military := m.Infer(strings.Fields("taliban bomb war strike"), 50, 7)
	sum := 0.0
	for _, p := range military {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("inferred mixture sums to %v", sum)
	}
	simMil := CosineTopics(military, m.DocTopics(0))
	simSport := CosineTopics(military, m.DocTopics(9))
	if simMil <= simSport {
		t.Fatalf("inference misassigns topic: mil=%v sport=%v", simMil, simSport)
	}
	// OOV-only inference returns the uniform prior mixture.
	oov := m.Infer([]string{"zzz", "qqq"}, 10, 1)
	for i := 1; i < len(oov); i++ {
		if oov[i] != oov[0] {
			t.Fatal("OOV mixture should be uniform")
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := trainToy(t)
	b := trainToy(t)
	for i := 0; i < len(corpus()); i++ {
		if !reflect.DeepEqual(a.DocTopics(i), b.DocTopics(i)) {
			t.Fatal("training not deterministic")
		}
	}
	if !reflect.DeepEqual(a.Infer([]string{"taliban"}, 10, 3), b.Infer([]string{"taliban"}, 10, 3)) {
		t.Fatal("inference not deterministic")
	}
}

func TestCosineTopics(t *testing.T) {
	if got := CosineTopics([]float64{1, 0}, []float64{1, 0}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("self cosine = %v", got)
	}
	if got := CosineTopics([]float64{1, 0}, []float64{0, 1}); got != 0 {
		t.Fatalf("orthogonal = %v", got)
	}
	if got := CosineTopics(nil, []float64{1}); got != 0 {
		t.Fatalf("nil = %v", got)
	}
}

func TestAccessors(t *testing.T) {
	m := trainToy(t)
	if m.K() != 3 {
		t.Fatalf("K = %d", m.K())
	}
	if m.VocabSize() == 0 {
		t.Fatal("vocab empty")
	}
	if got := DefaultConfig(0, 1).K; got != 50 {
		t.Fatalf("default K = %d", got)
	}
}
