package lda

import "math"

// HeldOutPerplexity evaluates the model on unseen documents: for each
// document the topic mixture is inferred, then the per-token log likelihood
// is computed under p(w|d) = Σ_k θ_dk φ_kw. Lower is better. This is the
// standard model-selection criterion for the validation split the paper
// reserves for "tuning DOC2VEC and LDA models" (Section VII-A3).
//
// Out-of-vocabulary tokens are skipped (they carry no information about
// topic quality); a corpus with no in-vocabulary tokens returns +Inf.
func (m *Model) HeldOutPerplexity(docs [][]string, inferIters int, seed int64) float64 {
	K, V := m.cfg.K, len(m.vocab)
	logSum, tokens := 0.0, 0
	for di, doc := range docs {
		theta := m.Infer(doc, inferIters, seed+int64(di))
		for _, w := range doc {
			id, ok := m.vocab[w]
			if !ok {
				continue
			}
			p := 0.0
			for k := 0; k < K; k++ {
				phi := (float64(m.nwt[id*K+k]) + m.cfg.Beta) /
					(float64(m.nt[k]) + m.cfg.Beta*float64(V))
				p += theta[k] * phi
			}
			if p > 0 {
				logSum += math.Log(p)
				tokens++
			}
		}
	}
	if tokens == 0 {
		return math.Inf(1)
	}
	return math.Exp(-logSum / float64(tokens))
}

// SelectTopics trains one model per candidate topic count and returns the
// count minimizing held-out perplexity on the validation documents, with
// the perplexities observed (aligned with candidates).
func SelectTopics(train, validation [][]string, candidates []int, base Config) (best int, perplexities []float64, err error) {
	bestPerp := math.Inf(1)
	for _, k := range candidates {
		cfg := base
		cfg.K = k
		if cfg.Alpha <= 0 {
			cfg.Alpha = 50.0 / float64(k)
		}
		m, trainErr := Train(train, cfg)
		if trainErr != nil {
			return 0, nil, trainErr
		}
		p := m.HeldOutPerplexity(validation, 30, cfg.Seed+1)
		perplexities = append(perplexities, p)
		if p < bestPerp {
			bestPerp = p
			best = k
		}
	}
	return best, perplexities, nil
}
