package lda

import (
	"math"
	"strings"
	"testing"
)

func TestHeldOutPerplexity(t *testing.T) {
	m := trainToy(t)
	// In-domain held-out text should be far less perplexing than shuffled
	// cross-topic text.
	inDomain := [][]string{
		strings.Fields("taliban bomb army war soldier"),
		strings.Fields("election vote ballot candidate poll"),
	}
	crossTopic := [][]string{
		strings.Fields("taliban ballot stadium soldier trophy vote"),
		strings.Fields("cricket war campaign blast innings poll"),
	}
	pIn := m.HeldOutPerplexity(inDomain, 50, 1)
	pCross := m.HeldOutPerplexity(crossTopic, 50, 1)
	if math.IsInf(pIn, 1) || pIn <= 1 {
		t.Fatalf("in-domain perplexity = %v", pIn)
	}
	if pIn >= pCross {
		t.Fatalf("in-domain %v should beat cross-topic %v", pIn, pCross)
	}
	// All-OOV documents are infinitely perplexing.
	if p := m.HeldOutPerplexity([][]string{{"zzz"}}, 10, 1); !math.IsInf(p, 1) {
		t.Fatalf("OOV perplexity = %v", p)
	}
}

func TestSelectTopics(t *testing.T) {
	docs := corpus()
	train, val := docs[:9], docs[9:]
	base := Config{Alpha: 0, Beta: 0.01, Iterations: 100, Seed: 5}
	best, perps, err := SelectTopics(train, val, []int{1, 3, 30}, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(perps) != 3 {
		t.Fatalf("perplexities = %v", perps)
	}
	// The corpus has three themes; 30 topics overfits tiny data and 1 topic
	// underfits — either way, a valid candidate must be selected.
	found := false
	for _, k := range []int{1, 3, 30} {
		if best == k {
			found = true
		}
	}
	if !found {
		t.Fatalf("best = %d not among candidates", best)
	}
	for _, p := range perps {
		if p <= 0 {
			t.Fatalf("invalid perplexity %v", p)
		}
	}
	// Propagates training errors.
	if _, _, err := SelectTopics(train, val, []int{0}, base); err == nil {
		t.Fatal("K=0 must propagate the error")
	}
}
