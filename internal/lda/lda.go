// Package lda implements Latent Dirichlet Allocation with collapsed Gibbs
// sampling, the LDA competitor of Table IV (the paper trains PLDA with 500
// topics; this is the same model family with the same inference algorithm,
// minus PLDA's parallel pipeline — see DESIGN.md §1).
package lda

import (
	"fmt"
	"math"
	"math/rand"
)

// Config parameterizes training.
type Config struct {
	K          int     // number of topics
	Alpha      float64 // document-topic Dirichlet prior
	Beta       float64 // topic-word Dirichlet prior
	Iterations int     // Gibbs sweeps over the corpus
	Seed       int64
}

// DefaultConfig returns a configuration suitable for the down-scaled
// corpora of the experiment suite.
func DefaultConfig(k int, seed int64) Config {
	if k <= 0 {
		k = 50
	}
	return Config{K: k, Alpha: 50.0 / float64(k), Beta: 0.01, Iterations: 60, Seed: seed}
}

// Model is a trained LDA model.
type Model struct {
	cfg   Config
	vocab map[string]int
	// counts: nwt[w*K+t] topic assignments of word w, nt[t] totals.
	nwt []int
	nt  []int
	// docTopics holds the trained per-document topic mixtures.
	docTopics [][]float64
}

// Train fits the model on tokenized documents.
func Train(docs [][]string, cfg Config) (*Model, error) {
	if cfg.K <= 0 {
		return nil, fmt.Errorf("lda: K must be positive, got %d", cfg.K)
	}
	if cfg.Iterations <= 0 {
		return nil, fmt.Errorf("lda: Iterations must be positive, got %d", cfg.Iterations)
	}
	m := &Model{cfg: cfg, vocab: make(map[string]int)}
	// Intern words.
	ids := make([][]int, len(docs))
	for i, d := range docs {
		ids[i] = make([]int, len(d))
		for j, w := range d {
			id, ok := m.vocab[w]
			if !ok {
				id = len(m.vocab)
				m.vocab[w] = id
			}
			ids[i][j] = id
		}
	}
	V, K := len(m.vocab), cfg.K
	m.nwt = make([]int, V*K)
	m.nt = make([]int, K)
	ndt := make([][]int, len(docs)) // per-doc topic counts
	z := make([][]int, len(docs))   // token topic assignments
	rng := rand.New(rand.NewSource(cfg.Seed))
	for i, d := range ids {
		ndt[i] = make([]int, K)
		z[i] = make([]int, len(d))
		for j, w := range d {
			t := rng.Intn(K)
			z[i][j] = t
			ndt[i][t]++
			m.nwt[w*K+t]++
			m.nt[t]++
		}
	}
	probs := make([]float64, K)
	for it := 0; it < cfg.Iterations; it++ {
		for i, d := range ids {
			for j, w := range d {
				t := z[i][j]
				ndt[i][t]--
				m.nwt[w*K+t]--
				m.nt[t]--
				total := 0.0
				for k := 0; k < K; k++ {
					p := (float64(ndt[i][k]) + cfg.Alpha) *
						(float64(m.nwt[w*K+k]) + cfg.Beta) /
						(float64(m.nt[k]) + cfg.Beta*float64(V))
					total += p
					probs[k] = total
				}
				u := rng.Float64() * total
				nt := 0
				for nt < K-1 && probs[nt] < u {
					nt++
				}
				z[i][j] = nt
				ndt[i][nt]++
				m.nwt[w*K+nt]++
				m.nt[nt]++
			}
		}
	}
	m.docTopics = make([][]float64, len(docs))
	for i := range docs {
		m.docTopics[i] = m.mixture(ndt[i], len(ids[i]))
	}
	return m, nil
}

// mixture converts topic counts into a smoothed distribution.
func (m *Model) mixture(counts []int, n int) []float64 {
	K := m.cfg.K
	out := make([]float64, K)
	denom := float64(n) + float64(K)*m.cfg.Alpha
	for k := 0; k < K; k++ {
		out[k] = (float64(counts[k]) + m.cfg.Alpha) / denom
	}
	return out
}

// K returns the number of topics.
func (m *Model) K() int { return m.cfg.K }

// VocabSize returns the training vocabulary size.
func (m *Model) VocabSize() int { return len(m.vocab) }

// DocTopics returns the trained topic mixture of training document i.
func (m *Model) DocTopics(i int) []float64 { return m.docTopics[i] }

// Infer estimates the topic mixture of an unseen document by Gibbs sampling
// with the trained topic-word counts held fixed. Words outside the training
// vocabulary are ignored.
func (m *Model) Infer(terms []string, iterations int, seed int64) []float64 {
	K, V := m.cfg.K, len(m.vocab)
	var ids []int
	for _, w := range terms {
		if id, ok := m.vocab[w]; ok {
			ids = append(ids, id)
		}
	}
	counts := make([]int, K)
	if len(ids) == 0 {
		return m.mixture(counts, 0)
	}
	if iterations <= 0 {
		iterations = 20
	}
	rng := rand.New(rand.NewSource(seed))
	z := make([]int, len(ids))
	for j := range ids {
		z[j] = rng.Intn(K)
		counts[z[j]]++
	}
	probs := make([]float64, K)
	for it := 0; it < iterations; it++ {
		for j, w := range ids {
			t := z[j]
			counts[t]--
			total := 0.0
			for k := 0; k < K; k++ {
				p := (float64(counts[k]) + m.cfg.Alpha) *
					(float64(m.nwt[w*K+k]) + m.cfg.Beta) /
					(float64(m.nt[k]) + m.cfg.Beta*float64(V))
				total += p
				probs[k] = total
			}
			u := rng.Float64() * total
			nt := 0
			for nt < K-1 && probs[nt] < u {
				nt++
			}
			z[j] = nt
			counts[nt]++
		}
	}
	return m.mixture(counts, len(ids))
}

// CosineTopics returns the cosine similarity of two topic mixtures.
func CosineTopics(a, b []float64) float64 {
	var dot, na, nb float64
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}
