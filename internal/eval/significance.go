package eval

import (
	"fmt"
	"math/rand"
	"strings"

	"newslink"
)

// The paper reports point estimates only; this file adds the paired
// bootstrap test IR evaluations normally use to decide whether one system's
// advantage over another is larger than query-sampling noise.

// QueryScores returns per-query metric samples for a system: sim[i] is the
// SIM@simK of query i and hit[i] is 1 if the query document was recovered
// within hitK. Per-query samples are the unit of the paired bootstrap.
func QueryScores(sys System, queries []Query, judge *Judge, simK, hitK int) (sim, hit []float64) {
	maxK := simK
	if hitK > maxK {
		maxK = hitK
	}
	sim = make([]float64, len(queries))
	hit = make([]float64, len(queries))
	for i, q := range queries {
		res := sys.Search(q.Text, maxK)
		n := simK
		if n > len(res) {
			n = len(res)
		}
		s := 0.0
		for _, r := range res[:n] {
			s += judge.Sim(q.TargetID, r)
		}
		if simK > 0 {
			sim[i] = s / float64(simK)
		}
		hn := hitK
		if hn > len(res) {
			hn = len(res)
		}
		for _, r := range res[:hn] {
			if r == q.TargetID {
				hit[i] = 1
				break
			}
		}
	}
	return sim, hit
}

// BootstrapResult summarizes a paired bootstrap comparison of system A
// versus system B on the same query set.
type BootstrapResult struct {
	MeanA, MeanB float64
	// Delta is MeanA - MeanB.
	Delta float64
	// PValue is the two-sided bootstrap p-value for Delta != 0.
	PValue float64
	// Iterations is the number of bootstrap resamples drawn.
	Iterations int
}

// Significant reports whether the difference clears the given alpha.
func (r BootstrapResult) Significant(alpha float64) bool { return r.PValue < alpha }

// String renders the comparison.
func (r BootstrapResult) String() string {
	star := ""
	if r.Significant(0.05) {
		star = " *"
	}
	return fmt.Sprintf("Δ=%+.4f (A=%.4f B=%.4f, p=%.3f, n=%d)%s",
		r.Delta, r.MeanA, r.MeanB, r.PValue, r.Iterations, star)
}

// PairedBootstrap runs a two-sided paired bootstrap over per-query samples
// a and b (same length, same query order). It resamples queries with
// replacement and counts how often the resampled mean difference flips sign
// relative to the observed difference.
func PairedBootstrap(a, b []float64, iterations int, seed int64) BootstrapResult {
	if len(a) != len(b) {
		panic(fmt.Sprintf("eval: paired samples differ in length: %d vs %d", len(a), len(b)))
	}
	n := len(a)
	res := BootstrapResult{Iterations: iterations}
	if n == 0 || iterations <= 0 {
		res.PValue = 1
		return res
	}
	diffs := make([]float64, n)
	for i := range a {
		res.MeanA += a[i]
		res.MeanB += b[i]
		diffs[i] = a[i] - b[i]
	}
	res.MeanA /= float64(n)
	res.MeanB /= float64(n)
	res.Delta = res.MeanA - res.MeanB
	if res.Delta == 0 {
		res.PValue = 1
		return res
	}
	rng := rand.New(rand.NewSource(seed))
	flips := 0
	for it := 0; it < iterations; it++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += diffs[rng.Intn(n)]
		}
		mean := sum / float64(n)
		// A resample contradicting the observed sign counts toward p.
		if res.Delta > 0 && mean <= 0 || res.Delta < 0 && mean >= 0 {
			flips++
		}
	}
	// Two-sided with the +1 smoothing that keeps p > 0.
	res.PValue = 2 * float64(flips+1) / float64(iterations+1)
	if res.PValue > 1 {
		res.PValue = 1
	}
	return res
}

// RunSignificance compares NewsLink(0.2) against every competitor with a
// paired bootstrap on SIM@5 and HIT@1 (densest queries) and renders the
// outcome. It quantifies which Table IV gaps exceed query-sampling noise.
func RunSignificance(scale Scale, iterations int) string {
	if iterations <= 0 {
		iterations = 2000
	}
	d := BuildDataset(CNNSpec(scale))
	judge := NewJudge(d)
	queries := d.Queries(Densest, d.Spec.Seed+41)
	nl := mustSystem(d)
	nlSim, nlHit := QueryScores(nl, queries, judge, 5, 1)
	var sb strings.Builder
	fmt.Fprintf(&sb, "Paired bootstrap, NewsLink(0.2) vs competitor (%s, %d queries, %d resamples)\n",
		d.Spec.Name, len(queries), iterations)
	competitors := []System{NewLucene(d), NewQEPRF(d), NewSBERT(d), NewDoc2Vec(d), NewLDA(d, ldaTopics(scale))}
	for i, sys := range competitors {
		sim, hit := QueryScores(sys, queries, judge, 5, 1)
		rs := PairedBootstrap(nlSim, sim, iterations, int64(100+i))
		rh := PairedBootstrap(nlHit, hit, iterations, int64(200+i))
		fmt.Fprintf(&sb, "  vs %-8s SIM@5 %s\n", sys.Name(), rs)
		fmt.Fprintf(&sb, "  vs %-8s HIT@1 %s\n", sys.Name(), rh)
	}
	return sb.String()
}

func mustSystem(d *Dataset) *NewsLinkSystem {
	return NewNewsLink(d, 0.2, newslink.LCAG)
}
