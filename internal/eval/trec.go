package eval

import (
	"bufio"
	"fmt"
	"io"
)

// TREC interchange: the Partial Query Similarity Search task exports to the
// standard qrels / run formats so results can be scored with external
// tooling (trec_eval) or compared against other systems outside this
// repository.

// WriteQrels writes binary relevance judgments: for each query the source
// test document is relevant (the HIT@k ground truth).
//
//	<qid> 0 <docno> <rel>
func WriteQrels(w io.Writer, queries []Query) error {
	bw := bufio.NewWriter(w)
	for i, q := range queries {
		if _, err := fmt.Fprintf(bw, "q%d 0 d%d 1\n", i, q.TargetID); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteRun writes a system's rankings in TREC run format:
//
//	<qid> Q0 <docno> <rank> <score> <tag>
//
// Scores are synthesized from ranks (TREC evaluators only use the order).
func WriteRun(w io.Writer, sys System, queries []Query, k int) error {
	bw := bufio.NewWriter(w)
	tag := sys.Name()
	for i, q := range queries {
		for rank, doc := range sys.Search(q.Text, k) {
			score := float64(k - rank)
			if _, err := fmt.Fprintf(bw, "q%d Q0 d%d %d %g %s\n",
				i, doc, rank+1, score, tag); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
