package eval

import (
	"fmt"

	"newslink"
)

// The paper reports NewsLink(0.2) as the best setting (Table VII) but does
// not show how β would be chosen without peeking at the test set. This
// runner performs the methodologically clean version: sweep β on the
// validation split (the split the paper reserves for tuning) and report the
// winner, then confirm it on the test split.

// BetaTuningResult holds one β's validation and test scores.
type BetaTuningResult struct {
	Beta    float64
	ValSIM  float64 // SIM@5 on validation queries
	ValHIT  float64 // HIT@5 on validation queries
	TestSIM float64
	TestHIT float64
}

// TuneBeta sweeps betas, scoring each engine on validation queries
// (selection) and test queries (reporting). The returned slice is aligned
// with betas; best is the index with the highest validation score
// (SIM@5 + HIT@5, ties to the smaller β).
func TuneBeta(d *Dataset, betas []float64, judge *Judge) (results []BetaTuningResult, best int) {
	valQ := d.ValidationQueries(Densest, d.Spec.Seed+61)
	testQ := d.Queries(Densest, d.Spec.Seed+41)
	bestScore := -1.0
	for i, beta := range betas {
		sys := NewNewsLink(d, beta, newslink.LCAG)
		val := Evaluate(sys, valQ, judge)
		test := Evaluate(sys, testQ, judge)
		r := BetaTuningResult{
			Beta:    beta,
			ValSIM:  val.SIM[5],
			ValHIT:  val.HIT[5],
			TestSIM: test.SIM[5],
			TestHIT: test.HIT[5],
		}
		results = append(results, r)
		if score := r.ValSIM + r.ValHIT; score > bestScore {
			bestScore = score
			best = i
		}
	}
	return results, best
}

// RunBetaTuning renders the validation sweep for the CNN-like dataset.
func RunBetaTuning(scale Scale) *Table {
	d := BuildDataset(CNNSpec(scale))
	judge := NewJudge(d)
	betas := []float64{0, 0.1, 0.2, 0.3, 0.5, 0.8, 1.0}
	results, best := TuneBeta(d, betas, judge)
	t := NewTable(fmt.Sprintf("β tuning on the validation split (%s); selected β=%.1f",
		d.Spec.Name, results[best].Beta),
		"beta", "val SIM@5", "val HIT@5", "test SIM@5", "test HIT@5")
	for i, r := range results {
		name := fmt.Sprintf("%.1f", r.Beta)
		if i == best {
			name += " <-"
		}
		t.AddRow(name, f3(r.ValSIM), f3(r.ValHIT), f3(r.TestSIM), f3(r.TestHIT))
	}
	return t
}
