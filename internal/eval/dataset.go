// Package eval implements the paper's evaluation suite (Section VII): the
// Partial Query Similarity Search task, the SIM@k / HIT@k metrics, the
// FastText-style similarity judge, the simulated user study, and one runner
// per table/figure of the paper.
package eval

import (
	"fmt"
	"math/rand"
	"sort"

	"newslink/internal/corpus"
	"newslink/internal/kg"
	"newslink/internal/nlp"
)

// Scale selects how large the synthetic datasets are. The paper runs on
// ~90k documents and a 30M-node KG; the scales below keep the same task
// structure at laptop size (see DESIGN.md §1 on the hardware substitution).
type Scale int

// Scales.
const (
	// ScaleTest is for unit tests (seconds).
	ScaleTest Scale = iota
	// ScaleSmall is for quick experiment runs (tens of seconds).
	ScaleSmall
	// ScaleFull is the default for cmd/experiments (minutes).
	ScaleFull
)

// DatasetSpec describes how to synthesize one evaluation dataset.
type DatasetSpec struct {
	Name    string
	KG      kg.Config
	Profile corpus.Profile
	NumDocs int
	Seed    int64
}

// CNNSpec mirrors the paper's CNN corpus at the given scale.
func CNNSpec(s Scale) DatasetSpec {
	spec := DatasetSpec{Name: "CNN", Profile: corpus.CNNLike(), Seed: 1001}
	spec.KG, spec.NumDocs = scaleKG(s, 11)
	return spec
}

// KaggleSpec mirrors the paper's Kaggle all-the-news corpus.
func KaggleSpec(s Scale) DatasetSpec {
	spec := DatasetSpec{Name: "Kaggle", Profile: corpus.KaggleLike(), Seed: 2002}
	spec.KG, spec.NumDocs = scaleKG(s, 22)
	return spec
}

func scaleKG(s Scale, seed int64) (kg.Config, int) {
	cfg := kg.DefaultConfig(seed)
	switch s {
	case ScaleTest:
		cfg.Countries = 6
		return cfg, 120
	case ScaleSmall:
		cfg.Countries = 15
		return cfg, 600
	default:
		cfg.Countries = 40
		return cfg, 2400
	}
}

// Dataset is a fully assembled evaluation dataset.
type Dataset struct {
	Spec     DatasetSpec
	World    *kg.World
	Articles []corpus.Article // position == Article.ID
	Split    corpus.Split
	Pipeline *nlp.Pipeline
}

// BuildDataset synthesizes the world and corpus for a spec.
func BuildDataset(spec DatasetSpec) *Dataset {
	w := kg.Generate(spec.KG)
	arts := corpus.Generate(w, spec.Profile, spec.NumDocs, spec.Seed)
	assertArticlesAligned(arts)
	return &Dataset{
		Spec:     spec,
		World:    w,
		Articles: arts,
		Split:    corpus.MakeSplit(arts, spec.Seed+7),
		Pipeline: nlp.NewPipeline(w.Graph.Index()),
	}
}

// TrainTexts returns the analyzed term lists of the training split, the
// corpus DOC2VEC and LDA are trained on (Section VII-A3).
func (d *Dataset) TrainTexts() [][]string {
	out := make([][]string, len(d.Split.Train))
	for i, a := range d.Split.Train {
		out[i] = nlp.Terms(a.Text)
	}
	return out
}

// AllTexts returns analyzed terms for every document, aligned with Articles.
func (d *Dataset) AllTexts() [][]string {
	out := make([][]string, len(d.Articles))
	for i, a := range d.Articles {
		out[i] = nlp.Terms(a.Text)
	}
	return out
}

// QueryMode selects how the query sentence is drawn from a test document
// (Section VII-B).
type QueryMode int

// Query modes.
const (
	// Densest picks the sentence with the largest entity density.
	Densest QueryMode = iota
	// Random picks a uniformly random sentence.
	Random
)

// String returns the mode name used in table headers.
func (m QueryMode) String() string {
	if m == Random {
		return "random"
	}
	return "densest"
}

// Query is one Partial Query Similarity Search test case: the query sentence
// q drawn from test document Q (TargetID).
type Query struct {
	Text     string
	TargetID int
}

// Queries derives the test queries of the given mode. Documents whose
// sentences contain no recognizable content are skipped.
func (d *Dataset) Queries(mode QueryMode, seed int64) []Query {
	return d.queriesFrom(d.Split.Test, mode, seed)
}

// ValidationQueries derives queries from the validation split, the data the
// paper reserves for tuning (Section VII-A3); β selection runs on these so
// the test split stays untouched.
func (d *Dataset) ValidationQueries(mode QueryMode, seed int64) []Query {
	return d.queriesFrom(d.Split.Validation, mode, seed)
}

func (d *Dataset) queriesFrom(arts []corpus.Article, mode QueryMode, seed int64) []Query {
	rng := rand.New(rand.NewSource(seed))
	var out []Query
	for _, a := range arts {
		doc := d.Pipeline.Process(a.Text)
		if len(doc.Sentences) == 0 {
			continue
		}
		idx := 0
		switch mode {
		case Densest:
			best := -1.0
			for i := range doc.Sentences {
				if den := doc.Sentences[i].EntityDensity(); den > best {
					best = den
					idx = i
				}
			}
		case Random:
			idx = rng.Intn(len(doc.Sentences))
		}
		out = append(out, Query{Text: doc.Sentences[idx].Text, TargetID: a.ID})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TargetID < out[j].TargetID })
	return out
}

// String identifies the dataset.
func (d *Dataset) String() string {
	return fmt.Sprintf("%s{docs=%d kg=%d nodes}", d.Spec.Name, len(d.Articles), d.World.Graph.NumNodes())
}
