package eval

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"newslink/internal/core"
	"newslink/internal/index"
	"newslink/internal/nlp"
	"newslink/internal/search"
)

// Figure7Result holds the average per-document embedding cost of each
// component (Figure 7 of the paper: the NE component dominates, and the
// proposed G* algorithm is faster than the tree-based baseline).
type Figure7Result struct {
	Docs int
	NLP  time.Duration // tokenization, NER, maximal sets
	// NEGStar is the subgraph embedding cost with G* (early termination via
	// C1 and C2).
	NEGStar time.Duration
	// NETree is the cost of the tree-based baseline as published: the
	// bidirectional-expansion heuristic has no early-termination test, so
	// the bounded frontier is explored exhaustively (Section VII-G).
	NETree time.Duration
	// NETreeBound is the same tree model with this library's sound Steiner
	// termination bound added — an improvement over the published baseline,
	// reported for completeness.
	NETreeBound time.Duration
	NSIndex     time.Duration // inverted-index building (text + nodes)
	Segments    float64       // average news segments per document
}

// Render formats the result.
func (r Figure7Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 7: average embedding time per news document (%d docs, %.1f segments/doc)\n",
		r.Docs, r.Segments)
	max := float64(r.NETree)
	for _, row := range []struct {
		name string
		d    time.Duration
	}{
		{"NLP", r.NLP},
		{"NE (G*)", r.NEGStar},
		{"NE (TreeEmb)", r.NETree},
		{"NE (TreeEmb+bound)", r.NETreeBound},
		{"NS indexing", r.NSIndex},
	} {
		fmt.Fprintf(&sb, "  %-22s %12v %s\n", row.name, row.d, bar(float64(row.d), max, 40))
	}
	return sb.String()
}

// RunFigure7 measures the average per-document cost of each NewsLink
// component while embedding a corpus.
func RunFigure7(scale Scale) Figure7Result {
	d := BuildDataset(CNNSpec(scale))
	g := d.World.Graph
	gstar := core.NewEmbedder(g, core.Options{Model: core.ModelLCAG, MaxDepth: 6})
	tree := core.NewEmbedder(g, core.Options{Model: core.ModelTree, MaxDepth: 6, NoEarlyStop: true})
	treeBound := core.NewEmbedder(g, core.Options{Model: core.ModelTree, MaxDepth: 6})

	var r Figure7Result
	r.Docs = len(d.Articles)
	textB, nodeB := index.NewBuilder(), index.NewBuilder()
	segments := 0
	for _, a := range d.Articles {
		t0 := time.Now()
		doc := d.Pipeline.Process(a.Text)
		groups := nlp.MaximalSets(doc.EntityGroups())
		var terms []string
		for _, s := range doc.Sentences {
			terms = append(terms, s.Terms...)
		}
		r.NLP += time.Since(t0)
		segments += len(groups)

		t0 = time.Now()
		emb := gstar.EmbedGroups(groups)
		r.NEGStar += time.Since(t0)

		t0 = time.Now()
		tree.EmbedGroups(groups)
		r.NETree += time.Since(t0)

		t0 = time.Now()
		treeBound.EmbedGroups(groups)
		r.NETreeBound += time.Since(t0)

		t0 = time.Now()
		textB.Add(terms)
		w := make(map[string]float32)
		if emb != nil {
			for n, c := range emb.Counts {
				w[strconv.FormatUint(uint64(n), 36)] = float32(c)
			}
		}
		nodeB.AddWeighted(w)
		r.NSIndex += time.Since(t0)
	}
	t0 := time.Now()
	textB.Build()
	nodeB.Build()
	r.NSIndex += time.Since(t0)

	n := time.Duration(r.Docs)
	r.NLP /= n
	r.NEGStar /= n
	r.NETree /= n
	r.NETreeBound /= n
	r.NSIndex /= n
	r.Segments = float64(segments) / float64(r.Docs)
	return r
}

// Table8Result is the per-query processing time breakdown (Table VIII).
type Table8Result struct {
	Queries int
	NLP     time.Duration
	NE      time.Duration
	NS      time.Duration
}

// Render formats the result like Table VIII.
func (r Table8Result) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table VIII: query processing time breakdown per test query (%d queries)\n", r.Queries)
	fmt.Fprintf(&sb, "  %-12s %12v\n", "NLP", r.NLP)
	fmt.Fprintf(&sb, "  %-12s %12v\n", "NE", r.NE)
	fmt.Fprintf(&sb, "  %-12s %12v\n", "NS", r.NS)
	return sb.String()
}

// RunTable8 measures the per-component latency of query processing with
// NewsLink(0.2): NLP (query analysis), NE (query subgraph embedding) and
// NS (both index retrievals plus fusion).
func RunTable8(scale Scale) Table8Result {
	d := BuildDataset(CNNSpec(scale))
	g := d.World.Graph
	embedder := core.NewEmbedder(g, core.Options{Model: core.ModelLCAG, MaxDepth: 6})
	// Build the two indexes once, as the engine does.
	textB, nodeB := index.NewBuilder(), index.NewBuilder()
	for _, a := range d.Articles {
		doc := d.Pipeline.Process(a.Text)
		var terms []string
		for _, s := range doc.Sentences {
			terms = append(terms, s.Terms...)
		}
		textB.Add(terms)
		w := make(map[string]float32)
		if emb := embedder.EmbedGroups(nlp.MaximalSets(doc.EntityGroups())); emb != nil {
			for n, c := range emb.Counts {
				w[strconv.FormatUint(uint64(n), 36)] = float32(c)
			}
		}
		nodeB.AddWeighted(w)
	}
	textIdx, nodeIdx := textB.Build(), nodeB.Build()

	var r Table8Result
	queries := d.Queries(Densest, d.Spec.Seed+41)
	for _, q := range queries {
		t0 := time.Now()
		doc := d.Pipeline.Process(q.Text)
		groups := nlp.MaximalSets(doc.EntityGroups())
		var terms []string
		for _, s := range doc.Sentences {
			terms = append(terms, s.Terms...)
		}
		r.NLP += time.Since(t0)

		t0 = time.Now()
		emb := embedder.EmbedGroups(groups)
		r.NE += time.Since(t0)

		t0 = time.Now()
		bow := search.TopKMaxScore(textIdx, search.NewBM25(textIdx), search.NewQuery(terms), 100)
		var bon []search.Hit
		if emb != nil {
			nq := make(search.Query, len(emb.Counts))
			for n, c := range emb.Counts {
				nq[strconv.FormatUint(uint64(n), 36)] = float64(c)
			}
			bon = search.TopKMaxScore(nodeIdx, search.NewBM25(nodeIdx), nq, 100)
		}
		search.Fuse(bow, bon, 0.2, 20)
		r.NS += time.Since(t0)
	}
	r.Queries = len(queries)
	if r.Queries > 0 {
		n := time.Duration(r.Queries)
		r.NLP /= n
		r.NE /= n
		r.NS /= n
	}
	return r
}
