package eval

import (
	"fmt"
	"time"

	"newslink/internal/core"
	"newslink/internal/nlp"
)

// RunAblations quantifies the design decisions of DESIGN.md §4 on one
// dataset, as numbers rather than benchmark timings:
//
//  1. coverage width — extra nodes G* keeps beyond the single-path tree;
//  2. compactness-order tie-breaking — how often the full order changes
//     the root compared with plain depth minimization;
//  3. early termination — traversal work saved by C1∧C2;
//  4. maximal co-occurrence sets — NE invocations avoided by Definition 1.
func RunAblations(scale Scale) *Table {
	d := BuildDataset(CNNSpec(scale))
	g := d.World.Graph
	t := NewTable("Ablations ("+d.Spec.Name+"): contribution of each design choice",
		"ablation", "measurement")

	// Gather the per-document groups once.
	var raw, maximal [][][]string
	for _, a := range d.Articles {
		doc := d.Pipeline.Process(a.Text)
		groups := doc.EntityGroups()
		raw = append(raw, groups)
		maximal = append(maximal, nlp.MaximalSets(groups))
	}

	// 1. Coverage width: G* nodes vs tree nodes on identical groups.
	gstar := core.NewSearcher(g, core.Options{MaxDepth: 6})
	tree := core.NewSearcher(g, core.Options{Model: core.ModelTree, MaxDepth: 6})
	gNodes, tNodes, embedded := 0, 0, 0
	for _, groups := range maximal {
		for _, grp := range groups {
			a := gstar.Find(grp)
			b := tree.Find(grp)
			if a == nil || b == nil {
				continue
			}
			embedded++
			gNodes += len(a.Nodes)
			tNodes += len(b.Nodes)
		}
	}
	t.AddRow("all-shortest-paths coverage",
		fmt.Sprintf("G* keeps %.2f nodes/segment vs tree %.2f (+%.0f%% width, %d segments)",
			avg(gNodes, embedded), avg(tNodes, embedded),
			100*(avg(gNodes, embedded)/avg(tNodes, embedded)-1), embedded))

	// 2. Compactness order vs plain depth: differing roots.
	depthOnly := core.NewSearcher(g, core.Options{MaxDepth: 6, DepthOnly: true})
	diff, total := 0, 0
	for _, groups := range maximal {
		for _, grp := range groups {
			a := gstar.Find(grp)
			b := depthOnly.Find(grp)
			if a == nil || b == nil {
				continue
			}
			total++
			if a.Root != b.Root {
				diff++
			}
		}
	}
	t.AddRow("compactness order tie-breaking",
		fmt.Sprintf("full order changes the root for %d/%d segments (%.1f%%)",
			diff, total, 100*float64(diff)/float64(max1(total))))

	// 3. Early termination: expansions with and without C1/C2.
	exhaustive := core.NewSearcher(g, core.Options{MaxDepth: 6, NoEarlyStop: true})
	fastExp, slowExp := 0, 0
	t0 := time.Now()
	for _, groups := range maximal {
		for _, grp := range groups {
			if sg := gstar.Find(grp); sg != nil {
				fastExp += sg.Expansions
			}
		}
	}
	fastTime := time.Since(t0)
	t0 = time.Now()
	for _, groups := range maximal {
		for _, grp := range groups {
			if sg := exhaustive.Find(grp); sg != nil {
				slowExp += sg.Expansions
			}
		}
	}
	slowTime := time.Since(t0)
	t.AddRow("early termination (C1 and C2)",
		fmt.Sprintf("%d vs %d path enumerations (%.1fx), %v vs %v",
			fastExp, slowExp, float64(slowExp)/float64(max1(fastExp)), fastTime.Round(time.Millisecond), slowTime.Round(time.Millisecond)))

	// 4. Maximal co-occurrence sets: NE invocations avoided.
	rawGroups, keptGroups := 0, 0
	for i := range raw {
		rawGroups += len(raw[i])
		keptGroups += len(maximal[i])
	}
	t.AddRow("maximal entity co-occurrence set",
		fmt.Sprintf("%d of %d entity groups embedded (%.1f%% NE calls saved)",
			keptGroups, rawGroups, 100*(1-float64(keptGroups)/float64(max1(rawGroups)))))
	return t
}

func avg(sum, n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(sum) / float64(n)
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}
