package eval

import "fmt"

// MatchingRatio computes the average entity matching ratio per test query:
// the number of KG-linked entities over the number of identified entities
// (Table V; the paper reports 97.54% for CNN and 96.49% for Kaggle).
func MatchingRatio(d *Dataset) float64 {
	queries := d.Queries(Densest, d.Spec.Seed+41)
	total, n := 0.0, 0
	for _, q := range queries {
		doc := d.Pipeline.Process(q.Text)
		linked, identified := 0, 0
		for _, s := range doc.Sentences {
			for _, m := range s.Mentions {
				identified++
				if m.Linked {
					linked++
				}
			}
		}
		if identified == 0 {
			continue
		}
		total += float64(linked) / float64(identified)
		n++
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

// RunTable5 reproduces Table V: average entity matching ratio per test
// query set.
func RunTable5(scale Scale) *Table {
	t := NewTable("Table V: average entity matching ratio",
		"test query set", "entity matching ratio")
	for _, spec := range []DatasetSpec{CNNSpec(scale), KaggleSpec(scale)} {
		d := BuildDataset(spec)
		t.AddRow(d.Spec.Name, fmt.Sprintf("%.2f%%", 100*MatchingRatio(d)))
	}
	return t
}
