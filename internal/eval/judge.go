package eval

import (
	"newslink/internal/nlp"
	"newslink/internal/textembed"
)

// Judge scores result similarity the way the paper does (Section VII-B):
// the complete test document Q and each result R are embedded with a
// FastText-style encoder and compared by cosine similarity. The judge is a
// fixed external referee shared by all competitors.
type Judge struct {
	ft   *textembed.FastText
	vecs []textembed.Vector // per corpus document, aligned with Articles
}

// NewJudge trains the judge's encoder on the whole corpus and precomputes
// one vector per document.
func NewJudge(d *Dataset) *Judge {
	texts := d.AllTexts()
	wv := textembed.TrainWordVectors(texts, textembed.WordVectorConfig{
		Dim: 300, Window: 5, Seed: d.Spec.Seed + 99, NNZ: 8,
	})
	j := &Judge{ft: textembed.NewFastText(wv)}
	j.vecs = make([]textembed.Vector, len(texts))
	for i, t := range texts {
		j.vecs[i] = j.ft.Embed(t)
	}
	return j
}

// Sim returns the judged cosine similarity between two corpus documents.
func (j *Judge) Sim(docA, docB int) float64 {
	return textembed.Cosine(j.vecs[docA], j.vecs[docB])
}

// SimText judges similarity between arbitrary text and a corpus document.
func (j *Judge) SimText(text string, doc int) float64 {
	return textembed.Cosine(j.ft.Embed(nlp.Terms(text)), j.vecs[doc])
}
