package eval

import (
	"math/rand"
	"strings"
	"testing"
)

func TestPairedBootstrapClearDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 200
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = 0.8 + 0.05*rng.NormFloat64()
		b[i] = 0.5 + 0.05*rng.NormFloat64()
	}
	r := PairedBootstrap(a, b, 2000, 1)
	if !r.Significant(0.05) {
		t.Fatalf("obvious difference not significant: %s", r)
	}
	if r.Delta < 0.2 || r.Delta > 0.4 {
		t.Fatalf("delta = %v", r.Delta)
	}
	if !strings.Contains(r.String(), "*") {
		t.Fatalf("significant result not starred: %s", r)
	}
}

func TestPairedBootstrapNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 50
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		v := rng.Float64()
		a[i] = v + 0.2*rng.NormFloat64()
		b[i] = v + 0.2*rng.NormFloat64()
	}
	r := PairedBootstrap(a, b, 2000, 2)
	if r.Significant(0.01) {
		t.Fatalf("pure noise flagged significant: %s", r)
	}
}

func TestPairedBootstrapEdgeCases(t *testing.T) {
	r := PairedBootstrap(nil, nil, 100, 1)
	if r.PValue != 1 {
		t.Fatalf("empty samples p = %v", r.PValue)
	}
	same := []float64{1, 2, 3}
	r = PairedBootstrap(same, same, 100, 1)
	if r.Delta != 0 || r.PValue != 1 {
		t.Fatalf("identical samples: %+v", r)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch must panic")
		}
	}()
	PairedBootstrap([]float64{1}, []float64{1, 2}, 10, 1)
}

func TestPairedBootstrapDeterministic(t *testing.T) {
	a := []float64{0.9, 0.8, 0.7, 0.95, 0.85}
	b := []float64{0.6, 0.7, 0.65, 0.7, 0.6}
	r1 := PairedBootstrap(a, b, 500, 9)
	r2 := PairedBootstrap(a, b, 500, 9)
	if r1 != r2 {
		t.Fatal("bootstrap not deterministic under fixed seed")
	}
}

func TestQueryScoresMatchEvaluate(t *testing.T) {
	d := dataset(t)
	j := NewJudge(d)
	queries := d.Queries(Densest, 1)
	sys := NewLucene(d)
	sim, hit := QueryScores(sys, queries, j, 5, 1)
	if len(sim) != len(queries) || len(hit) != len(queries) {
		t.Fatal("sample lengths wrong")
	}
	m := Evaluate(sys, queries, j)
	if got := mean(sim); !close(got, m.SIM[5]) {
		t.Fatalf("mean SIM@5 %v != Evaluate %v", got, m.SIM[5])
	}
	if got := mean(hit); !close(got, m.HIT[1]) {
		t.Fatalf("mean HIT@1 %v != Evaluate %v", got, m.HIT[1])
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func close(a, b float64) bool {
	d := a - b
	return d < 1e-9 && d > -1e-9
}

func TestRunSignificance(t *testing.T) {
	out := RunSignificance(ScaleTest, 200)
	if !strings.Contains(out, "vs Lucene") || !strings.Contains(out, "SIM@5") {
		t.Fatalf("output:\n%s", out)
	}
	if !strings.Contains(out, "vs LDA") {
		t.Fatalf("missing competitor:\n%s", out)
	}
}
