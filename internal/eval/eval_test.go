package eval

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"newslink"
)

// testDataset is shared across tests; building it is the expensive part.
var testDS *Dataset

func dataset(t *testing.T) *Dataset {
	t.Helper()
	if testDS == nil {
		testDS = BuildDataset(CNNSpec(ScaleTest))
	}
	return testDS
}

func TestBuildDataset(t *testing.T) {
	d := dataset(t)
	if len(d.Articles) != 120 {
		t.Fatalf("articles = %d", len(d.Articles))
	}
	if len(d.Split.Train) != 96 || len(d.Split.Test) != 12 {
		t.Fatalf("split = %d/%d/%d", len(d.Split.Train), len(d.Split.Validation), len(d.Split.Test))
	}
	if s := d.String(); !strings.Contains(s, "CNN") {
		t.Fatalf("String = %s", s)
	}
}

func TestQueriesModes(t *testing.T) {
	d := dataset(t)
	dens := d.Queries(Densest, 1)
	rnd := d.Queries(Random, 1)
	if len(dens) == 0 || len(dens) != len(rnd) {
		t.Fatalf("query counts: %d vs %d", len(dens), len(rnd))
	}
	for _, q := range dens {
		if q.Text == "" {
			t.Fatal("empty query")
		}
	}
	// Determinism.
	if d.Queries(Random, 1)[0] != rnd[0] {
		t.Fatal("random queries not deterministic under the same seed")
	}
	// Densest queries carry at least as much entity density on average.
	dAvg, rAvg := avgDensity(d, dens), avgDensity(d, rnd)
	if dAvg < rAvg {
		t.Fatalf("densest queries less dense than random: %v < %v", dAvg, rAvg)
	}
	if Densest.String() != "densest" || Random.String() != "random" {
		t.Fatal("mode names")
	}
}

func avgDensity(d *Dataset, qs []Query) float64 {
	s := 0.0
	for _, q := range qs {
		doc := d.Pipeline.Process(q.Text)
		for i := range doc.Sentences {
			s += doc.Sentences[i].EntityDensity()
		}
	}
	return s / float64(len(qs))
}

func TestJudge(t *testing.T) {
	d := dataset(t)
	j := NewJudge(d)
	if got := j.Sim(0, 0); got < 0.999 {
		t.Fatalf("self similarity = %v", got)
	}
	// A document is closer to itself than the average to another topic.
	if j.Sim(0, 0) <= j.Sim(0, len(d.Articles)-1) {
		t.Fatal("judge degenerate")
	}
	if got := j.SimText(d.Articles[3].Text, 3); got < 0.9 {
		t.Fatalf("SimText self = %v", got)
	}
}

func TestEvaluatePerfectAndWorstSystems(t *testing.T) {
	d := dataset(t)
	j := NewJudge(d)
	queries := d.Queries(Densest, 1)[:6]
	perfect := sysFunc{"perfect", func(q string, k int) []int {
		for _, query := range queries {
			if query.Text == q {
				out := []int{query.TargetID}
				for i := 0; len(out) < k; i++ {
					if i != query.TargetID {
						out = append(out, i)
					}
				}
				return out
			}
		}
		return nil
	}}
	m := Evaluate(perfect, queries, j)
	if m.HIT[1] != 1 || m.HIT[5] != 1 {
		t.Fatalf("perfect HIT = %v", m.HIT)
	}
	if m.SIM[5] <= 0 || m.SIM[5] > 1.0000001 {
		t.Fatalf("perfect SIM@5 = %v", m.SIM[5])
	}
	empty := sysFunc{"empty", func(string, int) []int { return nil }}
	m = Evaluate(empty, queries, j)
	if m.HIT[1] != 0 || m.SIM[5] != 0 {
		t.Fatalf("empty system metrics: %+v", m)
	}
	if got := Evaluate(empty, nil, j); got.N != 0 {
		t.Fatal("no queries should yield N=0")
	}
}

type sysFunc struct {
	name string
	fn   func(string, int) []int
}

func (s sysFunc) Name() string                 { return s.name }
func (s sysFunc) Search(q string, k int) []int { return s.fn(q, k) }

func TestAllSystemsReturnResults(t *testing.T) {
	d := dataset(t)
	queries := d.Queries(Densest, 1)[:3]
	systems := []System{
		NewLucene(d),
		NewDoc2Vec(d),
		NewSBERT(d),
		NewLDA(d, 8),
		NewQEPRF(d),
		NewNewsLink(d, 0.2, newslink.LCAG),
		NewNewsLink(d, 1.0, newslink.TreeEmb),
	}
	for _, sys := range systems {
		if sys.Name() == "" {
			t.Fatal("unnamed system")
		}
		for _, q := range queries {
			res := sys.Search(q.Text, 5)
			if len(res) == 0 {
				t.Fatalf("%s returned nothing for %q", sys.Name(), q.Text)
			}
			seen := map[int]bool{}
			for _, r := range res {
				if r < 0 || r >= len(d.Articles) {
					t.Fatalf("%s returned out-of-range doc %d", sys.Name(), r)
				}
				if seen[r] {
					t.Fatalf("%s returned duplicate doc %d", sys.Name(), r)
				}
				seen[r] = true
			}
		}
	}
}

// TestTable4Shape checks the robust orderings of Table IV at test scale
// (pairwise gaps between the strong systems are within noise on 24 queries,
// so only the orderings the paper reports with wide margins are asserted).
func TestTable4Shape(t *testing.T) {
	d := dataset(t)
	j := NewJudge(d)
	// Both query modes, for 2x the sample size.
	queries := append(d.Queries(Densest, 1), d.Queries(Random, 2)...)
	nl := Evaluate(NewNewsLink(d, 0.2, newslink.LCAG), queries, j)
	lda := Evaluate(NewLDA(d, 12), queries, j)
	doc2vec := Evaluate(NewDoc2Vec(d), queries, j)
	sbert := Evaluate(NewSBERT(d), queries, j)
	// LDA is the weakest system on every metric (clear in the paper too).
	if nl.HIT[1] <= lda.HIT[1]+0.2 || nl.SIM[5] <= lda.SIM[5] {
		t.Fatalf("NewsLink %.3f/%.3f should dominate LDA %.3f/%.3f",
			nl.HIT[1], nl.SIM[5], lda.HIT[1], lda.SIM[5])
	}
	// BOW-anchored systems recover the query document more often than the
	// pure embedding competitors.
	if nl.HIT[1] < doc2vec.HIT[1] {
		t.Fatalf("NewsLink HIT@1 %.3f below DOC2VEC %.3f", nl.HIT[1], doc2vec.HIT[1])
	}
	if nl.HIT[5] < sbert.HIT[5] {
		t.Fatalf("NewsLink HIT@5 %.3f below SBERT %.3f", nl.HIT[5], sbert.HIT[5])
	}
	if nl.HIT[1] < 0.3 {
		t.Fatalf("NewsLink HIT@1 too weak: %.3f", nl.HIT[1])
	}
	if nl.SIM[5] < sbert.SIM[5]-0.05 {
		t.Fatalf("NewsLink SIM@5 %.3f far below SBERT %.3f", nl.SIM[5], sbert.SIM[5])
	}
}

func TestMatchingRatio(t *testing.T) {
	d := dataset(t)
	r := MatchingRatio(d)
	if r < 0.8 || r > 1 {
		t.Fatalf("matching ratio = %v, want high but below 1", r)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("T", "a", "bb")
	tb.AddRow("x", "y")
	tb.AddRow("longer")
	out := tb.Render()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "longer") {
		t.Fatalf("render:\n%s", out)
	}
	if f3(0.966) != ".966" {
		t.Fatalf("f3 = %q", f3(0.966))
	}
	if pair(0.9, 0.8) != ".900/.800" {
		t.Fatalf("pair = %q", pair(0.9, 0.8))
	}
}

func TestRunTable5(t *testing.T) {
	out := RunTable5(ScaleTest).Render()
	if !strings.Contains(out, "CNN") || !strings.Contains(out, "Kaggle") || !strings.Contains(out, "%") {
		t.Fatalf("table 5:\n%s", out)
	}
}

func TestRunFigure5(t *testing.T) {
	r := RunFigure5(ScaleTest)
	if r.Participants != 20 {
		t.Fatalf("participants = %d", r.Participants)
	}
	if r.Pairs == 0 {
		t.Fatal("no study pairs found")
	}
	total := r.Counts[Helpful] + r.Counts[Neutral] + r.Counts[NotHelpful]
	if total != r.Pairs*r.Participants {
		t.Fatalf("verdicts %d != pairs*participants %d", total, r.Pairs*r.Participants)
	}
	// The paper: "more than half participants think the subgraph embeddings
	// are helpful".
	if float64(r.Counts[Helpful])/float64(total) <= 0.5 {
		t.Fatalf("helpful fraction %.2f <= 0.5; distribution %v",
			float64(r.Counts[Helpful])/float64(total), r.Counts)
	}
	if !strings.Contains(r.Render(), "helpful") {
		t.Fatal("render missing labels")
	}
	// The dissent feedback mirrors the paper's three failure modes; with
	// non-helpful verdicts present, at least one reason must be recorded.
	if r.Counts[Neutral]+r.Counts[NotHelpful] > 0 {
		sum := 0
		for _, c := range r.Reasons {
			sum += c
		}
		if sum != r.Counts[Neutral]+r.Counts[NotHelpful] {
			t.Fatalf("reasons %v do not cover dissent %d",
				r.Reasons, r.Counts[Neutral]+r.Counts[NotHelpful])
		}
		if !strings.Contains(r.Render(), "failure modes") {
			t.Fatal("render missing dissent feedback")
		}
	}
}

func TestRunFigure6(t *testing.T) {
	out := RunFigure6()
	if !strings.Contains(out, "Case study A") || !strings.Contains(out, "Case study B") {
		t.Fatalf("case study:\n%s", out)
	}
	if !strings.Contains(out, "Khyber") {
		t.Fatalf("case A must surface the induced entity Khyber:\n%s", out)
	}
	if !strings.Contains(out, "US presidential election 2016") {
		t.Fatalf("case B must surface the election node:\n%s", out)
	}
	if !strings.Contains(out, "-[") {
		t.Fatalf("no rendered relationship paths:\n%s", out)
	}
}

func TestRunFigure7AndTable8(t *testing.T) {
	f7 := RunFigure7(ScaleTest)
	if f7.Docs == 0 || f7.Segments <= 0 {
		t.Fatalf("figure 7 = %+v", f7)
	}
	if f7.NEGStar <= 0 || f7.NETree <= 0 || f7.NLP <= 0 {
		t.Fatalf("timings missing: %+v", f7)
	}
	if !strings.Contains(f7.Render(), "NE (G*)") {
		t.Fatal("render")
	}
	t8 := RunTable8(ScaleTest)
	if t8.Queries == 0 || t8.NE <= 0 || t8.NS <= 0 || t8.NLP <= 0 {
		t.Fatalf("table 8 = %+v", t8)
	}
	if !strings.Contains(t8.Render(), "Table VIII") {
		t.Fatal("render")
	}
}

func TestRunCoverage(t *testing.T) {
	out := RunCoverage(ScaleTest).Render()
	if !strings.Contains(out, "CNN") || !strings.Contains(out, "%") {
		t.Fatalf("coverage:\n%s", out)
	}
}

func TestCoverageHigh(t *testing.T) {
	c := Coverage(dataset(t))
	if c.Total == 0 || c.Fraction() < 0.85 {
		t.Fatalf("coverage = %+v", c)
	}
	if c.EmbeddedSegments == 0 || c.Segments < c.EmbeddedSegments {
		t.Fatalf("segment counts: %+v", c)
	}
}

func TestRunAblations(t *testing.T) {
	out := RunAblations(ScaleTest).Render()
	for _, want := range []string{"coverage", "compactness", "early termination", "maximal"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablation table missing %q:\n%s", want, out)
		}
	}
}

func TestTRECExport(t *testing.T) {
	d := dataset(t)
	queries := d.Queries(Densest, 1)[:4]
	var qrels, run bytes.Buffer
	if err := WriteQrels(&qrels, queries); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(qrels.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("qrels lines = %d", len(lines))
	}
	for i, l := range lines {
		var qid, docno string
		var zero, rel int
		if _, err := fmt.Sscanf(l, "%s %d %s %d", &qid, &zero, &docno, &rel); err != nil {
			t.Fatalf("qrels line %d: %v", i, err)
		}
		if qid != fmt.Sprintf("q%d", i) || rel != 1 {
			t.Fatalf("qrels line %d: %s", i, l)
		}
	}
	sys := NewLucene(d)
	if err := WriteRun(&run, sys, queries, 5); err != nil {
		t.Fatal(err)
	}
	runLines := strings.Split(strings.TrimSpace(run.String()), "\n")
	if len(runLines) == 0 {
		t.Fatal("empty run")
	}
	var qid, q0, docno, tag string
	var rank int
	var score float64
	if _, err := fmt.Sscanf(runLines[0], "%s %s %s %d %g %s",
		&qid, &q0, &docno, &rank, &score, &tag); err != nil {
		t.Fatalf("run line: %v (%s)", err, runLines[0])
	}
	if q0 != "Q0" || rank != 1 || tag != "Lucene" {
		t.Fatalf("run line: %s", runLines[0])
	}
	// Ranks are increasing per query and scores decreasing.
	prevRank, prevScore, prevQ := 0, 1e18, ""
	for _, l := range runLines {
		fmt.Sscanf(l, "%s %s %s %d %g %s", &qid, &q0, &docno, &rank, &score, &tag)
		if qid != prevQ {
			prevQ, prevRank, prevScore = qid, 0, 1e18
		}
		if rank != prevRank+1 || score >= prevScore {
			t.Fatalf("rank/score ordering broken: %s", l)
		}
		prevRank, prevScore = rank, score
	}
}

func TestValidationQueriesDisjointFromTest(t *testing.T) {
	d := dataset(t)
	val := d.ValidationQueries(Densest, 1)
	test := d.Queries(Densest, 1)
	if len(val) == 0 {
		t.Fatal("no validation queries")
	}
	testIDs := map[int]bool{}
	for _, q := range test {
		testIDs[q.TargetID] = true
	}
	for _, q := range val {
		if testIDs[q.TargetID] {
			t.Fatalf("validation query targets test doc %d", q.TargetID)
		}
	}
}

func TestRunBetaTuning(t *testing.T) {
	out := RunBetaTuning(ScaleTest).Render()
	if !strings.Contains(out, "selected β=") || !strings.Contains(out, "<-") {
		t.Fatalf("tuning table:\n%s", out)
	}
	// β=0 and β=1 rows must be present.
	if !strings.Contains(out, "0.0") || !strings.Contains(out, "1.0") {
		t.Fatalf("sweep incomplete:\n%s", out)
	}
}

func TestRunTable4Smoke(t *testing.T) {
	tables := RunTable4(ScaleTest)
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	for _, tb := range tables {
		out := tb.Render()
		for _, sys := range []string{"DOC2VEC", "SBERT", "LDA", "QEPRF", "Lucene", "NewsLink(0.2)"} {
			if !strings.Contains(out, sys) {
				t.Fatalf("missing %s:\n%s", sys, out)
			}
		}
		// Every data row carries densest/random pairs.
		if !strings.Contains(out, "/") {
			t.Fatalf("no paired cells:\n%s", out)
		}
	}
}

func TestRunTable7Smoke(t *testing.T) {
	tables := RunTable7(ScaleTest)
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	out := tables[0].Render()
	for _, row := range []string{"Lucene(β=0)", "NewsLink(0.2)", "NewsLink(1.0)", "TreeEmb(0.2)", "TreeEmb(1.0)"} {
		if !strings.Contains(out, row) {
			t.Fatalf("missing %s:\n%s", row, out)
		}
	}
}
