package eval

import (
	"fmt"

	"newslink/internal/core"
	"newslink/internal/nlp"
)

// CoverageResult reports how much of a corpus receives a subgraph
// embedding. The paper filters out documents with no embedding and reports
// the kept fraction (Section VII-A2: CNN 89,197 of 92,580 = 96.3%, Kaggle
// 82,182 of 90,130 = 91.2%).
type CoverageResult struct {
	Total      int
	Embeddable int
	// Segments and EmbeddedSegments count per-segment coverage.
	Segments         int
	EmbeddedSegments int
}

// Fraction returns the embeddable document share.
func (c CoverageResult) Fraction() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Embeddable) / float64(c.Total)
}

// Coverage embeds every document of the dataset and counts coverage.
func Coverage(d *Dataset) CoverageResult {
	emb := core.NewEmbedder(d.World.Graph, core.Options{MaxDepth: 6})
	var r CoverageResult
	for _, a := range d.Articles {
		doc := d.Pipeline.Process(a.Text)
		groups := nlp.MaximalSets(doc.EntityGroups())
		r.Total++
		r.Segments += len(groups)
		e := emb.EmbedGroups(groups)
		if e != nil {
			r.Embeddable++
			r.EmbeddedSegments += len(e.Subgraphs)
		}
	}
	return r
}

// RunCoverage reproduces the corpus statistics of Section VII-A2: the
// fraction of documents for which a subgraph embedding exists.
func RunCoverage(scale Scale) *Table {
	t := NewTable("Corpus coverage (Section VII-A2): documents with a subgraph embedding",
		"corpus", "documents", "embeddable", "fraction", "segments embedded")
	for _, spec := range []DatasetSpec{CNNSpec(scale), KaggleSpec(scale)} {
		d := BuildDataset(spec)
		c := Coverage(d)
		t.AddRow(d.Spec.Name,
			fmt.Sprint(c.Total),
			fmt.Sprint(c.Embeddable),
			fmt.Sprintf("%.1f%%", 100*c.Fraction()),
			fmt.Sprintf("%d/%d", c.EmbeddedSegments, c.Segments),
		)
	}
	return t
}
