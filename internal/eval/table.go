package eval

import (
	"fmt"
	"strings"
)

// Table is a simple text table for experiment reports; it renders with
// aligned columns so the output reads like the paper's tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render formats the table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i := 0; i < len(widths) && i < len(r); i++ {
			if len(r[i]) > widths[i] {
				widths[i] = len(r[i])
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", w, c)
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2))
	sb.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	return sb.String()
}

// f3 formats a metric the way the paper prints them (".966").
func f3(v float64) string {
	s := fmt.Sprintf("%.3f", v)
	return strings.TrimPrefix(s, "0")
}

// pair renders the paper's "densest/random" cell format.
func pair(a, b float64) string { return f3(a) + "/" + f3(b) }

// bar renders a proportional ASCII bar of v relative to max, width cells.
func bar(v, max float64, width int) string {
	if max <= 0 || v < 0 {
		return ""
	}
	n := int(v / max * float64(width))
	if n > width {
		n = width
	}
	if n == 0 && v > 0 {
		n = 1
	}
	return strings.Repeat("#", n)
}
