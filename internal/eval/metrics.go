package eval

// Metrics holds the evaluation results of one system on one query set.
type Metrics struct {
	SIM map[int]float64 // SIM@k averaged over test cases (Equation 4)
	HIT map[int]float64 // HIT@k: fraction of queries recovering Q in top k
	N   int             // number of test cases
}

// SimKs and HitKs are the cutoffs reported in Table IV.
var (
	SimKs = []int{5, 10, 20}
	HitKs = []int{1, 5}
)

// System is a search competitor: it retrieves corpus document IDs for a
// query text. All systems index the full corpus (the evaluation searches
// "the entire news corpus", Section VII-B).
type System interface {
	Name() string
	Search(query string, k int) []int
}

// Evaluate runs the Partial Query Similarity Search task: every query is a
// sentence of a held-out test document; SIM@k judges the similarity of the
// top-k results against the full test document, HIT@k checks whether the
// test document itself is recovered.
func Evaluate(sys System, queries []Query, judge *Judge) Metrics {
	m := Metrics{SIM: map[int]float64{}, HIT: map[int]float64{}}
	if len(queries) == 0 {
		return m
	}
	maxK := 0
	for _, k := range SimKs {
		if k > maxK {
			maxK = k
		}
	}
	for _, k := range HitKs {
		if k > maxK {
			maxK = k
		}
	}
	for _, q := range queries {
		res := sys.Search(q.Text, maxK)
		for _, k := range SimKs {
			n := k
			if n > len(res) {
				n = len(res)
			}
			s := 0.0
			for _, r := range res[:n] {
				s += judge.Sim(q.TargetID, r)
			}
			if k > 0 {
				// Missing results score zero, as an empty result list should
				// not be rewarded.
				m.SIM[k] += s / float64(k)
			}
		}
		for _, k := range HitKs {
			n := k
			if n > len(res) {
				n = len(res)
			}
			for _, r := range res[:n] {
				if r == q.TargetID {
					m.HIT[k]++
					break
				}
			}
		}
	}
	m.N = len(queries)
	for _, k := range SimKs {
		m.SIM[k] /= float64(m.N)
	}
	for _, k := range HitKs {
		m.HIT[k] /= float64(m.N)
	}
	return m
}
