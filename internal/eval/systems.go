package eval

import (
	"fmt"

	"newslink"
	"newslink/internal/corpus"
	"newslink/internal/index"
	"newslink/internal/lda"
	"newslink/internal/nlp"
	"newslink/internal/qeprf"
	"newslink/internal/search"
	"newslink/internal/textembed"
)

// --- NewsLink ---

// NewsLinkSystem adapts the public engine to the evaluation harness.
type NewsLinkSystem struct {
	name   string
	engine *newslink.Engine
}

// NewNewsLink indexes the dataset with the given fusion weight and
// embedding model (LCAG for NewsLink(β), TreeEmb for the Table VII
// baseline).
func NewNewsLink(d *Dataset, beta float64, model newslink.EmbeddingModel) *NewsLinkSystem {
	cfg := newslink.DefaultConfig()
	cfg.Beta = beta
	cfg.Model = model
	e := newslink.New(d.World.Graph, cfg)
	for _, a := range d.Articles {
		if err := e.Add(newslink.Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
			panic(err) // Add only fails after Build; a bug, not an input error
		}
	}
	if err := e.Build(); err != nil {
		panic(err)
	}
	name := fmt.Sprintf("NewsLink(%.1f)", beta)
	if model == newslink.TreeEmb {
		name = fmt.Sprintf("TreeEmb(%.1f)", beta)
	}
	return &NewsLinkSystem{name: name, engine: e}
}

// Name implements System.
func (s *NewsLinkSystem) Name() string { return s.name }

// Engine exposes the wrapped engine (for explanation-based experiments).
func (s *NewsLinkSystem) Engine() *newslink.Engine { return s.engine }

// Search implements System.
func (s *NewsLinkSystem) Search(query string, k int) []int {
	res, err := s.engine.Search(query, k)
	if err != nil {
		return nil
	}
	out := make([]int, len(res))
	for i, r := range res {
		out[i] = r.ID
	}
	return out
}

// --- Lucene (BM25 over BOW) ---

// LuceneSystem is the Apache Lucene baseline: BM25 with default parameters
// over the text inverted index.
type LuceneSystem struct {
	idx *index.Index
}

// NewLucene indexes the dataset's text.
func NewLucene(d *Dataset) *LuceneSystem {
	b := index.NewBuilder()
	for _, terms := range d.AllTexts() {
		b.Add(terms)
	}
	return &LuceneSystem{idx: b.Build()}
}

// Name implements System.
func (s *LuceneSystem) Name() string { return "Lucene" }

// Search implements System.
func (s *LuceneSystem) Search(query string, k int) []int {
	hits := search.TopKMaxScore(s.idx, search.NewBM25(s.idx), search.NewQuery(nlp.Terms(query)), k)
	out := make([]int, len(hits))
	for i, h := range hits {
		out[i] = int(h.Doc)
	}
	return out
}

// --- DOC2VEC ---

// Doc2VecSystem embeds documents with corpus-trained distributional word
// vectors (the DOC2VEC substitute, 500 dimensions as in the paper).
type Doc2VecSystem struct {
	wv   *textembed.WordVectors
	vecs []textembed.Vector
}

// NewDoc2Vec trains on the training split and infers vectors for the whole
// corpus, as the paper does.
func NewDoc2Vec(d *Dataset) *Doc2VecSystem {
	wv := textembed.TrainWordVectors(d.TrainTexts(),
		textembed.WordVectorConfig{Dim: 500, Window: 5, Seed: d.Spec.Seed + 11, NNZ: 8})
	s := &Doc2VecSystem{wv: wv}
	for _, terms := range d.AllTexts() {
		s.vecs = append(s.vecs, wv.EmbedDoc(terms))
	}
	return s
}

// Name implements System.
func (s *Doc2VecSystem) Name() string { return "DOC2VEC" }

// Search implements System.
func (s *Doc2VecSystem) Search(query string, k int) []int {
	q := s.wv.EmbedDoc(nlp.Terms(query))
	return neighborsToIDs(textembed.TopKCosine(s.vecs, q, k))
}

// --- SBERT ---

// SBERTSystem embeds documents with the pretrained-style character-n-gram
// encoder (1024 dimensions as in the paper's bert-large-nli-mean-tokens).
type SBERTSystem struct {
	enc  *textembed.SBERT
	vecs []textembed.Vector
}

// NewSBERT encodes the whole corpus.
func NewSBERT(d *Dataset) *SBERTSystem {
	s := &SBERTSystem{enc: textembed.NewSBERT(1024)}
	for _, terms := range d.AllTexts() {
		s.vecs = append(s.vecs, s.enc.Encode(terms))
	}
	return s
}

// Name implements System.
func (s *SBERTSystem) Name() string { return "SBERT" }

// Search implements System.
func (s *SBERTSystem) Search(query string, k int) []int {
	return neighborsToIDs(textembed.TopKCosine(s.vecs, s.enc.Encode(nlp.Terms(query)), k))
}

// --- LDA ---

// LDASystem ranks by cosine similarity of topic mixtures.
type LDASystem struct {
	model *lda.Model
	mixes [][]float64
	seed  int64
}

// NewLDA trains on the training split (the paper uses 500 topics on 90k
// docs; topics scale with the corpus here).
func NewLDA(d *Dataset, topics int) *LDASystem {
	cfg := lda.DefaultConfig(topics, d.Spec.Seed+23)
	m, err := lda.Train(d.TrainTexts(), cfg)
	if err != nil {
		panic(err) // config is internal; an error here is a bug
	}
	s := &LDASystem{model: m, seed: d.Spec.Seed + 31}
	for i, terms := range d.AllTexts() {
		s.mixes = append(s.mixes, m.Infer(terms, 30, s.seed+int64(i)))
	}
	return s
}

// Name implements System.
func (s *LDASystem) Name() string { return "LDA" }

// Search implements System.
func (s *LDASystem) Search(query string, k int) []int {
	q := s.model.Infer(nlp.Terms(query), 30, s.seed)
	type scored struct {
		id int
		v  float64
	}
	best := make([]scored, 0, k+1)
	for i, mix := range s.mixes {
		v := lda.CosineTopics(q, mix)
		if len(best) == k && v <= best[k-1].v {
			continue
		}
		pos := len(best)
		for pos > 0 && best[pos-1].v < v {
			pos--
		}
		best = append(best, scored{})
		copy(best[pos+1:], best[pos:])
		best[pos] = scored{i, v}
		if len(best) > k {
			best = best[:k]
		}
	}
	out := make([]int, len(best))
	for i, b := range best {
		out[i] = b.id
	}
	return out
}

// --- QEPRF ---

// QEPRFSystem is the KG query-expansion baseline.
type QEPRFSystem struct {
	eng *qeprf.Engine
}

// NewQEPRF indexes the dataset and wires the expansion engine.
func NewQEPRF(d *Dataset) *QEPRFSystem {
	texts := d.AllTexts()
	b := index.NewBuilder()
	for _, terms := range texts {
		b.Add(terms)
	}
	return &QEPRFSystem{eng: qeprf.New(d.World.Graph, b.Build(), texts, qeprf.DefaultConfig())}
}

// Name implements System.
func (s *QEPRFSystem) Name() string { return "QEPRF" }

// Search implements System.
func (s *QEPRFSystem) Search(query string, k int) []int {
	hits := s.eng.Search(query, k)
	out := make([]int, len(hits))
	for i, h := range hits {
		out[i] = int(h.Doc)
	}
	return out
}

func neighborsToIDs(ns []textembed.Neighbor) []int {
	out := make([]int, len(ns))
	for i, n := range ns {
		out[i] = n.Idx
	}
	return out
}

// assertArticlesAligned documents the invariant systems rely on: article ID
// equals its position in Dataset.Articles.
func assertArticlesAligned(arts []corpus.Article) {
	for i, a := range arts {
		if a.ID != i {
			panic(fmt.Sprintf("eval: article %d has ID %d; IDs must be positional", i, a.ID))
		}
	}
}
