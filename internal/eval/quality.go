package eval

import "newslink"

// evalBothModes evaluates a system on the densest-entity and random query
// sets (the paper reports every metric as densest/random).
func evalBothModes(sys System, d *Dataset, judge *Judge) (dens, rnd Metrics) {
	dens = Evaluate(sys, d.Queries(Densest, d.Spec.Seed+41), judge)
	rnd = Evaluate(sys, d.Queries(Random, d.Spec.Seed+43), judge)
	return dens, rnd
}

// addQualityRow renders one system's metrics in Table IV/VII format:
// SIM@5, SIM@10, SIM@20, HIT@1, HIT@5 as densest/random pairs.
func addQualityRow(t *Table, name string, dens, rnd Metrics) {
	t.AddRow(name,
		pair(dens.SIM[5], rnd.SIM[5]),
		pair(dens.SIM[10], rnd.SIM[10]),
		pair(dens.SIM[20], rnd.SIM[20]),
		pair(dens.HIT[1], rnd.HIT[1]),
		pair(dens.HIT[5], rnd.HIT[5]),
	)
}

func qualityHeaders() []string {
	return []string{"system", "SIM@5", "SIM@10", "SIM@20", "HIT@1", "HIT@5"}
}

// ldaTopics scales the topic count with the corpus (the paper uses 500 on
// 90k documents).
func ldaTopics(s Scale) int {
	switch s {
	case ScaleTest:
		return 12
	case ScaleSmall:
		return 25
	default:
		return 50
	}
}

// RunTable4 reproduces Table IV: search effectiveness of DOC2VEC, SBERT,
// LDA, QEPRF, Lucene and NewsLink(0.2) on both datasets, with
// densest/random query variants. One table per dataset is returned.
func RunTable4(scale Scale) []*Table {
	var out []*Table
	for _, spec := range []DatasetSpec{CNNSpec(scale), KaggleSpec(scale)} {
		d := BuildDataset(spec)
		judge := NewJudge(d)
		t := NewTable("Table IV ("+d.Spec.Name+"): effectiveness of search results (densest/random)",
			qualityHeaders()...)
		systems := []System{
			NewDoc2Vec(d),
			NewSBERT(d),
			NewLDA(d, ldaTopics(scale)),
			NewQEPRF(d),
			NewLucene(d),
			NewNewsLink(d, 0.2, newslink.LCAG),
		}
		for _, sys := range systems {
			dens, rnd := evalBothModes(sys, d, judge)
			addQualityRow(t, sys.Name(), dens, rnd)
		}
		out = append(out, t)
	}
	return out
}

// RunTable7 reproduces Table VII: NewsLink(β) versus the tree-based
// embedding model TreeEmb(β) for β in {0.2, 0.5, 0.8, 1.0}; β = 0 reduces
// to the Lucene baseline and is included as the reference row.
func RunTable7(scale Scale) []*Table {
	betas := []float64{0.2, 0.5, 0.8, 1.0}
	var out []*Table
	for _, spec := range []DatasetSpec{CNNSpec(scale), KaggleSpec(scale)} {
		d := BuildDataset(spec)
		judge := NewJudge(d)
		t := NewTable("Table VII ("+d.Spec.Name+"): G* vs TreeEmb across β (densest/random)",
			qualityHeaders()...)
		lucene := NewLucene(d)
		dens, rnd := evalBothModes(lucene, d, judge)
		addQualityRow(t, "Lucene(β=0)", dens, rnd)
		for _, beta := range betas {
			sys := NewNewsLink(d, beta, newslink.LCAG)
			dens, rnd := evalBothModes(sys, d, judge)
			addQualityRow(t, sys.Name(), dens, rnd)
		}
		for _, beta := range betas {
			sys := NewNewsLink(d, beta, newslink.TreeEmb)
			dens, rnd := evalBothModes(sys, d, judge)
			addQualityRow(t, sys.Name(), dens, rnd)
		}
		out = append(out, t)
	}
	return out
}
