package eval

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"newslink"
	"newslink/internal/corpus"
	"newslink/internal/kg"
)

// The user study of Figure 5 asked 20 human participants whether the
// subgraph embeddings of ten query/result pairs (retrieved with β=1) helped
// them understand the stories and their relatedness. Humans are not
// available offline, so the study runs against a population of simulated
// annotators whose preference axes encode exactly the three failure modes
// the paper's participants reported (Section VII-D): (1) the connection was
// already known to them, (2) the extra information already appears in the
// text, (3) too much information overwhelms. See DESIGN.md §1.

// Verdict is one annotator's answer.
type Verdict int

// Verdicts.
const (
	NotHelpful Verdict = iota
	Neutral
	Helpful
)

// String returns the verdict label used in Figure 5.
func (v Verdict) String() string {
	switch v {
	case Helpful:
		return "helpful"
	case Neutral:
		return "neutral"
	default:
		return "not helpful"
	}
}

// annotator is one simulated participant.
type annotator struct {
	noveltyWeight     float64 // reward for induced (not-in-text) entities
	redundancyPenalty float64 // penalty for overlap already visible in text
	overloadThreshold int     // tolerated number of shown paths+entities
	priorKnowledge    float64 // probability the connection is already known
	rng               *rand.Rand
}

// pairFeatures summarizes what one query/result pair shows a participant.
type pairFeatures struct {
	induced    int // shared embedding entities absent from both texts
	inText     int // shared embedding entities already present in a text
	novelPaths int // multi-hop paths, or paths through a not-in-text node
	trivial    int // single-hop paths between entities both in the text
	totalShown int // entities + paths displayed
}

// Dissent reasons mirror the participant feedback of Section VII-D.
const (
	reasonKnown      = "connection already known"
	reasonRedundant  = "information already in the text"
	reasonOverloaded = "too much information"
)

// judge returns the annotator's verdict for a pair plus the dominant reason
// when the verdict is not Helpful. Novel information is (a) induced
// entities absent from the text and (b) relationship paths whose relations
// are unlikely to be verbalized in the text (multi-hop, or passing through
// an unseen node); a one-hop path between two entities the text already
// connects is redundant (failure mode 2 of Section VII-D).
func (a *annotator) judge(f pairFeatures) (Verdict, string) {
	if a.rng.Float64() < a.priorKnowledge {
		// Failure mode 1: the participant already knew the connection.
		if a.rng.Float64() < 0.5 {
			return Neutral, reasonKnown
		}
		return NotHelpful, reasonKnown
	}
	novelty := float64(minI(f.novelPaths, 3))/3 + float64(minI(f.induced, 3))/6
	redundancy := 0.0
	if f.novelPaths+f.trivial > 0 {
		redundancy = float64(f.trivial) / float64(f.novelPaths+f.trivial)
	}
	score := a.noveltyWeight*novelty - a.redundancyPenalty*redundancy
	overloaded := f.totalShown > a.overloadThreshold
	if overloaded {
		// Failure mode 3: information overload.
		score -= 1.0
	}
	switch {
	case score > 0.25:
		return Helpful, ""
	case score > -0.05:
		if overloaded {
			return Neutral, reasonOverloaded
		}
		return Neutral, reasonRedundant
	default:
		if overloaded {
			return NotHelpful, reasonOverloaded
		}
		return NotHelpful, reasonRedundant
	}
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Figure5Result aggregates the study.
type Figure5Result struct {
	Pairs        int
	Participants int
	Counts       map[Verdict]int
	// Reasons counts the dominant dissent reason of every non-helpful
	// verdict, mirroring the participant feedback of Section VII-D.
	Reasons map[string]int
}

// Render formats the result as the Figure 5 distribution.
func (r Figure5Result) Render() string {
	total := 0
	for _, c := range r.Counts {
		total += c
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 5: user study (%d participants x %d pairs, β=1)\n",
		r.Participants, r.Pairs)
	for _, v := range []Verdict{Helpful, Neutral, NotHelpful} {
		c := r.Counts[v]
		fmt.Fprintf(&sb, "  %-12s %3d (%3.0f%%) %s\n", v, c,
			100*float64(c)/float64(total), bar(float64(c), float64(total), 40))
	}
	if len(r.Reasons) > 0 {
		sb.WriteString("dissent feedback (Section VII-D failure modes):\n")
		for _, reason := range []string{reasonKnown, reasonRedundant, reasonOverloaded} {
			if c := r.Reasons[reason]; c > 0 {
				fmt.Fprintf(&sb, "  %-34s %3d\n", reason, c)
			}
		}
	}
	return sb.String()
}

// RunFigure5 reproduces the user study: ten query/result pairs are drawn
// from a mixed-topic dataset with subgraph-only retrieval (β=1), their
// explanation features are computed from the actual system output, and 20
// simulated annotators judge each pair. Like the paper's study, this is a
// fixed instrument — ten specific pairs shown to every participant — so the
// pair corpus is pinned to the small scale regardless of the experiment
// scale (the scale parameter is accepted for interface uniformity).
func RunFigure5(scale Scale) Figure5Result {
	_ = scale
	d := BuildDataset(CNNSpec(ScaleSmall))
	sys := NewNewsLink(d, 1.0, newslink.LCAG)
	queries := d.Queries(Densest, d.Spec.Seed+41)
	// Pick ten pairs spanning topics, as the paper did.
	pairs := pickStudyPairs(d, sys, queries, 10)
	rng := rand.New(rand.NewSource(555))
	participants := make([]annotator, 20)
	for i := range participants {
		participants[i] = annotator{
			noveltyWeight:     0.85 + 0.6*rng.Float64(),
			redundancyPenalty: 0.2 + 0.4*rng.Float64(),
			overloadThreshold: 7 + rng.Intn(11),
			priorKnowledge:    0.05 + 0.2*rng.Float64(),
			rng:               rand.New(rand.NewSource(rng.Int63())),
		}
	}
	res := Figure5Result{Pairs: len(pairs), Participants: len(participants),
		Counts: map[Verdict]int{}, Reasons: map[string]int{}}
	for _, f := range pairs {
		for i := range participants {
			v, reason := participants[i].judge(f)
			res.Counts[v]++
			if reason != "" {
				res.Reasons[reason]++
			}
		}
	}
	return res
}

// pickStudyPairs selects up to n query/top-result pairs across topics and
// extracts their explanation features from the engine.
func pickStudyPairs(d *Dataset, sys *NewsLinkSystem, queries []Query, n int) []pairFeatures {
	byTopic := map[kg.Topic][]Query{}
	maxBucket := 0
	for _, q := range queries {
		t := d.Articles[q.TargetID].Topic
		byTopic[t] = append(byTopic[t], q)
		if len(byTopic[t]) > maxBucket {
			maxBucket = len(byTopic[t])
		}
	}
	// Round-robin across the event topics so the ten pairs span themes, as
	// the paper's did. Queries from topics outside the catalogue (e.g. wire
	// briefs) are skipped — they have no embeddings to study.
	var ordered []Query
	for i := 0; i < maxBucket; i++ {
		for _, t := range kg.AllTopics {
			if i < len(byTopic[t]) {
				ordered = append(ordered, byTopic[t][i])
			}
		}
	}
	var out []pairFeatures
	for _, q := range ordered {
		if len(out) >= n {
			break
		}
		res := sys.Search(q.Text, 2)
		// The top result distinct from the query document.
		target := -1
		for _, r := range res {
			if r != q.TargetID {
				target = r
				break
			}
		}
		if target < 0 {
			continue
		}
		exp, err := sys.Engine().Explain(q.Text, target, 6)
		if err != nil || len(exp.SharedEntities) == 0 {
			continue
		}
		texts := strings.ToLower(q.Text + " " + d.Articles[target].Text)
		inText := func(label string) bool {
			return strings.Contains(texts, strings.ToLower(label))
		}
		var f pairFeatures
		for _, e := range exp.SharedEntities {
			if inText(e) {
				f.inText++
			} else {
				f.induced++
			}
		}
		for _, p := range exp.Paths {
			novel := len(p.Nodes) > 2
			for _, n := range p.Nodes {
				if !inText(n) {
					novel = true
				}
			}
			if novel {
				f.novelPaths++
			} else {
				f.trivial++
			}
		}
		f.totalShown = len(exp.SharedEntities) + len(exp.Paths)
		out = append(out, f)
	}
	return out
}

// RunFigure6 reproduces the case study (Figure 6 and Tables I/II/VI): it
// runs β=1 retrieval on the hand-written sample corpus and renders the
// subgraph embeddings, their overlap, and the relationship paths that
// explain the result.
func RunFigure6() string {
	g, arts := corpus.Sample()
	cfg := newslink.DefaultConfig()
	cfg.Beta = 1
	e := newslink.New(g, cfg)
	for _, a := range arts {
		if err := e.Add(newslink.Document{ID: a.ID, Title: a.Title, Text: a.Text}); err != nil {
			panic(err)
		}
	}
	if err := e.Build(); err != nil {
		panic(err)
	}
	var sb strings.Builder
	cases := []struct {
		title string
		query string
	}{
		{"Case study A (Figure 1 / Tables I-II)",
			"Military conflicts between Pakistan and Taliban reached Upper Dir and the Swat Valley."},
		{"Case study B (Figure 6 / Table VI)",
			"Sanders said voters were tired of hearing about Clinton and the FBI emails."},
	}
	for _, c := range cases {
		fmt.Fprintf(&sb, "%s\nQ: %s\n", c.title, c.query)
		res, err := e.Search(c.query, 2)
		if err != nil || len(res) == 0 {
			sb.WriteString("  (no result)\n\n")
			continue
		}
		r := res[0]
		fmt.Fprintf(&sb, "R: [%d] %s (score %.3f)\n", r.ID, r.Title, r.Score)
		exp, err := e.Explain(c.query, r.ID, 6)
		if err != nil {
			panic(err)
		}
		shared := append([]string(nil), exp.SharedEntities...)
		sort.Strings(shared)
		fmt.Fprintf(&sb, "Overlap of subgraph embeddings: %s\n", strings.Join(shared, ", "))
		sb.WriteString("Relationship paths (evidence):\n")
		for _, p := range exp.Paths {
			fmt.Fprintf(&sb, "  %s\n", p.Rendered)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
