// Package qeprf implements the KG-powered query-expansion baseline of the
// paper (Xiong & Callan, "Query Expansion with Freebase", ICTIR'15 — the
// unsupervised variant the paper evaluates as QEPRF): queries are expanded
// with terms from the descriptions of linked KG entities and re-ranked with
// a pseudo-relevance-feedback pass over the top retrieved documents.
package qeprf

import (
	"sort"
	"strings"

	"newslink/internal/index"
	"newslink/internal/kg"
	"newslink/internal/nlp"
	"newslink/internal/search"
)

// Config holds the expansion and feedback parameters.
type Config struct {
	// KGTerms is the maximum number of expansion terms drawn from entity
	// descriptions.
	KGTerms int
	// KGWeight is the query weight of each KG expansion term relative to an
	// original query term (weight 1).
	KGWeight float64
	// FeedbackDocs is the number of top-ranked documents used for PRF.
	FeedbackDocs int
	// FeedbackTerms is the number of expansion terms drawn from them.
	FeedbackTerms int
	// FeedbackWeight is the query weight of each PRF term.
	FeedbackWeight float64
}

// DefaultConfig mirrors common unsupervised QE settings.
func DefaultConfig() Config {
	return Config{
		KGTerms:        10,
		KGWeight:       0.4,
		FeedbackDocs:   10,
		FeedbackTerms:  15,
		FeedbackWeight: 0.3,
	}
}

// Engine runs QEPRF searches over a text index.
type Engine struct {
	G        *kg.Graph
	Pipeline *nlp.Pipeline
	Idx      *index.Index
	DocTerms [][]string // analyzed terms per indexed document, for PRF
	Cfg      Config
}

// New returns a QEPRF engine. docTerms must be aligned with the index's
// DocIDs.
func New(g *kg.Graph, idx *index.Index, docTerms [][]string, cfg Config) *Engine {
	return &Engine{
		G:        g,
		Pipeline: nlp.NewPipeline(g.Index()),
		Idx:      idx,
		DocTerms: docTerms,
		Cfg:      cfg,
	}
}

// Search retrieves the top k documents for the query text.
func (e *Engine) Search(query string, k int) []search.Hit {
	scorer := search.NewBM25(e.Idx)
	q := search.NewQuery(nlp.Terms(query))
	// Phase 1: KG expansion from linked entity descriptions.
	for term, w := range e.kgExpansion(query) {
		q[term] += w
	}
	// Phase 2: initial retrieval, then PRF re-ranking.
	pool := k + e.Cfg.FeedbackDocs
	initial := search.TopK(e.Idx, scorer, q, pool)
	for term, w := range e.prfExpansion(initial) {
		q[term] += w
	}
	return search.TopK(e.Idx, scorer, q, k)
}

// kgExpansion links entities in the query and extracts description terms:
// the node's Desc plus the labels of its direct neighbors (the synthetic
// KG's equivalent of Freebase descriptions).
func (e *Engine) kgExpansion(query string) map[string]float64 {
	if e.Cfg.KGTerms <= 0 {
		return nil
	}
	doc := e.Pipeline.Process(query)
	counts := make(map[string]float64)
	for _, s := range doc.Sentences {
		for _, label := range s.Labels() {
			for _, node := range e.G.Lookup(label) {
				var sb strings.Builder
				sb.WriteString(e.G.Node(node).Desc)
				for i, a := range e.G.Neighbors(node) {
					if i >= 8 {
						break
					}
					sb.WriteByte(' ')
					sb.WriteString(e.G.Label(a.To))
				}
				for _, t := range nlp.Terms(sb.String()) {
					counts[t]++
				}
			}
		}
	}
	return topWeighted(counts, e.Cfg.KGTerms, e.Cfg.KGWeight)
}

// prfExpansion scores terms of the feedback documents by their total BM25
// contribution and returns the best ones.
func (e *Engine) prfExpansion(initial []search.Hit) map[string]float64 {
	if e.Cfg.FeedbackDocs <= 0 || e.Cfg.FeedbackTerms <= 0 {
		return nil
	}
	n := e.Cfg.FeedbackDocs
	if n > len(initial) {
		n = len(initial)
	}
	scorer := search.NewBM25(e.Idx)
	scores := make(map[string]float64)
	for _, h := range initial[:n] {
		if int(h.Doc) >= len(e.DocTerms) {
			continue
		}
		tf := make(map[string]float64)
		for _, t := range e.DocTerms[h.Doc] {
			tf[t]++
		}
		for term, f := range tf {
			scores[term] += scorer.Weight(f, e.Idx.DF(term), e.Idx.DocLen(h.Doc))
		}
	}
	return topWeighted(scores, e.Cfg.FeedbackTerms, e.Cfg.FeedbackWeight)
}

// topWeighted keeps the n highest-scoring terms, each at weight w.
func topWeighted(scores map[string]float64, n int, w float64) map[string]float64 {
	type ts struct {
		t string
		s float64
	}
	all := make([]ts, 0, len(scores))
	for t, s := range scores {
		all = append(all, ts{t, s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].t < all[j].t
	})
	if n > len(all) {
		n = len(all)
	}
	out := make(map[string]float64, n)
	for _, x := range all[:n] {
		out[x.t] = w
	}
	return out
}
