package qeprf

import (
	"testing"

	"newslink/internal/index"
	"newslink/internal/kg"
	"newslink/internal/nlp"
)

// testWorld builds a tiny KG and corpus exercising vocabulary mismatch: the
// query mentions Khyber, the target document mentions only Peshawar, and
// the KG description of Khyber links them.
func testWorld() (*kg.Graph, *index.Index, [][]string, []string) {
	b := kg.NewBuilder(4)
	khyber := b.AddNode("Khyber", kg.KindGPE, "a province near Peshawar in Pakistan")
	peshawar := b.AddNode("Peshawar", kg.KindGPE, "a city in Khyber")
	pakistan := b.AddNode("Pakistan", kg.KindGPE, "a country")
	taliban := b.AddNode("Taliban", kg.KindOrg, "a militant group in Khyber")
	b.AddEdgeByName(peshawar, khyber, "located in", 1)
	b.AddEdgeByName(khyber, pakistan, "located in", 1)
	b.AddEdgeByName(taliban, khyber, "active in", 1)
	g := b.Build()

	docs := []string{
		"Militants attacked a convoy near Peshawar and wounded twelve.",
		"The festival in Lahore drew enormous crowds of dancers.",
		"Stock markets rallied after the earnings reports were published.",
		"Clashes continued in the province as the army advanced.",
	}
	ib := index.NewBuilder()
	var docTerms [][]string
	for _, d := range docs {
		terms := nlp.Terms(d)
		docTerms = append(docTerms, terms)
		ib.Add(terms)
	}
	return g, ib.Build(), docTerms, docs
}

func TestKGExpansionBridgesVocabularyMismatch(t *testing.T) {
	g, idx, docTerms, _ := testWorld()
	e := New(g, idx, docTerms, DefaultConfig())
	// "Khyber" appears in no document; its KG description mentions Peshawar.
	hits := e.Search("Violence in Khyber", k(3))
	if len(hits) == 0 {
		t.Fatal("expansion found nothing")
	}
	if hits[0].Doc != 0 {
		t.Fatalf("top hit = %v, want the Peshawar document (0)", hits[0])
	}
}

func k(v int) int { return v }

func TestExpansionDisabled(t *testing.T) {
	g, idx, docTerms, _ := testWorld()
	e := New(g, idx, docTerms, Config{})
	// Without any expansion the Khyber query matches nothing.
	if hits := e.Search("Khyber", 3); len(hits) != 0 {
		t.Fatalf("no-expansion hits = %v", hits)
	}
	// Plain term queries still work.
	if hits := e.Search("festival crowds", 3); len(hits) == 0 || hits[0].Doc != 1 {
		t.Fatalf("plain query hits = %v", hits)
	}
}

func TestPRFPullsRelatedDocs(t *testing.T) {
	g, idx, docTerms, _ := testWorld()
	cfg := DefaultConfig()
	cfg.KGTerms = 0 // isolate the PRF mechanism
	cfg.FeedbackDocs = 1
	cfg.FeedbackTerms = 20
	cfg.FeedbackWeight = 0.8
	e := New(g, idx, docTerms, cfg)
	hits := e.Search("convoy attacked", 4)
	if len(hits) == 0 || hits[0].Doc != 0 {
		t.Fatalf("hits = %v, want doc 0 first", hits)
	}
}

func TestTopWeighted(t *testing.T) {
	got := topWeighted(map[string]float64{"a": 3, "b": 2, "c": 1}, 2, 0.5)
	if len(got) != 2 || got["a"] != 0.5 || got["b"] != 0.5 {
		t.Fatalf("topWeighted = %v", got)
	}
	if got := topWeighted(map[string]float64{"a": 1}, 5, 1); len(got) != 1 {
		t.Fatalf("n>len = %v", got)
	}
	// Equal scores break ties alphabetically.
	got = topWeighted(map[string]float64{"z": 1, "a": 1, "m": 1}, 2, 1)
	if _, ok := got["a"]; !ok {
		t.Fatalf("tie-break wrong: %v", got)
	}
	if _, ok := got["z"]; ok {
		t.Fatalf("tie-break wrong: %v", got)
	}
}
