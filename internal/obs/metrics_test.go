package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBucketMath(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	// le semantics: an observation exactly on a bound lands in that bound's
	// bucket, like Prometheus.
	for _, v := range []float64{0.5, 1.0} { // both <= 1
		h.Observe(v)
	}
	h.Observe(1.5) // <= 2
	h.Observe(4.0) // <= 4 (edge)
	h.Observe(9.0) // overflow
	counts := h.BucketCounts()
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if counts[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (all: %v)", i, counts[i], w, counts)
		}
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got := h.Sum(); math.Abs(got-16.0) > 1e-9 {
		t.Fatalf("sum = %g, want 16", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{10, 20, 40})
	// 10 observations uniformly in (0,10]: all in the first bucket.
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	// p50 → rank 5 of 10, all in bucket [0,10] → 0 + 10*(5/10) = 5.
	if got := h.Quantile(0.5); math.Abs(got-5) > 1e-9 {
		t.Fatalf("p50 = %g, want 5", got)
	}
	// p100 interpolates to the bucket's upper edge.
	if got := h.Quantile(1); math.Abs(got-10) > 1e-9 {
		t.Fatalf("p100 = %g, want 10", got)
	}

	// Split across buckets: 8 in bucket le=10, 2 in bucket le=20.
	h2 := newHistogram([]float64{10, 20, 40})
	for i := 0; i < 8; i++ {
		h2.Observe(1)
	}
	h2.Observe(15)
	h2.Observe(15)
	// p90 → rank 9 → second bucket, 1st of its 2: 10 + 10*(1/2) = 15.
	if got := h2.Quantile(0.9); math.Abs(got-15) > 1e-9 {
		t.Fatalf("p90 = %g, want 15", got)
	}
	// Overflow lands on the highest finite bound.
	h3 := newHistogram([]float64{10})
	h3.Observe(100)
	if got := h3.Quantile(0.5); got != 10 {
		t.Fatalf("overflow quantile = %g, want 10", got)
	}
}

func TestHistogramQuantileEdgeCases(t *testing.T) {
	h := newHistogram([]float64{1})
	if got := h.Quantile(0.5); !math.IsNaN(got) {
		t.Fatalf("empty histogram quantile = %g, want NaN", got)
	}
	h.Observe(0.5)
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if got := h.Quantile(q); !math.IsNaN(got) {
			t.Fatalf("Quantile(%g) = %g, want NaN", q, got)
		}
	}
	// q=0 clamps to rank 1 (the smallest observation's bucket).
	if got := h.Quantile(0); math.IsNaN(got) {
		t.Fatal("Quantile(0) on non-empty histogram must not be NaN")
	}
}

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "")
	b := r.Counter("x_total", "")
	if a != b {
		t.Fatal("same identity must return the same counter")
	}
	l1 := r.Counter("y_total", "", L("stage", "analyze"))
	l2 := r.Counter("y_total", "", L("stage", "fuse"))
	if l1 == l2 {
		t.Fatal("distinct label sets must be distinct metrics")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "")
}

func TestRegistryJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("searches_total", "Searches.").Add(3)
	r.Gauge("docs", "Docs.").Set(42)
	h := r.Histogram("latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("JSON output does not parse: %v\n%s", err, b.String())
	}
	if doc["searches_total"].(float64) != 3 {
		t.Fatalf("searches_total = %v", doc["searches_total"])
	}
	if doc["docs"].(float64) != 42 {
		t.Fatalf("docs = %v", doc["docs"])
	}
	hist := doc["latency_seconds"].(map[string]any)
	if hist["count"].(float64) != 2 {
		t.Fatalf("histogram count = %v", hist["count"])
	}
	for _, q := range []string{"p50", "p95", "p99"} {
		if _, ok := hist[q]; !ok {
			t.Fatalf("histogram JSON missing %s: %v", q, hist)
		}
	}
}

func TestRegistryPrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("newslink_searches_total", "Searches served.").Add(7)
	r.Histogram("stage_seconds", "Stage latency.", []float64{0.5},
		L("stage", `we"ird\val`)).Observe(0.1)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP newslink_searches_total Searches served.",
		"# TYPE newslink_searches_total counter",
		"newslink_searches_total 7",
		"# TYPE stage_seconds histogram",
		`stage_seconds_bucket{stage="we\"ird\\val",le="0.5"} 1`,
		`stage_seconds_bucket{stage="we\"ird\\val",le="+Inf"} 1`,
		`stage_seconds_count{stage="we\"ird\\val"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("Prometheus output missing %q:\n%s", want, out)
		}
	}
}

// TestRegistryConcurrentHammer drives every instrument type from many
// goroutines; correctness of the totals plus the race detector validate
// the lock-free paths.
func TestRegistryConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Registration races with updates on purpose: get-or-create
			// must hand every goroutine the same instruments.
			c := r.Counter("hammer_total", "")
			g := r.Gauge("hammer_gauge", "")
			h := r.Histogram("hammer_seconds", "", []float64{0.25, 0.75})
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%2) * 0.5)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("hammer_total", "").Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	h := r.Histogram("hammer_seconds", "", nil)
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if got := h.Sum(); math.Abs(got-float64(workers*per/2)*0.5) > 1e-6 {
		t.Fatalf("histogram sum = %g", got)
	}
	counts := h.BucketCounts()
	if counts[0] != workers*per/2 || counts[1] != workers*per/2 {
		t.Fatalf("bucket counts = %v", counts)
	}
}
