package obs

import (
	"context"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// The six pipeline stages of a NewsLink query (Table VIII of the paper
// breaks query cost down along the same lines). Search records the first
// five; Explain records analyze and path-enumeration.
const (
	StageAnalyze = "analyze"          // NLP + NE on the query text (or cache hit)
	StageEmbed   = "embed"            // G* subgraph embedding of the entity groups
	StageBOW     = "bow-retrieve"     // BM25 top-k over the text index
	StageBON     = "bon-retrieve"     // BM25 top-k over the node index
	StageFuse    = "fuse"             // Equation 3 score fusion
	StageTopK    = "topk"             // final top-k materialization (titles, snippets)
	StagePaths   = "path-enumeration" // relationship paths between embeddings
	StageScatter = "scatter"          // cluster router: fan-out to shard workers
	StageGather  = "gather"           // cluster router: partial top-k merge + fusion
)

// StageShard names the span for one shard worker's leg of a scatter:
// "shard[0]", "shard[1]", … indexed by the shard's slot in the plan.
func StageShard(i int) string { return "shard[" + strconv.Itoa(i) + "]" }

// Attr is one integer span attribute (candidate counts, shard fan-out,
// cache hits). Attributes are integer-valued by design: it keeps spans free
// of interface boxing, and everything the pipeline reports is a count or a
// flag.
type Attr struct {
	Key string `json:"key"`
	Val int64  `json:"val"`
}

// Int builds an int attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Val: int64(v)} }

// Int64 builds an int64 attribute.
func Int64(key string, v int64) Attr { return Attr{Key: key, Val: v} }

// Bool builds a 0/1 attribute.
func Bool(key string, v bool) Attr {
	a := Attr{Key: key}
	if v {
		a.Val = 1
	}
	return a
}

// Span is one completed pipeline stage within a trace.
type Span struct {
	// Stage is the stage name (one of the Stage* constants).
	Stage string `json:"stage"`
	// Start is the offset from the start of the trace.
	Start time.Duration `json:"start_us"`
	// Dur is the stage duration.
	Dur time.Duration `json:"dur_us"`
	// Attrs are stage attributes (candidate counts, cache hit/miss, shard
	// fan-out).
	Attrs []Attr `json:"attrs,omitempty"`
}

// MarshalJSON renders durations in integer microseconds and flattens attrs
// into the span object, the shape the /v1/search?trace=1 response exposes:
//
//	{"stage":"bow-retrieve","start_us":12,"dur_us":340,"candidates":100,"shards":4}
func (s Span) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteString(`{"stage":`)
	b.WriteString(strconv.Quote(s.Stage))
	b.WriteString(`,"start_us":`)
	b.WriteString(strconv.FormatInt(s.Start.Microseconds(), 10))
	b.WriteString(`,"dur_us":`)
	b.WriteString(strconv.FormatInt(s.Dur.Microseconds(), 10))
	for _, a := range s.Attrs {
		b.WriteByte(',')
		b.WriteString(strconv.Quote(a.Key))
		b.WriteByte(':')
		b.WriteString(strconv.FormatInt(a.Val, 10))
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// Attr returns the value of the named attribute and whether it is present.
func (s Span) Attr(key string) (int64, bool) {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return 0, false
}

// Trace collects the stage spans of one request. A nil *Trace is a valid
// no-op sink (Start and Spans work on it), so instrumented code never
// branches on "is tracing enabled". Safe for concurrent use: the parallel
// BOW/BON goroutines record into the same trace.
type Trace struct {
	t0 time.Time

	mu    sync.Mutex
	spans []Span
}

// NewTrace starts an empty trace; span offsets are measured from now.
func NewTrace() *Trace { return &Trace{t0: time.Now()} }

// Start opens a span for one stage. The returned Timer is a value (no
// allocation); call End to close and record the span. Works on a nil trace,
// where End still returns the measured duration but records nothing.
func (t *Trace) Start(stage string) Timer {
	return Timer{tr: t, stage: stage, start: time.Now()}
}

func (t *Trace) record(s Span) {
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Spans returns the recorded spans ordered by start offset. Safe on a nil
// trace (returns nil).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]Span, len(t.spans))
	copy(out, t.spans)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Timer is an open span. It is passed by value and holds no resources.
type Timer struct {
	tr    *Trace
	stage string
	start time.Time
}

// End closes the span, attaches the attributes, and returns the measured
// duration (so callers can feed the same measurement into a histogram
// whether or not a trace is attached).
func (tm Timer) End(attrs ...Attr) time.Duration {
	d := time.Since(tm.start)
	if tm.tr != nil {
		tm.tr.record(Span{
			Stage: tm.stage,
			Start: tm.start.Sub(tm.tr.t0),
			Dur:   d,
			Attrs: attrs,
		})
	}
	return d
}

// traceKey is the context key type for the request trace.
type traceKey struct{}

// WithTrace derives a context carrying a fresh trace and returns both. The
// engine's read path records its stage spans into whatever trace the
// request context carries.
func WithTrace(ctx context.Context) (context.Context, *Trace) {
	tr := NewTrace()
	return context.WithValue(ctx, traceKey{}, tr), tr
}

// FromContext returns the trace carried by ctx, or nil (a valid no-op
// trace) when the request is not being traced.
func FromContext(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey{}).(*Trace)
	return tr
}
