// Package obs is the observability layer of the NewsLink serving path:
// a lock-cheap metrics registry (counters, gauges, fixed-bucket latency
// histograms with quantile estimation) and per-request trace spans carried
// in a context.Context. Everything is stdlib-only and allocation-light so
// the instrumentation can live inside the query hot path: metric updates
// are single atomic operations and a disabled trace costs one pointer-typed
// context lookup per request.
//
// The registry renders itself in two wire formats: expvar-style JSON
// (served at /v1/metrics) and the Prometheus text exposition format
// (served at /v1/metrics/prom).
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use; updates are one atomic add.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the Prometheus exposition to stay valid).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that can go up and down (queue depths,
// document counts). Safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram in the Prometheus style: bucket i
// counts observations v <= Bounds[i], plus one overflow bucket. Observe is
// lock-free (a binary search over the bounds and two atomic adds, plus a
// CAS loop for the running sum), so it can sit inside the query pipeline.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// DefBuckets are the default latency buckets in seconds: 100µs to 10s in
// a 1-2.5-5 progression, chosen to bracket both the sub-millisecond BM25
// stages and multi-second path enumerations.
func DefBuckets() []float64 {
	return []float64{
		0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
		0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

func newHistogram(bounds []float64) *Histogram {
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound admits v; len(bounds) = overflow.
	i := sort.SearchFloat64s(h.bounds, v)
	// SearchFloat64s returns the first index with bounds[i] >= v, which is
	// exactly the Prometheus "le" (less-or-equal) bucket for v.
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (excluding +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns a snapshot of the per-bucket counts, the last entry
// being the +Inf overflow bucket. Concurrent Observes may make the snapshot
// sum differ transiently from Count; callers that need consistency should
// quiesce writers first (tests do, the HTTP exporters tolerate skew).
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts by
// linear interpolation inside the holding bucket — the same estimate
// Prometheus' histogram_quantile computes. The lower edge of the first
// bucket is 0 (latencies are non-negative); an estimate that lands in the
// overflow bucket is clamped to the highest finite bound. Returns NaN when
// the histogram is empty or q is outside [0, 1].
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	rank := q * float64(total)
	if rank < 1 {
		rank = 1
	}
	cum := int64(0)
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n > 0 && float64(cum+n) >= rank {
			if i == len(h.bounds) {
				// Overflow bucket: no finite upper edge to interpolate to.
				if len(h.bounds) == 0 {
					return math.NaN()
				}
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			return lo + (hi-lo)*((rank-float64(cum))/float64(n))
		}
		cum += n
	}
	if len(h.bounds) == 0 {
		return math.NaN()
	}
	return h.bounds[len(h.bounds)-1]
}

// Label is one name="value" metric dimension.
type Label struct {
	Key, Value string
}

// L builds a Label inline.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates the one non-nil instrument of a metric.
type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// metric is one registered time series: a family name plus a fixed label
// set, holding exactly one instrument.
type metric struct {
	name   string
	help   string
	kind   metricKind
	labels []Label
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// id is the registry identity: family name plus the rendered label set.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteString(labelString(labels))
	return b.String()
}

// labelString renders {k="v",...} with Prometheus escaping, or "" for an
// empty set.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Registry holds named metrics. Registration (the Counter/Gauge/Histogram
// get-or-create calls) takes a mutex; engines and servers register once at
// startup and keep the returned handles, so steady-state updates never
// touch the registry again. Exposition walks the registry in registration
// order, giving stable output.
type Registry struct {
	mu   sync.Mutex
	byID map[string]*metric
	list []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*metric)}
}

// Counter returns the counter registered under name+labels, creating it on
// first use. Registering the same identity as a different metric type
// panics: metric names are program constants, so a clash is a bug.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.register(name, help, kindCounter, labels)
	return m.c
}

// Gauge returns the gauge registered under name+labels, creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.register(name, help, kindGauge, labels)
	return m.g
}

// Histogram returns the histogram registered under name+labels, creating
// it with the given bucket upper bounds on first use (nil bounds select
// DefBuckets). Bounds are fixed at first registration; later calls with
// the same identity return the existing histogram regardless of bounds.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefBuckets()
	}
	m := r.registerHistogram(name, help, labels, bounds)
	return m.h
}

func (r *Registry) register(name, help string, kind metricKind, labels []Label) *metric {
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byID[id]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", id, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind, labels: labels}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	}
	r.byID[id] = m
	r.list = append(r.list, m)
	return m
}

func (r *Registry) registerHistogram(name, help string, labels []Label, bounds []float64) *metric {
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byID[id]; ok {
		if m.kind != kindHistogram {
			panic(fmt.Sprintf("obs: metric %q re-registered as histogram (was %s)", id, m.kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kindHistogram, labels: labels, h: newHistogram(bounds)}
	r.byID[id] = m
	r.list = append(r.list, m)
	return m
}

// snapshot returns the metric list under the lock; the metrics themselves
// are read with atomics afterwards.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, len(r.list))
	copy(out, r.list)
	return out
}

// WriteJSON renders every metric as one JSON object keyed by metric
// identity (expvar style). Counters and gauges render as numbers;
// histograms as objects with count, sum, p50/p95/p99 estimates and the
// cumulative buckets.
func (r *Registry) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{")
	for i, m := range r.snapshot() {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString("\n  ")
		b.WriteString(strconv.Quote(metricID(m.name, m.labels)))
		b.WriteString(": ")
		switch m.kind {
		case kindCounter:
			b.WriteString(strconv.FormatInt(m.c.Value(), 10))
		case kindGauge:
			b.WriteString(strconv.FormatInt(m.g.Value(), 10))
		case kindHistogram:
			writeHistogramJSON(&b, m.h)
		}
	}
	b.WriteString("\n}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogramJSON(b *strings.Builder, h *Histogram) {
	b.WriteString(`{"count": `)
	b.WriteString(strconv.FormatInt(h.Count(), 10))
	b.WriteString(`, "sum": `)
	b.WriteString(jsonFloat(h.Sum()))
	for _, q := range [...]struct {
		name string
		q    float64
	}{{"p50", 0.5}, {"p95", 0.95}, {"p99", 0.99}} {
		b.WriteString(`, "`)
		b.WriteString(q.name)
		b.WriteString(`": `)
		b.WriteString(jsonFloat(h.Quantile(q.q)))
	}
	b.WriteString(`, "buckets": [`)
	counts := h.BucketCounts()
	cum := int64(0)
	for i, n := range counts {
		if i > 0 {
			b.WriteString(", ")
		}
		cum += n
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatBound(h.bounds[i])
		}
		b.WriteString(`{"le": "`)
		b.WriteString(le)
		b.WriteString(`", "count": `)
		b.WriteString(strconv.FormatInt(cum, 10))
		b.WriteString("}")
	}
	b.WriteString("]}")
}

// jsonFloat renders a float as JSON; NaN (empty-histogram quantiles) has no
// JSON spelling, so it renders as null.
func jsonFloat(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatBound(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). HELP/TYPE headers are emitted once per metric
// family; histograms expand into _bucket/_sum/_count series with cumulative
// le buckets.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b strings.Builder
	seen := make(map[string]bool)
	for _, m := range r.snapshot() {
		if !seen[m.name] {
			seen[m.name] = true
			if m.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.name, m.help)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.name, m.kind)
		}
		ls := labelString(m.labels)
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %d\n", m.name, ls, m.c.Value())
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %d\n", m.name, ls, m.g.Value())
		case kindHistogram:
			writeHistogramProm(&b, m.name, m.labels, m.h)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeHistogramProm(b *strings.Builder, name string, labels []Label, h *Histogram) {
	counts := h.BucketCounts()
	cum := int64(0)
	for i, n := range counts {
		cum += n
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatBound(h.bounds[i])
		}
		withLE := make([]Label, 0, len(labels)+1)
		withLE = append(withLE, labels...)
		withLE = append(withLE, L("le", le))
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, labelString(withLE), cum)
	}
	ls := labelString(labels)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, ls, strconv.FormatFloat(h.Sum(), 'g', -1, 64))
	fmt.Fprintf(b, "%s_count%s %d\n", name, ls, h.Count())
}
