package obs

import (
	"context"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

func TestNilTraceIsNoOp(t *testing.T) {
	var tr *Trace
	d := tr.Start(StageAnalyze).End(Int("x", 1))
	if d < 0 {
		t.Fatalf("duration = %v", d)
	}
	if spans := tr.Spans(); spans != nil {
		t.Fatalf("nil trace recorded spans: %v", spans)
	}
}

func TestTraceRecordsSpansInStartOrder(t *testing.T) {
	tr := NewTrace()
	a := tr.Start(StageAnalyze)
	time.Sleep(time.Millisecond)
	a.End(Bool("cache_hit", false))
	b := tr.Start(StageFuse)
	b.End()
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans", len(spans))
	}
	if spans[0].Stage != StageAnalyze || spans[1].Stage != StageFuse {
		t.Fatalf("span order: %q, %q", spans[0].Stage, spans[1].Stage)
	}
	if spans[0].Dur < time.Millisecond {
		t.Fatalf("analyze duration = %v, want >= 1ms", spans[0].Dur)
	}
	if spans[1].Start < spans[0].Start {
		t.Fatal("start offsets not monotone")
	}
	if v, ok := spans[0].Attr("cache_hit"); !ok || v != 0 {
		t.Fatalf("cache_hit attr = %d, %v", v, ok)
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	if got := FromContext(context.Background()); got != nil {
		t.Fatal("background context must carry no trace")
	}
	ctx, tr := WithTrace(context.Background())
	if got := FromContext(ctx); got != tr {
		t.Fatal("FromContext must return the attached trace")
	}
}

// TestTraceConcurrentSpans mirrors the engine's parallel BOW/BON stage:
// goroutines record into one trace. Run under -race.
func TestTraceConcurrentSpans(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Start(StageBOW).End(Int("worker", w))
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 800 {
		t.Fatalf("got %d spans, want 800", got)
	}
}

func TestSpanJSONFlattensAttrs(t *testing.T) {
	tr := NewTrace()
	tr.Start(StageBOW).End(Int("candidates", 100), Int("shards", 4))
	out, err := json.Marshal(tr.Spans())
	if err != nil {
		t.Fatal(err)
	}
	var spans []map[string]any
	if err := json.Unmarshal(out, &spans); err != nil {
		t.Fatalf("span JSON does not parse: %v\n%s", err, out)
	}
	sp := spans[0]
	if sp["stage"] != "bow-retrieve" {
		t.Fatalf("stage = %v", sp["stage"])
	}
	if sp["candidates"].(float64) != 100 || sp["shards"].(float64) != 4 {
		t.Fatalf("attrs not flattened: %v", sp)
	}
	for _, key := range []string{"start_us", "dur_us"} {
		if _, ok := sp[key]; !ok {
			t.Fatalf("span JSON missing %s: %v", key, sp)
		}
	}
}
