package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"newslink"
	"newslink/internal/corpus"
	"newslink/internal/kg"
	"newslink/internal/server"
)

// buildSnapshot writes a snapshot with at least three segments and
// two tombstoned documents (one per distinct segment), the corpus shape
// the cluster partitions. Documents carry the corpus's monotone event
// timestamps so temporal filters select predictable slices. Returns the
// snapshot directory and the graph.
func buildSnapshot(t testing.TB) (string, *kg.Graph) {
	t.Helper()
	w := kg.Generate(kg.DefaultConfig(19))
	arts := corpus.Generate(w, corpus.CNNLike(), 48, 19)
	e := newslink.New(w.Graph, newslink.DefaultConfig())
	for i, a := range arts {
		if err := e.Add(newslink.Document{ID: a.ID, Title: a.Title, Text: a.Text, Time: a.Time}); err != nil {
			t.Fatal(err)
		}
		switch i + 1 {
		case 16:
			if err := e.Build(); err != nil {
				t.Fatal(err)
			}
		case 32, 48:
			e.Refresh()
		}
	}
	for _, id := range []int{arts[3].ID, arts[20].ID} {
		if err := e.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	if n := e.NumSegments(); n < 3 {
		t.Fatalf("fixture produced %d segments, want >= 3", n)
	}
	dir := t.TempDir()
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	return dir, w.Graph
}

func testLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

// startWorkers launches n shard workers over httptest servers, returning
// both the workers (for fault-point IDs) and their endpoint groups in
// slot order: worker i serves slot i.
func startWorkers(t testing.TB, g *kg.Graph, n int) ([]*Worker, [][]string) {
	t.Helper()
	workers := make([]*Worker, n)
	endpoints := make([][]string, n)
	for i := range workers {
		w := NewWorker(fmt.Sprintf("w%d", i), t.TempDir(), g, testLogger())
		ts := httptest.NewServer(w.Handler())
		t.Cleanup(ts.Close)
		workers[i] = w
		endpoints[i] = []string{ts.URL}
	}
	return workers, endpoints
}

// startRouter serves a router over an httptest server. The handler is
// installed through an indirection so the server's URL (the router's
// SelfURL, which workers fetch artifacts from) exists before NewRouter.
func startRouter(t testing.TB, dir string, g *kg.Graph, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	type handlerBox struct{ h http.Handler }
	var h atomic.Value
	h.Store(handlerBox{http.NotFoundHandler()})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.Load().(handlerBox).h.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	cfg.SelfURL = ts.URL
	if cfg.Logger == nil {
		cfg.Logger = testLogger()
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 50 * time.Millisecond
	}
	if cfg.RetryBase == 0 {
		cfg.RetryBase = time.Millisecond
	}
	rt, err := NewRouter(dir, g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	h.Store(handlerBox{rt.Handler()})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if err := rt.Start(ctx); err != nil {
		t.Fatal(err)
	}
	return rt, ts
}

// startCluster is the full three-worker harness most tests use.
func startCluster(t testing.TB, cfg Config) (string, *kg.Graph, []*Worker, *Router, *httptest.Server) {
	t.Helper()
	dir, g := buildSnapshot(t)
	workers, endpoints := startWorkers(t, g, 3)
	cfg.Endpoints = endpoints
	rt, ts := startRouter(t, dir, g, cfg)
	return dir, g, workers, rt, ts
}

// getJSON asserts the status and decodes the body.
func getJSON(t testing.TB, rawurl string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(rawurl)
	if err != nil {
		t.Fatalf("GET %s: %v", rawurl, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", rawurl, err)
	}
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d\nbody: %s", rawurl, resp.StatusCode, wantStatus, body)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("GET %s: decoding: %v\nbody: %s", rawurl, err, body)
		}
	}
}

// referenceServer serves the same snapshot through a single-process
// engine, the identity oracle for scatter-gather results.
func referenceServer(t testing.TB, dir string, g *kg.Graph) *httptest.Server {
	t.Helper()
	eng, err := newslink.Load(dir, g)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	ts := httptest.NewServer(server.New(eng).Handler())
	t.Cleanup(ts.Close)
	return ts
}

var identityQueries = []string{
	"clashes near the border",
	"ceasefire talks resume",
	"markets rally on earnings",
	"championship final",
	"minister parliament vote",
	"xyzzy nosuchterm anywhere",
}

// TestRouterMatchesSingleProcess is the merge-identity property: the
// router's scatter-gather over three shard workers returns results
// rank- and score-identical to a single-process engine over the same
// snapshot — tombstones included — across queries, k, pool and beta.
func TestRouterMatchesSingleProcess(t *testing.T) {
	dir, g, _, _, ts := startCluster(t, Config{})
	ref := referenceServer(t, dir, g)

	for _, q := range identityQueries {
		for _, params := range []string{"", "&k=3", "&k=25", "&pool=12", "&beta=0", "&beta=1", "&beta=0.5"} {
			path := "/v1/search?q=" + url.QueryEscape(q) + params
			var got, want server.SearchResponse
			getJSON(t, ts.URL+path, http.StatusOK, &got)
			getJSON(t, ref.URL+path, http.StatusOK, &want)
			if got.Degraded {
				t.Fatalf("%s: degraded response with all shards live: %+v", path, got)
			}
			if got.ShardsTotal != 3 || got.ShardsOK != 3 {
				t.Fatalf("%s: shards %d/%d, want 3/3", path, got.ShardsOK, got.ShardsTotal)
			}
			if !reflect.DeepEqual(got.Results, want.Results) {
				t.Fatalf("%s: cluster and single-process results diverge\ncluster: %+v\nsingle:  %+v",
					path, got.Results, want.Results)
			}
		}
	}
}

// fixtureCorpus regenerates the deterministic fixture corpus and world
// behind buildSnapshot, for tests that need entity labels and timestamps.
func fixtureCorpus() (*kg.World, []corpus.Article) {
	w := kg.Generate(kg.DefaultConfig(19))
	return w, corpus.Generate(w, corpus.CNNLike(), 48, 19)
}

// filteredParams enumerates filter query-parameter combinations over the
// fixture corpus: each temporal bound, a closed window, an entity facet
// (resolved and unresolvable), and a composition.
func filteredParams() []string {
	w, arts := fixtureCorpus()
	label := w.Graph.Label(w.Events[0].Participants[0])
	mid, late := arts[24].Time, arts[36].Time
	return []string{
		fmt.Sprintf("&after=%d", mid),
		fmt.Sprintf("&before=%d", mid),
		fmt.Sprintf("&after=%d&before=%d", mid, late),
		"&entity=" + url.QueryEscape(label),
		fmt.Sprintf("&entity=%s&before=%d", url.QueryEscape(label), mid),
		"&entity=" + url.QueryEscape("No Such Entity Anywhere"),
	}
}

// TestRouterFilteredMatchesSingleProcess is the merge-identity property
// under document filters: the router resolves entity labels once, ships
// term sets and time bounds to every worker, re-uses unfiltered global
// statistics, and must still produce results DeepEqual to a single
// process over the same snapshot for every filter combination.
func TestRouterFilteredMatchesSingleProcess(t *testing.T) {
	dir, g, _, _, ts := startCluster(t, Config{})
	ref := referenceServer(t, dir, g)

	for _, q := range identityQueries[:4] {
		for _, flt := range filteredParams() {
			for _, extra := range []string{"", "&k=3", "&beta=0", "&beta=1"} {
				path := "/v1/search?q=" + url.QueryEscape(q) + flt + extra
				var got, want server.SearchResponse
				getJSON(t, ts.URL+path, http.StatusOK, &got)
				getJSON(t, ref.URL+path, http.StatusOK, &want)
				if got.Degraded {
					t.Fatalf("%s: degraded response with all shards live: %+v", path, got)
				}
				if !reflect.DeepEqual(got.Results, want.Results) {
					t.Fatalf("%s: filtered cluster and single-process results diverge\ncluster: %+v\nsingle:  %+v",
						path, got.Results, want.Results)
				}
			}
		}
	}
}

// TestRouterFilteredExplain: a filtered explanation is served only for
// documents the same filtered search could return — in-window documents
// explain identically to a single process, out-of-window ones are 404 on
// both tiers.
func TestRouterFilteredExplain(t *testing.T) {
	dir, g, _, _, ts := startCluster(t, Config{})
	ref := referenceServer(t, dir, g)
	_, arts := fixtureCorpus()

	const id = 10
	q := url.QueryEscape(identityQueries[0])
	inWindow := fmt.Sprintf("/v1/explain?q=%s&id=%d&paths=3&before=%d", q, id, arts[20].Time)
	var got, want server.ExplainResponse
	getJSON(t, ts.URL+inWindow, http.StatusOK, &got)
	getJSON(t, ref.URL+inWindow, http.StatusOK, &want)
	if !reflect.DeepEqual(got.Explanation, want.Explanation) {
		t.Fatalf("%s: filtered explanations diverge\ncluster: %+v\nsingle:  %+v",
			inWindow, got.Explanation, want.Explanation)
	}
	outOfWindow := fmt.Sprintf("/v1/explain?q=%s&id=%d&paths=3&after=%d", q, id, arts[40].Time)
	getJSON(t, ts.URL+outOfWindow, http.StatusNotFound, nil)
	getJSON(t, ref.URL+outOfWindow, http.StatusNotFound, nil)
}

// TestRouterExplainMatchesSingleProcess routes /v1/explain to the shard
// owning the document and must reproduce the single-process explanation.
func TestRouterExplainMatchesSingleProcess(t *testing.T) {
	dir, g, _, _, ts := startCluster(t, Config{})
	ref := referenceServer(t, dir, g)

	var res server.SearchResponse
	getJSON(t, ts.URL+"/v1/search?q="+url.QueryEscape(identityQueries[0])+"&k=5", http.StatusOK, &res)
	if len(res.Results) == 0 {
		t.Fatal("no results to explain")
	}
	for _, r := range res.Results {
		path := fmt.Sprintf("/v1/explain?q=%s&id=%d&paths=3", url.QueryEscape(identityQueries[0]), r.ID)
		var got, want server.ExplainResponse
		getJSON(t, ts.URL+path, http.StatusOK, &got)
		getJSON(t, ref.URL+path, http.StatusOK, &want)
		if !reflect.DeepEqual(got.Explanation, want.Explanation) {
			t.Fatalf("%s: explanations diverge\ncluster: %+v\nsingle:  %+v", path, got.Explanation, want.Explanation)
		}
	}

	// A tombstoned document is unknown cluster-wide, as on one process.
	getJSON(t, ts.URL+"/v1/explain?q=x&id=3", http.StatusNotFound, nil)
	getJSON(t, ref.URL+"/v1/explain?q=x&id=3", http.StatusNotFound, nil)
}

// TestRouterTraceSpans asserts the scatter/shard/gather span structure
// on a traced request.
func TestRouterTraceSpans(t *testing.T) {
	_, _, _, _, ts := startCluster(t, Config{})
	var res server.SearchResponse
	getJSON(t, ts.URL+"/v1/search?q="+url.QueryEscape("border clashes")+"&trace=1", http.StatusOK, &res)
	stages := map[string]bool{}
	for _, sp := range res.Trace {
		stages[sp.Stage] = true
	}
	for _, want := range []string{"scatter", "gather", "shard[0]", "shard[1]", "shard[2]"} {
		if !stages[want] {
			t.Fatalf("trace missing stage %q; got %v", want, stages)
		}
	}
}

// TestRouterReadyAndStats exercises the operational surfaces.
func TestRouterReadyAndStats(t *testing.T) {
	_, _, _, rt, ts := startCluster(t, Config{})
	getJSON(t, ts.URL+"/v1/readyz", http.StatusOK, nil)
	getJSON(t, ts.URL+"/v1/healthz", http.StatusOK, nil)
	var st ClusterStatus
	getJSON(t, ts.URL+"/v1/stats", http.StatusOK, &st)
	if st.Plan != rt.Plan().ID {
		t.Fatalf("stats plan %s, want %s", st.Plan, rt.Plan().ID)
	}
	if len(st.Shards) != 3 {
		t.Fatalf("stats has %d shards, want 3", len(st.Shards))
	}
	for _, sh := range st.Shards {
		for _, ep := range sh.Endpoints {
			if !ep.Healthy {
				t.Fatalf("endpoint %s of slot %d not healthy after start", ep.URL, sh.Slot)
			}
		}
	}
}

// TestBuildPlanPartition checks the plan invariants the router relies
// on: contiguous bases, exhaustive segment coverage, live counts net of
// tombstones, and ShardOf/slotOfPos agreement.
func TestBuildPlanPartition(t *testing.T) {
	dir, _ := buildSnapshot(t)
	m, err := newslink.ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 7} {
		plan, err := BuildPlan(m, n)
		if err != nil {
			t.Fatal(err)
		}
		base, segs, live := 0, 0, 0
		for i, sp := range plan.Shards {
			if sp.Base != base {
				t.Fatalf("n=%d slot %d base %d, want %d", n, i, sp.Base, base)
			}
			if len(sp.Segments) == 0 {
				t.Fatalf("n=%d slot %d has no segments", n, i)
			}
			base += sp.Docs
			segs += len(sp.Segments)
			live += sp.Live
			for pos := sp.Base; pos < sp.Base+sp.Docs; pos++ {
				if got := plan.slotOfPos(pos); got != i {
					t.Fatalf("n=%d slotOfPos(%d) = %d, want %d", n, pos, got, i)
				}
			}
		}
		if segs != 3 {
			t.Fatalf("n=%d covers %d segments, want 3", n, segs)
		}
		if live != 46 { // 48 docs, 2 tombstones
			t.Fatalf("n=%d live docs %d, want 46", n, live)
		}
		for _, dead := range []int{3, 20} {
			if _, ok := plan.ShardOf(dead); ok {
				t.Fatalf("n=%d ShardOf(%d) found a tombstoned doc", n, dead)
			}
		}
		if idx, ok := plan.ShardOf(40); !ok || idx != len(plan.Shards)-1 {
			t.Fatalf("n=%d ShardOf(40) = %d,%v, want last slot %d", n, idx, ok, len(plan.Shards)-1)
		}
	}
	if _, err := BuildPlan(m, 0); err == nil {
		t.Fatal("BuildPlan(0) succeeded")
	}
}

// BenchmarkClusterScatterGather measures a warm end-to-end search
// through the router and three local shard workers: stats cache hot, so
// each iteration is one scatter (search) plus gather (merge + docs).
func BenchmarkClusterScatterGather(b *testing.B) {
	_, _, _, rt, _ := startCluster(b, Config{})
	h := rt.Handler()
	req := httptest.NewRequest(http.MethodGet, "/v1/search?q="+url.QueryEscape("clashes near the border")+"&k=10", nil)
	// Warm the per-slot stats cache so steady-state cost is measured.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		b.Fatalf("warmup status %d: %s", rec.Code, rec.Body)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d: %s", rec.Code, rec.Body)
		}
	}
}
