// Package cluster distributes a NewsLink engine across processes: a
// Router partitions a snapshot's segment set over N shard Workers
// (newslinkd -shard) and serves search/explain by scatter-gather with
// the exact partial top-k merge semantics of internal/search.
//
// The RPC surface is a small HTTP/JSON protocol under the same /v1/
// envelope the public API uses:
//
//	GET  /v1/shard/info         identity, current plan, held artifacts
//	POST /v1/shard/assign       install a segment slice (fetching blobs)
//	POST /v1/shard/stats        per-term cursor summaries + corpus stats
//	POST /v1/shard/search       ordered-term block-max top-k (BOW + BON)
//	POST /v1/shard/docs         materialize result documents by position
//	POST /v1/shard/explain      engine Explain for a locally held doc
//	GET  /v1/shard/blob/{name}  one content-addressed segment artifact
//
// Every stateful request and response carries the plan ID — the version
// of the conversation. A worker serving a different plan answers 409
// (plan_mismatch) and the router re-assigns rather than merging results
// computed over the wrong corpus slice.
//
// Robustness is the point of the layer: per-shard deadlines derived from
// the request budget, bounded retries with jittered exponential backoff
// across replicas, optional tail-latency hedging, a consecutive-failure
// circuit breaker with readiness-probe re-admission, and graceful
// partial results (Degraded=true, never a 500 while one shard answers).
// See DESIGN.md §14.
package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"newslink"
	"newslink/internal/search"
)

// Request caps: like the public API's parameter caps, these keep one
// request from sizing worker allocations. They bound honest traffic
// generously (the router never exceeds them) and malicious bodies hard.
const (
	maxRPCBody   = 8 << 20 // bytes per request/response body
	maxRPCTerms  = 4096    // terms per stats/search request
	maxPositions = 16384   // positions per docs request
	maxSegments  = 1 << 16 // segments per assignment
	maxRPCK      = 16384   // top-k per shard search
)

// InfoResponse answers GET /v1/shard/info: the worker's identity, the
// plan it currently serves (empty while unassigned), and the
// content-addressed artifacts present in its directory — what the worker
// "advertises" for assignment and peer fetches.
type InfoResponse struct {
	ID        string   `json:"id"`
	Plan      string   `json:"plan,omitempty"`
	Base      int      `json:"base"`
	Artifacts []string `json:"artifacts,omitempty"`
	ShardStats
}

// ShardStats are the assignment-static collection statistics the router
// aggregates into global BM25 parameters. Totals are exact: document
// lengths are integer-valued, so float64 sums below 2^53 carry no
// rounding and the aggregated average equals the merged index's own.
type ShardStats struct {
	NumDocs      int     `json:"num_docs"`  // including tombstoned documents
	LiveDocs     int     `json:"live_docs"` // excluding tombstoned documents
	TextTotalLen float64 `json:"text_total_len"`
	NodeTotalLen float64 `json:"node_total_len"`
}

// AssignRequest installs a segment slice on a worker. Artifacts the
// worker does not hold (by checksum) are fetched from FetchFrom's
// /v1/shard/blob/ endpoint and verified before anything is loaded.
type AssignRequest struct {
	Plan      string                     `json:"plan"`
	Base      int                        `json:"base"`
	Config    newslink.Config            `json:"config"`
	Graph     newslink.GraphFingerprint  `json:"graph"`
	Segments  []newslink.ManifestSegment `json:"segments"`
	Checksums map[string]string          `json:"checksums"`
	FetchFrom string                     `json:"fetch_from,omitempty"`
}

// AssignResponse acknowledges an installed assignment.
type AssignResponse struct {
	Plan    string `json:"plan"`
	Fetched int    `json:"fetched"` // artifact files fetched from the peer
	ShardStats
}

// StatsRequest asks for cursor summaries of the given terms on the text
// and node indexes.
type StatsRequest struct {
	Plan string   `json:"plan"`
	Text []string `json:"text,omitempty"`
	Node []string `json:"node,omitempty"`
}

// StatsResponse carries per-term summaries; terms absent from an index
// are omitted (the router treats omission as df=0).
type StatsResponse struct {
	Plan string                        `json:"plan"`
	Text map[string]search.TermSummary `json:"text,omitempty"`
	Node map[string]search.TermSummary `json:"node,omitempty"`
}

// ScorerParams transports the global BM25 parameters the router computed
// from aggregated shard stats. float64 survives JSON round-trips exactly
// (shortest round-trip encoding), so worker-side scoring is bitwise
// identical to single-process scoring.
type ScorerParams struct {
	K1     float64 `json:"k1"`
	B      float64 `json:"b"`
	N      int     `json:"n"`
	AvgLen float64 `json:"avg_len"`
}

func (p ScorerParams) scorer() search.BM25 {
	return search.BM25{K1: p.K1, B: p.B, N: p.N, AvgLen: p.AvgLen}
}

// SearchRequest evaluates globally ordered terms on a worker's slice.
// Term order, DF and bounds are the router's global values; the worker
// executes them verbatim (TopKBlockMaxOrderedStats), which is what makes
// per-document scores identical to a single-process evaluation.
type SearchRequest struct {
	Plan       string               `json:"plan"`
	K          int                  `json:"k"`
	Text       []search.OrderedTerm `json:"text,omitempty"`
	Node       []search.OrderedTerm `json:"node,omitempty"`
	TextScorer ScorerParams         `json:"text_scorer"`
	NodeScorer ScorerParams         `json:"node_scorer"`
	// After/Before are the inclusive Document.Time bounds (0 = unbounded)
	// and Entities the router-resolved entity-facet term sets (one set per
	// requested label, conjunctive across sets; an empty set matches
	// nothing). Workers compile them into the same composed document
	// filter a single process uses, over statistics that stay unfiltered —
	// which is what keeps filtered cluster rankings DeepEqual to a single
	// process.
	After    int64      `json:"after,omitempty"`
	Before   int64      `json:"before,omitempty"`
	Entities [][]string `json:"entities,omitempty"`
}

// WireHit is one scored document in worker-local position coordinates;
// the router rebases by the shard's plan base.
type WireHit struct {
	Pos   int     `json:"pos"`
	Score float64 `json:"score"`
}

// SearchResponse carries the worker-local top k per index.
type SearchResponse struct {
	Plan string    `json:"plan"`
	Text []WireHit `json:"text,omitempty"`
	Node []WireHit `json:"node,omitempty"`
}

// DocsRequest materializes result documents by worker-local position.
// Terms drive snippet selection, as in the engine's own topk stage.
type DocsRequest struct {
	Plan      string   `json:"plan"`
	Positions []int    `json:"positions"`
	Terms     []string `json:"terms,omitempty"`
}

// WireDoc is one materialized result document.
type WireDoc struct {
	ID      int    `json:"id"`
	Title   string `json:"title"`
	Snippet string `json:"snippet,omitempty"`
}

// DocsResponse answers positions in request order.
type DocsResponse struct {
	Plan string    `json:"plan"`
	Docs []WireDoc `json:"docs"`
}

// ExplainRequest forwards an explain to the worker holding the document.
// The filter fields mirror SearchRequest: a document the filtered search
// would not return must not be explainable either, so the worker checks
// them before producing evidence.
type ExplainRequest struct {
	Plan     string     `json:"plan"`
	Query    string     `json:"query"`
	DocID    int        `json:"doc_id"`
	MaxPaths int        `json:"max_paths"`
	After    int64      `json:"after,omitempty"`
	Before   int64      `json:"before,omitempty"`
	Entities [][]string `json:"entities,omitempty"`
}

// ExplainResponse wraps the engine's explanation.
type ExplainResponse struct {
	Plan        string               `json:"plan"`
	Explanation newslink.Explanation `json:"explanation"`
}

// errDecode marks malformed or out-of-bounds RPC input; handlers map it
// to 400 with the uniform error envelope.
var errDecode = errors.New("cluster: invalid rpc payload")

func decodeErrf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", errDecode, fmt.Sprintf(format, args...))
}

// DecodeRPC strictly decodes one RPC message and validates its bounds:
// unknown fields, trailing data, oversized payloads and out-of-range
// parameters all fail with a typed error instead of reaching a handler.
func DecodeRPC(data []byte, v Validator) error {
	if len(data) > maxRPCBody {
		return decodeErrf("body of %d bytes exceeds %d", len(data), maxRPCBody)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return decodeErrf("%v", err)
	}
	if dec.More() {
		return decodeErrf("trailing data after message")
	}
	return v.Validate()
}

// decodeBody reads and decodes one request body.
func decodeBody(r io.Reader, v Validator) error {
	data, err := io.ReadAll(io.LimitReader(r, maxRPCBody+1))
	if err != nil {
		return decodeErrf("reading body: %v", err)
	}
	return DecodeRPC(data, v)
}

// Validator is an RPC message that can check its own bounds.
type Validator interface{ Validate() error }

func checkTerms(field string, terms []string) error {
	if len(terms) > maxRPCTerms {
		return decodeErrf("%s: %d terms exceed %d", field, len(terms), maxRPCTerms)
	}
	return nil
}

// maxEntitySets caps the entity-facet sets per request; each set is
// additionally bounded like a term list. Empty sets are valid — they are
// how an unresolvable label's match-nothing semantics reach the workers.
const maxEntitySets = 64

func checkEntitySets(field string, sets [][]string) error {
	if len(sets) > maxEntitySets {
		return decodeErrf("%s: %d entity sets exceed %d", field, len(sets), maxEntitySets)
	}
	for _, set := range sets {
		if len(set) > maxRPCTerms {
			return decodeErrf("%s: %d terms exceed %d", field, len(set), maxRPCTerms)
		}
		for _, t := range set {
			if t == "" {
				return decodeErrf("%s: empty entity term", field)
			}
		}
	}
	return nil
}

func checkOrdered(field string, terms []search.OrderedTerm) error {
	if len(terms) > maxRPCTerms {
		return decodeErrf("%s: %d terms exceed %d", field, len(terms), maxRPCTerms)
	}
	for _, t := range terms {
		if t.Term == "" || t.DF < 0 {
			return decodeErrf("%s: empty term or negative df", field)
		}
	}
	return nil
}

// Validate bounds an assignment: segment count, artifact IDs (which name
// files — a malformed ID must never reach the filesystem), and document
// payload sanity.
func (r *AssignRequest) Validate() error {
	if r.Plan == "" {
		return decodeErrf("assign: missing plan")
	}
	if r.Base < 0 {
		return decodeErrf("assign: negative base")
	}
	if len(r.Segments) == 0 || len(r.Segments) > maxSegments {
		return decodeErrf("assign: %d segments outside [1,%d]", len(r.Segments), maxSegments)
	}
	for _, sm := range r.Segments {
		if !validArtifactID(sm.ID) {
			return decodeErrf("assign: invalid segment id %q", sm.ID)
		}
	}
	return nil
}

func (r *StatsRequest) Validate() error {
	if r.Plan == "" {
		return decodeErrf("stats: missing plan")
	}
	if err := checkTerms("stats.text", r.Text); err != nil {
		return err
	}
	return checkTerms("stats.node", r.Node)
}

func (r *SearchRequest) Validate() error {
	if r.Plan == "" {
		return decodeErrf("search: missing plan")
	}
	if r.K <= 0 || r.K > maxRPCK {
		return decodeErrf("search: k %d outside [1,%d]", r.K, maxRPCK)
	}
	if err := checkOrdered("search.text", r.Text); err != nil {
		return err
	}
	if err := checkOrdered("search.node", r.Node); err != nil {
		return err
	}
	return checkEntitySets("search.entities", r.Entities)
}

func (r *DocsRequest) Validate() error {
	if r.Plan == "" {
		return decodeErrf("docs: missing plan")
	}
	if len(r.Positions) == 0 || len(r.Positions) > maxPositions {
		return decodeErrf("docs: %d positions outside [1,%d]", len(r.Positions), maxPositions)
	}
	for _, p := range r.Positions {
		if p < 0 {
			return decodeErrf("docs: negative position")
		}
	}
	return checkTerms("docs.terms", r.Terms)
}

func (r *ExplainRequest) Validate() error {
	if r.Plan == "" {
		return decodeErrf("explain: missing plan")
	}
	if r.Query == "" {
		return decodeErrf("explain: missing query")
	}
	if r.DocID < 0 || r.MaxPaths < 0 || r.MaxPaths > 1000 {
		return decodeErrf("explain: parameters out of range")
	}
	return checkEntitySets("explain.entities", r.Entities)
}

// Response validators: the router decodes worker responses through the
// same strict path, so a corrupted or truncated body (a worker crashing
// mid-response) surfaces as a typed decode error — a shard failure —
// never as silently wrong results.
func (r *InfoResponse) Validate() error {
	if len(r.Artifacts) > 3*maxSegments {
		return decodeErrf("info: artifact list too long")
	}
	return nil
}

func (r *AssignResponse) Validate() error {
	if r.Plan == "" {
		return decodeErrf("assign response: missing plan")
	}
	return nil
}

func (r *StatsResponse) Validate() error {
	if len(r.Text) > maxRPCTerms || len(r.Node) > maxRPCTerms {
		return decodeErrf("stats response: term map too large")
	}
	return nil
}

func (r *SearchResponse) Validate() error {
	if len(r.Text) > maxRPCK || len(r.Node) > maxRPCK {
		return decodeErrf("search response: hit list exceeds k cap")
	}
	for _, hits := range [][]WireHit{r.Text, r.Node} {
		for _, h := range hits {
			if h.Pos < 0 {
				return decodeErrf("search response: negative position")
			}
		}
	}
	return nil
}

func (r *DocsResponse) Validate() error {
	if len(r.Docs) > maxPositions {
		return decodeErrf("docs response: too many documents")
	}
	return nil
}

func (r *ExplainResponse) Validate() error { return nil }

// validArtifactID accepts the content-derived segment IDs Save produces:
// 16 lowercase hex digits. Anything else could smuggle path separators
// into artifact file names.
func validArtifactID(id string) bool {
	if len(id) != 16 {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// validArtifactName accepts exactly the file names SegmentFileNames
// produces for a valid artifact ID.
func validArtifactName(name string) bool {
	if len(name) < 5 || name[:4] != "seg-" {
		return false
	}
	rest := name[4:]
	dot := bytes.IndexByte([]byte(rest), '.')
	if dot < 0 || !validArtifactID(rest[:dot]) {
		return false
	}
	switch rest[dot+1:] {
	case "text.idx", "node.idx", "emb.bin":
		return true
	}
	return false
}
