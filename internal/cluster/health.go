package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"newslink"
)

// endpoint is one worker replica of a slot, with its circuit-breaker
// state: consecutive request failures past the configured threshold
// eject it (healthy=false), and only the probe loop re-admits it.
// Endpoints start ejected — admission always flows through a successful
// assignment or probe, so a replica is never scattered to before it has
// proven it serves the right plan.
type endpoint struct {
	url     string
	healthy atomic.Bool
	fails   atomic.Int32
}

// ok resets the consecutive-failure count on any success.
func (ep *endpoint) ok() { ep.fails.Store(0) }

// fail counts one failure; it reports true exactly once per ejection,
// when the consecutive count crosses the threshold on a healthy
// endpoint.
func (ep *endpoint) fail(threshold int) bool {
	if threshold < 1 {
		threshold = 1
	}
	n := ep.fails.Add(1)
	return int(n) >= threshold && ep.healthy.CompareAndSwap(true, false)
}

// admit marks the endpoint live again; true when the state flipped.
func (ep *endpoint) admit() bool {
	ep.fails.Store(0)
	return ep.healthy.CompareAndSwap(false, true)
}

// probeLoop periodically re-examines every ejected endpoint and
// re-admits those that pass readiness and serve (or accept) the
// router's plan. This is the sole re-admission path: request traffic
// can only eject.
func (rt *Router) probeLoop(ctx context.Context) {
	ticker := time.NewTicker(rt.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			rt.probeAll(ctx)
		}
	}
}

// probeAll probes every ejected endpoint once.
func (rt *Router) probeAll(ctx context.Context) {
	for _, sl := range rt.slots {
		for _, ep := range sl.eps {
			if !ep.healthy.Load() {
				rt.probeEndpoint(ctx, sl, ep)
			}
		}
	}
}

// probeEndpoint runs the admission sequence against one ejected
// endpoint: readiness probe, identity check, re-assignment when the
// worker is unassigned or on another plan, then admission. Any step
// failing leaves the endpoint ejected for the next probe round.
func (rt *Router) probeEndpoint(ctx context.Context, sl *slot, ep *endpoint) {
	pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
	defer cancel()
	needAssign := false
	if _, err := doRequest(pctx, rt.client, ep.url+"/v1/readyz", nil); err != nil {
		var se *rpcStatusError
		if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
			return // not reachable, or broken beyond "unassigned"
		}
		needAssign = true // alive but unassigned
	}
	if !needAssign {
		var info InfoResponse
		data, err := doRequest(pctx, rt.client, ep.url+"/v1/shard/info", nil)
		if err != nil || DecodeRPC(data, &info) != nil {
			return
		}
		if info.Plan != rt.plan.ID || info.Base != sl.plan.Base {
			needAssign = true
		} else {
			sl.setStats(info.ShardStats)
		}
	}
	if needAssign {
		if err := rt.assignEndpoint(pctx, sl, ep); err != nil {
			rt.log.Warn("probe re-assignment failed", "slot", sl.idx, "endpoint", ep.url, "err", err)
			return
		}
	}
	if ep.admit() {
		rt.log.Info("re-admitting shard endpoint", "slot", sl.idx, "endpoint", ep.url)
	}
}

// assignEndpoint installs the slot's segment slice on one worker,
// pointing it at the router's own blob endpoint for missing artifacts,
// and records the acknowledged shard statistics.
func (rt *Router) assignEndpoint(ctx context.Context, sl *slot, ep *endpoint) error {
	req := AssignRequest{
		Plan:      rt.plan.ID,
		Base:      sl.plan.Base,
		Config:    rt.plan.Config,
		Graph:     rt.plan.Graph,
		Segments:  sl.plan.Segments,
		Checksums: slotChecksums(rt.plan, sl.plan),
		FetchFrom: rt.cfg.SelfURL,
	}
	payload, err := json.Marshal(&req)
	if err != nil {
		return err
	}
	data, err := doRequest(ctx, rt.client, ep.url+"/v1/shard/assign", payload)
	if err != nil {
		return err
	}
	var ack AssignResponse
	if err := DecodeRPC(data, &ack); err != nil {
		return err
	}
	if ack.Plan != rt.plan.ID {
		return fmt.Errorf("worker acknowledged plan %s, want %s", ack.Plan, rt.plan.ID)
	}
	sl.setStats(ack.ShardStats)
	return nil
}

// slotChecksums restricts the snapshot's checksum map to the slot's own
// artifact files, so an assignment carries exactly what the worker needs
// to verify.
func slotChecksums(p *Plan, sp ShardPlan) map[string]string {
	out := make(map[string]string, 3*len(sp.Segments))
	for _, sm := range sp.Segments {
		for _, name := range newslink.SegmentFileNames(sm.ID) {
			if sum, ok := p.Checksums[name]; ok {
				out[name] = sum
			}
		}
	}
	return out
}
