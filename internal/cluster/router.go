package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"newslink"
	"newslink/internal/index"
	"newslink/internal/kg"
	"newslink/internal/obs"
	"newslink/internal/search"
	"newslink/internal/server"
)

// Config tunes the router's robustness policy. Zero values select the
// documented defaults.
type Config struct {
	// Endpoints lists, per shard slot, the base URLs of the worker
	// replicas serving that slot. Required, one non-empty group per slot.
	Endpoints [][]string
	// SelfURL is the router's own externally reachable base URL; workers
	// fetch missing segment artifacts from it. Empty disables peer
	// fetching (workers must already hold their artifacts).
	SelfURL string
	// MaxAttempts bounds the tries of one idempotent RPC across a slot's
	// replicas (default 3).
	MaxAttempts int
	// RetryBase is the first retry's backoff; later retries double it,
	// jittered (default 10ms).
	RetryBase time.Duration
	// Hedge enables tail-latency hedging: a duplicate request to a second
	// replica once the first has been quiet past the slot's p99.
	Hedge bool
	// HedgeMin floors the hedge delay while latency history is thin
	// (default 20ms).
	HedgeMin time.Duration
	// ProbeInterval paces the health probe loop (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe round-trip, including a re-assignment
	// with blob fetches (default 15s).
	ProbeTimeout time.Duration
	// BreakerThreshold is the consecutive-failure count that ejects an
	// endpoint (default 3).
	BreakerThreshold int
	// RequestTimeout is the total budget of one client search/explain
	// request; per-shard attempt deadlines are carved out of what
	// remains of it (default 10s).
	RequestTimeout time.Duration
	// Logger receives structured ejection/re-admission and access events.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 10 * time.Millisecond
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 20 * time.Millisecond
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 15 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	return c
}

// slot is one shard of the plan at runtime: its replicas, round-robin
// cursor, latency history and (assignment-acknowledged) corpus stats.
type slot struct {
	idx  int
	plan ShardPlan
	eps  []*endpoint
	next atomic.Int64
	lat  *obs.Histogram
	reqs map[string]*obs.Counter // outcome -> request counter

	mu      sync.Mutex
	stats   ShardStats
	statsOK bool
}

// live returns the slot's currently admitted replicas.
func (sl *slot) live() []*endpoint {
	out := make([]*endpoint, 0, len(sl.eps))
	for _, ep := range sl.eps {
		if ep.healthy.Load() {
			out = append(out, ep)
		}
	}
	return out
}

func (sl *slot) setStats(s ShardStats) {
	sl.mu.Lock()
	sl.stats, sl.statsOK = s, true
	sl.mu.Unlock()
}

func (sl *slot) getStats() (ShardStats, bool) {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.stats, sl.statsOK
}

// statsKey caches one term's summary on one slot's index.
type statsKey struct {
	slot int
	node bool
	term string
}

// cachedSummary records presence too: a term absent from a shard is a
// fact worth caching (found=false), not a miss.
type cachedSummary struct {
	sum   search.TermSummary
	found bool
}

// maxStatsCache bounds the router's per-(slot, index, term) stats cache.
const maxStatsCache = 1 << 16

// latencyBounds bucket per-shard RPC latencies (seconds).
var latencyBounds = []float64{.001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5}

// Router serves the public search/explain API by scatter-gather over
// shard workers. It holds the knowledge graph (for query analysis — the
// same analysis a single-process engine runs) and the snapshot directory
// (to seed workers over the blob endpoint), but never loads segment
// indexes itself.
type Router struct {
	plan     *Plan
	dir      string
	cfg      Config
	log      *slog.Logger
	client   *http.Client
	analyzer *newslink.Engine
	registry *obs.Registry
	slots    []*slot

	mRetries *obs.Counter
	mHedges  *obs.Counter
	mPartial *obs.Counter

	statsMu    sync.Mutex
	statsCache map[statsKey]cachedSummary
}

// NewRouter builds a router over the v4 snapshot in dir: it reads the
// manifest, partitions the segment set into len(cfg.Endpoints) slots
// (fewer when the snapshot has fewer segments; surplus endpoint groups
// fold into the existing slots as extra replicas), and prepares — but
// does not start — the serving state. Call Start to assign workers and
// begin health probing, and serve Handler over HTTP at cfg.SelfURL
// before Start so workers can fetch artifacts.
func NewRouter(dir string, g *kg.Graph, cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Endpoints) == 0 {
		return nil, fmt.Errorf("cluster: no shard endpoints configured")
	}
	for i, group := range cfg.Endpoints {
		if len(group) == 0 {
			return nil, fmt.Errorf("cluster: endpoint group %d is empty", i)
		}
	}
	m, err := newslink.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	plan, err := BuildPlan(m, len(cfg.Endpoints))
	if err != nil {
		return nil, err
	}
	if got, want := plan.Graph, newslink.FingerprintGraph(g); got != want {
		return nil, fmt.Errorf("cluster: graph fingerprint %+v does not match snapshot %+v", want, got)
	}
	log := cfg.Logger
	if log == nil {
		log = slog.Default()
	}
	analyzer := newslink.New(g, plan.Config)
	rt := &Router{
		plan:       plan,
		dir:        dir,
		cfg:        cfg,
		log:        log,
		client:     &http.Client{},
		analyzer:   analyzer,
		registry:   analyzer.Metrics(),
		statsCache: make(map[statsKey]cachedSummary),
	}
	rt.mRetries = rt.registry.Counter("newslink_cluster_retries_total",
		"Shard RPC retries after a failed attempt.")
	rt.mHedges = rt.registry.Counter("newslink_cluster_hedges_total",
		"Hedged (duplicate) shard requests fired against a second replica.")
	rt.mPartial = rt.registry.Counter("newslink_cluster_partial_results_total",
		"Search responses served degraded from a subset of shards.")
	// Surplus endpoint groups (more groups than the snapshot has
	// segments, hence slots) become extra replicas, round-robin.
	groups := make([][]string, len(plan.Shards))
	for i, group := range cfg.Endpoints {
		groups[i%len(plan.Shards)] = append(groups[i%len(plan.Shards)], group...)
	}
	for i, sp := range plan.Shards {
		shard := strconv.Itoa(i)
		sl := &slot{
			idx:  i,
			plan: sp,
			lat: rt.registry.Histogram("newslink_cluster_shard_seconds",
				"Per-shard RPC latency.", latencyBounds, obs.L("shard", shard)),
			reqs: make(map[string]*obs.Counter, 3),
		}
		for _, outcome := range []string{"ok", "error", "timeout"} {
			sl.reqs[outcome] = rt.registry.Counter("newslink_cluster_shard_requests_total",
				"Shard RPC attempts by outcome.", obs.L("shard", shard), obs.L("outcome", outcome))
		}
		for _, url := range groups[i] {
			sl.eps = append(sl.eps, &endpoint{url: url})
		}
		rt.slots = append(rt.slots, sl)
	}
	return rt, nil
}

// Plan returns the router's partitioning (for tests and status surfaces).
func (rt *Router) Plan() *Plan { return rt.plan }

// Start performs the initial assignment of every replica and launches
// the health probe loop. Replicas that cannot be assigned now stay
// ejected; the probe loop keeps trying, so a late-starting worker is
// admitted without intervention. Start returns an error only when no
// replica of any slot could be assigned and the router would be
// permanently useless until workers appear.
func (rt *Router) Start(ctx context.Context) error {
	admitted := 0
	for _, sl := range rt.slots {
		for _, ep := range sl.eps {
			actx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeTimeout)
			err := rt.assignEndpoint(actx, sl, ep)
			cancel()
			if err != nil {
				rt.log.Warn("initial assignment failed", "slot", sl.idx, "endpoint", ep.url, "err", err)
				continue
			}
			ep.admit()
			admitted++
		}
	}
	go rt.probeLoop(ctx)
	if admitted == 0 {
		return fmt.Errorf("cluster: no worker accepted an assignment (probing continues)")
	}
	rt.log.Info("cluster router started", "plan", rt.plan.ID,
		"slots", len(rt.slots), "replicas_admitted", admitted)
	return nil
}

// Close releases idle transport connections.
func (rt *Router) Close() { rt.client.CloseIdleConnections() }

// Handler returns the router's public HTTP surface: the same /v1/search
// and /v1/explain contract the single-process server exposes (plus the
// unversioned aliases), the blob endpoint workers fetch artifacts from,
// and health/metrics.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	for _, prefix := range []string{"/v1", ""} {
		mux.HandleFunc("GET "+prefix+"/search", rt.handleSearch)
		mux.HandleFunc("GET "+prefix+"/explain", rt.handleExplain)
		mux.HandleFunc("GET "+prefix+"/healthz", rt.handleHealth)
		mux.HandleFunc("GET "+prefix+"/readyz", rt.handleReady)
		mux.HandleFunc("GET "+prefix+"/stats", rt.handleStats)
		mux.HandleFunc("GET "+prefix+"/metrics", rt.handleMetrics)
	}
	mux.HandleFunc("GET /v1/shard/blob/{name}", blobHandler(rt.dir))
	return mux
}

func (rt *Router) handleHealth(w http.ResponseWriter, _ *http.Request) {
	server.WriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady answers ready while at least one shard can serve; a
// router with zero live shards cannot produce any results.
func (rt *Router) handleReady(w http.ResponseWriter, _ *http.Request) {
	for _, sl := range rt.slots {
		if len(sl.live()) > 0 {
			server.WriteJSON(w, http.StatusOK, map[string]string{"status": "ready"})
			return
		}
	}
	server.WriteJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no_live_shards"})
}

// ClusterStatus is the router's /v1/stats reply: the plan and per-slot
// replica health, the operational view of ejection and re-admission.
type ClusterStatus struct {
	Plan   string        `json:"plan"`
	Shards []ShardStatus `json:"shards"`
}

// ShardStatus is one slot's health summary.
type ShardStatus struct {
	Slot      int              `json:"slot"`
	Base      int              `json:"base"`
	Docs      int              `json:"docs"`
	Live      int              `json:"live"`
	Endpoints []EndpointStatus `json:"endpoints"`
}

// EndpointStatus is one replica's breaker state.
type EndpointStatus struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

func (rt *Router) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := ClusterStatus{Plan: rt.plan.ID}
	for _, sl := range rt.slots {
		ss := ShardStatus{Slot: sl.idx, Base: sl.plan.Base, Docs: sl.plan.Docs, Live: sl.plan.Live}
		for _, ep := range sl.eps {
			ss.Endpoints = append(ss.Endpoints, EndpointStatus{URL: ep.url, Healthy: ep.healthy.Load()})
		}
		st.Shards = append(st.Shards, ss)
	}
	server.WriteJSON(w, http.StatusOK, st)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = rt.registry.WriteJSON(w)
}

// httpError carries a status/code pair from the scatter pipeline to the
// handler's error envelope.
type httpError struct {
	Status  int
	Code    string
	Message string
}

func (e *httpError) Error() string { return e.Message }

func httpErrorf(status int, code, format string, args ...any) *httpError {
	return &httpError{Status: status, Code: code, Message: fmt.Sprintf(format, args...)}
}

// writeRouterError maps pipeline errors onto the uniform envelope.
func (rt *Router) writeRouterError(w http.ResponseWriter, err error) {
	var he *httpError
	switch {
	case errors.As(err, &he):
		server.WriteError(w, he.Status, he.Code, "%s", he.Message)
	case errors.Is(err, context.Canceled):
		server.WriteError(w, server.StatusClientClosedRequest, "client_closed_request", "request cancelled")
	case errors.Is(err, context.DeadlineExceeded):
		server.WriteError(w, http.StatusGatewayTimeout, "deadline_exceeded", "query deadline exceeded")
	default:
		server.WriteError(w, http.StatusInternalServerError, "internal", "%v", err)
	}
}

func (rt *Router) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		server.WriteError(w, http.StatusBadRequest, "bad_request", "missing query parameter q")
		return
	}
	k, err := intParam(r, "k", 10)
	if err != nil || k <= 0 || k > 1000 {
		server.WriteError(w, http.StatusBadRequest, "bad_request", "k must be in [1,1000]")
		return
	}
	pool, err := intParam(r, "pool", 0)
	if err != nil || pool < 0 || pool > 10000 {
		server.WriteError(w, http.StatusBadRequest, "bad_request", "parameter \"pool\" must be an integer in [0,10000]")
		return
	}
	var beta *float64
	if raw := r.URL.Query().Get("beta"); raw != "" {
		b, err := strconv.ParseFloat(raw, 64)
		if err != nil || b < 0 || b > 1 {
			server.WriteError(w, http.StatusBadRequest, "bad_request", "parameter \"beta\" must be a number in [0,1], got %q", raw)
			return
		}
		beta = &b
	}
	flt, err := rt.filterOf(r)
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()
	var tr *obs.Trace
	if r.URL.Query().Get("trace") == "1" {
		ctx, tr = obs.WithTrace(ctx)
	}
	resp, err := rt.search(ctx, q, k, pool, beta, flt)
	if err != nil {
		rt.writeRouterError(w, err)
		return
	}
	resp.Trace = tr.Spans()
	server.WriteJSON(w, http.StatusOK, resp)
}

func intParam(r *http.Request, name string, def int) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	return strconv.Atoi(raw)
}

// wireFilter is one request's document-filter clauses in the shape the
// shard RPC carries: time bounds verbatim, entity labels already resolved
// to node-term sets against the router's graph. Resolving once here means
// every shard filters by identical terms and the composed facet equals a
// single process's over the merged corpus.
type wireFilter struct {
	after, before int64
	entities      [][]string
}

func (f wireFilter) empty() bool {
	return f.after == 0 && f.before == 0 && len(f.entities) == 0
}

// filterOf parses the shared filter query parameters (the single-process
// server's grammar) and resolves entity labels against the router's
// knowledge graph. A label that resolves to nothing stays as an empty
// term set: it must reach the workers so the facet matches no document,
// exactly as on a single process.
func (rt *Router) filterOf(r *http.Request) (wireFilter, error) {
	after, before, labels, err := server.FilterParams(r)
	if err != nil {
		return wireFilter{}, err
	}
	f := wireFilter{after: after, before: before}
	if len(labels) > 0 {
		f.entities = rt.analyzer.EntityTerms(labels)
	}
	return f, nil
}

// search runs the scatter-gather pipeline with graceful degradation:
// shards that fail mid-request are dropped and the pipeline re-runs
// over the survivors (global statistics re-aggregated, so the ranking
// over the remaining corpus stays exact). Only zero live shards fail
// the request.
func (rt *Router) search(ctx context.Context, q string, k, pool int, betaOverride *float64, flt wireFilter) (*server.SearchResponse, error) {
	beta := rt.plan.Config.Beta
	if betaOverride != nil {
		beta = *betaOverride
	}
	if pool <= 0 {
		pool = rt.plan.Config.PoolDepth
	}
	if pool == 0 {
		pool = 100
	}
	if pool < k {
		pool = k
	}
	terms, nodeWeights, err := rt.analyzer.AnalyzeQuery(ctx, q)
	if err != nil {
		return nil, err
	}
	textQuery := search.NewQuery(terms)
	nodeQuery := search.Query(nodeWeights)
	runBOW := beta < 1
	runBON := beta > 0 && nodeWeights != nil
	// failed tracks slots lost during *this* request; each pipeline pass
	// either completes or adds at least one slot to it, bounding the
	// degradation loop by the slot count.
	failed := make(map[int]bool)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		target := rt.liveSlots(failed)
		if len(target) == 0 {
			return nil, httpErrorf(http.StatusServiceUnavailable, "shard_unavailable",
				"no live shard can serve the request")
		}
		resp, lost := rt.searchOnce(ctx, target, q, k, pool, beta, runBOW, runBON, terms, textQuery, nodeQuery, flt)
		if len(lost) > 0 {
			for _, idx := range lost {
				failed[idx] = true
			}
			rt.log.Warn("shards lost mid-request; re-aggregating", "lost", lost)
			continue
		}
		if len(target) < len(rt.slots) {
			resp.Degraded = true
			resp.DegradedReason = "shard_unavailable"
			rt.mPartial.Inc()
		}
		resp.ShardsTotal = len(rt.slots)
		resp.ShardsOK = len(target)
		return resp, nil
	}
}

// liveSlots returns the slots that still have an admitted replica and
// were not lost earlier in this request.
func (rt *Router) liveSlots(failed map[int]bool) []*slot {
	out := make([]*slot, 0, len(rt.slots))
	for _, sl := range rt.slots {
		if !failed[sl.idx] && len(sl.live()) > 0 {
			out = append(out, sl)
		}
	}
	return out
}

// searchOnce runs one pipeline pass over a fixed target set. It returns
// the response, or the slots lost during the pass (the caller then
// shrinks the target and re-aggregates). Filter clauses affect only the
// scatter phase: statistics stay those of the unfiltered target corpus
// (matching a single process's filtered-statistics semantics), so the
// stats cache, aggregation and pool clamp are filter-independent.
func (rt *Router) searchOnce(ctx context.Context, target []*slot, q string, k, pool int, beta float64, runBOW, runBON bool, terms []string, textQuery, nodeQuery search.Query, flt wireFilter) (*server.SearchResponse, []int) {
	tr := obs.FromContext(ctx)

	// Phase 1 — statistics. Cached (slot, index, term) summaries make
	// this a no-op for warm query vocabulary.
	var textTerms, nodeTerms []string
	if runBOW {
		textTerms = queryTerms(textQuery)
	}
	if runBON {
		nodeTerms = queryTerms(nodeQuery)
	}
	if lost := rt.scatterStats(ctx, target, textTerms, nodeTerms); len(lost) > 0 {
		return nil, lost
	}

	// Aggregate global collection + term statistics over the target set.
	agg, ok := rt.aggregate(target, textTerms, nodeTerms)
	if !ok {
		// A slot without acknowledged stats cannot participate.
		lost := []int{}
		for _, sl := range target {
			if _, ok := sl.getStats(); !ok {
				lost = append(lost, sl.idx)
			}
		}
		return nil, lost
	}
	// The candidate pool never usefully exceeds the live corpus in
	// target, mirroring the engine's own clamp.
	if agg.live < pool {
		pool = agg.live
	}

	// Canonical global term order: identical to prepareBlockTerms over
	// the merged index, so every shard accumulates in the same order.
	var orderedText, orderedNode []search.OrderedTerm
	if runBOW {
		orderedText, _ = search.OrderTerms(agg.textScorer, textQuery, agg.textStats)
	}
	if runBON {
		orderedNode, _ = search.OrderTerms(agg.nodeScorer, nodeQuery, agg.nodeStats)
	}
	if pool == 0 || len(orderedText)+len(orderedNode) == 0 {
		// Nothing can match (empty live corpus or no query term posted
		// anywhere); skip the scatter entirely.
		return &server.SearchResponse{Query: q, K: k, Results: []newslink.Result{}}, nil
	}

	// Phase 2 — scatter the search.
	sp := tr.Start(obs.StageScatter)
	perSlot, lost := rt.scatterSearch(ctx, target, pool, orderedText, orderedNode, agg, flt)
	sp.End(obs.Int("shards", len(target)), obs.Int("lost", len(lost)))
	if len(lost) > 0 {
		return nil, lost
	}

	// Phase 3 — gather: rebase to global positions, merge with the
	// sharded-merge comparator, fuse, and materialize documents.
	gsp := tr.Start(obs.StageGather)
	var bowLists, bonLists [][]search.Hit
	for i, sl := range target {
		bowLists = append(bowLists, rebase(perSlot[i].Text, sl.plan.Base))
		bonLists = append(bonLists, rebase(perSlot[i].Node, sl.plan.Base))
	}
	bow := search.MergeTopK(pool, bowLists...)
	bon := search.MergeTopK(pool, bonLists...)
	fused := search.Fuse(bow, bon, beta, k)
	results, lost := rt.gatherDocs(ctx, target, fused, terms)
	gsp.End(obs.Int("bow_candidates", len(bow)), obs.Int("bon_candidates", len(bon)), obs.Int("fused", len(fused)))
	if len(lost) > 0 {
		return nil, lost
	}
	return &server.SearchResponse{Query: q, K: k, Results: results}, nil
}

// aggregated holds the globally aggregated statistics of one pass.
type aggregated struct {
	live       int
	textScorer search.BM25
	nodeScorer search.BM25
	textStats  map[string]search.TermSummary
	nodeStats  map[string]search.TermSummary
}

// queryTerms returns the query's distinct terms, sorted for stable RPC
// payloads (and therefore stable logs and traces).
func queryTerms(q search.Query) []string {
	out := make([]string, 0, len(q))
	for t := range q {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// aggregate folds per-slot statistics into the global BM25 parameters
// and term summaries of the target corpus. Sums are exact (integer
// counts and integer-valued float64 totals), so the parameters equal a
// single-process engine's over the same documents.
func (rt *Router) aggregate(target []*slot, textTerms, nodeTerms []string) (aggregated, bool) {
	agg := aggregated{
		textStats: make(map[string]search.TermSummary, len(textTerms)),
		nodeStats: make(map[string]search.TermSummary, len(nodeTerms)),
	}
	numDocs := 0
	textTotal, nodeTotal := 0.0, 0.0
	for _, sl := range target {
		st, ok := sl.getStats()
		if !ok {
			return agg, false
		}
		numDocs += st.NumDocs
		agg.live += st.LiveDocs
		textTotal += st.TextTotalLen
		nodeTotal += st.NodeTotalLen
	}
	textAvg, nodeAvg := 0.0, 0.0
	if numDocs > 0 {
		textAvg = textTotal / float64(numDocs)
		nodeAvg = nodeTotal / float64(numDocs)
	}
	// Text scoring uses Lucene's default BM25 parameters; node scoring
	// uses the engine's BON parameterization (b=0, small k1) — see
	// Engine.retrieve for the rationale. Both carry the aggregated
	// corpus-level N and average length.
	agg.textScorer = search.BM25{K1: 1.2, B: 0.75, N: numDocs, AvgLen: textAvg}
	agg.nodeScorer = search.BM25{K1: 0.4, B: 0, N: numDocs, AvgLen: nodeAvg}
	for _, term := range textTerms {
		if sum, ok := rt.sumTerm(target, false, term); ok {
			agg.textStats[term] = sum
		}
	}
	for _, term := range nodeTerms {
		if sum, ok := rt.sumTerm(target, true, term); ok {
			agg.nodeStats[term] = sum
		}
	}
	return agg, true
}

// sumTerm folds one term's cached per-slot summaries: DF sums, MaxTF
// maxes. Absent everywhere -> not ok (the term has no postings in the
// target corpus and is dropped, as on a merged index).
func (rt *Router) sumTerm(target []*slot, node bool, term string) (search.TermSummary, bool) {
	rt.statsMu.Lock()
	defer rt.statsMu.Unlock()
	var out search.TermSummary
	found := false
	for _, sl := range target {
		c, ok := rt.statsCache[statsKey{slot: sl.idx, node: node, term: term}]
		if !ok || !c.found {
			continue
		}
		found = true
		out.DF += c.sum.DF
		if c.sum.MaxTF > out.MaxTF {
			out.MaxTF = c.sum.MaxTF
		}
	}
	return out, found
}

// missingTerms returns the subset of terms with no cache entry for the
// slot's index.
func (rt *Router) missingTerms(sl *slot, node bool, terms []string) []string {
	rt.statsMu.Lock()
	defer rt.statsMu.Unlock()
	var out []string
	for _, t := range terms {
		if _, ok := rt.statsCache[statsKey{slot: sl.idx, node: node, term: t}]; !ok {
			out = append(out, t)
		}
	}
	return out
}

// cacheStats records a stats response, including negative entries for
// requested terms the shard omitted (absent from that index). The cache
// is bounded; at capacity an arbitrary chunk is evicted — summaries are
// cheap to re-fetch.
func (rt *Router) cacheStats(sl *slot, node bool, requested []string, got map[string]search.TermSummary) {
	rt.statsMu.Lock()
	defer rt.statsMu.Unlock()
	if len(rt.statsCache)+len(requested) > maxStatsCache {
		evict := maxStatsCache / 8
		for key := range rt.statsCache {
			delete(rt.statsCache, key)
			if evict--; evict <= 0 {
				break
			}
		}
	}
	for _, t := range requested {
		sum, found := got[t]
		rt.statsCache[statsKey{slot: sl.idx, node: node, term: t}] = cachedSummary{sum: sum, found: found}
	}
}

// scatterStats fetches the uncached term summaries from every target
// slot in parallel. Returns the slots that failed.
func (rt *Router) scatterStats(ctx context.Context, target []*slot, textTerms, nodeTerms []string) []int {
	var mu sync.Mutex
	var lost []int
	var wg sync.WaitGroup
	for _, sl := range target {
		missingText := rt.missingTerms(sl, false, textTerms)
		missingNode := rt.missingTerms(sl, true, nodeTerms)
		if len(missingText) == 0 && len(missingNode) == 0 {
			continue
		}
		wg.Add(1)
		go func(sl *slot, missingText, missingNode []string) {
			defer wg.Done()
			req := StatsRequest{Plan: rt.plan.ID, Text: missingText, Node: missingNode}
			var resp StatsResponse
			if err := rt.callSlot(ctx, sl, "/v1/shard/stats", &req, &resp); err != nil {
				mu.Lock()
				lost = append(lost, sl.idx)
				mu.Unlock()
				return
			}
			rt.cacheStats(sl, false, missingText, resp.Text)
			rt.cacheStats(sl, true, missingNode, resp.Node)
		}(sl, missingText, missingNode)
	}
	wg.Wait()
	return lost
}

// scatterSearch fans the ordered-term evaluation out to every target
// slot, one span per shard leg. Results are indexed like target; lost
// slots are reported instead of partial lists.
func (rt *Router) scatterSearch(ctx context.Context, target []*slot, pool int, orderedText, orderedNode []search.OrderedTerm, agg aggregated, flt wireFilter) ([]SearchResponse, []int) {
	tr := obs.FromContext(ctx)
	perSlot := make([]SearchResponse, len(target))
	errs := make([]error, len(target))
	var wg sync.WaitGroup
	for i, sl := range target {
		wg.Add(1)
		go func(i int, sl *slot) {
			defer wg.Done()
			sp := tr.Start(obs.StageShard(sl.idx))
			req := SearchRequest{
				Plan:       rt.plan.ID,
				K:          pool,
				Text:       orderedText,
				Node:       orderedNode,
				TextScorer: scorerParams(agg.textScorer),
				NodeScorer: scorerParams(agg.nodeScorer),
				After:      flt.after,
				Before:     flt.before,
				Entities:   flt.entities,
			}
			errs[i] = rt.callSlot(ctx, sl, "/v1/shard/search", &req, &perSlot[i])
			sp.End(obs.Int("text_hits", len(perSlot[i].Text)), obs.Int("node_hits", len(perSlot[i].Node)),
				obs.Bool("failed", errs[i] != nil))
		}(i, sl)
	}
	wg.Wait()
	var lost []int
	for i, err := range errs {
		if err != nil {
			lost = append(lost, target[i].idx)
		}
	}
	return perSlot, lost
}

func scorerParams(s search.BM25) ScorerParams {
	return ScorerParams{K1: s.K1, B: s.B, N: s.N, AvgLen: s.AvgLen}
}

// rebase converts worker-local hit positions to global positions by the
// slot's base offset.
func rebase(hits []WireHit, base int) []search.Hit {
	out := make([]search.Hit, len(hits))
	for i, h := range hits {
		out[i] = search.Hit{Doc: index.DocID(base + h.Pos), Score: h.Score}
	}
	return out
}

// gatherDocs materializes the fused ranking: positions are grouped by
// owning slot, fetched in parallel, and reassembled in rank order.
func (rt *Router) gatherDocs(ctx context.Context, target []*slot, fused []search.Hit, terms []string) ([]newslink.Result, []int) {
	results := make([]newslink.Result, len(fused))
	if len(fused) == 0 {
		return results, nil
	}
	bySlot := make(map[int][]int) // slot idx -> ranks served there
	slotByIdx := make(map[int]*slot, len(target))
	for _, sl := range target {
		slotByIdx[sl.idx] = sl
	}
	for rank, h := range fused {
		bySlot[rt.plan.slotOfPos(int(h.Doc))] = append(bySlot[rt.plan.slotOfPos(int(h.Doc))], rank)
	}
	var mu sync.Mutex
	var lost []int
	var wg sync.WaitGroup
	for idx, ranks := range bySlot {
		sl, ok := slotByIdx[idx]
		if !ok {
			// A merged hit can only come from a target slot; this is a
			// plan/merge invariant violation, treat the slot as lost.
			mu.Lock()
			lost = append(lost, idx)
			mu.Unlock()
			continue
		}
		wg.Add(1)
		go func(sl *slot, ranks []int) {
			defer wg.Done()
			req := DocsRequest{Plan: rt.plan.ID, Positions: make([]int, len(ranks)), Terms: terms}
			for i, rank := range ranks {
				req.Positions[i] = int(fused[rank].Doc) - sl.plan.Base
			}
			var resp DocsResponse
			if err := rt.callSlot(ctx, sl, "/v1/shard/docs", &req, &resp); err != nil || len(resp.Docs) != len(ranks) {
				mu.Lock()
				lost = append(lost, sl.idx)
				mu.Unlock()
				return
			}
			for i, rank := range ranks {
				results[rank] = newslink.Result{
					ID:      resp.Docs[i].ID,
					Title:   resp.Docs[i].Title,
					Score:   fused[rank].Score,
					Snippet: resp.Docs[i].Snippet,
				}
			}
		}(sl, ranks)
	}
	wg.Wait()
	return results, lost
}

func (rt *Router) handleExplain(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		server.WriteError(w, http.StatusBadRequest, "bad_request", "missing query parameter q")
		return
	}
	id, err := intParam(r, "id", -1)
	if err != nil || id < 0 {
		server.WriteError(w, http.StatusBadRequest, "bad_request", "missing or negative parameter id")
		return
	}
	paths, err := intParam(r, "paths", 5)
	if err != nil || paths < 0 || paths > 1000 {
		server.WriteError(w, http.StatusBadRequest, "bad_request", "parameter \"paths\" must be in [0,1000]")
		return
	}
	flt, err := rt.filterOf(r)
	if err != nil {
		server.WriteError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	idx, ok := rt.plan.ShardOf(id)
	if !ok {
		server.WriteError(w, http.StatusNotFound, "unknown_document", "no live document %d", id)
		return
	}
	sl := rt.slots[idx]
	if len(sl.live()) == 0 {
		server.WriteError(w, http.StatusServiceUnavailable, "shard_unavailable",
			"the shard holding document %d is unavailable", id)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.RequestTimeout)
	defer cancel()
	req := ExplainRequest{Plan: rt.plan.ID, Query: q, DocID: id, MaxPaths: paths,
		After: flt.after, Before: flt.before, Entities: flt.entities}
	var resp ExplainResponse
	if err := rt.callSlot(ctx, sl, "/v1/shard/explain", &req, &resp); err != nil {
		var se *rpcStatusError
		switch {
		case errors.As(err, &se) && se.Status == http.StatusNotFound:
			server.WriteError(w, http.StatusNotFound, "unknown_document", "%s", se.Message)
		case errors.Is(err, context.DeadlineExceeded):
			server.WriteError(w, http.StatusGatewayTimeout, "deadline_exceeded", "query deadline exceeded")
		case errors.Is(err, context.Canceled):
			server.WriteError(w, server.StatusClientClosedRequest, "client_closed_request", "request cancelled")
		default:
			server.WriteError(w, http.StatusServiceUnavailable, "shard_unavailable", "%v", err)
		}
		return
	}
	server.WriteJSON(w, http.StatusOK, server.ExplainResponse{Query: q, DocID: id, Explanation: resp.Explanation})
}
