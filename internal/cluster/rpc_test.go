package cluster

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// rpcMessages returns one fresh value of every wire type, indexed by the
// selector the fuzzer mutates.
func rpcMessages() []Validator {
	return []Validator{
		&InfoResponse{},
		&AssignRequest{},
		&AssignResponse{},
		&StatsRequest{},
		&StatsResponse{},
		&SearchRequest{},
		&SearchResponse{},
		&DocsRequest{},
		&DocsResponse{},
		&ExplainRequest{},
		&ExplainResponse{},
	}
}

func TestDecodeRPCRejects(t *testing.T) {
	cases := []struct {
		name string
		data string
		into Validator
	}{
		{"empty", "", &StatsRequest{}},
		{"junk", "not json", &StatsRequest{}},
		{"unknown field", `{"plan":"p","bogus":1}`, &StatsRequest{}},
		{"trailing data", `{"plan":"p"}{"plan":"q"}`, &StatsRequest{}},
		{"zero k", `{"plan":"p","k":0}`, &SearchRequest{}},
		{"huge k", `{"plan":"p","k":99999}`, &SearchRequest{}},
		{"negative position", `{"plan":"p","positions":[-1]}`, &DocsRequest{}},
		{"negative doc id", `{"plan":"p","query":"x","doc_id":-2}`, &ExplainRequest{}},
		{"bad artifact id", `{"plan":"p","segments":[{"id":"../../etc"}]}`, &AssignRequest{}},
	}
	for _, tc := range cases {
		if err := DecodeRPC([]byte(tc.data), tc.into); err == nil {
			t.Errorf("%s: DecodeRPC accepted %q", tc.name, tc.data)
		}
	}
	if err := DecodeRPC(bytes.Repeat([]byte(" "), maxRPCBody+1), &StatsRequest{}); err == nil {
		t.Error("DecodeRPC accepted an oversized body")
	}
}

func TestValidArtifactNames(t *testing.T) {
	id := strings.Repeat("ab", 8)
	for _, good := range []string{"seg-" + id + ".text.idx", "seg-" + id + ".node.idx", "seg-" + id + ".emb.bin"} {
		if !validArtifactName(good) {
			t.Errorf("rejected valid artifact name %q", good)
		}
	}
	for _, bad := range []string{
		"", "seg-" + id, "seg-" + id + ".text.IDX", "seg-../x.text.idx",
		"seg-" + strings.ToUpper(id) + ".text.idx", "seg-" + id + ".wal", "manifest.json",
		"seg-" + id[:15] + ".text.idx", "/etc/passwd", "seg-" + id + ".text.idx/..",
	} {
		if validArtifactName(bad) {
			t.Errorf("accepted invalid artifact name %q", bad)
		}
	}
}

// FuzzClusterRPCDecode drives DecodeRPC — the boundary every byte from
// the network crosses — over all wire types: it must never panic, and
// whatever it accepts must itself validate (the handler can rely on it).
func FuzzClusterRPCDecode(f *testing.F) {
	seeds := []any{
		&InfoResponse{ID: "w0", Plan: "abcd", Artifacts: []string{"seg-0123456789abcdef.text.idx"}},
		&AssignRequest{Plan: "abcd", Segments: nil, FetchFrom: "http://peer"},
		&AssignResponse{Plan: "abcd", Fetched: 2, ShardStats: ShardStats{NumDocs: 10, LiveDocs: 9}},
		&StatsRequest{Plan: "abcd", Text: []string{"border"}, Node: []string{"n12"}},
		&StatsResponse{Plan: "abcd"},
		&SearchRequest{Plan: "abcd", K: 10},
		&SearchResponse{Plan: "abcd", Text: []WireHit{{Pos: 3, Score: 1.5}}},
		&DocsRequest{Plan: "abcd", Positions: []int{0, 1}, Terms: []string{"border"}},
		&DocsResponse{Plan: "abcd", Docs: []WireDoc{{ID: 1, Title: "t"}}},
		&ExplainRequest{Plan: "abcd", Query: "q", DocID: 1, MaxPaths: 3},
		&ExplainResponse{Plan: "abcd"},
	}
	for i, s := range seeds {
		data, err := json.Marshal(s)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(i, data)
	}
	f.Add(0, []byte(`{"unknown":true}`))
	f.Add(5, []byte(`{"plan":"p","k":-1}`))
	f.Fuzz(func(t *testing.T, which int, data []byte) {
		msgs := rpcMessages()
		if which < 0 {
			which = -which
		}
		v := msgs[which%len(msgs)]
		if err := DecodeRPC(data, v); err == nil {
			if verr := v.Validate(); verr != nil {
				t.Fatalf("DecodeRPC accepted a message that fails Validate: %v\ninput: %q", verr, data)
			}
		}
	})
}
