package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"reflect"
	"testing"
	"time"

	"newslink"
	"newslink/internal/faults"
	"newslink/internal/kg"
	"newslink/internal/server"
)

// liveSlotReference serves the corpus of every slot except the excluded
// one through a single-process engine: the oracle for degraded results.
// The excluded slot's documents simply do not exist in this engine, so
// its ranking is exactly what "merge the live shards" must produce.
func liveSlotReference(t *testing.T, dir string, g *kg.Graph, plan *Plan, exclude int) *httptest.Server {
	t.Helper()
	var segs []newslink.ManifestSegment
	for i, sp := range plan.Shards {
		if i != exclude {
			segs = append(segs, sp.Segments...)
		}
	}
	eng, err := newslink.LoadSegments(dir, g, plan.Graph, plan.Config, segs, plan.Checksums)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	ts := httptest.NewServer(server.New(eng).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// assertDegradedMatches asserts one degraded search against the
// live-slot oracle: 200, Degraded, 2/3 shards, identical results.
func assertDegradedMatches(t *testing.T, routerURL, refURL, q string) {
	t.Helper()
	path := "/v1/search?q=" + url.QueryEscape(q) + "&k=10"
	var got, want server.SearchResponse
	getJSON(t, routerURL+path, http.StatusOK, &got)
	getJSON(t, refURL+path, http.StatusOK, &want)
	if !got.Degraded || got.DegradedReason != "shard_unavailable" {
		t.Fatalf("%s: want degraded shard_unavailable, got %+v", path, got)
	}
	if got.ShardsTotal != 3 || got.ShardsOK != 2 {
		t.Fatalf("%s: shards %d/%d, want 2/3", path, got.ShardsOK, got.ShardsTotal)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Fatalf("%s: degraded results diverge from live-slot merge\ncluster: %+v\noracle:  %+v",
			path, got.Results, want.Results)
	}
}

// waitRecovered polls until the router serves full, non-degraded results
// again (the probe loop re-admitted the shard) and then checks identity
// against the full-snapshot oracle.
func waitRecovered(t *testing.T, routerURL, refURL, q string) {
	t.Helper()
	path := "/v1/search?q=" + url.QueryEscape(q) + "&k=10"
	deadline := time.Now().Add(10 * time.Second)
	for {
		var got server.SearchResponse
		getJSON(t, routerURL+path, http.StatusOK, &got)
		if !got.Degraded && got.ShardsOK == 3 {
			var want server.SearchResponse
			getJSON(t, refURL+path, http.StatusOK, &want)
			if !reflect.DeepEqual(got.Results, want.Results) {
				t.Fatalf("%s: post-recovery results diverge\ncluster: %+v\nsingle:  %+v",
					path, got.Results, want.Results)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: still degraded (%d/%d) after 10s", path, got.ShardsOK, got.ShardsTotal)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDegradedOnShardError injects a persistent RPC error into one
// worker: every search must still answer 200 with Degraded=true and
// results identical to merging the two live shards. Disarming the fault
// must lead to automatic re-admission with full results — no router
// restart.
func TestDegradedOnShardError(t *testing.T) {
	dir, g, workers, rt, ts := startCluster(t, Config{})
	ref := liveSlotReference(t, dir, g, rt.Plan(), 1)
	full := referenceServer(t, dir, g)
	q := "clashes near the border"

	partialBefore := rt.mPartial.Value()
	faults.Arm(faults.New().Fail(faults.ClusterShard(workers[1].ID()), errors.New("injected shard error")))
	defer faults.Disarm()

	assertDegradedMatches(t, ts.URL, ref.URL, q)
	assertDegradedMatches(t, ts.URL, ref.URL, "minister parliament vote")
	if got := rt.mPartial.Value(); got <= partialBefore {
		t.Fatalf("partial-results counter did not move: %d", got)
	}

	// Explain for a document on the dead shard degrades to 503; a live
	// shard's document still answers.
	sp := rt.Plan().Shards[1]
	getJSON(t, ts.URL+fmt.Sprintf("/v1/explain?q=x&id=%d", sp.Base), http.StatusServiceUnavailable, nil)
	getJSON(t, ts.URL+"/v1/explain?q=border&id=0", http.StatusOK, nil)

	faults.Disarm()
	waitRecovered(t, ts.URL, full.URL, q)
}

// TestDegradedFilteredMatchesLiveSlots: filters and degradation compose —
// with one shard down, a filtered search re-aggregates the survivors'
// unfiltered statistics and must return exactly what a single process
// over the surviving segments returns for the same filtered request.
func TestDegradedFilteredMatchesLiveSlots(t *testing.T) {
	dir, g, workers, rt, ts := startCluster(t, Config{})
	ref := liveSlotReference(t, dir, g, rt.Plan(), 1)
	_, arts := fixtureCorpus()

	faults.Arm(faults.New().Fail(faults.ClusterShard(workers[1].ID()), errors.New("injected shard error")))
	defer faults.Disarm()

	for _, flt := range []string{
		fmt.Sprintf("&after=%d", arts[12].Time),
		fmt.Sprintf("&after=%d&before=%d", arts[8].Time, arts[40].Time),
	} {
		path := "/v1/search?q=" + url.QueryEscape("clashes near the border") + "&k=10" + flt
		var got, want server.SearchResponse
		getJSON(t, ts.URL+path, http.StatusOK, &got)
		getJSON(t, ref.URL+path, http.StatusOK, &want)
		if !got.Degraded || got.ShardsOK != 2 {
			t.Fatalf("%s: want degraded 2/3, got %+v", path, got)
		}
		if !reflect.DeepEqual(got.Results, want.Results) {
			t.Fatalf("%s: degraded filtered results diverge from live-slot merge\ncluster: %+v\noracle:  %+v",
				path, got.Results, want.Results)
		}
	}
}

// TestDegradedOnShardTimeout delays one worker past the request budget:
// the router must abandon it and still answer degraded within the
// original deadline, not 504.
func TestDegradedOnShardTimeout(t *testing.T) {
	dir, g, workers, rt, ts := startCluster(t, Config{
		RequestTimeout: 800 * time.Millisecond,
		MaxAttempts:    2,
	})
	ref := liveSlotReference(t, dir, g, rt.Plan(), 1)
	q := "ceasefire talks resume"

	faults.Arm(faults.New().Delay(faults.ClusterShard(workers[1].ID()), 2*time.Second))
	defer faults.Disarm()

	assertDegradedMatches(t, ts.URL, ref.URL, q)
}

// TestDegradedOnShardCrashMidStream truncates one worker's response
// mid-body (full Content-Length promised, connection aborted), the
// wire shape of a worker crashing while streaming: the router must see
// a transport error, not a short document, and degrade gracefully.
func TestDegradedOnShardCrashMidStream(t *testing.T) {
	dir, g, workers, rt, ts := startCluster(t, Config{MaxAttempts: 2})
	ref := liveSlotReference(t, dir, g, rt.Plan(), 1)
	q := "markets rally on earnings"

	faults.Arm(faults.New().Mutate(faults.ClusterShardWrite(workers[1].ID()), func(b []byte) []byte {
		return b[:len(b)/2]
	}))
	defer faults.Disarm()

	assertDegradedMatches(t, ts.URL, ref.URL, q)
}

// TestWorkerCrashAndRecovery kills one worker process outright
// (listener closed mid-operation), asserts degraded service, then
// brings a replacement up on the same address with an empty artifact
// directory: the probe loop must re-assign it, the worker must fetch
// its segment files from the router's blob endpoint, and full results
// must return without touching the router.
func TestWorkerCrashAndRecovery(t *testing.T) {
	dir, g := buildSnapshot(t)
	_, endpoints := startWorkers(t, g, 2)

	// Slot 2's worker is hand-managed so it can die and come back on the
	// same address.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	w2 := NewWorker("w2", t.TempDir(), g, testLogger())
	srv := &http.Server{Handler: w2.Handler()}
	go srv.Serve(ln)
	endpoints = append(endpoints, []string{"http://" + addr})

	rt, ts := startRouter(t, dir, g, Config{Endpoints: endpoints, MaxAttempts: 2})
	ref := liveSlotReference(t, dir, g, rt.Plan(), 2)
	full := referenceServer(t, dir, g)
	q := "championship final"

	// Sanity: full service first.
	var pre server.SearchResponse
	getJSON(t, ts.URL+"/v1/search?q="+url.QueryEscape(q), http.StatusOK, &pre)
	if pre.Degraded || pre.ShardsOK != 3 {
		t.Fatalf("cluster not fully live before crash: %+v", pre)
	}

	// Crash: the worker vanishes mid-operation.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	assertDegradedMatches(t, ts.URL, ref.URL, q)

	// Restart on the same address with a fresh, empty directory: the
	// replacement holds no artifacts and must recover them from the
	// router's blob endpoint during re-assignment.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	freshDir := t.TempDir()
	w2b := NewWorker("w2", freshDir, g, testLogger())
	srv2 := &http.Server{Handler: w2b.Handler()}
	go srv2.Serve(ln2)
	t.Cleanup(func() { srv2.Close() })

	waitRecovered(t, ts.URL, full.URL, q)

	// The replacement really was seeded over the wire.
	var info InfoResponse
	getJSON(t, "http://"+addr+"/v1/shard/info", http.StatusOK, &info)
	if len(info.Artifacts) == 0 {
		t.Fatalf("restarted worker advertises no artifacts after recovery")
	}
	if info.Plan != rt.Plan().ID {
		t.Fatalf("restarted worker serves plan %s, want %s", info.Plan, rt.Plan().ID)
	}
}

// TestRetryOnTransientFailure injects a single failure: the router must
// retry within the same request, answer 200 non-degraded, and count the
// retry.
func TestRetryOnTransientFailure(t *testing.T) {
	dir, g, workers, rt, ts := startCluster(t, Config{})
	full := referenceServer(t, dir, g)
	q := "minister parliament vote"

	retriesBefore := rt.mRetries.Value()
	faults.Arm(faults.New().FailN(faults.ClusterShard(workers[0].ID()), 1, errors.New("transient")))
	defer faults.Disarm()

	path := "/v1/search?q=" + url.QueryEscape(q) + "&k=10"
	var got, want server.SearchResponse
	getJSON(t, ts.URL+path, http.StatusOK, &got)
	getJSON(t, full.URL+path, http.StatusOK, &want)
	if got.Degraded || got.ShardsOK != 3 {
		t.Fatalf("transient failure degraded the response: %+v", got)
	}
	if !reflect.DeepEqual(got.Results, want.Results) {
		t.Fatalf("results diverge after retry\ncluster: %+v\nsingle:  %+v", got.Results, want.Results)
	}
	if got := rt.mRetries.Value(); got <= retriesBefore {
		t.Fatalf("retry counter did not move: %d", got)
	}
}

// TestHedgedRequests runs a slot with two replicas, one persistently
// slow: with hedging on, the duplicate request to the fast replica must
// fire and win, keeping responses non-degraded.
func TestHedgedRequests(t *testing.T) {
	dir, g := buildSnapshot(t)
	workers, endpoints := startWorkers(t, g, 4)
	// Fold the fourth worker into slot 0 as a second replica.
	endpoints[0] = append(endpoints[0], endpoints[3][0])
	endpoints = endpoints[:3]
	rt, ts := startRouter(t, dir, g, Config{
		Endpoints: endpoints,
		Hedge:     true,
		HedgeMin:  2 * time.Millisecond,
	})
	full := referenceServer(t, dir, g)

	// Slow down slot 0's first replica only after assignment/admission.
	faults.Arm(faults.New().Delay(faults.ClusterShard(workers[0].ID()), 80*time.Millisecond))
	defer faults.Disarm()

	deadline := time.Now().Add(10 * time.Second)
	for rt.mHedges.Value() == 0 {
		path := "/v1/search?q=" + url.QueryEscape("clashes near the border") + "&k=10"
		var got, want server.SearchResponse
		getJSON(t, ts.URL+path, http.StatusOK, &got)
		getJSON(t, full.URL+path, http.StatusOK, &want)
		if got.Degraded {
			t.Fatalf("hedged request degraded: %+v", got)
		}
		if !reflect.DeepEqual(got.Results, want.Results) {
			t.Fatalf("hedged results diverge\ncluster: %+v\nsingle:  %+v", got.Results, want.Results)
		}
		if time.Now().After(deadline) {
			t.Fatal("no hedge fired within 10s against a persistently slow replica")
		}
	}
}

// TestAllShardsDown is the one legitimate failure: with every shard
// unreachable the router answers 503 shard_unavailable, never a 500.
func TestAllShardsDown(t *testing.T) {
	_, _, workers, _, ts := startCluster(t, Config{MaxAttempts: 1})
	inj := faults.New()
	for _, w := range workers {
		inj.Fail(faults.ClusterShard(w.ID()), errors.New("down"))
	}
	faults.Arm(inj)
	defer faults.Disarm()

	resp, err := http.Get(ts.URL + "/v1/search?q=border")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	var env server.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "shard_unavailable" {
		t.Fatalf("error code %q, want shard_unavailable", env.Error.Code)
	}
}
