package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"newslink"
	"newslink/internal/faults"
	"newslink/internal/index"
	"newslink/internal/kg"
	"newslink/internal/search"
	"newslink/internal/server"
)

// shardedMinDocs mirrors the engine's own threshold for fanning a
// traversal across cores (newslink.shardedSearchMinDocs).
const shardedMinDocs = 4096

// Worker serves one shard of a partitioned snapshot: it holds the slice
// of segments a router assigned to it, answers stats/search/docs/explain
// RPCs over that slice, and serves its content-addressed artifacts to
// peers. A worker is stateless across assignments — the plan ID names
// the state, and a new assignment atomically replaces the engine.
type Worker struct {
	id     string
	dir    string
	g      *kg.Graph
	log    *slog.Logger
	client *http.Client

	mu     sync.Mutex
	plan   string
	base   int
	engine *newslink.Engine
	ack    AssignResponse // memoized assignment acknowledgment
}

// NewWorker returns a worker with identity id, storing and serving
// artifacts under dir, over the knowledge graph g (which must match the
// snapshot's fingerprint at assignment time).
func NewWorker(id, dir string, g *kg.Graph, log *slog.Logger) *Worker {
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return &Worker{
		id:     id,
		dir:    dir,
		g:      g,
		log:    log,
		client: &http.Client{Timeout: 2 * time.Minute},
	}
}

// ID returns the worker's identity (the fault-point key of its handlers).
func (w *Worker) ID() string { return w.id }

// Handler returns the worker's HTTP surface: the shard RPC under
// /v1/shard/, plus health, readiness and metrics probes.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/shard/info", w.handleInfo)
	mux.HandleFunc("POST /v1/shard/assign", w.handleAssign)
	mux.HandleFunc("POST /v1/shard/stats", w.handleStats)
	mux.HandleFunc("POST /v1/shard/search", w.handleSearch)
	mux.HandleFunc("POST /v1/shard/docs", w.handleDocs)
	mux.HandleFunc("POST /v1/shard/explain", w.handleExplain)
	mux.HandleFunc("GET /v1/shard/blob/{name}", blobHandler(w.dir))
	mux.HandleFunc("GET /v1/healthz", func(rw http.ResponseWriter, _ *http.Request) {
		server.WriteJSON(rw, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/readyz", w.handleReady)
	mux.HandleFunc("GET /v1/metrics", w.handleMetrics)
	return mux
}

// gate fires the worker's fault point at the top of every RPC handler.
// An injected error answers 500 (a failing shard); an injected delay
// simply sleeps inside Fire, modelling a slow one.
func (w *Worker) gate(rw http.ResponseWriter) bool {
	if err := faults.Fire(faults.ClusterShard(w.id)); err != nil {
		server.WriteError(rw, http.StatusInternalServerError, "fault_injected", "%v", err)
		return false
	}
	return true
}

// writeRPC marshals and writes one RPC response, routing the bytes
// through the worker's response-write fault point first. A mutation rule
// that truncates the payload models a worker crashing mid-response: the
// full Content-Length is promised, a prefix is written, and the
// connection is aborted — the router sees a transport error, never a
// silently short document.
func (w *Worker) writeRPC(rw http.ResponseWriter, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		server.WriteError(rw, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	mutated, ferr := faults.FireData(faults.ClusterShardWrite(w.id), data)
	if ferr != nil {
		server.WriteError(rw, http.StatusInternalServerError, "fault_injected", "%v", ferr)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	if len(mutated) < len(data) {
		rw.Header().Set("Content-Length", strconv.Itoa(len(data)))
		rw.WriteHeader(http.StatusOK)
		_, _ = rw.Write(mutated)
		panic(http.ErrAbortHandler)
	}
	rw.WriteHeader(http.StatusOK)
	_, _ = rw.Write(mutated)
}

// snapshotState returns the worker's current engine, plan and base.
func (w *Worker) snapshotState() (*newslink.Engine, string, int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.engine, w.plan, w.base
}

// requirePlan answers plan-mismatch (409) or unassigned (503) states;
// the router reacts by re-assigning rather than retrying blindly.
func (w *Worker) requirePlan(rw http.ResponseWriter, plan string) (*newslink.Engine, bool) {
	e, cur, _ := w.snapshotState()
	if e == nil {
		server.WriteError(rw, http.StatusServiceUnavailable, "unassigned", "worker %s has no assignment", w.id)
		return nil, false
	}
	if cur != plan {
		server.WriteError(rw, http.StatusConflict, "plan_mismatch", "worker %s serves plan %s, not %s", w.id, cur, plan)
		return nil, false
	}
	return e, true
}

func (w *Worker) handleInfo(rw http.ResponseWriter, _ *http.Request) {
	if !w.gate(rw) {
		return
	}
	w.mu.Lock()
	info := InfoResponse{ID: w.id, Plan: w.plan, Base: w.base, ShardStats: w.ack.ShardStats}
	w.mu.Unlock()
	if entries, err := os.ReadDir(w.dir); err == nil {
		for _, ent := range entries {
			if validArtifactName(ent.Name()) {
				info.Artifacts = append(info.Artifacts, ent.Name())
			}
		}
		sort.Strings(info.Artifacts)
	}
	w.writeRPC(rw, &info)
}

func (w *Worker) handleReady(rw http.ResponseWriter, _ *http.Request) {
	if e, _, _ := w.snapshotState(); e == nil {
		server.WriteJSON(rw, http.StatusServiceUnavailable, map[string]string{"status": "unassigned"})
		return
	}
	server.WriteJSON(rw, http.StatusOK, map[string]string{"status": "ready"})
}

func (w *Worker) handleMetrics(rw http.ResponseWriter, _ *http.Request) {
	e, _, _ := w.snapshotState()
	if e == nil {
		server.WriteJSON(rw, http.StatusOK, map[string]string{})
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(http.StatusOK)
	_ = e.Metrics().WriteJSON(rw)
}

func (w *Worker) handleAssign(rw http.ResponseWriter, r *http.Request) {
	if !w.gate(rw) {
		return
	}
	var req AssignRequest
	if err := decodeBody(r.Body, &req); err != nil {
		server.WriteError(rw, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	w.mu.Lock()
	if w.engine != nil && w.plan == req.Plan {
		// Idempotent re-assignment of the current plan: acknowledge the
		// memoized stats without reloading anything.
		ack := w.ack
		w.mu.Unlock()
		w.writeRPC(rw, &ack)
		return
	}
	w.mu.Unlock()
	fetched, err := w.ensureArtifacts(r.Context(), &req)
	if err != nil {
		server.WriteError(rw, http.StatusBadGateway, "fetch_failed", "%v", err)
		return
	}
	engine, err := newslink.LoadSegments(w.dir, w.g, req.Graph, req.Config, req.Segments, req.Checksums)
	if err != nil {
		server.WriteError(rw, http.StatusInternalServerError, "load_failed", "%v", err)
		return
	}
	text, node, err := engine.Sources()
	if err != nil {
		_ = engine.Close()
		server.WriteError(rw, http.StatusInternalServerError, "load_failed", "%v", err)
		return
	}
	ack := AssignResponse{
		Plan:    req.Plan,
		Fetched: fetched,
		ShardStats: ShardStats{
			NumDocs:      text.NumDocs(),
			LiveDocs:     engine.NumDocs(),
			TextTotalLen: totalDocLen(text),
			NodeTotalLen: totalDocLen(node),
		},
	}
	w.mu.Lock()
	old := w.engine
	w.engine = engine
	w.plan = req.Plan
	w.base = req.Base
	w.ack = ack
	w.mu.Unlock()
	if old != nil {
		_ = old.Close()
	}
	w.log.Info("assignment installed", "worker", w.id, "plan", req.Plan,
		"base", req.Base, "segments", len(req.Segments), "fetched", fetched)
	w.writeRPC(rw, &ack)
}

// totalDocLen folds per-document lengths into an exact total. Lengths
// are integer-valued float64s, so the sum is exact below 2^53 and the
// router's aggregate average equals the merged index's AvgDocLen.
func totalDocLen(src index.Source) float64 {
	total := 0.0
	for d := 0; d < src.NumDocs(); d++ {
		total += src.DocLen(index.DocID(d))
	}
	return total
}

// ensureArtifacts makes every assigned artifact file present and
// checksum-verified in the worker's directory, fetching missing or
// mismatched ones from the assignment's peer. Returns how many files
// were fetched.
func (w *Worker) ensureArtifacts(ctx context.Context, req *AssignRequest) (int, error) {
	fetched := 0
	for _, sm := range req.Segments {
		for _, name := range newslink.SegmentFileNames(sm.ID) {
			want, ok := req.Checksums[name]
			if !ok {
				return fetched, fmt.Errorf("assignment has no checksum for %s", name)
			}
			path := filepath.Join(w.dir, name)
			if got, err := newslink.ChecksumFile(path); err == nil && got == want {
				continue
			}
			if req.FetchFrom == "" {
				return fetched, fmt.Errorf("missing artifact %s and no fetch peer", name)
			}
			if err := w.fetchArtifact(ctx, req.FetchFrom, name, want); err != nil {
				return fetched, err
			}
			fetched++
		}
	}
	return fetched, nil
}

// fetchArtifact downloads one content-addressed artifact from a peer's
// blob endpoint, verifies its checksum, and installs it atomically.
func (w *Worker) fetchArtifact(ctx context.Context, peer, name, want string) error {
	url := peer + "/v1/shard/blob/" + name
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return fmt.Errorf("fetching %s: %w", name, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetching %s: peer answered %d", name, resp.StatusCode)
	}
	tmp, err := os.CreateTemp(w.dir, ".fetch-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := io.Copy(tmp, resp.Body); err != nil {
		tmp.Close()
		return fmt.Errorf("fetching %s: %w", name, err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	got, err := newslink.ChecksumFile(tmp.Name())
	if err != nil {
		return err
	}
	if got != want {
		return fmt.Errorf("fetched %s has checksum %s, want %s", name, got, want)
	}
	return os.Rename(tmp.Name(), filepath.Join(w.dir, name))
}

func (w *Worker) handleStats(rw http.ResponseWriter, r *http.Request) {
	if !w.gate(rw) {
		return
	}
	var req StatsRequest
	if err := decodeBody(r.Body, &req); err != nil {
		server.WriteError(rw, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	engine, ok := w.requirePlan(rw, req.Plan)
	if !ok {
		return
	}
	text, node, err := engine.Sources()
	if err != nil {
		server.WriteError(rw, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	w.writeRPC(rw, &StatsResponse{
		Plan: req.Plan,
		Text: search.TermSummaries(text, req.Text),
		Node: search.TermSummaries(node, req.Node),
	})
}

func (w *Worker) handleSearch(rw http.ResponseWriter, r *http.Request) {
	if !w.gate(rw) {
		return
	}
	var req SearchRequest
	if err := decodeBody(r.Body, &req); err != nil {
		server.WriteError(rw, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	engine, ok := w.requirePlan(rw, req.Plan)
	if !ok {
		return
	}
	// Filter clauses mask documents from the local traversal through the
	// same live seam as tombstones; statistics and scorer parameters stay
	// the router's unfiltered aggregates, so the filtered shard ranking
	// composes into exactly a single process's filtered ranking.
	text, node, err := engine.FilteredSources(req.After, req.Before, req.Entities)
	if err != nil {
		server.WriteError(rw, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	resp := SearchResponse{Plan: req.Plan}
	var wg sync.WaitGroup
	var textErr, nodeErr error
	if len(req.Text) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp.Text, textErr = orderedTopK(r.Context(), text, req.TextScorer, req.Text, req.K)
		}()
	}
	if len(req.Node) > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp.Node, nodeErr = orderedTopK(r.Context(), node, req.NodeScorer, req.Node, req.K)
		}()
	}
	wg.Wait()
	if err := errors.Join(textErr, nodeErr); err != nil {
		server.WriteError(rw, http.StatusInternalServerError, "internal", "%v", err)
		return
	}
	w.writeRPC(rw, &resp)
}

// orderedTopK runs the globally ordered block-max evaluation over one
// local index, fanning out across cores on large slices exactly like the
// engine's own traversal.
func orderedTopK(ctx context.Context, idx index.Source, params ScorerParams, terms []search.OrderedTerm, k int) ([]WireHit, error) {
	shards := 1
	if workers := runtime.GOMAXPROCS(0); workers > 1 && idx.NumDocs() >= shardedMinDocs {
		shards = workers
	}
	hits, _, err := search.TopKBlockMaxOrderedStats(ctx, idx, params.scorer(), terms, k, shards)
	if err != nil {
		return nil, err
	}
	out := make([]WireHit, len(hits))
	for i, h := range hits {
		out[i] = WireHit{Pos: int(h.Doc), Score: h.Score}
	}
	return out, nil
}

func (w *Worker) handleDocs(rw http.ResponseWriter, r *http.Request) {
	if !w.gate(rw) {
		return
	}
	var req DocsRequest
	if err := decodeBody(r.Body, &req); err != nil {
		server.WriteError(rw, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	engine, ok := w.requirePlan(rw, req.Plan)
	if !ok {
		return
	}
	resp := DocsResponse{Plan: req.Plan, Docs: make([]WireDoc, len(req.Positions))}
	for i, pos := range req.Positions {
		doc, err := engine.DocAt(pos)
		if err != nil {
			server.WriteError(rw, http.StatusNotFound, "unknown_document", "%v", err)
			return
		}
		resp.Docs[i] = WireDoc{ID: doc.ID, Title: doc.Title, Snippet: newslink.Snippet(doc.Text, req.Terms)}
	}
	w.writeRPC(rw, &resp)
}

func (w *Worker) handleExplain(rw http.ResponseWriter, r *http.Request) {
	if !w.gate(rw) {
		return
	}
	var req ExplainRequest
	if err := decodeBody(r.Body, &req); err != nil {
		server.WriteError(rw, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	engine, ok := w.requirePlan(rw, req.Plan)
	if !ok {
		return
	}
	if req.After != 0 || req.Before != 0 || len(req.Entities) > 0 {
		visible, err := engine.DocVisible(req.DocID, req.After, req.Before, req.Entities)
		if err != nil {
			server.WriteError(rw, http.StatusInternalServerError, "internal", "%v", err)
			return
		}
		if !visible {
			server.WriteError(rw, http.StatusNotFound, "unknown_document",
				"%v: %d (filtered)", newslink.ErrUnknownDoc, req.DocID)
			return
		}
	}
	exp, err := engine.ExplainContext(r.Context(), req.Query, req.DocID, req.MaxPaths)
	if err != nil {
		status, code := http.StatusInternalServerError, "internal"
		if errors.Is(err, newslink.ErrUnknownDoc) {
			status, code = http.StatusNotFound, "unknown_document"
		}
		server.WriteError(rw, status, code, "%v", err)
		return
	}
	w.writeRPC(rw, &ExplainResponse{Plan: req.Plan, Explanation: exp})
}

// blobHandler serves content-addressed artifact files from dir. Names
// are validated against the exact artifact grammar, so the handler can
// never be steered outside its directory.
func blobHandler(dir string) http.HandlerFunc {
	return func(rw http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		if !validArtifactName(name) {
			server.WriteError(rw, http.StatusBadRequest, "bad_request", "invalid artifact name")
			return
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			server.WriteError(rw, http.StatusNotFound, "not_found", "artifact %s not held here", name)
			return
		}
		defer f.Close()
		rw.Header().Set("Content-Type", "application/octet-stream")
		rw.WriteHeader(http.StatusOK)
		_, _ = io.Copy(rw, f)
	}
}
