package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"time"

	"newslink/internal/server"
)

// rpcStatusError is a non-2xx worker reply, carrying the uniform error
// envelope's code for classification (plan_mismatch, unassigned, ...).
type rpcStatusError struct {
	Status  int
	Code    string
	Message string
}

func (e *rpcStatusError) Error() string {
	return fmt.Sprintf("shard answered %d (%s): %s", e.Status, e.Code, e.Message)
}

// retryable reports whether an attempt failure may be retried on a
// replica: transport errors, timeouts, truncated/corrupt responses and
// 5xx replies are transient; 4xx replies are ours to fix, and 503
// (unassigned) or 409 (plan_mismatch) need the probe loop's
// re-assignment, not another identical request.
func retryable(err error) bool {
	var se *rpcStatusError
	if errors.As(err, &se) {
		return se.Status >= 500 && se.Status != http.StatusServiceUnavailable
	}
	return true
}

// doRequest performs one HTTP exchange and returns the raw response
// body. A nil payload sends GET, otherwise POST. Reading the full body
// here is what turns a worker crash mid-response (short write against a
// promised Content-Length) into an unexpected-EOF attempt failure.
func doRequest(ctx context.Context, client *http.Client, url string, payload []byte) ([]byte, error) {
	method, body := http.MethodGet, io.Reader(nil)
	if payload != nil {
		method, body = http.MethodPost, bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxRPCBody+1))
	if err != nil {
		return nil, fmt.Errorf("reading shard response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		se := &rpcStatusError{Status: resp.StatusCode}
		var env server.ErrorResponse
		if json.Unmarshal(data, &env) == nil {
			se.Code, se.Message = env.Error.Code, env.Error.Message
		}
		return nil, se
	}
	return data, nil
}

// attempt performs one request against one endpoint, recording latency,
// the per-shard outcome counter, and the endpoint's breaker state.
func (rt *Router) attempt(ctx context.Context, sl *slot, ep *endpoint, path string, payload []byte) ([]byte, error) {
	t0 := time.Now()
	data, err := doRequest(ctx, rt.client, ep.url+path, payload)
	sl.lat.Observe(time.Since(t0).Seconds())
	switch {
	case err == nil:
		ep.ok()
		sl.reqs["ok"].Inc()
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(ctx.Err(), context.DeadlineExceeded):
		sl.reqs["timeout"].Inc()
		rt.noteFailure(sl, ep, err)
	default:
		sl.reqs["error"].Inc()
		rt.noteFailure(sl, ep, err)
	}
	return data, err
}

// noteFailure feeds the endpoint's circuit breaker; crossing the
// consecutive-failure threshold ejects the endpoint until the probe loop
// re-admits it.
func (rt *Router) noteFailure(sl *slot, ep *endpoint, err error) {
	if ep.fail(rt.cfg.BreakerThreshold) {
		rt.log.Warn("ejecting shard endpoint", "slot", sl.idx, "endpoint", ep.url, "err", err)
	}
}

// hedgeDelay is the latency past which a second replica is tried: the
// slot's observed p99, floored by the configured minimum.
func (rt *Router) hedgeDelay(sl *slot) time.Duration {
	d := time.Duration(sl.lat.Quantile(0.99) * float64(time.Second))
	if d < rt.cfg.HedgeMin {
		d = rt.cfg.HedgeMin
	}
	return d
}

// attemptHedged runs one logical attempt: a request to the chosen
// endpoint, plus — when hedging is on and the slot has a second live
// replica — a duplicate to the next replica once the primary has been
// quiet past the hedge delay. The first success wins and cancels the
// loser; requests are idempotent reads, so duplicates are harmless.
func (rt *Router) attemptHedged(ctx context.Context, sl *slot, eps []*endpoint, idx int, path string, payload []byte) ([]byte, error) {
	if !rt.cfg.Hedge || len(eps) < 2 {
		return rt.attempt(ctx, sl, eps[idx], path, payload)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		data []byte
		err  error
	}
	ch := make(chan result, 2)
	launch := func(ep *endpoint) {
		go func() {
			data, err := rt.attempt(ctx, sl, ep, path, payload)
			ch <- result{data, err}
		}()
	}
	launch(eps[idx])
	timer := time.NewTimer(rt.hedgeDelay(sl))
	defer timer.Stop()
	timerC := timer.C
	pending := 1
	var lastErr error
	for {
		select {
		case r := <-ch:
			pending--
			if r.err == nil {
				return r.data, nil
			}
			lastErr = r.err
			if pending == 0 {
				return nil, lastErr
			}
		case <-timerC:
			timerC = nil
			rt.mHedges.Inc()
			launch(eps[(idx+1)%len(eps)])
			pending++
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// callSlot performs one idempotent RPC against a slot with the full
// robustness stack: live-replica rotation, per-attempt deadlines carved
// from the remaining request budget, bounded retries with jittered
// exponential backoff, hedging, and strict response decoding (a decoded
// reply for the wrong plan is a failure, not a result).
func (rt *Router) callSlot(ctx context.Context, sl *slot, path string, reqBody any, out Validator) error {
	var payload []byte
	if reqBody != nil {
		var err error
		if payload, err = json.Marshal(reqBody); err != nil {
			return err
		}
	}
	attempts := rt.cfg.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	deadline, hasDeadline := ctx.Deadline()
	start := int(sl.next.Add(1) - 1)
	var lastErr error
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		eps := sl.live()
		if len(eps) == 0 {
			return errJoin(errNoLiveEndpoints, lastErr)
		}
		idx := (start + a) % len(eps)
		actx, cancel := ctx, context.CancelFunc(func() {})
		if hasDeadline {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				return errJoin(context.DeadlineExceeded, lastErr)
			}
			// The +1 reserves one share of the budget beyond the remaining
			// attempts: even if every attempt times out, the request keeps
			// enough headroom to re-aggregate over the surviving shards and
			// answer degraded instead of timing out outright.
			actx, cancel = context.WithTimeout(ctx, remaining/time.Duration(attempts-a+1))
		}
		data, err := rt.attemptHedged(actx, sl, eps, idx, path, payload)
		cancel()
		if err == nil {
			if err = DecodeRPC(data, out); err == nil {
				return nil
			}
			// A decodable-but-invalid body is as broken as a transport
			// error: count it against the endpoint and retry elsewhere.
			rt.noteFailure(sl, eps[idx], err)
		}
		lastErr = err
		if !retryable(err) {
			return err
		}
		if a < attempts-1 {
			rt.mRetries.Inc()
			if err := backoffSleep(ctx, rt.cfg.RetryBase, a); err != nil {
				return errJoin(err, lastErr)
			}
		}
	}
	return lastErr
}

// errNoLiveEndpoints marks a slot with every replica ejected; the
// scatter loop degrades around it.
var errNoLiveEndpoints = errors.New("cluster: no live endpoints for shard")

// errJoin keeps the primary error first and drops a nil secondary.
func errJoin(primary, secondary error) error {
	if secondary == nil {
		return primary
	}
	return errors.Join(primary, secondary)
}

// backoffSleep waits base·2^attempt scaled by a uniform [0.5,1.5)
// jitter, returning early if the context ends. Jitter decorrelates
// retry storms: a burst of failures does not re-converge on the
// recovering worker in lockstep.
func backoffSleep(ctx context.Context, base time.Duration, attempt int) error {
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	d := base << uint(attempt)
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
