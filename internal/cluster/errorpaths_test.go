package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"newslink/internal/server"
)

// postForCode posts a JSON body to a worker RPC endpoint and asserts the
// status and error-envelope code of the reply.
func postForCode(t *testing.T, url, body string, wantStatus int, wantCode string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s: status %d, want %d\nbody: %s", url, resp.StatusCode, wantStatus, raw)
	}
	var env server.ErrorResponse
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatalf("POST %s: decoding envelope: %v\nbody: %s", url, err, raw)
	}
	if env.Error.Code != wantCode {
		t.Fatalf("POST %s: error code %q, want %q", url, env.Error.Code, wantCode)
	}
}

func mustMarshal(t *testing.T, v any) string {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestWorkerUnassignedErrorPaths pins the RPC error contract of a
// worker that has no assignment yet: malformed bodies are 400s with a
// typed code, well-formed requests are 503 unassigned (the router's
// signal to re-assign), and the read-only endpoints stay serviceable.
func TestWorkerUnassignedErrorPaths(t *testing.T) {
	_, g := buildSnapshot(t)
	_, endpoints := startWorkers(t, g, 1)
	base := endpoints[0][0]

	// Decode errors on every RPC: each handler rejects junk with 400.
	for _, ep := range []string{"assign", "stats", "search", "docs", "explain"} {
		postForCode(t, base+"/v1/shard/"+ep, "{junk", http.StatusBadRequest, "bad_request")
	}

	// Valid messages against an unassigned worker: 503 unassigned.
	postForCode(t, base+"/v1/shard/stats", mustMarshal(t, &StatsRequest{Plan: "p"}),
		http.StatusServiceUnavailable, "unassigned")
	postForCode(t, base+"/v1/shard/search", mustMarshal(t, &SearchRequest{Plan: "p", K: 5}),
		http.StatusServiceUnavailable, "unassigned")
	postForCode(t, base+"/v1/shard/docs", mustMarshal(t, &DocsRequest{Plan: "p", Positions: []int{0}}),
		http.StatusServiceUnavailable, "unassigned")
	postForCode(t, base+"/v1/shard/explain", mustMarshal(t, &ExplainRequest{Plan: "p", Query: "q"}),
		http.StatusServiceUnavailable, "unassigned")

	// readyz says not ready; healthz and metrics answer regardless.
	getJSON(t, base+"/v1/readyz", http.StatusServiceUnavailable, nil)
	getJSON(t, base+"/v1/healthz", http.StatusOK, nil)
	var metrics map[string]any
	getJSON(t, base+"/v1/metrics", http.StatusOK, &metrics)
	if len(metrics) != 0 {
		t.Fatalf("unassigned worker reported metrics %v, want none", metrics)
	}

	// Blob endpoint: names outside the artifact grammar are rejected
	// before touching the filesystem; well-formed but absent names 404.
	getJSON(t, base+"/v1/shard/blob/manifest.json", http.StatusBadRequest, nil)
	getJSON(t, base+"/v1/shard/blob/seg-0123456789abcdef.text.idx", http.StatusNotFound, nil)
}

// TestWorkerAssignedErrorPaths exercises the post-assignment error
// contract: plan mismatches are 409 (re-assign, don't retry), unknown
// documents are 404, and the metrics endpoint reflects the live engine.
func TestWorkerAssignedErrorPaths(t *testing.T) {
	dir, g := buildSnapshot(t)
	_, endpoints := startWorkers(t, g, 3)
	rt, _ := startRouter(t, dir, g, Config{Endpoints: endpoints})
	plan := rt.Plan().ID
	base := endpoints[0][0]

	postForCode(t, base+"/v1/shard/stats", mustMarshal(t, &StatsRequest{Plan: "bogus"}),
		http.StatusConflict, "plan_mismatch")
	postForCode(t, base+"/v1/shard/docs",
		mustMarshal(t, &DocsRequest{Plan: plan, Positions: []int{999999}}),
		http.StatusNotFound, "unknown_document")
	postForCode(t, base+"/v1/shard/explain",
		mustMarshal(t, &ExplainRequest{Plan: plan, Query: "border", DocID: 999999, MaxPaths: 2}),
		http.StatusNotFound, "unknown_document")

	getJSON(t, base+"/v1/readyz", http.StatusOK, nil)
	var metrics map[string]any
	getJSON(t, base+"/v1/metrics", http.StatusOK, &metrics)
	if len(metrics) == 0 {
		t.Fatal("assigned worker reported no metrics")
	}
}

// TestRouterParamValidation pins the public-facing 400s: they must fire
// before any shard RPC, with the same envelope the single-process server
// uses.
func TestRouterParamValidation(t *testing.T) {
	_, _, _, rt, ts := startCluster(t, Config{})

	for _, bad := range []string{
		"/v1/search",
		"/v1/search?q=x&k=0",
		"/v1/search?q=x&k=abc",
		"/v1/search?q=x&k=5000",
		"/v1/search?q=x&pool=-1",
		"/v1/search?q=x&pool=abc",
		"/v1/search?q=x&beta=2",
		"/v1/search?q=x&beta=abc",
		"/v1/explain",
		"/v1/explain?q=x",
		"/v1/explain?q=x&id=abc",
		"/v1/explain?q=x&id=0&paths=5000",
	} {
		getJSON(t, ts.URL+bad, http.StatusBadRequest, nil)
	}
	// A document id outside the plan (or tombstoned) is 404 without any
	// shard round-trip.
	getJSON(t, ts.URL+"/v1/explain?q=x&id=999999", http.StatusNotFound, nil)

	var metrics map[string]any
	getJSON(t, ts.URL+"/v1/metrics", http.StatusOK, &metrics)
	if len(metrics) == 0 {
		t.Fatal("router reported no metrics")
	}

	// The router's blob endpoint serves every plan artifact by its
	// content-addressed name and rejects everything else.
	var served bool
	for name := range rt.Plan().Checksums {
		getJSON(t, ts.URL+"/v1/shard/blob/"+name, http.StatusOK, nil)
		served = true
		break
	}
	if !served {
		t.Fatal("plan has no checksummed artifacts")
	}
	getJSON(t, ts.URL+"/v1/shard/blob/..%2Fmanifest.json", http.StatusBadRequest, nil)
}

// TestRouterDeadlineExceeded pins the 504 mapping: a request budget too
// small for even one scatter pass surfaces as deadline_exceeded, not as
// a 500 or a degraded 200.
func TestRouterDeadlineExceeded(t *testing.T) {
	_, _, _, _, ts := startCluster(t, Config{RequestTimeout: time.Nanosecond})

	resp, err := http.Get(ts.URL + "/v1/search?q=border")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504\nbody: %s", resp.StatusCode, raw)
	}
	var env server.ErrorResponse
	if err := json.Unmarshal(raw, &env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "deadline_exceeded" {
		t.Fatalf("error code %q, want deadline_exceeded", env.Error.Code)
	}
}

// TestNewWorkerDefaultLogger covers the nil-logger construction path
// used when the worker is embedded without explicit logging.
func TestNewWorkerDefaultLogger(t *testing.T) {
	_, g := buildSnapshot(t)
	w := NewWorker("solo", t.TempDir(), g, nil)
	if w.ID() != "solo" {
		t.Fatalf("worker id %q, want solo", w.ID())
	}
}
