package cluster

import (
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"io"

	"newslink"
	"newslink/internal/index"
)

// Plan is one immutable partitioning of a snapshot's segment set across
// shard slots. Segments stay in snapshot order and each slot takes a
// contiguous run, so a slot's documents occupy the contiguous global
// position range [Base, Base+Docs) — exactly the positions they hold in
// a single-process engine over the full snapshot. That alignment is what
// lets the router rebase worker-local hit positions by addition and
// merge them with the in-process sharded-merge comparator.
type Plan struct {
	// ID identifies the plan: a digest of the config, graph fingerprint
	// and per-slot segment assignment. Every RPC carries it; workers
	// reject requests for a plan they do not serve.
	ID        string
	Config    newslink.Config
	Graph     newslink.GraphFingerprint
	Checksums map[string]string
	Shards    []ShardPlan

	// docShard maps live public document IDs to their owning slot, for
	// explain routing. Tombstoned documents are absent, matching the
	// engine's own lookup (404 for deleted docs).
	docShard map[int]int
}

// ShardPlan is one slot's slice of the snapshot.
type ShardPlan struct {
	Base     int // global position of the slot's first document
	Docs     int // documents including tombstoned ones
	Live     int // documents excluding tombstoned ones
	Segments []newslink.ManifestSegment
}

// BuildPlan partitions the manifest's segments into at most shards
// contiguous, document-balanced slots. Fewer segments than shards yields
// fewer slots — a slot always holds at least one segment.
func BuildPlan(m *newslink.Manifest, shards int) (*Plan, error) {
	if shards < 1 {
		return nil, fmt.Errorf("cluster: shard count %d < 1", shards)
	}
	if len(m.Segments) == 0 {
		return nil, fmt.Errorf("cluster: snapshot has no segments")
	}
	n := min(shards, len(m.Segments))
	total := 0
	for _, sm := range m.Segments {
		total += len(sm.Docs)
	}
	p := &Plan{
		Config:    m.Config,
		Graph:     m.Graph,
		Checksums: m.Checksums,
		Shards:    make([]ShardPlan, n),
		docShard:  make(map[int]int),
	}
	cum, w := 0, 0
	for i, sm := range m.Segments {
		segsLeft := len(m.Segments) - i
		slotsLeft := n - w - 1
		if w < n-1 && len(p.Shards[w].Segments) > 0 &&
			(segsLeft == slotsLeft || cum >= (w+1)*total/n) {
			w++
		}
		sp := &p.Shards[w]
		if len(sp.Segments) == 0 {
			sp.Base = cum
		}
		dead, err := deadBitmap(sm)
		if err != nil {
			return nil, err
		}
		for j, d := range sm.Docs {
			if dead == nil || !dead.Get(j) {
				p.docShard[d.ID] = w
				sp.Live++
			}
		}
		sp.Segments = append(sp.Segments, sm)
		sp.Docs += len(sm.Docs)
		cum += len(sm.Docs)
	}
	h := sha256.New()
	fmt.Fprintf(h, "%+v|%+v|%d", m.Config, m.Graph, n)
	for _, sp := range p.Shards {
		fmt.Fprintf(h, "|%d", sp.Base)
		for _, sm := range sp.Segments {
			io.WriteString(h, ":"+sm.ID)
		}
	}
	p.ID = hex.EncodeToString(h.Sum(nil))[:16]
	return p, nil
}

// deadBitmap decodes a manifest segment's tombstone bitmap (nil when the
// segment has none).
func deadBitmap(sm newslink.ManifestSegment) (*index.Bitmap, error) {
	if sm.Dead == "" {
		return nil, nil
	}
	raw, err := base64.StdEncoding.DecodeString(sm.Dead)
	if err != nil {
		return nil, fmt.Errorf("cluster: tombstones of segment %s: %v", sm.ID, err)
	}
	b, err := index.DecodeBitmap(raw)
	if err != nil {
		return nil, fmt.Errorf("cluster: tombstones of segment %s: %v", sm.ID, err)
	}
	return b, nil
}

// ShardOf returns the slot holding the live document with the given
// public ID, or false for unknown/tombstoned IDs.
func (p *Plan) ShardOf(docID int) (int, bool) {
	w, ok := p.docShard[docID]
	return w, ok
}

// slotOfPos returns the slot whose global position range covers pos.
func (p *Plan) slotOfPos(pos int) int {
	for i := len(p.Shards) - 1; i >= 0; i-- {
		if pos >= p.Shards[i].Base {
			return i
		}
	}
	return 0
}
