// Package faults is the deterministic fault-injection layer of the
// NewsLink resilience tests. Production code calls Fire (or FireCtx) at a
// handful of named injection points; when no injector is armed — the
// steady state of every production process — a fire is one atomic pointer
// load returning nil, the same nil-cost no-op discipline as a disabled
// obs.Trace. Tests arm an Injector carrying per-point rules (an error to
// return, a latency to add, a value to panic with, an optional shot
// count) and drive the code under test through the exact failure they
// want to prove survivable:
//
//	inj := faults.New().Fail(faults.BONStage, errInjected)
//	faults.Arm(inj)
//	defer faults.Disarm()
//	// ... the fused search path now sees a failing BON retrieval ...
//	if inj.Hits(faults.BONStage) == 0 { t.Fatal("site not reached") }
//
// The armed injector is process-global, so tests that arm one must not
// run in parallel with each other (they may run in parallel with
// non-injecting tests: a point without a rule only counts the hit).
package faults

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one injection site in the production code.
type Point string

// The injection points wired into the engine, the persistence layer and
// the HTTP server.
const (
	// BONStage fires at the start of the BON (subgraph) retrieval stage of
	// a search. An error rule simulates a failing graph-side index; a delay
	// rule simulates a slow one.
	BONStage Point = "engine.bon-retrieve"
	// SaveWrite fires before each snapshot artifact is written.
	SaveWrite Point = "persist.write"
	// SaveRename fires before the atomic rename that installs a finished
	// snapshot.
	SaveRename Point = "persist.rename"
	// Handler fires inside the HTTP middleware, before the route handler
	// runs. A panic rule simulates a crashing handler.
	Handler Point = "http.handler"
	// WALAppend fires with the framed record bytes before each WAL append.
	// A mutate rule simulates a torn write (truncate the record) or a bit
	// flip on the way to disk; an error rule simulates a failing write.
	WALAppend Point = "wal.append"
	// WALSync fires before each WAL fsync. An error rule simulates a disk
	// that stops accepting syncs; a delay rule simulates a slow one.
	WALSync Point = "wal.sync"
	// IngestApply fires before an ingest micro-batch is applied to the
	// engine, after its records are durable in the WAL. An error or panic
	// rule simulates a crash in the acknowledged-but-unapplied window.
	IngestApply Point = "engine.ingest-apply"
)

// ClusterShard returns the injection point fired by shard worker id at
// the top of every RPC handler. Worker ids are dynamic (assigned by the
// test or the deployment), so these points are constructed rather than
// enumerated; the process-global injector still targets exactly one
// worker even when several run in-process.
func ClusterShard(id string) Point { return Point("cluster.shard." + id) }

// ClusterShardWrite returns the injection point a shard worker fires on
// its marshaled response body before writing it, letting FireData rules
// truncate or corrupt the bytes — a deterministic stand-in for a worker
// crashing mid-response.
func ClusterShardWrite(id string) Point { return Point("cluster.shard-write." + id) }

// rule is the configured behaviour of one point.
type rule struct {
	delay     time.Duration
	err       error
	panicVal  any
	mutate    func([]byte) []byte
	remaining int // shots left; -1 = unlimited
}

// Injector holds the fault rules of one test. The zero state injects
// nothing; rules accumulate through the chainable Fail/FailN/Delay/Panic
// calls. Safe for concurrent use once armed.
type Injector struct {
	mu    sync.Mutex
	rules map[Point]*rule
	hits  map[Point]int
}

// New returns an empty injector.
func New() *Injector {
	return &Injector{rules: make(map[Point]*rule), hits: make(map[Point]int)}
}

func (i *Injector) rule(p Point) *rule {
	r, ok := i.rules[p]
	if !ok {
		r = &rule{remaining: -1}
		i.rules[p] = r
	}
	return r
}

// Fail makes every fire of p return err.
func (i *Injector) Fail(p Point, err error) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rule(p).err = err
	return i
}

// FailN makes the first n fires of p return err; later fires pass.
func (i *Injector) FailN(p Point, n int, err error) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	r := i.rule(p)
	r.err = err
	r.remaining = n
	return i
}

// Delay adds d of latency to every fire of p (before any error or panic).
func (i *Injector) Delay(p Point, d time.Duration) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rule(p).delay = d
	return i
}

// Mutate makes every FireData of p pass its data through fn, simulating
// payload damage (torn writes, bit flips) on the way to a sink. fn must
// not retain or modify the input slice; it returns the bytes to use
// instead.
func (i *Injector) Mutate(p Point, fn func([]byte) []byte) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rule(p).mutate = fn
	return i
}

// MutateN applies fn to the first n FireData calls of p; later calls pass
// the data through unchanged.
func (i *Injector) MutateN(p Point, n int, fn func([]byte) []byte) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	r := i.rule(p)
	r.mutate = fn
	r.remaining = n
	return i
}

// Panic makes every fire of p panic with v.
func (i *Injector) Panic(p Point, v any) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rule(p).panicVal = v
	return i
}

// Hits returns how many times p fired while this injector was armed,
// whether or not a rule was configured for it.
func (i *Injector) Hits(p Point) int {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.hits[p]
}

// take records a hit and consumes one shot of the rule for p, returning
// the behaviour to apply (zero rule when none is configured or the shots
// are spent).
func (i *Injector) take(p Point) rule {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.hits[p]++
	r, ok := i.rules[p]
	if !ok || r.remaining == 0 {
		return rule{}
	}
	if r.remaining > 0 {
		r.remaining--
	}
	return *r
}

// armed is the process-global injector; nil in production.
var armed atomic.Pointer[Injector]

// Arm installs i as the process-global injector.
func Arm(i *Injector) { armed.Store(i) }

// Disarm removes the global injector, returning every point to its
// nil-cost pass-through behaviour.
func Disarm() { armed.Store(nil) }

// Fire triggers the injection point p: with no injector armed it returns
// nil at the cost of one atomic load; with one armed it applies the
// point's rule — sleep the configured delay, panic with the configured
// value, or return the configured error (in that order).
func Fire(p Point) error {
	inj := armed.Load()
	if inj == nil {
		return nil
	}
	r := inj.take(p)
	if r.delay > 0 {
		time.Sleep(r.delay)
	}
	if r.panicVal != nil {
		panic(r.panicVal)
	}
	return r.err
}

// FireData is Fire for points that carry a payload toward a sink (e.g. a
// WAL record about to be written). With no injector armed it returns data
// unchanged at the cost of one atomic load. A mutate rule replaces the
// bytes — the caller writes the mutated form, simulating damage in
// flight — and error/delay/panic rules behave as in Fire (an error
// suppresses the write entirely).
func FireData(p Point, data []byte) ([]byte, error) {
	inj := armed.Load()
	if inj == nil {
		return data, nil
	}
	r := inj.take(p)
	if r.delay > 0 {
		time.Sleep(r.delay)
	}
	if r.panicVal != nil {
		panic(r.panicVal)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.mutate != nil {
		return r.mutate(data), nil
	}
	return data, nil
}

// FireCtx is Fire with a context-aware delay: a configured latency waits
// on ctx, and a context that ends mid-sleep wins — FireCtx returns
// ctx.Err() immediately, the way a real slow dependency loses to a stage
// deadline.
func FireCtx(ctx context.Context, p Point) error {
	inj := armed.Load()
	if inj == nil {
		return nil
	}
	r := inj.take(p)
	if r.delay > 0 {
		t := time.NewTimer(r.delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if r.panicVal != nil {
		panic(r.panicVal)
	}
	return r.err
}
