package faults

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisarmedFireIsNil(t *testing.T) {
	Disarm()
	if err := Fire(BONStage); err != nil {
		t.Fatalf("disarmed Fire = %v", err)
	}
	if err := FireCtx(context.Background(), SaveWrite); err != nil {
		t.Fatalf("disarmed FireCtx = %v", err)
	}
}

func TestFailAndHits(t *testing.T) {
	errBoom := errors.New("boom")
	inj := New().Fail(BONStage, errBoom)
	Arm(inj)
	defer Disarm()
	if err := Fire(BONStage); !errors.Is(err, errBoom) {
		t.Fatalf("Fire = %v, want boom", err)
	}
	// A point without a rule passes but still counts.
	if err := Fire(SaveRename); err != nil {
		t.Fatalf("ruleless Fire = %v", err)
	}
	if got := inj.Hits(BONStage); got != 1 {
		t.Fatalf("hits(BONStage) = %d", got)
	}
	if got := inj.Hits(SaveRename); got != 1 {
		t.Fatalf("hits(SaveRename) = %d", got)
	}
}

func TestFailNConsumesShots(t *testing.T) {
	errBoom := errors.New("boom")
	inj := New().FailN(SaveWrite, 2, errBoom)
	Arm(inj)
	defer Disarm()
	for i := 0; i < 2; i++ {
		if err := Fire(SaveWrite); !errors.Is(err, errBoom) {
			t.Fatalf("shot %d = %v, want boom", i, err)
		}
	}
	if err := Fire(SaveWrite); err != nil {
		t.Fatalf("spent rule = %v, want nil", err)
	}
	if got := inj.Hits(SaveWrite); got != 3 {
		t.Fatalf("hits = %d", got)
	}
}

func TestPanicRule(t *testing.T) {
	Arm(New().Panic(Handler, "injected panic"))
	defer Disarm()
	defer func() {
		if r := recover(); r != "injected panic" {
			t.Fatalf("recover() = %v", r)
		}
	}()
	Fire(Handler)
	t.Fatal("Fire must panic")
}

func TestDelayRespectsContext(t *testing.T) {
	Arm(New().Delay(BONStage, time.Minute))
	defer Disarm()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := FireCtx(ctx, BONStage)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("FireCtx = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("FireCtx ignored the context for %v", elapsed)
	}
}

func TestConcurrentFires(t *testing.T) {
	errBoom := errors.New("boom")
	inj := New().FailN(BONStage, 50, errBoom).Delay(SaveWrite, time.Microsecond)
	Arm(inj)
	defer Disarm()
	var wg sync.WaitGroup
	var failed sync.Map
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := Fire(BONStage); err != nil {
				failed.Store(i, true)
			}
			_ = Fire(SaveWrite)
		}(i)
	}
	wg.Wait()
	n := 0
	failed.Range(func(_, _ any) bool { n++; return true })
	if n != 50 {
		t.Fatalf("injected failures = %d, want exactly 50", n)
	}
	if got := inj.Hits(BONStage); got != 100 {
		t.Fatalf("hits = %d", got)
	}
}

func TestFireDataRules(t *testing.T) {
	data := []byte("hello world")

	// Disarmed: pass-through, same bytes.
	got, err := FireData(WALAppend, data)
	if err != nil || string(got) != string(data) {
		t.Fatalf("disarmed FireData = %q, %v", got, err)
	}

	// Mutate: every fire sees the transformed payload.
	inj := New().Mutate(WALAppend, func(b []byte) []byte { return b[:5] })
	Arm(inj)
	defer Disarm()
	got, err = FireData(WALAppend, data)
	if err != nil || string(got) != "hello" {
		t.Fatalf("mutated FireData = %q, %v", got, err)
	}

	// A rule-less point passes data through unchanged while armed.
	got, err = FireData(SaveWrite, data)
	if err != nil || string(got) != string(data) {
		t.Fatalf("armed pass-through FireData = %q, %v", got, err)
	}

	// An error rule suppresses the payload entirely.
	errBoom := errors.New("boom")
	Arm(New().Fail(WALSync, errBoom))
	if got, err := FireData(WALSync, data); err != errBoom || got != nil {
		t.Fatalf("failing FireData = %q, %v; want nil, boom", got, err)
	}
}

func TestMutateNConsumesShots(t *testing.T) {
	inj := New().MutateN(WALAppend, 2, func(b []byte) []byte { return nil })
	Arm(inj)
	defer Disarm()
	for i := 0; i < 2; i++ {
		if got, _ := FireData(WALAppend, []byte("x")); got != nil {
			t.Fatalf("fire %d: mutate did not apply", i)
		}
	}
	if got, _ := FireData(WALAppend, []byte("x")); string(got) != "x" {
		t.Fatalf("after shots spent: got %q, want pass-through", got)
	}
}

func TestClusterPointNames(t *testing.T) {
	if p := ClusterShard("w1"); p != Point("cluster.shard.w1") {
		t.Fatalf("ClusterShard = %q", p)
	}
	if p := ClusterShardWrite("w1"); p != Point("cluster.shard-write.w1") {
		t.Fatalf("ClusterShardWrite = %q", p)
	}
	// Distinct workers get distinct points: a rule on one never fires on
	// the other.
	inj := New().Fail(ClusterShard("a"), errors.New("a down"))
	Arm(inj)
	defer Disarm()
	if err := Fire(ClusterShard("b")); err != nil {
		t.Fatalf("rule for worker a fired on worker b: %v", err)
	}
	if err := Fire(ClusterShard("a")); err == nil {
		t.Fatal("rule for worker a did not fire")
	}
}

func TestFireCtxDelayElapses(t *testing.T) {
	inj := New().Fail(BONStage, errors.New("slow then fail")).Delay(BONStage, time.Millisecond)
	Arm(inj)
	defer Disarm()
	if err := FireCtx(context.Background(), BONStage); err == nil {
		t.Fatal("delay elapsed but the error rule did not apply")
	}
}
