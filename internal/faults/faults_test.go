package faults

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestDisarmedFireIsNil(t *testing.T) {
	Disarm()
	if err := Fire(BONStage); err != nil {
		t.Fatalf("disarmed Fire = %v", err)
	}
	if err := FireCtx(context.Background(), SaveWrite); err != nil {
		t.Fatalf("disarmed FireCtx = %v", err)
	}
}

func TestFailAndHits(t *testing.T) {
	errBoom := errors.New("boom")
	inj := New().Fail(BONStage, errBoom)
	Arm(inj)
	defer Disarm()
	if err := Fire(BONStage); !errors.Is(err, errBoom) {
		t.Fatalf("Fire = %v, want boom", err)
	}
	// A point without a rule passes but still counts.
	if err := Fire(SaveRename); err != nil {
		t.Fatalf("ruleless Fire = %v", err)
	}
	if got := inj.Hits(BONStage); got != 1 {
		t.Fatalf("hits(BONStage) = %d", got)
	}
	if got := inj.Hits(SaveRename); got != 1 {
		t.Fatalf("hits(SaveRename) = %d", got)
	}
}

func TestFailNConsumesShots(t *testing.T) {
	errBoom := errors.New("boom")
	inj := New().FailN(SaveWrite, 2, errBoom)
	Arm(inj)
	defer Disarm()
	for i := 0; i < 2; i++ {
		if err := Fire(SaveWrite); !errors.Is(err, errBoom) {
			t.Fatalf("shot %d = %v, want boom", i, err)
		}
	}
	if err := Fire(SaveWrite); err != nil {
		t.Fatalf("spent rule = %v, want nil", err)
	}
	if got := inj.Hits(SaveWrite); got != 3 {
		t.Fatalf("hits = %d", got)
	}
}

func TestPanicRule(t *testing.T) {
	Arm(New().Panic(Handler, "injected panic"))
	defer Disarm()
	defer func() {
		if r := recover(); r != "injected panic" {
			t.Fatalf("recover() = %v", r)
		}
	}()
	Fire(Handler)
	t.Fatal("Fire must panic")
}

func TestDelayRespectsContext(t *testing.T) {
	Arm(New().Delay(BONStage, time.Minute))
	defer Disarm()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := FireCtx(ctx, BONStage)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("FireCtx = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("FireCtx ignored the context for %v", elapsed)
	}
}

func TestConcurrentFires(t *testing.T) {
	errBoom := errors.New("boom")
	inj := New().FailN(BONStage, 50, errBoom).Delay(SaveWrite, time.Microsecond)
	Arm(inj)
	defer Disarm()
	var wg sync.WaitGroup
	var failed sync.Map
	for i := 0; i < 100; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := Fire(BONStage); err != nil {
				failed.Store(i, true)
			}
			_ = Fire(SaveWrite)
		}(i)
	}
	wg.Wait()
	n := 0
	failed.Range(func(_, _ any) bool { n++; return true })
	if n != 50 {
		t.Fatalf("injected failures = %d, want exactly 50", n)
	}
	if got := inj.Hits(BONStage); got != 100 {
		t.Fatalf("hits = %d", got)
	}
}
