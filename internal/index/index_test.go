package index

import (
	"strings"
	"testing"
)

func buildSmall() *Index {
	b := NewBuilder()
	docs := []string{
		"taliban attack lahore bomb",
		"taliban pakistan swat valley",
		"election clinton trump debate",
		"lahore lahore lahore cricket",
	}
	for _, d := range docs {
		b.Add(strings.Fields(d))
	}
	return b.Build()
}

func TestIndexBasics(t *testing.T) {
	idx := buildSmall()
	if idx.NumDocs() != 4 {
		t.Fatalf("NumDocs = %d", idx.NumDocs())
	}
	if idx.DF("taliban") != 2 {
		t.Fatalf("DF(taliban) = %d, want 2", idx.DF("taliban"))
	}
	if idx.DF("nope") != 0 {
		t.Fatalf("DF(nope) = %d", idx.DF("nope"))
	}
	pl := idx.Postings("lahore")
	if len(pl) != 2 {
		t.Fatalf("postings(lahore) = %v", pl)
	}
	if pl[0].Doc != 0 || pl[0].TF != 1 || pl[1].Doc != 3 || pl[1].TF != 3 {
		t.Fatalf("postings(lahore) = %v", pl)
	}
	if idx.DocLen(0) != 4 || idx.DocLen(3) != 4 {
		t.Fatalf("doc lengths: %v %v", idx.DocLen(0), idx.DocLen(3))
	}
	if idx.AvgDocLen() != 4 {
		t.Fatalf("AvgDocLen = %v", idx.AvgDocLen())
	}
	if s := idx.String(); !strings.Contains(s, "docs=4") {
		t.Fatalf("String = %s", s)
	}
}

func TestAddWeighted(t *testing.T) {
	b := NewBuilder()
	d := b.AddWeighted(map[string]float32{"n1": 2, "n2": 1})
	if d != 0 {
		t.Fatalf("first doc id = %d", d)
	}
	b.AddWeighted(map[string]float32{"n2": 5})
	idx := b.Build()
	if idx.DF("n2") != 2 || idx.DF("n1") != 1 {
		t.Fatalf("DFs: %d %d", idx.DF("n2"), idx.DF("n1"))
	}
	if idx.DocLen(0) != 3 || idx.DocLen(1) != 5 {
		t.Fatalf("lens: %v %v", idx.DocLen(0), idx.DocLen(1))
	}
}

func TestPostingsSortedByDoc(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 50; i++ {
		b.Add([]string{"common"})
	}
	idx := b.Build()
	pl := idx.Postings("common")
	if len(pl) != 50 {
		t.Fatalf("len = %d", len(pl))
	}
	for i := 1; i < len(pl); i++ {
		if pl[i].Doc <= pl[i-1].Doc {
			t.Fatal("postings not sorted by DocID")
		}
	}
}

func TestEmptyIndex(t *testing.T) {
	idx := NewBuilder().Build()
	if idx.NumDocs() != 0 || idx.NumTerms() != 0 || idx.AvgDocLen() != 0 {
		t.Fatal("empty index not empty")
	}
	if idx.Postings("x") != nil {
		t.Fatal("postings in empty index")
	}
}

func TestZeroValueBuilder(t *testing.T) {
	var b Builder
	b.Add([]string{"a", "b", "a"})
	idx := b.Build()
	if idx.NumDocs() != 1 || idx.DF("a") != 1 {
		t.Fatal("zero-value Builder broken")
	}
	if got := idx.Postings("a")[0].TF; got != 2 {
		t.Fatalf("TF(a) = %v", got)
	}
}
