package index

// LiveFiltered decorates a Source with a tombstone mask. The embedded
// Source keeps Lucene's deletion semantics: postings, DF, DocLen and
// AvgDocLen still include tombstoned documents (their statistics only
// disappear when a merge rewrites the postings), while Live lets the
// retrieval tier drop dead candidates before they are scored or admitted,
// so a deleted document can never surface in results.
type LiveFiltered struct {
	Source
	dead *Bitmap
}

// NewLiveFiltered wraps src with the given tombstone bitmap (indexed by the
// source's own DocIDs). A nil or empty bitmap means everything is live; the
// caller should then use src directly and skip the wrapper.
func NewLiveFiltered(src Source, dead *Bitmap) *LiveFiltered {
	return &LiveFiltered{Source: src, dead: dead}
}

// Live reports whether document d has not been tombstoned.
func (l *LiveFiltered) Live(d DocID) bool { return !l.dead.Get(int(d)) }

// NumLive returns the number of live (non-tombstoned) documents.
func (l *LiveFiltered) NumLive() int { return l.NumDocs() - l.dead.Count() }

// Unwrap returns the underlying source (serialization wants the raw index).
func (l *LiveFiltered) Unwrap() Source { return l.Source }

var _ Source = (*LiveFiltered)(nil)
