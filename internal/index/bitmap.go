package index

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// maxBitmapBits bounds the decoded size of a serialized bitmap. It matches
// the document-count scale the engine is designed for and keeps a corrupt
// or adversarial length prefix from driving a giant allocation.
const maxBitmapBits = 1 << 28

// Bitmap is a fixed-length bit set used for segment tombstones: bit i set
// means document i of the segment is deleted. Like every index structure it
// is treated as immutable once published — writers mutate a Clone and swap
// it in, so readers need no synchronization.
type Bitmap struct {
	n     int
	words []uint64
	count int
}

// NewBitmap returns an all-zero bitmap over n bits.
func NewBitmap(n int) *Bitmap {
	if n < 0 {
		n = 0
	}
	return &Bitmap{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the number of addressable bits (0 for a nil bitmap).
func (b *Bitmap) Len() int {
	if b == nil {
		return 0
	}
	return b.n
}

// Count returns the number of set bits (0 for a nil bitmap).
func (b *Bitmap) Count() int {
	if b == nil {
		return 0
	}
	return b.count
}

// Any reports whether any bit is set. A nil bitmap has none.
func (b *Bitmap) Any() bool { return b != nil && b.count > 0 }

// Get reports bit i. Out-of-range positions (and a nil bitmap) read as
// unset, so a missing tombstone map means "all documents live".
func (b *Bitmap) Get(i int) bool {
	if b == nil || i < 0 || i >= b.n {
		return false
	}
	return b.words[i>>6]&(1<<(i&63)) != 0
}

// Set sets bit i. Setting an already-set bit is a no-op.
func (b *Bitmap) Set(i int) {
	if i < 0 || i >= b.n {
		panic(fmt.Sprintf("index: Bitmap.Set(%d) out of range [0,%d)", i, b.n))
	}
	w, m := i>>6, uint64(1)<<(i&63)
	if b.words[w]&m == 0 {
		b.words[w] |= m
		b.count++
	}
}

// Clone returns an independent copy (copy-on-write support for tombstone
// updates against a published bitmap).
func (b *Bitmap) Clone() *Bitmap {
	c := &Bitmap{n: b.n, words: make([]uint64, len(b.words)), count: b.count}
	copy(c.words, b.words)
	return c
}

// ForEach calls fn for every set bit in ascending order.
func (b *Bitmap) ForEach(fn func(i int)) {
	if b == nil {
		return
	}
	for w, word := range b.words {
		for word != 0 {
			low := word & (-word)
			word &^= low
			fn(w<<6 | bits.TrailingZeros64(low))
		}
	}
}

// Encode serializes the bitmap: uvarint bit length followed by one uvarint
// per 64-bit word. Varints keep the common case — few or no tombstones —
// near-free, and the format is self-delimiting so it can be embedded in a
// larger artifact.
func (b *Bitmap) Encode() []byte {
	out := make([]byte, 0, binary.MaxVarintLen64*(1+len(b.words)))
	out = binary.AppendUvarint(out, uint64(b.n))
	for _, w := range b.words {
		out = binary.AppendUvarint(out, w)
	}
	return out
}

// DecodeBitmap parses an Encode result, validating the length bound, that
// the payload holds exactly the declared number of words, and that no bit
// beyond the declared length is set, so a corrupt buffer can never yield a
// bitmap that disagrees with its own Len/Count.
func DecodeBitmap(data []byte) (*Bitmap, error) {
	n, sz := binary.Uvarint(data)
	if sz <= 0 {
		return nil, fmt.Errorf("index: bitmap: bad length prefix")
	}
	if n > maxBitmapBits {
		return nil, fmt.Errorf("index: bitmap: length %d exceeds limit %d", n, maxBitmapBits)
	}
	data = data[sz:]
	b := NewBitmap(int(n))
	for i := range b.words {
		w, sz := binary.Uvarint(data)
		if sz <= 0 {
			return nil, fmt.Errorf("index: bitmap: truncated at word %d", i)
		}
		data = data[sz:]
		b.words[i] = w
		b.count += bits.OnesCount64(w)
	}
	if len(data) != 0 {
		return nil, fmt.Errorf("index: bitmap: %d trailing bytes", len(data))
	}
	if tail := b.n & 63; tail != 0 && len(b.words) > 0 {
		if b.words[len(b.words)-1]&(^uint64(0)<<tail) != 0 {
			return nil, fmt.Errorf("index: bitmap: bits set beyond length %d", b.n)
		}
	}
	return b, nil
}
