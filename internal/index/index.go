// Package index implements the inverted-index substrate of the NS component
// (Section VI). The same index structure serves both the Bag-Of-Words model
// over text terms and the Bag-Of-Node model over knowledge-graph node ids
// ("scoring compatibility": BON replaces words with nodes, everything else —
// postings, TF-IDF/BM25 weighting, top-k — is shared).
package index

import (
	"fmt"
	"sort"
)

// Source is the read interface the query processor consumes; the in-memory
// Index and the DiskIndex both satisfy it, so searches run unchanged over
// either.
type Source interface {
	NumDocs() int
	DocLen(d DocID) float64
	AvgDocLen() float64
	// Postings returns the postings list for a term, sorted by DocID, or
	// nil if the term is absent. Callers must not modify the slice.
	Postings(term string) []Posting
	// DF returns the document frequency of a term.
	DF(term string) int
	// ForEachTerm enumerates the vocabulary in sorted order until fn
	// returns false.
	ForEachTerm(fn func(term string) bool)
}

// DocID identifies a document in the index, dense from 0.
type DocID uint32

// TermID identifies an interned term.
type TermID uint32

// Posting is one document entry in a term's postings list.
type Posting struct {
	Doc DocID
	TF  float32
}

// Index is an immutable inverted index. Build one with a Builder.
type Index struct {
	terms    map[string]TermID
	postings [][]Posting
	docLen   []float32
	totalLen float64
}

// Builder accumulates documents and produces an Index. Documents receive
// consecutive DocIDs in insertion order. The zero value is ready to use.
type Builder struct {
	terms    map[string]TermID
	postings [][]Posting
	docLen   []float32
	totalLen float64
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{terms: make(map[string]TermID)}
}

// Add indexes a document given its (already analyzed) terms and returns the
// assigned DocID. Duplicate terms raise the term frequency.
func (b *Builder) Add(terms []string) DocID {
	counts := make(map[string]float32, len(terms))
	for _, t := range terms {
		counts[t]++
	}
	return b.AddWeighted(counts)
}

// AddWeighted indexes a document from explicit term weights (the BON model
// supplies node-frequency weights directly).
func (b *Builder) AddWeighted(counts map[string]float32) DocID {
	if b.terms == nil {
		b.terms = make(map[string]TermID)
	}
	doc := DocID(len(b.docLen))
	var total float32
	// Deterministic postings regardless of map order: postings lists are
	// per-term and appended in doc order, which is already deterministic;
	// the map iteration order here only affects append order across
	// *different* terms, which is immaterial.
	for t, c := range counts {
		id, ok := b.terms[t]
		if !ok {
			id = TermID(len(b.postings))
			b.terms[t] = id
			b.postings = append(b.postings, nil)
		}
		b.postings[id] = append(b.postings[id], Posting{Doc: doc, TF: c})
		total += c
	}
	b.docLen = append(b.docLen, total)
	b.totalLen += float64(total)
	return doc
}

// Build finalizes the index. The Builder must not be used afterwards.
func (b *Builder) Build() *Index {
	for _, pl := range b.postings {
		sort.Slice(pl, func(i, j int) bool { return pl[i].Doc < pl[j].Doc })
	}
	idx := &Index{
		terms:    b.terms,
		postings: b.postings,
		docLen:   b.docLen,
		totalLen: b.totalLen,
	}
	b.terms, b.postings, b.docLen = nil, nil, nil
	return idx
}

// NumDocs returns the number of indexed documents.
func (idx *Index) NumDocs() int { return len(idx.docLen) }

// NumTerms returns the vocabulary size.
func (idx *Index) NumTerms() int { return len(idx.postings) }

// DocLen returns the total term weight of a document.
func (idx *Index) DocLen(d DocID) float64 { return float64(idx.docLen[d]) }

// AvgDocLen returns the mean document length.
func (idx *Index) AvgDocLen() float64 {
	if len(idx.docLen) == 0 {
		return 0
	}
	return idx.totalLen / float64(len(idx.docLen))
}

// Postings returns the postings list for a term (nil if absent). The slice
// is shared with the index and must not be modified.
func (idx *Index) Postings(term string) []Posting {
	id, ok := idx.terms[term]
	if !ok {
		return nil
	}
	return idx.postings[id]
}

// DF returns the document frequency of a term.
func (idx *Index) DF(term string) int { return len(idx.Postings(term)) }

// String summarizes the index.
func (idx *Index) String() string {
	return fmt.Sprintf("index{docs=%d terms=%d avgLen=%.1f}",
		idx.NumDocs(), idx.NumTerms(), idx.AvgDocLen())
}
