// Package index implements the inverted-index substrate of the NS component
// (Section VI). The same index structure serves both the Bag-Of-Words model
// over text terms and the Bag-Of-Node model over knowledge-graph node ids
// ("scoring compatibility": BON replaces words with nodes, everything else —
// postings, TF-IDF/BM25 weighting, top-k — is shared).
package index

import (
	"fmt"
	"sort"
)

// Source is the read interface the query processor consumes; the in-memory
// Index, the segmented Multi and the DiskIndex all satisfy it, so searches
// run unchanged over any of them.
type Source interface {
	NumDocs() int
	DocLen(d DocID) float64
	AvgDocLen() float64
	// Postings materializes the full postings list for a term, sorted by
	// DocID, or nil if the term is absent. The slice is freshly decoded
	// from the block-compressed layout; the hot query path should prefer
	// TermCursor, which decodes only the blocks it visits.
	Postings(term string) []Posting
	// TermCursor returns a new block-granular iterator over a term's
	// postings, or nil if the term is absent. Every call returns an
	// independent cursor, so concurrent traversals (the sharded top-k
	// path) each position their own.
	TermCursor(term string) Cursor
	// DF returns the document frequency of a term.
	DF(term string) int
	// ForEachTerm enumerates the vocabulary in sorted order until fn
	// returns false.
	ForEachTerm(fn func(term string) bool)
}

// Cursor iterates one term's postings block by block. A fresh cursor is
// positioned before the first block; NextBlock or SeekBlock must succeed
// before the Block* accessors are used. Block summaries (BlockLast,
// BlockMaxTF, BlockLen) are available without decoding, which is what makes
// block-max pruning and block-granular disk reads possible: a block whose
// score upper bound cannot matter is skipped without ever touching its
// bytes.
type Cursor interface {
	// Count returns the total number of postings in the list (the DF).
	Count() int
	// MaxTF returns the maximum term frequency across the whole list.
	MaxTF() float32
	// NextBlock advances to the next block without decoding it; it
	// returns false when the list is exhausted.
	NextBlock() bool
	// SeekBlock advances (never retreats) to the first block whose last
	// doc ID is >= d — the block that contains the first posting >= d if
	// one exists. It returns false when every remaining posting is < d.
	SeekBlock(d DocID) bool
	// BlockLast returns the last doc ID of the current block.
	BlockLast() DocID
	// BlockMaxTF returns the maximum TF within the current block.
	BlockMaxTF() float32
	// BlockLen returns the number of postings in the current block.
	BlockLen() int
	// Block decodes the current block and returns its postings. The slice
	// is owned by the cursor and only valid until the next Block call.
	Block() ([]Posting, error)
}

// PostingIter adapts a Cursor to posting-at-a-time traversal (next /
// seekGE), decoding lazily one block at a time.
type PostingIter struct {
	c   Cursor
	pl  []Posting
	i   int
	err error
}

// NewPostingIter wraps a cursor (which must be freshly created).
func NewPostingIter(c Cursor) *PostingIter { return &PostingIter{c: c, i: -1} }

// Next advances to the next posting; false at the end or on decode error.
func (it *PostingIter) Next() bool {
	if it.err != nil {
		return false
	}
	it.i++
	if it.i < len(it.pl) {
		return true
	}
	if !it.c.NextBlock() {
		return false
	}
	it.pl, it.err = it.c.Block()
	it.i = 0
	return it.err == nil && len(it.pl) > 0
}

// SeekGE advances to the first posting with Doc >= d, skipping whole blocks
// using their summaries; false when no such posting exists.
func (it *PostingIter) SeekGE(d DocID) bool {
	if it.err != nil {
		return false
	}
	if it.i >= 0 && it.i < len(it.pl) && it.pl[it.i].Doc >= d {
		return true
	}
	// Still inside a decoded block that may contain d?
	if it.i >= 0 && len(it.pl) > 0 && it.pl[len(it.pl)-1].Doc >= d {
		it.i += sort.Search(len(it.pl)-it.i, func(j int) bool { return it.pl[it.i+j].Doc >= d })
		return true
	}
	if !it.c.SeekBlock(d) {
		it.i = len(it.pl)
		return false
	}
	if it.pl, it.err = it.c.Block(); it.err != nil {
		return false
	}
	it.i = sort.Search(len(it.pl), func(j int) bool { return it.pl[j].Doc >= d })
	if it.i == len(it.pl) {
		// Summary said the block reaches d; a decoded block that does not
		// is corrupt, and decodeBlock would have failed first.
		return false
	}
	return true
}

// Doc returns the current posting's document ID.
func (it *PostingIter) Doc() DocID { return it.pl[it.i].Doc }

// TF returns the current posting's term frequency.
func (it *PostingIter) TF() float32 { return it.pl[it.i].TF }

// Err reports a decode/IO error that terminated the iteration, if any.
func (it *PostingIter) Err() error { return it.err }

// DocID identifies a document in the index, dense from 0.
type DocID uint32

// TermID identifies an interned term. Build assigns IDs in sorted term
// order, so two builds of the same corpus produce identical indexes.
type TermID uint32

// Posting is one document entry in a term's postings list.
type Posting struct {
	Doc DocID
	TF  float32
}

// Index is an immutable inverted index storing block-compressed postings
// (see block.go for the layout). Build one with a Builder.
type Index struct {
	terms    map[string]TermID
	lists    []termList
	docLen   []float32
	totalLen float64
}

// Builder accumulates documents and produces an Index. Documents receive
// consecutive DocIDs in insertion order. The zero value is ready to use.
type Builder struct {
	terms    map[string]TermID
	postings [][]Posting
	docLen   []float32
	totalLen float64
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{terms: make(map[string]TermID)}
}

// Add indexes a document given its (already analyzed) terms and returns the
// assigned DocID. Duplicate terms raise the term frequency.
func (b *Builder) Add(terms []string) DocID {
	counts := make(map[string]float32, len(terms))
	for _, t := range terms {
		counts[t]++
	}
	return b.AddWeighted(counts)
}

// AddWeighted indexes a document from explicit term weights (the BON model
// supplies node-frequency weights directly). Terms are folded in sorted
// order so the document length — a float32 sum, sensitive to addition
// order — is identical across runs; together with Build's canonical TermID
// assignment this makes serialized indexes byte-deterministic.
func (b *Builder) AddWeighted(counts map[string]float32) DocID {
	if b.terms == nil {
		b.terms = make(map[string]TermID)
	}
	doc := DocID(len(b.docLen))
	keys := make([]string, 0, len(counts))
	for t := range counts {
		keys = append(keys, t)
	}
	sort.Strings(keys)
	var total float32
	for _, t := range keys {
		c := counts[t]
		id, ok := b.terms[t]
		if !ok {
			id = TermID(len(b.postings))
			b.terms[t] = id
			b.postings = append(b.postings, nil)
		}
		b.postings[id] = append(b.postings[id], Posting{Doc: doc, TF: c})
		total += c
	}
	b.docLen = append(b.docLen, total)
	b.totalLen += float64(total)
	return doc
}

// Build finalizes the index: term IDs are canonicalized to sorted term
// order and every postings list is compressed into the block layout. The
// Builder must not be used afterwards.
func (b *Builder) Build() *Index {
	names := make([]string, 0, len(b.terms))
	for t := range b.terms {
		names = append(names, t)
	}
	sort.Strings(names)
	idx := &Index{
		terms:    make(map[string]TermID, len(names)),
		lists:    make([]termList, len(names)),
		docLen:   b.docLen,
		totalLen: b.totalLen,
	}
	for i, t := range names {
		pl := b.postings[b.terms[t]]
		sort.Slice(pl, func(a, c int) bool { return pl[a].Doc < pl[c].Doc })
		idx.terms[t] = TermID(i)
		idx.lists[i] = encodeBlocks(pl)
	}
	b.terms, b.postings, b.docLen = nil, nil, nil
	return idx
}

// NumDocs returns the number of indexed documents.
func (idx *Index) NumDocs() int { return len(idx.docLen) }

// NumTerms returns the vocabulary size.
func (idx *Index) NumTerms() int { return len(idx.lists) }

// DocLen returns the total term weight of a document.
func (idx *Index) DocLen(d DocID) float64 { return float64(idx.docLen[d]) }

// AvgDocLen returns the mean document length.
func (idx *Index) AvgDocLen() float64 {
	if len(idx.docLen) == 0 {
		return 0
	}
	return idx.totalLen / float64(len(idx.docLen))
}

// Postings materializes the postings list for a term (nil if absent). Each
// call decodes a fresh slice; the query hot path uses TermCursor instead.
func (idx *Index) Postings(term string) []Posting {
	id, ok := idx.terms[term]
	if !ok {
		return nil
	}
	pl, err := idx.lists[id].decodeAll(uint32(len(idx.docLen)))
	if err != nil {
		// The in-memory layout is produced by encodeBlocks or validated at
		// deserialization time, so decoding cannot fail on reachable data.
		panic(fmt.Sprintf("index: corrupt in-memory postings for %q: %v", term, err))
	}
	return pl
}

// TermCursor implements Source. Cursors come from a pool (pool.go);
// callers that finish a traversal may hand them back with ReleaseCursor.
func (idx *Index) TermCursor(term string) Cursor {
	id, ok := idx.terms[term]
	if !ok {
		return nil
	}
	c := memCursorPool.Get().(*memCursor)
	c.tl = &idx.lists[id]
	c.numDocs = uint32(len(idx.docLen))
	c.bi = -1
	return c
}

// DF returns the document frequency of a term.
func (idx *Index) DF(term string) int {
	id, ok := idx.terms[term]
	if !ok {
		return 0
	}
	return idx.lists[id].count
}

// String summarizes the index.
func (idx *Index) String() string {
	return fmt.Sprintf("index{docs=%d terms=%d avgLen=%.1f}",
		idx.NumDocs(), idx.NumTerms(), idx.AvgDocLen())
}
