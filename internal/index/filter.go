package index

// DocFilter is one composable document predicate: Keep reports whether the
// document at DocID d (the wrapped source's own ID space) should remain
// visible to retrieval. Filters compose conjunctively — a document survives
// only when every filter keeps it — and, like the tombstone mask they
// generalize, they do NOT alter the wrapped source's statistics: postings,
// DF, DocLen and AvgDocLen still describe the full corpus, so every
// term/block score bound computed over the unfiltered postings remains a
// valid upper bound for any filtered subset and block-max pruning stays
// admissible unchanged (Lucene's deletion semantics, DESIGN.md §16).
//
// Keep must be safe for concurrent use and cheap: it runs inside the
// retrieval hot loops for every candidate document.
type DocFilter interface {
	Keep(d DocID) bool
}

// FilterFunc adapts a plain predicate to DocFilter.
type FilterFunc func(DocID) bool

// Keep calls f(d).
func (f FilterFunc) Keep(d DocID) bool { return f(d) }

// Filtered decorates a Source with a conjunction of DocFilters, composing
// them with whatever liveness the wrapped source already enforces (a
// LiveFiltered tombstone mask, or another Filtered). It satisfies the same
// Live/NumLive contract as LiveFiltered, so the retrieval tier's live-mask
// seam (search.LiveSource) picks it up with no hot-loop changes: dead or
// filtered-out candidates are dropped before scoring or admission, while
// the statistics the scorers read stay those of the full corpus.
type Filtered struct {
	Source
	live    func(DocID) bool // wrapped source's own liveness; nil = all live
	filters []DocFilter
}

// NewFiltered wraps src with filters. Nil filters are dropped; with none
// remaining src is returned unchanged, so unfiltered requests pay nothing.
func NewFiltered(src Source, filters ...DocFilter) Source {
	kept := make([]DocFilter, 0, len(filters))
	for _, f := range filters {
		if f != nil {
			kept = append(kept, f)
		}
	}
	if len(kept) == 0 {
		return src
	}
	f := &Filtered{Source: src, filters: kept}
	if l, ok := src.(interface{ Live(DocID) bool }); ok {
		f.live = l.Live
	}
	return f
}

// Live reports whether document d survives the wrapped source's own
// liveness and every filter.
func (f *Filtered) Live(d DocID) bool {
	if f.live != nil && !f.live(d) {
		return false
	}
	for _, flt := range f.filters {
		if !flt.Keep(d) {
			return false
		}
	}
	return true
}

// NumLive counts the surviving documents. It is O(NumDocs) and exists to
// honour the LiveFiltered contract; nothing on the query path calls it.
func (f *Filtered) NumLive() int {
	n := 0
	for d := 0; d < f.NumDocs(); d++ {
		if f.Live(DocID(d)) {
			n++
		}
	}
	return n
}

// Unwrap returns the underlying source.
func (f *Filtered) Unwrap() Source { return f.Source }

var _ Source = (*Filtered)(nil)
