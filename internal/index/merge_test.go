package index

import (
	"bytes"
	"math/rand"
	"strconv"
	"testing"
)

// randDocs generates a deterministic synthetic corpus of term slices.
func randDocs(seed int64, n int) [][]string {
	rng := rand.New(rand.NewSource(seed))
	docs := make([][]string, n)
	for d := range docs {
		terms := make([]string, 3+rng.Intn(20))
		for i := range terms {
			terms[i] = "t" + strconv.Itoa(rng.Intn(40))
		}
		docs[d] = terms
	}
	return docs
}

func buildFrom(docs [][]string) *Index {
	b := NewBuilder()
	for _, d := range docs {
		b.Add(d)
	}
	return b.Build()
}

func serialize(t *testing.T, idx *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestMergeIdentityNoDeletes: merging segments without tombstones must be
// an identity transform — the merged index serializes byte-for-byte
// identically to a single index built from the concatenated corpus. This
// is the strongest form of the rank/score-identity claim of DESIGN.md §11:
// identical bytes mean identical docLen/totalLen floats, identical TermIDs
// and identical block layout, so every scorer and traversal behaves the
// same.
func TestMergeIdentityNoDeletes(t *testing.T) {
	for _, splits := range [][]int{{10}, {3, 7}, {1, 1, 1, 1, 1, 5}, {25, 0, 13}} {
		total := 0
		for _, n := range splits {
			total += n
		}
		docs := randDocs(7, total)
		var parts []Source
		at := 0
		for _, n := range splits {
			parts = append(parts, buildFrom(docs[at:at+n]))
			at += n
		}
		merged := MergeSegments(parts, nil)
		mono := buildFrom(docs)
		if !bytes.Equal(serialize(t, merged), serialize(t, mono)) {
			t.Fatalf("splits %v: merged index differs from monolithic build", splits)
		}
	}
}

// TestMergeDropsTombstoned: with tombstones, the merge must be
// byte-identical to building an index over the surviving documents only —
// DF, document lengths and the average all tighten to the live corpus.
func TestMergeDropsTombstoned(t *testing.T) {
	docs := randDocs(11, 30)
	partA, partB := buildFrom(docs[:14]), buildFrom(docs[14:])
	deadA := NewBitmap(14)
	for _, d := range []int{0, 5, 13} {
		deadA.Set(d)
	}
	// partB has a nil bitmap: no deletes there.
	merged := MergeSegments([]Source{partA, partB}, []*Bitmap{deadA, nil})
	var live [][]string
	for d, terms := range docs {
		if d < 14 && deadA.Get(d) {
			continue
		}
		live = append(live, terms)
	}
	mono := buildFrom(live)
	if merged.NumDocs() != len(live) {
		t.Fatalf("merged has %d docs, want %d", merged.NumDocs(), len(live))
	}
	if !bytes.Equal(serialize(t, merged), serialize(t, mono)) {
		t.Fatal("merged-with-tombstones differs from a build over live docs")
	}
}

// TestMergeDropsFullyDeadTerm: a term whose every posting is tombstoned
// must vanish from the merged vocabulary instead of surviving as an empty
// list.
func TestMergeDropsFullyDeadTerm(t *testing.T) {
	b := NewBuilder()
	b.Add([]string{"alive", "shared"})
	b.Add([]string{"doomed", "shared"})
	part := b.Build()
	dead := NewBitmap(2)
	dead.Set(1)
	merged := MergeSegments([]Source{part}, []*Bitmap{dead})
	if merged.DF("doomed") != 0 || len(merged.Postings("doomed")) != 0 {
		t.Fatalf("tombstoned-only term survived: df=%d", merged.DF("doomed"))
	}
	if merged.DF("shared") != 1 || merged.DF("alive") != 1 {
		t.Fatalf("live postings wrong: shared=%d alive=%d", merged.DF("shared"), merged.DF("alive"))
	}
	if merged.NumDocs() != 1 {
		t.Fatalf("NumDocs = %d, want 1", merged.NumDocs())
	}
}
