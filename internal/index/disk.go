package index

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// DiskIndex serves queries directly from a serialized index file: the
// directory (terms, postings offsets) and document lengths are held in
// memory, postings blocks are read and decoded on demand with ReadAt. This
// is the production path for corpora whose postings exceed RAM, and it
// makes engine snapshots searchable without a load phase. Safe for
// concurrent use.
type DiskIndex struct {
	f        *os.File
	base     int64 // file offset where postings blocks start
	docLens  []float32
	totalLen float64
	dir      map[string]termEntry
}

// OpenDiskIndex opens path (a file written by Index.WriteTo) for on-demand
// reads. Close it when done.
func OpenDiskIndex(path string) (*DiskIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(f)
	hdr, err := readHeader(br)
	if err != nil {
		f.Close()
		return nil, err
	}
	// The header reader consumed exactly up to the postings area; its file
	// position is the current offset minus what is still buffered.
	pos, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		f.Close()
		return nil, err
	}
	base := pos - int64(br.Buffered())
	d := &DiskIndex{
		f:       f,
		base:    base,
		docLens: hdr.docLens,
		dir:     make(map[string]termEntry, len(hdr.terms)),
	}
	for _, l := range hdr.docLens {
		d.totalLen += float64(l)
	}
	for _, te := range hdr.terms {
		d.dir[te.term] = te
	}
	return d, nil
}

// Close releases the underlying file.
func (d *DiskIndex) Close() error { return d.f.Close() }

// NumDocs implements Source.
func (d *DiskIndex) NumDocs() int { return len(d.docLens) }

// NumTerms returns the vocabulary size.
func (d *DiskIndex) NumTerms() int { return len(d.dir) }

// DocLen implements Source.
func (d *DiskIndex) DocLen(doc DocID) float64 { return float64(d.docLens[doc]) }

// AvgDocLen implements Source.
func (d *DiskIndex) AvgDocLen() float64 {
	if len(d.docLens) == 0 {
		return 0
	}
	return d.totalLen / float64(len(d.docLens))
}

// DF implements Source.
func (d *DiskIndex) DF(term string) int { return d.dir[term].count }

// Postings implements Source: the term's block is read with ReadAt and
// decoded. Absent terms return nil; IO or corruption surfaces as nil too
// (the search layer treats it as an absent term), with the error available
// via PostingsErr for callers that need to distinguish.
func (d *DiskIndex) Postings(term string) []Posting {
	pl, _ := d.PostingsErr(term)
	return pl
}

// PostingsErr is Postings with the error reported.
func (d *DiskIndex) PostingsErr(term string) ([]Posting, error) {
	te, ok := d.dir[term]
	if !ok {
		return nil, nil
	}
	block := make([]byte, te.blockLen)
	if _, err := d.f.ReadAt(block, d.base+te.offset); err != nil {
		return nil, fmt.Errorf("index: reading postings of %q: %w", term, err)
	}
	pl, err := decodePostings(block, te.count, uint32(len(d.docLens)))
	if err != nil {
		return nil, fmt.Errorf("index: term %q: %w", term, err)
	}
	return pl, nil
}

var _ Source = (*DiskIndex)(nil)
var _ Source = (*Index)(nil)
