package index

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sync/atomic"
)

// DiskIndex serves queries directly from a serialized index file: the
// directory (terms, per-block summaries and offsets) and document lengths
// are held in memory; postings blocks are read and decoded on demand, one
// ReadAt per block. A query that prunes a block never reads its bytes, so
// the IO cost tracks the blocks actually scored rather than the lists
// touched. This is the production path for corpora whose postings exceed
// RAM, and it makes engine snapshots searchable without a load phase. Safe
// for concurrent use: cursors carry their own read and decode buffers.
type DiskIndex struct {
	f         *os.File
	base      int64 // file offset where block data starts
	docLens   []float32
	totalLen  float64
	dir       map[string]*termEntry
	bytesRead atomic.Int64
}

// OpenDiskIndex opens path (a file written by Index.WriteTo) for on-demand
// reads. Close it when done.
func OpenDiskIndex(path string) (*DiskIndex, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(f)
	hdr, err := readHeader(br)
	if err != nil {
		f.Close()
		return nil, err
	}
	// The header reader consumed exactly up to the block data area; its file
	// position is the current offset minus what is still buffered.
	pos, err := f.Seek(0, io.SeekCurrent)
	if err != nil {
		f.Close()
		return nil, err
	}
	base := pos - int64(br.Buffered())
	d := &DiskIndex{
		f:       f,
		base:    base,
		docLens: hdr.docLens,
		dir:     make(map[string]*termEntry, len(hdr.terms)),
	}
	for _, l := range hdr.docLens {
		d.totalLen += float64(l)
	}
	for i := range hdr.terms {
		d.dir[hdr.terms[i].term] = &hdr.terms[i]
	}
	return d, nil
}

// Close releases the underlying file.
func (d *DiskIndex) Close() error { return d.f.Close() }

// NumDocs implements Source.
func (d *DiskIndex) NumDocs() int { return len(d.docLens) }

// NumTerms returns the vocabulary size.
func (d *DiskIndex) NumTerms() int { return len(d.dir) }

// DocLen implements Source.
func (d *DiskIndex) DocLen(doc DocID) float64 { return float64(d.docLens[doc]) }

// AvgDocLen implements Source.
func (d *DiskIndex) AvgDocLen() float64 {
	if len(d.docLens) == 0 {
		return 0
	}
	return d.totalLen / float64(len(d.docLens))
}

// DF implements Source.
func (d *DiskIndex) DF(term string) int {
	te, ok := d.dir[term]
	if !ok {
		return 0
	}
	return te.count
}

// BytesRead returns the cumulative number of postings bytes fetched with
// ReadAt since the index was opened. Tests use it to prove queries read only
// the blocks they touch.
func (d *DiskIndex) BytesRead() int64 { return d.bytesRead.Load() }

// Postings implements Source: every block of the term is read and decoded.
// Absent terms return nil; IO or corruption surfaces as nil too (the search
// layer treats it as an absent term), with the error available via
// PostingsErr for callers that need to distinguish.
func (d *DiskIndex) Postings(term string) []Posting {
	pl, _ := d.PostingsErr(term)
	return pl
}

// PostingsErr is Postings with the error reported.
func (d *DiskIndex) PostingsErr(term string) ([]Posting, error) {
	te, ok := d.dir[term]
	if !ok {
		return nil, nil
	}
	out := make([]Posting, 0, te.count)
	c := d.newCursor(te)
	defer ReleaseCursor(c)
	for c.NextBlock() {
		pl, err := c.Block()
		if err != nil {
			return nil, fmt.Errorf("index: term %q: %w", term, err)
		}
		out = append(out, pl...)
	}
	return out, nil
}

// TermCursor implements Source. Each cursor owns its buffers, so any number
// of cursors — including several over the same term — may run concurrently.
func (d *DiskIndex) TermCursor(term string) Cursor {
	te, ok := d.dir[term]
	if !ok {
		return nil
	}
	return d.newCursor(te)
}

func (d *DiskIndex) newCursor(te *termEntry) *diskCursor {
	c := diskCursorPool.Get().(*diskCursor)
	c.d, c.te, c.bi = d, te, -1
	return c
}

// diskCursor iterates one on-disk term block by block, fetching each decoded
// block with a single ReadAt into a cursor-owned buffer.
type diskCursor struct {
	d   *DiskIndex
	te  *termEntry
	bi  int // current block; -1 before the first NextBlock
	raw []byte
	buf []Posting
}

func (c *diskCursor) Count() int          { return c.te.count }
func (c *diskCursor) MaxTF() float32      { return c.te.maxTF }
func (c *diskCursor) BlockLast() DocID    { return c.te.blocks[c.bi].last }
func (c *diskCursor) BlockMaxTF() float32 { return c.te.blocks[c.bi].maxTF }

func (c *diskCursor) BlockLen() int {
	if c.bi < len(c.te.blocks)-1 {
		return blockSize
	}
	return c.te.count - c.bi*blockSize
}

func (c *diskCursor) NextBlock() bool {
	if c.bi+1 >= len(c.te.blocks) {
		return false
	}
	c.bi++
	return true
}

func (c *diskCursor) SeekBlock(d DocID) bool {
	if c.bi >= 0 && c.bi < len(c.te.blocks) && c.te.blocks[c.bi].last >= d {
		return true
	}
	blocks := c.te.blocks
	for c.bi++; c.bi < len(blocks); c.bi++ {
		if blocks[c.bi].last >= d {
			return true
		}
	}
	return false
}

func (c *diskCursor) Block() ([]Posting, error) {
	bm := c.te.blocks[c.bi]
	n := int(bm.end - bm.off)
	if cap(c.raw) < n {
		c.raw = make([]byte, maxBlockBytes)
	}
	raw := c.raw[:n]
	if _, err := c.d.f.ReadAt(raw, c.d.base+c.te.offset+int64(bm.off)); err != nil {
		return nil, fmt.Errorf("index: reading block %d: %w", c.bi, err)
	}
	c.d.bytesRead.Add(int64(n))
	base := DocID(0)
	if c.bi > 0 {
		base = c.te.blocks[c.bi-1].last
	}
	pl, err := decodeBlock(raw, c.buf, c.BlockLen(), base, c.bi == 0, uint32(len(c.d.docLens)), bm.last)
	c.buf = pl
	return pl, err
}

var _ Source = (*DiskIndex)(nil)
var _ Source = (*Index)(nil)
