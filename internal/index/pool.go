package index

import "sync"

// Cursor pooling.
//
// TermCursor hands out a fresh cursor per term per traversal; a fused
// query touches tens of terms across two indexes and, on the sharded
// path, multiplies that by the worker count. Each cursor also owns decode
// scratch — a block-sized []Posting and, for disk cursors, a raw read
// buffer — so letting cursors die with the request throws the scratch
// away with them. The pools below recycle cursors (scratch attached)
// across requests; TermCursor implementations draw from them and
// ReleaseCursor returns them.
//
// Reuse is safe because cursors are single-owner by contract (Source.
// TermCursor: "every call returns an independent cursor") and release
// clears every reference to the index that produced the cursor, so a
// pooled cursor pins no segment memory while it waits.
var (
	memCursorPool   = sync.Pool{New: func() any { return new(memCursor) }}
	diskCursorPool  = sync.Pool{New: func() any { return new(diskCursor) }}
	multiCursorPool = sync.Pool{New: func() any { return new(multiCursor) }}
)

// ReleaseCursor returns a cursor obtained from Source.TermCursor to its
// implementation's pool, keeping its decode buffers warm for the next
// request. The cursor (and any postings slice its Block returned) must not
// be used afterwards. Cursors of unknown implementations are ignored, so
// callers may release unconditionally; nil is a no-op.
func ReleaseCursor(c Cursor) {
	switch c := c.(type) {
	case *memCursor:
		c.tl = nil
		memCursorPool.Put(c)
	case *diskCursor:
		c.d, c.te = nil, nil
		diskCursorPool.Put(c)
	case *multiCursor:
		for _, p := range c.parts {
			ReleaseCursor(p)
		}
		c.parts = c.parts[:0]
		c.bases = c.bases[:0]
		multiCursorPool.Put(c)
	}
}
