package index

import "sort"

// MergeSegments compacts an ordered sequence of segments into a single
// in-memory Index, dropping documents marked dead in the per-segment
// tombstone bitmaps (dead may be nil, or hold nil entries, meaning no
// deletes in that segment). Surviving documents keep their relative order
// and are renumbered densely from 0.
//
// For inputs without deletes the merge is an identity transform in the
// strict floating-point sense, which is what makes segmented search
// rank/score-identical to a single-segment build (DESIGN.md §11):
//
//   - docLen values are copied, not recomputed, so the float32 sums the
//     Builder folded in sorted-term order survive bit-for-bit;
//   - totalLen is re-accumulated as one float64 fold in document order —
//     the same order Builder.AddWeighted used across consecutive Adds;
//   - postings concatenate in (segment, local DocID) order, so each term's
//     list is already DocID-sorted and encodeBlocks produces the same
//     block layout a single build would;
//   - TermIDs come out canonical because the term union is enumerated in
//     sorted order, matching Builder.Build.
//
// With deletes, the rewrite drops the tombstoned postings and their length
// statistics, so DF/AvgDocLen tighten to the live corpus — the point of
// compaction.
func MergeSegments(parts []Source, dead []*Bitmap) *Index {
	idx := &Index{terms: make(map[string]TermID)}
	// Remap each part's local DocIDs to the merged space (-1 = dropped),
	// copying per-document lengths as we go.
	remaps := make([][]int32, len(parts))
	next := int32(0)
	for pi, p := range parts {
		n := p.NumDocs()
		r := make([]int32, n)
		var dd *Bitmap
		if dead != nil {
			dd = dead[pi]
		}
		for d := 0; d < n; d++ {
			if dd.Get(d) {
				r[d] = -1
				continue
			}
			r[d] = next
			next++
			l := float32(p.DocLen(DocID(d)))
			idx.docLen = append(idx.docLen, l)
			idx.totalLen += float64(l)
		}
		remaps[pi] = r
	}
	for _, t := range mergedTerms(parts) {
		var pl []Posting
		for pi, p := range parts {
			r := remaps[pi]
			for _, e := range p.Postings(t) {
				if nd := r[e.Doc]; nd >= 0 {
					pl = append(pl, Posting{Doc: DocID(nd), TF: e.TF})
				}
			}
		}
		if len(pl) == 0 {
			continue // every posting of this term was tombstoned
		}
		idx.terms[t] = TermID(len(idx.lists))
		idx.lists = append(idx.lists, encodeBlocks(pl))
	}
	return idx
}

// mergedTerms returns the sorted union of the parts' vocabularies.
func mergedTerms(parts []Source) []string {
	seen := map[string]bool{}
	var terms []string
	for _, p := range parts {
		p.ForEachTerm(func(t string) bool {
			if !seen[t] {
				seen[t] = true
				terms = append(terms, t)
			}
			return true
		})
	}
	sort.Strings(terms)
	return terms
}
