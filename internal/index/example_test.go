package index_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"newslink/internal/index"
)

// Example shows the index lifecycle: build in memory, serialize, reopen
// disk-backed, and extend with a segment — all behind the same Source
// interface the query processor consumes.
func Example() {
	b := index.NewBuilder()
	b.Add(strings.Fields("taliban attack lahore"))
	b.Add(strings.Fields("cricket final lahore"))
	idx := b.Build()

	dir, err := os.MkdirTemp("", "idx")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "text.idx")
	f, err := os.Create(path)
	if err != nil {
		fmt.Println(err)
		return
	}
	if _, err := idx.WriteTo(f); err != nil {
		fmt.Println(err)
		return
	}
	f.Close()

	disk, err := index.OpenDiskIndex(path)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer disk.Close()

	late := index.NewBuilder()
	late.Add(strings.Fields("election results lahore"))
	combined := index.NewMulti(disk, late.Build())

	fmt.Println("docs:", combined.NumDocs())
	fmt.Println("df(lahore):", combined.DF("lahore"))
	for _, p := range combined.Postings("lahore") {
		fmt.Printf("doc %d tf %g\n", p.Doc, p.TF)
	}
	// Output:
	// docs: 3
	// df(lahore): 3
	// doc 0 tf 1
	// doc 1 tf 1
	// doc 2 tf 1
}
