package index

import (
	"encoding/binary"
	"math/rand"
	"testing"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130)
	if b.Len() != 130 || b.Count() != 0 || b.Any() {
		t.Fatalf("fresh bitmap: len=%d count=%d any=%v", b.Len(), b.Count(), b.Any())
	}
	for _, i := range []int{0, 63, 64, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitmap", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d unset after Set", i)
		}
	}
	if b.Count() != 4 || !b.Any() {
		t.Fatalf("count=%d any=%v", b.Count(), b.Any())
	}
	b.Set(63) // setting a set bit is a no-op
	if b.Count() != 4 {
		t.Fatalf("double Set changed count: %d", b.Count())
	}
	// Out-of-range reads are unset, not panics.
	if b.Get(-1) || b.Get(130) || b.Get(1<<20) {
		t.Fatal("out-of-range Get returned true")
	}
	var got []int
	b.ForEach(func(i int) { got = append(got, i) })
	want := []int{0, 63, 64, 129}
	if len(got) != len(want) {
		t.Fatalf("ForEach visited %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach order %v, want %v", got, want)
		}
	}
}

func TestBitmapNilSafety(t *testing.T) {
	var b *Bitmap
	if b.Len() != 0 || b.Count() != 0 || b.Any() || b.Get(0) {
		t.Fatal("nil bitmap must read as empty")
	}
	b.ForEach(func(int) { t.Fatal("nil bitmap visited a bit") })
}

func TestBitmapSetOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set out of range did not panic")
		}
	}()
	NewBitmap(10).Set(10)
}

func TestBitmapCloneIndependence(t *testing.T) {
	b := NewBitmap(70)
	b.Set(5)
	c := b.Clone()
	c.Set(69)
	if b.Get(69) {
		t.Fatal("Clone shares storage with original")
	}
	if !c.Get(5) || c.Count() != 2 || b.Count() != 1 {
		t.Fatalf("clone state wrong: c=%d b=%d", c.Count(), b.Count())
	}
}

func TestBitmapCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		b := NewBitmap(n)
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				b.Set(i)
			}
		}
		got, err := DecodeBitmap(b.Encode())
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if got.Len() != b.Len() || got.Count() != b.Count() {
			t.Fatalf("n=%d: len/count %d/%d, want %d/%d", n, got.Len(), got.Count(), b.Len(), b.Count())
		}
		for i := 0; i < n; i++ {
			if got.Get(i) != b.Get(i) {
				t.Fatalf("n=%d: bit %d differs after round trip", n, i)
			}
		}
	}
}

func TestBitmapDecodeRejectsCorruption(t *testing.T) {
	b := NewBitmap(100)
	b.Set(7)
	b.Set(99)
	enc := b.Encode()
	cases := map[string][]byte{
		"empty":         {},
		"truncated":     enc[:len(enc)-1],
		"trailing":      append(append([]byte{}, enc...), 0x00),
		"oversized":     binary.AppendUvarint(nil, maxBitmapBits+1),
		"bits-past-len": append(binary.AppendUvarint(nil, 3), binary.AppendUvarint(nil, 0xFF)...),
		"missing-words": binary.AppendUvarint(nil, 128),
	}
	for name, data := range cases {
		if got, err := DecodeBitmap(data); err == nil {
			t.Fatalf("%s: decoded to %+v, want error", name, got)
		}
	}
}

// FuzzBitmapCodec: DecodeBitmap must never panic, and anything it accepts
// must re-encode to a buffer that decodes to the same bitmap with a
// self-consistent Len/Count.
func FuzzBitmapCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(NewBitmap(0).Encode())
	seed := NewBitmap(130)
	seed.Set(0)
	seed.Set(129)
	f.Add(seed.Encode())
	f.Add(binary.AppendUvarint(nil, maxBitmapBits+1))
	f.Fuzz(func(t *testing.T, data []byte) {
		b, err := DecodeBitmap(data)
		if err != nil {
			return
		}
		count := 0
		prev := -1
		b.ForEach(func(i int) {
			if i <= prev || i >= b.Len() || !b.Get(i) {
				t.Fatalf("ForEach visited inconsistent bit %d (prev %d, len %d)", i, prev, b.Len())
			}
			prev = i
			count++
		})
		if count != b.Count() {
			t.Fatalf("ForEach visited %d bits, Count says %d", count, b.Count())
		}
		rt, err := DecodeBitmap(b.Encode())
		if err != nil {
			t.Fatalf("re-decode of Encode output: %v", err)
		}
		if rt.Len() != b.Len() || rt.Count() != b.Count() {
			t.Fatalf("round trip changed shape: %d/%d vs %d/%d", rt.Len(), rt.Count(), b.Len(), b.Count())
		}
		for i := 0; i < b.Len(); i++ {
			if rt.Get(i) != b.Get(i) {
				t.Fatalf("round trip changed bit %d", i)
			}
		}
	})
}
