package index

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Block-compressed postings layout.
//
// A term's postings list is finalized by Build into fixed-size blocks of up
// to blockSize postings. Within a block, doc IDs are delta-varint encoded
// (the first posting of block 0 carries the absolute doc ID; every other
// delta is >= 1) and term frequencies use the compact encodeTF varint. Each
// block carries a summary — its last doc ID and its maximum TF — kept
// outside the encoded bytes, so the query processor can compute a per-block
// BM25/TF-IDF upper bound and skip whole blocks without decoding them
// (Block-Max pruning), and DiskIndex can read exactly the blocks a query
// touches.
const blockSize = 128

// maxBlockBytes bounds one encoded block: each posting is at most two
// 10-byte varints. Parsers reject claimed block lengths above this.
const maxBlockBytes = 2 * binary.MaxVarintLen64 * blockSize

// blockMeta is the in-memory summary of one postings block.
type blockMeta struct {
	last  DocID   // last (largest) doc ID in the block
	maxTF float32 // maximum term frequency in the block
	off   uint32  // byte offset of the block's data in termList.data
	end   uint32  // byte offset one past the block's data
}

// termList is one term's block-compressed postings list.
type termList struct {
	count  int     // total postings (the term's DF)
	maxTF  float32 // maximum TF across all blocks
	blocks []blockMeta
	data   []byte // concatenated encoded blocks
}

// numBlocksFor returns how many blocks a list of count postings occupies.
func numBlocksFor(count int) int { return (count + blockSize - 1) / blockSize }

// blockLen returns the number of postings in block bi of a count-sized list.
func (tl *termList) blockLen(bi int) int {
	if bi < len(tl.blocks)-1 {
		return blockSize
	}
	return tl.count - bi*blockSize
}

// encodeBlocks compresses a doc-sorted postings list into the block layout.
func encodeBlocks(pl []Posting) termList {
	tl := termList{count: len(pl)}
	if len(pl) == 0 {
		return tl
	}
	var buf [binary.MaxVarintLen64]byte
	tl.blocks = make([]blockMeta, 0, numBlocksFor(len(pl)))
	tl.data = make([]byte, 0, len(pl)*3)
	prev := DocID(0)
	for start := 0; start < len(pl); start += blockSize {
		end := min(start+blockSize, len(pl))
		bm := blockMeta{off: uint32(len(tl.data))}
		for i := start; i < end; i++ {
			p := pl[i]
			delta := uint32(p.Doc)
			if i > 0 {
				delta = uint32(p.Doc) - uint32(prev)
			}
			prev = p.Doc
			n := binary.PutUvarint(buf[:], uint64(delta))
			tl.data = append(tl.data, buf[:n]...)
			n = binary.PutUvarint(buf[:], encodeTF(p.TF))
			tl.data = append(tl.data, buf[:n]...)
			if p.TF > bm.maxTF {
				bm.maxTF = p.TF
			}
		}
		bm.last = prev
		bm.end = uint32(len(tl.data))
		tl.blocks = append(tl.blocks, bm)
		if bm.maxTF > tl.maxTF {
			tl.maxTF = bm.maxTF
		}
	}
	return tl
}

// decodeBlock reverses encodeBlocks for one block. base is the last doc ID
// of the preceding block (first of the whole list when firstBlock, where the
// leading delta is the absolute doc ID and may be 0). n postings are
// expected; dst is reused when it has capacity. The decoder validates
// monotonicity, the doc-ID range, exact byte consumption and the block
// summary's last doc, so truncated or corrupt blocks fail cleanly.
func decodeBlock(data []byte, dst []Posting, n int, base DocID, firstBlock bool, numDocs uint32, wantLast DocID) ([]Posting, error) {
	if n < 0 || n > blockSize {
		return nil, fmt.Errorf("index: block posting count %d out of range", n)
	}
	if cap(dst) < n {
		dst = make([]Posting, 0, blockSize)
	}
	dst = dst[:0]
	pos := 0
	prev := uint32(base)
	for i := 0; i < n; i++ {
		delta, w := binary.Uvarint(data[pos:])
		if w <= 0 {
			return nil, fmt.Errorf("index: truncated posting %d", i)
		}
		pos += w
		if delta > uint64(numDocs) {
			return nil, fmt.Errorf("index: doc delta %d out of range", delta)
		}
		doc := prev + uint32(delta)
		if !(firstBlock && i == 0) && delta == 0 {
			return nil, fmt.Errorf("index: postings not strictly increasing")
		}
		if doc >= numDocs {
			return nil, fmt.Errorf("index: posting doc %d out of range", doc)
		}
		prev = doc
		tfRaw, w := binary.Uvarint(data[pos:])
		if w <= 0 {
			return nil, fmt.Errorf("index: truncated tf %d", i)
		}
		pos += w
		dst = append(dst, Posting{Doc: DocID(doc), TF: decodeTF(tfRaw)})
	}
	if pos != len(data) {
		return nil, fmt.Errorf("index: %d trailing bytes in block", len(data)-pos)
	}
	if n > 0 && DocID(prev) != wantLast {
		return nil, fmt.Errorf("index: block last doc %d, summary says %d", prev, wantLast)
	}
	return dst, nil
}

// decodeAll materializes a whole termList into a flat postings slice. Each
// block decodes directly into the output's spare capacity — dst is the
// empty tail slice out[len(out):], whose capacity always covers a full
// block — so the whole list costs exactly one allocation.
func (tl *termList) decodeAll(numDocs uint32) ([]Posting, error) {
	if tl.count == 0 {
		return nil, nil
	}
	out := make([]Posting, 0, tl.count)
	base := DocID(0)
	for bi, bm := range tl.blocks {
		pl, err := decodeBlock(tl.data[bm.off:bm.end], out[len(out):], tl.blockLen(bi), base, bi == 0, numDocs, bm.last)
		if err != nil {
			return nil, err
		}
		out = out[:len(out)+len(pl)]
		base = bm.last
	}
	return out, nil
}

// validate fully decodes a termList and cross-checks the block summaries
// (per-block max TF included); used when parsing untrusted serialized input.
func (tl *termList) validate(numDocs uint32) error {
	if len(tl.blocks) != numBlocksFor(tl.count) {
		return fmt.Errorf("index: %d blocks for %d postings", len(tl.blocks), tl.count)
	}
	var buf [blockSize]Posting
	base := DocID(0)
	for bi, bm := range tl.blocks {
		pl, err := decodeBlock(tl.data[bm.off:bm.end], buf[:0], tl.blockLen(bi), base, bi == 0, numDocs, bm.last)
		if err != nil {
			return err
		}
		maxTF := float32(0)
		for _, p := range pl {
			if p.TF > maxTF {
				maxTF = p.TF
			}
		}
		if maxTF != bm.maxTF {
			return fmt.Errorf("index: block max tf %v, summary says %v", maxTF, bm.maxTF)
		}
		base = bm.last
	}
	return nil
}

// memCursor iterates an in-memory termList block by block.
type memCursor struct {
	tl      *termList
	numDocs uint32
	bi      int // current block; -1 before the first NextBlock
	buf     []Posting
}

func (c *memCursor) Count() int     { return c.tl.count }
func (c *memCursor) MaxTF() float32 { return c.tl.maxTF }
func (c *memCursor) BlockLen() int  { return c.tl.blockLen(c.bi) }
func (c *memCursor) BlockLast() DocID {
	return c.tl.blocks[c.bi].last
}
func (c *memCursor) BlockMaxTF() float32 {
	return c.tl.blocks[c.bi].maxTF
}

func (c *memCursor) NextBlock() bool {
	if c.bi+1 >= len(c.tl.blocks) {
		return false
	}
	c.bi++
	return true
}

func (c *memCursor) SeekBlock(d DocID) bool {
	if c.bi >= 0 && c.bi < len(c.tl.blocks) && c.tl.blocks[c.bi].last >= d {
		return true // already positioned at or past d's block
	}
	from := max(c.bi+1, 0)
	blocks := c.tl.blocks
	c.bi = from + sort.Search(len(blocks)-from, func(j int) bool { return blocks[from+j].last >= d })
	return c.bi < len(blocks)
}

func (c *memCursor) Block() ([]Posting, error) {
	bm := c.tl.blocks[c.bi]
	base := DocID(0)
	if c.bi > 0 {
		base = c.tl.blocks[c.bi-1].last
	}
	pl, err := decodeBlock(c.tl.data[bm.off:bm.end], c.buf, c.tl.blockLen(c.bi), base, c.bi == 0, c.numDocs, bm.last)
	c.buf = pl
	return pl, err
}
