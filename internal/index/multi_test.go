package index

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func seg(docs ...string) *Index {
	b := NewBuilder()
	for _, d := range docs {
		b.Add(strings.Fields(d))
	}
	return b.Build()
}

func TestMultiBasics(t *testing.T) {
	a := seg("x y", "y z")
	c := seg("z z z", "w")
	m := NewMulti(a, c)
	if m.NumDocs() != 4 || m.NumSegments() != 2 {
		t.Fatalf("docs=%d segments=%d", m.NumDocs(), m.NumSegments())
	}
	if m.DF("z") != 2 || m.DF("x") != 1 || m.DF("nope") != 0 {
		t.Fatalf("DF: z=%d x=%d", m.DF("z"), m.DF("x"))
	}
	// DocIDs remap: segment c's doc 0 becomes global doc 2.
	pl := m.Postings("z")
	want := []Posting{{Doc: 1, TF: 1}, {Doc: 2, TF: 3}}
	if !reflect.DeepEqual(pl, want) {
		t.Fatalf("postings(z) = %v, want %v", pl, want)
	}
	if m.DocLen(2) != 3 || m.DocLen(3) != 1 || m.DocLen(0) != 2 {
		t.Fatalf("doc lens: %v %v %v", m.DocLen(0), m.DocLen(2), m.DocLen(3))
	}
	if got := m.AvgDocLen(); got != (2+2+3+1)/4.0 {
		t.Fatalf("avg = %v", got)
	}
}

func TestMultiFlattensNesting(t *testing.T) {
	a, b, c := seg("x"), seg("y"), seg("z")
	m := NewMulti(NewMulti(a, b), c)
	if m.NumSegments() != 3 {
		t.Fatalf("segments = %d, want 3 (nested Multi flattened)", m.NumSegments())
	}
}

// TestMultiEquivalentToMonolithic: a Multi over segments must behave exactly
// like one index built from the concatenated corpus.
func TestMultiEquivalentToMonolithic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	vocab := []string{"a", "b", "c", "d", "e"}
	var all [][]string
	var segments []Source
	mono := NewBuilder()
	for s := 0; s < 4; s++ {
		sb := NewBuilder()
		for d := 0; d < 5+rng.Intn(10); d++ {
			var terms []string
			for i := 0; i <= rng.Intn(6); i++ {
				terms = append(terms, vocab[rng.Intn(len(vocab))])
			}
			all = append(all, terms)
			sb.Add(terms)
			mono.Add(terms)
		}
		segments = append(segments, sb.Build())
	}
	m := NewMulti(segments...)
	ref := mono.Build()
	if m.NumDocs() != ref.NumDocs() {
		t.Fatalf("doc counts differ")
	}
	if m.AvgDocLen() != ref.AvgDocLen() {
		t.Fatalf("avg len %v vs %v", m.AvgDocLen(), ref.AvgDocLen())
	}
	for _, term := range vocab {
		if !reflect.DeepEqual(m.Postings(term), ref.Postings(term)) {
			t.Fatalf("postings(%s): %v vs %v", term, m.Postings(term), ref.Postings(term))
		}
	}
	for d := 0; d < ref.NumDocs(); d++ {
		if m.DocLen(DocID(d)) != ref.DocLen(DocID(d)) {
			t.Fatalf("DocLen(%d) differs", d)
		}
	}
	// Flatten equals the monolithic index term by term.
	flat := m.Flatten()
	var terms []string
	ref.ForEachTerm(func(term string) bool { terms = append(terms, term); return true })
	var flatTerms []string
	flat.ForEachTerm(func(term string) bool { flatTerms = append(flatTerms, term); return true })
	if !reflect.DeepEqual(terms, flatTerms) {
		t.Fatalf("term sets differ: %v vs %v", terms, flatTerms)
	}
	for _, term := range terms {
		if !reflect.DeepEqual(flat.Postings(term), ref.Postings(term)) {
			t.Fatalf("flattened postings(%s) differ", term)
		}
	}
}

func TestMultiForEachTermEarlyStop(t *testing.T) {
	m := NewMulti(seg("b a"), seg("c"))
	var got []string
	m.ForEachTerm(func(term string) bool {
		got = append(got, term)
		return len(got) < 2
	})
	if !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("early stop: %v", got)
	}
}

func TestMultiWithDiskSegment(t *testing.T) {
	a := seg("x y", "y z")
	disk, err := OpenDiskIndex(writeTemp(t, seg("z w")))
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	m := NewMulti(a, disk)
	pl := m.Postings("z")
	want := []Posting{{Doc: 1, TF: 1}, {Doc: 2, TF: 1}}
	if !reflect.DeepEqual(pl, want) {
		t.Fatalf("postings(z) = %v", pl)
	}
	flat := m.Flatten()
	if flat.NumDocs() != 3 || flat.DF("z") != 2 {
		t.Fatalf("flatten over disk segment: docs=%d df=%d", flat.NumDocs(), flat.DF("z"))
	}
}
