package index

import (
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// randPostings builds a random strictly-increasing postings list with mixed
// integral and fractional TFs over a numDocs document space.
func randPostings(rng *rand.Rand, n int, numDocs uint32) []Posting {
	if uint32(n) > numDocs {
		n = int(numDocs)
	}
	docs := rng.Perm(int(numDocs))[:n]
	pl := make([]Posting, 0, n)
	for _, d := range docs {
		tf := float32(1 + rng.Intn(5))
		if rng.Intn(3) == 0 {
			tf = float32(rng.Intn(20)) / 4.0
		}
		pl = append(pl, Posting{Doc: DocID(d), TF: tf})
	}
	sortPostings(pl)
	return pl
}

func sortPostings(pl []Posting) {
	for i := 1; i < len(pl); i++ {
		for j := i; j > 0 && pl[j].Doc < pl[j-1].Doc; j-- {
			pl[j], pl[j-1] = pl[j-1], pl[j]
		}
	}
}

// TestBlockCodecRoundTrip: encodeBlocks → decodeAll must be the identity
// for list sizes around every block boundary.
func TestBlockCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sizes := []int{0, 1, 2, blockSize - 1, blockSize, blockSize + 1, 3 * blockSize, 10*blockSize + 17}
	for _, n := range sizes {
		pl := randPostings(rng, n, 1<<16)
		tl := encodeBlocks(pl)
		if tl.count != len(pl) {
			t.Fatalf("n=%d: count %d", n, tl.count)
		}
		if len(tl.blocks) != numBlocksFor(len(pl)) {
			t.Fatalf("n=%d: %d blocks", n, len(tl.blocks))
		}
		if err := tl.validate(1 << 16); err != nil {
			t.Fatalf("n=%d: validate: %v", n, err)
		}
		got, err := tl.decodeAll(1 << 16)
		if err != nil {
			t.Fatalf("n=%d: decodeAll: %v", n, err)
		}
		if len(got) == 0 && len(pl) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, pl) {
			t.Fatalf("n=%d: round trip mismatch", n)
		}
	}
}

// TestDecodeBlockRejectsCorrupt: truncated or tampered block bytes must fail
// with an error, never a panic or silent bad data.
func TestDecodeBlockRejectsCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pl := randPostings(rng, blockSize, 1<<12)
	tl := encodeBlocks(pl)
	data := tl.data[tl.blocks[0].off:tl.blocks[0].end]
	decode := func(d []byte) error {
		_, err := decodeBlock(d, nil, blockSize, 0, true, 1<<12, tl.blocks[0].last)
		return err
	}
	if err := decode(data); err != nil {
		t.Fatalf("pristine block failed: %v", err)
	}
	for cut := 1; cut <= len(data); cut += 7 {
		if err := decode(data[:len(data)-cut]); err == nil {
			t.Fatalf("truncation by %d accepted", cut)
		}
	}
	for i := 0; i < len(data); i += 3 {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x80
		// Any outcome but a panic is fine; most mutations must error, and
		// those that decode cannot have produced out-of-range docs.
		if pl2, err := decodeBlock(mut, nil, blockSize, 0, true, 1<<12, tl.blocks[0].last); err == nil {
			for _, p := range pl2 {
				if uint32(p.Doc) >= 1<<12 {
					t.Fatalf("mutation at %d decoded doc %d out of range", i, p.Doc)
				}
			}
		}
	}
	if _, err := decodeBlock(data, nil, blockSize+1, 0, true, 1<<12, 0); err == nil {
		t.Fatal("oversized posting count accepted")
	}
}

// TestCursorParity: memory and disk cursors must agree block-for-block, and
// PostingIter must reproduce the flat list through Next and SeekGE.
func TestCursorParity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := NewBuilder()
	numDocs := 4000
	for d := 0; d < numDocs; d++ {
		terms := []string{"common"}
		if rng.Intn(3) == 0 {
			terms = append(terms, "mid")
		}
		if rng.Intn(200) == 0 {
			terms = append(terms, "rare")
		}
		b.Add(terms)
	}
	idx := b.Build()
	path := filepath.Join(t.TempDir(), "idx.bin")
	writeIndex(t, idx, path)
	d, err := OpenDiskIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	for _, term := range []string{"common", "mid", "rare"} {
		want := idx.Postings(term)
		for _, src := range []Source{idx, d, NewMulti(idx), NewMulti(d)} {
			c := src.TermCursor(term)
			if c == nil {
				t.Fatalf("%T: nil cursor for %q", src, term)
			}
			if c.Count() != len(want) {
				t.Fatalf("%T %q: count %d want %d", src, term, c.Count(), len(want))
			}
			var got []Posting
			for c.NextBlock() {
				pl, err := c.Block()
				if err != nil {
					t.Fatalf("%T %q: %v", src, term, err)
				}
				if pl[len(pl)-1].Doc != c.BlockLast() {
					t.Fatalf("%T %q: block last %d, summary %d", src, term, pl[len(pl)-1].Doc, c.BlockLast())
				}
				got = append(got, pl...)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%T %q: cursor traversal differs from Postings", src, term)
			}
			// SeekGE from a fresh iterator at random targets.
			for trial := 0; trial < 50; trial++ {
				target := DocID(rng.Intn(numDocs + 10))
				it := NewPostingIter(src.TermCursor(term))
				wantIdx := 0
				for wantIdx < len(want) && want[wantIdx].Doc < target {
					wantIdx++
				}
				if ok := it.SeekGE(target); ok != (wantIdx < len(want)) {
					t.Fatalf("%T %q: SeekGE(%d) = %v, want %v", src, term, target, ok, wantIdx < len(want))
				} else if ok && it.Doc() != want[wantIdx].Doc {
					t.Fatalf("%T %q: SeekGE(%d) at doc %d, want %d", src, term, target, it.Doc(), want[wantIdx].Doc)
				}
			}
		}
		if idx.TermCursor("absent") != nil || d.TermCursor("absent") != nil || NewMulti(idx).TermCursor("absent") != nil {
			t.Fatal("absent term should yield nil cursor")
		}
	}
}

// TestDiskIndexReadsOnlyTouchedBlocks: a pruned query must fetch a small
// fraction of the bytes that materializing its terms' lists would read —
// the acceptance check that DiskIndex serves queries at block granularity.
func TestDiskIndexReadsOnlyTouchedBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	b := NewBuilder()
	for d := 0; d < 30000; d++ {
		terms := []string{"common"}
		if rng.Intn(500) == 0 {
			terms = append(terms, "rare")
		}
		b.Add(terms)
	}
	idx := b.Build()
	path := filepath.Join(t.TempDir(), "idx.bin")
	writeIndex(t, idx, path)
	d, err := OpenDiskIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	// Simulate the block-max access pattern: read every "rare" block, then
	// only the "common" blocks that cover one of rare's documents.
	rare := d.TermCursor("rare")
	var rareDocs []DocID
	for rare.NextBlock() {
		pl, err := rare.Block()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range pl {
			rareDocs = append(rareDocs, p.Doc)
		}
	}
	common := d.TermCursor("common")
	for _, doc := range rareDocs {
		if !common.SeekBlock(doc) {
			break
		}
		if _, err := common.Block(); err != nil {
			t.Fatal(err)
		}
	}
	touched := d.BytesRead()

	// Full materialization of both lists for comparison.
	if _, err := d.PostingsErr("common"); err != nil {
		t.Fatal(err)
	}
	if _, err := d.PostingsErr("rare"); err != nil {
		t.Fatal(err)
	}
	full := d.BytesRead() - touched
	if touched == 0 || full == 0 {
		t.Fatalf("degenerate byte counts: touched=%d full=%d", touched, full)
	}
	if touched*4 > full {
		t.Fatalf("touched blocks read %d bytes, whole lists are %d — expected < 1/4", touched, full)
	}
}

// FuzzBlockCodec: the block codec must round-trip arbitrary postings lists
// and reject corrupt block bytes without panicking.
func FuzzBlockCodec(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint16(3))
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}, uint16(300))
	f.Fuzz(func(t *testing.T, data []byte, n16 uint16) {
		const numDocs = 1 << 16
		// First interpretation: data drives a synthetic postings list that
		// must round-trip exactly.
		n := int(n16)
		pl := make([]Posting, 0, n)
		doc := uint32(0)
		for i := 0; i < n && len(data) >= 2; i++ {
			gap := uint32(data[i*2%len(data)])%97 + 1
			if i == 0 {
				gap-- // the first doc may be 0
			}
			doc += gap
			if doc >= numDocs {
				break
			}
			tf := float32(data[(i*2+1)%len(data)]) / 4.0
			if tf == 0 {
				tf = 1
			}
			pl = append(pl, Posting{Doc: DocID(doc), TF: tf})
		}
		tl := encodeBlocks(pl)
		got, err := tl.decodeAll(numDocs)
		if err != nil {
			t.Fatalf("decodeAll of encodeBlocks output: %v", err)
		}
		if len(got) != len(pl) {
			t.Fatalf("round trip length %d want %d", len(got), len(pl))
		}
		for i := range pl {
			if got[i] != pl[i] {
				t.Fatalf("posting %d: %v want %v", i, got[i], pl[i])
			}
		}
		if err := tl.validate(numDocs); err != nil {
			t.Fatalf("validate of encodeBlocks output: %v", err)
		}
		// Second interpretation: data as raw block bytes — must never
		// panic, and successful decodes must respect the doc-ID range.
		count := n % (blockSize + 2)
		if out, err := decodeBlock(data, nil, count, 0, true, numDocs, DocID(n16)); err == nil {
			for _, p := range out {
				if uint32(p.Doc) >= numDocs {
					t.Fatalf("decoded out-of-range doc %d", p.Doc)
				}
			}
		}
	})
}

// writeIndex serializes idx to path.
func writeIndex(t *testing.T, idx *Index, path string) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMaxBlockBytesBound pins the parser's block-size rejection guard to the
// real encoder maximum (two max-width varints per posting).
func TestMaxBlockBytesBound(t *testing.T) {
	if maxBlockBytes != 2*binary.MaxVarintLen64*blockSize {
		t.Fatalf("maxBlockBytes = %d", maxBlockBytes)
	}
	// A worst-case block (huge gaps, float TFs) must still fit the bound.
	pl := make([]Posting, blockSize)
	for i := range pl {
		pl[i] = Posting{Doc: DocID(i * 2000000), TF: 0.3}
	}
	tl := encodeBlocks(pl)
	if got := len(tl.data); got > maxBlockBytes {
		t.Fatalf("encoded block %d bytes > bound %d", got, maxBlockBytes)
	}
}
