package index

import (
	"bytes"
	"testing"
)

// FuzzReadIndex: arbitrary bytes must either parse into a consistent index
// or fail cleanly.
func FuzzReadIndex(f *testing.F) {
	idx := buildSmall()
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(indexMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Parsed indexes must be internally consistent.
		if got.NumDocs() < 0 || got.AvgDocLen() < 0 {
			t.Fatal("negative sizes")
		}
		var out bytes.Buffer
		if _, err := got.WriteTo(&out); err != nil {
			t.Fatalf("WriteTo after successful read: %v", err)
		}
	})
}
