package index

import (
	"sort"
)

// Multi is a Source over several index segments, the Lucene-style shape of
// incremental indexing: a built (possibly disk-backed) base plus freshly
// built segments. Document IDs are remapped by concatenation — segment i's
// documents follow all documents of segments 0..i-1.
type Multi struct {
	parts    []Source
	bases    []DocID // bases[i] = first DocID of parts[i]
	numDocs  int
	totalLen float64
}

// NewMulti combines segments in order. Nested Multis are flattened so long
// segment chains stay one level deep.
func NewMulti(parts ...Source) *Multi {
	m := &Multi{}
	var add func(s Source)
	add = func(s Source) {
		if inner, ok := s.(*Multi); ok {
			for _, p := range inner.parts {
				add(p)
			}
			return
		}
		m.bases = append(m.bases, DocID(m.numDocs))
		m.parts = append(m.parts, s)
		m.numDocs += s.NumDocs()
		// Re-accumulate totalLen as one float64 fold in document order —
		// bit-identical to what a single Builder over the concatenated
		// corpus computes — so AvgDocLen (hence BM25 scores) cannot drift
		// between a segmented and a single-segment build. The O(numDocs)
		// walk happens once per refresh/swap, never on the query path.
		for d, n := 0, s.NumDocs(); d < n; d++ {
			m.totalLen += s.DocLen(DocID(d))
		}
	}
	for _, p := range parts {
		add(p)
	}
	return m
}

// NumDocs implements Source.
func (m *Multi) NumDocs() int { return m.numDocs }

// NumSegments returns the number of flattened segments.
func (m *Multi) NumSegments() int { return len(m.parts) }

// DocLen implements Source.
func (m *Multi) DocLen(d DocID) float64 {
	i := m.segmentOf(d)
	return m.parts[i].DocLen(d - m.bases[i])
}

// segmentOf locates the segment containing d.
func (m *Multi) segmentOf(d DocID) int {
	return sort.Search(len(m.bases), func(i int) bool { return m.bases[i] > d }) - 1
}

// AvgDocLen implements Source.
func (m *Multi) AvgDocLen() float64 {
	if m.numDocs == 0 {
		return 0
	}
	return m.totalLen / float64(m.numDocs)
}

// DF implements Source.
func (m *Multi) DF(term string) int {
	df := 0
	for _, p := range m.parts {
		df += p.DF(term)
	}
	return df
}

// Postings implements Source: per-segment lists are concatenated with their
// DocID bases applied. Segments own disjoint ascending DocID ranges, so the
// concatenation is already sorted.
func (m *Multi) Postings(term string) []Posting {
	var out []Posting
	for i, p := range m.parts {
		pl := p.Postings(term)
		if len(pl) == 0 {
			continue
		}
		base := m.bases[i]
		if out == nil {
			out = make([]Posting, 0, len(pl))
		}
		for _, e := range pl {
			out = append(out, Posting{Doc: e.Doc + base, TF: e.TF})
		}
	}
	return out
}

// ForEachTerm implements term enumeration over the union of segments, in
// sorted order, visiting each term once.
func (m *Multi) ForEachTerm(fn func(term string) bool) {
	seen := map[string]bool{}
	var terms []string
	for _, p := range m.parts {
		p.ForEachTerm(func(t string) bool {
			if !seen[t] {
				seen[t] = true
				terms = append(terms, t)
			}
			return true
		})
	}
	sort.Strings(terms)
	for _, t := range terms {
		if !fn(t) {
			return
		}
	}
}

// TermCursor implements Source: a cursor that walks each segment's blocks
// in order with the segment's DocID base applied. ForEachTerm's sorted
// union and the ascending bases keep the global block sequence sorted.
// Cursors come from a pool (pool.go); ReleaseCursor hands them — and their
// per-segment sub-cursors — back.
func (m *Multi) TermCursor(term string) Cursor {
	c := multiCursorPool.Get().(*multiCursor)
	c.pi, c.count, c.maxTF = 0, 0, 0
	for i, p := range m.parts {
		sc := p.TermCursor(term)
		if sc == nil {
			continue
		}
		if sc.Count() == 0 {
			ReleaseCursor(sc)
			continue
		}
		c.parts = append(c.parts, sc)
		c.bases = append(c.bases, m.bases[i])
		c.count += sc.Count()
		if sc.MaxTF() > c.maxTF {
			c.maxTF = sc.MaxTF()
		}
	}
	if len(c.parts) == 0 {
		multiCursorPool.Put(c)
		return nil
	}
	return c
}

// multiCursor concatenates per-segment cursors, rebasing doc IDs.
type multiCursor struct {
	parts []Cursor
	bases []DocID
	pi    int
	count int
	maxTF float32
	buf   []Posting
}

func (c *multiCursor) Count() int          { return c.count }
func (c *multiCursor) MaxTF() float32      { return c.maxTF }
func (c *multiCursor) BlockLen() int       { return c.parts[c.pi].BlockLen() }
func (c *multiCursor) BlockLast() DocID    { return c.parts[c.pi].BlockLast() + c.bases[c.pi] }
func (c *multiCursor) BlockMaxTF() float32 { return c.parts[c.pi].BlockMaxTF() }

func (c *multiCursor) NextBlock() bool {
	for c.pi < len(c.parts) {
		if c.parts[c.pi].NextBlock() {
			return true
		}
		c.pi++
	}
	return false
}

func (c *multiCursor) SeekBlock(d DocID) bool {
	for c.pi < len(c.parts) {
		base := c.bases[c.pi]
		rel := DocID(0)
		if d > base {
			rel = d - base
		}
		if c.parts[c.pi].SeekBlock(rel) {
			return true
		}
		c.pi++
	}
	return false
}

// Block decodes the current segment block and rebases its doc IDs into a
// cursor-owned buffer.
func (c *multiCursor) Block() ([]Posting, error) {
	pl, err := c.parts[c.pi].Block()
	if err != nil {
		return nil, err
	}
	if cap(c.buf) < len(pl) {
		c.buf = make([]Posting, 0, blockSize)
	}
	c.buf = c.buf[:0]
	base := c.bases[c.pi]
	for _, p := range pl {
		c.buf = append(c.buf, Posting{Doc: p.Doc + base, TF: p.TF})
	}
	return c.buf, nil
}

// Flatten merges all segments into a single in-memory Index (the compaction
// step of segmented indexing). Document IDs are preserved, and term IDs come
// out canonical because ForEachTerm enumerates in sorted order.
func (m *Multi) Flatten() *Index {
	idx := &Index{
		terms:    make(map[string]TermID),
		docLen:   make([]float32, 0, m.numDocs),
		totalLen: m.totalLen,
	}
	for d := 0; d < m.numDocs; d++ {
		idx.docLen = append(idx.docLen, float32(m.DocLen(DocID(d))))
	}
	m.ForEachTerm(func(t string) bool {
		idx.terms[t] = TermID(len(idx.lists))
		idx.lists = append(idx.lists, encodeBlocks(m.Postings(t)))
		return true
	})
	return idx
}

// ForEachTerm enumerates the in-memory index's terms in sorted order.
func (idx *Index) ForEachTerm(fn func(term string) bool) {
	terms := make([]string, 0, len(idx.terms))
	for t := range idx.terms {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	for _, t := range terms {
		if !fn(t) {
			return
		}
	}
}

// ForEachTerm enumerates the disk index's terms in sorted order.
func (d *DiskIndex) ForEachTerm(fn func(term string) bool) {
	terms := make([]string, 0, len(d.dir))
	for t := range d.dir {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	for _, t := range terms {
		if !fn(t) {
			return
		}
	}
}

var _ Source = (*Multi)(nil)
