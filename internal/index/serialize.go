package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// Binary index format v3 (little endian):
//
//	magic   "NLIDX3\n"
//	uint32  numDocs
//	float32 docLen per doc
//	uint32  numTerms
//	directory, one entry per term (sorted lexicographically):
//	  uvarint len(term), term bytes
//	  uvarint postings count
//	  per block (ceil(count/128) blocks; counts are implied — every block
//	  holds 128 postings except the last):
//	    uvarint last-doc delta (first block: absolute last doc ID; later
//	            blocks: increase over the previous block's last)
//	    uvarint encodeTF(max TF within the block)
//	    uvarint block data length in bytes
//	block data, concatenated in directory order:
//	  per posting: uvarint docID delta (list-first = docID; gaps thereafter),
//	               tf: uvarint (v<<1|1) when tf is a small integer,
//	                   uvarint (float32bits<<1) otherwise
//
// Doc-gap + varint compression shrinks postings ~3-4x versus fixed-width
// encoding. The directory carries each block's summary (last doc, max TF,
// byte length), so a reader can compute per-block score upper bounds and
// fetch exactly the blocks a query touches: DiskIndex issues one ReadAt per
// decoded block and never reads a whole list.
//
// v2 stored one flat blob per term, which forced whole-list reads; v3 is not
// backward compatible, and readers reject the old magic.

const indexMagic = "NLIDX3\n"

// WriteTo serializes the index. Build canonicalizes term IDs and document
// folding order, so the output is byte-identical across builds of the same
// corpus.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	le := func(data any) error { return binary.Write(cw, binary.LittleEndian, data) }
	if _, err := io.WriteString(cw, indexMagic); err != nil {
		return cw.n, err
	}
	if err := le(uint32(len(idx.docLen))); err != nil {
		return cw.n, err
	}
	if err := le(idx.docLen); err != nil {
		return cw.n, err
	}
	terms := make([]string, 0, len(idx.terms))
	for t := range idx.terms {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	if err := le(uint32(len(terms))); err != nil {
		return cw.n, err
	}
	var varintBuf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(varintBuf[:], v)
		_, err := cw.Write(varintBuf[:n])
		return err
	}
	for _, t := range terms {
		tl := &idx.lists[idx.terms[t]]
		if err := writeUvarint(uint64(len(t))); err != nil {
			return cw.n, err
		}
		if _, err := io.WriteString(cw, t); err != nil {
			return cw.n, err
		}
		if err := writeUvarint(uint64(tl.count)); err != nil {
			return cw.n, err
		}
		prevLast := DocID(0)
		for bi, bm := range tl.blocks {
			delta := uint64(bm.last)
			if bi > 0 {
				delta = uint64(bm.last - prevLast)
			}
			prevLast = bm.last
			if err := writeUvarint(delta); err != nil {
				return cw.n, err
			}
			if err := writeUvarint(encodeTF(bm.maxTF)); err != nil {
				return cw.n, err
			}
			if err := writeUvarint(uint64(bm.end - bm.off)); err != nil {
				return cw.n, err
			}
		}
	}
	for _, t := range terms {
		if _, err := cw.Write(idx.lists[idx.terms[t]].data); err != nil {
			return cw.n, err
		}
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// encodeTF packs a term frequency: small integral frequencies (the common
// case by far) go as (v<<1)|1; anything else carries raw float32 bits.
func encodeTF(tf float32) uint64 {
	if tf >= 0 && tf < 1<<30 && tf == float32(uint32(tf)) {
		return uint64(uint32(tf))<<1 | 1
	}
	return uint64(math.Float32bits(tf)) << 1
}

func decodeTF(v uint64) float32 {
	if v&1 == 1 {
		return float32(v >> 1)
	}
	return math.Float32frombits(uint32(v >> 1))
}

// ReadIndex parses an index written by WriteTo into memory, fully validating
// every block (decode round-trip, monotone doc IDs, summary cross-checks).
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	hdr, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	idx := &Index{
		terms:  make(map[string]TermID, len(hdr.terms)),
		lists:  make([]termList, len(hdr.terms)),
		docLen: hdr.docLens,
	}
	for _, l := range hdr.docLens {
		idx.totalLen += float64(l)
	}
	for i, te := range hdr.terms {
		data := make([]byte, te.dataLen())
		if _, err := io.ReadFull(br, data); err != nil {
			return nil, fmt.Errorf("index: postings of %q: %w", te.term, err)
		}
		tl := termList{count: te.count, maxTF: te.maxTF, blocks: te.blocks, data: data}
		if err := tl.validate(uint32(len(hdr.docLens))); err != nil {
			return nil, fmt.Errorf("index: term %q: %w", te.term, err)
		}
		idx.terms[te.term] = TermID(i)
		idx.lists[i] = tl
	}
	return idx, nil
}

// header is the parsed directory shared by ReadIndex and DiskIndex.
type header struct {
	docLens []float32
	terms   []termEntry
}

// termEntry is one directory row: the term, its block summaries (offsets
// relative to the term's own data, as in termList), and where the term's
// data starts within the file's postings area.
type termEntry struct {
	term   string
	count  int
	maxTF  float32
	blocks []blockMeta
	offset int64 // start of this term's data within the postings area
}

// dataLen returns the total encoded size of the term's blocks.
func (te *termEntry) dataLen() int64 {
	if len(te.blocks) == 0 {
		return 0
	}
	return int64(te.blocks[len(te.blocks)-1].end)
}

func readHeader(br *bufio.Reader) (*header, error) {
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("index: bad magic %q", magic)
	}
	var nDocs uint32
	if err := binary.Read(br, binary.LittleEndian, &nDocs); err != nil {
		return nil, fmt.Errorf("index: doc count: %w", err)
	}
	if nDocs > 1<<28 {
		return nil, fmt.Errorf("index: implausible doc count %d", nDocs)
	}
	h := &header{docLens: make([]float32, nDocs)}
	if err := binary.Read(br, binary.LittleEndian, h.docLens); err != nil {
		return nil, fmt.Errorf("index: doc lengths: %w", err)
	}
	for _, l := range h.docLens {
		if l < 0 || math.IsNaN(float64(l)) {
			return nil, fmt.Errorf("index: invalid doc length %v", l)
		}
	}
	var nTerms uint32
	if err := binary.Read(br, binary.LittleEndian, &nTerms); err != nil {
		return nil, fmt.Errorf("index: term count: %w", err)
	}
	if nTerms > 1<<28 {
		return nil, fmt.Errorf("index: implausible term count %d", nTerms)
	}
	offset := int64(0)
	prev := ""
	for i := uint32(0); i < nTerms; i++ {
		tl, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: term %d length: %w", i, err)
		}
		if tl > 1<<20 {
			return nil, fmt.Errorf("index: term length %d too large", tl)
		}
		buf := make([]byte, tl)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		term := string(buf)
		if i > 0 && term <= prev {
			return nil, fmt.Errorf("index: directory not sorted at %q", term)
		}
		prev = term
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if count > uint64(nDocs) {
			return nil, fmt.Errorf("index: term %q has %d postings for %d docs", term, count, nDocs)
		}
		te := termEntry{term: term, count: int(count), offset: offset}
		te.blocks = make([]blockMeta, numBlocksFor(int(count)))
		prevLast := DocID(0)
		dataOff := uint32(0)
		for bi := range te.blocks {
			lastDelta, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("index: term %q block %d last: %w", term, bi, err)
			}
			if bi > 0 && lastDelta == 0 {
				return nil, fmt.Errorf("index: term %q block last docs not increasing", term)
			}
			last := uint64(prevLast) + lastDelta
			if last >= uint64(nDocs) {
				return nil, fmt.Errorf("index: term %q block last doc %d out of range", term, last)
			}
			maxRaw, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("index: term %q block %d max tf: %w", term, bi, err)
			}
			maxTF := decodeTF(maxRaw)
			if maxTF < 0 || math.IsNaN(float64(maxTF)) {
				return nil, fmt.Errorf("index: term %q invalid block max tf %v", term, maxTF)
			}
			blen, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("index: term %q block %d length: %w", term, bi, err)
			}
			if blen == 0 || blen > maxBlockBytes {
				return nil, fmt.Errorf("index: term %q block length %d out of range", term, blen)
			}
			te.blocks[bi] = blockMeta{
				last:  DocID(last),
				maxTF: maxTF,
				off:   dataOff,
				end:   dataOff + uint32(blen),
			}
			prevLast = DocID(last)
			dataOff += uint32(blen)
			if maxTF > te.maxTF {
				te.maxTF = maxTF
			}
		}
		h.terms = append(h.terms, te)
		offset += int64(dataOff)
	}
	return h, nil
}

// countingWriter tracks bytes written for the io.WriterTo contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
