package index

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
)

// Binary index format v2 (little endian):
//
//	magic   "NLIDX2\n"
//	uint32  numDocs
//	float32 docLen per doc
//	uint32  numTerms
//	directory, one entry per term (sorted lexicographically):
//	  uvarint len(term), term bytes
//	  uvarint postings count
//	  uvarint postings block length in bytes
//	postings blocks, concatenated in directory order:
//	  per posting: uvarint docID delta (first = docID; gaps thereafter),
//	               tf: uvarint (v<<1|1) when tf is a small integer,
//	                   uvarint (float32bits<<1) otherwise
//
// Doc-gap + varint compression shrinks postings ~3-4x versus fixed-width
// encoding, and the directory gives DiskIndex O(1) random access to any
// term's block without loading the postings into memory.

const indexMagic = "NLIDX2\n"

// WriteTo serializes the index. The output is byte-stable for a given
// index.
func (idx *Index) WriteTo(w io.Writer) (int64, error) {
	cw := &countingWriter{w: bufio.NewWriter(w)}
	le := func(data any) error { return binary.Write(cw, binary.LittleEndian, data) }
	if _, err := io.WriteString(cw, indexMagic); err != nil {
		return cw.n, err
	}
	if err := le(uint32(len(idx.docLen))); err != nil {
		return cw.n, err
	}
	if err := le(idx.docLen); err != nil {
		return cw.n, err
	}
	terms := make([]string, 0, len(idx.terms))
	for t := range idx.terms {
		terms = append(terms, t)
	}
	sort.Strings(terms)
	if err := le(uint32(len(terms))); err != nil {
		return cw.n, err
	}
	// Encode every postings block up front so the directory can carry block
	// lengths.
	blocks := make([][]byte, len(terms))
	for i, t := range terms {
		blocks[i] = encodePostings(idx.postings[idx.terms[t]])
	}
	var varintBuf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(varintBuf[:], v)
		_, err := cw.Write(varintBuf[:n])
		return err
	}
	for i, t := range terms {
		if err := writeUvarint(uint64(len(t))); err != nil {
			return cw.n, err
		}
		if _, err := io.WriteString(cw, t); err != nil {
			return cw.n, err
		}
		if err := writeUvarint(uint64(len(idx.postings[idx.terms[t]]))); err != nil {
			return cw.n, err
		}
		if err := writeUvarint(uint64(len(blocks[i]))); err != nil {
			return cw.n, err
		}
	}
	for _, b := range blocks {
		if _, err := cw.Write(b); err != nil {
			return cw.n, err
		}
	}
	return cw.n, cw.w.(*bufio.Writer).Flush()
}

// encodePostings delta-varint encodes one postings list.
func encodePostings(pl []Posting) []byte {
	var buf [binary.MaxVarintLen64]byte
	out := make([]byte, 0, len(pl)*3)
	prev := uint32(0)
	for i, p := range pl {
		delta := uint32(p.Doc)
		if i > 0 {
			delta = uint32(p.Doc) - prev
		}
		prev = uint32(p.Doc)
		n := binary.PutUvarint(buf[:], uint64(delta))
		out = append(out, buf[:n]...)
		n = binary.PutUvarint(buf[:], encodeTF(p.TF))
		out = append(out, buf[:n]...)
	}
	return out
}

// encodeTF packs a term frequency: small integral frequencies (the common
// case by far) go as (v<<1)|1; anything else carries raw float32 bits.
func encodeTF(tf float32) uint64 {
	if tf >= 0 && tf < 1<<30 && tf == float32(uint32(tf)) {
		return uint64(uint32(tf))<<1 | 1
	}
	return uint64(math.Float32bits(tf)) << 1
}

func decodeTF(v uint64) float32 {
	if v&1 == 1 {
		return float32(v >> 1)
	}
	return math.Float32frombits(uint32(v >> 1))
}

// decodePostings reverses encodePostings; count postings are expected.
func decodePostings(data []byte, count int, numDocs uint32) ([]Posting, error) {
	out := make([]Posting, 0, count)
	pos := 0
	prev := uint32(0)
	for i := 0; i < count; i++ {
		delta, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("index: truncated posting %d", i)
		}
		pos += n
		doc := uint32(delta)
		if i > 0 {
			doc = prev + uint32(delta)
			if uint32(delta) == 0 {
				return nil, fmt.Errorf("index: postings not strictly increasing")
			}
		}
		if doc >= numDocs {
			return nil, fmt.Errorf("index: posting doc %d out of range", doc)
		}
		prev = doc
		tfRaw, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("index: truncated tf %d", i)
		}
		pos += n
		out = append(out, Posting{Doc: DocID(doc), TF: decodeTF(tfRaw)})
	}
	if pos != len(data) {
		return nil, fmt.Errorf("index: %d trailing bytes in postings block", len(data)-pos)
	}
	return out, nil
}

// ReadIndex parses an index written by WriteTo into memory.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	hdr, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	idx := &Index{
		terms:  make(map[string]TermID, len(hdr.terms)),
		docLen: hdr.docLens,
	}
	for _, l := range hdr.docLens {
		idx.totalLen += float64(l)
	}
	idx.postings = make([][]Posting, len(hdr.terms))
	for i, te := range hdr.terms {
		block := make([]byte, te.blockLen)
		if _, err := io.ReadFull(br, block); err != nil {
			return nil, fmt.Errorf("index: postings of %q: %w", te.term, err)
		}
		pl, err := decodePostings(block, te.count, uint32(len(hdr.docLens)))
		if err != nil {
			return nil, fmt.Errorf("index: term %q: %w", te.term, err)
		}
		idx.terms[te.term] = TermID(i)
		idx.postings[i] = pl
	}
	return idx, nil
}

// header is the parsed directory shared by ReadIndex and DiskIndex.
type header struct {
	docLens []float32
	terms   []termEntry
}

type termEntry struct {
	term     string
	count    int
	blockLen int64
	offset   int64 // set by the caller while accumulating
}

func readHeader(br *bufio.Reader) (*header, error) {
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("index: reading magic: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("index: bad magic %q", magic)
	}
	var nDocs uint32
	if err := binary.Read(br, binary.LittleEndian, &nDocs); err != nil {
		return nil, fmt.Errorf("index: doc count: %w", err)
	}
	if nDocs > 1<<28 {
		return nil, fmt.Errorf("index: implausible doc count %d", nDocs)
	}
	h := &header{docLens: make([]float32, nDocs)}
	if err := binary.Read(br, binary.LittleEndian, h.docLens); err != nil {
		return nil, fmt.Errorf("index: doc lengths: %w", err)
	}
	for _, l := range h.docLens {
		if l < 0 || math.IsNaN(float64(l)) {
			return nil, fmt.Errorf("index: invalid doc length %v", l)
		}
	}
	var nTerms uint32
	if err := binary.Read(br, binary.LittleEndian, &nTerms); err != nil {
		return nil, fmt.Errorf("index: term count: %w", err)
	}
	if nTerms > 1<<28 {
		return nil, fmt.Errorf("index: implausible term count %d", nTerms)
	}
	offset := int64(0)
	prev := ""
	for i := uint32(0); i < nTerms; i++ {
		tl, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("index: term %d length: %w", i, err)
		}
		if tl > 1<<20 {
			return nil, fmt.Errorf("index: term length %d too large", tl)
		}
		buf := make([]byte, tl)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		term := string(buf)
		if i > 0 && term <= prev {
			return nil, fmt.Errorf("index: directory not sorted at %q", term)
		}
		prev = term
		count, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if count > uint64(nDocs) {
			return nil, fmt.Errorf("index: term %q has %d postings for %d docs", term, count, nDocs)
		}
		blockLen, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, err
		}
		if blockLen > 1<<32 {
			return nil, fmt.Errorf("index: block length %d too large", blockLen)
		}
		h.terms = append(h.terms, termEntry{
			term:     term,
			count:    int(count),
			blockLen: int64(blockLen),
			offset:   offset,
		})
		offset += int64(blockLen)
	}
	return h, nil
}

// countingWriter tracks bytes written for the io.WriterTo contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
