package index

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestSerializeDeterministic: two builds of the same corpus must serialize
// byte-identically. This pins both determinism fixes — Build canonicalizes
// TermIDs in sorted term order, and AddWeighted folds a document's term
// weights in sorted order so the float32 docLen sum (addition-order
// sensitive) comes out the same regardless of map iteration. Reproducible
// bytes make snapshot CRCs comparable across hosts for ops diffing.
func TestSerializeDeterministic(t *testing.T) {
	build := func() *Index {
		// Fixed corpus, but wide documents so map-iteration order would
		// shuffle both TermID assignment and docLen summation if either
		// were order-sensitive.
		rng := rand.New(rand.NewSource(42))
		b := NewBuilder()
		for d := 0; d < 300; d++ {
			counts := make(map[string]float32)
			for i := 0; i < 40; i++ {
				counts[string(rune('a'+rng.Intn(26)))+string(rune('a'+rng.Intn(26)))] += float32(rng.Intn(12)) / 4.0
			}
			b.AddWeighted(counts)
		}
		return b.Build()
	}
	var first []byte
	for run := 0; run < 5; run++ {
		var buf bytes.Buffer
		if _, err := build().WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		if run == 0 {
			first = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), first) {
			t.Fatalf("run %d serialized differently (%d vs %d bytes)", run, buf.Len(), len(first))
		}
	}
}
