package index

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

func TestIndexRoundTrip(t *testing.T) {
	idx := buildSmall()
	var buf bytes.Buffer
	n, err := idx.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadIndex(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != idx.NumDocs() || got.NumTerms() != idx.NumTerms() {
		t.Fatalf("sizes: %d/%d vs %d/%d", got.NumDocs(), got.NumTerms(), idx.NumDocs(), idx.NumTerms())
	}
	if got.AvgDocLen() != idx.AvgDocLen() {
		t.Fatalf("avg len %v vs %v", got.AvgDocLen(), idx.AvgDocLen())
	}
	for _, term := range []string{"taliban", "lahore", "cricket", "absent"} {
		if !reflect.DeepEqual(got.Postings(term), idx.Postings(term)) {
			t.Fatalf("postings(%s) differ: %v vs %v", term, got.Postings(term), idx.Postings(term))
		}
	}
}

func TestIndexSerializationStable(t *testing.T) {
	idx := buildSmall()
	var a, b bytes.Buffer
	if _, err := idx.WriteTo(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := idx.WriteTo(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("serialization not byte-stable")
	}
	// Round trip re-serializes identically.
	got, err := ReadIndex(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var c bytes.Buffer
	if _, err := got.WriteTo(&c); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Fatal("round trip not byte-stable")
	}
}

func TestReadIndexRejectsCorruption(t *testing.T) {
	idx := buildSmall()
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte { b = clone(b); b[0] = 'X'; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, c := range cases {
		if _, err := ReadIndex(bytes.NewReader(c.mutate(data))); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Implausible doc count.
	huge := clone(data)
	copy(huge[len(indexMagic):], []byte{0xff, 0xff, 0xff, 0xff})
	if _, err := ReadIndex(bytes.NewReader(huge)); err == nil {
		t.Error("huge doc count: expected error")
	}
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

func TestEmptyIndexRoundTrip(t *testing.T) {
	idx := NewBuilder().Build()
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != 0 || got.NumTerms() != 0 {
		t.Fatal("empty index round trip broken")
	}
}

func TestLargeIndexRoundTrip(t *testing.T) {
	b := NewBuilder()
	for i := 0; i < 500; i++ {
		var terms []string
		for j := 0; j <= i%17; j++ {
			terms = append(terms, strings.Repeat("t", j+1))
		}
		b.Add(terms)
	}
	idx := b.Build()
	var buf bytes.Buffer
	if _, err := idx.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(io.LimitReader(&buf, 1<<30))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDocs() != 500 || got.NumTerms() != idx.NumTerms() {
		t.Fatalf("sizes wrong: %d docs %d terms", got.NumDocs(), got.NumTerms())
	}
}
