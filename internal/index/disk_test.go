package index

import (
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"sync"
	"testing"
)

// writeTemp serializes idx to a temp file and returns the path.
func writeTemp(t *testing.T, idx *Index) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "test.idx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := idx.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiskIndexMatchesMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := NewBuilder()
	vocab := make([]string, 30)
	for i := range vocab {
		vocab[i] = "t" + strconv.Itoa(i)
	}
	for d := 0; d < 200; d++ {
		var terms []string
		for i := 0; i <= rng.Intn(12); i++ {
			terms = append(terms, vocab[rng.Intn(len(vocab))])
		}
		b.Add(terms)
	}
	// One fractional-weight document exercises the float TF encoding.
	b.AddWeighted(map[string]float32{"t0": 2.5, "frac": 0.25})
	idx := b.Build()
	disk, err := OpenDiskIndex(writeTemp(t, idx))
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	if disk.NumDocs() != idx.NumDocs() || disk.NumTerms() != idx.NumTerms() {
		t.Fatalf("sizes: %d/%d vs %d/%d", disk.NumDocs(), disk.NumTerms(), idx.NumDocs(), idx.NumTerms())
	}
	if disk.AvgDocLen() != idx.AvgDocLen() {
		t.Fatalf("avg len %v vs %v", disk.AvgDocLen(), idx.AvgDocLen())
	}
	for _, term := range append(vocab, "frac", "absent") {
		if disk.DF(term) != idx.DF(term) {
			t.Fatalf("DF(%s): %d vs %d", term, disk.DF(term), idx.DF(term))
		}
		got := disk.Postings(term)
		want := idx.Postings(term)
		if len(got) != len(want) {
			t.Fatalf("postings(%s) lengths %d vs %d", term, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("postings(%s)[%d] = %v, want %v", term, i, got[i], want[i])
			}
		}
	}
	for d := 0; d < idx.NumDocs(); d++ {
		if disk.DocLen(DocID(d)) != idx.DocLen(DocID(d)) {
			t.Fatalf("DocLen(%d) differs", d)
		}
	}
}

func TestDiskIndexConcurrentReads(t *testing.T) {
	idx := buildSmall()
	disk, err := OpenDiskIndex(writeTemp(t, idx))
	if err != nil {
		t.Fatal(err)
	}
	defer disk.Close()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				a := disk.Postings("taliban")
				b := idx.Postings("taliban")
				if !reflect.DeepEqual(a, b) {
					panic("concurrent read mismatch")
				}
			}
		}()
	}
	wg.Wait()
}

func TestDiskIndexErrors(t *testing.T) {
	if _, err := OpenDiskIndex("/nonexistent/idx"); err == nil {
		t.Fatal("missing file must fail")
	}
	// Truncated file.
	idx := buildSmall()
	path := writeTemp(t, idx)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	short := filepath.Join(t.TempDir(), "short.idx")
	if err := os.WriteFile(short, data[:len(data)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDiskIndex(short); err == nil {
		t.Fatal("truncated header must fail to open")
	}
	// Truncated postings area: opens (directory intact) but reads fail.
	almost := filepath.Join(t.TempDir(), "almost.idx")
	if err := os.WriteFile(almost, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDiskIndex(almost)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	failed := false
	for term := range d.dir {
		if _, err := d.PostingsErr(term); err != nil {
			failed = true
		}
	}
	if !failed {
		t.Fatal("no term read failed on truncated postings")
	}
}

func TestEncodeTFRoundTrip(t *testing.T) {
	for _, tf := range []float32{0, 1, 2, 3, 255, 1 << 20, 0.5, 2.5, 0.125, 1e9, 1e-9} {
		if got := decodeTF(encodeTF(tf)); got != tf {
			t.Fatalf("tf %v round-tripped to %v", tf, got)
		}
	}
}
