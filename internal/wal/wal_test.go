package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// collect replays l and returns every payload.
func collect(t *testing.T, l *Log) [][]byte {
	t.Helper()
	var got [][]byte
	n, err := l.Replay(func(p []byte) error {
		got = append(got, bytes.Clone(p))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != len(got) {
		t.Fatalf("Replay count %d, delivered %d", n, len(got))
	}
	return got
}

func openT(t *testing.T, dir string) *Log {
	t.Helper()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

// TestEmptyLog: opening a fresh directory yields a usable, empty log, and
// reopening it without writes stays empty.
func TestEmptyLog(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	if l.Records() != 0 {
		t.Fatalf("fresh log reports %d records", l.Records())
	}
	if got := collect(t, l); len(got) != 0 {
		t.Fatalf("fresh log replayed %d records", len(got))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l = openT(t, dir)
	defer l.Close()
	if got := collect(t, l); len(got) != 0 {
		t.Fatalf("reopened empty log replayed %d records", len(got))
	}
}

// TestAppendReplayRoundTrip: appended payloads come back in order and
// byte-identical across a reopen.
func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	var want [][]byte
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf("record-%03d-%s", i, string(make([]byte, i*7))))
		want = append(want, p)
		if err := l.Append(p); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	l = openT(t, dir)
	defer l.Close()
	got := collect(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

// TestEmptyPayload: zero-length payloads are legal records and replay as
// empty (not dropped).
func TestEmptyPayload(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	if err := l.Append(nil); err != nil {
		t.Fatalf("Append(nil): %v", err)
	}
	if err := l.Append([]byte("x")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	l.Close()
	l = openT(t, dir)
	defer l.Close()
	got := collect(t, l)
	if len(got) != 2 || len(got[0]) != 0 || string(got[1]) != "x" {
		t.Fatalf("unexpected replay %q", got)
	}
}

// TestTornTailRepair: truncating the final record at every possible byte
// boundary is repaired on reopen — earlier records survive, the torn one
// is dropped, and the log accepts new appends cleanly afterwards.
func TestTornTailRepair(t *testing.T) {
	// Build a reference log once to learn the file layout.
	recs := [][]byte{[]byte("alpha"), []byte("beta-beta"), []byte("gamma-gamma-gamma")}
	ref := t.TempDir()
	l := openT(t, ref)
	var sizes []int64
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, headerSize+int64(len(r)))
	}
	l.Close()
	seg := filepath.Join(ref, segName(1))
	full, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	lastStart := sizes[0] + sizes[1]
	for cut := lastStart + 1; cut < int64(len(full)); cut++ {
		cut := cut
		t.Run(fmt.Sprintf("cut=%d", cut), func(t *testing.T) {
			dir := t.TempDir()
			if err := os.WriteFile(filepath.Join(dir, segName(1)), full[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			l := openT(t, dir)
			defer l.Close()
			got := collect(t, l)
			if len(got) != 2 {
				t.Fatalf("replayed %d records after torn tail, want 2", len(got))
			}
			// The log must keep working at the repaired boundary.
			if err := l.Append([]byte("delta")); err != nil {
				t.Fatalf("Append after repair: %v", err)
			}
			if got := collect(t, l); len(got) != 3 || string(got[2]) != "delta" {
				t.Fatalf("post-repair replay %q", got)
			}
		})
	}
}

// TestBitflipIsCorrupt: flipping one payload bit of a fully-written record
// must fail Open with ErrCorrupt — never be dropped as a torn tail — for
// both a middle record and the final one.
func TestBitflipIsCorrupt(t *testing.T) {
	for _, victim := range []int{0, 2} {
		victim := victim
		t.Run(fmt.Sprintf("record=%d", victim), func(t *testing.T) {
			dir := t.TempDir()
			l := openT(t, dir)
			var offs []int64
			off := int64(0)
			for i := 0; i < 3; i++ {
				p := []byte(fmt.Sprintf("payload-%d", i))
				offs = append(offs, off)
				off += headerSize + int64(len(p))
				if err := l.Append(p); err != nil {
					t.Fatal(err)
				}
			}
			l.Close()
			seg := filepath.Join(dir, segName(1))
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			data[offs[victim]+headerSize] ^= 0x40 // first payload byte
			if err := os.WriteFile(seg, data, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("Open after bitflip: %v, want ErrCorrupt", err)
			}
		})
	}
}

// TestAbsurdLengthIsCorrupt: a header claiming a record larger than
// MaxRecord is corruption, not a torn tail.
func TestAbsurdLengthIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], MaxRecord+1)
	if err := os.WriteFile(filepath.Join(dir, segName(1)), hdr[:], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open: %v, want ErrCorrupt", err)
	}
}

// TestRecordSpansReadBuffer: records larger than the replay read buffer
// round-trip intact (the framing reader must handle payloads spanning
// many buffered reads).
func TestRecordSpansReadBuffer(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	big := make([]byte, replayBufSize*3+17)
	for i := range big {
		big[i] = byte(i * 131)
	}
	if err := l.Append([]byte("before")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(big); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("after")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l = openT(t, dir)
	defer l.Close()
	got := collect(t, l)
	if len(got) != 3 || !bytes.Equal(got[1], big) || string(got[2]) != "after" {
		t.Fatalf("big-record replay wrong: %d records", len(got))
	}
}

// TestRotatePrune: rotation starts a new segment, replay still sees both
// generations, and Prune keeps only the active segment's records.
func TestRotatePrune(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	defer l.Close()
	if err := l.Append([]byte("old-1")); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("old-2")); err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatalf("Rotate: %v", err)
	}
	if err := l.Append([]byte("new-1")); err != nil {
		t.Fatal(err)
	}
	got := collect(t, l)
	if len(got) != 3 {
		t.Fatalf("post-rotate replay %d records, want 3", len(got))
	}
	if err := l.Prune(); err != nil {
		t.Fatalf("Prune: %v", err)
	}
	got = collect(t, l)
	if len(got) != 1 || string(got[0]) != "new-1" {
		t.Fatalf("post-prune replay %q", got)
	}
	seqs, err := segments(dir)
	if err != nil || len(seqs) != 1 {
		t.Fatalf("segments after prune: %v, %v", seqs, err)
	}
}

// TestReopenAfterRotate: a crash between Rotate and Prune replays both
// generations; a crash after Prune replays only the new one.
func TestReopenAfterRotate(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	l.Append([]byte("old"))
	l.Rotate()
	l.Append([]byte("new"))
	l.Close()

	l = openT(t, dir)
	if got := collect(t, l); len(got) != 2 {
		t.Fatalf("pre-prune reopen: %d records, want 2", len(got))
	}
	if err := l.Prune(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	l = openT(t, dir)
	defer l.Close()
	if got := collect(t, l); len(got) != 1 || string(got[0]) != "new" {
		t.Fatalf("post-prune reopen: %q", got)
	}
}

// TestTornTailOnOldSegmentIsCorrupt: rotation fsyncs segments in full, so
// a truncated record in a non-final segment can only mean damage — Open
// must refuse rather than silently drop an acknowledged record.
func TestTornTailOnOldSegmentIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	l.Append([]byte("old-record"))
	l.Rotate()
	l.Append([]byte("new-record"))
	l.Close()
	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open: %v, want ErrCorrupt", err)
	}
}

// TestConcurrentAppends: many goroutines appending through group commit
// all become durable and replay exactly once each.
func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	var fsyncs int
	var mu sync.Mutex
	l, err := Open(dir, Options{OnFsync: func(time.Duration) {
		mu.Lock()
		fsyncs++
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("Append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	l.Close()
	l = openT(t, dir)
	defer l.Close()
	seen := make(map[string]bool)
	for _, p := range collect(t, l) {
		if seen[string(p)] {
			t.Fatalf("duplicate record %q", p)
		}
		seen[string(p)] = true
	}
	if len(seen) != writers*per {
		t.Fatalf("replayed %d unique records, want %d", len(seen), writers*per)
	}
	mu.Lock()
	defer mu.Unlock()
	if fsyncs == 0 {
		t.Fatal("OnFsync never observed")
	}
}

// TestWriteWaitDurableSplit: WaitDurable on an old position returns
// immediately once a later sync covered it.
func TestWriteWaitDurableSplit(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	defer l.Close()
	p1, err := l.Write([]byte("one"))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := l.Write([]byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.WaitDurable(p2); err != nil {
		t.Fatal(err)
	}
	// p1 precedes p2 in the same segment: already durable, no new fsync.
	if err := l.WaitDurable(p1); err != nil {
		t.Fatal(err)
	}
}

// TestPositionsSurviveRotation: a position taken before Rotate is durable
// after it (rotation fsyncs the old segment in full).
func TestPositionsSurviveRotation(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	defer l.Close()
	p, err := l.Write([]byte("pre-rotate"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Rotate(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- l.WaitDurable(p) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("WaitDurable after rotate: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitDurable hung on pre-rotation position")
	}
}

// TestClosedLog: operations after Close fail with ErrClosed.
func TestClosedLog(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append after close: %v", err)
	}
	if err := l.Rotate(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Rotate after close: %v", err)
	}
	if err := l.Prune(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Prune after close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

// TestOversizePayloadRejected: the writer enforces MaxRecord.
func TestOversizePayloadRejected(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir)
	defer l.Close()
	if _, err := l.Write(make([]byte, MaxRecord+1)); err == nil {
		t.Fatal("oversize Write accepted")
	}
}

// TestOnAppendHook: the append hook observes framed sizes.
func TestOnAppendHook(t *testing.T) {
	dir := t.TempDir()
	var total int
	var mu sync.Mutex
	l, err := Open(dir, Options{OnAppend: func(n int) {
		mu.Lock()
		total += n
		mu.Unlock()
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("abcde")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if total != headerSize+5 {
		t.Fatalf("OnAppend total %d, want %d", total, headerSize+5)
	}
}

// FuzzWALRecord fuzzes the record codec both directions: every payload
// must round-trip byte-identically through AppendRecord/DecodeRecord, and
// any single-byte corruption of the frame must be rejected — decode
// either errors or, for a corrupted length prefix that still frames a
// record, yields a payload that fails to match (the CRC must catch it).
func FuzzWALRecord(f *testing.F) {
	f.Add([]byte(nil), uint16(0), byte(0))
	f.Add([]byte("hello"), uint16(2), byte(0x01))
	f.Add(make([]byte, 300), uint16(9), byte(0x80))
	f.Fuzz(func(t *testing.T, payload []byte, pos uint16, flip byte) {
		frame := AppendRecord(nil, payload)
		got, rest, err := DecodeRecord(frame)
		if err != nil {
			t.Fatalf("round-trip decode failed: %v", err)
		}
		if !bytes.Equal(got, payload) || len(rest) != 0 {
			t.Fatalf("round-trip mismatch: %d bytes, %d rest", len(got), len(rest))
		}
		// Two frames back-to-back: rest must hand off exactly.
		double := AppendRecord(bytes.Clone(frame), payload)
		_, rest, err = DecodeRecord(double)
		if err != nil || len(rest) != len(frame) {
			t.Fatalf("two-frame decode: err=%v rest=%d", err, len(rest))
		}
		// Corruption rejection: flip one byte anywhere in the frame.
		if flip == 0 {
			flip = 0xFF
		}
		mut := bytes.Clone(frame)
		mut[int(pos)%len(mut)] ^= flip
		if p, rest, err := DecodeRecord(mut); err == nil {
			// A corrupted length prefix may still frame a decodable record
			// (e.g. shortening the length re-frames a prefix whose CRC can't
			// match). The CRC must guarantee we never return the original
			// payload from a damaged frame as if nothing happened — and any
			// accepted decode must still be internally CRC-consistent.
			if bytes.Equal(p, payload) && len(rest) == 0 {
				t.Fatalf("corrupted frame decoded as pristine")
			}
			_ = rest
		}
	})
}
