// Package wal is the crash-safe write-ahead log of the NewsLink ingest
// pipeline (DESIGN.md §13). The engine appends one record per acknowledged
// write (upsert, delete) and fsyncs them in batches — group commit — so a
// sustained document firehose costs a handful of fsyncs per second, not one
// per document. After a crash, replaying the log over the last snapshot
// reconstructs every acknowledged write; a torn tail (the record a crash
// interrupted mid-write) is detected and dropped, while corruption of a
// fully-written record (a bit flip under an acknowledged document) is
// surfaced as ErrCorrupt rather than silently skipped.
//
// On-disk layout: a directory of numbered segment files (wal-%016x.log),
// each a sequence of length-prefixed records:
//
//	[4 bytes LE payload length][4 bytes LE CRC32-C of payload][payload]
//
// The log is rotated — current segment fsynced, a fresh one started — when
// the engine captures a snapshot, and the old segments are pruned only
// after the snapshot has durably installed. A crash between rotation and
// prune replays both generations over the previous snapshot, which is
// correct because the records of the old generation are not part of it.
//
// Durability discipline: Append (or Write+WaitDurable) returns only after
// the record — and, because the log is sequential, every record before it —
// has been fsynced. A failed fsync poisons the log: the write may or may
// not be durable, so every subsequent operation fails with the original
// error instead of pretending later fsyncs repaired history.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"newslink/internal/faults"
)

var (
	// ErrCorrupt reports a fully-written record whose checksum does not
	// match, or structurally impossible framing that cannot be explained by
	// a torn tail. Replay stops; the caller decides whether to discard the
	// log or refuse to start.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrClosed is returned by operations on a closed log.
	ErrClosed = errors.New("wal: log closed")
)

// MaxRecord bounds one record's payload (64 MiB). A length prefix past the
// bound is structurally impossible — the writer enforces the same limit —
// so replay reports it as corruption instead of allocating pathologically.
const MaxRecord = 64 << 20

// headerSize is the per-record framing overhead: 4 bytes payload length,
// 4 bytes CRC32-C.
const headerSize = 8

// castagnoli is the CRC32-C table (hardware-accelerated on amd64/arm64),
// the same polynomial the snapshot artifacts use.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// AppendRecord appends the framed form of payload to dst and returns the
// extended slice. Exported for the record-codec fuzz target; the log uses
// it internally for every append.
func AppendRecord(dst, payload []byte) []byte {
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// errTorn distinguishes an incomplete tail record (tolerated at the end of
// the last segment: the crash interrupted the write, so the record was
// never acknowledged) from ErrCorrupt (never tolerated).
var errTorn = errors.New("wal: torn record")

// readRecord reads one framed record from r into a fresh payload slice.
// Returns io.EOF at a clean segment end, errTorn when the record is
// incomplete (header or payload cut short by a crash), and ErrCorrupt when
// a complete record fails its checksum or the framing is impossible.
func readRecord(r *bufio.Reader) ([]byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, io.EOF // clean end: no record starts here
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, errTorn // header cut short
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > MaxRecord {
		// The writer never produces this, and a torn write only shortens a
		// record; an impossible length is a damaged header.
		return nil, fmt.Errorf("%w: record length %d exceeds %d", ErrCorrupt, n, MaxRecord)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errTorn // payload cut short
	}
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(hdr[4:8]); got != want {
		return nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	return payload, nil
}

// DecodeRecord parses the first framed record of b, returning its payload
// and the remaining bytes. Exported for the record-codec fuzz target. The
// error is ErrCorrupt for a checksum or framing violation and errTorn
// (reported as ErrCorrupt to callers outside the package via errors.Is
// returning false for both io.EOF cases) — fuzzing only needs "error or
// valid", so incomplete input returns io.ErrUnexpectedEOF.
func DecodeRecord(b []byte) (payload, rest []byte, err error) {
	if len(b) < headerSize {
		return nil, nil, io.ErrUnexpectedEOF
	}
	n := binary.LittleEndian.Uint32(b[0:4])
	if n > MaxRecord {
		return nil, nil, fmt.Errorf("%w: record length %d exceeds %d", ErrCorrupt, n, MaxRecord)
	}
	if uint64(len(b)-headerSize) < uint64(n) {
		return nil, nil, io.ErrUnexpectedEOF
	}
	payload = b[headerSize : headerSize+int(n)]
	if got, want := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(b[4:8]); got != want {
		return nil, nil, fmt.Errorf("%w: checksum %08x, want %08x", ErrCorrupt, got, want)
	}
	return payload, b[headerSize+int(n):], nil
}

// Options configures a Log. The zero value is ready to use.
type Options struct {
	// OnFsync, when set, observes the duration of every fsync the group
	// committer performs (feeds the newslink_wal_fsync_seconds histogram).
	OnFsync func(time.Duration)
	// OnAppend, when set, observes every appended record's framed size in
	// bytes.
	OnAppend func(bytes int)
}

// Pos names a durability point in the log: everything up to and including
// the record that returned it is durable once WaitDurable(pos) returns.
type Pos struct {
	seq uint64 // segment sequence number
	off int64  // bytes of the segment written when the record was appended
}

// Log is an append-only, group-committed write-ahead log over a directory
// of segment files. Safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	// mu guards the active segment file, the write offset and rotation.
	mu      sync.Mutex
	f       *os.File
	seq     uint64
	written int64
	closed  bool
	failed  error // sticky: a failed fsync or write poisons the log

	// records counts the valid records found across all segments at Open
	// time (what Replay will deliver).
	records int

	// group commit: cond guards the durability watermark. Appenders wait on
	// it; the first waiter past the watermark becomes the leader and fsyncs
	// on behalf of everyone queued behind it.
	cond     *sync.Cond
	syncing  bool
	syncSeq  uint64 // segment the watermark refers to
	synced   int64  // durable bytes of segment syncSeq
	syncErrs error  // failure observed by a leader (also copied to failed)
}

// segPattern names segment files so lexical order is replay order.
func segName(seq uint64) string { return fmt.Sprintf("wal-%016x.log", seq) }

// segments lists the segment files of dir in sequence order.
func segments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, e := range ents {
		var seq uint64
		if n, err := fmt.Sscanf(e.Name(), "wal-%016x.log", &seq); n == 1 && err == nil {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// Open opens (creating if needed) the log at dir, validates every segment,
// and repairs a torn tail on the last one by truncating it to its valid
// prefix. Corruption anywhere else — a checksum failure on a fully-written
// record, or any invalid record that is not the final one — returns
// ErrCorrupt and no log. After Open the caller normally drains Replay
// before appending; appends land in the last existing segment (or a fresh
// first one).
func Open(dir string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	seqs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	l.cond = sync.NewCond(&l.mu)
	for i, seq := range seqs {
		n, valid, err := validateSegment(filepath.Join(dir, segName(seq)), i == len(seqs)-1)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", segName(seq), err)
		}
		l.records += n
		if i == len(seqs)-1 {
			l.seq, l.written = seq, valid
		}
	}
	if len(seqs) == 0 {
		l.seq = 1
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(l.seq)), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Seek(l.written, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.f = f
	l.syncSeq, l.synced = l.seq, l.written
	if len(seqs) == 0 {
		// Make the empty first segment and its directory entry durable up
		// front, so the log's existence survives a crash that precedes the
		// first append.
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, err
		}
	}
	return l, nil
}

// validateSegment scans one segment file, counting valid records and
// returning the byte length of the valid prefix. On the last segment a
// torn tail is repaired by truncating the file to the valid prefix; on any
// other segment — which rotation fsynced in full — a torn record is
// corruption. A checksum failure on a complete record is corruption
// everywhere: it sits under a write that was acknowledged, so dropping it
// silently would lose the acknowledged document.
func validateSegment(path string, last bool) (records int, validLen int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, replayBufSize)
	for {
		payload, err := readRecord(r)
		switch {
		case err == nil:
			records++
			validLen += headerSize + int64(len(payload))
			continue
		case errors.Is(err, io.EOF):
			return records, validLen, nil
		case errors.Is(err, errTorn) && last:
			// The crash interrupted this record mid-write; it was never
			// acknowledged. Truncate so appends resume at a clean boundary.
			wf, err := os.OpenFile(path, os.O_WRONLY, 0)
			if err != nil {
				return 0, 0, err
			}
			terr := wf.Truncate(validLen)
			serr := wf.Sync()
			cerr := wf.Close()
			if err := errors.Join(terr, serr, cerr); err != nil {
				return 0, 0, err
			}
			return records, validLen, nil
		case errors.Is(err, errTorn):
			return 0, 0, fmt.Errorf("%w: torn record in non-final segment", ErrCorrupt)
		default:
			return 0, 0, err
		}
	}
}

// replayBufSize is the buffered-reader size replay and validation use.
// Records larger than this span multiple reads; the boundary-spanning
// replay test pins that case.
const replayBufSize = 32 << 10

// Records returns the number of valid records found at Open time — what a
// full Replay will deliver.
func (l *Log) Records() int { return l.records }

// Dir returns the log's directory.
func (l *Log) Dir() string { return l.dir }

// Replay delivers every record of every segment, in append order, to fn.
// It must run before the first Append (Open already repaired the tail, so
// replay sees exactly the records a crash preserved). A non-nil error from
// fn stops the replay and is returned with the count delivered so far.
func (l *Log) Replay(fn func(payload []byte) error) (int, error) {
	seqs, err := segments(l.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, seq := range seqs {
		f, err := os.Open(filepath.Join(l.dir, segName(seq)))
		if err != nil {
			return n, err
		}
		r := bufio.NewReaderSize(f, replayBufSize)
		for {
			payload, err := readRecord(r)
			if errors.Is(err, io.EOF) {
				break
			}
			if err != nil {
				f.Close()
				// Open validated everything; hitting this means the files
				// changed underneath us.
				return n, fmt.Errorf("%s: %w", segName(seq), err)
			}
			if err := fn(payload); err != nil {
				f.Close()
				return n, err
			}
			n++
		}
		f.Close()
	}
	return n, nil
}

// Write appends one record without waiting for durability and returns its
// position. The caller acknowledges the write only after WaitDurable(pos).
// Writes are serialized; the record order is the durability order and — by
// the engine's locking discipline — the apply order.
func (l *Log) Write(payload []byte) (Pos, error) {
	if len(payload) > MaxRecord {
		return Pos{}, fmt.Errorf("wal: payload of %d bytes exceeds MaxRecord", len(payload))
	}
	rec := AppendRecord(nil, payload)
	if mutated, err := faults.FireData(faults.WALAppend, rec); err != nil {
		return Pos{}, err
	} else {
		rec = mutated
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return Pos{}, err
	}
	if _, err := l.f.Write(rec); err != nil {
		// A short or failed write leaves the tail in an unknown state;
		// poison the log rather than risk framing damage going unnoticed.
		l.failed = fmt.Errorf("wal: append: %w", err)
		return Pos{}, l.failed
	}
	l.written += int64(len(rec))
	if l.opts.OnAppend != nil {
		l.opts.OnAppend(len(rec))
	}
	return Pos{seq: l.seq, off: l.written}, nil
}

// usableLocked reports whether the log can accept operations.
func (l *Log) usableLocked() error {
	if l.closed {
		return ErrClosed
	}
	return l.failed
}

// durableLocked reports whether pos is covered by the durability watermark.
// Rotation fsyncs a segment in full before retiring it, so any position in
// a segment older than the watermark's is durable.
func (l *Log) durableLocked(pos Pos) bool {
	return pos.seq < l.syncSeq || (pos.seq == l.syncSeq && pos.off <= l.synced)
}

// WaitDurable blocks until the record at pos is fsynced (group commit: the
// first waiter syncs for everyone behind it) and returns nil, or returns
// the sticky failure if durability can no longer be promised.
func (l *Log) WaitDurable(pos Pos) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.durableLocked(pos) {
			return nil
		}
		if l.failed != nil {
			return l.failed
		}
		if l.closed {
			return ErrClosed
		}
		if l.syncing {
			// A leader is already at work; its sync may or may not cover
			// this position — re-check after it finishes.
			l.cond.Wait()
			continue
		}
		// Become the leader: sync everything written so far on behalf of
		// every waiter queued behind this position.
		l.syncing = true
		f, seq, target := l.f, l.seq, l.written
		l.mu.Unlock()
		start := time.Now()
		err := faults.Fire(faults.WALSync)
		if err == nil {
			err = f.Sync()
		}
		if l.opts.OnFsync != nil {
			l.opts.OnFsync(time.Since(start))
		}
		l.mu.Lock()
		l.syncing = false
		if err != nil {
			l.failed = fmt.Errorf("wal: fsync: %w", err)
		} else if seq == l.syncSeq && target > l.synced {
			l.synced = target
		}
		l.cond.Broadcast()
	}
}

// Append writes one record and waits for it to become durable: the one-call
// form of Write + WaitDurable.
func (l *Log) Append(payload []byte) error {
	pos, err := l.Write(payload)
	if err != nil {
		return err
	}
	return l.WaitDurable(pos)
}

// Sync forces an fsync of the active segment (used by Close and rotation).
// Callers hold l.mu.
func (l *Log) syncLocked() error {
	if err := l.f.Sync(); err != nil {
		l.failed = fmt.Errorf("wal: fsync: %w", err)
		return l.failed
	}
	if l.seq == l.syncSeq && l.written > l.synced {
		l.synced = l.written
	}
	return nil
}

// Rotate fsyncs the active segment and starts a fresh one. The engine
// calls it inside the snapshot-capture critical section: records appended
// before the capture stay in the old segments (prunable once the snapshot
// installs), records appended after it land in the new segment (they are
// not in the snapshot and must be replayed over it after a crash).
func (l *Log) Rotate() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	if err := l.syncLocked(); err != nil {
		return err
	}
	seq := l.seq + 1
	f, err := os.OpenFile(filepath.Join(l.dir, segName(seq)), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	old := l.f
	l.f, l.seq, l.written = f, seq, 0
	l.syncSeq, l.synced = seq, 0
	l.cond.Broadcast() // every old-segment position is now durable
	return old.Close()
}

// Prune removes every segment older than the active one. The engine calls
// it only after a snapshot that covers those records has durably installed;
// until then the old segments must survive so a crash can replay them.
func (l *Log) Prune() error {
	l.mu.Lock()
	active := l.seq
	closed := l.closed
	l.mu.Unlock()
	if closed {
		return ErrClosed
	}
	seqs, err := segments(l.dir)
	if err != nil {
		return err
	}
	for _, seq := range seqs {
		if seq >= active {
			continue
		}
		if err := os.Remove(filepath.Join(l.dir, segName(seq))); err != nil {
			return err
		}
	}
	return syncDir(l.dir)
}

// Close fsyncs and closes the active segment. Waiters are woken with
// ErrClosed unless their position was already durable.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	var err error
	if l.failed == nil {
		err = l.syncLocked()
	}
	l.closed = true
	l.cond.Broadcast()
	return errors.Join(err, l.f.Close())
}

// syncDir fsyncs a directory, making its entries durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	return errors.Join(serr, d.Close())
}
