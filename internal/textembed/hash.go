package textembed

// fnv1a computes the 64-bit FNV-1a hash of s mixed with a seed, used to
// derive deterministic pseudo-random index vectors for words and n-grams.
func fnv1a(s string, seed uint64) uint64 {
	h := uint64(14695981039346656037) ^ seed
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 advances a splitmix64 state, yielding a well-mixed stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// indexVector writes the sparse ternary random index vector of key into
// dst scaled by weight: nnz positions receive ±weight. This is classic
// Random Indexing (the count-based equivalent of learned embeddings):
// accumulating the index vectors of co-occurring words approximates a
// random projection of the co-occurrence matrix.
func indexVector(dst Vector, key string, seed uint64, nnz int, weight float32) {
	h := fnv1a(key, seed)
	dim := uint64(len(dst))
	if dim == 0 {
		return
	}
	for i := 0; i < nnz; i++ {
		h = splitmix64(h)
		pos := h % dim
		if h&(1<<63) != 0 {
			dst[pos] -= weight
		} else {
			dst[pos] += weight
		}
	}
}
