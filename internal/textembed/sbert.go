package textembed

import "strings"

// SBERT is the stand-in for the paper's pretrained Sentence-BERT encoder
// (bert-large-nli-mean-tokens, 1024 dimensions). Offline we cannot ship
// pretrained transformer weights, so the encoder is a character-n-gram
// hashing model: each word contributes the random index vectors of its
// boundary-marked 3..5-grams, mean-pooled over the text and L2-normalized.
// Like the original it is "pretrained" (needs no corpus training), produces
// high pairwise similarity for surface-semantically related text, and —
// exactly as Table IV reports for SBERT — scores well on SIM@k while
// recovering few exact documents (HIT@k), because it has no exact-term
// anchoring.
type SBERT struct {
	Dim  int
	seed uint64
}

// NewSBERT returns an encoder with the given dimensionality (the paper's
// model uses 1024).
func NewSBERT(dim int) *SBERT {
	if dim <= 0 {
		dim = 1024
	}
	return &SBERT{Dim: dim, seed: 0x5be47c0ffee}
}

// Encode embeds normalized terms into a unit vector.
func (s *SBERT) Encode(terms []string) Vector {
	out := make(Vector, s.Dim)
	for _, w := range terms {
		marked := "^" + w + "$"
		for n := 3; n <= 5; n++ {
			if len(marked) < n {
				continue
			}
			for i := 0; i+n <= len(marked); i++ {
				indexVector(out, marked[i:i+n], s.seed, 4, 1)
			}
		}
		// The whole word as one feature keeps distinct short words apart.
		indexVector(out, marked, s.seed, 4, 1)
	}
	return Normalize(out)
}

// EncodeText embeds raw whitespace-separated text (convenience for tests).
func (s *SBERT) EncodeText(text string) Vector {
	return s.Encode(strings.Fields(strings.ToLower(text)))
}
