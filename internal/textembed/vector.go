// Package textembed implements the dense text-embedding substrates that the
// paper uses as competitors and as the evaluation judge: a count-based
// distributional word-vector model standing in for DOC2VEC, a character
// n-gram hashing encoder standing in for the pretrained SBERT, and a
// subword-aware document encoder standing in for FastText (see DESIGN.md §1
// for why each substitution preserves the relevant behaviour). Everything is
// deterministic given the seed.
package textembed

import "math"

// Vector is a dense embedding vector.
type Vector []float32

// Dot returns the inner product of a and b (shorter length governs).
func Dot(a, b Vector) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var s float64
	for i := 0; i < n; i++ {
		s += float64(a[i]) * float64(b[i])
	}
	return s
}

// Norm returns the L2 norm of v.
func Norm(v Vector) float64 { return math.Sqrt(Dot(v, v)) }

// Cosine returns the cosine similarity of a and b; zero vectors yield 0.
func Cosine(a, b Vector) float64 {
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}

// Normalize scales v to unit length in place and returns it. Zero vectors
// are returned unchanged.
func Normalize(v Vector) Vector {
	n := Norm(v)
	if n == 0 {
		return v
	}
	inv := float32(1 / n)
	for i := range v {
		v[i] *= inv
	}
	return v
}

// AddScaled accumulates dst += s*src in place.
func AddScaled(dst, src Vector, s float32) {
	n := len(dst)
	if len(src) < n {
		n = len(src)
	}
	for i := 0; i < n; i++ {
		dst[i] += s * src[i]
	}
}

// Mean returns the unnormalized mean of the given vectors (nil if empty).
func Mean(vs []Vector, dim int) Vector {
	if len(vs) == 0 {
		return nil
	}
	out := make(Vector, dim)
	for _, v := range vs {
		AddScaled(out, v, 1)
	}
	inv := float32(1) / float32(len(vs))
	for i := range out {
		out[i] *= inv
	}
	return out
}
