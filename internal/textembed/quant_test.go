package textembed

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randVec(rng *rand.Rand, dim int) Vector {
	v := make(Vector, dim)
	for i := range v {
		v[i] = float32(rng.NormFloat64())
	}
	return v
}

// TestQuantizeRoundTrip: dequantization error is bounded by scale/2 per
// component, and the scale is the smallest that covers the vector.
func TestQuantizeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		v := Normalize(randVec(rng, 16+rng.Intn(500)))
		q := Quantize(v)
		if len(q.Data) != len(v) {
			t.Fatalf("trial %d: quantized length %d, want %d", trial, len(q.Data), len(v))
		}
		back := q.Dequantize()
		for i := range v {
			if err := math.Abs(float64(v[i] - back[i])); err > float64(q.Scale)/2+1e-7 {
				t.Fatalf("trial %d dim %d: error %v exceeds scale/2 = %v", trial, i, err, q.Scale/2)
			}
		}
	}
}

// TestQuantizeZero: the zero vector quantizes to scale 0 and scores 0
// against anything.
func TestQuantizeZero(t *testing.T) {
	z := Quantize(make(Vector, 32))
	if z.Scale != 0 {
		t.Fatalf("zero-vector scale = %v", z.Scale)
	}
	for i, x := range z.Data {
		if x != 0 {
			t.Fatalf("zero-vector component %d = %d", i, x)
		}
	}
	q := Quantize(Vector{1, -2, 3, 0.5})
	if got := DotInt8(z, q); got != 0 {
		t.Fatalf("dot with zero vector = %v", got)
	}
	if got := DotInt8(Int8Vector{}, q); got != 0 {
		t.Fatalf("dot with empty vector = %v", got)
	}
}

// TestDotInt8MismatchedLength: the shorter vector governs, matching Dot.
func TestDotInt8MismatchedLength(t *testing.T) {
	a := Quantize(Vector{1, 1, 1, 1})
	b := Quantize(Vector{1, 1})
	want := DotInt8(Int8Vector{Scale: a.Scale, Data: a.Data[:2]}, b)
	if got := DotInt8(a, b); got != want {
		t.Fatalf("DotInt8 over mismatched lengths = %v, want %v (shorter governs)", got, want)
	}
	if got, rev := DotInt8(a, b), DotInt8(b, a); got != rev {
		t.Fatalf("DotInt8 not symmetric: %v vs %v", got, rev)
	}
}

// TestDotInt8ApproximatesDot: the quantized dot product stays within the
// analytic error bound of the float dot product for unit vectors.
func TestDotInt8ApproximatesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		dim := 32 + rng.Intn(480)
		a, b := Normalize(randVec(rng, dim)), Normalize(randVec(rng, dim))
		qa, qb := Quantize(a), Quantize(b)
		exact := Dot(a, b)
		approx := DotInt8(qa, qb)
		// Loose but principled bound: ‖·‖₁ ≤ √dim for unit vectors.
		bound := math.Sqrt(float64(dim))*(float64(qa.Scale)+float64(qb.Scale))/2 +
			float64(dim)*float64(qa.Scale)*float64(qb.Scale)/4
		if math.Abs(exact-approx) > bound {
			t.Fatalf("trial %d: |%v - %v| exceeds bound %v", trial, exact, approx, bound)
		}
	}
}

// overlapAtK measures |topK(a) ∩ topK(b)| / k over document indexes.
func overlapAtK(a, b []int, k int) float64 {
	in := make(map[int]bool, k)
	for _, d := range a[:k] {
		in[d] = true
	}
	hit := 0
	for _, d := range b[:k] {
		if in[d] {
			hit++
		}
	}
	return float64(hit) / float64(k)
}

// rankBy orders document indexes by descending score, ties by ascending
// index — the search comparator.
func rankBy(scores []float64) []int {
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		si, sj := scores[order[i]], scores[order[j]]
		if si != sj {
			return si > sj
		}
		return order[i] < order[j]
	})
	return order
}

// featureSig builds a normalized signature from a sparse feature-count
// set via AddFeature — exactly how the engine builds document signatures
// from subgraph node counts.
func featureSig(feats map[int]int, dim int) Vector {
	keys := make([]int, 0, len(feats))
	for f := range feats {
		keys = append(keys, f)
	}
	sort.Ints(keys)
	v := make(Vector, dim)
	for _, f := range keys {
		AddFeature(v, fmt.Sprintf("f%d", f), float32(feats[f]))
	}
	return Normalize(v)
}

// TestQuantizedRecallFloor is the recall property the engine's quantized
// BON path relies on, over random corpora of feature-hashed sparse sets —
// the structure document signatures actually have, where score gaps come
// from discrete feature overlap. Two floors are pinned per corpus/k:
//
//   - the raw int8 scan ranking overlaps the exact float ranking at ≥0.95
//     mean overlap@k (quantization error only bites where true scores are
//     near-tied);
//   - the engine's actual two-phase pipeline — int8 scan keeping 4k
//     candidates, exact rescore of the candidates — reaches ≥0.99: a true
//     top-k document is lost only if quantization noise demotes it past
//     rank 4k, a 4× margin over the raw ranking.
func TestQuantizedRecallFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(1009))
	for _, tc := range []struct{ docs, vocab, dim, queries, k int }{
		{500, 80, 256, 20, 10},
		{1000, 150, 256, 20, 20},
		{300, 50, 256, 20, 5},
		{2000, 150, 256, 10, 50},
	} {
		t.Run(fmt.Sprintf("docs=%d/dim=%d/k=%d", tc.docs, tc.dim, tc.k), func(t *testing.T) {
			feats := make([]map[int]int, tc.docs)
			corpus := make([]Vector, tc.docs)
			quant := make([]Int8Vector, tc.docs)
			for i := range corpus {
				fs := map[int]int{}
				for n := 2 + rng.Intn(8); n > 0; n-- {
					fs[rng.Intn(tc.vocab)]++
				}
				feats[i] = fs
				corpus[i] = featureSig(fs, tc.dim)
				quant[i] = Quantize(corpus[i])
			}
			sumRaw, sumPipe := 0.0, 0.0
			for qi := 0; qi < tc.queries; qi++ {
				// A query perturbs a random document's feature set (drop
				// one feature, add one), like a search naming most of a
				// story's entities.
				qf := map[int]int{}
				for f, c := range feats[rng.Intn(tc.docs)] {
					qf[f] = c
				}
				for f := range qf {
					delete(qf, f)
					break
				}
				qf[rng.Intn(tc.vocab)]++
				q := featureSig(qf, tc.dim)
				qq := Quantize(q)
				exact := make([]float64, tc.docs)
				approx := make([]float64, tc.docs)
				for d := range corpus {
					exact[d] = Dot(q, corpus[d])
					approx[d] = DotInt8(qq, quant[d])
				}
				exactRank, approxRank := rankBy(exact), rankBy(approx)
				sumRaw += overlapAtK(exactRank, approxRank, tc.k)
				// Two-phase pipeline: int8 scan keeps 4k candidates, exact
				// scores pick the final top k among them.
				cands := approxRank[:min(4*tc.k, len(approxRank))]
				pipe := append([]int(nil), cands...)
				sort.Slice(pipe, func(i, j int) bool {
					si, sj := exact[pipe[i]], exact[pipe[j]]
					if si != sj {
						return si > sj
					}
					return pipe[i] < pipe[j]
				})
				sumPipe += overlapAtK(exactRank, pipe, tc.k)
			}
			if mean := sumRaw / float64(tc.queries); mean < 0.95 {
				t.Fatalf("raw int8 mean overlap@%d = %v, want >= 0.95", tc.k, mean)
			}
			if mean := sumPipe / float64(tc.queries); mean < 0.99 {
				t.Fatalf("two-phase mean overlap@%d = %v, want >= 0.99", tc.k, mean)
			}
		})
	}
}
