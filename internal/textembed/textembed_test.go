package textembed

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestVectorOps(t *testing.T) {
	a := Vector{1, 0, 0}
	b := Vector{0, 1, 0}
	if Dot(a, b) != 0 {
		t.Fatal("orthogonal dot != 0")
	}
	if Cosine(a, a) != 1 {
		t.Fatalf("self cosine = %v", Cosine(a, a))
	}
	if Cosine(a, Vector{0, 0, 0}) != 0 {
		t.Fatal("zero vector cosine != 0")
	}
	v := Normalize(Vector{3, 4})
	if math.Abs(Norm(v)-1) > 1e-6 {
		t.Fatalf("normalize norm = %v", Norm(v))
	}
	z := Vector{0, 0}
	if got := Normalize(z); got[0] != 0 || got[1] != 0 {
		t.Fatal("zero vector normalize changed values")
	}
	m := Mean([]Vector{{2, 0}, {0, 2}}, 2)
	if !reflect.DeepEqual(m, Vector{1, 1}) {
		t.Fatalf("Mean = %v", m)
	}
	if Mean(nil, 2) != nil {
		t.Fatal("Mean(nil) != nil")
	}
}

func TestCosineBounds(t *testing.T) {
	f := func(raw [6]int8) bool {
		a := Vector{float32(raw[0]), float32(raw[1]), float32(raw[2])}
		b := Vector{float32(raw[3]), float32(raw[4]), float32(raw[5])}
		c := Cosine(a, b)
		return c >= -1.0000001 && c <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIndexVectorDeterministic(t *testing.T) {
	a := make(Vector, 64)
	b := make(Vector, 64)
	indexVector(a, "taliban", 7, 8, 1)
	indexVector(b, "taliban", 7, 8, 1)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("indexVector not deterministic")
	}
	c := make(Vector, 64)
	indexVector(c, "pakistan", 7, 8, 1)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different keys produced identical vectors")
	}
	d := make(Vector, 64)
	indexVector(d, "taliban", 8, 8, 1)
	if reflect.DeepEqual(a, d) {
		t.Fatal("different seeds produced identical vectors")
	}
}

func docs(lines ...string) [][]string {
	var out [][]string
	for _, l := range lines {
		out = append(out, strings.Fields(l))
	}
	return out
}

func trainToy(t *testing.T) *WordVectors {
	t.Helper()
	corpus := docs(
		"taliban attack bomb lahore army conflict",
		"taliban bomb blast army peshawar conflict",
		"taliban army fight insurgent bomb war",
		"election vote ballot candidate campaign poll",
		"election candidate debate vote poll victory",
		"vote ballot campaign election winner poll",
		"cricket match stadium team batsman score",
		"team match score cricket innings trophy",
	)
	return TrainWordVectors(corpus, WordVectorConfig{Dim: 128, Window: 3, Seed: 5, NNZ: 8})
}

func TestWordVectorsCaptureCooccurrence(t *testing.T) {
	wv := trainToy(t)
	simSame := Cosine(wv.Vector("taliban"), wv.Vector("bomb"))
	simCross := Cosine(wv.Vector("taliban"), wv.Vector("ballot"))
	if simSame <= simCross {
		t.Fatalf("co-occurring words not closer: same=%v cross=%v", simSame, simCross)
	}
	if wv.Vector("unseen-word") != nil {
		t.Fatal("unseen word should have nil vector")
	}
	if wv.VocabSize() == 0 {
		t.Fatal("empty vocab")
	}
}

func TestWordVectorsIDF(t *testing.T) {
	wv := TrainWordVectors(docs("a b", "a c", "a d"), WordVectorConfig{Dim: 32, Window: 2, Seed: 1, NNZ: 4})
	if wv.IDF("a") >= wv.IDF("b") {
		t.Fatal("frequent word should have lower idf")
	}
	if wv.IDF("zzz") < wv.IDF("b") {
		t.Fatal("unseen word should have max idf")
	}
}

func TestEmbedDocSimilarity(t *testing.T) {
	wv := trainToy(t)
	military := wv.EmbedDoc(strings.Fields("taliban bomb army"))
	military2 := wv.EmbedDoc(strings.Fields("conflict blast insurgent"))
	politics := wv.EmbedDoc(strings.Fields("election ballot vote"))
	if Cosine(military, military2) <= Cosine(military, politics) {
		t.Fatalf("topical similarity not captured: %v vs %v",
			Cosine(military, military2), Cosine(military, politics))
	}
	if math.Abs(Norm(military)-1) > 1e-5 {
		t.Fatalf("EmbedDoc not normalized: %v", Norm(military))
	}
	// Out-of-vocabulary inference must not be zero.
	oov := wv.EmbedDoc([]string{"completely", "novel", "words"})
	if Norm(oov) == 0 {
		t.Fatal("OOV doc embedded to zero")
	}
}

func TestTrainDeterministic(t *testing.T) {
	a := trainToy(t).EmbedDoc([]string{"taliban", "bomb"})
	b := trainToy(t).EmbedDoc([]string{"taliban", "bomb"})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("training not deterministic")
	}
}

func TestSBERTSurfaceSimilarity(t *testing.T) {
	s := NewSBERT(256)
	a := s.EncodeText("taliban militants bombed lahore")
	b := s.EncodeText("taliban militant bombing in lahore")
	c := s.EncodeText("quarterly earnings beat expectations")
	if Cosine(a, b) <= Cosine(a, c) {
		t.Fatalf("surface similarity not captured: %v vs %v", Cosine(a, b), Cosine(a, c))
	}
	if math.Abs(Norm(a)-1) > 1e-5 {
		t.Fatal("SBERT output not normalized")
	}
	if got := NewSBERT(0).Dim; got != 1024 {
		t.Fatalf("default dim = %d, want 1024", got)
	}
}

func TestFastTextJudge(t *testing.T) {
	wv := trainToy(t)
	ft := NewFastText(wv)
	a := ft.Embed(strings.Fields("taliban bomb army"))
	b := ft.Embed(strings.Fields("taliban blast conflict"))
	c := ft.Embed(strings.Fields("cricket match trophy"))
	if Cosine(a, b) <= Cosine(a, c) {
		t.Fatalf("judge does not separate topics: %v vs %v", Cosine(a, b), Cosine(a, c))
	}
	// Subword sensitivity: morphological variants stay close.
	d := ft.Embed([]string{"bombing"})
	e := ft.Embed([]string{"bomb"})
	f := ft.Embed([]string{"election"})
	if Cosine(d, e) <= Cosine(d, f) {
		t.Fatalf("subwords not captured: %v vs %v", Cosine(d, e), Cosine(d, f))
	}
}

func TestTopKCosine(t *testing.T) {
	corpus := []Vector{
		Normalize(Vector{1, 0}),
		Normalize(Vector{0.9, 0.1}),
		Normalize(Vector{0, 1}),
		Normalize(Vector{-1, 0}),
	}
	got := TopKCosine(corpus, Vector{1, 0}, 2)
	if len(got) != 2 || got[0].Idx != 0 || got[1].Idx != 1 {
		t.Fatalf("TopKCosine = %v", got)
	}
	if got[0].Score < got[1].Score {
		t.Fatal("not sorted")
	}
	if TopKCosine(corpus, Vector{1, 0}, 0) != nil {
		t.Fatal("k=0 should be nil")
	}
	if got := TopKCosine(corpus, Vector{1, 0}, 99); len(got) != len(corpus) {
		t.Fatalf("k>n returned %d", len(got))
	}
	if TopKCosine(nil, Vector{1}, 3) != nil {
		t.Fatal("empty corpus should be nil")
	}
}

func TestTopKCosineTies(t *testing.T) {
	corpus := []Vector{{1, 0}, {1, 0}, {1, 0}}
	got := TopKCosine(corpus, Vector{1, 0}, 2)
	if got[0].Idx != 0 || got[1].Idx != 1 {
		t.Fatalf("tie order = %v, want ascending idx", got)
	}
}

func TestWordVectorsRoundTrip(t *testing.T) {
	wv := trainToy(t)
	var buf bytes.Buffer
	if _, err := wv.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadWordVectors(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim != wv.Dim || got.VocabSize() != wv.VocabSize() {
		t.Fatalf("shape: %d/%d vs %d/%d", got.Dim, got.VocabSize(), wv.Dim, wv.VocabSize())
	}
	// Behaviour is identical after the round trip: same vectors, same idf,
	// same OOV hashing (seed preserved).
	for _, w := range []string{"taliban", "ballot", "cricket"} {
		if !reflect.DeepEqual(got.Vector(w), wv.Vector(w)) {
			t.Fatalf("vector(%s) differs", w)
		}
		if got.IDF(w) != wv.IDF(w) {
			t.Fatalf("idf(%s) differs", w)
		}
	}
	a := wv.EmbedDoc([]string{"taliban", "unseen-word"})
	b := got.EmbedDoc([]string{"taliban", "unseen-word"})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("EmbedDoc differs after round trip (OOV seed lost?)")
	}
	// Byte-stable.
	var again bytes.Buffer
	if _, err := got.WriteTo(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("serialization not byte-stable")
	}
}

func TestReadWordVectorsRejectsCorruption(t *testing.T) {
	wv := trainToy(t)
	var buf bytes.Buffer
	if _, err := wv.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadWordVectors(bytes.NewReader(data[:len(data)/3])); err == nil {
		t.Error("truncated: expected error")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := ReadWordVectors(bytes.NewReader(bad)); err == nil {
		t.Error("bad magic: expected error")
	}
	if _, err := ReadWordVectors(bytes.NewReader(nil)); err == nil {
		t.Error("empty: expected error")
	}
}
