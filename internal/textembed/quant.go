package textembed

// Scalar int8 quantization (the Lucene int8 HNSW scheme): a float vector
// is stored as one float32 scale plus one int8 per dimension, a 4× byte
// reduction over float32 (8× over float64). Quantization is symmetric
// around zero with a per-vector step:
//
//	scale = maxAbs(v) / 127      q[i] = round(v[i] / scale)
//
// so dequantization is v[i] ≈ scale·q[i] with per-component error at most
// scale/2. For a dot product of two quantized d-dimensional vectors the
// absolute error is bounded by
//
//	|a·b − Q(a)·Q(b)| ≤ (‖a‖₁·scaleB + ‖b‖₁·scaleA)/2 + d·scaleA·scaleB/4
//
// — for the unit-normalized signatures the engine quantizes, the relative
// ranking error this induces is far below the score gaps between distinct
// documents, which is what the ≥0.99 overlap@k recall floor in the tests
// pins down empirically.

// Int8Vector is a scalar-quantized vector: component i represents the
// value Scale·Data[i]. A zero-length Data or zero Scale represents the
// zero vector.
type Int8Vector struct {
	Scale float32
	Data  []int8
}

// Quantize compresses v to int8 with a per-vector scale. The zero vector
// quantizes to scale 0 (all components zero).
func Quantize(v Vector) Int8Vector {
	maxAbs := float32(0)
	for _, x := range v {
		if x < 0 {
			x = -x
		}
		if x > maxAbs {
			maxAbs = x
		}
	}
	q := Int8Vector{Data: make([]int8, len(v))}
	if maxAbs == 0 {
		return q
	}
	q.Scale = maxAbs / 127
	inv := 127 / maxAbs
	for i, x := range v {
		s := x * inv
		// Round half away from zero; s is already clamped to [-127, 127]
		// by construction.
		if s >= 0 {
			q.Data[i] = int8(s + 0.5)
		} else {
			q.Data[i] = int8(s - 0.5)
		}
	}
	return q
}

// Dequantize reconstructs the approximate float vector.
func (q Int8Vector) Dequantize() Vector {
	v := make(Vector, len(q.Data))
	for i, x := range q.Data {
		v[i] = q.Scale * float32(x)
	}
	return v
}

// DotInt8 computes the dot product of two quantized vectors: the integer
// products accumulate exactly in int64 (127² · dim stays far below
// overflow), and the two scales are applied once at the end. When lengths
// differ the shorter governs, matching Dot.
func DotInt8(a, b Int8Vector) float64 {
	n := min(len(a.Data), len(b.Data))
	var acc int64
	for i := 0; i < n; i++ {
		acc += int64(a.Data[i]) * int64(b.Data[i])
	}
	return float64(a.Scale) * float64(b.Scale) * float64(acc)
}

// Feature-hash projection parameters for dense signatures built out of
// sparse (key, weight) sets: each key contributes a sparse ternary index
// vector, exactly the Random Indexing construction indexVector implements
// for words, under a dedicated seed so signature space and word space are
// independent.
const (
	featureSeed = 0x5157414e54 // "QUANT"
	featureNNZ  = 4
)

// AddFeature folds key into dst with the given weight using the sparse
// ternary random projection. Accumulating all (key, weight) pairs of a
// sparse vector yields a dense fixed-dimension signature whose dot
// products approximate the sparse vectors' similarity.
func AddFeature(dst Vector, key string, weight float32) {
	indexVector(dst, key, featureSeed, featureNNZ, weight)
}
