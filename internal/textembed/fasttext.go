package textembed

// FastText is the stand-in for the FastText embeddings the paper uses as
// the *evaluation judge* (Section VII-B: query document and results are
// embedded with FastText and compared by cosine). It combines corpus-trained
// distributional word vectors with subword character n-grams, mirroring
// FastText's word+subword design: judged similarity reflects both topical
// co-occurrence and surface-form overlap.
type FastText struct {
	WV   *WordVectors
	Dim  int
	seed uint64
}

// NewFastText wraps trained word vectors into a subword-aware encoder. The
// output dimensionality equals the word vectors'.
func NewFastText(wv *WordVectors) *FastText {
	return &FastText{WV: wv, Dim: wv.Dim, seed: 0xfa57e7}
}

// Embed pools terms into a unit vector: for each term, the trained word
// vector (idf-weighted) plus hashed 3..4-gram subword vectors at reduced
// weight, as in FastText's sum of word and subword representations.
func (f *FastText) Embed(terms []string) Vector {
	out := make(Vector, f.Dim)
	for _, t := range terms {
		w := float32(f.WV.IDF(t))
		if v := f.WV.Vector(t); v != nil {
			AddScaled(out, v, w)
		}
		marked := "^" + t + "$"
		for n := 3; n <= 4; n++ {
			if len(marked) < n {
				continue
			}
			for i := 0; i+n <= len(marked); i++ {
				indexVector(out, marked[i:i+n], f.seed, 2, 0.3*w)
			}
		}
	}
	return Normalize(out)
}
