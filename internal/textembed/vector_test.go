package textembed

import (
	"math"
	"testing"
)

func TestDot(t *testing.T) {
	for _, tc := range []struct {
		name string
		a, b Vector
		want float64
	}{
		{"basic", Vector{1, 2, 3}, Vector{4, -5, 6}, 12},
		{"orthogonal", Vector{1, 0}, Vector{0, 1}, 0},
		{"empty", Vector{}, Vector{}, 0},
		{"nil", nil, Vector{1, 2}, 0},
		{"zero-vector", Vector{0, 0, 0}, Vector{7, 8, 9}, 0},
		// Shorter length governs: the tail of the longer vector is ignored.
		{"mismatched", Vector{1, 2}, Vector{3, 4, 1000}, 11},
		{"negative", Vector{-1, -2}, Vector{3, 4}, -11},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := Dot(tc.a, tc.b); got != tc.want {
				t.Fatalf("Dot(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
			}
			if rev := Dot(tc.b, tc.a); rev != tc.want {
				t.Fatalf("Dot not symmetric: %v vs %v", rev, tc.want)
			}
		})
	}
}

func TestNorm(t *testing.T) {
	for _, tc := range []struct {
		name string
		v    Vector
		want float64
	}{
		{"unit", Vector{1, 0, 0}, 1},
		{"pythagoras", Vector{3, 4}, 5},
		{"zero", Vector{0, 0}, 0},
		{"empty", Vector{}, 0},
		{"nil", nil, 0},
		{"negative", Vector{-3, -4}, 5},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if got := Norm(tc.v); math.Abs(got-tc.want) > 1e-12 {
				t.Fatalf("Norm(%v) = %v, want %v", tc.v, got, tc.want)
			}
		})
	}
}

func TestCosineZeroVectors(t *testing.T) {
	z := Vector{0, 0, 0}
	v := Vector{1, 2, 3}
	if got := Cosine(z, v); got != 0 {
		t.Fatalf("Cosine(zero, v) = %v, want 0", got)
	}
	if got := Cosine(v, z); got != 0 {
		t.Fatalf("Cosine(v, zero) = %v, want 0", got)
	}
	if got := Cosine(v, v); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Cosine(v, v) = %v, want 1", got)
	}
}

func TestNormalize(t *testing.T) {
	v := Vector{3, 4}
	if got := Normalize(v); math.Abs(Norm(got)-1) > 1e-6 {
		t.Fatalf("normalized norm = %v, want 1", Norm(got))
	}
	// In place: the argument itself is scaled.
	if v[0] != 0.6 || v[1] != 0.8 {
		t.Fatalf("Normalize not in place: %v", v)
	}
	// The zero vector is returned unchanged, not NaN-filled.
	z := Vector{0, 0}
	for i, x := range Normalize(z) {
		if x != 0 {
			t.Fatalf("Normalize(zero)[%d] = %v", i, x)
		}
	}
}

func TestAddScaledMismatchedLength(t *testing.T) {
	dst := Vector{1, 1, 1}
	AddScaled(dst, Vector{2, 3}, 2)
	want := Vector{5, 7, 1}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("AddScaled = %v, want %v", dst, want)
		}
	}
}
