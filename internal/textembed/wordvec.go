package textembed

import "math"

// WordVectors holds distributional word embeddings trained on a corpus by
// random indexing: each word's vector is the weighted sum of the random
// index vectors of its context words, a streaming random projection of the
// word co-occurrence matrix (the count-based equivalent of skip-gram; see
// Levy et al. and DESIGN.md §1 on the DOC2VEC substitution).
type WordVectors struct {
	Dim  int
	vecs map[string]Vector
	df   map[string]int // document frequency, for idf-weighted pooling
	docs int
	seed uint64
	nnz  int
}

// WordVectorConfig parameterizes training.
type WordVectorConfig struct {
	Dim    int   // embedding dimensionality (the paper's DOC2VEC uses 500)
	Window int   // co-occurrence window radius
	Seed   int64 // determinism seed
	NNZ    int   // non-zeros per random index vector
}

// DefaultWordVectorConfig mirrors the paper's DOC2VEC setup (500 dims).
func DefaultWordVectorConfig(seed int64) WordVectorConfig {
	return WordVectorConfig{Dim: 500, Window: 5, Seed: seed, NNZ: 8}
}

// TrainWordVectors builds word vectors from tokenized documents. Distance
// within the window is discounted harmonically as in word2vec.
func TrainWordVectors(docs [][]string, cfg WordVectorConfig) *WordVectors {
	if cfg.Dim <= 0 {
		cfg = DefaultWordVectorConfig(cfg.Seed)
	}
	wv := &WordVectors{
		Dim:  cfg.Dim,
		vecs: make(map[string]Vector),
		df:   make(map[string]int),
		docs: len(docs),
		seed: uint64(cfg.Seed)*0x9e3779b97f4a7c15 + 1,
		nnz:  cfg.NNZ,
	}
	for _, doc := range docs {
		seen := make(map[string]bool, len(doc))
		for i, w := range doc {
			if !seen[w] {
				seen[w] = true
				wv.df[w]++
			}
			vec, ok := wv.vecs[w]
			if !ok {
				vec = make(Vector, cfg.Dim)
				wv.vecs[w] = vec
			}
			lo := i - cfg.Window
			if lo < 0 {
				lo = 0
			}
			hi := i + cfg.Window
			if hi >= len(doc) {
				hi = len(doc) - 1
			}
			for j := lo; j <= hi; j++ {
				if j == i {
					continue
				}
				d := j - i
				if d < 0 {
					d = -d
				}
				indexVector(vec, doc[j], wv.seed, wv.nnz, 1/float32(d))
			}
		}
	}
	for _, v := range wv.vecs {
		Normalize(v)
	}
	return wv
}

// Vector returns the trained vector for word (nil if unseen).
func (wv *WordVectors) Vector(word string) Vector { return wv.vecs[word] }

// IDF returns the inverse document frequency of a word; unseen words get
// the maximum idf.
func (wv *WordVectors) IDF(word string) float64 {
	df := wv.df[word]
	return math.Log(float64(wv.docs+1) / float64(df+1))
}

// VocabSize returns the number of trained words.
func (wv *WordVectors) VocabSize() int { return len(wv.vecs) }

// EmbedDoc pools a document's terms into a single normalized vector using
// idf weighting; this is the DOC2VEC-equivalent document embedding. Unseen
// terms contribute their random index vector so inference degrades
// gracefully on out-of-vocabulary queries.
func (wv *WordVectors) EmbedDoc(terms []string) Vector {
	out := make(Vector, wv.Dim)
	for _, t := range terms {
		w := float32(wv.IDF(t))
		if v := wv.vecs[t]; v != nil {
			AddScaled(out, v, w)
		} else {
			indexVector(out, t, wv.seed, wv.nnz, w)
		}
	}
	return Normalize(out)
}
