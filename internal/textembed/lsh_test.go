package textembed

import (
	"math"
	"math/rand"
	"testing"
)

// clusteredVectors generates nClusters centers with nPer noisy members.
// The per-dimension noise is scaled so that same-cluster members sit at
// cosine ~0.9, the regime of same-topic document embeddings (nearest
// neighbors in looser spaces are a brute-force problem, not an LSH one).
func clusteredVectors(dim, nClusters, nPer int, seed int64) ([]Vector, []int) {
	rng := rand.New(rand.NewSource(seed))
	noise := 0.5 / float32(math.Sqrt(float64(dim)))
	centers := make([]Vector, nClusters)
	for c := range centers {
		v := make(Vector, dim)
		for i := range v {
			v[i] = float32(rng.NormFloat64())
		}
		centers[c] = Normalize(v)
	}
	var vecs []Vector
	var labels []int
	for c, center := range centers {
		for j := 0; j < nPer; j++ {
			v := make(Vector, dim)
			for i := range v {
				v[i] = center[i] + noise*float32(rng.NormFloat64())
			}
			vecs = append(vecs, Normalize(v))
			labels = append(labels, c)
		}
	}
	return vecs, labels
}

func TestLSHRecallOnClusters(t *testing.T) {
	vecs, _ := clusteredVectors(64, 10, 50, 3)
	l := NewLSH(DefaultLSHConfig(64, 7))
	for _, v := range vecs {
		l.Add(v)
	}
	if l.Len() != len(vecs) {
		t.Fatalf("Len = %d", l.Len())
	}
	// Recall@10 against brute force, averaged over queries.
	hits, want := 0, 0
	for qi := 0; qi < len(vecs); qi += 25 {
		exact := TopKCosine(vecs, vecs[qi], 10)
		approx := l.TopK(vecs[qi], 10)
		got := map[int]bool{}
		for _, n := range approx {
			got[n.Idx] = true
		}
		for _, n := range exact {
			want++
			if got[n.Idx] {
				hits++
			}
		}
	}
	recall := float64(hits) / float64(want)
	if recall < 0.8 {
		t.Fatalf("recall@10 = %.2f, want >= 0.8", recall)
	}
}

func TestLSHSelfRetrieval(t *testing.T) {
	vecs, _ := clusteredVectors(32, 5, 20, 9)
	l := NewLSH(DefaultLSHConfig(32, 1))
	for _, v := range vecs {
		l.Add(v)
	}
	for qi := 0; qi < len(vecs); qi += 7 {
		got := l.TopK(vecs[qi], 1)
		if len(got) == 0 || got[0].Idx != qi {
			t.Fatalf("query %d: self not retrieved: %v", qi, got)
		}
	}
}

func TestLSHDeterministic(t *testing.T) {
	vecs, _ := clusteredVectors(32, 3, 10, 2)
	build := func() []Neighbor {
		l := NewLSH(DefaultLSHConfig(32, 5))
		for _, v := range vecs {
			l.Add(v)
		}
		return l.TopK(vecs[3], 5)
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("non-deterministic result size")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic ranking")
		}
	}
}

func TestLSHEdgeCases(t *testing.T) {
	l := NewLSH(DefaultLSHConfig(8, 1))
	if got := l.TopK(make(Vector, 8), 3); got != nil {
		t.Fatal("empty index should return nil")
	}
	l.Add(Normalize(Vector{1, 0, 0, 0, 0, 0, 0, 0}))
	if got := l.TopK(Vector{1, 0, 0, 0, 0, 0, 0, 0}, 0); got != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := l.TopK(Vector{1, 0, 0, 0, 0, 0, 0, 0}, 10); len(got) != 1 {
		t.Fatalf("k clamp failed: %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config must panic")
		}
	}()
	NewLSH(LSHConfig{Dim: 0, Bits: 8, Tables: 1})
}
