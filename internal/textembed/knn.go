package textembed

import "sort"

// Neighbor is one nearest-neighbor search result.
type Neighbor struct {
	Idx   int
	Score float64 // cosine similarity
}

// TopKCosine scans the corpus vectors and returns the k most cosine-similar
// to q, ordered by descending similarity (ties by ascending index). This is
// the retrieval mode of the embedding competitors (DOC2VEC, SBERT, LDA):
// exhaustive scoring in the embedding space.
func TopKCosine(corpus []Vector, q Vector, k int) []Neighbor {
	if k <= 0 || len(corpus) == 0 {
		return nil
	}
	if k > len(corpus) {
		k = len(corpus)
	}
	out := make([]Neighbor, 0, k+1)
	for i, v := range corpus {
		s := Cosine(q, v)
		if len(out) == k && s <= out[k-1].Score {
			continue
		}
		pos := sort.Search(len(out), func(j int) bool {
			if out[j].Score != s {
				return out[j].Score < s
			}
			return out[j].Idx > i
		})
		out = append(out, Neighbor{})
		copy(out[pos+1:], out[pos:])
		out[pos] = Neighbor{Idx: i, Score: s}
		if len(out) > k {
			out = out[:k]
		}
	}
	return out
}
