package textembed

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Binary word-vector model format (little endian):
//
//	magic "NLWV1\n"
//	uint32 dim, uint64 seed, uint32 nnz, uint32 docs
//	uint32 vocab size
//	per word (sorted): string, uint32 df, float32[dim] vector
//
// Training DOC2VEC-style vectors is the slow part of standing up the dense
// baselines; persisted models make reloads instant.

const wvMagic = "NLWV1\n"

// WriteTo serializes the trained model; output is byte-stable.
func (wv *WordVectors) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(err error, size int) error {
		if err != nil {
			return err
		}
		n += int64(size)
		return nil
	}
	if _, err := bw.WriteString(wvMagic); err != nil {
		return n, err
	}
	n += int64(len(wvMagic))
	le := func(data any) error { return binary.Write(bw, binary.LittleEndian, data) }
	if err := le(uint32(wv.Dim)); err != nil {
		return n, err
	}
	if err := le(wv.seed); err != nil {
		return n, err
	}
	if err := le(uint32(wv.nnz)); err != nil {
		return n, err
	}
	if err := le(uint32(wv.docs)); err != nil {
		return n, err
	}
	words := make([]string, 0, len(wv.vecs))
	for w := range wv.vecs {
		words = append(words, w)
	}
	sort.Strings(words)
	if err := le(uint32(len(words))); err != nil {
		return n, err
	}
	n += 4 + 8 + 4 + 4 + 4
	for _, word := range words {
		if err := le(uint32(len(word))); err != nil {
			return n, err
		}
		if _, err := bw.WriteString(word); err != nil {
			return n, err
		}
		if err := le(uint32(wv.df[word])); err != nil {
			return n, err
		}
		if err := le([]float32(wv.vecs[word])); err != nil {
			return n, err
		}
		if err := count(nil, 4+len(word)+4+4*wv.Dim); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadWordVectors parses a model written by WriteTo.
func ReadWordVectors(r io.Reader) (*WordVectors, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(wvMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("textembed: reading magic: %w", err)
	}
	if string(magic) != wvMagic {
		return nil, fmt.Errorf("textembed: bad magic %q", magic)
	}
	le := func(data any) error { return binary.Read(br, binary.LittleEndian, data) }
	var dim, nnz, docs, vocab uint32
	var seed uint64
	if err := le(&dim); err != nil {
		return nil, err
	}
	if err := le(&seed); err != nil {
		return nil, err
	}
	if err := le(&nnz); err != nil {
		return nil, err
	}
	if err := le(&docs); err != nil {
		return nil, err
	}
	if err := le(&vocab); err != nil {
		return nil, err
	}
	if dim == 0 || dim > 1<<16 || vocab > 1<<26 {
		return nil, fmt.Errorf("textembed: implausible header dim=%d vocab=%d", dim, vocab)
	}
	wv := &WordVectors{
		Dim:  int(dim),
		vecs: make(map[string]Vector, vocab),
		df:   make(map[string]int, vocab),
		docs: int(docs),
		seed: seed,
		nnz:  int(nnz),
	}
	for i := uint32(0); i < vocab; i++ {
		var wl uint32
		if err := le(&wl); err != nil {
			return nil, fmt.Errorf("textembed: word %d: %w", i, err)
		}
		if wl > 1<<16 {
			return nil, fmt.Errorf("textembed: word length %d too large", wl)
		}
		buf := make([]byte, wl)
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		word := string(buf)
		var df uint32
		if err := le(&df); err != nil {
			return nil, err
		}
		vec := make(Vector, dim)
		if err := le([]float32(vec)); err != nil {
			return nil, err
		}
		if _, dup := wv.vecs[word]; dup {
			return nil, fmt.Errorf("textembed: duplicate word %q", word)
		}
		wv.vecs[word] = vec
		wv.df[word] = int(df)
	}
	return wv, nil
}
