package textembed

import (
	"math/rand"
	"sort"
)

// LSH is a random-hyperplane locality-sensitive hash index for cosine
// similarity (Charikar's SimHash). The embedding competitors (DOC2VEC,
// SBERT) rank by exhaustive cosine scan, which is linear in the corpus;
// the index trades a little recall for sublinear candidate generation —
// the standard production path for dense retrieval at the paper's corpus
// sizes (90k documents).
type LSH struct {
	dim    int
	bits   int
	tables int
	probes int
	planes [][]Vector // planes[t][b] is the b-th hyperplane of table t
	bucket []map[uint64][]int32
	vecs   []Vector
}

// LSHConfig parameterizes the index.
type LSHConfig struct {
	Dim    int
	Bits   int // signature bits per table (bucket granularity)
	Tables int // independent tables (recall)
	// Probes is the multiprobe Hamming radius: 0 checks only the exact
	// bucket, 1 additionally flips each signature bit once, 2 also flips
	// pairs. Larger radii raise recall and cost.
	Probes int
	Seed   int64
}

// DefaultLSHConfig suits corpora in the 10^4..10^5 range.
func DefaultLSHConfig(dim int, seed int64) LSHConfig {
	return LSHConfig{Dim: dim, Bits: 14, Tables: 12, Probes: 1, Seed: seed}
}

// NewLSH builds an empty index.
func NewLSH(cfg LSHConfig) *LSH {
	if cfg.Bits <= 0 || cfg.Bits > 63 || cfg.Tables <= 0 || cfg.Dim <= 0 {
		panic("textembed: invalid LSH config")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	l := &LSH{dim: cfg.Dim, bits: cfg.Bits, tables: cfg.Tables, probes: cfg.Probes}
	l.planes = make([][]Vector, cfg.Tables)
	l.bucket = make([]map[uint64][]int32, cfg.Tables)
	for t := range l.planes {
		l.planes[t] = make([]Vector, cfg.Bits)
		for b := range l.planes[t] {
			p := make(Vector, cfg.Dim)
			for i := range p {
				p[i] = float32(rng.NormFloat64())
			}
			l.planes[t][b] = p
		}
		l.bucket[t] = make(map[uint64][]int32)
	}
	return l
}

// signature hashes v in table t.
func (l *LSH) signature(t int, v Vector) uint64 {
	var sig uint64
	for b, plane := range l.planes[t] {
		if Dot(plane, v) >= 0 {
			sig |= 1 << uint(b)
		}
	}
	return sig
}

// Add indexes a vector and returns its id (insertion order).
func (l *LSH) Add(v Vector) int {
	id := int32(len(l.vecs))
	l.vecs = append(l.vecs, v)
	for t := 0; t < l.tables; t++ {
		sig := l.signature(t, v)
		l.bucket[t][sig] = append(l.bucket[t][sig], id)
	}
	return int(id)
}

// Len returns the number of indexed vectors.
func (l *LSH) Len() int { return len(l.vecs) }

// TopK returns approximately the k most cosine-similar indexed vectors.
// Candidates come from the query's bucket in every table plus multiprobe
// neighbors (signatures at Hamming distance 1); they are then ranked by
// exact cosine. With clustered data recall is high; in the worst case the
// result may miss true neighbors — callers needing exactness use
// TopKCosine.
func (l *LSH) TopK(q Vector, k int) []Neighbor {
	if k <= 0 || len(l.vecs) == 0 {
		return nil
	}
	seen := make(map[int32]bool)
	var candidates []int32
	collect := func(t int, sig uint64) {
		for _, id := range l.bucket[t][sig] {
			if !seen[id] {
				seen[id] = true
				candidates = append(candidates, id)
			}
		}
	}
	for t := 0; t < l.tables; t++ {
		sig := l.signature(t, q)
		collect(t, sig)
		// Multiprobe: near-boundary neighbors land in adjacent buckets far
		// more often than in random ones.
		if l.probes >= 1 {
			for b := 0; b < l.bits; b++ {
				collect(t, sig^(1<<uint(b)))
				if l.probes >= 2 {
					for c := b + 1; c < l.bits; c++ {
						collect(t, sig^(1<<uint(b))^(1<<uint(c)))
					}
				}
			}
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	type scored struct {
		id int32
		s  float64
	}
	all := make([]scored, len(candidates))
	for i, id := range candidates {
		all[i] = scored{id, Cosine(q, l.vecs[id])}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].id < all[j].id
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]Neighbor, k)
	for i := 0; i < k; i++ {
		out[i] = Neighbor{Idx: int(all[i].id), Score: all[i].s}
	}
	return out
}
