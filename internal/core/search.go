package core

import (
	"context"
	"sync"

	"newslink/internal/kg"
)

// Searcher finds subgraph embeddings in a knowledge graph. It is safe for
// concurrent use: traversal states are recycled through an internal
// sync.Pool, so concurrent Find calls each borrow an independent state and
// a steady-state query allocates nothing in the enumeration loop.
type Searcher struct {
	g    *kg.Graph
	opts Options
	pool sync.Pool // of *state
}

// NewSearcher returns a Searcher over g with the given options.
func NewSearcher(g *kg.Graph, opts Options) *Searcher {
	if opts.MaxExpansions <= 0 {
		opts.MaxExpansions = DefaultMaxExpansions
	}
	s := &Searcher{g: g, opts: opts}
	s.pool.New = func() any { return newState(s.g, s.opts) }
	return s
}

// Graph returns the knowledge graph the searcher operates on.
func (s *Searcher) Graph() *kg.Graph { return s.g }

// Options returns the search options the searcher was built with.
func (s *Searcher) Options() Options { return s.opts }

// Find implements Algorithm 1: it returns the optimal subgraph embedding for
// the entity labels of one news segment, or nil if no common ancestor exists
// within the traversal budget. Labels that do not resolve to any KG node are
// ignored; if none resolve, Find returns nil.
func (s *Searcher) Find(labels []string) *Subgraph {
	sg, _ := s.FindContext(nil, labels)
	return sg
}

// FindContext is Find with cooperative cancellation: the enumeration loop
// polls ctx periodically and returns (nil, ctx.Err()) once it is done. A
// nil ctx disables polling entirely.
func (s *Searcher) FindContext(ctx context.Context, labels []string) (*Subgraph, error) {
	st := s.pool.Get().(*state)
	defer func() {
		st.release()
		s.pool.Put(st)
	}()
	st.begin(ctx)
	if !st.init(labels) {
		return nil, nil
	}
	st.run()
	if st.err != nil {
		return nil, st.err
	}
	return st.best(), nil
}

// item is one frontier entry: node v at tentative distance d from label li.
type item struct {
	d  float64
	li int32
	v  kg.NodeID
}

// less is the frontier's strict total order implementing Equation 2: the
// next path enumerated is the globally smallest distance across all labels'
// queues F_i. Ties break on label then node for determinism — and because
// the order is total, the manual heap below pops in exactly the sequence
// container/heap produced for the reference implementation.
func (a item) less(b item) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	if a.li != b.li {
		return a.li < b.li
	}
	return a.v < b.v
}

// frontier is the global min-priority queue. The hot path uses the manual
// push/popMin below (no interface boxing ⇒ no per-operation allocation);
// the heap.Interface methods remain for container/heap users such as the
// exact GST baseline's Dijkstra relaxation.
type frontier []item

func (f frontier) Len() int           { return len(f) }
func (f frontier) Less(i, j int) bool { return f[i].less(f[j]) }
func (f frontier) Swap(i, j int)      { f[i], f[j] = f[j], f[i] }
func (f *frontier) Push(x any)        { *f = append(*f, x.(item)) }
func (f *frontier) Pop() any {
	old := *f
	n := len(old)
	it := old[n-1]
	*f = old[:n-1]
	return it
}

// push inserts it, sifting up.
func (f *frontier) push(it item) {
	h := append(*f, it)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h[i].less(h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	*f = h
}

// popMin removes and returns the minimum entry. The caller must ensure the
// frontier is non-empty.
func (f *frontier) popMin() item {
	h := *f
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h = h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h[l].less(h[small]) {
			small = l
		}
		if r < n && h[r].less(h[small]) {
			small = r
		}
		if small == i {
			break
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
	*f = h
	return top
}
