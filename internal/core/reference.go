package core

import (
	"container/heap"
	"sort"

	"newslink/internal/kg"
)

// This file preserves the original map-based G* implementation as an
// executable specification. FindReference is the seed Find, byte for byte
// modulo renames: per-label map[kg.NodeID]float64 distances,
// map[kg.NodeID]bool settled sets, a global reached counter map, and
// container/heap frontier operations. The flat-state fast path
// (state.go/search.go) must produce embeddings identical to it — root,
// labels, distance vectors, node set, arcs and serialized bytes — which
// the identity property tests assert over synthetic worlds, and the
// benchmark band reports both paths so the speedup stays measured against
// the true baseline rather than a remembered number.

// FindReference computes the same optimal subgraph embedding as Find using
// the original (pre-flat-state) map-based traversal. It allocates its
// entire state per call and is retained for verification and baseline
// benchmarking only; use Find for production traffic.
func (s *Searcher) FindReference(labels []string) *Subgraph {
	st := newRefState(s.g, s.opts, labels)
	if st == nil {
		return nil
	}
	st.run()
	return st.best()
}

// refLabelState is the per-label Dijkstra state (the paper's F_i plus the
// distance map and shortest-path DAG parents for reconstruction).
type refLabelState struct {
	dist    map[kg.NodeID]float64
	settled map[kg.NodeID]bool
	parents map[kg.NodeID][]PathArc
}

type refState struct {
	g      *kg.Graph
	opts   Options
	labels []string // deduplicated labels that resolved to >=1 node
	ls     []refLabelState
	h      frontier
	// reached counts how many labels have assigned a finite distance to a
	// node; when it hits len(labels) the node becomes a candidate root.
	reached    map[kg.NodeID]int32
	candidates []kg.NodeID
	candSet    map[kg.NodeID]bool
	minDepth   float64 // min over candidates of depth at insertion (C2)
	minSum     float64 // min over candidates of distance sum (ModelTree)
	expansions int
}

// newRefState initializes Algorithm 1 lines 1-7. It returns nil if no label
// resolves to a node.
func newRefState(g *kg.Graph, opts Options, labels []string) *refState {
	st := &refState{
		g:        g,
		opts:     opts,
		reached:  make(map[kg.NodeID]int32),
		candSet:  make(map[kg.NodeID]bool),
		minDepth: inf,
		minSum:   inf,
	}
	// First pass: register every label that resolves, so the candidate test
	// (reached == len(labels)) sees the final label count.
	seen := make(map[string]bool, len(labels))
	var sourceSets [][]kg.NodeID
	for _, l := range labels {
		key := kg.Fold(l)
		if seen[key] {
			continue
		}
		sources := g.Lookup(key)
		if len(sources) == 0 {
			continue
		}
		seen[key] = true
		st.labels = append(st.labels, key)
		sourceSets = append(sourceSets, sources)
	}
	if len(st.labels) == 0 {
		return nil
	}
	// Second pass: seed the per-label frontiers F_i (Algorithm 1 lines 1-5).
	for li, sources := range sourceSets {
		ls := refLabelState{
			dist:    make(map[kg.NodeID]float64),
			settled: make(map[kg.NodeID]bool),
			parents: make(map[kg.NodeID][]PathArc),
		}
		st.ls = append(st.ls, ls)
		for _, v := range sources {
			if _, ok := ls.dist[v]; ok {
				continue
			}
			ls.dist[v] = 0
			st.noteReached(v)
			heap.Push(&st.h, item{0, int32(li), v})
		}
	}
	return st
}

// noteReached records that one more label reached v and promotes v to a
// candidate root when all labels have (Algorithm 3).
func (st *refState) noteReached(v kg.NodeID) {
	st.reached[v]++
	if int(st.reached[v]) != len(st.labels) || st.candSet[v] {
		return
	}
	st.candSet[v] = true
	st.candidates = append(st.candidates, v)
	depth, sum := 0.0, 0.0
	for i := range st.ls {
		d := st.ls[i].dist[v]
		sum += d
		if d > depth {
			depth = d
		}
	}
	if depth < st.minDepth {
		st.minDepth = depth
	}
	if sum < st.minSum {
		st.minSum = sum
	}
}

// peekValid returns the distance of the next non-stale frontier entry
// (D'_min at Algorithm 1 line 11), discarding stale entries as it goes.
func (st *refState) peekValid() float64 {
	for st.h.Len() > 0 {
		top := st.h[0]
		ls := &st.ls[top.li]
		if ls.settled[top.v] || top.d > ls.dist[top.v] {
			heap.Pop(&st.h)
			continue
		}
		return top.d
	}
	return inf
}

// run is the PathEnumeration / CandidateCollection loop (Algorithm 1 lines
// 8-13, Algorithm 2).
func (st *refState) run() {
	for st.expansions < st.opts.MaxExpansions {
		// Termination test: C1 (a candidate exists) and C2 (the next frontier
		// distance exceeds the collected depth). TreeEmb uses the Steiner
		// lower bound m*D'_min instead.
		next := st.peekValid()
		if next == inf {
			return // graph exhausted
		}
		if len(st.candidates) > 0 && !st.opts.NoEarlyStop {
			if st.opts.Model == ModelTree {
				if st.minSum <= float64(len(st.labels))*next {
					return
				}
			} else if st.minDepth < next {
				return
			}
		}
		// PathEnumeration: pop the globally smallest frontier entry.
		it := heap.Pop(&st.h).(item)
		ls := &st.ls[it.li]
		if ls.settled[it.v] || it.d > ls.dist[it.v] {
			continue // stale
		}
		ls.settled[it.v] = true
		st.expansions++
		for _, a := range st.g.Neighbors(it.v) {
			nd := it.d + a.Weight
			if st.opts.MaxDepth > 0 && nd > st.opts.MaxDepth {
				continue
			}
			cur, ok := ls.dist[a.To]
			arc := PathArc{From: it.v, To: a.To, Rel: a.Rel, Reverse: a.Reverse}
			switch {
			case !ok || nd < cur:
				ls.dist[a.To] = nd
				ls.parents[a.To] = append(ls.parents[a.To][:0], arc)
				heap.Push(&st.h, item{nd, it.li, a.To})
				if !ok {
					st.noteReached(a.To)
				}
			case nd == cur:
				// An equal-cost path: preserve it for the "width" of the
				// embedding (Definition 3 keeps all shortest paths).
				ls.parents[a.To] = append(ls.parents[a.To], arc)
			}
		}
	}
}

// best implements compactness sorting (Algorithm 1 line 14) and subgraph
// reconstruction, returning nil when no candidate was collected.
func (st *refState) best() *Subgraph {
	if len(st.candidates) == 0 {
		return nil
	}
	vec := func(v kg.NodeID) []float64 {
		out := make([]float64, len(st.ls))
		for i := range st.ls {
			out[i] = st.ls[i].dist[v]
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(out)))
		return out
	}
	bestV := st.candidates[0]
	bestVec := vec(bestV)
	for _, v := range st.candidates[1:] {
		cand := vec(v)
		var better bool
		switch {
		case st.opts.Model == ModelTree:
			cs, bs := sumVec(cand), sumVec(bestVec)
			better = cs < bs || cs == bs && CompareCompactness(cand, bestVec) < 0 ||
				cs == bs && CompareCompactness(cand, bestVec) == 0 && v < bestV
		case st.opts.DepthOnly:
			// Ablation: plain depth minimization ignores the tie-breaking
			// tail of the compactness order.
			cd, bd := cand[0], bestVec[0]
			better = cd < bd || cd == bd && v < bestV
		default:
			c := CompareCompactness(cand, bestVec)
			better = c < 0 || c == 0 && v < bestV
		}
		if better {
			bestV, bestVec = v, cand
		}
	}
	return st.reconstruct(bestV)
}

// reconstruct builds the subgraph G_r(L) = union over labels of the
// shortest paths from the label's sources to the root (Definition 3 /
// Equation 1). For ModelTree only the first recorded parent is followed,
// yielding a single path per label.
func (st *refState) reconstruct(root kg.NodeID) *Subgraph {
	sg := &Subgraph{
		Root:       root,
		Labels:     append([]string(nil), st.labels...),
		Dists:      make([]float64, len(st.labels)),
		Expansions: st.expansions,
	}
	sg.LabelArcs = make([][]PathArc, len(st.labels))
	nodeSet := map[kg.NodeID]bool{root: true}
	arcSet := map[PathArc]bool{}
	for i := range st.ls {
		ls := &st.ls[i]
		sg.Dists[i] = ls.dist[root]
		// Walk the shortest-path DAG backwards from the root. Arcs are
		// oriented From(parent, closer to the label) -> To(closer to root).
		visited := map[kg.NodeID]bool{root: true}
		labelSeen := map[PathArc]bool{}
		stack := []kg.NodeID{root}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			parents := ls.parents[v]
			if st.opts.Model == ModelTree && len(parents) > 1 {
				parents = parents[:1]
			}
			for _, p := range parents {
				arcSet[p] = true
				if !labelSeen[p] {
					labelSeen[p] = true
					sg.LabelArcs[i] = append(sg.LabelArcs[i], p)
				}
				nodeSet[p.From] = true
				if !visited[p.From] {
					visited[p.From] = true
					stack = append(stack, p.From)
				}
			}
		}
		sortArcs(sg.LabelArcs[i])
	}
	sg.Nodes = make([]kg.NodeID, 0, len(nodeSet))
	for v := range nodeSet {
		sg.Nodes = append(sg.Nodes, v)
	}
	sort.Slice(sg.Nodes, func(i, j int) bool { return sg.Nodes[i] < sg.Nodes[j] })
	sg.Arcs = make([]PathArc, 0, len(arcSet))
	for a := range arcSet {
		sg.Arcs = append(sg.Arcs, a)
	}
	sortArcs(sg.Arcs)
	return sg
}
