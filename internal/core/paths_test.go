package core

import (
	"strings"
	"testing"

	"newslink/internal/kg"
)

func TestPathsBetweenFigure1(t *testing.T) {
	g := figure1Graph()
	sg := find(t, g, Options{}, "Taliban", "Upper Dir", "Swat Valley", "Pakistan")
	if sg == nil {
		t.Fatal("no embedding")
	}
	paths := sg.PathsBetween("taliban", "upper dir", 10)
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2 (via Kunar and via Waziristan)", len(paths))
	}
	var rendered []string
	for _, p := range paths {
		rendered = append(rendered, p.Render(g))
	}
	joined := strings.Join(rendered, "\n")
	if !strings.Contains(joined, "Kunar") || !strings.Contains(joined, "Waziristan") {
		t.Fatalf("paths miss an induced entity:\n%s", joined)
	}
	for _, r := range rendered {
		if !strings.HasPrefix(r, "Taliban") || !strings.HasSuffix(r, "Upper Dir") {
			t.Errorf("path endpoints wrong: %s", r)
		}
		if !strings.Contains(r, "-[active in]->") {
			t.Errorf("forward direction lost: %s", r)
		}
		if !strings.Contains(r, "<-[located in]-") {
			t.Errorf("reverse direction lost: %s", r)
		}
	}
}

func TestPathsBetweenLimit(t *testing.T) {
	g := figure1Graph()
	sg := find(t, g, Options{}, "Taliban", "Upper Dir")
	if got := len(sg.PathsBetween("taliban", "upper dir", 1)); got != 1 {
		t.Fatalf("limit ignored: %d paths", got)
	}
	if got := sg.PathsBetween("taliban", "nope", 5); got != nil {
		t.Fatalf("unknown label should yield nil, got %v", got)
	}
	if got := sg.PathsBetween("taliban", "upper dir", 0); got != nil {
		t.Fatalf("zero limit should yield nil, got %v", got)
	}
}

func TestPathsBetweenSameSide(t *testing.T) {
	// Two labels whose paths to the root share a prefix: the joined path
	// must not double back through the root.
	b := kg.NewBuilder(5)
	a := b.AddNode("A", kg.KindGPE, "")
	c := b.AddNode("C", kg.KindGPE, "")
	d := b.AddNode("D", kg.KindGPE, "")
	r := b.AddNode("R", kg.KindGPE, "")
	e := b.AddNode("E", kg.KindGPE, "")
	// A -> C -> R, D -> C -> R, E -> R.
	b.AddEdgeByName(a, c, "in", 1)
	b.AddEdgeByName(d, c, "in", 1)
	b.AddEdgeByName(c, r, "in", 1)
	b.AddEdgeByName(e, r, "in", 1)
	g := b.Build()
	sg := find(t, g, Options{}, "A", "D", "E")
	if sg == nil {
		t.Fatal("no embedding")
	}
	if g.Label(sg.Root) != "R" && g.Label(sg.Root) != "C" {
		t.Fatalf("unexpected root %s", g.Label(sg.Root))
	}
	paths := sg.PathsBetween("a", "d", 5)
	if len(paths) == 0 {
		t.Fatal("no path between A and D")
	}
	p := paths[0]
	// The path should meet at C (shared ancestor), i.e. 2 hops A->C<-D, not 4.
	if len(p.Hops) != 2 {
		t.Fatalf("path %s has %d hops, want 2 (meet at C)", p.Render(g), len(p.Hops))
	}
}

func TestPathRenderEmpty(t *testing.T) {
	var p RelPath
	if got := p.Render(figure1Graph()); got != "" {
		t.Fatalf("empty path rendered %q", got)
	}
}

func TestPathsBetweenRootLabel(t *testing.T) {
	g := figure1Graph()
	// Pakistan and Khyber: Khyber IS the root of this embedding.
	sg := find(t, g, Options{}, "Pakistan", "Khyber")
	if sg == nil {
		t.Fatal("no embedding")
	}
	paths := sg.PathsBetween("khyber", "pakistan", 5)
	if len(paths) != 1 {
		t.Fatalf("got %d paths, want 1", len(paths))
	}
	if got := len(paths[0].Hops); got != 1 {
		t.Fatalf("hops = %d, want 1", got)
	}
	r := paths[0].Render(g)
	if !strings.HasPrefix(r, "Khyber") || !strings.HasSuffix(r, "Pakistan") {
		t.Fatalf("render = %s", r)
	}
}

func TestDocEmbeddingPathsAndNodes(t *testing.T) {
	g := figure1Graph()
	e := NewEmbedder(g, Options{})
	d := e.EmbedGroups([][]string{
		{"pakistan", "taliban"},
		{"upper dir", "swat valley", "pakistan", "taliban"},
	})
	if d == nil || len(d.Subgraphs) != 2 {
		t.Fatalf("embedding = %+v", d)
	}
	nodes := d.Nodes()
	if len(nodes) == 0 {
		t.Fatal("no nodes")
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i] <= nodes[i-1] {
			t.Fatal("Nodes() not sorted ascending")
		}
	}
	// Counts: Khyber should appear in both subgraphs.
	khyber := g.Lookup("Khyber")[0]
	if d.Counts[khyber] != 2 {
		t.Fatalf("Khyber count = %d, want 2", d.Counts[khyber])
	}
	paths := d.PathsBetween("taliban", "pakistan", 3)
	if len(paths) == 0 {
		t.Fatal("no relationship paths across the document embedding")
	}
	for i := 1; i < len(paths); i++ {
		if len(paths[i].Hops) < len(paths[i-1].Hops) {
			t.Fatal("paths not sorted by length")
		}
	}
}

func TestEmbedGroupsSkipsUnembeddable(t *testing.T) {
	g := figure1Graph()
	e := NewEmbedder(g, Options{})
	d := e.EmbedGroups([][]string{{"atlantis"}, {"pakistan", "taliban"}})
	if d == nil || len(d.Subgraphs) != 1 {
		t.Fatalf("want exactly one subgraph, got %+v", d)
	}
	if e.EmbedGroups([][]string{{"atlantis"}}) != nil {
		t.Fatal("fully unembeddable document should return nil")
	}
	if e.EmbedGroups(nil) != nil {
		t.Fatal("no groups should return nil")
	}
}

func TestOverlapNil(t *testing.T) {
	g := figure1Graph()
	e := NewEmbedder(g, Options{})
	d := e.EmbedGroups([][]string{{"pakistan", "taliban"}})
	if d.Overlap(nil) != nil {
		t.Fatal("overlap with nil should be nil")
	}
	var nilEmb *DocEmbedding
	if nilEmb.PathsBetween("a", "b", 3) != nil {
		t.Fatal("nil embedding paths should be nil")
	}
}
