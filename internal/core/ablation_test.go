package core

import (
	"testing"

	"newslink/internal/kg"
)

// eventLabels extracts realistic entity groups from a synthetic world.
func eventLabels(w *kg.World, n int) [][]string {
	var out [][]string
	for _, ev := range w.Events {
		if len(out) >= n {
			break
		}
		var labels []string
		for _, p := range ev.Participants {
			labels = append(labels, w.Graph.Label(p))
		}
		labels = append(labels, w.Graph.Label(ev.Location))
		out = append(out, labels)
	}
	return out
}

// TestNoEarlyStopEquivalence: disabling C1/C2 must not change the result's
// compactness, only the amount of traversal (ablation 3 of DESIGN.md).
func TestNoEarlyStopEquivalence(t *testing.T) {
	w := kg.Generate(kg.DefaultConfig(31))
	g := w.Graph
	fast := NewSearcher(g, Options{MaxDepth: 4})
	slow := NewSearcher(g, Options{MaxDepth: 4, NoEarlyStop: true})
	for _, labels := range eventLabels(w, 12) {
		a := fast.Find(labels)
		b := slow.Find(labels)
		if (a == nil) != (b == nil) {
			t.Fatalf("existence mismatch for %v", labels)
		}
		if a == nil {
			continue
		}
		if CompareCompactness(a.DepthVector(), b.DepthVector()) != 0 {
			t.Fatalf("compactness mismatch: %v vs %v", a.DepthVector(), b.DepthVector())
		}
		if b.Expansions < a.Expansions {
			t.Fatalf("exhaustive run expanded less (%d) than early-stopping run (%d)",
				b.Expansions, a.Expansions)
		}
	}
}

// TestDepthOnlyAblation: depth-only selection achieves the same minimal
// depth (Lemma 1) but may pick a root with a worse compactness tail.
func TestDepthOnlyAblation(t *testing.T) {
	w := kg.Generate(kg.DefaultConfig(32))
	g := w.Graph
	full := NewSearcher(g, Options{MaxDepth: 4})
	depth := NewSearcher(g, Options{MaxDepth: 4, DepthOnly: true})
	tailWorse := false
	for _, labels := range eventLabels(w, 15) {
		a := full.Find(labels)
		b := depth.Find(labels)
		if a == nil || b == nil {
			continue
		}
		if a.Depth() != b.Depth() {
			t.Fatalf("depths differ: %v vs %v", a.Depth(), b.Depth())
		}
		if CompareCompactness(a.DepthVector(), b.DepthVector()) > 0 {
			t.Fatalf("full order picked a less compact vector: %v vs %v",
				a.DepthVector(), b.DepthVector())
		}
		if CompareCompactness(a.DepthVector(), b.DepthVector()) < 0 {
			tailWorse = true
		}
	}
	_ = tailWorse // tail differences depend on the world; equality is legal
}
