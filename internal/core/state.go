package core

import (
	"context"
	"math"
	"slices"
	"sort"

	"newslink/internal/kg"
)

// This file holds the flat traversal state of the G* search. The original
// implementation (retained verbatim as FindReference, reference.go) kept
// per-label map[kg.NodeID]float64 distance maps, map[kg.NodeID]bool settled
// sets and a global reached map — at 10⁶⁺ nodes every relaxation was a hash
// probe into a pointer-chasing table, and every query re-allocated the
// whole visited set. The layout below replaces all of it:
//
//   - Per-label state lives in fixed-size pages of statePageSize node IDs
//     (dist array, settled bitset words, parent-arc slices), allocated
//     lazily for the pages the traversal actually touches, so memory stays
//     proportional to the visited set rather than the graph.
//   - Every page carries an epoch stamp. A query bumps the state's epoch
//     once; a page whose stamp is stale is reset (dist=+Inf, settled=0,
//     parents truncated in place) on first touch. Nothing is cleared at
//     release time, so recycling a state costs O(1).
//   - The candidate set and reconstruction visited sets are kg.Bitset
//     values with sparse reset: clearing costs O(words touched).
//   - States are recycled through the owning Searcher's sync.Pool, so a
//     steady-state query performs zero allocations in the enumeration loop
//     (the returned Subgraph is freshly allocated — it outlives the state).
//
// The enumeration order is bit-for-bit identical to the reference: the
// frontier is the same (distance, label, node) strict total order, page
// lookups preserve the map semantics (+Inf ⇔ absent), and the identity
// property tests compare entire serialized embeddings against
// FindReference on synthetic worlds.

const (
	statePageBits  = 10
	statePageSize  = 1 << statePageBits
	statePageMask  = statePageSize - 1
	statePageWords = statePageSize / 64
)

// infDists is the reset image of a page's distance array.
var infDists = func() (d [statePageSize]float64) {
	for i := range d {
		d[i] = math.Inf(1)
	}
	return
}()

// statePage is the per-label traversal state of one aligned block of
// statePageSize node IDs: tentative distances (+Inf = undiscovered),
// settled bits, and the shortest-path DAG parent arcs. Parent slices keep
// their capacity across epochs, so re-expanding a recycled page allocates
// only when a node collects more equal-cost parents than it ever had.
type statePage struct {
	epoch   uint64
	settled [statePageWords]uint64
	dist    [statePageSize]float64
	parents [statePageSize][]PathArc
}

func (p *statePage) reset(epoch uint64) {
	p.epoch = epoch
	copy(p.dist[:], infDists[:])
	p.settled = [statePageWords]uint64{}
	for i := range p.parents {
		p.parents[i] = p.parents[i][:0]
	}
}

// labelState is one label's paged Dijkstra state (the paper's F_i distance
// structure plus parents for reconstruction).
type labelState struct {
	pages []*statePage
}

// page returns the page holding node block pi, fresh for epoch.
func (ls *labelState) page(pi int, epoch uint64) *statePage {
	p := ls.pages[pi]
	if p == nil {
		p = new(statePage)
		ls.pages[pi] = p
	}
	if p.epoch != epoch {
		p.reset(epoch)
	}
	return p
}

// reachPage counts, per node of one block, how many labels have assigned a
// finite distance (the candidate test of Algorithm 3).
type reachPage struct {
	epoch uint64
	cnt   [statePageSize]int32
}

func pageOf(v kg.NodeID) (pi, off int) {
	return int(v) >> statePageBits, int(v) & statePageMask
}

// state is one pooled G* traversal. It is owned by a single Find/FindK
// call at a time and recycled through the Searcher's pool.
type state struct {
	g      *kg.Graph
	opts   Options
	epoch  uint64
	nPages int

	labels     []string // deduplicated labels that resolved to >=1 node
	ls         []labelState
	h          frontier
	reach      []*reachPage
	candSet    *kg.Bitset
	candidates []kg.NodeID
	minDepth   float64 // min over candidates of depth at insertion (C2)
	minSum     float64 // min over candidates of distance sum (ModelTree)
	expansions int

	// reconstruction scratch, reused across calls
	nodeSeen  *kg.Bitset
	visitSeen *kg.Bitset
	nodeBuf   []kg.NodeID
	stack     []kg.NodeID
	vecA      []float64
	vecB      []float64

	// ctx, polled every ctxPollMask+1 loop iterations when non-nil, lets
	// EmbedGroupsContext cancel a long enumeration cooperatively.
	ctx   context.Context
	steps int
	err   error
}

// ctxPollMask throttles context polling in the enumeration loop.
const ctxPollMask = 255

func newState(g *kg.Graph, opts Options) *state {
	n := g.NumNodes()
	np := (n + statePageSize - 1) / statePageSize
	return &state{
		g:         g,
		opts:      opts,
		nPages:    np,
		reach:     make([]*reachPage, np),
		candSet:   kg.NewBitset(n),
		nodeSeen:  kg.NewBitset(n),
		visitSeen: kg.NewBitset(n),
	}
}

// begin readies a (possibly recycled) state for one query: a single epoch
// bump invalidates every page lazily; only the bitsets and slice headers
// are reset eagerly, each in O(touched).
func (st *state) begin(ctx context.Context) {
	st.epoch++
	st.labels = st.labels[:0]
	st.h = st.h[:0]
	st.candidates = st.candidates[:0]
	st.candSet.Reset()
	st.minDepth, st.minSum = inf, inf
	st.expansions = 0
	st.ctx = ctx
	st.steps = 0
	st.err = nil
}

// release drops request-scoped references before the state returns to the
// pool.
func (st *state) release() { st.ctx = nil }

// hasLabel reports whether the folded key is already registered. Label
// sets are tiny (one news segment's entities), so a linear scan beats a
// map and allocates nothing.
func (st *state) hasLabel(key string) bool {
	for _, l := range st.labels {
		if l == key {
			return true
		}
	}
	return false
}

// init is Algorithm 1 lines 1-7: resolve and deduplicate the labels, then
// seed every label's frontier with its source nodes at distance 0. It
// returns false if no label resolves to a node.
func (st *state) init(labels []string) bool {
	// First pass: register every label that resolves, so the candidate test
	// (reached == len(labels)) sees the final label count.
	for _, l := range labels {
		key := kg.Fold(l)
		if st.hasLabel(key) {
			continue
		}
		if len(st.g.Lookup(key)) == 0 {
			continue
		}
		st.labels = append(st.labels, key)
	}
	if len(st.labels) == 0 {
		return false
	}
	for len(st.ls) < len(st.labels) {
		st.ls = append(st.ls, labelState{pages: make([]*statePage, st.nPages)})
	}
	// Second pass: seed the per-label frontiers F_i (Algorithm 1 lines 1-5).
	for li, key := range st.labels {
		ls := &st.ls[li]
		for _, v := range st.g.Lookup(key) {
			pi, off := pageOf(v)
			p := ls.page(pi, st.epoch)
			if p.dist[off] != inf {
				continue
			}
			p.dist[off] = 0
			st.noteReached(v)
			st.h.push(item{0, int32(li), v})
		}
	}
	return true
}

// distOf returns label li's distance to v. The caller guarantees li has
// discovered v this epoch (candidates and heap entries always have).
func (st *state) distOf(li int, v kg.NodeID) float64 {
	pi, off := pageOf(v)
	return st.ls[li].pages[pi].dist[off]
}

// noteReached records that one more label reached v and promotes v to a
// candidate root when all labels have (Algorithm 3).
func (st *state) noteReached(v kg.NodeID) {
	pi, off := pageOf(v)
	rp := st.reach[pi]
	if rp == nil {
		rp = new(reachPage)
		st.reach[pi] = rp
	}
	if rp.epoch != st.epoch {
		rp.epoch = st.epoch
		clear(rp.cnt[:])
	}
	rp.cnt[off]++
	if int(rp.cnt[off]) != len(st.labels) || st.candSet.Test(int(v)) {
		return
	}
	st.candSet.Set(int(v))
	st.candidates = append(st.candidates, v)
	depth, sum := 0.0, 0.0
	for i := range st.labels {
		d := st.distOf(i, v)
		sum += d
		if d > depth {
			depth = d
		}
	}
	if depth < st.minDepth {
		st.minDepth = depth
	}
	if sum < st.minSum {
		st.minSum = sum
	}
}

// peekValid returns the distance of the next non-stale frontier entry
// (D'_min at Algorithm 1 line 11), discarding stale entries as it goes.
func (st *state) peekValid() float64 {
	for len(st.h) > 0 {
		top := st.h[0]
		pi, off := pageOf(top.v)
		p := st.ls[top.li].pages[pi]
		if p.settled[off>>6]&(1<<(off&63)) != 0 || top.d > p.dist[off] {
			st.h.popMin()
			continue
		}
		return top.d
	}
	return inf
}

// run is the PathEnumeration / CandidateCollection loop (Algorithm 1 lines
// 8-13, Algorithm 2).
func (st *state) run() {
	m := len(st.labels)
	for st.expansions < st.opts.MaxExpansions {
		if st.ctx != nil {
			if st.steps&ctxPollMask == 0 {
				if err := st.ctx.Err(); err != nil {
					st.err = err
					return
				}
			}
			st.steps++
		}
		// Termination test: C1 (a candidate exists) and C2 (the next frontier
		// distance exceeds the collected depth). TreeEmb uses the Steiner
		// lower bound m*D'_min instead.
		next := st.peekValid()
		if next == inf {
			return // graph exhausted
		}
		// Termination. G* stops under C1 (a candidate exists) and C2 (the
		// next frontier distance exceeds the collected depth). ModelTree
		// stops under the Steiner lower bound: any undiscovered root has
		// every label at distance >= next, hence sum >= m*next — a sound,
		// quality-preserving cut that the as-published bidirectional-
		// expansion baseline LACKS; pass NoEarlyStop to time that original
		// exhaustive behaviour (Figure 7 reproduces the published gap).
		if len(st.candidates) > 0 && !st.opts.NoEarlyStop {
			if st.opts.Model == ModelTree {
				if st.minSum <= float64(m)*next {
					return
				}
			} else if st.minDepth < next {
				return
			}
		}
		// PathEnumeration: pop the globally smallest frontier entry.
		it := st.h.popMin()
		ls := &st.ls[it.li]
		pi, off := pageOf(it.v)
		p := ls.pages[pi]
		w, bit := off>>6, uint64(1)<<(off&63)
		if p.settled[w]&bit != 0 || it.d > p.dist[off] {
			continue // stale
		}
		p.settled[w] |= bit
		st.expansions++
		for _, a := range st.g.Neighbors(it.v) {
			nd := it.d + a.Weight
			if st.opts.MaxDepth > 0 && nd > st.opts.MaxDepth {
				continue
			}
			npi, noff := pageOf(a.To)
			np := ls.page(npi, st.epoch)
			cur := np.dist[noff] // +Inf ⇔ undiscovered
			arc := PathArc{From: it.v, To: a.To, Rel: a.Rel, Reverse: a.Reverse}
			switch {
			case nd < cur:
				np.dist[noff] = nd
				np.parents[noff] = append(np.parents[noff][:0], arc)
				st.h.push(item{nd, it.li, a.To})
				if cur == inf {
					st.noteReached(a.To)
				}
			case nd == cur:
				// An equal-cost path: preserve it for the "width" of the
				// embedding (Definition 3 keeps all shortest paths).
				np.parents[noff] = append(np.parents[noff], arc)
			}
		}
	}
}

// sortDescending orders a compactness vector in place, largest first —
// the allocation-free equivalent of sort.Sort(sort.Reverse(Float64Slice)).
// Vectors are one entity group's label count long, so insertion sort wins.
func sortDescending(v []float64) {
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for j >= 0 && v[j] < x {
			v[j+1] = v[j]
			j--
		}
		v[j+1] = x
	}
}

// fillVec writes v's descending-sorted distance vector into out.
func (st *state) fillVec(out []float64, v kg.NodeID) {
	for i := range out {
		out[i] = st.distOf(i, v)
	}
	sortDescending(out)
}

// best implements compactness sorting (Algorithm 1 line 14) and subgraph
// reconstruction, returning nil when no candidate was collected. The two
// comparison vectors live in pooled scratch buffers.
func (st *state) best() *Subgraph {
	if len(st.candidates) == 0 {
		return nil
	}
	m := len(st.labels)
	if cap(st.vecA) < m {
		st.vecA = make([]float64, m)
		st.vecB = make([]float64, m)
	}
	bestVec, cand := st.vecA[:m], st.vecB[:m]
	bestV := st.candidates[0]
	st.fillVec(bestVec, bestV)
	for _, v := range st.candidates[1:] {
		st.fillVec(cand, v)
		var better bool
		switch {
		case st.opts.Model == ModelTree:
			cs, bs := sumVec(cand), sumVec(bestVec)
			better = cs < bs || cs == bs && CompareCompactness(cand, bestVec) < 0 ||
				cs == bs && CompareCompactness(cand, bestVec) == 0 && v < bestV
		case st.opts.DepthOnly:
			// Ablation: plain depth minimization ignores the tie-breaking
			// tail of the compactness order.
			cd, bd := cand[0], bestVec[0]
			better = cd < bd || cd == bd && v < bestV
		default:
			c := CompareCompactness(cand, bestVec)
			better = c < 0 || c == 0 && v < bestV
		}
		if better {
			bestV = v
			bestVec, cand = cand, bestVec
		}
	}
	return st.reconstruct(bestV)
}

// reconstruct builds the subgraph G_r(L) = union over labels of the
// shortest paths from the label's sources to the root (Definition 3 /
// Equation 1). For ModelTree only the first recorded parent is followed,
// yielding a single path per label. The visited tracking uses the pooled
// sparse-reset bitsets; only the returned Subgraph allocates.
func (st *state) reconstruct(root kg.NodeID) *Subgraph {
	m := len(st.labels)
	sg := &Subgraph{
		Root:       root,
		Labels:     append([]string(nil), st.labels...),
		Dists:      make([]float64, m),
		Expansions: st.expansions,
	}
	sg.LabelArcs = make([][]PathArc, m)
	st.nodeSeen.Reset()
	st.nodeSeen.Set(int(root))
	st.nodeBuf = append(st.nodeBuf[:0], root)
	arcSet := map[PathArc]bool{}
	for i := 0; i < m; i++ {
		ls := &st.ls[i]
		sg.Dists[i] = st.distOf(i, root)
		// Walk the shortest-path DAG backwards from the root. Arcs are
		// oriented From(parent, closer to the label) -> To(closer to root).
		st.visitSeen.Reset()
		st.visitSeen.Set(int(root))
		labelSeen := map[PathArc]bool{}
		st.stack = append(st.stack[:0], root)
		for len(st.stack) > 0 {
			v := st.stack[len(st.stack)-1]
			st.stack = st.stack[:len(st.stack)-1]
			pi, off := pageOf(v)
			parents := ls.pages[pi].parents[off]
			if st.opts.Model == ModelTree && len(parents) > 1 {
				parents = parents[:1]
			}
			for _, p := range parents {
				arcSet[p] = true
				if !labelSeen[p] {
					labelSeen[p] = true
					sg.LabelArcs[i] = append(sg.LabelArcs[i], p)
				}
				if !st.nodeSeen.TestSet(int(p.From)) {
					st.nodeBuf = append(st.nodeBuf, p.From)
				}
				if !st.visitSeen.TestSet(int(p.From)) {
					st.stack = append(st.stack, p.From)
				}
			}
		}
		sortArcs(sg.LabelArcs[i])
	}
	sg.Nodes = append([]kg.NodeID(nil), st.nodeBuf...)
	slices.Sort(sg.Nodes)
	sg.Arcs = make([]PathArc, 0, len(arcSet))
	for a := range arcSet {
		sg.Arcs = append(sg.Arcs, a)
	}
	sortArcs(sg.Arcs)
	return sg
}

// sortArcs orders arcs by (From, To, Rel) for deterministic output.
func sortArcs(arcs []PathArc) {
	sort.Slice(arcs, func(i, j int) bool {
		a, b := arcs[i], arcs[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return a.Rel < b.Rel
	})
}
