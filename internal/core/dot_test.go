package core

import (
	"fmt"
	"strings"
	"testing"
)

// lineContaining returns the first output line containing sub.
func lineContaining(out, sub string) string {
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, sub) {
			return l
		}
	}
	return ""
}

func TestDOTFigure1(t *testing.T) {
	g := figure1Graph()
	e := NewEmbedder(g, Options{})
	q := e.EmbedGroups([][]string{{"upper dir", "swat valley", "pakistan", "taliban"}})
	r := e.EmbedGroups([][]string{{"lahore", "peshawar", "pakistan", "taliban"}})
	out := DOT(g, "figure1", q, r)
	if !strings.HasPrefix(out, `digraph "figure1" {`) || !strings.HasSuffix(out, "}\n") {
		t.Fatalf("not a digraph:\n%s", out)
	}
	for _, l := range []string{"Khyber", "Taliban", "Upper Dir", "Lahore"} {
		if !strings.Contains(out, `label="`+l+`"`) {
			t.Fatalf("missing node %s:\n%s", l, out)
		}
	}
	// The shared root Khyber is boxed and the overlap is orange.
	line := lineContaining(out, `label="Khyber"`)
	if !strings.Contains(line, "shape=box") || !strings.Contains(line, "orange") {
		t.Fatalf("Khyber rendering wrong: %s", line)
	}
	// Edges keep the original KG direction: at least one located-in edge
	// points INTO Khyber.
	khyber := g.Lookup("Khyber")[0]
	target := fmt.Sprintf("-> n%d ", khyber)
	found := false
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, `label="located in"`) && strings.Contains(l, target) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no located-in edge pointing at Khyber:\n%s", out)
	}
}

func TestDOTDeterministic(t *testing.T) {
	g := figure1Graph()
	e := NewEmbedder(g, Options{})
	q := e.EmbedGroups([][]string{{"pakistan", "taliban"}})
	a := DOT(g, "t", q)
	b := DOT(g, "t", q)
	if a != b {
		t.Fatal("DOT output not deterministic")
	}
}

func TestDOTNilAndEmpty(t *testing.T) {
	g := figure1Graph()
	out := DOT(g, "empty", nil)
	if !strings.Contains(out, "digraph") {
		t.Fatalf("nil embedding:\n%s", out)
	}
	out = DOT(g, "none")
	if !strings.HasPrefix(out, `digraph "none"`) {
		t.Fatalf("no embeddings:\n%s", out)
	}
}
