package core

import (
	"fmt"
	"strings"

	"newslink/internal/kg"
)

// Hop is one rendered step of a relationship path. From and To are in path
// order; Forward reports whether the underlying KG edge points From -> To
// (so "From -[rel]-> To") or the other way ("From <-[rel]- To").
type Hop struct {
	From, To kg.NodeID
	Rel      kg.RelID
	Forward  bool
}

// RelPath is a relationship path between two entity labels through the
// subgraph embedding's root, the intuitive evidence NewsLink presents for
// result-to-query relatedness (Tables II and VI of the paper).
type RelPath struct {
	A, B string // the two entity labels the path connects
	Hops []Hop
}

// Len returns the number of hops.
func (p RelPath) Len() int { return len(p.Hops) }

// Render formats the path like "Sanders -[candidate in]-> US election 2016
// <-[candidate in]- Clinton" using labels from g.
func (p RelPath) Render(g *kg.Graph) string {
	if len(p.Hops) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteString(g.Label(p.Hops[0].From))
	for _, h := range p.Hops {
		if h.Forward {
			fmt.Fprintf(&sb, " -[%s]-> %s", g.RelName(h.Rel), g.Label(h.To))
		} else {
			fmt.Fprintf(&sb, " <-[%s]- %s", g.RelName(h.Rel), g.Label(h.To))
		}
	}
	return sb.String()
}

// labelIndexOf returns the position of the folded label in sg.Labels, or -1.
func (sg *Subgraph) labelIndexOf(label string) int {
	key := kg.Fold(label)
	for i, l := range sg.Labels {
		if l == key {
			return i
		}
	}
	return -1
}

// nodePath is a source-to-root path inside one label's shortest-path DAG.
type nodePath struct {
	nodes []kg.NodeID
	arcs  []PathArc
}

// pathsToRoot enumerates up to limit source→root paths for label index li.
func (sg *Subgraph) pathsToRoot(li, limit int) []nodePath {
	if li < 0 || li >= len(sg.Labels) || limit <= 0 {
		return nil
	}
	if sg.Dists[li] == 0 {
		// The label's source is the root itself.
		return []nodePath{{nodes: []kg.NodeID{sg.Root}}}
	}
	arcs := sg.LabelArcs[li]
	out := make(map[kg.NodeID][]PathArc)    // forward adjacency: From -> arcs
	hasIncoming := make(map[kg.NodeID]bool) // nodes that are some arc's To
	for _, a := range arcs {
		out[a.From] = append(out[a.From], a)
		hasIncoming[a.To] = true
	}
	// Sources: nodes with outgoing arcs but no incoming ones (distance 0).
	var sources []kg.NodeID
	for from := range out {
		if !hasIncoming[from] {
			sources = append(sources, from)
		}
	}
	sortNodeIDs(sources)
	var paths []nodePath
	var dfs func(v kg.NodeID, nodes []kg.NodeID, hops []PathArc)
	dfs = func(v kg.NodeID, nodes []kg.NodeID, hops []PathArc) {
		if len(paths) >= limit {
			return
		}
		if v == sg.Root {
			paths = append(paths, nodePath{
				nodes: append([]kg.NodeID(nil), nodes...),
				arcs:  append([]PathArc(nil), hops...),
			})
			return
		}
		for _, a := range out[v] {
			dfs(a.To, append(nodes, a.To), append(hops, a))
		}
	}
	for _, s := range sources {
		dfs(s, []kg.NodeID{s}, nil)
	}
	return paths
}

// PathsBetween returns up to limit relationship paths linking entity labels
// a and b through the embedding's root. Paths are the concatenation of an
// a→root shortest path with a reversed b→root shortest path; a shared
// prefix near the root is trimmed so paths never double back.
func (sg *Subgraph) PathsBetween(a, b string, limit int) []RelPath {
	ia, ib := sg.labelIndexOf(a), sg.labelIndexOf(b)
	if ia < 0 || ib < 0 || limit <= 0 {
		return nil
	}
	pa := sg.pathsToRoot(ia, limit)
	pb := sg.pathsToRoot(ib, limit)
	var out []RelPath
	for _, x := range pa {
		for _, y := range pb {
			if len(out) >= limit {
				return out
			}
			out = append(out, joinPaths(sg.Labels[ia], sg.Labels[ib], x, y))
		}
	}
	return out
}

// joinPaths splices an a→root path with a reversed root→b path, trimming
// the common suffix the two paths share before the root.
func joinPaths(la, lb string, a, b nodePath) RelPath {
	// Trim shared suffix: both paths end at the root; walk back while the
	// trailing nodes coincide so the meeting point is the earliest common
	// node, not necessarily the root.
	na, nb := len(a.nodes), len(b.nodes)
	common := 0
	for common < na-1 && common < nb-1 && a.nodes[na-1-common-1] == b.nodes[nb-1-common-1] {
		common++
	}
	meetA := na - 1 - common // index of meeting node in a.nodes
	meetB := nb - 1 - common
	p := RelPath{A: la, B: lb}
	for i := 0; i < meetA; i++ {
		arc := a.arcs[i]
		p.Hops = append(p.Hops, Hop{From: arc.From, To: arc.To, Rel: arc.Rel, Forward: !arc.Reverse})
	}
	for i := meetB - 1; i >= 0; i-- {
		arc := b.arcs[i]
		// Traversed backwards: the hop runs arc.To -> arc.From.
		p.Hops = append(p.Hops, Hop{From: arc.To, To: arc.From, Rel: arc.Rel, Forward: arc.Reverse})
	}
	return p
}

// InducedNodes returns the nodes of the subgraph whose labels are not among
// the input entity labels: the extra context the KG contributed (the
// "induced entities" column of Table I).
func (sg *Subgraph) InducedNodes(g *kg.Graph) []kg.NodeID {
	in := make(map[string]bool, len(sg.Labels))
	for _, l := range sg.Labels {
		in[l] = true
	}
	var out []kg.NodeID
	for _, v := range sg.Nodes {
		if !in[kg.Fold(g.Label(v))] {
			out = append(out, v)
		}
	}
	return out
}

func sortNodeIDs(ids []kg.NodeID) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
