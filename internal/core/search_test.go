package core

import (
	"math"
	"reflect"
	"testing"

	"newslink/internal/kg"
)

// figure1Graph reproduces the KG fragment of Figure 1 in the paper.
func figure1Graph() *kg.Graph {
	b := kg.NewBuilder(10)
	khyber := b.AddNode("Khyber", kg.KindGPE, "a province of Pakistan")
	waziristan := b.AddNode("Waziristan", kg.KindGPE, "a region near Khyber")
	taliban := b.AddNode("Taliban", kg.KindOrg, "a militant group")
	kunar := b.AddNode("Kunar", kg.KindGPE, "a province near Khyber")
	lahore := b.AddNode("Lahore", kg.KindGPE, "a city near Khyber")
	peshawar := b.AddNode("Peshawar", kg.KindGPE, "a city near Khyber")
	pakistan := b.AddNode("Pakistan", kg.KindGPE, "a country")
	upperDir := b.AddNode("Upper Dir", kg.KindGPE, "a district")
	swat := b.AddNode("Swat Valley", kg.KindGPE, "a valley")
	lahore2 := b.AddNode("Lahore", kg.KindGPE, "a second Lahore node")

	b.AddEdgeByName(taliban, kunar, "active in", 1)
	b.AddEdgeByName(taliban, waziristan, "active in", 1)
	b.AddEdgeByName(kunar, khyber, "located in", 1)
	b.AddEdgeByName(waziristan, khyber, "located in", 1)
	b.AddEdgeByName(upperDir, khyber, "located in", 1)
	b.AddEdgeByName(swat, khyber, "located in", 1)
	b.AddEdgeByName(pakistan, khyber, "contains", 1)
	b.AddEdgeByName(lahore, khyber, "located in", 1)
	b.AddEdgeByName(peshawar, khyber, "located in", 1)
	b.AddEdgeByName(lahore2, pakistan, "located in", 1)
	return b.Build()
}

func find(t *testing.T, g *kg.Graph, opts Options, labels ...string) *Subgraph {
	t.Helper()
	return NewSearcher(g, opts).Find(labels)
}

func TestFigure1QueryEmbedding(t *testing.T) {
	g := figure1Graph()
	sg := find(t, g, Options{}, "Upper Dir", "Swat Valley", "Pakistan", "Taliban")
	if sg == nil {
		t.Fatal("no embedding found")
	}
	if got := g.Label(sg.Root); got != "Khyber" {
		t.Fatalf("root = %s, want Khyber", got)
	}
	if got := sg.Depth(); got != 2 {
		t.Fatalf("depth = %v, want 2 (Taliban is two hops away)", got)
	}
	want := []float64{2, 1, 1, 1}
	if got := sg.DepthVector(); !reflect.DeepEqual(got, want) {
		t.Fatalf("depth vector = %v, want %v", got, want)
	}
	// Coverage: BOTH shortest paths from Taliban must be preserved —
	// Kunar and Waziristan are the paper's "induced entities" of Table I.
	for _, label := range []string{"Kunar", "Waziristan", "Khyber"} {
		id := g.Lookup(label)[0]
		if !sg.HasNode(id) {
			t.Errorf("induced entity %s missing from G*", label)
		}
	}
	induced := sg.InducedNodes(g)
	if len(induced) != 3 {
		t.Errorf("induced nodes = %d, want 3 (Khyber, Waziristan, Kunar)", len(induced))
	}
}

func TestFigure1ResultEmbeddingOverlap(t *testing.T) {
	g := figure1Graph()
	e := NewEmbedder(g, Options{})
	q := e.EmbedGroups([][]string{{"upper dir", "swat valley", "pakistan", "taliban"}})
	r := e.EmbedGroups([][]string{{"lahore", "peshawar", "pakistan", "taliban"}})
	if q == nil || r == nil {
		t.Fatal("embeddings missing")
	}
	ov := q.Overlap(r)
	// The overlap must contain Khyber (the shared root) plus the shared
	// matched/induced context.
	khyber := g.Lookup("Khyber")[0]
	found := false
	for _, n := range ov {
		if n == khyber {
			found = true
		}
	}
	if !found {
		t.Fatalf("overlap %v does not contain Khyber", ov)
	}
	if len(ov) < 4 {
		t.Fatalf("overlap too small: %v", ov)
	}
}

func TestTreeEmbSinglePath(t *testing.T) {
	g := figure1Graph()
	sg := find(t, g, Options{Model: ModelTree}, "Upper Dir", "Swat Valley", "Pakistan", "Taliban")
	if sg == nil {
		t.Fatal("no tree embedding found")
	}
	if got := g.Label(sg.Root); got != "Khyber" {
		t.Fatalf("tree root = %s, want Khyber", got)
	}
	// Single path per label: only one of Kunar/Waziristan survives.
	kunar, waziristan := g.Lookup("Kunar")[0], g.Lookup("Waziristan")[0]
	if sg.HasNode(kunar) && sg.HasNode(waziristan) {
		t.Fatal("TreeEmb kept both equal-cost paths; want exactly one")
	}
	if !sg.HasNode(kunar) && !sg.HasNode(waziristan) {
		t.Fatal("TreeEmb lost the Taliban path entirely")
	}
	// A tree over m labels with these distances has exactly depth-sum arcs.
	if got, want := len(sg.Arcs), 5; got != want {
		t.Fatalf("tree arcs = %d, want %d", got, want)
	}
}

func TestAmbiguousLabelUsesNearestSource(t *testing.T) {
	g := figure1Graph()
	// "Lahore" maps to two nodes; Entity-Node Distance (Definition 2) takes
	// the min over sources, so the Khyber-adjacent Lahore is used.
	sg := find(t, g, Options{}, "Lahore", "Upper Dir")
	if sg == nil {
		t.Fatal("no embedding")
	}
	if got := g.Label(sg.Root); got != "Khyber" {
		t.Fatalf("root = %s, want Khyber", got)
	}
	if got := sg.Depth(); got != 1 {
		t.Fatalf("depth = %v, want 1", got)
	}
}

func TestSingleLabelEmbedsAsSelf(t *testing.T) {
	g := figure1Graph()
	sg := find(t, g, Options{}, "Taliban")
	if sg == nil {
		t.Fatal("no embedding")
	}
	if g.Label(sg.Root) != "Taliban" || sg.Depth() != 0 {
		t.Fatalf("single-label root = %s depth %v", g.Label(sg.Root), sg.Depth())
	}
	if len(sg.Nodes) != 1 || len(sg.Arcs) != 0 {
		t.Fatalf("single-label subgraph = %d nodes %d arcs", len(sg.Nodes), len(sg.Arcs))
	}
}

func TestUnknownLabelsIgnored(t *testing.T) {
	g := figure1Graph()
	if sg := find(t, g, Options{}, "Atlantis", "Shangri-La"); sg != nil {
		t.Fatal("expected nil for fully unknown labels")
	}
	sg := find(t, g, Options{}, "Atlantis", "Taliban", "Pakistan")
	if sg == nil {
		t.Fatal("known labels should still embed")
	}
	if len(sg.Labels) != 2 {
		t.Fatalf("labels = %v, want the two known ones", sg.Labels)
	}
}

func TestDuplicateLabelsDeduplicated(t *testing.T) {
	g := figure1Graph()
	sg := find(t, g, Options{}, "Taliban", "taliban", "TALIBAN", "Pakistan")
	if sg == nil {
		t.Fatal("no embedding")
	}
	if len(sg.Labels) != 2 {
		t.Fatalf("labels = %v, want deduplicated pair", sg.Labels)
	}
}

func TestDisconnectedNoEmbedding(t *testing.T) {
	b := kg.NewBuilder(4)
	a := b.AddNode("IslandA", kg.KindGPE, "")
	a2 := b.AddNode("IslandA2", kg.KindGPE, "")
	c := b.AddNode("IslandB", kg.KindGPE, "")
	c2 := b.AddNode("IslandB2", kg.KindGPE, "")
	b.AddEdgeByName(a, a2, "near", 1)
	b.AddEdgeByName(c, c2, "near", 1)
	g := b.Build()
	if sg := find(t, g, Options{}, "IslandA", "IslandB"); sg != nil {
		t.Fatal("disconnected labels must not embed")
	}
}

func TestMaxDepthBound(t *testing.T) {
	g := figure1Graph()
	if sg := find(t, g, Options{MaxDepth: 1}, "Taliban", "Upper Dir"); sg != nil {
		t.Fatalf("MaxDepth=1 should preclude the depth-2 embedding, got root %s", g.Label(sg.Root))
	}
	if sg := find(t, g, Options{MaxDepth: 2}, "Taliban", "Upper Dir"); sg == nil {
		t.Fatal("MaxDepth=2 should allow the embedding")
	}
}

func TestExpansionBudget(t *testing.T) {
	g := figure1Graph()
	sg := find(t, g, Options{MaxExpansions: 1}, "Taliban", "Upper Dir")
	if sg != nil {
		t.Fatal("budget 1 cannot find a common ancestor here")
	}
	sg = find(t, g, Options{}, "Taliban", "Upper Dir")
	if sg == nil || sg.Expansions <= 0 {
		t.Fatal("expansions not recorded")
	}
}

func TestDeterminism(t *testing.T) {
	w := kg.Generate(kg.DefaultConfig(11))
	g := w.Graph
	labels := []string{g.Label(w.CountryNodes[0]), g.Label(w.CountryNodes[1]), g.Label(w.CountryNodes[2])}
	a := find(t, g, Options{}, labels...)
	b := find(t, g, Options{}, labels...)
	if a == nil || b == nil {
		t.Fatal("no embedding")
	}
	if a.Root != b.Root || !reflect.DeepEqual(a.Nodes, b.Nodes) || !reflect.DeepEqual(a.Arcs, b.Arcs) {
		t.Fatal("Find is not deterministic")
	}
}

// --- reference implementations for property tests ---

// refDistances computes exact multi-source Dijkstra distances from a label's
// sources to every node, as ground truth.
func refDistances(g *kg.Graph, label string) map[kg.NodeID]float64 {
	dist := make(map[kg.NodeID]float64)
	var pq []item
	for _, s := range g.Lookup(label) {
		dist[s] = 0
		pq = append(pq, item{0, 0, s})
	}
	for len(pq) > 0 {
		mi := 0
		for i := range pq {
			if pq[i].d < pq[mi].d {
				mi = i
			}
		}
		it := pq[mi]
		pq = append(pq[:mi], pq[mi+1:]...)
		if it.d > dist[it.v] {
			continue
		}
		for _, a := range g.Neighbors(it.v) {
			nd := it.d + a.Weight
			if cur, ok := dist[a.To]; !ok || nd < cur {
				dist[a.To] = nd
				pq = append(pq, item{nd, 0, a.To})
			}
		}
	}
	return dist
}

// refBestVector brute-forces the optimal compactness vector over all roots.
func refBestVector(g *kg.Graph, labels []string) ([]float64, bool) {
	dists := make([]map[kg.NodeID]float64, len(labels))
	for i, l := range labels {
		dists[i] = refDistances(g, l)
	}
	var best []float64
	for v := 0; v < g.NumNodes(); v++ {
		vec := make([]float64, len(labels))
		ok := true
		for i := range labels {
			d, reach := dists[i][kg.NodeID(v)]
			if !reach {
				ok = false
				break
			}
			vec[i] = d
		}
		if !ok {
			continue
		}
		sortDesc(vec)
		if best == nil || CompareCompactness(vec, best) < 0 {
			best = vec
		}
	}
	return best, best != nil
}

func sortDesc(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] > v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// TestGStarOptimality verifies Definition 5 / Lemma 1 against brute force on
// synthetic worlds: the returned G* has the minimal compactness vector.
func TestGStarOptimality(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cfg := kg.Config{Seed: seed, Countries: 3, ProvincesPerCountry: 3,
			CitiesPerProvince: 2, PersonsPerCountry: 6, OrgsPerCountry: 5,
			EventsPerCountry: 5, AmbiguityRate: 0.05}
		w := kg.Generate(cfg)
		g := w.Graph
		// Use event participants as entity groups — realistic label sets.
		for _, ev := range w.Events[:min(8, len(w.Events))] {
			var labels []string
			for _, p := range ev.Participants {
				labels = append(labels, g.Label(p))
			}
			labels = append(labels, g.Label(ev.Location))
			sg := find(t, g, Options{}, labels...)
			want, ok := refBestVector(g, dedupeFold(labels, g))
			if !ok {
				if sg != nil {
					t.Fatalf("seed %d: search found embedding where none exists", seed)
				}
				continue
			}
			if sg == nil {
				t.Fatalf("seed %d: no embedding for %v", seed, labels)
			}
			if got := sg.DepthVector(); CompareCompactness(got, want) != 0 {
				t.Fatalf("seed %d labels %v: vector %v, brute force %v", seed, labels, got, want)
			}
			// Lemma 1: minimal depth.
			if sg.Depth() != want[0] {
				t.Fatalf("seed %d: depth %v, want %v", seed, sg.Depth(), want[0])
			}
		}
	}
}

// dedupeFold mirrors the searcher's label normalization for the reference.
func dedupeFold(labels []string, g *kg.Graph) []string {
	seen := map[string]bool{}
	var out []string
	for _, l := range labels {
		k := kg.Fold(l)
		if seen[k] || len(g.Lookup(k)) == 0 {
			continue
		}
		seen[k] = true
		out = append(out, k)
	}
	return out
}

// TestLemma2PairwiseDistance: any two nodes of G* are within 2*d(G*) in the
// full graph.
func TestLemma2PairwiseDistance(t *testing.T) {
	w := kg.Generate(kg.DefaultConfig(5))
	g := w.Graph
	for _, ev := range w.Events[:10] {
		var labels []string
		for _, p := range ev.Participants {
			labels = append(labels, g.Label(p))
		}
		labels = append(labels, g.Label(ev.Country))
		sg := find(t, g, Options{}, labels...)
		if sg == nil {
			continue
		}
		bound := 2 * sg.Depth()
		for _, n := range sg.Nodes {
			dist := refDistances(g, g.Label(n))
			for _, m := range sg.Nodes {
				if d, ok := dist[m]; !ok || d > bound+1e-9 {
					t.Fatalf("nodes %s..%s distance %v exceeds 2*d(G*)=%v",
						g.Label(n), g.Label(m), d, bound)
				}
			}
		}
	}
}

// TestSubgraphConnectivity: every node of G* reaches the root along arcs.
func TestSubgraphConnectivity(t *testing.T) {
	w := kg.Generate(kg.DefaultConfig(13))
	g := w.Graph
	for _, ev := range w.Events[:15] {
		var labels []string
		for _, p := range ev.Participants {
			labels = append(labels, g.Label(p))
		}
		labels = append(labels, g.Label(ev.Location))
		for _, model := range []Model{ModelLCAG, ModelTree} {
			sg := find(t, g, Options{Model: model}, labels...)
			if sg == nil {
				continue
			}
			next := map[kg.NodeID][]kg.NodeID{}
			for _, a := range sg.Arcs {
				next[a.From] = append(next[a.From], a.To)
			}
			for _, n := range sg.Nodes {
				if !reaches(n, sg.Root, next, map[kg.NodeID]bool{}) {
					t.Fatalf("%s: node %s cannot reach root %s", model, g.Label(n), g.Label(sg.Root))
				}
			}
			// Shortest-path arcs: every arc must shorten distance to root.
			for i, l := range sg.Labels {
				_ = l
				if sg.Dists[i] < 0 {
					t.Fatalf("negative distance")
				}
			}
		}
	}
}

func reaches(from, to kg.NodeID, next map[kg.NodeID][]kg.NodeID, seen map[kg.NodeID]bool) bool {
	if from == to {
		return true
	}
	seen[from] = true
	for _, n := range next[from] {
		if !seen[n] && reaches(n, to, next, seen) {
			return true
		}
	}
	return false
}

// TestTreeSumOptimality: TreeEmb's root minimizes the total label distance.
func TestTreeSumOptimality(t *testing.T) {
	w := kg.Generate(kg.DefaultConfig(21))
	g := w.Graph
	for _, ev := range w.Events[:8] {
		var labels []string
		for _, p := range ev.Participants {
			labels = append(labels, g.Label(p))
		}
		sg := find(t, g, Options{Model: ModelTree}, labels...)
		if sg == nil {
			continue
		}
		keys := dedupeFold(labels, g)
		dists := make([]map[kg.NodeID]float64, len(keys))
		for i, l := range keys {
			dists[i] = refDistances(g, l)
		}
		bestSum := math.Inf(1)
		for v := 0; v < g.NumNodes(); v++ {
			sum, ok := 0.0, true
			for i := range keys {
				d, r := dists[i][kg.NodeID(v)]
				if !r {
					ok = false
					break
				}
				sum += d
			}
			if ok && sum < bestSum {
				bestSum = sum
			}
		}
		if got := sumVec(sg.Dists); got != bestSum {
			t.Fatalf("tree sum = %v, brute force %v (labels %v)", got, bestSum, keys)
		}
	}
}

func TestCompareCompactness(t *testing.T) {
	cases := []struct {
		a, b []float64
		want int
	}{
		{[]float64{2, 1, 1, 1}, []float64{2, 2, 1, 1}, -1}, // the paper's example
		{[]float64{2, 2, 1, 1}, []float64{2, 1, 1, 1}, 1},
		{[]float64{1, 1}, []float64{1, 1}, 0},
		{[]float64{3}, []float64{2, 9}, 1},
		{[]float64{1}, []float64{1, 0}, -1},
	}
	for _, c := range cases {
		if got := CompareCompactness(c.a, c.b); got != c.want {
			t.Errorf("CompareCompactness(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
