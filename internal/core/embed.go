package core

import (
	"sort"

	"newslink/internal/kg"
)

// DocEmbedding is the subgraph embedding of a whole news document: the
// union of the G* of every entity group in its maximal entity co-occurrence
// set (Section VI). Counts records, per node, the number of per-segment
// subgraphs containing it — the term frequency of the Bag-Of-Node model.
type DocEmbedding struct {
	Subgraphs []*Subgraph
	Counts    map[kg.NodeID]int
}

// Embedder turns entity groups into document embeddings.
type Embedder struct {
	S *Searcher
}

// NewEmbedder returns an Embedder using the given searcher.
func NewEmbedder(s *Searcher) *Embedder { return &Embedder{S: s} }

// EmbedGroups embeds one document given the entity groups of its maximal
// entity co-occurrence set. Groups with no embeddable entities are skipped;
// the result is nil when no group could be embedded (the paper filters such
// documents out of the corpus, Section VII-A2).
func (e *Embedder) EmbedGroups(groups [][]string) *DocEmbedding {
	var d *DocEmbedding
	for _, g := range groups {
		sg := e.S.Find(g)
		if sg == nil {
			continue
		}
		if d == nil {
			d = &DocEmbedding{Counts: make(map[kg.NodeID]int)}
		}
		d.Subgraphs = append(d.Subgraphs, sg)
		for _, n := range sg.Nodes {
			d.Counts[n]++
		}
	}
	return d
}

// Nodes returns the distinct nodes of the document embedding in ascending
// order.
func (d *DocEmbedding) Nodes() []kg.NodeID {
	out := make([]kg.NodeID, 0, len(d.Counts))
	for n := range d.Counts {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Overlap returns the nodes present in both embeddings, the concrete
// evidence of relatedness the paper visualizes (Figure 1: "the blue part in
// the dotted box").
func (d *DocEmbedding) Overlap(other *DocEmbedding) []kg.NodeID {
	if d == nil || other == nil {
		return nil
	}
	var out []kg.NodeID
	for n := range d.Counts {
		if other.Counts[n] > 0 {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PathsBetween searches every per-segment subgraph for relationship paths
// between two labels and returns up to limit of them, shortest first.
func (d *DocEmbedding) PathsBetween(a, b string, limit int) []RelPath {
	if d == nil {
		return nil
	}
	var out []RelPath
	for _, sg := range d.Subgraphs {
		out = append(out, sg.PathsBetween(a, b, limit)...)
	}
	sort.SliceStable(out, func(i, j int) bool { return len(out[i].Hops) < len(out[j].Hops) })
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}
