package core

import (
	"context"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"newslink/internal/kg"
)

// DocEmbedding is the subgraph embedding of a whole news document: the
// union of the G* of every entity group in its maximal entity co-occurrence
// set (Section VI). Counts records, per node, the number of per-segment
// subgraphs containing it — the term frequency of the Bag-Of-Node model.
type DocEmbedding struct {
	Subgraphs []*Subgraph
	Counts    map[kg.NodeID]int
}

// EmbedStats reports what one EmbedGroups call did, replacing the old
// pattern of reaching into the embedder's searcher internals.
type EmbedStats struct {
	// Groups is the number of entity groups submitted.
	Groups int
	// Embedded is the number of groups that produced a subgraph.
	Embedded int
	// ResolvedLabels is the total number of labels (deduplicated per group)
	// that resolved to at least one KG node across embedded groups.
	ResolvedLabels int
	// Expansions is the total number of path enumerations performed (for a
	// group served from the cache, the expansions its original search paid).
	Expansions int
	// GroupCacheHits counts groups served from the embedder's per-group
	// subgraph cache.
	GroupCacheHits int
	// CacheHit is set by engine-level callers when the whole document
	// embedding was served from a higher-tier cache (e.g. the entity-set
	// cache); the core embedder itself never sets it.
	CacheHit bool
}

// Embedder turns entity groups into document embeddings. It owns its
// Searcher (and therefore the pooled traversal states), an optional
// per-entity-group subgraph cache, and the fan-out policy for embedding a
// document's groups in parallel. It is safe for concurrent use.
type Embedder struct {
	s       *Searcher
	workers int
	cache   *groupCache // nil when Options.GroupCacheSize == 0
}

// NewEmbedder returns an Embedder over g. It builds and owns its searcher;
// Options.EmbedWorkers and Options.GroupCacheSize configure the parallel
// fan-out and the per-group cache.
func NewEmbedder(g *kg.Graph, opts Options) *Embedder {
	return newEmbedder(NewSearcher(g, opts))
}

func newEmbedder(s *Searcher) *Embedder {
	e := &Embedder{s: s, workers: s.opts.EmbedWorkers}
	if n := s.opts.GroupCacheSize; n > 0 {
		e.cache = newGroupCache(n)
	}
	return e
}

// Searcher returns the embedder's searcher.
func (e *Embedder) Searcher() *Searcher { return e.s }

// Graph returns the knowledge graph the embedder operates on.
func (e *Embedder) Graph() *kg.Graph { return e.s.g }

// EmbedGroups embeds one document given the entity groups of its maximal
// entity co-occurrence set. Groups with no embeddable entities are skipped;
// the result is nil when no group could be embedded (the paper filters such
// documents out of the corpus, Section VII-A2).
func (e *Embedder) EmbedGroups(groups [][]string) *DocEmbedding {
	d, _, _ := e.EmbedGroupsContext(nil, groups)
	return d
}

// EmbedGroupsContext is EmbedGroups with cancellation and statistics.
// Groups are embedded concurrently (up to Options.EmbedWorkers workers,
// GOMAXPROCS when 0) but the result is deterministic: subgraphs appear in
// group order and node counts are merged sequentially, so the embedding is
// byte-identical to a sequential run. A nil ctx disables cancellation.
func (e *Embedder) EmbedGroupsContext(ctx context.Context, groups [][]string) (*DocEmbedding, EmbedStats, error) {
	stats := EmbedStats{Groups: len(groups)}
	if len(groups) == 0 {
		return nil, stats, nil
	}
	sgs := make([]*Subgraph, len(groups))
	hits := make([]bool, len(groups))
	var firstErr atomic.Value

	embedOne := func(i int) {
		sg, hit, err := e.embedGroup(ctx, groups[i])
		if err != nil {
			firstErr.CompareAndSwap(nil, err)
			return
		}
		sgs[i], hits[i] = sg, hit
	}

	workers := e.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 {
		for i := range groups {
			embedOne(i)
			if firstErr.Load() != nil {
				break
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(groups) || firstErr.Load() != nil {
						return
					}
					embedOne(i)
				}
			}()
		}
		wg.Wait()
	}
	if err, ok := firstErr.Load().(error); ok {
		return nil, stats, err
	}

	// Merge in group order — identical to the sequential seed path.
	var d *DocEmbedding
	for i, sg := range sgs {
		if hits[i] {
			stats.GroupCacheHits++
		}
		if sg == nil {
			continue
		}
		stats.Embedded++
		stats.ResolvedLabels += len(sg.Labels)
		stats.Expansions += sg.Expansions
		if d == nil {
			d = &DocEmbedding{Counts: make(map[kg.NodeID]int)}
		}
		d.Subgraphs = append(d.Subgraphs, sg)
		for _, n := range sg.Nodes {
			d.Counts[n]++
		}
	}
	return d, stats, nil
}

// embedGroup embeds one entity group, consulting the per-group cache when
// enabled. Cached subgraphs are shared pointers: treat them as immutable
// (every in-tree consumer only reads them).
func (e *Embedder) embedGroup(ctx context.Context, labels []string) (*Subgraph, bool, error) {
	var key string
	if e.cache != nil {
		key = e.groupKey(labels)
		if key != "" {
			if sg, ok := e.cache.get(key); ok {
				return sg, true, nil
			}
		}
	}
	sg, err := e.s.FindContext(ctx, labels)
	if err != nil {
		return nil, false, err
	}
	if e.cache != nil && key != "" && sg != nil {
		e.cache.put(key, sg)
	}
	return sg, false, nil
}

// Nodes returns the distinct nodes of the document embedding in ascending
// order.
func (d *DocEmbedding) Nodes() []kg.NodeID {
	out := make([]kg.NodeID, 0, len(d.Counts))
	for n := range d.Counts {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Overlap returns the nodes present in both embeddings, the concrete
// evidence of relatedness the paper visualizes (Figure 1: "the blue part in
// the dotted box").
func (d *DocEmbedding) Overlap(other *DocEmbedding) []kg.NodeID {
	if d == nil || other == nil {
		return nil
	}
	var out []kg.NodeID
	for n := range d.Counts {
		if other.Counts[n] > 0 {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PathsBetween searches every per-segment subgraph for relationship paths
// between two labels and returns up to limit of them, shortest first.
func (d *DocEmbedding) PathsBetween(a, b string, limit int) []RelPath {
	if d == nil {
		return nil
	}
	var out []RelPath
	for _, sg := range d.Subgraphs {
		out = append(out, sg.PathsBetween(a, b, limit)...)
	}
	sort.SliceStable(out, func(i, j int) bool { return len(out[i].Hops) < len(out[j].Hops) })
	if len(out) > limit {
		out = out[:limit]
	}
	return out
}
