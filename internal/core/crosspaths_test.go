package core

import (
	"strings"
	"testing"

	"newslink/internal/kg"
)

func embed(t *testing.T, g *kg.Graph, groups ...[]string) *DocEmbedding {
	t.Helper()
	e := NewEmbedder(g, Options{})
	d := e.EmbedGroups(groups)
	if d == nil {
		t.Fatal("no embedding")
	}
	return d
}

func TestCrossPathsTableII(t *testing.T) {
	g := figure1Graph()
	q := embed(t, g, []string{"upper dir", "swat valley", "pakistan", "taliban"})
	r := embed(t, g, []string{"lahore", "peshawar", "pakistan", "taliban"})
	// Table II: Upper Dir (from Tq) links to Lahore (from Tr) via Khyber.
	paths := CrossPaths(g, q, r, "upper dir", "lahore", 5)
	if len(paths) == 0 {
		t.Fatal("no cross paths")
	}
	p := paths[0]
	rendered := p.Render(g)
	if !strings.HasPrefix(rendered, "Upper Dir") || !strings.HasSuffix(rendered, "Lahore") {
		t.Fatalf("endpoints wrong: %s", rendered)
	}
	if !strings.Contains(rendered, "Khyber") {
		t.Fatalf("path must pass through the shared ancestor Khyber: %s", rendered)
	}
	if len(p.Hops) != 2 {
		t.Fatalf("want the 2-hop path of Table II, got %d hops: %s", len(p.Hops), rendered)
	}
}

func TestCrossPathsShortestFirstAndLimit(t *testing.T) {
	g := figure1Graph()
	q := embed(t, g, []string{"upper dir", "taliban"})
	r := embed(t, g, []string{"peshawar", "taliban"})
	paths := CrossPaths(g, q, r, "taliban", "peshawar", 10)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	for i := 1; i < len(paths); i++ {
		if len(paths[i].Hops) < len(paths[i-1].Hops) {
			t.Fatal("paths not sorted shortest-first")
		}
	}
	if got := CrossPaths(g, q, r, "taliban", "peshawar", 1); len(got) != 1 {
		t.Fatalf("limit ignored: %d", len(got))
	}
	if CrossPaths(g, q, r, "taliban", "peshawar", 0) != nil {
		t.Fatal("limit 0 should be nil")
	}
	if CrossPaths(g, nil, r, "a", "b", 3) != nil {
		t.Fatal("nil embedding should be nil")
	}
}

func TestCrossPathsDisjointEmbeddings(t *testing.T) {
	g := figure1Graph()
	q := embed(t, g, []string{"upper dir", "swat valley"})
	r := embed(t, g, []string{"lahore", "pakistan"})
	// Labels that are not in the union at all.
	if got := CrossPaths(g, q, r, "atlantis", "lahore", 3); got != nil {
		t.Fatalf("unknown label produced paths: %v", got)
	}
}

func TestCrossPathsSingleNodeSubgraph(t *testing.T) {
	g := figure1Graph()
	// A one-label group embeds as a single root node with no arcs. It is
	// part of the union, but CrossPaths is scoped to the embeddings' arcs:
	// with no arc touching Taliban the union is disconnected and no path
	// exists (and the search must not crash on the isolated node).
	q := embed(t, g, []string{"taliban"})
	r := embed(t, g, []string{"kunar", "pakistan"})
	if got := CrossPaths(g, q, r, "taliban", "pakistan", 3); got != nil {
		t.Fatalf("disconnected union produced paths: %v", got)
	}
	// Within the connected part, paths still work.
	paths := CrossPaths(g, q, r, "kunar", "pakistan", 3)
	if len(paths) == 0 {
		t.Fatal("no path between connected labels")
	}
	rd := paths[0].Render(g)
	if !strings.HasPrefix(rd, "Kunar") || !strings.HasSuffix(rd, "Pakistan") {
		t.Fatalf("path = %s", rd)
	}
}

func TestCrossPathsDirectionRendering(t *testing.T) {
	g := figure1Graph()
	q := embed(t, g, []string{"upper dir", "swat valley", "pakistan", "taliban"})
	r := embed(t, g, []string{"lahore", "peshawar", "pakistan", "taliban"})
	paths := CrossPaths(g, q, r, "taliban", "upper dir", 3)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	rd := paths[0].Render(g)
	// taliban -[active in]-> ... <-[located in]- upper dir: both original
	// edge directions must be preserved in the rendering.
	if !strings.Contains(rd, "-[active in]->") {
		t.Fatalf("forward edge direction lost: %s", rd)
	}
	if !strings.Contains(rd, "<-[located in]-") && !strings.Contains(rd, "<-[adjacent to]-") {
		t.Fatalf("reverse edge direction lost: %s", rd)
	}
}

// TestWeightedEdgesGStar exercises non-unit edge weights end to end: the
// root must minimize weighted distances, and a cheaper two-hop path must be
// preferred over an expensive direct edge.
func TestWeightedEdgesGStar(t *testing.T) {
	b := kg.NewBuilder(5)
	a := b.AddNode("A", kg.KindGPE, "")
	c := b.AddNode("B", kg.KindGPE, "")
	hub := b.AddNode("Hub", kg.KindGPE, "")
	via := b.AddNode("Via", kg.KindGPE, "")
	b.AddEdgeByName(a, hub, "heavy", 5)   // direct but expensive
	b.AddEdgeByName(a, via, "light", 1)   // cheap detour
	b.AddEdgeByName(via, hub, "light", 1) // total 2 < 5
	b.AddEdgeByName(c, hub, "light", 1)
	g := b.Build()
	sg := find(t, g, Options{}, "A", "B")
	if sg == nil {
		t.Fatal("no embedding")
	}
	if g.Label(sg.Root) != "Hub" && g.Label(sg.Root) != "Via" {
		t.Fatalf("root = %s", g.Label(sg.Root))
	}
	// The A-side path must go through Via (weight 2), not the heavy edge.
	viaID := g.Lookup("Via")[0]
	if !sg.HasNode(viaID) {
		t.Fatalf("weighted shortest path not taken: nodes %v", sg.Nodes)
	}
	for _, arc := range sg.Arcs {
		if g.RelName(arc.Rel) == "heavy" {
			t.Fatal("expensive direct edge should not be in G*")
		}
	}
	// Depth is a weighted distance.
	if sg.Depth() != 2 {
		t.Fatalf("weighted depth = %v, want 2", sg.Depth())
	}
}
