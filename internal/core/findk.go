package core

import (
	"sort"

	"newslink/internal/kg"
)

// FindK returns up to k subgraph embeddings ordered by the compactness
// order (Definition 4), the full output of Algorithm 1's compactness
// sorting rather than just its optimum. Rank 0 equals Find's result.
// Additional ranks expose the runner-up common ancestor graphs, useful for
// diagnostics and for presenting alternative relationship contexts.
//
// The candidate set is collected under the same termination conditions as
// Find, so ranks beyond 0 are best-effort: a root whose depth exceeds the
// first candidate's depth may not have been discovered. Callers needing an
// exhaustive ranking can pass Options.NoEarlyStop with a MaxDepth bound.
func (s *Searcher) FindK(labels []string, k int) []*Subgraph {
	if k <= 0 {
		return nil
	}
	st := s.pool.Get().(*state)
	defer func() {
		st.release()
		s.pool.Put(st)
	}()
	st.begin(nil)
	if !st.init(labels) {
		return nil
	}
	st.run()
	if len(st.candidates) == 0 {
		return nil
	}
	m := len(st.labels)
	type ranked struct {
		v   kg.NodeID
		vec []float64
	}
	all := make([]ranked, 0, len(st.candidates))
	for _, v := range st.candidates {
		vec := make([]float64, m)
		st.fillVec(vec, v)
		all = append(all, ranked{v, vec})
	}
	sort.Slice(all, func(i, j int) bool {
		switch {
		case st.opts.Model == ModelTree:
			si, sj := sumVec(all[i].vec), sumVec(all[j].vec)
			if si != sj {
				return si < sj
			}
		case st.opts.DepthOnly:
			if all[i].vec[0] != all[j].vec[0] {
				return all[i].vec[0] < all[j].vec[0]
			}
		}
		if c := CompareCompactness(all[i].vec, all[j].vec); c != 0 {
			return c < 0
		}
		return all[i].v < all[j].v
	})
	if k > len(all) {
		k = len(all)
	}
	out := make([]*Subgraph, k)
	for i := 0; i < k; i++ {
		out[i] = st.reconstruct(all[i].v)
	}
	return out
}
