package core

import (
	"testing"

	"newslink/internal/kg"
)

func TestExactGSTFigure1(t *testing.T) {
	g := figure1Graph()
	// {Upper Dir, Swat Valley, Pakistan}: the optimal tree is the star at
	// Khyber with three unit edges.
	cost, ok := ExactGST(g, []string{"Upper Dir", "Swat Valley", "Pakistan"}, 0)
	if !ok || cost != 3 {
		t.Fatalf("GST = %v ok=%v, want 3", cost, ok)
	}
	// Adding Taliban (2 hops from Khyber) raises the optimum by 2.
	cost, ok = ExactGST(g, []string{"Upper Dir", "Swat Valley", "Pakistan", "Taliban"}, 0)
	if !ok || cost != 5 {
		t.Fatalf("GST = %v ok=%v, want 5", cost, ok)
	}
	// A single label costs 0 (any of its nodes is a trivial tree).
	cost, ok = ExactGST(g, []string{"Taliban"}, 0)
	if !ok || cost != 0 {
		t.Fatalf("single-label GST = %v ok=%v", cost, ok)
	}
}

func TestExactGSTGroupSemantics(t *testing.T) {
	// The group may be satisfied by ANY node carrying the label: with two
	// "Lahore" nodes, the cheaper one must be chosen.
	g := figure1Graph()
	cost, ok := ExactGST(g, []string{"Lahore", "Upper Dir"}, 0)
	if !ok || cost != 2 {
		t.Fatalf("GST = %v ok=%v, want 2 (via the Khyber-adjacent Lahore)", cost, ok)
	}
}

func TestExactGSTUnsolvable(t *testing.T) {
	b := kg.NewBuilder(4)
	a := b.AddNode("A", kg.KindGPE, "")
	a2 := b.AddNode("A2", kg.KindGPE, "")
	c := b.AddNode("C", kg.KindGPE, "")
	c2 := b.AddNode("C2", kg.KindGPE, "")
	b.AddEdgeByName(a, a2, "r", 1)
	b.AddEdgeByName(c, c2, "r", 1)
	g := b.Build()
	if _, ok := ExactGST(g, []string{"A", "C"}, 0); ok {
		t.Fatal("disconnected labels must be unsolvable")
	}
	if _, ok := ExactGST(g, []string{"Nope"}, 0); ok {
		t.Fatal("unknown label must be unsolvable")
	}
	if _, ok := ExactGST(g, []string{"A"}, 2); ok {
		t.Fatal("maxNodes bound must refuse")
	}
}

// TestGSTBoundsApproximations validates the model hierarchy on synthetic
// worlds: exact GST <= TreeEmb tree weight <= m * GST (the 1-star bound),
// and the G* subgraph weight >= the tree weight (coverage costs edges).
func TestGSTBoundsApproximations(t *testing.T) {
	cfg := kg.Config{Seed: 17, Countries: 2, ProvincesPerCountry: 3,
		CitiesPerProvince: 2, PersonsPerCountry: 6, OrgsPerCountry: 5,
		EventsPerCountry: 6, AmbiguityRate: 0.05}
	w := kg.Generate(cfg)
	g := w.Graph
	tree := NewSearcher(g, Options{Model: ModelTree})
	gstar := NewSearcher(g, Options{})
	checked := 0
	for _, ev := range w.Events {
		var labels []string
		for _, p := range ev.Participants {
			labels = append(labels, g.Label(p))
		}
		labels = append(labels, g.Label(ev.Location))
		opt, ok := ExactGST(g, labels, 0)
		ts := tree.Find(labels)
		gs := gstar.Find(labels)
		if !ok {
			if ts != nil || gs != nil {
				t.Fatalf("searchers found embeddings where GST says unsolvable: %v", labels)
			}
			continue
		}
		if ts == nil || gs == nil {
			t.Fatalf("no embedding for solvable %v", labels)
		}
		checked++
		m := float64(len(ts.Labels))
		tw := TreeWeight(g, ts)
		gw := TreeWeight(g, gs)
		if tw < opt-1e-9 {
			t.Fatalf("tree weight %v below GST optimum %v for %v", tw, opt, labels)
		}
		if tw > m*opt+1e-9 {
			t.Fatalf("tree weight %v exceeds the m*OPT bound (m=%v opt=%v) for %v", tw, m, opt, labels)
		}
		// G* is also a connected subgraph touching every label, so its
		// weight cannot beat the GST optimum (it usually exceeds the tree:
		// coverage buys extra edges, but the roots may differ, so only the
		// optimum is a sound lower bound).
		if gw < opt-1e-9 {
			t.Fatalf("G* weight %v below GST optimum %v for %v", gw, opt, labels)
		}
	}
	if checked < 5 {
		t.Fatalf("only %d solvable instances checked", checked)
	}
}

func TestTreeWeightUnitEdges(t *testing.T) {
	g := figure1Graph()
	sg := find(t, g, Options{Model: ModelTree}, "Upper Dir", "Swat Valley", "Pakistan", "Taliban")
	if got := TreeWeight(g, sg); got != float64(len(sg.Arcs)) {
		t.Fatalf("unit-weight tree weight %v != arc count %d", got, len(sg.Arcs))
	}
}
