package core

import (
	"context"
	"sort"

	"newslink/internal/kg"
)

// CrossPaths finds relationship paths linking an entity of one document to
// an entity of another through the overlap of their subgraph embeddings —
// the inter-document evidence of Table II ("Upper Dir -> Khyber <- Lahore").
// The search runs a BFS over the union of both embeddings' arcs (treated
// bidirected, as the underlying KG is), from the nodes labeled la to the
// nodes labeled lb, and enumerates up to limit shortest paths.
func CrossPaths(g *kg.Graph, a, b *DocEmbedding, la, lb string, limit int) []RelPath {
	paths, _ := CrossPathsContext(context.Background(), g, a, b, la, lb, limit)
	return paths
}

// CrossPathsContext is CrossPaths with cooperative cancellation: the BFS
// polls the context once per frontier level (embedding arc sets are small,
// so levels are the natural granularity) and a done context aborts with
// ctx.Err().
func CrossPathsContext(ctx context.Context, g *kg.Graph, a, b *DocEmbedding, la, lb string, limit int) ([]RelPath, error) {
	if a == nil || b == nil || limit <= 0 {
		return nil, ctx.Err()
	}
	type half struct {
		to      kg.NodeID
		rel     kg.RelID
		forward bool // original KG edge points from -> to for this traversal
	}
	adj := make(map[kg.NodeID][]half)
	addArc := func(p PathArc) {
		// The arc's original KG direction: From->To unless Reverse.
		adj[p.From] = append(adj[p.From], half{p.To, p.Rel, !p.Reverse})
		adj[p.To] = append(adj[p.To], half{p.From, p.Rel, p.Reverse})
	}
	seen := map[PathArc]bool{}
	for _, emb := range []*DocEmbedding{a, b} {
		for _, sg := range emb.Subgraphs {
			for _, arc := range sg.Arcs {
				if !seen[arc] {
					seen[arc] = true
					addArc(arc)
				}
			}
		}
	}
	keyA, keyB := kg.Fold(la), kg.Fold(lb)
	var sources, targets []kg.NodeID
	for n := range adj {
		switch kg.Fold(g.Label(n)) {
		case keyA:
			sources = append(sources, n)
		case keyB:
			targets = append(targets, n)
		}
	}
	// Include isolated single-node subgraphs (roots with no arcs).
	for _, emb := range []*DocEmbedding{a, b} {
		for _, sg := range emb.Subgraphs {
			if len(sg.Arcs) == 0 && len(sg.Nodes) == 1 {
				n := sg.Nodes[0]
				switch kg.Fold(g.Label(n)) {
				case keyA:
					sources = append(sources, n)
				case keyB:
					targets = append(targets, n)
				}
			}
		}
	}
	sources, targets = dedupeIDs(sources), dedupeIDs(targets)
	if len(sources) == 0 || len(targets) == 0 {
		return nil, ctx.Err()
	}
	targetSet := make(map[kg.NodeID]bool, len(targets))
	for _, t := range targets {
		targetSet[t] = true
	}
	// BFS building a shortest-path parent DAG.
	depth := map[kg.NodeID]int{}
	parents := map[kg.NodeID][]Hop{} // hop.From = predecessor, hop.To = node
	var frontier []kg.NodeID
	for _, s := range sources {
		depth[s] = 0
		frontier = append(frontier, s)
	}
	bestTarget := -1
	for d := 0; len(frontier) > 0; d++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if bestTarget >= 0 && d >= bestTarget {
			break
		}
		var next []kg.NodeID
		for _, v := range frontier {
			if targetSet[v] && bestTarget < 0 {
				bestTarget = depth[v]
			}
			for _, h := range adj[v] {
				nd, ok := depth[h.to]
				if !ok {
					depth[h.to] = d + 1
					parents[h.to] = []Hop{{From: v, To: h.to, Rel: h.rel, Forward: h.forward}}
					next = append(next, h.to)
				} else if nd == d+1 {
					parents[h.to] = append(parents[h.to], Hop{From: v, To: h.to, Rel: h.rel, Forward: h.forward})
				}
			}
		}
		frontier = next
	}
	if bestTarget < 0 {
		return nil, nil
	}
	// Enumerate paths backwards from the nearest targets.
	srcSet := map[kg.NodeID]bool{}
	for _, s := range sources {
		srcSet[s] = true
	}
	var out []RelPath
	var walk func(v kg.NodeID, suffix []Hop)
	walk = func(v kg.NodeID, suffix []Hop) {
		if len(out) >= limit {
			return
		}
		if srcSet[v] {
			hops := make([]Hop, len(suffix))
			for i, h := range suffix {
				hops[len(suffix)-1-i] = h
			}
			// reverse copies suffix back-to-front: suffix was built from the
			// target inward, hops run source -> target.
			out = append(out, RelPath{A: keyA, B: keyB, Hops: hops})
			return
		}
		for _, h := range parents[v] {
			walk(h.From, append(suffix, h))
		}
	}
	sortNodeIDs(targets)
	for _, t := range targets {
		if depth[t] == bestTarget {
			walk(t, nil)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return len(out[i].Hops) < len(out[j].Hops) })
	return out, ctx.Err()
}

func dedupeIDs(ids []kg.NodeID) []kg.NodeID {
	seen := map[kg.NodeID]bool{}
	out := ids[:0]
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}
