// Package core implements the paper's primary contribution: the Lowest
// Common Ancestor Graph (G*) subgraph embedding model (Section V) and the
// search algorithm that finds it (Algorithms 1-3), plus the tree-based
// baseline (TreeEmb, Section VII-F) and relationship-path extraction for
// result explanation (Tables II and VI).
package core

import (
	"math"
	"sort"

	"newslink/internal/kg"
)

// Model selects the subgraph embedding model.
type Model uint8

const (
	// ModelLCAG is the paper's Lowest Common Ancestor Graph: the root
	// minimizes the compactness order (Definition 4) and ALL shortest paths
	// from every label to the root are preserved (coverage, Definition 3).
	ModelLCAG Model = iota
	// ModelTree is the TreeEmb baseline (Section VII-F): it approximates the
	// Group Steiner Tree by choosing the root with the minimum total
	// label-to-root distance and keeping a single shortest path per label.
	ModelTree
)

// String returns the model name.
func (m Model) String() string {
	if m == ModelTree {
		return "TreeEmb"
	}
	return "LCAG"
}

// Options configures a subgraph embedding search.
type Options struct {
	Model Model
	// MaxExpansions bounds the number of path enumerations (the paper's
	// "while Not Timeout"); 0 means DefaultMaxExpansions.
	MaxExpansions int
	// MaxDepth bounds the label-to-root distance explored; 0 means no bound.
	// Entity groups farther apart than this yield no embedding.
	MaxDepth float64
	// DepthOnly is an ablation switch: candidates are compared by depth
	// d(G_r) alone instead of the full compactness order of Definition 4.
	// Ties then break by node id, so the returned root may be any
	// minimum-depth candidate.
	DepthOnly bool
	// NoEarlyStop is an ablation switch: the termination conditions C1 and
	// C2 are ignored and the traversal runs until the frontier (bounded by
	// MaxDepth/MaxExpansions) is exhausted. The result is compactness-equal
	// to the early-stopping run; only the work differs (Section VII-G).
	NoEarlyStop bool
	// EmbedWorkers bounds how many entity groups an Embedder works on
	// concurrently within one EmbedGroups call; 0 selects GOMAXPROCS, 1
	// forces sequential embedding. The result is deterministic either way.
	EmbedWorkers int
	// GroupCacheSize enables the Embedder's per-entity-group subgraph LRU
	// (keyed by the canonical resolved label sequence) with the given
	// capacity; 0 disables it, keeping every search cold — the right mode
	// for the paper-reproduction timing harnesses.
	GroupCacheSize int
}

// DefaultMaxExpansions is the default traversal budget per entity group.
const DefaultMaxExpansions = 2_000_000

// PathArc is a directed arc of a subgraph embedding, oriented along the
// original traversal (from an entity node towards the root).
type PathArc struct {
	From, To kg.NodeID
	Rel      kg.RelID
	Reverse  bool // arc traverses the KG edge against its original direction
}

// Subgraph is a common ancestor graph G_r(L) (Definition 3): the union of
// shortest paths from every entity label to the root r.
type Subgraph struct {
	Root   kg.NodeID
	Labels []string  // the entity labels L the subgraph was built for
	Dists  []float64 // D(l_i, Root), aligned with Labels
	Nodes  []kg.NodeID
	Arcs   []PathArc
	// LabelArcs holds, per label (aligned with Labels), the arcs of all
	// preserved shortest paths from that label's sources to the root. It is
	// the basis for relationship-path extraction (Tables II and VI).
	LabelArcs [][]PathArc
	// Expansions is the number of path enumerations the search performed.
	Expansions int
}

// Depth returns d(G_r) = max_i D(l_i, r) (Definition 3).
func (s *Subgraph) Depth() float64 {
	d := 0.0
	for _, x := range s.Dists {
		if x > d {
			d = x
		}
	}
	return d
}

// DepthVector returns the distances sorted in descending order, the vector
// the compactness order (Definition 4) compares.
func (s *Subgraph) DepthVector() []float64 {
	v := append([]float64(nil), s.Dists...)
	sort.Sort(sort.Reverse(sort.Float64Slice(v)))
	return v
}

// HasNode reports whether id is part of the subgraph.
func (s *Subgraph) HasNode(id kg.NodeID) bool {
	for _, n := range s.Nodes {
		if n == id {
			return true
		}
	}
	return false
}

// CompareCompactness implements the compactness order of Definition 4 on
// descending-sorted distance vectors: it returns -1 if a is more compact
// than b (a < b), +1 if b is more compact, and 0 if they are equal. Vectors
// of different lengths are compared element-wise over the shorter length
// first; if equal, the shorter vector (fewer labels is impossible for the
// same L, but defensively) compares less.
func CompareCompactness(a, b []float64) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// sumVec returns the total of a distance vector (TreeEmb's objective).
func sumVec(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

// inf is the distance of unreached nodes.
var inf = math.Inf(1)
