package core

import (
	"fmt"
	"sort"
	"strings"

	"newslink/internal/kg"
)

// DOT renders subgraph embeddings as a Graphviz digraph, the visual the
// paper builds its figures from: Figure 1 colors the query embedding and
// the result embedding and highlights their overlap; Figure 4 shows the
// per-segment embeddings of one document with shared nodes emphasized.
//
// Each embedding in embs gets a color (cycled); nodes present in more than
// one embedding are filled orange like the paper's overlap rendering, and
// each subgraph root is drawn as a box. The output is deterministic.
func DOT(g *kg.Graph, title string, embs ...*DocEmbedding) string {
	colors := []string{"blue", "darkgreen", "red", "purple", "brown", "teal"}
	type nodeInfo struct {
		count int // how many embeddings contain the node
		first int // first embedding that contained it
		root  bool
	}
	nodes := map[kg.NodeID]*nodeInfo{}
	edges := map[PathArc]int{} // arc -> owning embedding (first seen)
	for ei, emb := range embs {
		if emb == nil {
			continue
		}
		for _, sg := range emb.Subgraphs {
			for _, n := range sg.Nodes {
				if info, ok := nodes[n]; ok {
					if info.first != ei {
						info.count++
						info.first = min(info.first, ei)
					}
				} else {
					nodes[n] = &nodeInfo{count: 1, first: ei}
				}
			}
			if info, ok := nodes[sg.Root]; ok {
				info.root = true
			}
			for _, a := range sg.Arcs {
				if _, ok := edges[a]; !ok {
					edges[a] = ei
				}
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", title)
	sb.WriteString("  rankdir=BT;\n  node [fontname=\"Helvetica\"];\n")
	ids := make([]kg.NodeID, 0, len(nodes))
	for n := range nodes {
		ids = append(ids, n)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, n := range ids {
		info := nodes[n]
		attrs := []string{fmt.Sprintf("label=%q", g.Label(n))}
		if info.root {
			attrs = append(attrs, "shape=box")
		}
		if info.count > 1 {
			// The overlap: shared context, orange as in Figure 4.
			attrs = append(attrs, `style=filled`, `fillcolor=orange`)
		} else {
			attrs = append(attrs, "color="+colors[info.first%len(colors)])
		}
		fmt.Fprintf(&sb, "  n%d [%s];\n", n, strings.Join(attrs, ", "))
	}
	arcs := make([]PathArc, 0, len(edges))
	for a := range edges {
		arcs = append(arcs, a)
	}
	sortArcs(arcs)
	for _, a := range arcs {
		from, to := a.From, a.To
		if a.Reverse {
			// Draw the KG edge in its original direction.
			from, to = to, from
		}
		fmt.Fprintf(&sb, "  n%d -> n%d [label=%q, color=%s, fontsize=10];\n",
			from, to, g.RelName(a.Rel), colors[edges[a]%len(colors)])
	}
	sb.WriteString("}\n")
	return sb.String()
}
