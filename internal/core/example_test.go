package core_test

import (
	"fmt"

	"newslink/internal/core"
	"newslink/internal/kg"
)

// Example reproduces the paper's Figure 1 in miniature: the G* of the
// query's entity group roots at the induced entity Khyber and keeps both
// shortest paths from Taliban.
func Example() {
	b := kg.NewBuilder(8)
	khyber := b.AddNode("Khyber", kg.KindGPE, "")
	waziristan := b.AddNode("Waziristan", kg.KindGPE, "")
	taliban := b.AddNode("Taliban", kg.KindOrg, "")
	kunar := b.AddNode("Kunar", kg.KindGPE, "")
	upperDir := b.AddNode("Upper Dir", kg.KindGPE, "")
	b.AddEdgeByName(taliban, kunar, "active in", 1)
	b.AddEdgeByName(taliban, waziristan, "active in", 1)
	b.AddEdgeByName(kunar, khyber, "located in", 1)
	b.AddEdgeByName(waziristan, khyber, "located in", 1)
	b.AddEdgeByName(upperDir, khyber, "located in", 1)
	g := b.Build()

	s := core.NewSearcher(g, core.Options{})
	sg := s.Find([]string{"Taliban", "Upper Dir"})
	fmt.Println("root:", g.Label(sg.Root))
	fmt.Println("depth:", sg.Depth())
	for _, p := range sg.PathsBetween("taliban", "upper dir", 2) {
		fmt.Println(p.Render(g))
	}
	// Output:
	// root: Khyber
	// depth: 2
	// Taliban -[active in]-> Waziristan -[located in]-> Khyber <-[located in]- Upper Dir
	// Taliban -[active in]-> Kunar -[located in]-> Khyber <-[located in]- Upper Dir
}
