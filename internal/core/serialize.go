package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"newslink/internal/kg"
	"newslink/internal/textembed"
)

// Binary embedding snapshot format (little endian):
//
//	magic "NLEMB1\n" or "NLEMB2\n"
//	uint32 numDocs
//	per doc: uint8 present; if present:
//	  uint32 numSubgraphs
//	  per subgraph:
//	    uint32 root
//	    uint32 numLabels; per label: string, float64 dist
//	    uint32 numNodes;  per node: uint32
//	    uint32 numArcs;   per arc: from u32, to u32, rel u16, reverse u8
//	    per label: uint32 count; arcs in the same encoding
//
// Version 2 appends one int8-quantized signature per document after the
// embedding payload:
//
//	per doc: float32 scale, uint16 dim, dim × int8
//
// (dim 0 encodes "no signature" — unembeddable document). Version 2 is
// written only when signatures exist, so engines without quantization keep
// emitting byte-identical NLEMB1 snapshots, and either version loads.
//
// Counts maps are rebuilt from the subgraph node sets on load.

const (
	embMagic   = "NLEMB1\n"
	embMagicV2 = "NLEMB2\n"
)

// WriteEmbeddings serializes per-document embeddings (nil entries are
// preserved as absent).
func WriteEmbeddings(w io.Writer, embs []*DocEmbedding) error {
	return WriteEmbeddingsSigs(w, embs, nil)
}

// WriteEmbeddingsSigs serializes embeddings plus optional int8-quantized
// signatures (aligned with embs). A nil sigs slice writes the version-1
// format byte for byte, preserving snapshot determinism for engines that
// don't quantize.
func WriteEmbeddingsSigs(w io.Writer, embs []*DocEmbedding, sigs []textembed.Int8Vector) error {
	if sigs != nil && len(sigs) != len(embs) {
		return fmt.Errorf("core: %d signatures for %d embeddings", len(sigs), len(embs))
	}
	bw := bufio.NewWriter(w)
	magic := embMagic
	if sigs != nil {
		magic = embMagicV2
	}
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	if err := writeEmbBody(bw, embs); err != nil {
		return err
	}
	le := func(data any) error { return binary.Write(bw, binary.LittleEndian, data) }
	for _, q := range sigs {
		if len(q.Data) > 1<<16-1 {
			return fmt.Errorf("core: signature dimension %d exceeds uint16", len(q.Data))
		}
		if err := le(q.Scale); err != nil {
			return err
		}
		if err := le(uint16(len(q.Data))); err != nil {
			return err
		}
		if err := le(q.Data); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// writeEmbBody writes the shared per-document embedding payload (everything
// after the magic string).
func writeEmbBody(bw *bufio.Writer, embs []*DocEmbedding) error {
	le := func(data any) error { return binary.Write(bw, binary.LittleEndian, data) }
	if err := le(uint32(len(embs))); err != nil {
		return err
	}
	for _, e := range embs {
		if e == nil {
			if err := le(uint8(0)); err != nil {
				return err
			}
			continue
		}
		if err := le(uint8(1)); err != nil {
			return err
		}
		if err := le(uint32(len(e.Subgraphs))); err != nil {
			return err
		}
		for _, sg := range e.Subgraphs {
			if err := writeSubgraph(bw, sg); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSubgraph(w io.Writer, sg *Subgraph) error {
	le := func(data any) error { return binary.Write(w, binary.LittleEndian, data) }
	if err := le(uint32(sg.Root)); err != nil {
		return err
	}
	if len(sg.Labels) != len(sg.Dists) || len(sg.Labels) != len(sg.LabelArcs) {
		return fmt.Errorf("core: inconsistent subgraph: %d labels, %d dists, %d arc sets",
			len(sg.Labels), len(sg.Dists), len(sg.LabelArcs))
	}
	if err := le(uint32(len(sg.Labels))); err != nil {
		return err
	}
	for i, l := range sg.Labels {
		if err := writeString(w, l); err != nil {
			return err
		}
		if err := le(sg.Dists[i]); err != nil {
			return err
		}
	}
	if err := le(uint32(len(sg.Nodes))); err != nil {
		return err
	}
	for _, n := range sg.Nodes {
		if err := le(uint32(n)); err != nil {
			return err
		}
	}
	if err := writeArcs(w, sg.Arcs); err != nil {
		return err
	}
	for _, arcs := range sg.LabelArcs {
		if err := writeArcs(w, arcs); err != nil {
			return err
		}
	}
	return nil
}

func writeArcs(w io.Writer, arcs []PathArc) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(arcs))); err != nil {
		return err
	}
	for _, a := range arcs {
		rev := uint8(0)
		if a.Reverse {
			rev = 1
		}
		if err := binary.Write(w, binary.LittleEndian, struct {
			From, To uint32
			Rel      uint16
			Rev      uint8
		}{uint32(a.From), uint32(a.To), uint16(a.Rel), rev}); err != nil {
			return err
		}
	}
	return nil
}

// ReadEmbeddings parses a snapshot written by WriteEmbeddings (either
// version), validating node and relation ids against g. Signatures, if
// present, are discarded; use ReadEmbeddingsSigs to keep them.
func ReadEmbeddings(r io.Reader, g *kg.Graph) ([]*DocEmbedding, error) {
	embs, _, err := ReadEmbeddingsSigs(r, g)
	return embs, err
}

// ReadEmbeddingsSigs parses either snapshot version, returning the
// embeddings plus the quantized signatures when the snapshot carries them
// (nil for version-1 snapshots — the caller re-encodes from the embeddings
// if it needs signatures).
func ReadEmbeddingsSigs(r io.Reader, g *kg.Graph) ([]*DocEmbedding, []textembed.Int8Vector, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(embMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, nil, fmt.Errorf("core: reading magic: %w", err)
	}
	hasSigs := false
	switch string(magic) {
	case embMagic:
	case embMagicV2:
		hasSigs = true
	default:
		return nil, nil, fmt.Errorf("core: bad magic %q", magic)
	}
	embs, err := readEmbBody(br, g)
	if err != nil {
		return nil, nil, err
	}
	if !hasSigs {
		return embs, nil, nil
	}
	le := func(data any) error { return binary.Read(br, binary.LittleEndian, data) }
	sigs := make([]textembed.Int8Vector, len(embs))
	for i := range sigs {
		var scale float32
		if err := le(&scale); err != nil {
			return nil, nil, fmt.Errorf("core: doc %d signature: %w", i, err)
		}
		var dim uint16
		if err := le(&dim); err != nil {
			return nil, nil, fmt.Errorf("core: doc %d signature: %w", i, err)
		}
		sigs[i].Scale = scale
		sigs[i].Data = make([]int8, dim)
		if err := le(sigs[i].Data); err != nil {
			return nil, nil, fmt.Errorf("core: doc %d signature: %w", i, err)
		}
	}
	return embs, sigs, nil
}

// readEmbBody parses the shared per-document embedding payload.
func readEmbBody(br *bufio.Reader, g *kg.Graph) ([]*DocEmbedding, error) {
	le := func(data any) error { return binary.Read(br, binary.LittleEndian, data) }
	var nDocs uint32
	if err := le(&nDocs); err != nil {
		return nil, err
	}
	if nDocs > 1<<28 {
		return nil, fmt.Errorf("core: implausible doc count %d", nDocs)
	}
	out := make([]*DocEmbedding, nDocs)
	for i := range out {
		var present uint8
		if err := le(&present); err != nil {
			return nil, fmt.Errorf("core: doc %d: %w", i, err)
		}
		if present == 0 {
			continue
		}
		var nSubs uint32
		if err := le(&nSubs); err != nil {
			return nil, err
		}
		if nSubs > 1<<20 {
			return nil, fmt.Errorf("core: doc %d: implausible subgraph count %d", i, nSubs)
		}
		emb := &DocEmbedding{Counts: make(map[kg.NodeID]int)}
		for s := uint32(0); s < nSubs; s++ {
			sg, err := readSubgraph(br, g)
			if err != nil {
				return nil, fmt.Errorf("core: doc %d subgraph %d: %w", i, s, err)
			}
			emb.Subgraphs = append(emb.Subgraphs, sg)
			for _, n := range sg.Nodes {
				emb.Counts[n]++
			}
		}
		out[i] = emb
	}
	return out, nil
}

func readSubgraph(r io.Reader, g *kg.Graph) (*Subgraph, error) {
	le := func(data any) error { return binary.Read(r, binary.LittleEndian, data) }
	sg := &Subgraph{}
	var root uint32
	if err := le(&root); err != nil {
		return nil, err
	}
	if int(root) >= g.NumNodes() {
		return nil, fmt.Errorf("root %d out of range", root)
	}
	sg.Root = kg.NodeID(root)
	var nLabels uint32
	if err := le(&nLabels); err != nil {
		return nil, err
	}
	if nLabels > 1<<16 {
		return nil, fmt.Errorf("implausible label count %d", nLabels)
	}
	for i := uint32(0); i < nLabels; i++ {
		l, err := readString(r)
		if err != nil {
			return nil, err
		}
		var d float64
		if err := le(&d); err != nil {
			return nil, err
		}
		sg.Labels = append(sg.Labels, l)
		sg.Dists = append(sg.Dists, d)
	}
	var nNodes uint32
	if err := le(&nNodes); err != nil {
		return nil, err
	}
	if int(nNodes) > g.NumNodes() {
		return nil, fmt.Errorf("node count %d exceeds graph size", nNodes)
	}
	for i := uint32(0); i < nNodes; i++ {
		var n uint32
		if err := le(&n); err != nil {
			return nil, err
		}
		if int(n) >= g.NumNodes() {
			return nil, fmt.Errorf("node %d out of range", n)
		}
		sg.Nodes = append(sg.Nodes, kg.NodeID(n))
	}
	arcs, err := readArcs(r, g)
	if err != nil {
		return nil, err
	}
	sg.Arcs = arcs
	sg.LabelArcs = make([][]PathArc, nLabels)
	for i := range sg.LabelArcs {
		if sg.LabelArcs[i], err = readArcs(r, g); err != nil {
			return nil, err
		}
	}
	return sg, nil
}

func readArcs(r io.Reader, g *kg.Graph) ([]PathArc, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if uint64(n) > uint64(g.NumEdges())*2+1 {
		return nil, fmt.Errorf("arc count %d exceeds graph size", n)
	}
	out := make([]PathArc, n)
	for i := range out {
		var raw struct {
			From, To uint32
			Rel      uint16
			Rev      uint8
		}
		if err := binary.Read(r, binary.LittleEndian, &raw); err != nil {
			return nil, err
		}
		if int(raw.From) >= g.NumNodes() || int(raw.To) >= g.NumNodes() {
			return nil, fmt.Errorf("arc endpoint out of range")
		}
		if int(raw.Rel) >= g.NumRels() {
			return nil, fmt.Errorf("relation %d out of range", raw.Rel)
		}
		out[i] = PathArc{
			From:    kg.NodeID(raw.From),
			To:      kg.NodeID(raw.To),
			Rel:     kg.RelID(raw.Rel),
			Reverse: raw.Rev != 0,
		}
	}
	return out, nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
