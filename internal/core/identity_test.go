package core

import (
	"bytes"
	"context"
	"math/rand"
	"reflect"
	"strings"
	"sync"
	"testing"

	"newslink/internal/kg"
)

// These property tests gate the flat-state rewrite: Find (paged
// epoch-stamped arrays, pooled state, manual heap) must produce embeddings
// identical to FindReference (the original map-based implementation kept
// as an executable specification) — same root, labels, distance vectors,
// node sets, arcs, and identical serialized bytes — across models,
// ablations, random label sets, and pooled state reuse. Run them with
// -race: the pool and the parallel embedder must also be data-race-free.

// subgraphBytes serializes one subgraph in the NLEMB1 on-disk encoding,
// the strictest equality check available: any drift in ordering or content
// changes the bytes.
func subgraphBytes(t *testing.T, sg *Subgraph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeSubgraph(&buf, sg); err != nil {
		t.Fatalf("writeSubgraph: %v", err)
	}
	return buf.Bytes()
}

// checkIdentical fails the test unless got and want are the same embedding
// down to the serialized bytes.
func checkIdentical(t *testing.T, labels []string, got, want *Subgraph) {
	t.Helper()
	if (got == nil) != (want == nil) {
		t.Fatalf("labels %q: flat=%v reference=%v", labels, got != nil, want != nil)
	}
	if got == nil {
		return
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("labels %q: flat-state subgraph differs from reference\n got: %+v\nwant: %+v", labels, got, want)
	}
	if gb, wb := subgraphBytes(t, got), subgraphBytes(t, want); !bytes.Equal(gb, wb) {
		t.Fatalf("labels %q: serialized bytes differ (%d vs %d bytes)", labels, len(gb), len(wb))
	}
}

// randomLabelSet draws an entity group the way real queries look: labels
// of one or two synthetic events (participants, location, country — often
// cross-country so frontiers must meet far from home), plus occasional
// random nodes, junk labels, duplicates and case/whitespace variants.
func randomLabelSet(rng *rand.Rand, w *kg.World) []string {
	g := w.Graph
	ev := w.Events[rng.Intn(len(w.Events))]
	labels := []string{
		g.Label(ev.Participants[rng.Intn(len(ev.Participants))]),
		g.Label(ev.Location),
		g.Label(ev.Country),
	}
	if rng.Intn(2) == 0 {
		ev2 := w.Events[rng.Intn(len(w.Events))]
		labels = append(labels, g.Label(ev2.Participants[0]))
	}
	if rng.Intn(3) == 0 {
		labels = append(labels, g.Label(kg.NodeID(rng.Intn(g.NumNodes()))))
	}
	if rng.Intn(4) == 0 {
		labels = append(labels, "no such entity anywhere")
	}
	if rng.Intn(3) == 0 {
		// Duplicate with folding noise: must dedup identically.
		labels = append(labels, "  "+strings.ToUpper(labels[rng.Intn(len(labels))])+" ")
	}
	rng.Shuffle(len(labels), func(i, j int) { labels[i], labels[j] = labels[j], labels[i] })
	return labels
}

func TestFlatStateMatchesReference(t *testing.T) {
	optsList := []Options{
		{MaxDepth: 6},
		{},
		{Model: ModelTree, MaxDepth: 6},
		{Model: ModelTree, MaxDepth: 6, NoEarlyStop: true},
		{MaxDepth: 6, DepthOnly: true},
		{MaxDepth: 4, NoEarlyStop: true},
		{MaxDepth: 6, MaxExpansions: 200},
	}
	for seed := int64(1); seed <= 3; seed++ {
		w := kg.Generate(kg.DefaultConfig(seed))
		rng := rand.New(rand.NewSource(seed * 7919))
		for _, opts := range optsList {
			s := NewSearcher(w.Graph, opts)
			// One pooled searcher across all queries: state reuse must not
			// leak anything from query to query.
			for q := 0; q < 25; q++ {
				labels := randomLabelSet(rng, w)
				checkIdentical(t, labels, s.Find(labels), s.FindReference(labels))
			}
		}
	}
}

// TestFindKMatchesReferenceRank0 pins FindK's contract that rank 0 equals
// Find (and therefore FindReference) after the state rewrite.
func TestFindKMatchesReferenceRank0(t *testing.T) {
	w := kg.Generate(kg.DefaultConfig(11))
	rng := rand.New(rand.NewSource(99))
	s := NewSearcher(w.Graph, Options{MaxDepth: 6})
	for q := 0; q < 15; q++ {
		labels := randomLabelSet(rng, w)
		ranked := s.FindK(labels, 3)
		want := s.FindReference(labels)
		if want == nil {
			if len(ranked) != 0 {
				t.Fatalf("labels %q: FindK returned %d results, reference found none", labels, len(ranked))
			}
			continue
		}
		if len(ranked) == 0 {
			t.Fatalf("labels %q: FindK empty, reference found %v", labels, want.Root)
		}
		checkIdentical(t, labels, ranked[0], want)
	}
}

// TestPooledSearcherConcurrentIdentity hammers one Searcher from many
// goroutines; under -race this proves the sync.Pool state recycling is
// race-free and every concurrent result is still byte-identical to the
// sequential reference.
func TestPooledSearcherConcurrentIdentity(t *testing.T) {
	w := kg.Generate(kg.DefaultConfig(5))
	rng := rand.New(rand.NewSource(42))
	s := NewSearcher(w.Graph, Options{MaxDepth: 6})
	sets := make([][]string, 30)
	refs := make([]*Subgraph, len(sets))
	for i := range sets {
		sets[i] = randomLabelSet(rng, w)
		refs[i] = s.FindReference(sets[i])
	}
	var wg sync.WaitGroup
	for worker := 0; worker < 8; worker++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for n := 0; n < len(sets); n++ {
				i := (n + off) % len(sets)
				got := s.Find(sets[i])
				if (got == nil) != (refs[i] == nil) {
					t.Errorf("labels %q: concurrent Find nil-ness diverged", sets[i])
					return
				}
				if got != nil && !reflect.DeepEqual(got, refs[i]) {
					t.Errorf("labels %q: concurrent Find differs from reference", sets[i])
					return
				}
			}
		}(worker)
	}
	wg.Wait()
}

// TestParallelEmbedderMatchesSequential proves the EmbedGroups fan-out is
// a pure throughput optimization: sequential, parallel, and parallel with
// the group cache (cold and warm) all produce byte-identical document
// embeddings.
func TestParallelEmbedderMatchesSequential(t *testing.T) {
	w := kg.Generate(kg.DefaultConfig(3))
	rng := rand.New(rand.NewSource(17))
	var groups [][]string
	for i := 0; i < 8; i++ {
		groups = append(groups, randomLabelSet(rng, w))
	}
	groups = append(groups, []string{"nothing resolvable here"})

	seq := NewEmbedder(w.Graph, Options{MaxDepth: 6, EmbedWorkers: 1})
	par := NewEmbedder(w.Graph, Options{MaxDepth: 6, EmbedWorkers: 8})
	cached := NewEmbedder(w.Graph, Options{MaxDepth: 6, EmbedWorkers: 8, GroupCacheSize: 64})

	wantEmb, wantStats, err := seq.EmbedGroupsContext(context.Background(), groups)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := WriteEmbeddings(&want, []*DocEmbedding{wantEmb}); err != nil {
		t.Fatal(err)
	}
	check := func(name string, e *Embedder, wantGroupHits int) {
		emb, stats, err := e.EmbedGroupsContext(context.Background(), groups)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var got bytes.Buffer
		if err := WriteEmbeddings(&got, []*DocEmbedding{emb}); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("%s: serialized embedding differs from sequential run", name)
		}
		if stats.Groups != wantStats.Groups || stats.Embedded != wantStats.Embedded ||
			stats.ResolvedLabels != wantStats.ResolvedLabels || stats.Expansions != wantStats.Expansions {
			t.Fatalf("%s: stats %+v, want %+v", name, stats, wantStats)
		}
		if stats.GroupCacheHits != wantGroupHits {
			t.Fatalf("%s: group cache hits = %d, want %d", name, stats.GroupCacheHits, wantGroupHits)
		}
	}
	check("parallel", par, 0)
	check("cached-cold", cached, 0)
	// Warm pass: every embeddable group must now come from the cache and the
	// result must still be byte-identical.
	check("cached-warm", cached, wantStats.Embedded)
}

// TestFindContextCancellation proves the enumeration loop honors context
// cancellation instead of running to termination.
func TestFindContextCancellation(t *testing.T) {
	w := kg.Generate(kg.DefaultConfig(2))
	s := NewSearcher(w.Graph, Options{}) // unbounded depth: a long traversal
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ev := w.Events[0]
	labels := []string{w.Graph.Label(ev.Participants[0]), w.Graph.Label(ev.Location), w.Graph.Label(ev.Country)}
	if _, err := s.FindContext(ctx, labels); err != context.Canceled {
		t.Fatalf("FindContext on cancelled ctx: err = %v, want context.Canceled", err)
	}
}
