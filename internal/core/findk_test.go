package core

import (
	"reflect"
	"testing"

	"newslink/internal/kg"
)

func TestFindKRankZeroEqualsFind(t *testing.T) {
	w := kg.Generate(kg.DefaultConfig(9))
	g := w.Graph
	s := NewSearcher(g, Options{MaxDepth: 5})
	for _, labels := range eventLabels(w, 10) {
		single := s.Find(labels)
		many := s.FindK(labels, 3)
		if (single == nil) != (len(many) == 0) {
			t.Fatalf("existence mismatch for %v", labels)
		}
		if single == nil {
			continue
		}
		if many[0].Root != single.Root || !reflect.DeepEqual(many[0].Nodes, single.Nodes) {
			t.Fatalf("rank 0 differs from Find for %v", labels)
		}
		// Ranks are ordered by compactness.
		for i := 1; i < len(many); i++ {
			if CompareCompactness(many[i-1].DepthVector(), many[i].DepthVector()) > 0 {
				t.Fatalf("ranks out of order: %v then %v",
					many[i-1].DepthVector(), many[i].DepthVector())
			}
		}
	}
}

func TestFindKDistinctRoots(t *testing.T) {
	g := figure1Graph()
	many := NewSearcher(g, Options{NoEarlyStop: true, MaxDepth: 3}).
		FindK([]string{"Upper Dir", "Swat Valley"}, 4)
	if len(many) < 2 {
		t.Fatalf("only %d candidates", len(many))
	}
	seen := map[kg.NodeID]bool{}
	for _, sg := range many {
		if seen[sg.Root] {
			t.Fatalf("duplicate root %v", sg.Root)
		}
		seen[sg.Root] = true
	}
	if g.Label(many[0].Root) != "Khyber" {
		t.Fatalf("best root = %s, want Khyber", g.Label(many[0].Root))
	}
}

func TestFindKEdgeCases(t *testing.T) {
	g := figure1Graph()
	s := NewSearcher(g, Options{})
	if got := s.FindK([]string{"Taliban"}, 0); got != nil {
		t.Fatal("k=0 should be nil")
	}
	if got := s.FindK([]string{"Atlantis"}, 3); got != nil {
		t.Fatal("unknown labels should be nil")
	}
	if got := s.FindK([]string{"Taliban"}, 100); len(got) == 0 {
		t.Fatal("k > candidates should clamp, not fail")
	}
}
