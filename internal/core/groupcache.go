package core

import (
	"container/list"
	"strings"
	"sync"

	"newslink/internal/kg"
)

// groupCache is a concurrency-safe LRU of entity-group → *Subgraph. The
// key is the group's canonical resolved-label sequence in first-seen order
// — exactly the Labels slice Find would produce — so a hit returns a
// subgraph byte-identical to a fresh search, while groups that differ only
// in unresolvable labels, duplicate labels, case or whitespace share an
// entry. Values are shared pointers and must be treated as immutable.
type groupCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recent; values are *groupEntry
	m   map[string]*list.Element
}

type groupEntry struct {
	key string
	sg  *Subgraph
}

func newGroupCache(max int) *groupCache {
	return &groupCache{max: max, ll: list.New(), m: make(map[string]*list.Element, max)}
}

func (c *groupCache) get(key string) (*Subgraph, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*groupEntry).sg, true
}

func (c *groupCache) put(key string, sg *Subgraph) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*groupEntry).sg = sg
		return
	}
	c.m[key] = c.ll.PushFront(&groupEntry{key: key, sg: sg})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.m, el.Value.(*groupEntry).key)
	}
}

func (c *groupCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// groupKey canonicalizes an entity group into its cache key: labels are
// folded, deduplicated in first-seen order, and dropped unless they resolve
// to at least one KG node — mirroring Find's own label registration, so
// equal keys provably enumerate the same frontier. Returns "" when nothing
// resolves (Find would return nil; not worth caching).
func (e *Embedder) groupKey(labels []string) string {
	resolved := make([]string, 0, len(labels))
outer:
	for _, l := range labels {
		key := kg.Fold(l)
		for _, r := range resolved {
			if r == key {
				continue outer
			}
		}
		if len(e.s.g.Lookup(key)) == 0 {
			continue
		}
		resolved = append(resolved, key)
	}
	if len(resolved) == 0 {
		return ""
	}
	return strings.Join(resolved, "\x1f")
}
