package core

import (
	"bytes"
	"reflect"
	"testing"

	"newslink/internal/kg"
)

func TestEmbeddingsRoundTrip(t *testing.T) {
	g := figure1Graph()
	e := NewEmbedder(g, Options{})
	embs := []*DocEmbedding{
		e.EmbedGroups([][]string{
			{"upper dir", "swat valley", "pakistan", "taliban"},
			{"pakistan", "taliban"},
		}),
		nil, // unembeddable document
		e.EmbedGroups([][]string{{"taliban"}}),
	}
	var buf bytes.Buffer
	if err := WriteEmbeddings(&buf, embs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEmbeddings(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(embs) {
		t.Fatalf("len = %d", len(got))
	}
	if got[1] != nil {
		t.Fatal("nil embedding not preserved")
	}
	for i := range embs {
		if embs[i] == nil {
			continue
		}
		a, b := embs[i], got[i]
		if !reflect.DeepEqual(a.Counts, b.Counts) {
			t.Fatalf("doc %d counts differ: %v vs %v", i, a.Counts, b.Counts)
		}
		if len(a.Subgraphs) != len(b.Subgraphs) {
			t.Fatalf("doc %d subgraph counts differ", i)
		}
		for j := range a.Subgraphs {
			sa, sb := a.Subgraphs[j], b.Subgraphs[j]
			if sa.Root != sb.Root ||
				!reflect.DeepEqual(sa.Labels, sb.Labels) ||
				!reflect.DeepEqual(sa.Dists, sb.Dists) ||
				!reflect.DeepEqual(sa.Nodes, sb.Nodes) ||
				!eqArcs(sa.Arcs, sb.Arcs) {
				t.Fatalf("doc %d subgraph %d differs:\n%+v\nvs\n%+v", i, j, sa, sb)
			}
			if len(sa.LabelArcs) != len(sb.LabelArcs) {
				t.Fatalf("doc %d subgraph %d label arc sets differ", i, j)
			}
			for k := range sa.LabelArcs {
				if !eqArcs(sa.LabelArcs[k], sb.LabelArcs[k]) {
					t.Fatalf("doc %d subgraph %d label %d arcs differ", i, j, k)
				}
			}
		}
	}
	// Behaviour after round trip: path extraction still works.
	paths := got[0].PathsBetween("taliban", "upper dir", 5)
	if len(paths) != 2 {
		t.Fatalf("paths after round trip = %d, want 2", len(paths))
	}
}

// eqArcs compares arc slices treating nil and empty as equal.
func eqArcs(a, b []PathArc) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestReadEmbeddingsRejectsCorruption(t *testing.T) {
	g := figure1Graph()
	e := NewEmbedder(g, Options{})
	embs := []*DocEmbedding{e.EmbedGroups([][]string{{"pakistan", "taliban"}})}
	var buf bytes.Buffer
	if err := WriteEmbeddings(&buf, embs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadEmbeddings(bytes.NewReader(data[:len(data)/2]), g); err == nil {
		t.Error("truncated: expected error")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := ReadEmbeddings(bytes.NewReader(bad), g); err == nil {
		t.Error("bad magic: expected error")
	}
	// A graph too small for the stored node ids must be rejected.
	tb := kg.NewBuilder(2)
	a := tb.AddNode("X", kg.KindGPE, "")
	b2 := tb.AddNode("Y", kg.KindGPE, "")
	tb.AddEdgeByName(a, b2, "r", 1)
	tiny := tb.Build()
	if _, err := ReadEmbeddings(bytes.NewReader(data), tiny); err == nil {
		t.Error("wrong graph: expected error")
	}
}
