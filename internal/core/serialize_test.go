package core

import (
	"bytes"
	"reflect"
	"testing"

	"newslink/internal/kg"
	"newslink/internal/textembed"
)

func TestEmbeddingsRoundTrip(t *testing.T) {
	g := figure1Graph()
	e := NewEmbedder(g, Options{})
	embs := []*DocEmbedding{
		e.EmbedGroups([][]string{
			{"upper dir", "swat valley", "pakistan", "taliban"},
			{"pakistan", "taliban"},
		}),
		nil, // unembeddable document
		e.EmbedGroups([][]string{{"taliban"}}),
	}
	var buf bytes.Buffer
	if err := WriteEmbeddings(&buf, embs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEmbeddings(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(embs) {
		t.Fatalf("len = %d", len(got))
	}
	if got[1] != nil {
		t.Fatal("nil embedding not preserved")
	}
	for i := range embs {
		if embs[i] == nil {
			continue
		}
		a, b := embs[i], got[i]
		if !reflect.DeepEqual(a.Counts, b.Counts) {
			t.Fatalf("doc %d counts differ: %v vs %v", i, a.Counts, b.Counts)
		}
		if len(a.Subgraphs) != len(b.Subgraphs) {
			t.Fatalf("doc %d subgraph counts differ", i)
		}
		for j := range a.Subgraphs {
			sa, sb := a.Subgraphs[j], b.Subgraphs[j]
			if sa.Root != sb.Root ||
				!reflect.DeepEqual(sa.Labels, sb.Labels) ||
				!reflect.DeepEqual(sa.Dists, sb.Dists) ||
				!reflect.DeepEqual(sa.Nodes, sb.Nodes) ||
				!eqArcs(sa.Arcs, sb.Arcs) {
				t.Fatalf("doc %d subgraph %d differs:\n%+v\nvs\n%+v", i, j, sa, sb)
			}
			if len(sa.LabelArcs) != len(sb.LabelArcs) {
				t.Fatalf("doc %d subgraph %d label arc sets differ", i, j)
			}
			for k := range sa.LabelArcs {
				if !eqArcs(sa.LabelArcs[k], sb.LabelArcs[k]) {
					t.Fatalf("doc %d subgraph %d label %d arcs differ", i, j, k)
				}
			}
		}
	}
	// Behaviour after round trip: path extraction still works.
	paths := got[0].PathsBetween("taliban", "upper dir", 5)
	if len(paths) != 2 {
		t.Fatalf("paths after round trip = %d, want 2", len(paths))
	}
}

// eqArcs compares arc slices treating nil and empty as equal.
func eqArcs(a, b []PathArc) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestEmbeddingsSigsRoundTrip covers the version-2 format: signatures
// survive the round trip exactly; writing nil signatures stays
// byte-identical to version 1 (snapshot determinism for non-quantized
// engines); version-1 data reads back with nil signatures.
func TestEmbeddingsSigsRoundTrip(t *testing.T) {
	g := figure1Graph()
	e := NewEmbedder(g, Options{})
	embs := []*DocEmbedding{
		e.EmbedGroups([][]string{{"pakistan", "taliban"}}),
		nil,
		e.EmbedGroups([][]string{{"taliban"}}),
	}
	sigs := []textembed.Int8Vector{
		{Scale: 0.0123, Data: []int8{127, -128, 0, 5, -7}},
		{}, // unembeddable document: no signature
		{Scale: 1, Data: []int8{1, 2, 3}},
	}
	var v2 bytes.Buffer
	if err := WriteEmbeddingsSigs(&v2, embs, sigs); err != nil {
		t.Fatal(err)
	}
	gotEmbs, gotSigs, err := ReadEmbeddingsSigs(bytes.NewReader(v2.Bytes()), g)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotEmbs) != len(embs) || gotEmbs[1] != nil {
		t.Fatalf("embeddings not preserved: %d docs", len(gotEmbs))
	}
	if len(gotSigs) != len(sigs) {
		t.Fatalf("signatures = %d, want %d", len(gotSigs), len(sigs))
	}
	for i := range sigs {
		if gotSigs[i].Scale != sigs[i].Scale {
			t.Fatalf("doc %d scale = %v, want %v", i, gotSigs[i].Scale, sigs[i].Scale)
		}
		if len(gotSigs[i].Data) != len(sigs[i].Data) {
			t.Fatalf("doc %d dim = %d, want %d", i, len(gotSigs[i].Data), len(sigs[i].Data))
		}
		for j := range sigs[i].Data {
			if gotSigs[i].Data[j] != sigs[i].Data[j] {
				t.Fatalf("doc %d component %d = %d, want %d", i, j, gotSigs[i].Data[j], sigs[i].Data[j])
			}
		}
	}
	// Nil signatures → exactly the version-1 bytes.
	var v1a, v1b bytes.Buffer
	if err := WriteEmbeddings(&v1a, embs); err != nil {
		t.Fatal(err)
	}
	if err := WriteEmbeddingsSigs(&v1b, embs, nil); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v1a.Bytes(), v1b.Bytes()) {
		t.Fatal("nil-signature write diverged from version-1 bytes")
	}
	// Version-1 data reads back with nil signatures through either entry.
	if _, s, err := ReadEmbeddingsSigs(bytes.NewReader(v1a.Bytes()), g); err != nil || s != nil {
		t.Fatalf("version-1 read: sigs=%v err=%v", s, err)
	}
	if _, err := ReadEmbeddings(bytes.NewReader(v2.Bytes()), g); err != nil {
		t.Fatalf("version-2 via ReadEmbeddings: %v", err)
	}
	// Mismatched lengths must be rejected at write time.
	if err := WriteEmbeddingsSigs(&bytes.Buffer{}, embs, sigs[:2]); err == nil {
		t.Fatal("mismatched signature count: expected error")
	}
	// A truncated signature section must fail, not silently yield fewer.
	trunc := v2.Bytes()[:v2.Len()-2]
	if _, _, err := ReadEmbeddingsSigs(bytes.NewReader(trunc), g); err == nil {
		t.Fatal("truncated signatures: expected error")
	}
}

func TestReadEmbeddingsRejectsCorruption(t *testing.T) {
	g := figure1Graph()
	e := NewEmbedder(g, Options{})
	embs := []*DocEmbedding{e.EmbedGroups([][]string{{"pakistan", "taliban"}})}
	var buf bytes.Buffer
	if err := WriteEmbeddings(&buf, embs); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	if _, err := ReadEmbeddings(bytes.NewReader(data[:len(data)/2]), g); err == nil {
		t.Error("truncated: expected error")
	}
	bad := append([]byte(nil), data...)
	bad[0] = 'X'
	if _, err := ReadEmbeddings(bytes.NewReader(bad), g); err == nil {
		t.Error("bad magic: expected error")
	}
	// A graph too small for the stored node ids must be rejected.
	tb := kg.NewBuilder(2)
	a := tb.AddNode("X", kg.KindGPE, "")
	b2 := tb.AddNode("Y", kg.KindGPE, "")
	tb.AddEdgeByName(a, b2, "r", 1)
	tiny := tb.Build()
	if _, err := ReadEmbeddings(bytes.NewReader(data), tiny); err == nil {
		t.Error("wrong graph: expected error")
	}
}
