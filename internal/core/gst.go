package core

import (
	"container/heap"

	"newslink/internal/kg"
)

// ExactGST computes the optimal Group Steiner Tree cost for a set of entity
// labels: the minimum total edge weight of a connected subgraph touching at
// least one node of every label group. The paper discusses GST as the
// classic subgraph-extraction model (Section II) and rejects it for being
// NP-hard; this exact solver — a Dreyfus-Wagner style dynamic program over
// label subsets, O(3^m·n + 2^m·(n+e)·log n) — exists as a *reference* to
// quantify how far the tractable models (TreeEmb's 1-star approximation,
// and G*'s coverage overhead) are from the optimum on small instances.
//
// It returns ok=false when some label has no node or no connected solution
// exists, and refuses instances with more than MaxGSTLabels labels or
// graphs larger than maxNodes (0 = no node bound) to keep the exponential
// DP honest about its limits.
func ExactGST(g *kg.Graph, labels []string, maxNodes int) (cost float64, ok bool) {
	if maxNodes > 0 && g.NumNodes() > maxNodes {
		return 0, false
	}
	// Resolve labels to source sets, deduplicated like the G* search.
	seen := map[string]bool{}
	var groups [][]kg.NodeID
	for _, l := range labels {
		key := kg.Fold(l)
		if seen[key] {
			continue
		}
		sources := g.Lookup(key)
		if len(sources) == 0 {
			continue
		}
		seen[key] = true
		groups = append(groups, sources)
	}
	m := len(groups)
	if m == 0 || m > MaxGSTLabels {
		return 0, false
	}
	n := g.NumNodes()
	full := uint32(1)<<m - 1
	// dp[S][v] = min weight of a tree containing v and touching every label
	// group in S.
	dp := make([][]float64, full+1)
	for s := range dp {
		dp[s] = make([]float64, n)
		for v := range dp[s] {
			dp[s][v] = inf
		}
	}
	for i, sources := range groups {
		s := uint32(1) << i
		for _, v := range sources {
			dp[s][v] = 0
		}
		dijkstraRelax(g, dp[s])
	}
	for s := uint32(1); s <= full; s++ {
		if s&(s-1) == 0 {
			continue // singletons already done
		}
		row := dp[s]
		// Merge: split S into two non-empty disjoint subsets at v.
		for sub := (s - 1) & s; sub > 0; sub = (sub - 1) & s {
			if sub > s^sub {
				continue // each split once
			}
			a, b := dp[sub], dp[s^sub]
			for v := 0; v < n; v++ {
				if c := a[v] + b[v]; c < row[v] {
					row[v] = c
				}
			}
		}
		// Grow: relax along edges (a Dijkstra pass seeded with row).
		dijkstraRelax(g, row)
	}
	best := inf
	for v := 0; v < n; v++ {
		if dp[full][v] < best {
			best = dp[full][v]
		}
	}
	if best == inf {
		return 0, false
	}
	return best, true
}

// MaxGSTLabels bounds the exponential DP of ExactGST.
const MaxGSTLabels = 10

// dijkstraRelax runs a multi-source Dijkstra that lowers row[v] to
// min(row[v], min_u row[u] + d(u,v)) for all v.
func dijkstraRelax(g *kg.Graph, row []float64) {
	var pq frontier
	for v, d := range row {
		if d < inf {
			heap.Push(&pq, item{d, 0, kg.NodeID(v)})
		}
	}
	for pq.Len() > 0 {
		it := heap.Pop(&pq).(item)
		if it.d > row[it.v] {
			continue
		}
		for _, a := range g.Neighbors(it.v) {
			nd := it.d + a.Weight
			if nd < row[a.To] {
				row[a.To] = nd
				heap.Push(&pq, item{nd, 0, a.To})
			}
		}
	}
}

// TreeWeight returns the total weight of a subgraph's arcs in g, the
// quantity GST minimizes. For ModelTree results this is the weight of the
// approximate Steiner tree; for ModelLCAG it additionally prices the
// coverage (all preserved shortest paths).
func TreeWeight(g *kg.Graph, sg *Subgraph) float64 {
	total := 0.0
	for _, arc := range sg.Arcs {
		total += arcWeight(g, arc)
	}
	return total
}

// arcWeight looks up the weight of the KG edge an arc traverses.
func arcWeight(g *kg.Graph, arc PathArc) float64 {
	for _, a := range g.Neighbors(arc.From) {
		if a.To == arc.To && a.Rel == arc.Rel && a.Reverse == arc.Reverse {
			return a.Weight
		}
	}
	return 0
}
