package search

import (
	"context"
	"math"
	"math/rand"
	"os"
	"testing"

	"newslink/internal/index"
)

// randomCorpus builds an index large enough that frequent terms span many
// postings blocks, with a mix of integral and fractional term weights.
func randomCorpus(rng *rand.Rand, nDocs int, vocab []string) *index.Index {
	b := index.NewBuilder()
	for d := 0; d < nDocs; d++ {
		n := 1 + rng.Intn(8)
		counts := make(map[string]float32, n)
		for i := 0; i < n; i++ {
			t := vocab[rng.Intn(len(vocab))]
			if rng.Intn(4) == 0 {
				counts[t] += float32(rng.Intn(8)) / 4.0 // fractional weights (BON path)
			} else {
				counts[t]++
			}
		}
		b.AddWeighted(counts)
	}
	return b.Build()
}

// TestBlockMaxAgreesWithExact: the block-pruned evaluation must return
// exactly the same ranking and scores as exhaustive accumulation and as
// whole-list max-score, on random corpora sized to span many blocks, for
// both the sequential and the sharded paths.
func TestBlockMaxAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	vocab := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	ctx := context.Background()
	for trial := 0; trial < 25; trial++ {
		nDocs := 50 + rng.Intn(2000)
		idx := randomCorpus(rng, nDocs, vocab)
		s := NewBM25(idx)
		nq := 1 + rng.Intn(4)
		q := Query{}
		for i := 0; i < nq; i++ {
			q[vocab[rng.Intn(len(vocab))]] = 0.5 + rng.Float64()
		}
		k := 1 + rng.Intn(12)
		exact := TopK(idx, s, q, k)
		maxscore := TopKMaxScore(idx, s, q, k)
		blockmax, bmStats, err := TopKBlockMaxStats(ctx, idx, s, q, k)
		if err != nil {
			t.Fatalf("trial %d: block-max error: %v", trial, err)
		}
		shards := 2 + rng.Intn(4)
		sharded, _, err := TopKBlockMaxShardedStats(ctx, idx, s, q, k, shards)
		if err != nil {
			t.Fatalf("trial %d: sharded block-max error: %v", trial, err)
		}
		if len(blockmax) != len(exact) || len(sharded) != len(exact) {
			t.Fatalf("trial %d: lengths exact=%d blockmax=%d sharded=%d",
				trial, len(exact), len(blockmax), len(sharded))
		}
		for i := range exact {
			if blockmax[i].Doc != exact[i].Doc || math.Abs(blockmax[i].Score-exact[i].Score) > 1e-9 {
				t.Fatalf("trial %d rank %d: exact %v blockmax %v (query %v k=%d)",
					trial, i, exact[i], blockmax[i], q, k)
			}
			// Against max-score the sums run in the same term order over the
			// same documents, so equality is bitwise.
			if blockmax[i] != maxscore[i] {
				t.Fatalf("trial %d rank %d: maxscore %v blockmax %v", trial, i, maxscore[i], blockmax[i])
			}
			if sharded[i] != maxscore[i] {
				t.Fatalf("trial %d rank %d: maxscore %v sharded blockmax %v", trial, i, maxscore[i], sharded[i])
			}
		}
		if bmStats.Scored+bmStats.Skipped > bmStats.Postings {
			t.Fatalf("trial %d: scored %d + skipped %d > postings %d",
				trial, bmStats.Scored, bmStats.Skipped, bmStats.Postings)
		}
	}
}

// TestBlockMaxAgreesOnDisk runs the same equivalence through a DiskIndex, so
// the disk cursors' block-granular ReadAt path is exercised too.
func TestBlockMaxAgreesOnDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	vocab := []string{"a", "b", "c", "d", "e"}
	idx := randomCorpus(rng, 3000, vocab)
	path := t.TempDir() + "/idx.bin"
	if err := writeIndexFile(idx, path); err != nil {
		t.Fatal(err)
	}
	d, err := index.OpenDiskIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	ctx := context.Background()
	for trial := 0; trial < 10; trial++ {
		q := Query{}
		for i := 0; i <= rng.Intn(3); i++ {
			q[vocab[rng.Intn(len(vocab))]] = 1
		}
		k := 1 + rng.Intn(10)
		exact := TopK(idx, NewBM25(idx), q, k)
		got, _, err := TopKBlockMaxStats(ctx, d, NewBM25(d), q, k)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sharded, _, err := TopKBlockMaxShardedStats(ctx, d, NewBM25(d), q, k, 3)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != len(exact) || len(sharded) != len(exact) {
			t.Fatalf("trial %d: lengths exact=%d blockmax=%d sharded=%d", trial, len(exact), len(got), len(sharded))
		}
		for i := range exact {
			// TopK folds terms in map order, so scores may differ in ULPs.
			if got[i].Doc != exact[i].Doc || math.Abs(got[i].Score-exact[i].Score) > 1e-9 {
				t.Fatalf("trial %d rank %d: exact %v blockmax %v", trial, i, exact[i], got[i])
			}
			if sharded[i] != got[i] {
				t.Fatalf("trial %d rank %d: blockmax %v sharded %v", trial, i, got[i], sharded[i])
			}
		}
	}
}

// writeIndexFile serializes idx to path.
func writeIndexFile(idx *index.Index, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := idx.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// TestBlockMaxPrunesBlocks: the realistic skewed query shape — a rare,
// high-IDF term plus a frequent, low-IDF one — must skip most of the
// frequent term's blocks: after the rare term, the accumulator holds only
// its few documents, and frequent-term blocks containing none of them fall
// below the threshold. The whole-list max-score path scans every posting of
// the frequent term, so Scored must drop measurably too.
func TestBlockMaxPrunesBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := index.NewBuilder()
	for d := 0; d < 20000; d++ {
		terms := []string{"common"}
		if rng.Intn(400) == 0 {
			terms = append(terms, "rare")
		}
		if rng.Intn(2) == 0 {
			terms = append(terms, "filler")
		}
		b.Add(terms)
	}
	idx := b.Build()
	sc := NewBM25(idx)
	q := Query{"rare": 1, "common": 1}
	_, bmStats, err := TopKBlockMaxStats(context.Background(), idx, sc, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	if bmStats.BlocksSkipped == 0 {
		t.Fatalf("expected pruned blocks, stats %+v", bmStats)
	}
	if bmStats.BlocksDecoded == 0 || bmStats.Scored == 0 {
		t.Fatalf("expected decoded blocks and scored postings, stats %+v", bmStats)
	}
	_, msStats, err := TopKMaxScoreStats(context.Background(), idx, sc, q, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Max-score inspects every posting (Scored+Skipped == Postings); the
	// block path must leave a large share of postings entirely undecoded.
	if msStats.Scored+msStats.Skipped != msStats.Postings {
		t.Fatalf("max-score inspected %d+%d of %d postings", msStats.Scored, msStats.Skipped, msStats.Postings)
	}
	bmTouched := bmStats.Scored + bmStats.Skipped
	if bmTouched*2 > bmStats.Postings {
		t.Fatalf("block-max decoded %d of %d postings — expected < half, stats %+v",
			bmTouched, bmStats.Postings, bmStats)
	}
}

func TestBlockMaxEdgeCases(t *testing.T) {
	idx := buildIdx("a b", "b c")
	sc := NewBM25(idx)
	if TopKBlockMax(idx, sc, NewQuery(nil), 5) != nil {
		t.Fatal("empty query should return nil")
	}
	if TopKBlockMax(idx, sc, NewQuery([]string{"a"}), 0) != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := TopKBlockMax(idx, sc, NewQuery([]string{"zzz"}), 5); got != nil {
		t.Fatalf("unknown term hits = %v", got)
	}
	if got := TopKBlockMax(idx, sc, NewQuery([]string{"a", "zzz"}), 100); len(got) != 1 {
		t.Fatalf("k > matches: %v", got)
	}
}

// TestBlockMaxCancellation: a canceled context aborts the traversal.
func TestBlockMaxCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	idx := randomCorpus(rng, 5000, []string{"x", "y"})
	sc := NewBM25(idx)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TopKBlockMaxContext(ctx, idx, sc, Query{"x": 1, "y": 1}, 10); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := TopKBlockMaxSharded(ctx, idx, sc, Query{"x": 1, "y": 1}, 10, 4); err != context.Canceled {
		t.Fatalf("sharded err = %v, want context.Canceled", err)
	}
}
