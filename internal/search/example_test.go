package search_test

import (
	"fmt"
	"strings"

	"newslink/internal/index"
	"newslink/internal/search"
)

// Example indexes three documents and retrieves with BM25 — the NS
// component's scoring path.
func Example() {
	b := index.NewBuilder()
	for _, doc := range []string{
		"taliban attack lahore bomb",
		"cricket final lahore stadium",
		"election results announced",
	} {
		b.Add(strings.Fields(doc))
	}
	idx := b.Build()
	hits := search.TopK(idx, search.NewBM25(idx), search.NewQuery([]string{"lahore", "bomb"}), 2)
	for _, h := range hits {
		fmt.Printf("doc %d\n", h.Doc)
	}
	// Output:
	// doc 0
	// doc 1
}

// ExampleFuse demonstrates Equation 3: fusing a text ranking with a
// subgraph-embedding ranking at β=0.5.
func ExampleFuse() {
	bow := []search.Hit{{Doc: 0, Score: 10}, {Doc: 1, Score: 8}}
	bon := []search.Hit{{Doc: 1, Score: 3}, {Doc: 2, Score: 3}}
	for _, h := range search.Fuse(bow, bon, 0.5, 3) {
		fmt.Printf("doc %d score %.2f\n", h.Doc, h.Score)
	}
	// Output:
	// doc 1 score 0.90
	// doc 0 score 0.50
	// doc 2 score 0.50
}
