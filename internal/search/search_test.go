package search

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"newslink/internal/index"
)

func buildIdx(docs ...string) *index.Index {
	b := index.NewBuilder()
	for _, d := range docs {
		b.Add(strings.Fields(d))
	}
	return b.Build()
}

func TestBM25Ranking(t *testing.T) {
	idx := buildIdx(
		"taliban attack lahore",
		"taliban taliban taliban pakistan",
		"weather sunny warm",
		"taliban lahore pakistan swat",
	)
	s := NewBM25(idx)
	hits := TopK(idx, s, NewQuery([]string{"taliban", "lahore"}), 3)
	if len(hits) != 3 {
		t.Fatalf("hits = %v", hits)
	}
	// Doc 0 and 3 match both terms and must outrank doc 1 (one term).
	if hits[0].Doc != 0 && hits[0].Doc != 3 {
		t.Fatalf("top hit = %v", hits[0])
	}
	if hits[2].Doc != 1 {
		t.Fatalf("third hit = %v, want doc 1", hits[2])
	}
	for i := 1; i < len(hits); i++ {
		if hits[i].Score > hits[i-1].Score {
			t.Fatal("hits not sorted")
		}
	}
	// The non-matching document never appears.
	for _, h := range hits {
		if h.Doc == 2 {
			t.Fatal("doc 2 should not match")
		}
	}
}

func TestBM25Properties(t *testing.T) {
	idx := buildIdx("a b c", "a a b", "c c c c")
	s := NewBM25(idx)
	if w := s.Weight(0, 1, 3); w != 0 {
		t.Fatalf("zero tf weight = %v", w)
	}
	if w := s.Weight(2, 1, 3); w <= s.Weight(1, 1, 3) {
		t.Fatal("BM25 not increasing in tf")
	}
	if s.Weight(1, 1, 3) <= s.Weight(1, 3, 3) {
		t.Fatal("BM25 idf not decreasing in df")
	}
	if s.Weight(1, 1, 10) >= s.Weight(1, 1, 2) {
		t.Fatal("BM25 not penalizing long docs")
	}
	// MaxWeight is a true upper bound.
	for tf := 1.0; tf <= 4; tf++ {
		for dl := 1.0; dl <= 8; dl++ {
			if s.Weight(tf, 2, dl) > s.MaxWeight(4, 2)+1e-12 {
				t.Fatalf("MaxWeight violated at tf=%v dl=%v", tf, dl)
			}
		}
	}
}

func TestTFIDFProperties(t *testing.T) {
	idx := buildIdx("a b", "a c", "d d")
	s := NewTFIDF(idx)
	if s.Weight(1, 0, 2) != 0 {
		t.Fatal("df=0 should score 0")
	}
	if s.Weight(2, 1, 4) <= s.Weight(1, 1, 4) {
		t.Fatal("TFIDF not increasing in tf")
	}
	if s.Weight(1, 1, 2) <= s.Weight(1, 2, 2) {
		t.Fatal("TFIDF idf not decreasing in df")
	}
	if s.Weight(1, 1, 1) > s.MaxWeight(1, 1)+1e-12 {
		t.Fatal("MaxWeight not an upper bound")
	}
}

// TestMaxScoreAgreesWithExact: the pruned evaluation must return exactly the
// same ranking as exhaustive accumulation on random corpora.
func TestMaxScoreAgreesWithExact(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vocab := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for trial := 0; trial < 30; trial++ {
		b := index.NewBuilder()
		nDocs := 5 + rng.Intn(60)
		for d := 0; d < nDocs; d++ {
			n := 1 + rng.Intn(10)
			var terms []string
			for i := 0; i < n; i++ {
				terms = append(terms, vocab[rng.Intn(len(vocab))])
			}
			b.Add(terms)
		}
		idx := b.Build()
		s := NewBM25(idx)
		nq := 1 + rng.Intn(4)
		var qterms []string
		for i := 0; i < nq; i++ {
			qterms = append(qterms, vocab[rng.Intn(len(vocab))])
		}
		k := 1 + rng.Intn(10)
		exact := TopK(idx, s, NewQuery(qterms), k)
		pruned := TopKMaxScore(idx, s, NewQuery(qterms), k)
		if len(exact) != len(pruned) {
			t.Fatalf("trial %d: lengths %d vs %d", trial, len(exact), len(pruned))
		}
		for i := range exact {
			if exact[i].Doc != pruned[i].Doc || math.Abs(exact[i].Score-pruned[i].Score) > 1e-9 {
				t.Fatalf("trial %d rank %d: exact %v pruned %v (query %v k=%d)",
					trial, i, exact[i], pruned[i], qterms, k)
			}
		}
	}
}

func TestTopKEdgeCases(t *testing.T) {
	idx := buildIdx("a b", "b c")
	s := NewBM25(idx)
	if TopK(idx, s, NewQuery(nil), 5) != nil {
		t.Fatal("empty query should return nil")
	}
	if TopK(idx, s, NewQuery([]string{"a"}), 0) != nil {
		t.Fatal("k=0 should return nil")
	}
	if got := TopK(idx, s, NewQuery([]string{"zzz"}), 5); len(got) != 0 {
		t.Fatalf("unknown term hits = %v", got)
	}
	if got := TopK(idx, s, NewQuery([]string{"a"}), 100); len(got) != 1 {
		t.Fatalf("k > matches: %v", got)
	}
	if got := TopKMaxScore(idx, s, NewQuery([]string{"zzz"}), 5); got != nil {
		t.Fatalf("maxscore unknown term: %v", got)
	}
}

func TestFuseEquation3(t *testing.T) {
	bow := []Hit{{Doc: 0, Score: 10}, {Doc: 1, Score: 5}}
	bon := []Hit{{Doc: 1, Score: 2}, {Doc: 2, Score: 1}}
	got := Fuse(bow, bon, 0.5, 10)
	// normalized: bow {0:1, 1:0.5}, bon {1:1, 2:0.5}
	want := []Hit{{Doc: 1, Score: 0.75}, {Doc: 0, Score: 0.5}, {Doc: 2, Score: 0.25}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Fuse = %v, want %v", got, want)
	}
}

func TestFuseBetaExtremes(t *testing.T) {
	bow := []Hit{{Doc: 0, Score: 10}, {Doc: 1, Score: 5}}
	bon := []Hit{{Doc: 2, Score: 4}}
	got0 := Fuse(bow, bon, 0, 10)
	if len(got0) != 2 || got0[0].Doc != 0 || got0[0].Score != 1 {
		t.Fatalf("beta=0: %v", got0)
	}
	got1 := Fuse(bow, bon, 1, 10)
	if len(got1) != 1 || got1[0].Doc != 2 {
		t.Fatalf("beta=1: %v", got1)
	}
}

// Property: for any beta in (0,1), the ranking order of Fuse equals the
// order of (1-beta)*nbow + beta*nbon computed by hand.
func TestFuseProperty(t *testing.T) {
	f := func(scores [6]uint8, betaRaw uint8) bool {
		beta := float64(betaRaw%99+1) / 100
		bow := []Hit{{0, float64(scores[0])}, {1, float64(scores[1])}, {2, float64(scores[2])}}
		bon := []Hit{{0, float64(scores[3])}, {1, float64(scores[4])}, {2, float64(scores[5])}}
		sortHits(bow)
		sortHits(bon)
		got := Fuse(bow, bon, beta, 3)
		maxBow := math.Max(math.Max(bow[0].Score, bow[1].Score), bow[2].Score)
		maxBon := math.Max(math.Max(bon[0].Score, bon[1].Score), bon[2].Score)
		expect := map[index.DocID]float64{}
		for _, h := range bow {
			s := h.Score
			if maxBow > 0 {
				s /= maxBow
			}
			expect[h.Doc] += (1 - beta) * s
		}
		for _, h := range bon {
			s := h.Score
			if maxBon > 0 {
				s /= maxBon
			}
			expect[h.Doc] += beta * s
		}
		for _, h := range got {
			if math.Abs(expect[h.Doc]-h.Score) > 1e-9 {
				return false
			}
		}
		for i := 1; i < len(got); i++ {
			if got[i].Score > got[i-1].Score {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFuseClip(t *testing.T) {
	bow := []Hit{{0, 3}, {1, 2}, {2, 1}}
	if got := Fuse(bow, nil, 0.5, 2); len(got) != 2 {
		t.Fatalf("clip failed: %v", got)
	}
}

// TestTopKMatchesNaiveReference checks the whole retrieval stack against a
// from-first-principles reference scorer on randomized corpora.
func TestTopKMatchesNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	vocab := []string{"a", "b", "c", "d", "e", "f"}
	for trial := 0; trial < 25; trial++ {
		docs := make([][]string, 3+rng.Intn(40))
		for d := range docs {
			for i := 0; i <= rng.Intn(8); i++ {
				docs[d] = append(docs[d], vocab[rng.Intn(len(vocab))])
			}
		}
		b := index.NewBuilder()
		for _, d := range docs {
			b.Add(d)
		}
		idx := b.Build()
		s := NewBM25(idx)
		var qterms []string
		for i := 0; i <= rng.Intn(3); i++ {
			qterms = append(qterms, vocab[rng.Intn(len(vocab))])
		}
		q := NewQuery(qterms)
		// Naive reference: score every document directly from its terms.
		type ds struct {
			doc   index.DocID
			score float64
		}
		var ref []ds
		for d := range docs {
			tf := map[string]float64{}
			for _, term := range docs[d] {
				tf[term]++
			}
			score := 0.0
			for term, qw := range q {
				if tf[term] > 0 {
					score += qw * s.Weight(tf[term], idx.DF(term), float64(len(docs[d])))
				}
			}
			if score > 0 {
				ref = append(ref, ds{index.DocID(d), score})
			}
		}
		sort.Slice(ref, func(i, j int) bool {
			if ref[i].score != ref[j].score {
				return ref[i].score > ref[j].score
			}
			return ref[i].doc < ref[j].doc
		})
		k := 1 + rng.Intn(10)
		got := TopK(idx, s, q, k)
		want := ref
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d hits, want %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Doc != want[i].doc || math.Abs(got[i].Score-want[i].score) > 1e-9 {
				t.Fatalf("trial %d rank %d: %v vs reference %v", trial, i, got[i], want[i])
			}
		}
	}
}
