// Package search implements the query-processing half of the NS component
// (Section VI): VSM scoring over an inverted index (BM25 as in the paper's
// Lucene setup, plus classic TF-IDF cosine), exact and pruned top-k
// retrieval, and the BOW/BON score fusion of Equation 3.
package search

import (
	"math"

	"newslink/internal/index"
)

// Scorer computes a per-term, per-document partial score. Implementations
// must be pure functions of their arguments so evaluation strategies can
// reorder term processing freely.
type Scorer interface {
	// Weight returns the contribution of one matched term occurrence.
	// tf is the term frequency in the document, df the term's document
	// frequency, docLen the document length.
	Weight(tf float64, df int, docLen float64) float64
	// MaxWeight returns an upper bound of Weight over all documents in the
	// postings list, used by max-score pruning.
	MaxWeight(maxTF float64, df int) float64
}

// BM25 is the probabilistic relevance scorer used by the paper's Lucene
// baseline and by NewsLink's NS component (Robertson & Zaragoza; Lucene
// defaults k1=1.2, b=0.75).
type BM25 struct {
	K1, B  float64
	N      int     // corpus size
	AvgLen float64 // average document length
}

// NewBM25 returns a BM25 scorer with Lucene's default parameters for the
// given index.
func NewBM25(idx index.Source) BM25 {
	return BM25{K1: 1.2, B: 0.75, N: idx.NumDocs(), AvgLen: idx.AvgDocLen()}
}

// idf is Lucene's BM25 idf: ln(1 + (N-df+0.5)/(df+0.5)), always positive.
func (s BM25) idf(df int) float64 {
	return math.Log(1 + (float64(s.N)-float64(df)+0.5)/(float64(df)+0.5))
}

// Weight implements Scorer.
func (s BM25) Weight(tf float64, df int, docLen float64) float64 {
	if tf <= 0 {
		return 0
	}
	norm := s.K1 * (1 - s.B + s.B*docLen/s.AvgLen)
	return s.idf(df) * tf * (s.K1 + 1) / (tf + norm)
}

// MaxWeight implements Scorer: tf*(k1+1)/(tf+k1*(1-b)) is increasing in tf
// and maximal at minimal length norm.
func (s BM25) MaxWeight(maxTF float64, df int) float64 {
	norm := s.K1 * (1 - s.B) // docLen -> 0 lower-bounds the length norm
	return s.idf(df) * maxTF * (s.K1 + 1) / (maxTF + norm)
}

// TFIDF is the classic log-TF/IDF weighting with document-length
// normalization by sqrt(len) (Lucene classic similarity flavour).
type TFIDF struct {
	N int
}

// NewTFIDF returns a TFIDF scorer for the given index.
func NewTFIDF(idx index.Source) TFIDF { return TFIDF{N: idx.NumDocs()} }

func (s TFIDF) idf(df int) float64 {
	if df == 0 {
		return 0
	}
	return 1 + math.Log(float64(s.N)/float64(df))
}

// Weight implements Scorer.
func (s TFIDF) Weight(tf float64, df int, docLen float64) float64 {
	if tf <= 0 || docLen <= 0 {
		return 0
	}
	return (1 + math.Log(tf)) * s.idf(df) / math.Sqrt(docLen)
}

// MaxWeight implements Scorer.
func (s TFIDF) MaxWeight(maxTF float64, df int) float64 {
	return (1 + math.Log(math.Max(maxTF, 1))) * s.idf(df) // docLen>=tf>=1
}
