package search

import (
	"math/bits"
	"sync"

	"newslink/internal/index"
)

// Pooled per-request retrieval scratch.
//
// One fused query at 100k documents used to allocate ~1.6 MB before this
// file existed: every blockMaxAccumulate call built a fresh dense
// accumulator (8 bytes per document in its range) plus two bitmaps, and
// every per-term threshold refresh built a fresh top-k heap. None of that
// state outlives the request, so it is recycled through a sync.Pool
// instead: acquire hands out an accumulator whose arrays are guaranteed
// all-zero, and release scrubs exactly the words the request dirtied
// before returning it — the dirty-word analogue of internal/core/state.go's
// epoch reset, chosen here because the seen bitmap already records every
// touched document, making the scrub O(touched) with no per-page epochs.
//
// Safety argument for reuse (tested under -race by pooled-reuse
// concurrency tests): a pooled accumulator is handed to exactly one
// goroutine between Get and Put; the release scrub zeroes score[i],
// seen-word and viable-word for every bit set in seen (viable is a subset
// of seen — admit sets both, sweep only clears viable); and growth
// allocates fresh zeroed arrays. By induction the entire capacity of every
// pooled array is zero at Put time, so a later acquire that reslices
// larger within capacity still sees zeros. No score can leak between
// requests.

// bmAccPool recycles dense accumulators across requests. Entries arrive
// fully scrubbed (see bmAcc.release); GC may drop them at any time, which
// only costs a re-allocation.
var bmAccPool = sync.Pool{New: func() any { return new(bmAcc) }}

// acquireBMAcc returns a pooled accumulator covering [lo, hi), with score,
// seen and viable all-zero. Release it with bmAcc.release when the request
// is done with it (after selectTop has copied the winners out).
func acquireBMAcc(lo, hi index.DocID) *bmAcc {
	span := int(hi - lo)
	words := (span + 63) / 64
	a := bmAccPool.Get().(*bmAcc)
	a.lo = lo
	a.n = 0
	if cap(a.score) < span {
		a.score = make([]float64, span)
	} else {
		a.score = a.score[:span]
	}
	if cap(a.seen) < words {
		a.seen = make([]uint64, words)
		a.viable = make([]uint64, words)
	} else {
		a.seen = a.seen[:words]
		a.viable = a.viable[:words]
	}
	return a
}

// release scrubs the accumulator's dirtied state and returns it to the
// pool. Cost is O(words + touched documents): clean words are skipped with
// one load each.
func (a *bmAcc) release() {
	for w, word := range a.seen {
		if word == 0 {
			continue
		}
		base := uint32(w) << 6
		for word != 0 {
			b := word & (-word)
			word &^= b
			a.score[base|uint32(bits.TrailingZeros64(b))] = 0
		}
		a.seen[w] = 0
		a.viable[w] = 0
	}
	a.n = 0
	bmAccPool.Put(a)
}

// mapAccPool recycles the map accumulators of the exact TAAT paths
// (TopK, maxScoreAccumulate). Maps are cleared on release, so reuse keeps
// the buckets warm without leaking scores between requests.
var mapAccPool = sync.Pool{New: func() any { return make(map[index.DocID]float64) }}

func acquireMapAcc() map[index.DocID]float64 { return mapAccPool.Get().(map[index.DocID]float64) }

func releaseMapAcc(m map[index.DocID]float64) {
	clear(m)
	mapAccPool.Put(m)
}

// seenSetPool recycles the seen sets of the threshold-algorithm fusion
// path (ThresholdTopK).
var seenSetPool = sync.Pool{New: func() any { return make(map[index.DocID]bool) }}

func acquireSeenSet() map[index.DocID]bool { return seenSetPool.Get().(map[index.DocID]bool) }

func releaseSeenSet(m map[index.DocID]bool) {
	clear(m)
	seenSetPool.Put(m)
}
