package search

import (
	"context"
	"sort"
	"sync"

	"newslink/internal/index"
)

// TopKMaxScoreSharded evaluates the query like TopKMaxScore but shards the
// postings traversal across up to `shards` workers. The document space is
// split into contiguous DocID ranges; every worker runs the max-score loop
// over its range with a private accumulator and heap, and the per-shard
// top-k candidates are merged into the global top k. Because a document's
// score is accumulated by exactly one shard — in the same term order as the
// sequential path — and pruning only ever skips documents that cannot enter
// their shard's (hence the global) top k, the result is identical to
// TopKMaxScore, floating point and tie-breaking included (property-tested).
//
// Postings are fetched once, sequentially, before fan-out, so index.Source
// implementations are only required to be safe for concurrent DocLen calls
// (all in-tree sources are fully immutable after construction).
func TopKMaxScoreSharded(ctx context.Context, idx index.Source, s Scorer, q Query, k, shards int) ([]Hit, error) {
	hits, _, err := TopKMaxScoreShardedStats(ctx, idx, s, q, k, shards)
	return hits, err
}

// TopKMaxScoreShardedStats is TopKMaxScoreSharded reporting retrieval
// statistics aggregated across shards; Stats.Shards is the fan-out actually
// used (1 when the traversal fell back to the sequential path).
func TopKMaxScoreShardedStats(ctx context.Context, idx index.Source, s Scorer, q Query, k, shards int) ([]Hit, RetrievalStats, error) {
	numDocs := idx.NumDocs()
	if shards > numDocs {
		shards = numDocs
	}
	if shards <= 1 {
		return TopKMaxScoreStats(ctx, idx, s, q, k)
	}
	var st RetrievalStats
	st.Shards = shards
	if k <= 0 || len(q) == 0 {
		return nil, st, ctx.Err()
	}
	terms := prepareTerms(idx, s, q)
	if terms == nil {
		return nil, st, ctx.Err()
	}
	st.Terms = len(terms)
	for _, t := range terms {
		st.Postings += len(t.posts)
	}
	suffixBound := suffixBounds(terms)

	perShard := make([][]Hit, shards)
	perShardStats := make([]RetrievalStats, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		lo := index.DocID(w * numDocs / shards)
		hi := index.DocID((w + 1) * numDocs / shards)
		wg.Add(1)
		go func(w int, lo, hi index.DocID) {
			defer wg.Done()
			perShard[w], perShardStats[w], errs[w] = shardTopK(ctx, idx, s, terms, suffixBound, k, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, st, err
		}
	}
	for _, shardST := range perShardStats {
		st.add(shardST)
	}
	// Merge: shards own disjoint documents, so the global top k is the k
	// best of the union of per-shard top k's, under the same comparator.
	// The heap can hold at most the hits the shards produced, so clamp the
	// capacity in case an oversized k reaches this point.
	total := 0
	for _, hits := range perShard {
		total += len(hits)
	}
	h := make(hitHeap, 0, min(k, total))
	for _, hits := range perShard {
		for _, hit := range hits {
			pushTop(&h, hit, k)
		}
	}
	return drainHeap(h), st, nil
}

// shardTopK runs the max-score accumulation restricted to documents in
// [lo, hi), returning the shard-local top k and scan statistics.
func shardTopK(ctx context.Context, idx index.Source, s Scorer, terms []termInfo, suffixBound []float64, k int, lo, hi index.DocID) ([]Hit, RetrievalStats, error) {
	return maxScoreAccumulate(ctx, idx, s, terms, suffixBound, k, &docRange{Lo: lo, Hi: hi})
}

// postingsRange returns the sub-slice of a DocID-sorted postings list whose
// documents fall in [lo, hi).
func postingsRange(posts []index.Posting, lo, hi index.DocID) []index.Posting {
	start := sort.Search(len(posts), func(i int) bool { return posts[i].Doc >= lo })
	end := start + sort.Search(len(posts)-start, func(i int) bool { return posts[start+i].Doc >= hi })
	return posts[start:end]
}
