package search

import (
	"math"
	"math/rand"
	"testing"

	"newslink/internal/index"
)

func randRanking(rng *rand.Rand, nDocs, n int) []Hit {
	perm := rng.Perm(nDocs)[:n]
	hits := make([]Hit, n)
	for i, d := range perm {
		hits[i] = Hit{Doc: index.DocID(d), Score: rng.Float64() * 10}
	}
	sortHits(hits)
	return hits
}

// TestFuseTAMatchesFuse: the threshold algorithm must return exactly the
// ranking Fuse computes by exhaustive accumulation.
func TestFuseTAMatchesFuse(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 200; trial++ {
		nDocs := 5 + rng.Intn(50)
		bow := randRanking(rng, nDocs, 1+rng.Intn(nDocs))
		bon := randRanking(rng, nDocs, 1+rng.Intn(nDocs))
		beta := rng.Float64()
		k := 1 + rng.Intn(nDocs)
		want := Fuse(bow, bon, beta, k)
		got, _ := FuseTA(bow, bon, beta, k)
		if len(got) != len(want) {
			t.Fatalf("trial %d: lengths %d vs %d", trial, len(got), len(want))
		}
		for i := range want {
			if got[i].Doc != want[i].Doc || math.Abs(got[i].Score-want[i].Score) > 1e-12 {
				t.Fatalf("trial %d rank %d: TA %v, Fuse %v (beta=%.3f k=%d)",
					trial, i, got[i], want[i], beta, k)
			}
		}
	}
}

// TestThresholdEarlyTermination: when one document dominates both lists,
// TA must stop after a handful of sorted accesses.
func TestThresholdEarlyTermination(t *testing.T) {
	var bow, bon []Hit
	bow = append(bow, Hit{Doc: 0, Score: 1.0})
	bon = append(bon, Hit{Doc: 0, Score: 1.0})
	for i := 1; i < 1000; i++ {
		bow = append(bow, Hit{Doc: index.DocID(i), Score: 0.1 / float64(i)})
		bon = append(bon, Hit{Doc: index.DocID(i), Score: 0.1 / float64(i)})
	}
	got, accesses := FuseTA(bow, bon, 0.5, 1)
	if len(got) != 1 || got[0].Doc != 0 {
		t.Fatalf("TA top = %v", got)
	}
	if accesses >= 100 {
		t.Fatalf("no early termination: %d sorted accesses for 2000 entries", accesses)
	}
}

func TestThresholdEdgeCases(t *testing.T) {
	bow := []Hit{{Doc: 0, Score: 2}, {Doc: 1, Score: 1}}
	if got, _ := FuseTA(bow, nil, 0.5, 2); len(got) != 2 {
		t.Fatalf("empty bon: %v", got)
	}
	if got, _ := FuseTA(nil, nil, 0.5, 3); len(got) != 0 {
		t.Fatalf("both empty: %v", got)
	}
	if got, _ := FuseTA(bow, nil, 0.5, 0); got != nil {
		t.Fatalf("k=0: %v", got)
	}
	// Beta extremes bypass TA.
	if got, _ := FuseTA(bow, nil, 0, 1); len(got) != 1 || got[0].Doc != 0 {
		t.Fatalf("beta=0: %v", got)
	}
	bon := []Hit{{Doc: 7, Score: 3}}
	if got, _ := FuseTA(bow, bon, 1, 1); len(got) != 1 || got[0].Doc != 7 {
		t.Fatalf("beta=1: %v", got)
	}
}

func TestSliceList(t *testing.T) {
	l := NewSliceList([]Hit{{Doc: 3, Score: 5}, {Doc: 1, Score: 2}})
	if s := l.Score(3); s != 5 {
		t.Fatalf("Score(3) = %v", s)
	}
	if s := l.Score(99); s != 0 {
		t.Fatalf("Score(absent) = %v", s)
	}
	h, ok := l.Next()
	if !ok || h.Doc != 3 {
		t.Fatalf("Next = %v %v", h, ok)
	}
	l.Next()
	if _, ok := l.Next(); ok {
		t.Fatal("Next past end should report !ok")
	}
}
