package search

import (
	"context"
	"sort"

	"newslink/internal/index"
)

// cancelCheckEvery is how many postings are scanned between cooperative
// ctx.Err() polls; small enough for prompt cancellation, large enough that
// the atomic load in Err is invisible in profiles.
const cancelCheckEvery = 4096

// Hit is one retrieved document with its score.
type Hit struct {
	Doc   index.DocID
	Score float64
}

// Query is a weighted bag of terms. Weights default to the term frequency
// in the query text.
type Query map[string]float64

// NewQuery builds a Query from analyzed terms.
func NewQuery(terms []string) Query {
	q := make(Query, len(terms))
	for _, t := range terms {
		q[t]++
	}
	return q
}

// TopK evaluates the query with exact term-at-a-time accumulation and
// returns the k best documents ordered by descending score (ties by
// ascending DocID for determinism).
func TopK(idx index.Source, s Scorer, q Query, k int) []Hit {
	if k <= 0 || len(q) == 0 {
		return nil
	}
	live := liveMask(idx)
	acc := acquireMapAcc()
	defer releaseMapAcc(acc)
	for term, qw := range q {
		df := idx.DF(term)
		if df == 0 {
			continue
		}
		for _, p := range idx.Postings(term) {
			if live != nil && !live.Live(p.Doc) {
				continue
			}
			acc[p.Doc] += qw * s.Weight(float64(p.TF), df, idx.DocLen(p.Doc))
		}
	}
	return selectTop(acc, k)
}

// termInfo is one query term prepared for max-score evaluation: its
// postings, document frequency and score upper bound.
type termInfo struct {
	term  string
	qw    float64
	df    int
	bound float64
	posts []index.Posting
}

// prepareTerms fetches postings and score bounds for every query term and
// orders them by decreasing bound (ties by term for determinism). Returns
// nil when no term matches.
func prepareTerms(idx index.Source, s Scorer, q Query) []termInfo {
	terms := make([]termInfo, 0, len(q))
	for term, qw := range q {
		posts := idx.Postings(term)
		if len(posts) == 0 {
			continue
		}
		maxTF := 0.0
		for _, p := range posts {
			if float64(p.TF) > maxTF {
				maxTF = float64(p.TF)
			}
		}
		terms = append(terms, termInfo{term, qw, len(posts), qw * s.MaxWeight(maxTF, len(posts)), posts})
	}
	if len(terms) == 0 {
		return nil
	}
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].bound != terms[j].bound {
			return terms[i].bound > terms[j].bound
		}
		return terms[i].term < terms[j].term
	})
	return terms
}

// suffixBounds returns cumulative bound sums: out[i] = sum of bounds of
// terms[i:].
func suffixBounds(terms []termInfo) []float64 {
	out := make([]float64, len(terms)+1)
	for i := len(terms) - 1; i >= 0; i-- {
		out[i] = out[i+1] + terms[i].bound
	}
	return out
}

// RetrievalStats reports how one top-k retrieval traversed the index: how
// much of the candidate space the max-score bound pruned and how wide the
// traversal fanned out. The engine attaches these to the per-request trace
// spans (internal/obs) so pruning efficiency is visible per query.
type RetrievalStats struct {
	Terms    int // query terms with at least one posting
	Postings int // postings available across those terms
	Scored   int // postings actually scored into an accumulator
	Skipped  int // postings decoded/inspected but skipped by the bound
	// Postings − Scored − Skipped = postings in pruned blocks, never decoded.
	BlocksDecoded int // postings blocks decoded (block-max path only)
	BlocksSkipped int // postings blocks pruned without decoding
	Shards        int // traversal fan-out (1 = sequential)
}

// add accumulates per-shard stats.
func (st *RetrievalStats) add(o RetrievalStats) {
	st.Scored += o.Scored
	st.Skipped += o.Skipped
	st.BlocksDecoded += o.BlocksDecoded
	st.BlocksSkipped += o.BlocksSkipped
}

// TopKMaxScore evaluates the query with max-score pruning: terms are
// processed in decreasing score-bound order and accumulation stops scanning
// new candidate documents once the remaining bounds cannot lift a document
// into the top k (Turtle & Flood max-score; the threshold-algorithm family
// the paper cites for its top-k ranking [49]). Results equal TopK exactly.
func TopKMaxScore(idx index.Source, s Scorer, q Query, k int) []Hit {
	hits, _ := TopKMaxScoreContext(context.Background(), idx, s, q, k)
	return hits
}

// TopKMaxScoreContext is TopKMaxScore with cooperative cancellation:
// between terms and every cancelCheckEvery postings the context is polled,
// and a done context aborts the traversal with ctx.Err().
func TopKMaxScoreContext(ctx context.Context, idx index.Source, s Scorer, q Query, k int) ([]Hit, error) {
	hits, _, err := TopKMaxScoreStats(ctx, idx, s, q, k)
	return hits, err
}

// TopKMaxScoreStats is TopKMaxScoreContext reporting retrieval statistics.
// The counters are plain local increments folded into the returned struct,
// so the statistics cost nothing measurable on the traversal.
func TopKMaxScoreStats(ctx context.Context, idx index.Source, s Scorer, q Query, k int) ([]Hit, RetrievalStats, error) {
	var st RetrievalStats
	st.Shards = 1
	if k <= 0 || len(q) == 0 {
		return nil, st, ctx.Err()
	}
	terms := prepareTerms(idx, s, q)
	if terms == nil {
		return nil, st, ctx.Err()
	}
	st.Terms = len(terms)
	for _, t := range terms {
		st.Postings += len(t.posts)
	}
	suffixBound := suffixBounds(terms)
	hits, shardST, err := maxScoreAccumulate(ctx, idx, s, terms, suffixBound, k, nil)
	if err != nil {
		return nil, st, err
	}
	st.add(shardST)
	return hits, st, nil
}

// docRange restricts an accumulation to documents in [Lo, Hi); nil means
// the whole document space.
type docRange struct {
	Lo, Hi index.DocID
}

// maxScoreAccumulate runs the max-score accumulation loop over prepared
// terms, optionally restricted to a DocID range (the sharded path), and
// returns the local top k plus scan statistics. Tombstoned documents (the
// source's LiveSource mask) are dropped before the seen/admission check,
// so they are never scored and never influence the threshold.
func maxScoreAccumulate(ctx context.Context, idx index.Source, s Scorer, terms []termInfo, suffixBound []float64, k int, rng *docRange) ([]Hit, RetrievalStats, error) {
	var st RetrievalStats
	live := liveMask(idx)
	acc := acquireMapAcc()
	defer releaseMapAcc(acc)
	var th threshold // k-th best score so far
	th.init(k)
	sinceCheck := 0
	scored, skipped := 0, 0
	for i, t := range terms {
		if err := ctx.Err(); err != nil {
			return nil, st, err
		}
		// >= keeps tie-breaking exact: a new doc bounded at exactly the
		// current threshold could still win a tie on DocID.
		newDocsAllowed := suffixBound[i] >= th.min()
		posts := t.posts
		if rng != nil {
			posts = postingsRange(posts, rng.Lo, rng.Hi)
		}
		for _, p := range posts {
			if sinceCheck++; sinceCheck >= cancelCheckEvery {
				sinceCheck = 0
				if err := ctx.Err(); err != nil {
					return nil, st, err
				}
			}
			if live != nil && !live.Live(p.Doc) {
				skipped++
				continue
			}
			if _, seen := acc[p.Doc]; !seen && !newDocsAllowed {
				// This document can only score within terms[i:], bounded by
				// suffixBound[i] <= current k-th score: skip it.
				skipped++
				continue
			}
			scored++
			acc[p.Doc] += t.qw * s.Weight(float64(p.TF), t.df, idx.DocLen(p.Doc))
		}
		// Refresh the running threshold from the accumulator.
		th.refresh(acc, k)
	}
	st.Scored, st.Skipped = scored, skipped
	return selectTop(acc, k), st, nil
}

// threshold tracks the k-th best accumulated score. h is a reusable heap
// scratch: refresh runs once per term, so reusing its backing array makes
// the per-term threshold recomputation allocation-free after the first.
type threshold struct {
	k int
	v float64
	n int
	h hitHeap
}

func (t *threshold) init(k int) { t.k = k; t.v = 0; t.n = 0 }
func (t *threshold) min() float64 {
	if t.n < t.k {
		return 0
	}
	return t.v
}

func (t *threshold) refresh(acc map[index.DocID]float64, k int) {
	if len(acc) < k {
		t.n = len(acc)
		t.v = 0
		return
	}
	h := t.h[:0]
	for d, s := range acc {
		pushTop(&h, Hit{d, s}, k)
	}
	t.h = h
	t.n = len(acc)
	if len(h) == k {
		t.v = h[0].Score
	}
}

// selectTop extracts the k best hits from an accumulator. The heap holds at
// most len(acc) hits, so the capacity is clamped defensively in case an
// oversized (e.g. request-supplied) k reaches this point.
func selectTop(acc map[index.DocID]float64, k int) []Hit {
	h := make(hitHeap, 0, min(k, len(acc)))
	for d, s := range acc {
		pushTop(&h, Hit{d, s}, k)
	}
	return drainHeap(h)
}

// drainHeap pops a hitHeap into descending rank order (score descending,
// ties by ascending DocID). The heap is consumed.
func drainHeap(h hitHeap) []Hit {
	out := make([]Hit, len(h))
	for i := len(h) - 1; i >= 0; i-- {
		out[i] = h.pop()
	}
	return out
}

// hitHeap is a min-heap by (score, then descending DocID) so the weakest
// hit is on top and ties prefer smaller DocIDs in the final ranking. The
// sift operations are hand-rolled rather than going through container/heap
// because heap.Push(any)/heap.Pop() any box every Hit — on the hot path
// that was two allocations per candidate considered, dwarfing everything
// else once the accumulators were pooled.
type hitHeap []Hit

// less orders the heap: weakest (lowest score, then largest DocID) first.
func (h hitHeap) less(i, j int) bool {
	if h[i].Score != h[j].Score {
		return h[i].Score < h[j].Score
	}
	return h[i].Doc > h[j].Doc
}

// up restores the heap property after appending at index i.
func (h hitHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// down restores the heap property after replacing the element at index i.
func (h hitHeap) down(i int) {
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		m := l
		if r := l + 1; r < n && h.less(r, l) {
			m = r
		}
		if !h.less(m, i) {
			return
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
}

// pop removes and returns the weakest hit.
func (h *hitHeap) pop() Hit {
	old := *h
	n := len(old) - 1
	old[0], old[n] = old[n], old[0]
	it := old[n]
	*h = old[:n]
	(*h).down(0)
	return it
}

func pushTop(h *hitHeap, hit Hit, k int) {
	if len(*h) < k {
		*h = append(*h, hit)
		h.up(len(*h) - 1)
		return
	}
	worst := (*h)[0]
	if hit.Score > worst.Score || hit.Score == worst.Score && hit.Doc < worst.Doc {
		(*h)[0] = hit
		h.down(0)
	}
}
