package search

import (
	"sort"

	"newslink/internal/index"
)

// Fuse implements Equation 3 of the paper:
//
//	F(Tq, Tc) = (1-beta) * F_BOW(Tq, Tc) + beta * F_BON(G*q, G*c)
//
// bow and bon are the rankings produced over the text index and the node
// index. Because BM25 scores are unbounded and their ranges differ between
// the two indexes, each ranking is max-normalized before fusion (CombSUM
// with max normalization); with beta=0 or beta=1 Fuse degenerates to the
// single normalized ranking, so the "β=0 reduces to Lucene" property of
// Table VII holds by construction. Both input rankings should be retrieved
// with depth >= k (a fusion candidate pool); the fused top k are returned.
func Fuse(bow, bon []Hit, beta float64, k int) []Hit {
	switch {
	case beta <= 0:
		return clip(normalize(bow), k)
	case beta >= 1:
		return clip(normalize(bon), k)
	}
	acc := make(map[index.DocID]float64, len(bow)+len(bon))
	for _, h := range normalize(bow) {
		acc[h.Doc] += (1 - beta) * h.Score
	}
	for _, h := range normalize(bon) {
		acc[h.Doc] += beta * h.Score
	}
	out := make([]Hit, 0, len(acc))
	for d, s := range acc {
		out = append(out, Hit{Doc: d, Score: s})
	}
	sortHits(out)
	return clip(out, k)
}

// normalize divides scores by the maximum score of the ranking, mapping
// them into (0, 1]. Empty or all-zero rankings pass through unchanged.
func normalize(hits []Hit) []Hit {
	if len(hits) == 0 {
		return hits
	}
	maxScore := 0.0
	for _, h := range hits {
		if h.Score > maxScore {
			maxScore = h.Score
		}
	}
	if maxScore == 0 {
		return hits
	}
	out := make([]Hit, len(hits))
	for i, h := range hits {
		out[i] = Hit{Doc: h.Doc, Score: h.Score / maxScore}
	}
	return out
}

// sortHits orders by descending score, ties by ascending DocID.
func sortHits(hits []Hit) {
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Doc < hits[j].Doc
	})
}

func clip(hits []Hit, k int) []Hit {
	if k >= 0 && len(hits) > k {
		return hits[:k]
	}
	return hits
}
