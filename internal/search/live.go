package search

import "newslink/internal/index"

// LiveSource is the optional interface an index.Source implements when it
// carries a tombstone mask (index.LiveFiltered). Every retrieval path —
// TopK, TopKMaxScore*, TopKBlockMax* and the sharded variants — consults it
// so a tombstoned document is never scored, admitted to an accumulator, or
// returned, while the source's corpus statistics (DF, AvgDocLen) keep
// including tombstoned docs until a merge rewrites them (Lucene deletion
// semantics; see DESIGN.md §11).
//
// Pruning stays safe unchanged: term and block bounds computed over all
// postings are still valid upper bounds for the live subset, and the
// threshold only ever reflects live documents.
type LiveSource interface {
	index.Source
	// Live reports whether the document is not tombstoned.
	Live(d index.DocID) bool
}

// liveMask extracts the optional tombstone mask from a source: nil when
// every document is live, so the hot loops pay one nil check per posting.
func liveMask(idx index.Source) LiveSource {
	if l, ok := idx.(LiveSource); ok {
		return l
	}
	return nil
}
