package search

import (
	"context"
	"sync"

	"newslink/internal/index"
)

// Distributed evaluation support.
//
// A scatter-gather router (internal/cluster) reproduces the exact top-k
// semantics of the in-process sharded paths over an RPC boundary. Per-doc
// scores are bitwise identical to single-process evaluation only if every
// shard accumulates terms in the same order with the same global BM25
// parameters and the same per-term bounds. The router therefore computes
// the canonical term order once — from globally aggregated TermSummary
// stats — and ships the ordered terms to every shard; shards execute them
// verbatim via TopKBlockMaxOrderedStats without re-deriving local stats.

// TermSummary is the directory-level summary of one term on one index
// source: document frequency (tombstoned documents included, matching
// Cursor.Count) and the maximum term frequency across its postings. A
// router sums DF and maxes MaxTF across shards to recover the exact
// global values prepareBlockTerms would see on the merged index.
type TermSummary struct {
	DF    int     `json:"df"`
	MaxTF float64 `json:"max_tf"`
}

// TermSummaries reads cursor summaries for the given terms. Terms absent
// from the index are omitted; nothing is decoded.
func TermSummaries(idx index.Source, terms []string) map[string]TermSummary {
	out := make(map[string]TermSummary, len(terms))
	for _, term := range terms {
		c := idx.TermCursor(term)
		if c == nil {
			continue
		}
		df, maxTF := c.Count(), float64(c.MaxTF())
		index.ReleaseCursor(c)
		if df == 0 {
			continue
		}
		out[term] = TermSummary{DF: df, MaxTF: maxTF}
	}
	return out
}

// OrderedTerm is one query term with globally computed evaluation
// parameters, in canonical execution order (decreasing Bound, ties by
// Term). DF and Bound are the global values; a shard uses them verbatim
// so its pruning decisions and per-posting weights match the merged
// index exactly.
type OrderedTerm struct {
	Term   string  `json:"term"`
	Weight float64 `json:"weight"`
	DF     int     `json:"df"`
	Bound  float64 `json:"bound"`
}

// OrderTerms computes the canonical block-max execution order from global
// term stats: bound = weight·MaxWeight(maxTF, df), sorted by decreasing
// bound with ties broken by term — exactly prepareBlockTerms' order over
// the merged index. Terms missing from stats are dropped (no postings
// anywhere). The second result is the total posting count.
func OrderTerms(s Scorer, q Query, stats map[string]TermSummary) ([]OrderedTerm, int) {
	bm := make([]bmTerm, 0, len(q))
	total := 0
	for term, qw := range q {
		ts, ok := stats[term]
		if !ok || ts.DF == 0 {
			continue
		}
		total += ts.DF
		bm = append(bm, bmTerm{term, qw, ts.DF, qw * s.MaxWeight(ts.MaxTF, ts.DF)})
	}
	if len(bm) == 0 {
		return nil, 0
	}
	sortBMTerms(bm)
	out := make([]OrderedTerm, len(bm))
	for i, t := range bm {
		out[i] = OrderedTerm{Term: t.term, Weight: t.qw, DF: t.df, Bound: t.bound}
	}
	return out, total
}

// TopKBlockMaxOrderedStats evaluates pre-ordered terms with block-max
// pruning, preserving the given order instead of re-deriving it from
// local cursors. The scorer must carry the global collection parameters
// (see BM25's exported fields). Shards fans the document space out as in
// TopKBlockMaxShardedStats; shards <= 1 runs sequentially.
func TopKBlockMaxOrderedStats(ctx context.Context, idx index.Source, s Scorer, ordered []OrderedTerm, k, shards int) ([]Hit, RetrievalStats, error) {
	var st RetrievalStats
	st.Shards = 1
	if k <= 0 || len(ordered) == 0 {
		return nil, st, ctx.Err()
	}
	terms := make([]bmTerm, len(ordered))
	for i, t := range ordered {
		terms[i] = bmTerm{t.Term, t.Weight, t.DF, t.Bound}
		st.Postings += t.DF
	}
	st.Terms = len(terms)
	suffixBound := bmSuffixBounds(terms)
	hits, fanST, err := blockMaxFanout(ctx, idx, s, terms, suffixBound, k, shards)
	if err != nil {
		return nil, st, err
	}
	st.add(fanST)
	st.Shards = fanST.Shards
	return hits, st, nil
}

// blockMaxFanout splits the document space into contiguous ranges, runs
// blockMaxAccumulate per range and merges the partial top-k lists. It is
// shared by the in-process sharded path and the ordered (distributed)
// path; shards <= 1 degenerates to a single whole-range accumulation.
func blockMaxFanout(ctx context.Context, idx index.Source, s Scorer, terms []bmTerm, suffixBound []float64, k, shards int) ([]Hit, RetrievalStats, error) {
	numDocs := idx.NumDocs()
	if shards > numDocs {
		shards = numDocs
	}
	if shards <= 1 {
		hits, st, err := blockMaxAccumulate(ctx, idx, s, terms, suffixBound, k, nil)
		st.Shards = 1
		return hits, st, err
	}
	var st RetrievalStats
	st.Shards = shards
	perShard := make([][]Hit, shards)
	perShardStats := make([]RetrievalStats, shards)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		lo := index.DocID(w * numDocs / shards)
		hi := index.DocID((w + 1) * numDocs / shards)
		wg.Add(1)
		go func(w int, lo, hi index.DocID) {
			defer wg.Done()
			perShard[w], perShardStats[w], errs[w] = blockMaxAccumulate(ctx, idx, s, terms, suffixBound, k, &docRange{Lo: lo, Hi: hi})
		}(w, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, st, err
		}
	}
	for _, shardST := range perShardStats {
		st.add(shardST)
	}
	return MergeTopK(k, perShard...), st, nil
}

// MergeTopK merges pre-ranked hit lists into a global top k with the same
// comparator the per-shard selection used (score descending, ties by
// ascending Doc), so merging shard-local winners equals selecting over
// the union. Lists need not be sorted.
func MergeTopK(k int, lists ...[]Hit) []Hit {
	if k <= 0 {
		return nil
	}
	total := 0
	for _, hits := range lists {
		total += len(hits)
	}
	h := make(hitHeap, 0, min(k, total))
	for _, hits := range lists {
		for _, hit := range hits {
			pushTop(&h, hit, k)
		}
	}
	return drainHeap(h)
}
