package search

import (
	"context"
	"sync"
	"testing"

	"math/rand"

	"newslink/internal/index"
)

// TestScratchReleaseScrubs: an accumulator that has scored documents must
// come back from the pool with every array entry zero, whatever the next
// request's range is — the invariant the pooled-reuse safety argument
// rests on.
func TestScratchReleaseScrubs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		lo := index.DocID(rng.Intn(100))
		hi := lo + index.DocID(1+rng.Intn(5000))
		a := acquireBMAcc(lo, hi)
		for i := 0; i < 200; i++ {
			d := lo + index.DocID(rng.Intn(int(hi-lo)))
			if !a.isSeen(d) {
				a.admit(d)
			}
			a.add(d, rng.Float64())
		}
		a.sweep(0, 1e9) // drop some viable bits so viable ⊂ seen
		a.release()

		// Drain the pool until we get an accumulator back (the pool may
		// hold several), checking each is fully scrubbed across its whole
		// capacity, not just the last request's span.
		b := acquireBMAcc(0, index.DocID(cap(a.score)))
		for i, s := range b.score {
			if s != 0 {
				t.Fatalf("trial %d: pooled score[%d] = %v, want 0", trial, i, s)
			}
		}
		for w := range b.seen {
			if b.seen[w] != 0 || b.viable[w] != 0 {
				t.Fatalf("trial %d: pooled bitmap word %d dirty: seen=%x viable=%x",
					trial, w, b.seen[w], b.viable[w])
			}
		}
		if b.n != 0 {
			t.Fatalf("trial %d: pooled n = %d, want 0", trial, b.n)
		}
		b.release()
	}
}

// TestPooledReuseIdentityUnderConcurrency mirrors core/identity_test.go for
// the retrieval scratch: many goroutines run the pooled block-max paths
// concurrently over shared immutable indexes, recycling accumulators,
// heaps and cursors through the pools at high frequency, and every single
// result must stay bitwise identical to the sequential exact reference
// computed up front. Run under -race this doubles as the data-race proof
// for pooled reuse.
func TestPooledReuseIdentityUnderConcurrency(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	vocab := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	type testCase struct {
		idx  *index.Index
		s    BM25
		q    Query
		k    int
		want []Hit
	}
	cases := make([]testCase, 12)
	for ci := range cases {
		nDocs := 200 + rng.Intn(3000)
		idx := randomCorpus(rng, nDocs, vocab)
		s := NewBM25(idx)
		q := Query{}
		for i, nq := 0, 1+rng.Intn(4); i < nq; i++ {
			q[vocab[rng.Intn(len(vocab))]] = 0.5 + rng.Float64()
		}
		k := 1 + rng.Intn(15)
		// The block-max paths are bitwise identical to max-score (same term
		// order, same summation order), so the reference comparison below
		// can demand exact equality, not tolerance.
		cases[ci] = testCase{idx, s, q, k, TopKMaxScore(idx, s, q, k)}
	}
	ctx := context.Background()
	const goroutines = 8
	const iters = 40
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				tc := cases[(g+it)%len(cases)]
				var got []Hit
				var err error
				switch it % 3 {
				case 0:
					got, _, err = TopKBlockMaxStats(ctx, tc.idx, tc.s, tc.q, tc.k)
				case 1:
					got, _, err = TopKBlockMaxShardedStats(ctx, tc.idx, tc.s, tc.q, tc.k, 2+it%3)
				case 2:
					ordered, _ := OrderTerms(tc.s, tc.q, TermSummaries(tc.idx, queryTerms(tc.q)))
					got, _, err = TopKBlockMaxOrderedStats(ctx, tc.idx, tc.s, ordered, tc.k, 1+it%4)
				}
				if err != nil {
					errs <- err.Error()
					return
				}
				if len(got) != len(tc.want) {
					errs <- "result length drifted under pooled reuse"
					return
				}
				for i := range got {
					if got[i] != tc.want[i] {
						errs <- "result drifted under pooled reuse"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

// queryTerms lists a query's terms (helper for the ordered path).
func queryTerms(q Query) []string {
	out := make([]string, 0, len(q))
	for t := range q {
		out = append(out, t)
	}
	return out
}

// TestPooledHeapAndMapReuse: the exact TAAT and TA-fusion paths share the
// pooled map accumulators and reusable threshold heaps; interleaving them
// must not corrupt results.
func TestPooledHeapAndMapReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(31337))
	vocab := []string{"x", "y", "z", "w", "v"}
	for trial := 0; trial < 20; trial++ {
		idx := randomCorpus(rng, 100+rng.Intn(1500), vocab)
		s := NewBM25(idx)
		q := Query{}
		for i, nq := 0, 1+rng.Intn(3); i < nq; i++ {
			q[vocab[rng.Intn(len(vocab))]] = 0.5 + rng.Float64()
		}
		k := 1 + rng.Intn(10)
		want := TopKMaxScore(idx, s, q, k)
		exact := TopK(idx, s, q, k)
		if len(want) != len(exact) {
			t.Fatalf("trial %d: maxscore length %d, exact %d", trial, len(want), len(exact))
		}
		for rep := 0; rep < 3; rep++ {
			got := TopKMaxScore(idx, s, q, k)
			if len(got) != len(want) {
				t.Fatalf("trial %d rep %d: maxscore length %d want %d", trial, rep, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d rep %d rank %d: %v want %v", trial, rep, i, got[i], want[i])
				}
			}
			if got := TopK(idx, s, q, k); len(got) != len(exact) {
				t.Fatalf("trial %d rep %d: TopK length drifted on reuse", trial, rep)
			}
		}
	}
}
